// Package graph defines the property value model shared by all graph
// storage backends and the query engine: dynamically typed scalar values
// plus LIST values (the replicated properties introduced by the paper's
// 1:M and M:N rules).
package graph

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates value kinds.
type Kind uint8

// Value kinds. KindNull is the zero Value.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindList
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindString:
		return "STRING"
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindBool:
		return "BOOLEAN"
	case KindList:
		return "LIST"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed property value. The zero Value is NULL.
// Values are immutable once constructed.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, or bool
	str  string
	list []Value
}

// Null is the NULL value.
var Null = Value{}

// S returns a STRING value.
func S(s string) Value { return Value{kind: KindString, str: s} }

// I returns an INT value.
func I(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// F returns a DOUBLE value.
func F(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// B returns a BOOLEAN value.
func B(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// L returns a LIST value wrapping vs (not copied).
func L(vs ...Value) Value { return Value{kind: KindList, list: vs} }

// FBits constructs a DOUBLE value from IEEE-754 bits; used by storage
// backends that persist floats as raw bits.
func FBits(b uint64) Value { return Value{kind: KindFloat, num: b} }

// FloatBits returns the IEEE-754 bits of a float, the inverse of FBits.
func FloatBits(f float64) uint64 { return math.Float64bits(f) }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload (empty unless KindString).
func (v Value) Str() string { return v.str }

// Int returns the integer payload (0 unless KindInt).
func (v Value) Int() int64 {
	if v.kind != KindInt {
		return 0
	}
	return int64(v.num)
}

// Float returns the float payload; INT values are widened.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(v.num)
	case KindInt:
		return float64(int64(v.num))
	default:
		return 0
	}
}

// Bool returns the boolean payload (false unless KindBool).
func (v Value) Bool() bool { return v.kind == KindBool && v.num == 1 }

// List returns the list payload (nil unless KindList).
func (v Value) List() []Value { return v.list }

// Len returns the list length, or 0 for non-lists.
func (v Value) Len() int { return len(v.list) }

// Equal reports deep equality. INT and DOUBLE compare numerically.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		if isNumeric(v.kind) && isNumeric(o.kind) {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.str == o.str
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	default:
		return v.num == o.num
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare orders two values; ok is false when the kinds are not mutually
// comparable (e.g. list vs int, or anything vs NULL).
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if isNumeric(v.kind) && isNumeric(o.kind) {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind == KindString && o.kind == KindString {
		return strings.Compare(v.str, o.str), true
	}
	if v.kind == KindBool && o.kind == KindBool {
		a, b := v.Bool(), o.Bool()
		switch {
		case a == b:
			return 0, true
		case !a:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// String renders the value in Cypher literal style.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool())
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return "?"
	}
}

// Key returns a canonical string usable as a grouping/map key; distinct
// values yield distinct keys within a kind.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// AppendKey appends the canonical key of v to dst and returns the extended
// slice, so hot paths (grouping, DISTINCT, row comparison) can build
// composite keys into one reusable buffer instead of concatenating
// strings. The encoding is identical to Key().
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0)
	case KindString:
		dst = append(dst, 's')
		return append(dst, v.str...)
	case KindInt:
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, int64(v.num), 10)
	case KindFloat:
		dst = append(dst, 'f')
		return strconv.AppendFloat(dst, v.Float(), 'g', -1, 64)
	case KindBool:
		dst = append(dst, 'b')
		return strconv.AppendBool(dst, v.Bool())
	case KindList:
		dst = append(dst, 'l', '[')
		for _, e := range v.list {
			dst = e.AppendKey(dst)
			dst = append(dst, ',')
		}
		return append(dst, ']')
	default:
		return append(dst, '?')
	}
}
