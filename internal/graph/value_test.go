package graph

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := S("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("S: %v", v)
	}
	if v := I(-7); v.Kind() != KindInt || v.Int() != -7 {
		t.Errorf("I: %v", v)
	}
	if v := F(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("F: %v", v)
	}
	if v := B(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("B: %v", v)
	}
	if v := L(I(1), I(2)); v.Kind() != KindList || v.Len() != 2 {
		t.Errorf("L: %v", v)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null: %v", Null)
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value is not NULL")
	}
}

func TestCrossKindAccessorsAreZero(t *testing.T) {
	if S("x").Int() != 0 || S("x").Float() != 0 || S("x").Bool() {
		t.Error("string value leaks through numeric accessors")
	}
	if I(3).Str() != "" || I(3).Bool() {
		t.Error("int value leaks through other accessors")
	}
	if I(3).Float() != 3 {
		t.Error("Int should widen to Float")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{S("a"), S("a"), true},
		{S("a"), S("b"), false},
		{I(1), I(1), true},
		{I(1), F(1), true}, // numeric widening
		{I(1), F(1.5), false},
		{B(true), B(true), true},
		{B(true), I(1), false},
		{Null, Null, true},
		{Null, I(0), false},
		{L(I(1), S("x")), L(I(1), S("x")), true},
		{L(I(1)), L(I(1), I(2)), false},
		{L(I(1)), I(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	if cmp, ok := I(1).Compare(F(2)); !ok || cmp != -1 {
		t.Errorf("I(1) vs F(2): %d %v", cmp, ok)
	}
	if cmp, ok := S("b").Compare(S("a")); !ok || cmp != 1 {
		t.Errorf("strings: %d %v", cmp, ok)
	}
	if cmp, ok := B(false).Compare(B(true)); !ok || cmp != -1 {
		t.Errorf("bools: %d %v", cmp, ok)
	}
	if _, ok := S("a").Compare(I(1)); ok {
		t.Error("string vs int should not compare")
	}
	if _, ok := Null.Compare(Null); ok {
		t.Error("NULL should not compare")
	}
	if _, ok := L(I(1)).Compare(L(I(1))); ok {
		t.Error("lists should not compare")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		`"hi"`:      S("hi"),
		"42":        I(42),
		"true":      B(true),
		"null":      Null,
		`[1, "hi"]`: L(I(1), S("hi")),
		"2.5":       F(2.5),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestKeyDistinguishesValues(t *testing.T) {
	vals := []Value{
		Null, S(""), S("1"), I(1), F(1.5), B(true), B(false),
		L(), L(I(1)), L(S("1")), L(I(1), I(2)),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestKeyEqualConsistencyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := I(a), I(b)
		return (va.Key() == vb.Key()) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := S(a), S(b)
		return (va.Key() == vb.Key()) == va.Equal(vb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := F(a), F(b)
		c1, ok1 := x.Compare(y)
		c2, ok2 := y.Compare(x)
		return ok1 && ok2 && c1 == -c2
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
