package bench

// -exp compact: the background-compaction latency experiment. It
// answers the operational question behind the non-blocking fold — what
// does a compaction do to read latency? — by sampling the same read
// mix twice: against a quiesced live store, then while a background
// Compact folds the delta into a fresh base generation with durable
// writes still arriving. The acceptance bar is read p99 during the
// fold within 2x the quiesced p99, and every mutation acknowledged
// mid-fold present after the swap (re-verified through a cold reopen).

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/storetest"
)

// LatencySummary is one sampled read phase.
type LatencySummary struct {
	Ops int
	P50 time.Duration
	P99 time.Duration
}

// CompactReport is the -exp compact result.
type CompactReport struct {
	BaseVertices int
	BaseEdges    int
	DeltaItems   int64 // delta vertices+edges the fold absorbed
	FoldTime     time.Duration
	Quiesced     LatencySummary
	DuringFold   LatencySummary
	// MidFoldAcked is the number of mutation batches acknowledged while
	// the fold ran; MidFoldPresent / MidFoldReopened count how many were
	// visible after the swap and after a cold reopen. All three must be
	// equal — an acknowledged write that a fold loses is the one failure
	// this experiment exists to catch.
	MidFoldAcked    int
	MidFoldPresent  int
	MidFoldReopened int
}

// P99Ratio is during-fold p99 over quiesced p99 (0 when nothing was
// sampled).
func (r *CompactReport) P99Ratio() float64 {
	if r.Quiesced.P99 <= 0 {
		return 0
	}
	return float64(r.DuringFold.P99) / float64(r.Quiesced.P99)
}

func summarize(durs []time.Duration) LatencySummary {
	if len(durs) == 0 {
		return LatencySummary{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(durs)-1))
		return durs[i]
	}
	return LatencySummary{Ops: len(durs), P50: pick(0.50), P99: pick(0.99)}
}

// sampleReads runs the read mix — labels, one property, a bounded
// adjacency walk — from `readers` goroutines over the base vertex range
// until done reports true, and returns every per-op latency.
func sampleReads(g storage.Graph, readers, nV int, seed int64, done func() bool) []time.Duration {
	var mu sync.Mutex
	var all []time.Duration
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			local := make([]time.Duration, 0, 1<<14)
			for !done() {
				v := storage.VID(rng.Intn(nV))
				t0 := time.Now()
				g.Labels(v)
				g.Prop(v, "p0")
				n := 0
				g.ForEachOut(v, "", func(storage.EID, storage.VID) bool {
					n++
					return n < 8
				})
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return all
}

// CompactLatency builds a live diskstore in dir (nV base vertices, nE
// base edges plus a delta worth folding), samples the read mix quiesced
// and during a background fold with concurrent durable writes, and
// audits the mid-fold acknowledgments.
func CompactLatency(dir string, nV, nE, readers int, seed int64) (*CompactReport, error) {
	if readers <= 0 {
		readers = 4
	}
	s, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if _, err := storetest.BuildRandomBulk(s, seed, nV, nE, 1024); err != nil {
		return nil, err
	}
	if !s.Live() {
		return nil, fmt.Errorf("bench: finalized store is not live")
	}

	// A delta worth folding: fresh vertices wired back into the base.
	var batch []storage.Mutation
	for i := 0; i < nV/10; i++ {
		batch = append(batch,
			storage.Mutation{Op: storage.MutAddVertex, Labels: []string{"Delta"}},
			storage.Mutation{Op: storage.MutSetProp, V: -1, Key: "p0", Value: graph.I(int64(i))},
			storage.Mutation{Op: storage.MutAddEdge, Src: -1, Dst: storage.VID(i % nV), Type: "r1"},
		)
	}
	if _, err := s.ApplyMutations(batch); err != nil {
		return nil, err
	}
	ls := s.LiveStats()
	rep := &CompactReport{BaseVertices: nV, BaseEdges: nE, DeltaItems: ls.DeltaVertices + ls.DeltaEdges}

	// Phase 1: quiesced baseline.
	deadline := time.Now().Add(300 * time.Millisecond)
	rep.Quiesced = summarize(sampleReads(s, readers, nV, seed+100, func() bool {
		return time.Now().After(deadline)
	}))

	// Phase 2: the same mix while a background fold runs and durable
	// writes keep arriving.
	var foldDone atomic.Bool
	var foldErr, mutErr error
	var acked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		t0 := time.Now()
		foldErr = s.Compact()
		rep.FoldTime = time.Since(t0)
		foldDone.Store(true)
	}()
	go func() {
		defer wg.Done()
		for k := 0; !foldDone.Load(); k++ {
			if _, err := s.ApplyMutations([]storage.Mutation{
				{Op: storage.MutAddVertex, Labels: []string{"MidFold"}},
				{Op: storage.MutSetProp, V: -1, Key: "mid", Value: graph.I(int64(k))},
			}); err != nil {
				mutErr = err
				return
			}
			acked.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	rep.DuringFold = summarize(sampleReads(s, readers, nV, seed+200, foldDone.Load))
	wg.Wait()
	if foldErr != nil {
		return nil, fmt.Errorf("bench: background fold: %w", foldErr)
	}
	if mutErr != nil {
		return nil, fmt.Errorf("bench: mid-fold mutation: %w", mutErr)
	}
	rep.MidFoldAcked = int(acked.Load())

	countMidFold := func(g storage.Graph) int {
		n := 0
		g.ForEachVertex("MidFold", func(v storage.VID) bool {
			if _, ok := g.Prop(v, "mid"); ok {
				n++
			}
			return true
		})
		return n
	}
	rep.MidFoldPresent = countMidFold(s)
	if err := s.Close(); err != nil {
		return nil, err
	}
	re, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: reopen after fold: %w", err)
	}
	rep.MidFoldReopened = countMidFold(re)
	if err := re.Close(); err != nil {
		return nil, err
	}
	if rep.MidFoldPresent != rep.MidFoldAcked || rep.MidFoldReopened != rep.MidFoldAcked {
		return rep, fmt.Errorf("bench: %d mutation batches acknowledged mid-fold but %d visible after the swap, %d after reopen",
			rep.MidFoldAcked, rep.MidFoldPresent, rep.MidFoldReopened)
	}
	return rep, nil
}

// FormatCompactReport renders the -exp compact result.
func FormatCompactReport(title string, r *CompactReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  base %d vertices / %d edges; fold absorbed %d delta items in %v\n",
		r.BaseVertices, r.BaseEdges, r.DeltaItems, r.FoldTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  quiesced:    %7d reads  p50=%-8v p99=%v\n", r.Quiesced.Ops, r.Quiesced.P50, r.Quiesced.P99)
	fmt.Fprintf(&b, "  during fold: %7d reads  p50=%-8v p99=%v  (p99 ratio %.2fx)\n",
		r.DuringFold.Ops, r.DuringFold.P50, r.DuringFold.P99, r.P99Ratio())
	fmt.Fprintf(&b, "  mid-fold writes: %d acknowledged, %d present after swap, %d after reopen\n",
		r.MidFoldAcked, r.MidFoldPresent, r.MidFoldReopened)
	return b.String()
}
