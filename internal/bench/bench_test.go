package bench

import (
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/workload"
)

func smallOpts() Options {
	return Options{MedCard: 20, FinCard: 8, Seed: 5, Reps: 1, CachePages: 16}
}

func newEnv(t *testing.T, name string) *Env {
	t.Helper()
	env, err := NewEnv(name, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestVaryingSpaceShapes(t *testing.T) {
	for _, name := range []string{"MED", "FIN"} {
		env := newEnv(t, name)
		for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
			pts, err := VaryingSpace(env, dist, []float64{0.1, 10, 50, 100})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, dist, err)
			}
			if len(pts) != 4 {
				t.Fatalf("%d points", len(pts))
			}
			for _, p := range pts {
				if p.RC < 0 || p.RC > 1.000001 || p.CC < 0 || p.CC > 1.000001 {
					t.Errorf("%s/%s BR out of range at %v%%: %+v", name, dist, p.Pct, p)
				}
			}
			last := pts[len(pts)-1]
			if last.RC != 1 || last.CC != 1 {
				t.Errorf("%s/%s: BR at 100%% = %+v, want 1/1 (Theorem 3 check)", name, dist, last)
			}
			if pts[0].RC > last.RC+1e-9 {
				t.Errorf("%s/%s: BR decreased with budget", name, dist)
			}
		}
	}
}

func TestVaryingThetas(t *testing.T) {
	env := newEnv(t, "FIN")
	pts, err := VaryingThetas(env, workload.Uniform, DefaultThetaPairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		// Paper §5.2: in the worst case both achieve >0.7 at 50% budget.
		if p.RC < 0.5 {
			t.Errorf("RC BR at (%.2f,%.2f) = %.3f, suspiciously low", p.Theta1, p.Theta2, p.RC)
		}
		if p.RC > 1.000001 || p.CC > 1.000001 {
			t.Errorf("BR above 1: %+v", p)
		}
	}
	if !strings.Contains(FormatThetaTable("t", pts), "0.66") {
		t.Error("theta table formatting broken")
	}
}

func TestMicrobenchmarkRows(t *testing.T) {
	for _, name := range []string{"MED", "FIN"} {
		env := newEnv(t, name)
		rows, err := Microbenchmark(env, []Backend{Memstore})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 6 {
			t.Fatalf("%s: %d rows, want 6", name, len(rows))
		}
		for _, r := range rows {
			if r.DirMs <= 0 || r.OptMs <= 0 {
				t.Errorf("%s %s: non-positive latencies %+v", name, r.Query, r)
			}
			if r.OptEdges > r.DirEdges {
				t.Errorf("%s %s: OPT traversed more edges (%d) than DIR (%d)",
					name, r.Query, r.OptEdges, r.DirEdges)
			}
		}
		out := FormatMicroTable("fig11", rows)
		if !strings.Contains(out, "speedup") {
			t.Error("micro table formatting broken")
		}
	}
}

func TestMicrobenchmarkReducesTraversals(t *testing.T) {
	env := newEnv(t, "MED")
	rows, err := Microbenchmark(env, []Backend{Memstore})
	if err != nil {
		t.Fatal(err)
	}
	// At least half the queries must traverse strictly fewer edges on
	// OPT; Q7-style local lookups legitimately tie at zero.
	better := 0
	for _, r := range rows {
		if r.OptEdges < r.DirEdges {
			better++
		}
	}
	if better < len(rows)/2 {
		t.Errorf("only %d/%d queries reduced traversals", better, len(rows))
	}
}

func TestWorkloadLatency(t *testing.T) {
	env := newEnv(t, "MED")
	rows, err := WorkloadLatency(env, []Backend{Memstore, Diskstore})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Queries != 15 {
			t.Errorf("workload size = %d, want 15", r.Queries)
		}
		if r.OptEdges > r.DirEdges {
			t.Errorf("%s: OPT edges %d > DIR edges %d", r.Backend, r.OptEdges, r.DirEdges)
		}
	}
	if !strings.Contains(FormatWorkloadTable("fig12", rows), "memstore") {
		t.Error("workload table formatting broken")
	}
}

func TestEfficiencyRows(t *testing.T) {
	env := newEnv(t, "MED")
	rows, err := Efficiency(env, []int{25, 50, 75})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RCms < 0 || r.CCms < 0 {
			t.Errorf("negative times: %+v", r)
		}
	}
	if !strings.Contains(FormatEffTable("table2", rows), "RC(ms)") {
		t.Error("eff table formatting broken")
	}
}

func TestMotivating(t *testing.T) {
	env := newEnv(t, "MED")
	rows, err := Motivating(env, Memstore)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if _, err := Motivating(newEnv(t, "FIN"), Memstore); err == nil {
		t.Error("FIN accepted for motivating examples")
	}
	if !strings.Contains(FormatMotivating(rows), "Example1") {
		t.Error("motivating formatting broken")
	}
}

func TestParallelScalingShapes(t *testing.T) {
	env := newEnv(t, "MED")
	for _, b := range []Backend{Memstore, Diskstore} {
		pts, err := ParallelScaling(env, b, []int{1, 2, 4}, 5)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if len(pts) != 3 {
			t.Fatalf("%s: %d points", b, len(pts))
		}
		for i, p := range pts {
			if p.Ops != p.Goroutines*5 {
				t.Errorf("%s: point %d ops = %d, want %d", b, i, p.Ops, p.Goroutines*5)
			}
			if p.OpsPerSec <= 0 || p.TotalMs <= 0 {
				t.Errorf("%s: point %d has non-positive throughput: %+v", b, i, p)
			}
		}
		if pts[0].Speedup != 1 {
			t.Errorf("%s: baseline speedup = %v, want 1", b, pts[0].Speedup)
		}
	}
	if !strings.Contains(FormatParallelTable("par", []ParallelPoint{{Goroutines: 1, Ops: 5}}), "ops/sec") {
		t.Error("parallel table formatting broken")
	}
	if _, err := ParallelScaling(env, Memstore, []int{0}, 5); err == nil {
		t.Error("invalid goroutine count accepted")
	}
}

// TestParallelScalingTightCache runs the experiment against diskstore
// with a page budget far below the working set, so every op contends on
// the sharded page cache (loads, evictions, latches). Correctness only;
// scaling is asserted by TestParallelScalingDiskMultiCore.
func TestParallelScalingTightCache(t *testing.T) {
	env := newEnv(t, "MED").WithCachePages(8)
	pts, err := ParallelScaling(env, Diskstore, []int{1, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.OpsPerSec <= 0 {
			t.Errorf("point %d has non-positive throughput: %+v", i, p)
		}
	}
}

// TestParallelScalingMultiCore is the throughput acceptance gate: on a
// machine with >= 4 cores, 4 goroutines sharing one memstore plan must
// deliver > 2x the aggregate throughput of 1 goroutine. On smaller
// machines parallel speedup is physically unavailable, so only the
// correctness half of the experiment is checked (by ParallelScalingShapes).
func TestParallelScalingMultiCore(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts throughput; scaling is asserted in the non-race run")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 procs for scaling, have %d", runtime.GOMAXPROCS(0))
	}
	env, err := NewEnv("MED", Options{MedCard: 60, Seed: 5, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ParallelScaling(env, Memstore, []int{1, 4}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := pts[1].Speedup; got <= 2 {
		t.Errorf("4-goroutine aggregate throughput = %.2fx of serial, want > 2x\n%s",
			got, FormatParallelTable("parallel", pts))
	}
}

// TestParallelScalingDiskMultiCore is the disk-bound half of the scaling
// gate: with the sharded pager, concurrent readers over a tight page
// budget must scale past 1 core (the old single pager mutex flatlined
// this curve at ~1x). The threshold is deliberately modest — the workload
// is eviction-heavy by construction — and, unlike the memstore gate, the
// assertion is opt-in (PGS_DISK_SCALING_GATE=1): an eviction-heavy curve
// on a noisy shared runner is too timing-sensitive to fail the default
// `go test ./...` on machines we don't control. Without the variable the
// test still runs the experiment and logs the curve.
func TestParallelScalingDiskMultiCore(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts throughput; scaling is asserted in the non-race run")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 procs for scaling, have %d", runtime.GOMAXPROCS(0))
	}
	env, err := NewEnv("MED", Options{MedCard: 60, Seed: 5, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ParallelScaling(env.WithCachePages(16), Diskstore, []int{1, 4, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Judge the best multi-worker point, not only the 8-worker one: on a
	// noisy shared 4-core runner the over-subscribed 8-worker sample is
	// the jitterier of the two.
	best := 0.0
	for _, p := range pts[1:] {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	table := FormatParallelTable("parallel/diskstore-tight", pts)
	if best <= 1.3 {
		if os.Getenv("PGS_DISK_SCALING_GATE") == "" {
			t.Logf("best multi-worker diskstore throughput = %.2fx of serial (gate threshold 1.3x; set PGS_DISK_SCALING_GATE=1 to enforce)\n%s", best, table)
			return
		}
		t.Errorf("best multi-worker diskstore throughput = %.2fx of serial, want > 1.3x (pager no longer flat)\n%s", best, table)
	}
}

func TestIntraQueryScalingShapes(t *testing.T) {
	env := newEnv(t, "MED")
	for _, b := range []Backend{Memstore, Diskstore} {
		pts, err := IntraQueryScaling(env, b, []int{1, 2}, 5)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", b, len(pts))
		}
		for i, p := range pts {
			if p.Ops != 5 {
				t.Errorf("%s: point %d ops = %d, want 5", b, i, p.Ops)
			}
			if p.OpsPerSec <= 0 || p.TotalMs <= 0 {
				t.Errorf("%s: point %d has non-positive throughput: %+v", b, i, p)
			}
		}
		if pts[0].Speedup != 1 {
			t.Errorf("%s: baseline speedup = %v, want 1", b, pts[0].Speedup)
		}
	}
	if !strings.Contains(FormatIntraQueryTable("intra", []IntraQueryPoint{{Workers: 1, Ops: 5}}), "ops/sec") {
		t.Error("intra-query table formatting broken")
	}
	if _, err := IntraQueryScaling(env, Memstore, []int{0}, 5); err == nil {
		t.Error("invalid worker count accepted")
	}
}

// TestIntraQueryScalingDiskMultiCore is the intra-query acceptance gate
// from the morsel-parallelism work: a single client running the pattern
// query with 4 morsel workers over a cache-tight diskstore must beat the
// serial (1-worker) throughput by > 2x on a machine with >= 4 cores. Like
// the disk inter-query gate the assertion is opt-in
// (PGS_INTRA_SCALING_GATE=1) because throughput ratios on shared runners
// we don't control are too noisy for the default `go test ./...`; without
// the variable the test still runs the experiment and logs the curve.
func TestIntraQueryScalingDiskMultiCore(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts throughput; scaling is asserted in the non-race run")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 procs for scaling, have %d", runtime.GOMAXPROCS(0))
	}
	env, err := NewEnv("MED", Options{MedCard: 60, Seed: 5, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := IntraQueryScaling(env.WithCachePages(16), Diskstore, []int{1, 4, 8}, 60)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, p := range pts[1:] {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	table := FormatIntraQueryTable("intra-query/diskstore-tight", pts)
	if best <= 2 {
		if os.Getenv("PGS_INTRA_SCALING_GATE") == "" {
			t.Logf("best intra-query diskstore throughput = %.2fx of serial (gate threshold 2x; set PGS_INTRA_SCALING_GATE=1 to enforce)\n%s", best, table)
			return
		}
		t.Errorf("best intra-query diskstore throughput = %.2fx of serial, want > 2x\n%s", best, table)
	}
}

func TestNewEnvUnknown(t *testing.T) {
	if _, err := NewEnv("XXX", smallOpts()); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDiskstoreBackendWorks(t *testing.T) {
	env := newEnv(t, "MED")
	rows, err := Microbenchmark(env, []Backend{Diskstore})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestFormatBRTable(t *testing.T) {
	out := FormatBRTable("Figure 8(a)", []BRPoint{{Pct: 0.1, RC: 0.5, CC: 0.4}})
	if !strings.Contains(out, "Figure 8(a)") || !strings.Contains(out, "0.500") {
		t.Errorf("format: %s", out)
	}
}
