package bench

// Machine-readable experiment output. The text tables the Format*
// functions print are for humans at a terminal; CI jobs and regression
// dashboards instead collect the same row structs into a Report and
// serialize it once as JSON (pgsbench -json out.json). Rows marshal with
// their Go field names — the structs are the schema, so a field rename
// is a deliberate, reviewable output-format change.

import (
	"encoding/json"
	"io"
)

// Report is the top-level pgsbench -json document: invocation metadata
// plus one Section per table printed.
type Report struct {
	// Meta records the invocation: flags, dataset cardinalities, seed —
	// whatever the caller needs to reproduce the run.
	Meta map[string]any `json:"meta,omitempty"`
	// Sections appear in print order, one per formatted table.
	Sections []Section `json:"sections"`
}

// Section is one experiment table: the experiment key (the -exp name),
// the human title of the corresponding text table, and its rows.
type Section struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Rows       any    `json:"rows"`
}

// Add appends one section. A nil *Report is a no-op collector, so call
// sites can add unconditionally and let the -json flag decide.
func (r *Report) Add(experiment, title string, rows any) {
	if r == nil {
		return
	}
	r.Sections = append(r.Sections, Section{Experiment: experiment, Title: title, Rows: rows})
}

// WriteJSON serializes the report, indented for diffability. Sections is
// never null: an empty run still yields a well-formed document.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Sections == nil {
		r.Sections = []Section{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
