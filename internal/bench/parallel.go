package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Parallel-reader scaling: one shared plan, N concurrent executors.
// ---------------------------------------------------------------------

// ParallelPoint is one goroutine-count position of the parallel-reader
// scaling experiment: the same compiled plan executed from Goroutines
// concurrent workers, Ops executions in total.
type ParallelPoint struct {
	Goroutines  int
	Ops         int
	TotalMs     float64
	OpsPerSec   float64
	AllocsPerOp float64
	// Speedup is aggregate throughput relative to the first point of the
	// same run — the serial baseline when the goroutine counts start at 1,
	// as DefaultParallelGoroutines does.
	Speedup float64
}

// DefaultParallelGoroutines is the experiment's x-axis.
var DefaultParallelGoroutines = []int{1, 2, 4, 8}

// ParallelScaling measures how one shared Prepared plan scales across
// concurrent readers on the given backend: for each goroutine count it
// executes the plan opsPerGoroutine times per worker and reports
// aggregate throughput. The plan is fetched through a query.Cache — the
// same compile-once path ad-hoc callers use — so the experiment also
// exercises the cache under concurrency. Every execution's row count is
// checked against a serial reference; a mismatch fails the run.
//
// On a multi-core machine the memstore curve is the paper's serving-time
// claim made concrete: an immutable plan over an immutable store scales
// with readers. The diskstore curve scales too since the pager moved to a
// sharded clock cache (readers contend only on same-shard access); run it
// through Env.WithCachePages with a small budget to measure scaling in
// the disk-bound regime, where the old single pager mutex used to
// flatline the curve.
func ParallelScaling(env *Env, b Backend, goroutines []int, opsPerGoroutine int) ([]ParallelPoint, error) {
	if opsPerGoroutine <= 0 {
		opsPerGoroutine = 50
	}
	st, cleanup, err := env.load(b, "par", nil)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// A mid-weight pattern query keeps each op long enough to measure and
	// short enough to repeat thousands of times.
	q, err := parallelQuery(env)
	if err != nil {
		return nil, err
	}
	cache := query.NewCache(0)
	plan, err := cache.Get(storage.Graph(st), q)
	if err != nil {
		return nil, err
	}
	ref, err := plan.Execute()
	if err != nil {
		return nil, err
	}
	wantRows := len(ref.Rows)

	var points []ParallelPoint
	for _, n := range goroutines {
		if n <= 0 {
			return nil, fmt.Errorf("bench: invalid goroutine count %d", n)
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		var wg sync.WaitGroup
		errs := make([]error, n)
		totalMs, err := timeIt(func() error {
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < opsPerGoroutine; i++ {
						// The cache is hot after the reference run; Get is
						// the path an ad-hoc caller would take per request.
						p, err := cache.Get(storage.Graph(st), q)
						if err != nil {
							errs[g] = err
							return
						}
						res, err := p.Execute()
						if err != nil {
							errs[g] = err
							return
						}
						if len(res.Rows) != wantRows {
							errs[g] = fmt.Errorf("bench: parallel run returned %d rows, serial %d", len(res.Rows), wantRows)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		runtime.ReadMemStats(&ms1)
		ops := n * opsPerGoroutine
		pt := ParallelPoint{
			Goroutines:  n,
			Ops:         ops,
			TotalMs:     totalMs,
			AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		}
		if totalMs > 0 {
			pt.OpsPerSec = float64(ops) / (totalMs / 1000)
		}
		if len(points) > 0 && points[0].OpsPerSec > 0 {
			pt.Speedup = pt.OpsPerSec / points[0].OpsPerSec
		} else if len(points) == 0 {
			pt.Speedup = 1
		}
		points = append(points, pt)
	}
	return points, nil
}

// ---------------------------------------------------------------------
// Intra-query scaling: one client, N morsel workers inside each query.
// ---------------------------------------------------------------------

// IntraQueryPoint is one worker-count position of the intra-query scaling
// experiment: the same compiled plan executed Ops times by a single
// client, each execution fanned out over Workers morsel workers.
type IntraQueryPoint struct {
	Workers   int
	Ops       int
	TotalMs   float64
	OpsPerSec float64
	// Speedup is throughput relative to the first point of the same run —
	// the serial baseline when the worker counts start at 1, as
	// DefaultQueryWorkers does.
	Speedup float64
}

// DefaultQueryWorkers is the intra-query experiment's x-axis.
var DefaultQueryWorkers = []int{1, 2, 4, 8}

// IntraQueryScaling measures morsel-driven parallelism from a single
// client: the same compiled plan executed ops times at each worker count.
// It is the complement of ParallelScaling — that experiment adds clients,
// this one adds workers inside one client's query, the "one heavy
// traversal should saturate the machine" number. Before timing each
// worker count, one execution's full row multiset is checked against the
// serial reference; during timing only row counts are re-checked.
func IntraQueryScaling(env *Env, b Backend, workers []int, ops int) ([]IntraQueryPoint, error) {
	if ops <= 0 {
		ops = 50
	}
	st, cleanup, err := env.load(b, "intra", nil)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	q, err := parallelQuery(env)
	if err != nil {
		return nil, err
	}
	cache := query.NewCache(0)
	plan, err := cache.Get(storage.Graph(st), q)
	if err != nil {
		return nil, err
	}
	ref, err := plan.Execute()
	if err != nil {
		return nil, err
	}
	query.SortRowsForComparison(ref.Rows)
	wantRows := fmt.Sprint(ref.Rows)

	var points []IntraQueryPoint
	for _, w := range workers {
		if w <= 0 {
			return nil, fmt.Errorf("bench: invalid worker count %d", w)
		}
		check, err := plan.ExecuteParallel(w)
		if err != nil {
			return nil, err
		}
		query.SortRowsForComparison(check.Rows)
		if got := fmt.Sprint(check.Rows); got != wantRows {
			return nil, fmt.Errorf("bench: %d-worker run diverged from serial rows", w)
		}
		totalMs, err := timeIt(func() error {
			for i := 0; i < ops; i++ {
				res, err := plan.ExecuteParallel(w)
				if err != nil {
					return err
				}
				if len(res.Rows) != len(ref.Rows) {
					return fmt.Errorf("bench: %d-worker run returned %d rows, serial %d", w, len(res.Rows), len(ref.Rows))
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		pt := IntraQueryPoint{Workers: w, Ops: ops, TotalMs: totalMs}
		if totalMs > 0 {
			pt.OpsPerSec = float64(ops) / (totalMs / 1000)
		}
		if len(points) > 0 && points[0].OpsPerSec > 0 {
			pt.Speedup = pt.OpsPerSec / points[0].OpsPerSec
		} else if len(points) == 0 {
			pt.Speedup = 1
		}
		points = append(points, pt)
	}
	return points, nil
}

// FormatIntraQueryTable renders intra-query scaling points.
func FormatIntraQueryTable(title string, pts []IntraQueryPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%10s %8s %11s %11s %9s\n",
		title, "workers", "ops", "total(ms)", "ops/sec", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %8d %11.3f %11.0f %8.2fx\n",
			p.Workers, p.Ops, p.TotalMs, p.OpsPerSec, p.Speedup)
	}
	return b.String()
}

// parallelQuery picks the experiment's query: the dataset's first
// pattern-matching microbenchmark entry.
func parallelQuery(env *Env) (string, error) {
	for _, q := range workload.MicrobenchmarkFor(env.Name) {
		if q.Kind == workload.Pattern {
			return q.Text, nil
		}
	}
	return "", fmt.Errorf("bench: no pattern query in %s microbenchmark", env.Name)
}

// FormatParallelTable renders parallel-scaling points.
func FormatParallelTable(title string, pts []ParallelPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%10s %8s %11s %11s %11s %9s\n",
		title, "workers", "ops", "total(ms)", "ops/sec", "allocs/op", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %8d %11.3f %11.0f %11.1f %8.2fx\n",
			p.Goroutines, p.Ops, p.TotalMs, p.OpsPerSec, p.AllocsPerOp, p.Speedup)
	}
	return b.String()
}
