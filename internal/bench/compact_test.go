package bench

import "testing"

// TestCompactLatencySmoke runs the -exp compact experiment at a small
// scale: the fold must succeed under concurrent readers and writers, and
// every mutation acknowledged mid-fold must be visible after the swap
// and after a cold reopen (CompactLatency returns an error otherwise).
func TestCompactLatencySmoke(t *testing.T) {
	rep, err := CompactLatency(t.TempDir(), 1500, 4500, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quiesced.Ops == 0 {
		t.Fatal("quiesced phase sampled no reads")
	}
	if rep.DeltaItems == 0 {
		t.Fatal("the fold had no delta to absorb")
	}
	if rep.MidFoldPresent != rep.MidFoldAcked || rep.MidFoldReopened != rep.MidFoldAcked {
		t.Fatalf("acked %d mid-fold batches, %d present, %d after reopen",
			rep.MidFoldAcked, rep.MidFoldPresent, rep.MidFoldReopened)
	}
	t.Logf("fold %v, quiesced p99 %v, during-fold p99 %v (ratio %.2fx), %d mid-fold writes",
		rep.FoldTime, rep.Quiesced.P99, rep.DuringFold.P99, rep.P99Ratio(), rep.MidFoldAcked)
}
