package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Figures 8 and 9: benefit ratio vs space constraint.
// ---------------------------------------------------------------------

// BRPoint is one x-position of Figures 8/9: benefit ratios of the two
// algorithms at a space constraint expressed as a share of Cost(NSC).
type BRPoint struct {
	Pct    float64
	RC, CC float64
}

// DefaultSpacePcts is the x-axis of Figures 8 (MED) and 9 (FIN adds
// 0.001%).
var DefaultSpacePcts = []float64{0.01, 0.1, 1, 2.5, 4, 10, 15, 20, 25, 50, 75, 100}

// VaryingSpace reproduces Figure 8 (env=MED) or Figure 9 (env=FIN): it
// derives the workload summary under the distribution, then sweeps the
// space constraint.
func VaryingSpace(env *Env, dist workload.Distribution, pcts []float64) ([]BRPoint, error) {
	wl, err := env.WorkloadAF(dist, 200)
	if err != nil {
		return nil, err
	}
	in, err := env.Inputs(wl.AF, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	total, err := in.NSCCost()
	if err != nil {
		return nil, err
	}
	var points []BRPoint
	for _, pct := range pcts {
		budget := total * pct / 100
		rc, err := optimizer.RelationCentric(in, budget)
		if err != nil {
			return nil, err
		}
		cc, err := optimizer.ConceptCentric(in, budget)
		if err != nil {
			return nil, err
		}
		rcBR, err := in.BenefitRatio(rc)
		if err != nil {
			return nil, err
		}
		ccBR, err := in.BenefitRatio(cc)
		if err != nil {
			return nil, err
		}
		points = append(points, BRPoint{Pct: pct, RC: rcBR, CC: ccBR})
	}
	return points, nil
}

// ---------------------------------------------------------------------
// Figure 10: benefit ratio vs Jaccard thresholds.
// ---------------------------------------------------------------------

// ThetaPoint is one x-position of Figure 10.
type ThetaPoint struct {
	Theta1, Theta2 float64
	RC, CC         float64
}

// DefaultThetaPairs is Figure 10's x-axis.
var DefaultThetaPairs = [][2]float64{{0.9, 0.1}, {0.66, 0.33}, {0.6, 0.4}, {0.5, 0.5}}

// VaryingThetas reproduces Figure 10: for each threshold pair the space
// constraint is half of that configuration's Cost(NSC) (§5.2: "the space
// constraint ... is set to (S_NSC - S_DIR)/2 under each specific Jaccard
// similarity threshold").
func VaryingThetas(env *Env, dist workload.Distribution, pairs [][2]float64) ([]ThetaPoint, error) {
	wl, err := env.WorkloadAF(dist, 200)
	if err != nil {
		return nil, err
	}
	var points []ThetaPoint
	for _, th := range pairs {
		cfg := core.Config{Theta1: th[0], Theta2: th[1]}
		in, err := env.Inputs(wl.AF, cfg)
		if err != nil {
			return nil, err
		}
		total, err := in.NSCCost()
		if err != nil {
			return nil, err
		}
		budget := total / 2
		rc, err := optimizer.RelationCentric(in, budget)
		if err != nil {
			return nil, err
		}
		cc, err := optimizer.ConceptCentric(in, budget)
		if err != nil {
			return nil, err
		}
		rcBR, err := in.BenefitRatio(rc)
		if err != nil {
			return nil, err
		}
		ccBR, err := in.BenefitRatio(cc)
		if err != nil {
			return nil, err
		}
		points = append(points, ThetaPoint{Theta1: th[0], Theta2: th[1], RC: rcBR, CC: ccBR})
	}
	return points, nil
}

// ---------------------------------------------------------------------
// Figure 11: microbenchmark Q1-Q12, DIR vs OPT on both backends.
// ---------------------------------------------------------------------

// MicroRow is one bar group of Figure 11.
type MicroRow struct {
	Query   string
	Dataset string
	Kind    workload.Kind
	Backend Backend
	DirMs   float64
	OptMs   float64
	Speedup float64
	// Physical work counters explain the speedups.
	DirEdges, OptEdges int64
	// Rewritten is the OPT-side query text.
	Rewritten string
}

// microSchema produces the OPT mapping with the paper's microbenchmark
// parameters: θ1=0.66, θ2=0.33, space constraint = 0.5 · Cost(NSC). The
// workload summary is derived from the microbenchmark queries themselves
// (§4.2 defines workload summaries as the access frequencies the workload
// induces).
func microSchema(env *Env) (*core.Mapping, error) {
	af, err := workload.AFFromQueries(env.Ontology, workload.MicrobenchmarkFor(env.Name))
	if err != nil {
		return nil, err
	}
	in, err := env.Inputs(af, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	total, err := in.NSCCost()
	if err != nil {
		return nil, err
	}
	plan, err := optimizer.PGSG(in, total/2)
	if err != nil {
		return nil, err
	}
	return plan.Result.Mapping, nil
}

// Microbenchmark reproduces Figure 11 for one dataset environment across
// the given backends.
func Microbenchmark(env *Env, backends []Backend) ([]MicroRow, error) {
	mapping, err := microSchema(env)
	if err != nil {
		return nil, err
	}
	queries := workload.MicrobenchmarkFor(env.Name)
	var rows []MicroRow
	for _, b := range backends {
		dir, dirClean, err := env.load(b, "dir", nil)
		if err != nil {
			return nil, err
		}
		opt, optClean, err := env.load(b, "opt", mapping)
		if err != nil {
			dirClean()
			return nil, err
		}
		for _, q := range queries {
			row, err := runComparison(env, b, q, dir, opt, mapping)
			if err != nil {
				dirClean()
				optClean()
				return nil, err
			}
			rows = append(rows, *row)
		}
		dirClean()
		optClean()
	}
	return rows, nil
}

func runComparison(env *Env, b Backend, q workload.Query, dir, opt storage.Graph, mapping *core.Mapping) (*MicroRow, error) {
	parsed, err := cypher.Parse(q.Text)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.Name, err)
	}
	rewritten, _, err := rewrite.Rewrite(parsed, mapping, rewrite.Options{LocalizeScalarLookups: q.Localize})
	if err != nil {
		return nil, fmt.Errorf("%s rewrite: %w", q.Name, err)
	}
	row := &MicroRow{Query: q.Name, Dataset: env.Name, Kind: q.Kind, Backend: b, Rewritten: rewritten.String()}
	// Compile each side once; the repetition loop measures pure execution,
	// as a production system serving the same query shape repeatedly would.
	dirPlan, err := query.Prepare(dir, parsed)
	if err != nil {
		return nil, fmt.Errorf("%s DIR: %w", q.Name, err)
	}
	optPlan, err := query.Prepare(opt, rewritten)
	if err != nil {
		return nil, fmt.Errorf("%s OPT: %w", q.Name, err)
	}
	var dirStats, optStats query.Stats
	row.DirMs, err = timeIt(func() error {
		for i := 0; i < env.Opts.Reps; i++ {
			if _, err := dirPlan.ExecuteWithStats(&dirStats); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%s DIR: %w", q.Name, err)
	}
	row.OptMs, err = timeIt(func() error {
		for i := 0; i < env.Opts.Reps; i++ {
			if _, err := optPlan.ExecuteWithStats(&optStats); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%s OPT: %w", q.Name, err)
	}
	row.DirEdges, row.OptEdges = dirStats.EdgesTraversed, optStats.EdgesTraversed
	if row.OptMs > 0 {
		row.Speedup = row.DirMs / row.OptMs
	}
	return row, nil
}

// ---------------------------------------------------------------------
// Figure 12: total latency of a mixed Zipf workload.
// ---------------------------------------------------------------------

// WorkloadRow is one bar of Figure 12.
type WorkloadRow struct {
	Dataset  string
	Backend  Backend
	Queries  int
	DirMs    float64
	OptMs    float64
	Speedup  float64
	DirEdges int64
	OptEdges int64
}

// WorkloadLatency reproduces Figure 12 for one dataset: a 15-query mixed
// workload following a Zipf distribution, total sequential latency on DIR
// vs OPT.
func WorkloadLatency(env *Env, backends []Backend) ([]WorkloadRow, error) {
	wl, err := env.WorkloadAF(workload.Zipf, env.Opts.WorkloadQueries)
	if err != nil {
		return nil, err
	}
	in, err := env.Inputs(wl.AF, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	total, err := in.NSCCost()
	if err != nil {
		return nil, err
	}
	plan, err := optimizer.PGSG(in, total/2)
	if err != nil {
		return nil, err
	}
	mapping := plan.Result.Mapping

	type prepared struct {
		dir, opt *cypher.Query
	}
	var qs []prepared
	for _, q := range wl.Queries {
		parsed, err := cypher.Parse(q.Text)
		if err != nil {
			return nil, err
		}
		rw, _, err := rewrite.Rewrite(parsed, mapping, rewrite.Options{LocalizeScalarLookups: q.Localize})
		if err != nil {
			return nil, err
		}
		qs = append(qs, prepared{dir: parsed, opt: rw})
	}

	var rows []WorkloadRow
	for _, b := range backends {
		dir, dirClean, err := env.load(b, "wldir", nil)
		if err != nil {
			return nil, err
		}
		opt, optClean, err := env.load(b, "wlopt", mapping)
		if err != nil {
			dirClean()
			return nil, err
		}
		row := WorkloadRow{Dataset: env.Name, Backend: b, Queries: len(qs)}
		// Compile the whole workload once per backend; the timed loops
		// below measure execution only.
		dirPlans := make([]*query.Prepared, len(qs))
		optPlans := make([]*query.Prepared, len(qs))
		for i, p := range qs {
			if dirPlans[i], err = query.Prepare(dir, p.dir); err == nil {
				optPlans[i], err = query.Prepare(opt, p.opt)
			}
			if err != nil {
				dirClean()
				optClean()
				return nil, err
			}
		}
		var dirStats, optStats query.Stats
		row.DirMs, err = timeIt(func() error {
			for i := 0; i < env.Opts.Reps; i++ {
				for _, p := range dirPlans {
					if _, err := p.ExecuteWithStats(&dirStats); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			dirClean()
			optClean()
			return nil, err
		}
		row.OptMs, err = timeIt(func() error {
			for i := 0; i < env.Opts.Reps; i++ {
				for _, p := range optPlans {
					if _, err := p.ExecuteWithStats(&optStats); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			dirClean()
			optClean()
			return nil, err
		}
		row.DirEdges, row.OptEdges = dirStats.EdgesTraversed, optStats.EdgesTraversed
		if row.OptMs > 0 {
			row.Speedup = row.DirMs / row.OptMs
		}
		rows = append(rows, row)
		dirClean()
		optClean()
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 2: optimizer efficiency.
// ---------------------------------------------------------------------

// EffRow is one cell pair of Table 2.
type EffRow struct {
	Dataset string
	Pct     int
	RCms    float64
	CCms    float64
}

// Efficiency reproduces Table 2: RC and CC optimization wall time at 25%,
// 50%, 75% of Cost(NSC).
func Efficiency(env *Env, pcts []int) ([]EffRow, error) {
	wl, err := env.WorkloadAF(workload.Zipf, 200)
	if err != nil {
		return nil, err
	}
	in, err := env.Inputs(wl.AF, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	total, err := in.NSCCost()
	if err != nil {
		return nil, err
	}
	var rows []EffRow
	for _, pct := range pcts {
		budget := total * float64(pct) / 100
		rc, err := optimizer.RelationCentric(in, budget)
		if err != nil {
			return nil, err
		}
		cc, err := optimizer.ConceptCentric(in, budget)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EffRow{
			Dataset: env.Name,
			Pct:     pct,
			RCms:    float64(rc.Elapsed.Microseconds()) / 1000,
			CCms:    float64(cc.Elapsed.Microseconds()) / 1000,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// §1 motivating examples.
// ---------------------------------------------------------------------

// MotivatingRow compares one of the introduction's two example queries.
type MotivatingRow struct {
	Example string
	DirMs   float64
	OptMs   float64
	Speedup float64
}

// Motivating reproduces the two §1 examples on the MED dataset: a
// pattern-matching query through the interaction hierarchy (Example 1)
// and a COUNT aggregation over treat (Example 2). The schema is optimized
// for exactly these two queries, as in the introduction's narrative.
func Motivating(env *Env, backend Backend) ([]MotivatingRow, error) {
	if env.Name != "MED" {
		return nil, fmt.Errorf("bench: motivating examples use MED")
	}
	examples := []workload.Query{
		{Name: "Example1", Kind: workload.Pattern,
			Text: `MATCH (d:Drug)-[:has]->(di:DrugInteraction)<-[:isA]-(dfi:DrugFoodInteraction) RETURN d.name, dfi.riskLevel`},
		{Name: "Example2", Kind: workload.Aggregation,
			Text: `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc)) AS n`},
	}
	af, err := workload.AFFromQueries(env.Ontology, examples)
	if err != nil {
		return nil, err
	}
	in, err := env.Inputs(af, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	total, err := in.NSCCost()
	if err != nil {
		return nil, err
	}
	plan, err := optimizer.PGSG(in, total/2)
	if err != nil {
		return nil, err
	}
	res := plan.Result
	dir, dirClean, err := env.load(backend, "motdir", nil)
	if err != nil {
		return nil, err
	}
	defer dirClean()
	opt, optClean, err := env.load(backend, "motopt", res.Mapping)
	if err != nil {
		return nil, err
	}
	defer optClean()
	var rows []MotivatingRow
	for _, q := range examples {
		row, err := runComparison(env, backend, q, dir, opt, res.Mapping)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MotivatingRow{Example: q.Name, DirMs: row.DirMs, OptMs: row.OptMs, Speedup: row.Speedup})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Formatting helpers.
// ---------------------------------------------------------------------

// FormatBRTable renders Figure 8/9-style points.
func FormatBRTable(title string, pts []BRPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%10s %8s %8s\n", title, "space", "RC", "CC")
	for _, p := range pts {
		fmt.Fprintf(&b, "%9.3g%% %8.3f %8.3f\n", p.Pct, p.RC, p.CC)
	}
	return b.String()
}

// FormatThetaTable renders Figure 10-style points.
func FormatThetaTable(title string, pts []ThetaPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%14s %8s %8s\n", title, "(θ1,θ2)", "RC", "CC")
	for _, p := range pts {
		fmt.Fprintf(&b, "  (%.2f,%.2f) %8.3f %8.3f\n", p.Theta1, p.Theta2, p.RC, p.CC)
	}
	return b.String()
}

// FormatMicroTable renders Figure 11-style rows.
func FormatMicroTable(title string, rows []MicroRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-5s %-4s %-12s %-10s %11s %11s %9s %12s %12s\n",
		title, "query", "set", "kind", "backend", "DIR(ms)", "OPT(ms)", "speedup", "DIR edges", "OPT edges")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-4s %-12s %-10s %11.3f %11.3f %8.1fx %12d %12d\n",
			r.Query, r.Dataset, r.Kind, r.Backend, r.DirMs, r.OptMs, r.Speedup, r.DirEdges, r.OptEdges)
	}
	return b.String()
}

// FormatWorkloadTable renders Figure 12-style rows.
func FormatWorkloadTable(title string, rows []WorkloadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-4s %-10s %8s %11s %11s %9s\n", title, "set", "backend", "queries", "DIR(ms)", "OPT(ms)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-10s %8d %11.3f %11.3f %8.1fx\n",
			r.Dataset, r.Backend, r.Queries, r.DirMs, r.OptMs, r.Speedup)
	}
	return b.String()
}

// FormatEffTable renders Table 2-style rows.
func FormatEffTable(title string, rows []EffRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-4s %8s %10s %10s\n", title, "set", "space", "RC(ms)", "CC(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %7d%% %10.2f %10.2f\n", r.Dataset, r.Pct, r.RCms, r.CCms)
	}
	return b.String()
}

// FormatMotivating renders the §1 example comparison.
func FormatMotivating(rows []MotivatingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Motivating examples (§1)\n%-9s %11s %11s %9s\n", "example", "DIR(ms)", "OPT(ms)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %11.3f %11.3f %8.1fx\n", r.Example, r.DirMs, r.OptMs, r.Speedup)
	}
	return b.String()
}
