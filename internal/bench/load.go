package bench

// Cold-open and bulk-load experiments for the diskstore v4 format: how
// much wall-clock and pager I/O the persisted index saves a restarting
// service, and how much the batched write path saves a dataset load.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/loader"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
)

// ColdOpenResult is one cold-open measurement of the same on-disk store.
type ColdOpenResult struct {
	// Mode is "indexed" (index.db present, the v4 fast path) or "scan"
	// (index.db removed, forcing the legacy full-vertex rebuild).
	Mode        string
	Ms          float64
	PageReads   int64
	Vertices    int
	Edges       int
	IndexLoaded bool
}

// ColdOpen builds the environment's dataset into a v4 diskstore once,
// then measures reopening it cold two ways: with its persisted index
// (O(index size)) and with index.db deleted (the legacy full-vertex
// scan every pre-v4 open paid). The store content is identical in both
// runs; only the open path differs.
func ColdOpen(env *Env) ([]ColdOpenResult, error) {
	base := env.Opts.DataDir
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "pgs-"+env.Name+"-open-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	st, err := diskstore.Open(dir, diskstore.Options{CachePages: env.Opts.CachePages})
	if err != nil {
		return nil, err
	}
	vertices, edges, err := loader.Load(st, env.Dataset, nil)
	if err != nil {
		st.Close()
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	var results []ColdOpenResult
	open := func(mode string) error {
		var re *diskstore.Store
		ms, err := timeIt(func() error {
			var oerr error
			re, oerr = diskstore.Open(dir, diskstore.Options{CachePages: env.Opts.CachePages})
			return oerr
		})
		if err != nil {
			return err
		}
		defer re.Close()
		results = append(results, ColdOpenResult{
			Mode:        mode,
			Ms:          ms,
			PageReads:   re.Stats().PageReads,
			Vertices:    vertices,
			Edges:       edges,
			IndexLoaded: re.Format().IndexLoaded,
		})
		return nil
	}
	if err := open("indexed"); err != nil {
		return nil, err
	}
	if err := os.Remove(filepath.Join(dir, "index.db")); err != nil {
		return nil, err
	}
	if err := open("scan"); err != nil {
		return nil, err
	}
	return results, nil
}

// BulkLoadResult is one timed load of the environment's dataset.
type BulkLoadResult struct {
	// Mode is "bulk" (the native BatchBuilder pipeline with one finalize)
	// or "incremental" (per-item AddVertex/AddEdge, the pre-v4 path).
	Mode     string
	Backend  Backend
	Ms       float64
	Vertices int
	Edges    int
}

// incrementalOnly hides a store's native batch path behind the plain
// Builder method set, so loader.Load's BulkLoader degrades to per-item
// AddVertex/AddEdge calls — the pre-v4 write path, measurable on the
// current code.
type incrementalOnly struct{ storage.Builder }

// BulkLoad measures loading the environment's dataset through the bulk
// pipeline versus the incremental write path on the given backend. Both
// loads produce observably identical graphs (gated by a test); the
// difference is pure write-path cost — on diskstore, one sorted finalize
// pass instead of a read-modify-write per edge.
func BulkLoad(env *Env, b Backend) ([]BulkLoadResult, error) {
	var results []BulkLoadResult
	for _, mode := range []string{"bulk", "incremental"} {
		st, cleanup, err := env.openStore(b, "load-"+mode)
		if err != nil {
			return nil, err
		}
		target := storage.Builder(st)
		if mode == "incremental" {
			target = incrementalOnly{st}
		}
		var vertices, edges int
		ms, err := timeIt(func() error {
			var lerr error
			vertices, edges, lerr = loader.Load(target, env.Dataset, nil)
			return lerr
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		results = append(results, BulkLoadResult{
			Mode: mode, Backend: b, Ms: ms, Vertices: vertices, Edges: edges,
		})
	}
	return results, nil
}

// FormatColdOpenTable renders cold-open results.
func FormatColdOpenTable(title string, rows []ColdOpenResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-8s %10s %10s %11s %11s %8s\n",
		title, "mode", "vertices", "edges", "open(ms)", "page reads", "indexed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %10d %11.3f %11d %8v\n",
			r.Mode, r.Vertices, r.Edges, r.Ms, r.PageReads, r.IndexLoaded)
	}
	return b.String()
}

// FormatBulkLoadTable renders bulk-load results.
func FormatBulkLoadTable(title string, rows []BulkLoadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s %-10s %10s %10s %11s\n",
		title, "mode", "backend", "vertices", "edges", "load(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %10d %10d %11.3f\n",
			r.Mode, r.Backend, r.Vertices, r.Edges, r.Ms)
	}
	return b.String()
}
