package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/ontology"
	"repro/internal/optimizer"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
	"repro/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// BaseCard is instances per ordinary concept (default: 120 for MED,
	// 40 for FIN — FIN's deep hierarchy multiplies facets).
	MedCard int
	FinCard int
	// Seed drives data generation and workload sampling.
	Seed int64
	// DataDir hosts diskstore files (default: a temp dir).
	DataDir string
	// CachePages is the diskstore page-cache size; small values make the
	// backend disk-bound like the paper's Neo4j (default 64 pages).
	CachePages int
	// Mmap serves diskstore vertex/edge reads from a read-only memory
	// map instead of the page cache.
	Mmap bool
	// WorkloadQueries is the mixed-workload size (default 15, §5.3).
	WorkloadQueries int
	// Reps repeats each timed query and reports the total, following the
	// paper's "total time of all queries ... executed in sequential
	// order" (default 3).
	Reps int
}

func (o Options) withDefaults() Options {
	if o.MedCard == 0 {
		o.MedCard = 120
	}
	if o.FinCard == 0 {
		o.FinCard = 40
	}
	if o.Seed == 0 {
		o.Seed = 2021
	}
	if o.CachePages == 0 {
		o.CachePages = 64
	}
	if o.WorkloadQueries == 0 {
		o.WorkloadQueries = 15
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	return o
}

// Env is one dataset prepared for experiments.
type Env struct {
	Name     string
	Ontology *ontology.Ontology
	Dataset  *datagen.Dataset
	Opts     Options
}

// NewEnv generates the named dataset ("MED" or "FIN").
func NewEnv(name string, opts Options) (*Env, error) {
	opts = opts.withDefaults()
	var o *ontology.Ontology
	card := opts.MedCard
	switch name {
	case "MED":
		o = datagen.MED()
	case "FIN":
		o = datagen.FIN()
		card = opts.FinCard
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
	ds, err := datagen.Generate(o, datagen.Options{Seed: opts.Seed, BaseCard: card})
	if err != nil {
		return nil, err
	}
	return &Env{Name: name, Ontology: o, Dataset: ds, Opts: opts}, nil
}

// Inputs assembles optimizer inputs with the dataset's true statistics
// and the given workload summary (nil = uniform).
func (e *Env) Inputs(af *ontology.AccessFrequencies, cfg core.Config) (*optimizer.Inputs, error) {
	return optimizer.NewInputs(e.Ontology, e.Dataset.Stats, af, cfg)
}

// WorkloadAF generates a workload and returns its access summary.
func (e *Env) WorkloadAF(dist workload.Distribution, n int) (*workload.Workload, error) {
	return workload.Generate(e.Ontology, n, dist, e.Opts.Seed)
}

// WithCachePages returns a copy of the environment whose diskstore loads
// use a page budget of n pages, sharing the already-generated dataset.
// Used to run the same experiment at different disk-boundedness levels —
// e.g. the parallel-scaling experiment under a deliberately tight cache.
func (e *Env) WithCachePages(n int) *Env {
	c := *e
	c.Opts.CachePages = n
	return &c
}

// Backend identifies a storage backend in results.
type Backend string

// The two backends standing in for the paper's JanusGraph and Neo4j.
const (
	Memstore  Backend = "memstore"  // in-memory (JanusGraph-like)
	Diskstore Backend = "diskstore" // record store + page cache (Neo4j-like)
)

// openStore creates a fresh store for the backend; the cleanup removes
// any on-disk state.
func (e *Env) openStore(b Backend, tag string) (storage.Builder, func(), error) {
	switch b {
	case Memstore:
		return memstore.New(), func() {}, nil
	case Diskstore:
		base := e.Opts.DataDir
		if base == "" {
			base = os.TempDir()
		}
		dir, err := os.MkdirTemp(base, "pgs-"+e.Name+"-"+tag+"-*")
		if err != nil {
			return nil, nil, err
		}
		st, err := diskstore.Open(dir, diskstore.Options{CachePages: e.Opts.CachePages, Mmap: e.Opts.Mmap})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		cleanup := func() {
			st.Close()
			os.RemoveAll(dir)
		}
		return st, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown backend %q", b)
	}
}

// load instantiates the dataset under the mapping on the backend.
func (e *Env) load(b Backend, tag string, m *core.Mapping) (storage.Builder, func(), error) {
	st, cleanup, err := e.openStore(b, tag)
	if err != nil {
		return nil, nil, err
	}
	if _, _, err := loader.Load(st, e.Dataset, m); err != nil {
		cleanup()
		return nil, nil, err
	}
	if ds, ok := st.(*diskstore.Store); ok {
		// Start measurements from a cold cache, like a freshly booted
		// disk-based system.
		if err := ds.DropCache(); err != nil {
			cleanup()
			return nil, nil, err
		}
		ds.ResetStats()
	}
	return st, cleanup, nil
}

// timeIt measures the wall time of fn in milliseconds.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return float64(time.Since(start).Microseconds()) / 1000, err
}
