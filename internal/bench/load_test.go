package bench

import (
	"testing"

	"repro/internal/loader"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/storetest"
)

// TestColdOpenIndexGate is the cold-open regression gate (also run by the
// CI format-compat job): opening a v4 store through its persisted index
// must not scan vertex records — zero pager reads — while the scan
// fallback on the same store pays reads proportional to the vertex count.
func TestColdOpenIndexGate(t *testing.T) {
	env := newEnv(t, "MED")
	rows, err := ColdOpen(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	indexed, scan := rows[0], rows[1]
	if indexed.Mode != "indexed" || !indexed.IndexLoaded {
		t.Fatalf("first row is not the indexed open: %+v", indexed)
	}
	if scan.Mode != "scan" || scan.IndexLoaded {
		t.Fatalf("second row is not the scan open: %+v", scan)
	}
	if indexed.PageReads != 0 {
		t.Errorf("indexed cold open read %d pages; want 0 (index.db bypasses the pager)", indexed.PageReads)
	}
	if scan.PageReads == 0 {
		t.Error("scan open read no pages; the comparison is not measuring a vertex scan")
	}
	if scan.Vertices != indexed.Vertices || indexed.Vertices == 0 {
		t.Errorf("vertex counts diverge: %d vs %d", indexed.Vertices, scan.Vertices)
	}
}

// TestBulkLoadShapes runs the bulk-vs-incremental load comparison on both
// backends and checks both paths ingested the whole dataset.
func TestBulkLoadShapes(t *testing.T) {
	env := newEnv(t, "MED")
	for _, b := range []Backend{Memstore, Diskstore} {
		rows, err := BulkLoad(env, b)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", b, len(rows))
		}
		for _, r := range rows {
			if r.Vertices == 0 || r.Edges == 0 {
				t.Errorf("%s/%s loaded %d vertices, %d edges", b, r.Mode, r.Vertices, r.Edges)
			}
		}
		if rows[0].Vertices != rows[1].Vertices || rows[0].Edges != rows[1].Edges {
			t.Errorf("%s: bulk and incremental loads ingested different counts: %+v", b, rows)
		}
	}
}

// TestBulkLoadMatchesIncremental proves the two loader write paths
// produce observably identical diskstore graphs for a real dataset, and
// that the bulk-loaded store comes out segmented.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	env := newEnv(t, "MED")
	bulk, bulkClean, err := env.openStore(Diskstore, "eqbulk")
	if err != nil {
		t.Fatal(err)
	}
	defer bulkClean()
	inc, incClean, err := env.openStore(Diskstore, "eqinc")
	if err != nil {
		t.Fatal(err)
	}
	defer incClean()
	if _, _, err := loader.Load(bulk, env.Dataset, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loader.Load(incrementalOnly{inc}, env.Dataset, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := storetest.Fingerprint(bulk), storetest.Fingerprint(inc); got != want {
		t.Errorf("bulk-loaded diskstore diverges from incremental load:\n got: %.300s...\nwant: %.300s...", got, want)
	}
	if ts, ok := storage.Builder(bulk).(storage.TypeSegmentedGraph); !ok || !ts.SegmentedAdjacency() {
		t.Error("bulk-loaded diskstore is not type-segmented")
	}
	if ds, ok := bulk.(*diskstore.Store); !ok || ds.Format().Version < 4 {
		t.Error("bulk-loaded diskstore is not format v4+")
	}
}
