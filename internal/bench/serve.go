package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------
// End-to-end serving throughput: a live pgsserve-style HTTP server under
// N concurrent clients.
// ---------------------------------------------------------------------

// ServePoint is one client-count position of the serving experiment: real
// HTTP requests against a live server, so the number includes admission
// control, JSON encoding, and the network loopback — the repo's first
// end-to-end traffic measurement.
type ServePoint struct {
	Clients   int
	Requests  int
	OK        int
	Shed      int // 429s from admission control
	ReqPerSec float64
	P50Ms     float64
	P99Ms     float64
	// CacheHits/CacheMisses snapshot the server's plan cache after the
	// point ran, showing the compile-once path held under HTTP traffic.
	CacheHits   int64
	CacheMisses int64
	// Write-side numbers of a mixed run (ServeOptions.MutateFrac > 0).
	// The read percentiles above then measure query latency under this
	// concurrent durable ingest.
	Mutates     int
	MutateShed  int
	MutateP99Ms float64
}

// DefaultServeClients is the experiment's x-axis.
var DefaultServeClients = []int{1, 2, 4, 8}

// ServeOptions tunes ServeThroughput beyond the environment defaults.
type ServeOptions struct {
	// Clients is the list of concurrent-client counts (default
	// DefaultServeClients).
	Clients []int
	// RequestsPerClient scales each point (default 50).
	RequestsPerClient int
	// MaxConcurrent/MaxQueued configure the server's admission control
	// (defaults: the server package's defaults).
	MaxConcurrent int
	MaxQueued     int
	// MutateFrac turns each point into a mixed read/write run: every
	// request is a POST /mutate with this probability, so the read p99
	// is measured under concurrent durable (WAL-fsynced) ingest. The
	// backend must have a live write path — diskstore, not memstore.
	MutateFrac float64
}

// serveMutateBody is the write mixed into a MutateFrac run: the smallest
// realistic durable batch — one new vertex, wired into the existing graph
// through a batch-relative reference. It stays valid as the graph grows.
const serveMutateBody = `{"vertices":[{"labels":["Noise"],"props":{"n":1}}],"edges":[{"src":-1,"dst":0,"type":"noise"}]}`

// ServeThroughput loads the environment's dataset on the backend, starts
// a real HTTP server on a loopback port, and measures request throughput
// and latency percentiles from N concurrent loadgen clients. Every point
// must come back with non-empty rows and zero transport errors; shed
// requests (429) are reported, not hidden.
func ServeThroughput(env *Env, b Backend, opts ServeOptions) ([]ServePoint, error) {
	clients := opts.Clients
	if len(clients) == 0 {
		clients = DefaultServeClients
	}
	if opts.RequestsPerClient <= 0 {
		opts.RequestsPerClient = 50
	}
	st, cleanup, err := env.load(b, "serve", nil)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	srv, err := server.New(server.Config{
		Graph:         storage.Graph(st),
		MaxConcurrent: opts.MaxConcurrent,
		MaxQueued:     opts.MaxQueued,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	q, err := parallelQuery(env)
	if err != nil {
		return nil, err
	}

	var points []ServePoint
	for _, n := range clients {
		if n <= 0 {
			return nil, fmt.Errorf("bench: invalid client count %d", n)
		}
		lopts := loadgen.Options{
			BaseURL:  "http://" + addr,
			Query:    q,
			Clients:  n,
			Requests: n * opts.RequestsPerClient,
		}
		if opts.MutateFrac > 0 {
			lopts.MutateFrac = opts.MutateFrac
			lopts.MutateBody = serveMutateBody
		}
		rep, err := loadgen.Run(lopts)
		if err != nil {
			return nil, err
		}
		if rep.Errors > 0 {
			return nil, fmt.Errorf("bench: %d/%d requests failed at %d clients: %s",
				rep.Errors, rep.Requests, n, rep.FirstError)
		}
		if rep.MutateErrors > 0 {
			return nil, fmt.Errorf("bench: %d/%d mutations failed at %d clients: %s",
				rep.MutateErrors, rep.Mutates, n, rep.FirstError)
		}
		if rep.RowsPerOK <= 0 {
			return nil, fmt.Errorf("bench: server returned no rows at %d clients", n)
		}
		cs := srv.Cache().Stats()
		points = append(points, ServePoint{
			Clients:     n,
			Requests:    rep.Requests,
			OK:          rep.OK,
			Shed:        rep.Shed,
			ReqPerSec:   rep.ReqPerSec,
			P50Ms:       float64(rep.P50.Microseconds()) / 1000,
			P99Ms:       float64(rep.P99.Microseconds()) / 1000,
			CacheHits:   cs.Hits,
			CacheMisses: cs.Misses,
			Mutates:     rep.Mutates,
			MutateShed:  rep.MutateShed,
			MutateP99Ms: float64(rep.MutateP99.Microseconds()) / 1000,
		})
	}
	return points, nil
}

// FormatServeTable renders serving-throughput points. Mixed read/write
// runs grow write columns; pure-read tables keep the original shape.
func FormatServeTable(title string, pts []ServePoint) string {
	mixed := false
	for _, p := range pts {
		if p.Mutates > 0 {
			mixed = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%10s %8s %8s %6s %11s %10s %10s",
		title, "clients", "reqs", "ok", "shed", "req/sec", "p50(ms)", "p99(ms)")
	if mixed {
		fmt.Fprintf(&b, " %8s %9s %11s", "writes", "wshed", "wp99(ms)")
	}
	b.WriteByte('\n')
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %8d %8d %6d %11.0f %10.3f %10.3f",
			p.Clients, p.Requests, p.OK, p.Shed, p.ReqPerSec, p.P50Ms, p.P99Ms)
		if mixed {
			fmt.Fprintf(&b, " %8d %9d %11.3f", p.Mutates, p.MutateShed, p.MutateP99Ms)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
