package bench

import (
	"strings"
	"testing"
)

// TestServeThroughputShapes runs the end-to-end serving experiment small:
// a real loopback HTTP server, 1 and 8 concurrent clients, a handful of
// requests each. It validates the acceptance shape — non-empty rows,
// zero failed requests, positive throughput and latency percentiles for
// ≥8 concurrent clients — on both memstore and the tight-cache diskstore.
// It runs under -race in CI, covering the full server/loadgen stack.
func TestServeThroughputShapes(t *testing.T) {
	env := newEnv(t, "MED")
	for _, v := range []struct {
		name string
		env  *Env
		back Backend
	}{
		{"memstore", env, Memstore},
		{"diskstore-tight", env.WithCachePages(8), Diskstore},
	} {
		t.Run(v.name, func(t *testing.T) {
			pts, err := ServeThroughput(v.env, v.back,
				ServeOptions{Clients: []int{1, 8}, RequestsPerClient: 5})
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != 2 {
				t.Fatalf("%d points", len(pts))
			}
			for i, p := range pts {
				if p.OK != p.Requests || p.Shed != 0 {
					t.Errorf("point %d: %d/%d ok, %d shed — unsaturated run must fully succeed", i, p.OK, p.Requests, p.Shed)
				}
				if p.ReqPerSec <= 0 || p.P50Ms <= 0 || p.P99Ms < p.P50Ms {
					t.Errorf("point %d has nonsense latency numbers: %+v", i, p)
				}
				if p.CacheHits+p.CacheMisses == 0 {
					t.Errorf("point %d: plan cache untouched, requests bypassed the cache path", i)
				}
			}
			if pts[1].Clients != 8 || pts[1].Requests != 8*5 {
				t.Errorf("8-client point mis-sized: %+v", pts[1])
			}
		})
	}
	if !strings.Contains(FormatServeTable("serve", []ServePoint{{Clients: 1}}), "req/sec") {
		t.Error("serve table formatting broken")
	}
	if _, err := ServeThroughput(env, Memstore, ServeOptions{Clients: []int{0}}); err == nil {
		t.Error("invalid client count accepted")
	}
}

// TestServeThroughputMixed runs the serve experiment with a write
// fraction against the diskstore backend: reads and durable writes share
// the server, every mutation must succeed, and the table grows the write
// columns. This is the loadgen -mutate-frac satellite's acceptance test.
func TestServeThroughputMixed(t *testing.T) {
	env := newEnv(t, "MED")
	pts, err := ServeThroughput(env, Diskstore,
		ServeOptions{Clients: []int{4}, RequestsPerClient: 25, MutateFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Mutates == 0 {
		t.Fatal("mixed run issued no mutations")
	}
	reads := p.Requests - p.Mutates
	if p.OK+p.Shed != reads {
		t.Errorf("reads: %d ok + %d shed != %d issued", p.OK, p.Shed, reads)
	}
	if p.ReqPerSec <= 0 || p.P99Ms <= 0 {
		t.Errorf("read latency numbers missing under ingest: %+v", p)
	}
	table := FormatServeTable("mixed", pts)
	if !strings.Contains(table, "wp99(ms)") || !strings.Contains(table, "writes") {
		t.Errorf("mixed table lacks write columns:\n%s", table)
	}
	if strings.Contains(FormatServeTable("pure", []ServePoint{{Clients: 1}}), "wp99") {
		t.Error("pure-read table grew write columns")
	}
}
