package bench

import (
	"strings"
	"testing"
)

// TestServeThroughputShapes runs the end-to-end serving experiment small:
// a real loopback HTTP server, 1 and 8 concurrent clients, a handful of
// requests each. It validates the acceptance shape — non-empty rows,
// zero failed requests, positive throughput and latency percentiles for
// ≥8 concurrent clients — on both memstore and the tight-cache diskstore.
// It runs under -race in CI, covering the full server/loadgen stack.
func TestServeThroughputShapes(t *testing.T) {
	env := newEnv(t, "MED")
	for _, v := range []struct {
		name string
		env  *Env
		back Backend
	}{
		{"memstore", env, Memstore},
		{"diskstore-tight", env.WithCachePages(8), Diskstore},
	} {
		t.Run(v.name, func(t *testing.T) {
			pts, err := ServeThroughput(v.env, v.back,
				ServeOptions{Clients: []int{1, 8}, RequestsPerClient: 5})
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != 2 {
				t.Fatalf("%d points", len(pts))
			}
			for i, p := range pts {
				if p.OK != p.Requests || p.Shed != 0 {
					t.Errorf("point %d: %d/%d ok, %d shed — unsaturated run must fully succeed", i, p.OK, p.Requests, p.Shed)
				}
				if p.ReqPerSec <= 0 || p.P50Ms <= 0 || p.P99Ms < p.P50Ms {
					t.Errorf("point %d has nonsense latency numbers: %+v", i, p)
				}
				if p.CacheHits+p.CacheMisses == 0 {
					t.Errorf("point %d: plan cache untouched, requests bypassed the cache path", i)
				}
			}
			if pts[1].Clients != 8 || pts[1].Requests != 8*5 {
				t.Errorf("8-client point mis-sized: %+v", pts[1])
			}
		})
	}
	if !strings.Contains(FormatServeTable("serve", []ServePoint{{Clients: 1}}), "req/sec") {
		t.Error("serve table formatting broken")
	}
	if _, err := ServeThroughput(env, Memstore, ServeOptions{Clients: []int{0}}); err == nil {
		t.Error("invalid client count accepted")
	}
}
