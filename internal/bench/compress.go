package bench

// The format-v5 compression experiment: the same synthetic graph stored
// in the v4 record-array layout and the v5 delta-varint layout, compared
// on adjacency bytes per edge, total bytes on disk, and typed-traversal
// throughput under a deliberately tight page budget — with the mmap read
// path both off and on. It also reports the bloom-guard skip rate for
// absent-value property probes, which only the v5 statistics block can
// answer (v4 rows show 0 for contrast).

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/cypher"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/storetest"
)

// CompressOptions configures the compression experiment.
type CompressOptions struct {
	// Vertices and Edges size the synthetic graph (storetest.BuildRandomBulk).
	Vertices, Edges int
	// Seed drives the deterministic graph generator.
	Seed int64
	// TightPages is the page-cache budget for every traversal
	// measurement — far below the v4 working set, so the layouts'
	// locality difference is what the numbers measure.
	TightPages int
	// PageSize is the cache page size (default 4096).
	PageSize int
	// Passes is the number of timed full-graph traversal sweeps per
	// goroutine.
	Passes int
	// Probes is the number of absent-value property queries used to
	// measure the bloom-guard skip rate.
	Probes int
	// DataDir overrides the scratch location (default os.TempDir()).
	DataDir string
}

func (o CompressOptions) withDefaults() CompressOptions {
	if o.Vertices == 0 {
		o.Vertices = 20000
	}
	if o.Edges == 0 {
		o.Edges = o.Vertices * 3
	}
	if o.Seed == 0 {
		o.Seed = 2021
	}
	if o.TightPages == 0 {
		o.TightPages = 16
	}
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.Passes == 0 {
		o.Passes = 8
	}
	if o.Probes == 0 {
		o.Probes = 50
	}
	return o
}

// CompressRow is one (format, mmap) cell of the comparison.
type CompressRow struct {
	Format          string // "v4" or "v5"
	Mmap            bool
	Vertices        int
	Edges           int
	EdgeBytes       int64   // logical adjacency bytes (FormatInfo.EdgeBytes)
	BytesPerEdge    float64 // EdgeBytes / Edges
	DiskBytes       int64   // every store file summed
	SingleOpsPerSec float64 // edge visits/s, one goroutine
	FourOpsPerSec   float64 // edge visits/s, four goroutines
	BloomSkipRate   float64 // absent-value probes skipped / probes
}

// Compress builds the same random graph into a v4 and a v5 diskstore,
// then measures each store reopened under the tight page budget with the
// mmap read path off and on — four rows. Throughput is full-graph typed
// out-adjacency sweeps, reported as edge visits per second so rows are
// comparable across layouts.
func Compress(o CompressOptions) ([]CompressRow, error) {
	o = o.withDefaults()
	base := o.DataDir
	if base == "" {
		base = os.TempDir()
	}
	scratch, err := os.MkdirTemp(base, "pgs-compress-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	dirs := map[string]string{}
	for _, f := range []struct {
		name   string
		format int
	}{{"v4", 4}, {"v5", 0}} {
		dir := filepath.Join(scratch, f.name)
		st, err := diskstore.Open(dir, diskstore.Options{
			PageSize: o.PageSize, Format: f.format,
		})
		if err != nil {
			return nil, err
		}
		if _, err := storetest.BuildRandomBulk(st, o.Seed, o.Vertices, o.Edges, 1024); err != nil {
			st.Close()
			return nil, err
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		dirs[f.name] = dir
	}

	var rows []CompressRow
	for _, format := range []string{"v4", "v5"} {
		for _, useMmap := range []bool{false, true} {
			row, err := compressOne(dirs[format], format, useMmap, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// compressOne reopens one prebuilt store under the tight budget and
// takes every measurement for its row.
func compressOne(dir, format string, useMmap bool, o CompressOptions) (CompressRow, error) {
	st, err := diskstore.Open(dir, diskstore.Options{
		PageSize: o.PageSize, CachePages: o.TightPages, Mmap: useMmap,
	})
	if err != nil {
		return CompressRow{}, err
	}
	defer st.Close()

	disk, err := dirSize(dir)
	if err != nil {
		return CompressRow{}, err
	}
	info := st.Format()
	nV, nE := st.NumVertices(), st.NumEdges()
	row := CompressRow{
		Format: format, Mmap: useMmap,
		Vertices: nV, Edges: nE,
		EdgeBytes: info.EdgeBytes, DiskBytes: disk,
	}
	if nE > 0 {
		row.BytesPerEdge = float64(info.EdgeBytes) / float64(nE)
	}

	types := make([]storage.SymbolID, 0, 3)
	for _, et := range []string{"r1", "r2", "r3"} {
		if id := st.TypeID(et); id != storage.NoSymbol {
			types = append(types, id)
		}
	}
	sweep := func() int64 {
		var visited int64
		for _, tid := range types {
			for v := 0; v < nV; v++ {
				st.ForEachOutID(storage.VID(v), tid, func(storage.EID, storage.VID) bool {
					visited++
					return true
				})
			}
		}
		return visited
	}
	sweep() // warm to steady state; the tight cache thrashes either way

	ms, err := timeIt(func() error {
		for p := 0; p < o.Passes; p++ {
			sweep()
		}
		return nil
	})
	if err != nil {
		return CompressRow{}, err
	}
	row.SingleOpsPerSec = float64(o.Passes*nE) / (ms / 1000)

	const workers = 4
	ms, err = timeIt(func() error {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := 0; p < o.Passes; p++ {
					sweep()
				}
			}()
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return CompressRow{}, err
	}
	row.FourOpsPerSec = float64(workers*o.Passes*nE) / (ms / 1000)

	rate, err := bloomSkipRate(st, o.Probes)
	if err != nil {
		return CompressRow{}, err
	}
	row.BloomSkipRate = rate
	return row, nil
}

// bloomSkipRate runs absent-value property probes against the store and
// reports the fraction the statistics guard skipped without scanning.
// Only a store with the v5 statistics block can prove absence, so v4
// rows report 0.
func bloomSkipRate(st *diskstore.Store, probes int) (float64, error) {
	if probes <= 0 {
		return 0, nil
	}
	before := query.BloomSkips()
	for i := 0; i < probes; i++ {
		src := fmt.Sprintf(`MATCH (a:A {p0: 'compress-absent-%d'}) RETURN a.p1`, i)
		p, err := query.Prepare(st, cypher.MustParse(src))
		if err != nil {
			return 0, err
		}
		if _, err := p.Execute(); err != nil {
			return 0, err
		}
	}
	return float64(query.BloomSkips()-before) / float64(probes), nil
}

// dirSize sums the sizes of every regular file under dir.
func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		total += fi.Size()
		return nil
	})
	return total, err
}

// FormatCompressTable renders the compression comparison.
func FormatCompressTable(title string, rows []CompressRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-6s %-5s %9s %9s %11s %8s %11s %13s %13s %11s\n",
		title, "format", "mmap", "vertices", "edges", "edge-bytes",
		"B/edge", "disk-bytes", "1-thr edge/s", "4-thr edge/s", "bloom-skip")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-5v %9d %9d %11d %8.2f %11d %13.0f %13.0f %10.0f%%\n",
			r.Format, r.Mmap, r.Vertices, r.Edges, r.EdgeBytes,
			r.BytesPerEdge, r.DiskBytes, r.SingleOpsPerSec, r.FourOpsPerSec,
			r.BloomSkipRate*100)
	}
	return b.String()
}
