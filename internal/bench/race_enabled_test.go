//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector; throughput assertions skip then, since instrumentation
// overhead makes parallel speedup unreliable.
const raceEnabled = true
