// Package bench is the experiment harness: one driver per table/figure of
// the paper's evaluation (§5), shared by cmd/pgsbench and the repository's
// testing.B benchmarks. Each driver returns typed rows that print in the
// same shape the paper reports.
//
// An Env bundles one generated dataset (MED or FIN) with the Options that
// scale it; drivers load the dataset into a backend (memstore or
// diskstore), run their experiment, and clean up. Beyond the paper's
// figures, ParallelScaling measures how one shared compiled plan scales
// across concurrent readers — the serving-oriented extension of the
// paper's claim — optionally in the disk-bound regime via
// Env.WithCachePages.
//
// Format* helpers render each row type as the text table cmd/pgsbench
// prints.
package bench
