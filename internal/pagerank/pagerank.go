// Package pagerank implements OntologyPR (Algorithm 6 of the paper): a
// centrality analysis over a domain ontology that the concept-centric
// schema optimization algorithm uses to rank concepts. Compared to plain
// PageRank it (a) dissolves union concepts into their members, (b) runs
// the random walk without inheritance edges and afterwards lets children
// inherit their best ancestor's score, and (c) adds a reverse edge for
// every relationship so in- and out-degree count equally.
package pagerank

import (
	"sort"

	"repro/internal/ontology"
)

// Options tunes the underlying PageRank iteration.
type Options struct {
	Damping   float64 // default 0.85
	Tolerance float64 // L1 convergence threshold, default 1e-10
	MaxIter   int     // default 200
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	return o
}

// OntologyPR computes the centrality score of every concept. Union
// concepts (removed from the walk) receive score 0; every other concept
// receives its converged PageRank, possibly upgraded to its best
// inheritance ancestor's score.
func OntologyPR(o *ontology.Ontology, opts Options) map[string]float64 {
	opts = opts.withDefaults()

	union := map[string]bool{}
	for _, r := range o.Relationships {
		if r.Type == ontology.Union {
			union[r.Src] = true
		}
	}

	// Build the undirected walk graph: all non-union, non-inheritance
	// relationships, with union endpoints redistributed to members.
	members := map[string][]string{} // union concept -> member concepts
	for _, r := range o.Relationships {
		if r.Type == ontology.Union {
			members[r.Src] = append(members[r.Src], r.Dst)
		}
	}
	// resolve expands an endpoint into non-union concepts (transitively,
	// for unions of unions).
	var resolve func(c string, seen map[string]bool) []string
	resolve = func(c string, seen map[string]bool) []string {
		if !union[c] {
			return []string{c}
		}
		if seen[c] {
			return nil
		}
		seen[c] = true
		var out []string
		for _, m := range members[c] {
			out = append(out, resolve(m, seen)...)
		}
		return out
	}

	var nodes []string
	idx := map[string]int{}
	for _, c := range o.Concepts {
		if union[c.Name] {
			continue
		}
		idx[c.Name] = len(nodes)
		nodes = append(nodes, c.Name)
	}
	n := len(nodes)
	if n == 0 {
		return map[string]float64{}
	}
	adj := make([][]int, n)
	addEdge := func(a, b string) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if !oka || !okb {
			return
		}
		// Both directions: the reverse edge of Algorithm 6 makes the
		// graph effectively undirected.
		adj[ia] = append(adj[ia], ib)
		adj[ib] = append(adj[ib], ia)
	}
	for _, r := range o.Relationships {
		if r.Type == ontology.Union || r.Type == ontology.Inheritance {
			continue
		}
		for _, s := range resolve(r.Src, map[string]bool{}) {
			for _, d := range resolve(r.Dst, map[string]bool{}) {
				if s != d {
					addEdge(s, d)
				}
			}
		}
	}

	pr := pageRank(adj, opts)

	scores := map[string]float64{}
	for i, name := range nodes {
		scores[name] = pr[i]
	}
	for _, c := range o.Concepts {
		if union[c.Name] {
			scores[c.Name] = 0
		}
	}

	// Re-attach inheritance: every concept inherits the maximum score
	// along its ancestor chain (depth-first from roots, Algorithm 6's
	// updatePR).
	parents := map[string][]string{}
	for _, r := range o.Relationships {
		if r.Type == ontology.Inheritance {
			parents[r.Dst] = append(parents[r.Dst], r.Src)
		}
	}
	var best func(c string, seen map[string]bool) float64
	best = func(c string, seen map[string]bool) float64 {
		if seen[c] {
			return 0
		}
		seen[c] = true
		s := scores[c]
		for _, p := range parents[c] {
			if v := best(p, seen); v > s {
				s = v
			}
		}
		return s
	}
	names := make([]string, 0, len(scores))
	for name := range scores {
		names = append(names, name)
	}
	sort.Strings(names)
	updated := map[string]float64{}
	for _, name := range names {
		updated[name] = best(name, map[string]bool{})
	}
	return updated
}

// pageRank runs the power iteration on an adjacency list (already
// symmetrized). Dangling nodes distribute uniformly.
func pageRank(adj [][]int, opts Options) []float64 {
	n := len(adj)
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for i, outs := range adj {
			if len(outs) == 0 {
				dangling += pr[i]
				continue
			}
			share := pr[i] / float64(len(outs))
			for _, j := range outs {
				next[j] += share
			}
		}
		base := (1-opts.Damping)/float64(n) + opts.Damping*dangling/float64(n)
		delta := 0.0
		for i := range next {
			v := base + opts.Damping*next[i]
			if d := v - pr[i]; d >= 0 {
				delta += d
			} else {
				delta -= d
			}
			pr[i], next[i] = v, 0
		}
		if delta < opts.Tolerance {
			break
		}
	}
	return pr
}
