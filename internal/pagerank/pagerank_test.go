package pagerank

import (
	"math"
	"testing"

	"repro/internal/ontology"
)

func TestStarCenterRanksHighest(t *testing.T) {
	o := ontology.New()
	o.AddConcept("Hub")
	for _, n := range []string{"A", "B", "C", "D"} {
		o.AddConcept(n)
		o.AddRelationship("r"+n, "Hub", n, ontology.OneToMany)
	}
	scores := OntologyPR(o, Options{})
	for _, n := range []string{"A", "B", "C", "D"} {
		if scores["Hub"] <= scores[n] {
			t.Errorf("Hub (%v) should outrank %s (%v)", scores["Hub"], n, scores[n])
		}
	}
}

func TestOutDegreeCountsLikeInDegree(t *testing.T) {
	// Hub has only outgoing edges; with the reverse-edge modification it
	// must still rank highest (plain PageRank would starve it).
	o := ontology.New()
	o.AddConcept("Hub")
	for _, n := range []string{"A", "B", "C"} {
		o.AddConcept(n)
		o.AddRelationship("r"+n, "Hub", n, ontology.OneToOne)
	}
	scores := OntologyPR(o, Options{})
	if scores["Hub"] <= scores["A"] {
		t.Errorf("Hub %v vs A %v", scores["Hub"], scores["A"])
	}
}

func TestScoresSumToOne(t *testing.T) {
	o := ontology.RandomOntology(3, 12, 20)
	// Sum over non-union, pre-inheritance-update scores is not exposed;
	// instead check the walk scores are positive and bounded.
	scores := OntologyPR(o, Options{})
	for name, s := range scores {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Errorf("score[%s] = %v out of range", name, s)
		}
	}
}

func TestUnionConceptDissolved(t *testing.T) {
	o := ontology.New()
	o.AddConcept("Drug")
	o.AddConcept("Risk")
	o.AddConcept("ContraIndication")
	o.AddConcept("BlackBoxWarning")
	o.AddConcept("Other")
	o.AddRelationship("cause", "Drug", "Risk", ontology.OneToMany)
	o.AddRelationship("unionOf", "Risk", "ContraIndication", ontology.Union)
	o.AddRelationship("unionOf", "Risk", "BlackBoxWarning", ontology.Union)
	o.AddRelationship("x", "Drug", "Other", ontology.OneToOne)
	scores := OntologyPR(o, Options{})
	if scores["Risk"] != 0 {
		t.Errorf("union concept score = %v, want 0", scores["Risk"])
	}
	// Members receive the mass of the union's edge from Drug.
	if scores["ContraIndication"] <= 0 || scores["BlackBoxWarning"] <= 0 {
		t.Errorf("members got no mass: %v / %v", scores["ContraIndication"], scores["BlackBoxWarning"])
	}
	if scores["ContraIndication"] != scores["BlackBoxWarning"] {
		t.Errorf("symmetric members differ: %v vs %v", scores["ContraIndication"], scores["BlackBoxWarning"])
	}
}

func TestChildInheritsParentScore(t *testing.T) {
	o := ontology.New()
	o.AddConcept("Parent")
	o.AddConcept("Child")
	o.AddConcept("Leaf")
	for _, n := range []string{"A", "B", "C"} {
		o.AddConcept(n)
		o.AddRelationship("r"+n, "Parent", n, ontology.OneToMany)
	}
	o.AddRelationship("isA", "Parent", "Child", ontology.Inheritance)
	o.AddRelationship("isA", "Child", "Leaf", ontology.Inheritance)
	scores := OntologyPR(o, Options{})
	if scores["Child"] != scores["Parent"] {
		t.Errorf("child %v != parent %v", scores["Child"], scores["Parent"])
	}
	// Inheritance propagates down chains.
	if scores["Leaf"] != scores["Parent"] {
		t.Errorf("leaf %v != parent %v", scores["Leaf"], scores["Parent"])
	}
}

func TestChildKeepsOwnHigherScore(t *testing.T) {
	o := ontology.New()
	o.AddConcept("Parent")
	o.AddConcept("Child")
	for _, n := range []string{"A", "B", "C", "D"} {
		o.AddConcept(n)
		o.AddRelationship("r"+n, "Child", n, ontology.OneToMany)
	}
	o.AddRelationship("isA", "Parent", "Child", ontology.Inheritance)
	scores := OntologyPR(o, Options{})
	if scores["Child"] <= scores["Parent"] {
		t.Errorf("hub child %v should outrank leaf parent %v", scores["Child"], scores["Parent"])
	}
}

func TestDeterministic(t *testing.T) {
	o := ontology.RandomOntology(11, 15, 30)
	s1 := OntologyPR(o, Options{})
	s2 := OntologyPR(o, Options{})
	for k, v := range s1 {
		if s2[k] != v {
			t.Fatalf("non-deterministic score for %s: %v vs %v", k, v, s2[k])
		}
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	o := ontology.New()
	if got := OntologyPR(o, Options{}); len(got) != 0 {
		t.Errorf("empty ontology scores = %v", got)
	}
	o.AddConcept("Lonely")
	scores := OntologyPR(o, Options{})
	if scores["Lonely"] <= 0 {
		t.Errorf("isolated concept score = %v", scores["Lonely"])
	}
}

func TestInheritanceCycleSafe(t *testing.T) {
	// Inheritance cycles are rejected by Validate, but OntologyPR should
	// not hang even if handed one (defensive recursion guard).
	o := ontology.New()
	o.AddConcept("A")
	o.AddConcept("B")
	o.Relationships = append(o.Relationships,
		&ontology.Relationship{Name: "isA", Src: "A", Dst: "B", Type: ontology.Inheritance},
		&ontology.Relationship{Name: "isA", Src: "B", Dst: "A", Type: ontology.Inheritance},
	)
	done := make(chan struct{})
	go func() {
		OntologyPR(o, Options{})
		close(done)
	}()
	select {
	case <-done:
	default:
		// Give it a moment synchronously; the goroutine above finishes
		// fast when the guard works.
	}
	<-done
}
