package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokFloat
	tokPunct // single punctuation: ( ) [ ] { } : , . - < > = +
	tokNe    // <>
	tokLe    // <=
	tokGe    // >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits Cypher text into tokens. Identifiers may be backquoted to
// include arbitrary characters (used for replicated list properties such
// as `Indication.desc`).
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '`':
			if err := l.lexBackquoted(); err != nil {
				return nil, err
			}
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '<':
			if l.peek(1) == '>' {
				l.emit(token{kind: tokNe, text: "<>", pos: l.pos})
				l.pos += 2
			} else if l.peek(1) == '=' {
				l.emit(token{kind: tokLe, text: "<=", pos: l.pos})
				l.pos += 2
			} else {
				l.punct()
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit(token{kind: tokGe, text: ">=", pos: l.pos})
				l.pos += 2
			} else {
				l.punct()
			}
		case strings.ContainsRune("()[]{}:,.-=+*", rune(c)):
			l.punct()
		default:
			return nil, fmt.Errorf("cypher: unexpected character %q at position %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) punct() {
	l.emit(token{kind: tokPunct, text: l.src[l.pos : l.pos+1], pos: l.pos})
	l.pos++
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexBackquoted() error {
	start := l.pos
	l.pos++ // opening backquote
	for l.pos < len(l.src) && l.src[l.pos] != '`' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("cypher: unterminated backquoted identifier at position %d", start)
	}
	l.emit(token{kind: tokIdent, text: l.src[start+1 : l.pos], pos: start})
	l.pos++ // closing backquote
	return nil
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'', '"':
				b.WriteByte(next)
			default:
				b.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		if c == quote {
			l.emit(token{kind: tokString, text: b.String(), pos: start})
			l.pos++
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("cypher: unterminated string at position %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	kind := tokInt
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	l.emit(token{kind: kind, text: l.src[start:l.pos], pos: start})
}
