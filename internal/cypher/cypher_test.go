package cypher

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// paperQueries are the microbenchmark queries listed in §5.3 of the paper
// (Q1, Q3, Q5, Q7, Q9, Q11 verbatim shapes).
var paperQueries = []string{
	`MATCH (d:Drug)-[p:cause]->(r:Risk)<-[p2:unionOf]-(ci:ContraIndication) RETURN d.name`,
	`MATCH (aa:AutonomousAgent)<-[r1:isA]-(p:Person)<-[r2:isA]-(cp:ContractParty) RETURN aa`,
	`MATCH (dl:DrugLabInteraction)-[r:isA]->(di:DrugInteraction) RETURN di.summary`,
	`MATCH (n:Corporation) RETURN n.hasLegalName`,
	`MATCH p=(d:Drug)-[r:hasDrugRoute]->(dr:DrugRoute) RETURN dr.drugRouteId, size(COLLECT(d.brand)) AS numberOfDrugBrands`,
	`MATCH p=(con:Contract)-[r:isManagedBy]->(corp:Corporation) RETURN size(COLLECT(con.hasEffectiveDate)) AS numberOfEffectiveDates`,
}

func TestParsePaperQueries(t *testing.T) {
	for _, src := range paperQueries {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if len(q.Patterns) == 0 || len(q.Return) == 0 {
			t.Errorf("Parse(%q): empty query %+v", src, q)
		}
	}
}

func TestParsePatternShapes(t *testing.T) {
	q := MustParse(`MATCH (d:Drug)-[p:cause]->(r:Risk)<-[p2:unionOf]-(ci:ContraIndication) RETURN d.name`)
	pat := q.Patterns[0]
	if len(pat.Nodes) != 3 || len(pat.Rels) != 2 {
		t.Fatalf("pattern shape: %d nodes, %d rels", len(pat.Nodes), len(pat.Rels))
	}
	if pat.Rels[0].Dir != DirOut || pat.Rels[0].Type != "cause" {
		t.Errorf("rel0 = %+v", pat.Rels[0])
	}
	if pat.Rels[1].Dir != DirIn || pat.Rels[1].Type != "unionOf" {
		t.Errorf("rel1 = %+v", pat.Rels[1])
	}
	if pat.Nodes[2].Var != "ci" || pat.Nodes[2].Labels[0] != "ContraIndication" {
		t.Errorf("node2 = %+v", pat.Nodes[2])
	}
}

func TestParsePathVariable(t *testing.T) {
	q := MustParse(`MATCH p=(a:A)-[:r]->(b:B) RETURN a`)
	if q.Patterns[0].Var != "p" {
		t.Errorf("path var = %q, want p", q.Patterns[0].Var)
	}
}

func TestParsePropertyMap(t *testing.T) {
	q := MustParse(`MATCH (d:Drug {name: 'Aspirin', year: 1997}) RETURN d.brand`)
	props := q.Patterns[0].Nodes[0].Props
	if !props["name"].Equal(graph.S("Aspirin")) {
		t.Errorf("props[name] = %v", props["name"])
	}
	if !props["year"].Equal(graph.I(1997)) {
		t.Errorf("props[year] = %v", props["year"])
	}
}

func TestParseMultiLabelNode(t *testing.T) {
	q := MustParse("MATCH (x:Indication:Condition) RETURN x")
	if got := q.Patterns[0].Nodes[0].Labels; len(got) != 2 || got[0] != "Indication" || got[1] != "Condition" {
		t.Errorf("labels = %v", got)
	}
}

func TestParseBackquotedProperty(t *testing.T) {
	q := MustParse("MATCH (d:Drug) RETURN size(d.`Indication.desc`) AS n")
	f, ok := q.Return[0].Expr.(*FuncCall)
	if !ok || f.Name != "size" {
		t.Fatalf("return expr = %#v", q.Return[0].Expr)
	}
	pa, ok := f.Args[0].(*PropAccess)
	if !ok || pa.Key != "Indication.desc" {
		t.Errorf("arg = %#v", f.Args[0])
	}
	if q.Return[0].Alias != "n" {
		t.Errorf("alias = %q", q.Return[0].Alias)
	}
}

func TestParseWhereOperators(t *testing.T) {
	q := MustParse(`MATCH (a:A) WHERE a.x = 1 AND a.y <> 'z' OR NOT a.b > 2.5 AND a.c <= 3 RETURN a.x`)
	or, ok := q.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top-level where = %#v", q.Where)
	}
	// Left branch: AND of = and <>.
	and, ok := or.L.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("left = %#v", or.L)
	}
	if cmp := and.L.(*Binary); cmp.Op != OpEq {
		t.Errorf("first comparison op = %v", cmp.Op)
	}
	if cmp := and.R.(*Binary); cmp.Op != OpNe {
		t.Errorf("second comparison op = %v", cmp.Op)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q := MustParse(`MATCH (a:A) RETURN a.x ORDER BY a.x DESC, a.y LIMIT 10`)
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	q := MustParse(`MATCH (a:A) RETURN COUNT(*), COUNT(DISTINCT a.x)`)
	f0 := q.Return[0].Expr.(*FuncCall)
	if !f0.Star || f0.Name != "count" {
		t.Errorf("f0 = %+v", f0)
	}
	f1 := q.Return[1].Expr.(*FuncCall)
	if !f1.Distinct {
		t.Errorf("f1 = %+v", f1)
	}
	q2 := MustParse(`MATCH (a:A) RETURN DISTINCT a.x`)
	if !q2.Distinct {
		t.Error("RETURN DISTINCT not flagged")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"RETURN 1",
		"MATCH (a:A)",                      // no RETURN
		"MATCH (a:A RETURN a",              // unclosed node
		"MATCH (a:A)-[:r]-(b:B) RETURN a",  // undirected
		"MATCH (a:A) RETURN frobnicate(a)", // unknown function
		"MATCH (a:A) RETURN sum(*)",        // star on non-count
		"MATCH (a:A) WHERE a. RETURN a",
		"MATCH (a:A) RETURN a.x LIMIT x",
		"MATCH (a:A) RETURN a.x garbage",
		"MATCH (a:A) WHERE MATCH RETURN a",
		"MATCH (a:A {name: }) RETURN a",
		"MATCH (a:A) RETURN size(a.x, a.y)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	bad := []string{
		"MATCH (a:`Unterminated",
		"MATCH (a:A) WHERE a.x = 'unterminated RETURN a",
		"MATCH (a:A) WHERE a.x = ~ RETURN a",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	q := MustParse(`MATCH (a:A {s: 'it\'s\n\t\\'}) RETURN a`)
	got := q.Patterns[0].Nodes[0].Props["s"].Str()
	if got != "it's\n\t\\" {
		t.Errorf("escaped string = %q", got)
	}
}

// TestRenderRoundTrip: parse → String() → parse yields the same rendering.
func TestRenderRoundTrip(t *testing.T) {
	srcs := append([]string{}, paperQueries...)
	srcs = append(srcs,
		"MATCH (d:Drug) RETURN size(d.`Indication.desc`) AS n",
		`MATCH (a:A)-[r]->(b), (b)-[:t]->(c:C:D) WHERE a.x < 5 OR NOT b.y >= 2 RETURN DISTINCT a.x, COUNT(*) ORDER BY a.x DESC LIMIT 3`,
		`MATCH (a:A {k: 'v', n: 2}) RETURN AVG(a.x), MIN(a.y), MAX(a.z), SUM(a.w)`,
	)
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q: %v", text, err)
		}
		if q2.String() != text {
			t.Errorf("render not stable:\n 1st %s\n 2nd %s", text, q2.String())
		}
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	q := MustParse(paperQueries[4])
	c := q.Clone()
	if c.String() != q.String() {
		t.Fatalf("clone renders differently:\n%s\n%s", c.String(), q.String())
	}
	c.Patterns[0].Nodes[0].Labels[0] = "Mutated"
	c.Return[0].Expr = &Literal{Val: graph.I(0)}
	if q.Patterns[0].Nodes[0].Labels[0] != "Drug" {
		t.Error("Clone shares node label storage")
	}
	if q.String() == c.String() {
		t.Error("mutation did not change clone rendering")
	}
}

func TestHasAggregate(t *testing.T) {
	cases := map[string]bool{
		`MATCH (a:A) RETURN COUNT(*)`:                    true,
		`MATCH (a:A) RETURN size(COLLECT(a.x))`:          true,
		`MATCH (a:A) RETURN size(a.x)`:                   false,
		`MATCH (a:A) RETURN a.x`:                         false,
		`MATCH (a:A) WHERE a.x = 1 RETURN SUM(a.y)`:      true,
		`MATCH (a:A) RETURN a.x, size(COLLECT(a.b))`:     true,
		`MATCH (a:A) RETURN NOT a.flag = true, AVG(a.x)`: true,
	}
	for src, want := range cases {
		q := MustParse(src)
		got := false
		for _, ri := range q.Return {
			if HasAggregate(ri.Expr) {
				got = true
			}
		}
		if got != want {
			t.Errorf("HasAggregate(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestVars(t *testing.T) {
	q := MustParse(`MATCH (a:A)-[:r]->(b:B) WHERE a.x = b.y RETURN size(COLLECT(b.z)), a`)
	vars := map[string]bool{}
	Vars(q.Where, vars)
	for _, ri := range q.Return {
		Vars(ri.Expr, vars)
	}
	if !vars["a"] || !vars["b"] || len(vars) != 2 {
		t.Errorf("vars = %v", vars)
	}
}

func TestIdentQuoting(t *testing.T) {
	if got := ident("plain_name1"); got != "plain_name1" {
		t.Errorf("ident(plain) = %q", got)
	}
	if got := ident("Indication.desc"); got != "`Indication.desc`" {
		t.Errorf("ident(dotted) = %q", got)
	}
	if got := ident("1starts"); got != "`1starts`" {
		t.Errorf("ident(digit-start) = %q", got)
	}
}

// Property: rendering any query built from random simple parts reparses to
// an identical rendering.
func TestRenderReparseProperty(t *testing.T) {
	f := func(varName string, useWhere bool, limit uint8) bool {
		// Sanitize the variable name into a valid identifier.
		name := "v"
		for _, r := range varName {
			if r >= 'a' && r <= 'z' {
				name += string(r)
			}
		}
		src := "MATCH (" + name + ":L) "
		if useWhere {
			src += "WHERE " + name + ".x = 1 "
		}
		src += "RETURN " + name + ".y"
		if limit%2 == 0 {
			src += " LIMIT 5"
		}
		q, err := Parse(src)
		if err != nil {
			return false
		}
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		return q.String() == q2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse("match (a:A) where a.x = 1 return count(*) order by a.x limit 1")
	if err != nil {
		t.Fatalf("lowercase keywords rejected: %v", err)
	}
	if !strings.HasPrefix(q.String(), "MATCH") {
		t.Errorf("render = %q", q.String())
	}
}
