package cypher

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

var reserved = map[string]bool{
	"match": true, "where": true, "return": true, "order": true, "by": true,
	"limit": true, "and": true, "or": true, "not": true, "as": true,
	"asc": true, "desc": true, "distinct": true, "true": true, "false": true,
	"null": true,
}

// Parse parses a Cypher query in the supported fragment.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("cypher: %w (in %q)", err, src)
	}
	return q, nil
}

// MustParse parses or panics; for tests and static query tables.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) advance()    { p.i++ }

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("expected %s, found %s", strings.ToUpper(kw), p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if err := p.expectKeyword("match"); err != nil {
		return nil, err
	}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	q.Distinct = p.acceptKeyword("distinct")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := &ReturnItem{Expr: e}
		if p.acceptKeyword("as") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		}
		q.Return = append(q.Return, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s := &SortItem{Expr: e}
			if p.acceptKeyword("desc") {
				s.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, s)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.cur()
		if t.kind != tokInt {
			return nil, fmt.Errorf("expected integer after LIMIT, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		p.advance()
		q.Limit = n
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %s", p.cur())
	}
	return q, nil
}

func (p *parser) parsePattern() (*PathPattern, error) {
	pat := &PathPattern{}
	// Optional path variable: `p=(...)`.
	if p.cur().kind == tokIdent && !reserved[strings.ToLower(p.cur().text)] &&
		p.peek().kind == tokPunct && p.peek().text == "=" {
		pat.Var = p.cur().text
		p.advance()
		p.advance()
	}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for p.isPunct("-") || p.isPunct("<") {
		r, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		pat.Rels = append(pat.Rels, r)
		pat.Nodes = append(pat.Nodes, n)
	}
	return pat, nil
}

func (p *parser) parseNode() (*NodePattern, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	n := &NodePattern{}
	if p.cur().kind == tokIdent {
		n.Var = p.cur().text
		p.advance()
	}
	for p.acceptPunct(":") {
		label, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		n.Labels = append(n.Labels, label)
	}
	if p.acceptPunct("{") {
		n.Props = map[string]graph.Value{}
		for {
			key, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			val, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			n.Props[key] = val
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseRel() (*RelPattern, error) {
	r := &RelPattern{}
	incoming := p.acceptPunct("<")
	if err := p.expectPunct("-"); err != nil {
		return nil, err
	}
	if p.acceptPunct("[") {
		if p.cur().kind == tokIdent && !p.isPunct(":") {
			r.Var = p.cur().text
			p.advance()
		}
		if p.acceptPunct(":") {
			typ, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			r.Type = typ
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("-"); err != nil {
		return nil, err
	}
	if incoming {
		r.Dir = DirIn
		return r, nil
	}
	if err := p.expectPunct(">"); err != nil {
		return nil, fmt.Errorf("undirected relationships are not supported: %w", err)
	}
	r.Dir = DirOut
	return r, nil
}

func (p *parser) parseLiteralValue() (graph.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return graph.S(t.text), nil
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return graph.Null, err
		}
		return graph.I(n), nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return graph.Null, err
		}
		return graph.F(f), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return graph.B(true), nil
		case "false":
			p.advance()
			return graph.B(false), nil
		case "null":
			p.advance()
			return graph.Null, nil
		}
	}
	return graph.Null, fmt.Errorf("expected literal, found %s", t)
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var op BinaryOp
	switch {
	case p.cur().kind == tokNe:
		op = OpNe
	case p.cur().kind == tokLe:
		op = OpLe
	case p.cur().kind == tokGe:
		op = OpGe
	case p.isPunct("="):
		op = OpEq
	case p.isPunct("<"):
		op = OpLt
	case p.isPunct(">"):
		op = OpGt
	default:
		return l, nil
	}
	p.advance()
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

func (p *parser) parseTerm() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokString, tokInt, tokFloat:
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case tokPunct:
		if p.acceptPunct("(") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		low := strings.ToLower(t.text)
		switch low {
		case "true", "false", "null":
			v, _ := p.parseLiteralValue()
			return &Literal{Val: v}, nil
		}
		if reserved[low] {
			return nil, fmt.Errorf("unexpected keyword %s", t)
		}
		// Function call?
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			return p.parseFuncCall()
		}
		name := t.text
		p.advance()
		if p.acceptPunct(".") {
			key, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &PropAccess{Var: name, Key: key}, nil
		}
		return &VarRef{Name: name}, nil
	}
	return nil, fmt.Errorf("expected expression, found %s", t)
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := strings.ToLower(p.cur().text)
	p.advance() // name
	p.advance() // (
	f := &FuncCall{Name: name}
	if p.acceptPunct("*") {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if name != "count" {
			return nil, fmt.Errorf("%s(*) is not supported", name)
		}
		f.Star = true
		return f, nil
	}
	f.Distinct = p.acceptKeyword("distinct")
	if !p.isPunct(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if !f.IsAggregate() && f.Name != "size" {
		return nil, fmt.Errorf("unknown function %s", name)
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("%s expects exactly one argument", name)
	}
	return f, nil
}
