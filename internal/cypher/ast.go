// Package cypher implements a lexer, parser, and AST for the fragment of
// the Cypher query language used throughout the paper's evaluation:
// MATCH path patterns with labels and inline property maps, WHERE
// comparisons, and RETURN clauses with aggregation (COUNT, COLLECT, SUM,
// AVG, MIN, MAX), the size() function, DISTINCT, ORDER BY, and LIMIT.
//
// The AST is deliberately small and regular so the schema-driven query
// rewriter (internal/rewrite) can transform it mechanically.
package cypher

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Direction orients a relationship pattern relative to the textual
// left-to-right node order.
type Direction int

const (
	// DirOut matches edges from the left node to the right node: -[]->.
	DirOut Direction = iota
	// DirIn matches edges from the right node to the left node: <-[]-.
	DirIn
)

// Query is a parsed Cypher query.
type Query struct {
	Patterns []*PathPattern
	Where    Expr // nil when absent
	Distinct bool // RETURN DISTINCT
	Return   []*ReturnItem
	OrderBy  []*SortItem
	Limit    int // -1 when absent
}

// PathPattern is one comma-separated MATCH pattern: a chain of node
// patterns joined by relationship patterns. len(Rels) == len(Nodes)-1.
type PathPattern struct {
	Var   string // optional path variable, e.g. p=(a)-[]->(b); unused by execution
	Nodes []*NodePattern
	Rels  []*RelPattern
}

// NodePattern matches a vertex: optional variable, zero or more label
// constraints, and optional property equality constraints.
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]graph.Value
}

// RelPattern matches one edge: optional variable, optional type
// constraint, and a direction.
type RelPattern struct {
	Var  string
	Type string // empty = any type
	Dir  Direction
}

// ReturnItem is one projected column.
type ReturnItem struct {
	Expr  Expr
	Alias string // empty when no AS clause
}

// Name returns the column name (alias or rendered expression).
func (ri *ReturnItem) Name() string {
	if ri.Alias != "" {
		return ri.Alias
	}
	return ri.Expr.String()
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr Expr
	Desc bool
}

// Expr is a Cypher expression node.
type Expr interface {
	fmt.Stringer
	expr()
}

// PropAccess is variable.property.
type PropAccess struct {
	Var string
	Key string
}

// VarRef returns a bound pattern variable (a vertex).
type VarRef struct {
	Name string
}

// Literal is a constant value.
type Literal struct {
	Val graph.Value
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpAnd
	OpOr
)

func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// FuncCall applies a function or aggregate: COUNT, COLLECT, SUM, AVG, MIN,
// MAX (aggregates) or size (scalar). COUNT(*) is encoded with Star=true.
type FuncCall struct {
	Name     string // canonical lower-case name
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*PropAccess) expr() {}
func (*VarRef) expr()     {}
func (*Literal) expr()    {}
func (*Binary) expr()     {}
func (*Not) expr()        {}
func (*FuncCall) expr()   {}

// Aggregates lists the aggregate function names.
var aggregates = map[string]bool{
	"count": true, "collect": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncCall) IsAggregate() bool { return aggregates[f.Name] }

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return HasAggregate(x.L) || HasAggregate(x.R)
	case *Not:
		return HasAggregate(x.E)
	}
	return false
}

// Vars collects the pattern variables referenced by the expression.
func Vars(e Expr, into map[string]bool) {
	switch x := e.(type) {
	case *PropAccess:
		into[x.Var] = true
	case *VarRef:
		into[x.Name] = true
	case *Binary:
		Vars(x.L, into)
		Vars(x.R, into)
	case *Not:
		Vars(x.E, into)
	case *FuncCall:
		for _, a := range x.Args {
			Vars(a, into)
		}
	}
}

// ---- rendering ----

func ident(s string) string {
	if s == "" {
		return s
	}
	plain := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			plain = false
		}
	}
	if plain {
		return s
	}
	return "`" + s + "`"
}

func (p *PropAccess) String() string { return p.Var + "." + ident(p.Key) }
func (v *VarRef) String() string     { return v.Name }
func (l *Literal) String() string    { return l.Val.String() }

func (b *Binary) String() string {
	return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R)
}

func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

func (f *FuncCall) String() string {
	name := f.Name
	switch f.Name {
	case "count", "collect", "sum", "avg", "min", "max":
		name = strings.ToUpper(f.Name)
	}
	if f.Star {
		return name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return name + "(" + d + strings.Join(args, ", ") + ")"
}

func (n *NodePattern) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(n.Var)
	for _, l := range n.Labels {
		b.WriteByte(':')
		b.WriteString(ident(l))
	}
	if len(n.Props) > 0 {
		keys := make([]string, 0, len(n.Props))
		for k := range n.Props {
			keys = append(keys, k)
		}
		// Sorted for deterministic rendering.
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[j] < keys[i] {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		b.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", ident(k), n.Props[k])
		}
		b.WriteByte('}')
	}
	b.WriteByte(')')
	return b.String()
}

func (r *RelPattern) String() string {
	body := "[" + r.Var
	if r.Type != "" {
		body += ":" + ident(r.Type)
	}
	body += "]"
	if r.Dir == DirOut {
		return "-" + body + "->"
	}
	return "<-" + body + "-"
}

func (p *PathPattern) String() string {
	var b strings.Builder
	if p.Var != "" {
		b.WriteString(p.Var)
		b.WriteByte('=')
	}
	b.WriteString(p.Nodes[0].String())
	for i, r := range p.Rels {
		b.WriteString(r.String())
		b.WriteString(p.Nodes[i+1].String())
	}
	return b.String()
}

// String renders the query back to Cypher text; parsing the result yields
// an equivalent query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("MATCH ")
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	b.WriteString(" RETURN ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, ri := range q.Return {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ri.Expr.String())
		if ri.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(ri.Alias)
		}
	}
	for i, s := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(s.Expr.String())
		if s.Desc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Clone returns a deep copy of the query (the rewriter mutates its copy).
func (q *Query) Clone() *Query {
	c := &Query{Distinct: q.Distinct, Limit: q.Limit}
	for _, p := range q.Patterns {
		cp := &PathPattern{Var: p.Var}
		for _, n := range p.Nodes {
			cn := &NodePattern{Var: n.Var, Labels: append([]string(nil), n.Labels...)}
			if n.Props != nil {
				cn.Props = make(map[string]graph.Value, len(n.Props))
				for k, v := range n.Props {
					cn.Props[k] = v
				}
			}
			cp.Nodes = append(cp.Nodes, cn)
		}
		for _, r := range p.Rels {
			cr := *r
			cp.Rels = append(cp.Rels, &cr)
		}
		c.Patterns = append(c.Patterns, cp)
	}
	if q.Where != nil {
		c.Where = CloneExpr(q.Where)
	}
	for _, ri := range q.Return {
		c.Return = append(c.Return, &ReturnItem{Expr: CloneExpr(ri.Expr), Alias: ri.Alias})
	}
	for _, s := range q.OrderBy {
		c.OrderBy = append(c.OrderBy, &SortItem{Expr: CloneExpr(s.Expr), Desc: s.Desc})
	}
	return c
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *PropAccess:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *Literal:
		c := *x
		return &c
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Not:
		return &Not{E: CloneExpr(x.E)}
	case *FuncCall:
		c := &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	default:
		panic(fmt.Sprintf("cypher: unknown expr %T", e))
	}
}
