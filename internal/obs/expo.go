package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per family,
// then each series sorted by label key. Histograms expose cumulative
// log2 `le` buckets, `_sum`, and `_count`, all in seconds. Families
// appear in registration order, so diffing two scrapes is line-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, f := range families {
		if len(f.series) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		writeEscapedHelp(bw, f.help)
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			if s.hist != nil {
				writeHistogram(bw, f.name, s)
				continue
			}
			var v float64
			switch {
			case s.counter != nil:
				v = float64(s.counter.Load())
			case s.gauge != nil:
				v = float64(s.gauge.Load())
			case s.fn != nil:
				v = s.fn()
			}
			writeSample(bw, f.name, s.labels, nil, v)
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// log2 upper edges converted from microseconds to seconds, then +Inf,
// _sum, and _count.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	var cum [HistBuckets]int64
	count, sumUS := s.hist.cumulative(&cum)
	for i := range cum {
		// Bucket i holds observations <= 2^i - 1 µs.
		le := float64((int64(1)<<uint(i))-1) / 1e6
		writeSample(bw, name+"_bucket", s.labels,
			&Label{Name: "le", Value: strconv.FormatFloat(le, 'g', -1, 64)}, float64(cum[i]))
	}
	writeSample(bw, name+"_bucket", s.labels, &Label{Name: "le", Value: "+Inf"}, float64(count))
	writeSample(bw, name+"_sum", s.labels, nil, float64(sumUS)/1e6)
	writeSample(bw, name+"_count", s.labels, nil, float64(count))
}

// writeSample renders one `name{labels} value` line. extra, when non-nil,
// is appended after the series labels (the histogram `le` label).
func writeSample(bw *bufio.Writer, name string, labels []Label, extra *Label, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extra != nil {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			writeLabel(bw, l)
		}
		if extra != nil {
			if !first {
				bw.WriteByte(',')
			}
			writeLabel(bw, *extra)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	bw.WriteByte('\n')
}

func writeLabel(bw *bufio.Writer, l Label) {
	bw.WriteString(l.Name)
	bw.WriteString(`="`)
	for i := 0; i < len(l.Value); i++ {
		switch c := l.Value[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '"':
			bw.WriteString(`\"`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

// writeEscapedHelp escapes backslashes and newlines, the two characters
// the exposition format forbids raw in HELP text.
func writeEscapedHelp(bw *bufio.Writer, help string) {
	for i := 0; i < len(help); i++ {
		switch c := help[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}
