package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two latency buckets: bucket i
// holds observations whose microsecond latency has bit length i, i.e.
// lies in [2^(i-1), 2^i). 40 buckets reach past 2^39 µs (~9 days), far
// beyond any request a per-request timeout lets live. Observations past
// the last bucket's range clamp into it (the overflow bucket); Quantile
// bounds their estimate by the largest value actually observed.
const HistBuckets = 40

// Histogram is a fixed-size log2 latency histogram safe for concurrent
// Observe calls: every counter is atomic, so the hot path takes no locks
// and a metrics scrape never blocks a request.
type Histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	// Track the maximum so the overflow bucket (and every bucket) can
	// report a bounded upper estimate instead of a theoretical bucket
	// ceiling no observation ever reached.
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1]):
// the top of the bucket holding the rank-q observation, clamped to the
// largest value actually observed — so the overflow bucket reports a
// bounded estimate rather than ~2^39 µs. An empty histogram returns 0.
// Concurrent Observes make the answer approximate — fine for a stats
// endpoint, which is its only caller.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	if rank > total {
		rank = total
	}
	maxSeen := h.maxUS.Load()
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Upper bound of bucket i: 2^i - 1 microseconds, clamped to
			// the observed maximum when the ceiling overshoots it. The
			// overflow bucket's ceiling instead *undershoots* (samples
			// past the bucket range clamp into it), so there the observed
			// maximum is the only honest upper bound.
			up := (int64(1) << i) - 1
			if up > maxSeen || i == HistBuckets-1 {
				up = maxSeen
			}
			return time.Duration(up) * time.Microsecond
		}
	}
	return time.Duration(maxSeen) * time.Microsecond
}

// HistogramSnapshot is the JSON shape of one histogram's summary in the
// /stats response.
type HistogramSnapshot struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
}

// Snapshot summarizes the histogram for the stats endpoint.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		P50US: h.Quantile(0.50).Microseconds(),
		P90US: h.Quantile(0.90).Microseconds(),
		P99US: h.Quantile(0.99).Microseconds(),
	}
	if s.Count > 0 {
		s.MeanUS = h.sumUS.Load() / s.Count
	}
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// cumulative fills le-bucket cumulative counts (dst[i] = observations
// <= 2^i - 1 µs, the upper edge of log2 bucket i), returning the total
// and the sum in microseconds. The exposition writer reads histograms
// through this.
func (h *Histogram) cumulative(dst *[HistBuckets]int64) (count, sumUS int64) {
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		dst[i] = cum
	}
	return h.count.Load(), h.sumUS.Load()
}
