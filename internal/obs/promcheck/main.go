// Command promcheck validates Prometheus text exposition scrapes with
// the repo's strict parser: every line must parse, no metric/label pair
// may repeat, histograms must be internally consistent, and — when given
// more than one scrape file — counters must be monotonic from each
// scrape to the next. The CI metrics-smoke job boots pgsserve, saves two
// /metrics scrapes, and runs this over them.
//
// Usage:
//
//	promcheck scrape1.txt [scrape2.txt ...]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("promcheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: promcheck scrape1.txt [scrape2.txt ...]")
	}
	var prev *obs.Exposition
	prevName := ""
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		exp, err := obs.ParseExposition(data)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if prev != nil {
			if err := obs.CheckCounterMonotonic(prev, exp); err != nil {
				log.Fatalf("%s -> %s: %v", prevName, path, err)
			}
		}
		fmt.Printf("%s: %d samples, %d families, strict parse ok\n",
			path, len(exp.Samples), len(exp.Types))
		prev, prevName = exp, path
	}
	if len(os.Args) > 2 {
		fmt.Printf("counters monotonic across %d scrapes\n", len(os.Args)-1)
	}
}
