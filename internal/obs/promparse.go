package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its canonical
// (sorted, escaped) label rendering, and the value.
type Sample struct {
	Name     string
	LabelKey string // canonical sorted "k=v" join; "" for unlabeled
	Value    float64
}

// Exposition is one parsed scrape. Types maps family name to its TYPE
// declaration; Samples maps "name{labelkey}" to the value.
type Exposition struct {
	Types   map[string]string
	Samples map[string]float64
	Order   []string // sample keys in input order
}

// ParseExposition parses Prometheus text exposition strictly: every line
// must be a well-formed comment or sample, label values must be properly
// quoted, no (name, label set) pair may repeat, every sample's family
// must have a TYPE declared before it appears, and histogram families
// must have cumulative non-decreasing buckets whose +Inf count equals
// _count. It returns the parse or the first violation.
func ParseExposition(data []byte) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}, Samples: map[string]float64{}}
	// histBucketSeen collects per-series bucket values for the cumulative
	// check, keyed by family + non-le label key.
	type bucketSeq struct {
		les  []float64
		cums []float64
		inf  float64
		has  bool
	}
	buckets := map[string]*bucketSeq{}
	helped := map[string]bool{}

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "HELP" {
				if helped[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helped[name] = true
				continue
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			typ := strings.TrimSpace(fields[3])
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := exp.Types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			exp.Types[name] = typ
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(name, exp.Types)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration before it", lineNo, name)
		}
		var le string
		var rest []Label
		for _, l := range labels {
			if l.Name == "le" && strings.HasSuffix(name, "_bucket") {
				le = l.Value
				continue
			}
			rest = append(rest, l)
		}
		key := name + "{" + labelKey(labels) + "}"
		if _, dup := exp.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		exp.Samples[key] = value
		exp.Order = append(exp.Order, key)

		if exp.Types[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			if le == "" {
				return nil, fmt.Errorf("line %d: histogram bucket %s lacks an le label", lineNo, name)
			}
			bkey := fam + "{" + labelKey(rest) + "}"
			bs := buckets[bkey]
			if bs == nil {
				bs = &bucketSeq{}
				buckets[bkey] = bs
			}
			if le == "+Inf" {
				bs.inf, bs.has = value, true
			} else {
				lef, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: unparseable le %q", lineNo, le)
				}
				bs.les = append(bs.les, lef)
				bs.cums = append(bs.cums, value)
			}
		}
	}

	// Histogram closure: buckets cumulative and le-ascending, +Inf present
	// and equal to _count.
	for bkey, bs := range buckets {
		if !bs.has {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", bkey)
		}
		for i := 1; i < len(bs.cums); i++ {
			if bs.les[i] <= bs.les[i-1] {
				return nil, fmt.Errorf("histogram %s: le edges not ascending", bkey)
			}
			if bs.cums[i] < bs.cums[i-1] {
				return nil, fmt.Errorf("histogram %s: bucket counts not cumulative", bkey)
			}
		}
		if len(bs.cums) > 0 && bs.inf < bs.cums[len(bs.cums)-1] {
			return nil, fmt.Errorf("histogram %s: +Inf bucket below a finite bucket", bkey)
		}
		fam := strings.SplitN(bkey, "{", 2)[0]
		rest := strings.TrimSuffix(strings.SplitN(bkey, "{", 2)[1], "}")
		countKey := fam + "_count{" + rest + "}"
		count, ok := exp.Samples[countKey]
		if !ok {
			return nil, fmt.Errorf("histogram %s lacks a _count sample", bkey)
		}
		if count != bs.inf {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", bkey, bs.inf, count)
		}
	}
	return exp, nil
}

// familyOf resolves a sample name to its declared family: the name
// itself, or the base of a histogram/summary suffix.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return ""
}

// labelKey renders labels canonically (sorted by name) for dup detection
// and cross-scrape matching.
func labelKey(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	return strings.Join(parts, ",")
}

// parseSampleLine parses `name{labels} value` (no timestamp — the writer
// never emits one, and the smoke check treats one as a violation).
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name = rest[:i]
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip escaped char
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("expected exactly one value after the series, got %q", rest)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", rest)
	}
	return name, labels, value, nil
}

// parseLabels parses the interior of a {label="value",...} set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	seen := map[string]bool{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q lacks '='", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate label %q within one series", name)
		}
		seen[name] = true
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		var val strings.Builder
		j := 1
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("invalid escape \\%c in label %s", s[j+1], name)
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		s = s[j:]
		if s == "" {
			break
		}
		if !strings.HasPrefix(s, ",") {
			return nil, fmt.Errorf("expected ',' between labels, got %q", s)
		}
		s = s[1:]
	}
	return out, nil
}

// CheckCounterMonotonic verifies that every counter-typed series in prev
// (histogram buckets, sums, and counts included) has a value in cur at
// least as large — the cross-scrape monotonicity the CI metrics-smoke
// job enforces. A counter series present in prev must still exist in cur.
func CheckCounterMonotonic(prev, cur *Exposition) error {
	for key, pv := range prev.Samples {
		name := strings.SplitN(key, "{", 2)[0]
		fam := familyOf(name, prev.Types)
		if fam == "" {
			continue
		}
		typ := prev.Types[fam]
		monotonic := typ == "counter" || typ == "histogram"
		if !monotonic {
			continue
		}
		cv, ok := cur.Samples[key]
		if !ok {
			return fmt.Errorf("counter series %s disappeared between scrapes", key)
		}
		if cv < pv {
			return fmt.Errorf("counter series %s went backwards: %v -> %v", key, pv, cv)
		}
	}
	return nil
}
