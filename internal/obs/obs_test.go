package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramEmptyQuantile: an empty histogram must report 0 for every
// quantile, not a garbage bucket midpoint.
func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	s := h.Snapshot()
	if s.Count != 0 || s.MeanUS != 0 || s.P50US != 0 || s.P99US != 0 {
		t.Errorf("empty histogram snapshot not all zero: %+v", s)
	}
}

// TestHistogramOverflowBounded: observations past the last bucket's range
// clamp into the overflow bucket, and Quantile must report a bounded
// upper estimate — the observed maximum — not the ~2^39 µs bucket
// ceiling.
func TestHistogramOverflowBounded(t *testing.T) {
	var h Histogram
	huge := 3 * time.Duration(int64(1)<<41) * time.Microsecond // far past the bucket range
	h.Observe(huge)
	got := h.Quantile(0.99)
	if got != huge {
		t.Errorf("overflow Quantile(0.99) = %v, want the observed max %v", got, huge)
	}
	// A mixed histogram's top quantile is still bounded by the max.
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if got := h.Quantile(1); got > huge {
		t.Errorf("Quantile(1) = %v exceeds the observed maximum %v", got, huge)
	}
}

// TestHistogramQuantileClampedToMax: within a normal bucket the reported
// upper bound must never exceed the largest observed value.
func TestHistogramQuantileClampedToMax(t *testing.T) {
	var h Histogram
	// 1025 µs lands in the [1024, 2048) bucket whose ceiling is 2047 µs;
	// the estimate must clamp to the real max.
	h.Observe(1025 * time.Microsecond)
	if got, want := h.Quantile(0.99), 1025*time.Microsecond; got != want {
		t.Errorf("Quantile(0.99) = %v, want clamped max %v", got, want)
	}
}

// TestHistogramConcurrentObserveSnapshot hammers Observe from many
// goroutines while snapshotting concurrently; run under -race this is
// the data-race guard for the lock-free hot path.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
				h.Quantile(0.99)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	// Wait for observers, then stop the snapshotter.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// TestRegistryDuplicatePanics: registering the same (name, label set)
// twice is a programming error and must panic, as must a kind clash.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("pgs_test_total", "t", L("a", "1"))
	r.NewCounter("pgs_test_total", "t", L("a", "2")) // distinct labels: fine
	mustPanic(t, "duplicate series", func() { r.NewCounter("pgs_test_total", "t", L("a", "1")) })
	mustPanic(t, "kind clash", func() { r.NewGauge("pgs_test_total", "t") })
	mustPanic(t, "invalid name", func() { r.NewCounter("0bad", "t") })
	mustPanic(t, "invalid label", func() { r.NewCounter("pgs_ok_total", "t", L("0bad", "x")) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestExpositionRoundTrip: the writer's output must satisfy the strict
// parser, cover every registered series exactly once, and stay monotonic
// across two scrapes with counter activity in between.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pgs_reqs_total", "requests", L("endpoint", "/query"))
	g := r.NewGauge("pgs_inflight", "in-flight")
	h := r.NewHistogram("pgs_latency_seconds", "latency", L("endpoint", "/query"))
	r.CounterFunc("pgs_fn_total", "func counter", func() float64 { return 42 })
	r.GaugeFunc("pgs_fn_gauge", `odd "help" with \ and`+"\nnewline`", func() float64 { return -1.5 })

	c.Add(3)
	g.Set(2)
	h.Observe(1500 * time.Microsecond)
	h.Observe(20 * time.Microsecond)

	var buf1 bytes.Buffer
	if err := r.WritePrometheus(&buf1); err != nil {
		t.Fatal(err)
	}
	exp1, err := ParseExposition(buf1.Bytes())
	if err != nil {
		t.Fatalf("first scrape failed strict parse: %v\n%s", err, buf1.String())
	}
	if got, ok := exp1.Samples[`pgs_reqs_total{endpoint="/query"}`]; !ok || got != 3 {
		t.Errorf("counter sample missing or wrong: %v (ok=%v)", got, ok)
	}
	if got := exp1.Samples[`pgs_latency_seconds_count{endpoint="/query"}`]; got != 2 {
		t.Errorf("histogram count = %v, want 2", got)
	}
	if typ := exp1.Types["pgs_latency_seconds"]; typ != "histogram" {
		t.Errorf("histogram TYPE = %q", typ)
	}

	c.Add(5)
	h.Observe(time.Millisecond)
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	exp2, err := ParseExposition(buf2.Bytes())
	if err != nil {
		t.Fatalf("second scrape failed strict parse: %v", err)
	}
	if err := CheckCounterMonotonic(exp1, exp2); err != nil {
		t.Fatalf("monotonicity: %v", err)
	}
	// The reverse direction must fail: counters went up.
	if err := CheckCounterMonotonic(exp2, exp1); err == nil {
		t.Error("reversed scrapes passed the monotonic check; counters should have regressed")
	}
}

// TestParserRejects: the strict parser must reject the classic
// malformations instead of shrugging them off.
func TestParserRejects(t *testing.T) {
	bad := map[string]string{
		"duplicate series":  "# TYPE a counter\na 1\na 1\n",
		"no TYPE":           "a 1\n",
		"bad value":         "# TYPE a counter\na one\n",
		"trailing garbage":  "# TYPE a counter\na 1 2 3\n",
		"unquoted label":    "# TYPE a counter\na{x=1} 1\n",
		"dup label in set":  `# TYPE a counter` + "\n" + `a{x="1",x="2"} 1` + "\n",
		"unterminated":      `# TYPE a counter` + "\n" + `a{x="1 1` + "\n",
		"bad type":          "# TYPE a widget\na 1\n",
		"histogram no +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for what, in := range bad {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: parser accepted %q", what, in)
		}
	}
	// And a well-formed document with escapes must pass.
	good := "# HELP a with \\\\ escapes\n# TYPE a counter\n" +
		`a{q="say \"hi\"",nl="a\nb"} 7` + "\n"
	exp, err := ParseExposition([]byte(good))
	if err != nil {
		t.Fatalf("good document rejected: %v", err)
	}
	found := false
	for key := range exp.Samples {
		if strings.HasPrefix(key, "a{") {
			found = true
		}
	}
	if !found {
		t.Error("escaped-label sample not indexed")
	}
}
