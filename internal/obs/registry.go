// Package obs is the unified observability layer: a central metrics
// registry every subsystem registers into (counters, gauges, func-backed
// readings, and log2 latency histograms), exposed in Prometheus text
// format by WritePrometheus and consumed as JSON by the server's /stats
// view. The package also ships a strict exposition-format parser
// (ParseExposition) used by the CI metrics-smoke job and the tests.
//
// Naming scheme: every metric is `pgs_<subsystem>_<what>[_total]` —
// `pgs_server_requests_total{endpoint,outcome}`, `pgs_plancache_hits_total`,
// `pgs_pager_page_reads_total`, `pgs_wal_fsyncs_total`,
// `pgs_compact_generation`, `pgs_request_latency_seconds{endpoint}`.
// Counters are monotonic and end in `_total`; gauges carry no suffix;
// histograms are exposed in seconds with log2 `le` edges.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair. Series within a family are
// distinguished by their full label sets.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind tags a family with its exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; the hot path is one atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic) and returns
// the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable value that may go up and down (in-flight requests,
// queue depth).
type Gauge struct{ v atomic.Int64 }

// Add adds n (negative to decrement) and returns the new value.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// series is one (family, label set) time series and its value source:
// exactly one of counter/gauge/hist/fn is non-nil.
type series struct {
	labels  []Label // sorted by name
	key     string  // canonical rendering of labels, for dup detection
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one named metric and its series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry is the central metric registry. Registration happens at
// subsystem construction (server New, store open); scraping walks the
// registered families in registration order, so exposition output is
// stable across scrapes.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// register adds one series, creating the family on first sight.
// Registration errors (invalid name, kind clash, duplicate label set)
// panic: they are programming errors at startup, not runtime conditions.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, s *series) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	key := ""
	for _, l := range ls {
		if !labelNameRe.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Name, name))
		}
		key += l.Name + "\x00" + l.Value + "\x00"
	}
	s.labels = ls
	s.key = key

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	for _, existing := range f.series {
		if existing.key == key {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, key))
		}
	}
	f.series = append(f.series, s)
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &series{counter: c})
	return c
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &series{gauge: g})
	return g
}

// NewHistogram registers and returns a log2 latency histogram series.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.register(name, help, kindHistogram, labels, &series{hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// counters (pager I/O, WAL activity, plan cache). fn must be monotonic
// and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, &series{fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, &series{fn: fn})
}
