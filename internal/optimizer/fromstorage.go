package optimizer

import (
	"repro/internal/ontology"
	"repro/internal/storage"
)

// FromStorage derives the cost model's data characteristics (§4.2) from
// a loaded store's persisted statistics instead of the uniform synthetic
// defaults: concept cardinalities come from per-label vertex counts and
// relationship cardinalities from per-type edge counts (format v5 keeps
// both in index.db). The loader writes one vertex label per concept and
// one edge type per relationship Name, so the mapping back is direct —
// except that distinct relationships may share a Name, in which case the
// type's count is split evenly across them.
//
// The result always covers the whole ontology (Stats.Validate passes):
// a concept or relationship with no instances in the store is clamped to
// cardinality 1 so the cost formulas stay positive, and when the store
// has no persisted edge-type counts (EdgeTypeCounts() == nil, e.g. a
// pre-v5 layout) relationship cardinalities fall back to the
// DefaultStats fanout multipliers scaled by the real source-concept
// cardinality.
func FromStorage(o *ontology.Ontology, st storage.Statistics) *ontology.Stats {
	s := ontology.NewStats(16)
	labels := st.LabelCounts()
	for _, c := range o.Concepts {
		n := labels[c.Name]
		if n < 1 {
			n = 1
		}
		s.ConceptCard[c.Name] = n
	}

	types := st.EdgeTypeCounts()
	byName := map[string][]*ontology.Relationship{}
	for _, r := range o.Relationships {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for name, rs := range byName {
		total, counted := 0, false
		if types != nil {
			total, counted = types[name]
		}
		if counted {
			share, rem := total/len(rs), total%len(rs)
			for i, r := range rs {
				n := share
				if i < rem {
					n++
				}
				if n < 1 {
					n = 1
				}
				s.RelCard[r.Key()] = n
			}
			continue
		}
		for _, r := range rs {
			base := s.ConceptCard[r.Src]
			switch r.Type {
			case ontology.OneToMany:
				base *= 4
			case ontology.ManyToMany:
				base *= 8
			}
			if base < 1 {
				base = 1
			}
			s.RelCard[r.Key()] = base
		}
	}
	return s
}
