package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ontology"
)

func TestGreedyRespectsBudget(t *testing.T) {
	in := fixture(t)
	total, err := in.NSCCost()
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.1, 0.5, 1.0} {
		p, err := RelationCentricGreedy(in, total*frac)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost > total*frac+1e-9 {
			t.Errorf("greedy at %v%% spent %v of %v", frac*100, p.Cost, total*frac)
		}
	}
}

func TestGreedyFullBudgetMatchesNSC(t *testing.T) {
	in := fixture(t)
	total, _ := in.NSCCost()
	nsc, err := NSC(in)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RelationCentricGreedy(in, total)
	if err != nil {
		t.Fatal(err)
	}
	if p.Result.PGS.Fingerprint() != nsc.Result.PGS.Fingerprint() {
		t.Error("greedy at full budget differs from NSC")
	}
}

// TestFPTASAtLeastMatchesGreedyOnAverage: the knapsack should beat (or
// tie) the greedy density heuristic on most random instances — the reason
// Algorithm 8 uses it.
func TestFPTASAtLeastMatchesGreedyOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rcWins, greedyWins := 0, 0
	for trial := 0; trial < 30; trial++ {
		o := ontology.RandomOntology(rng.Int63(), 10, 22)
		in, err := NewInputs(o, nil, nil, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		total, err := in.NSCCost()
		if err != nil {
			t.Fatal(err)
		}
		if total == 0 {
			continue
		}
		budget := total * 0.3
		rc, err := RelationCentric(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := RelationCentricGreedy(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case rc.Benefit > gr.Benefit+1e-9:
			rcWins++
		case gr.Benefit > rc.Benefit+1e-9:
			greedyWins++
		}
	}
	if rcWins < greedyWins {
		t.Errorf("FPTAS wins %d vs greedy wins %d", rcWins, greedyWins)
	}
}
