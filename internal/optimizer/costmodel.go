// Package optimizer implements the space-constrained schema optimization
// algorithms of §4: the cost-benefit model of Equations 3-5, the
// concept-centric algorithm (Algorithm 7, PageRank-driven), the
// relation-centric algorithm (Algorithm 8, knapsack-driven), and PGSG,
// which returns whichever schema scores the higher total benefit.
package optimizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/knapsack"
	"repro/internal/ontology"
)

// edgeBytes is the storage charged per replicated edge instance, so edge
// copies (union/inheritance rules) and property replication (1:M/M:N
// rules) share one space unit.
const edgeBytes = 16

// Inputs bundles everything the constrained algorithms consume: the
// ontology, data characteristics, workload summaries, thresholds, and the
// FPTAS precision.
type Inputs struct {
	Ontology *ontology.Ontology
	Stats    *ontology.Stats
	AF       *ontology.AccessFrequencies
	Config   core.Config
	// Epsilon is the FPTAS approximation parameter (default 0.1).
	Epsilon float64

	rels map[string]*ontology.Relationship
	js   map[string]float64
}

// NewInputs validates and indexes the inputs. Stats defaults to uniform
// synthetic statistics and AF to the uniform workload when nil.
func NewInputs(o *ontology.Ontology, stats *ontology.Stats, af *ontology.AccessFrequencies, cfg core.Config) (*Inputs, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if stats == nil {
		stats = ontology.DefaultStats(o, 1000)
	}
	if af == nil {
		af = ontology.UniformAF(o)
	}
	js, err := core.JaccardScores(o)
	if err != nil {
		return nil, err
	}
	in := &Inputs{
		Ontology: o, Stats: stats, AF: af, Config: cfg, Epsilon: 0.1,
		rels: map[string]*ontology.Relationship{},
		js:   js,
	}
	for _, r := range o.Relationships {
		in.rels[r.Key()] = r
	}
	return in, nil
}

// Rel resolves a relationship key.
func (in *Inputs) Rel(key string) *ontology.Relationship { return in.rels[key] }

// CostBenefit evaluates Equations 3-5 for one rule application. Rule
// applications with no structural effect (middle-band inheritance) return
// (0, 0).
func (in *Inputs) CostBenefit(app core.RuleApp) (benefit, cost float64, err error) {
	r := in.rels[app.RelKey]
	if r == nil {
		return 0, 0, fmt.Errorf("optimizer: unknown relationship %s", app.RelKey)
	}
	switch r.Type {
	case ontology.Union:
		// Equation 3: benefit is the access frequency of the union
		// relationship; cost is the edges copied from the union concept
		// to the member.
		benefit = in.AF.OfRel(r)
		for _, rr := range in.Ontology.Rels(r.Src) {
			if rr.Type == ontology.Union {
				continue
			}
			cost += float64(in.Stats.EdgeCard(rr) * edgeBytes)
		}
		return benefit, cost, nil

	case ontology.Inheritance:
		js := in.js[r.Key()]
		parent, child := in.Ontology.Concept(r.Src), in.Ontology.Concept(r.Dst)
		switch {
		case js > in.Config.Theta1:
			// Child's properties materialize on parent instances, and
			// the child's relationships re-attach to the parent.
			benefit = in.AF.OfRel(r) * js
			for _, p := range child.Props {
				cost += float64(in.Stats.Card(child.Name) * in.Stats.PropSize(p))
			}
			for _, rr := range in.Ontology.Rels(child.Name) {
				if rr.Type == ontology.Inheritance {
					continue
				}
				cost += float64(in.Stats.EdgeCard(rr) * edgeBytes)
			}
		case js < in.Config.Theta2:
			benefit = in.AF.OfRel(r) * js
			if benefit == 0 {
				// JS can be exactly 0; the traversal saving is still the
				// relationship's access frequency scaled by how many
				// parent properties move. Keep a small positive benefit
				// so disjoint hierarchies remain selectable.
				benefit = in.AF.OfRel(r) * in.Config.Theta2 / 2
			}
			for _, p := range parent.Props {
				cost += float64(in.Stats.Card(parent.Name) * in.Stats.PropSize(p))
			}
			for _, rr := range in.Ontology.Rels(parent.Name) {
				if rr.Type == ontology.Inheritance {
					continue
				}
				cost += float64(in.Stats.EdgeCard(rr) * edgeBytes)
			}
		default:
			return 0, 0, nil // middle band: keep the isA edge, no effect
		}
		return benefit, cost, nil

	case ontology.OneToOne:
		// Merging reduces vertices and saves a traversal; no replication.
		return in.AF.OfRel(r), 0, nil

	case ontology.OneToMany, ontology.ManyToMany:
		// Equation 5, per (relationship, property, direction).
		carrier := in.Ontology.Concept(r.Dst)
		if app.Reverse {
			carrier = in.Ontology.Concept(r.Src)
		}
		if app.Prop == "" || app.Prop == "*" {
			return 0, 0, fmt.Errorf("optimizer: replication app %v needs a concrete property", app)
		}
		var pt *ontology.Property
		for i := range carrier.Props {
			if carrier.Props[i].Name == app.Prop {
				pt = &carrier.Props[i]
			}
		}
		if pt == nil {
			return 0, 0, fmt.Errorf("optimizer: property %s not on %s", app.Prop, carrier.Name)
		}
		benefit = in.AF.OfRelProp(r, app.Prop)
		cost = float64(in.Stats.EdgeCard(r) * in.Stats.PropSize(*pt))
		return benefit, cost, nil
	}
	return 0, 0, fmt.Errorf("optimizer: unsupported relationship type %v", r.Type)
}

// appItem pairs a rule application with its scored cost/benefit.
type appItem struct {
	App     core.RuleApp
	Benefit float64
	Cost    float64
}

// effectiveApps enumerates all rule applications that have a structural
// effect, with their cost/benefit.
func (in *Inputs) effectiveApps() ([]appItem, error) {
	var items []appItem
	for _, app := range core.EnumerateApps(in.Ontology) {
		b, c, err := in.CostBenefit(app)
		if err != nil {
			return nil, err
		}
		if b == 0 && c == 0 {
			continue
		}
		items = append(items, appItem{App: app, Benefit: b, Cost: c})
	}
	return items, nil
}

// NSCBenefit returns B_NSC: the total benefit of applying every effective
// rule (the denominator of the paper's benefit ratio BR).
func (in *Inputs) NSCBenefit() (float64, error) {
	items, err := in.effectiveApps()
	if err != nil {
		return 0, err
	}
	t := 0.0
	for _, it := range items {
		t += it.Benefit
	}
	return t, nil
}

// NSCCost returns Cost(NSC) = S_NSC - S_DIR: the total space overhead of
// applying every effective rule. The evaluation's space-constraint axis
// is a percentage of this quantity.
func (in *Inputs) NSCCost() (float64, error) {
	items, err := in.effectiveApps()
	if err != nil {
		return 0, err
	}
	t := 0.0
	for _, it := range items {
		t += it.Cost
	}
	return t, nil
}

// solveKnapsack picks the near-optimal subset of scored applications under
// the budget: zero-cost items are always taken (Proposition 1 requires
// positive costs for the reduction; free items dominate trivially).
func solveKnapsack(items []appItem, budget, eps float64) []appItem {
	var chosen []appItem
	var paid []appItem
	var kn []knapsack.Item
	for _, it := range items {
		if it.Cost <= 0 {
			if it.Benefit > 0 {
				chosen = append(chosen, it)
			}
			continue
		}
		if it.Benefit <= 0 {
			continue
		}
		paid = append(paid, it)
		kn = append(kn, knapsack.Item{Benefit: it.Benefit, Cost: it.Cost})
	}
	for _, idx := range knapsack.Solve(kn, budget, eps) {
		chosen = append(chosen, paid[idx])
	}
	return chosen
}
