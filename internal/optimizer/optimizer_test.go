package optimizer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ontology"
)

func str(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
func intp(n string) ontology.Property {
	return ontology.Property{Name: n, Type: ontology.TInt}
}

// fixture builds a small ontology with hand-checkable statistics.
func fixture(t *testing.T) *Inputs {
	t.Helper()
	o := ontology.New()
	o.AddConcept("Drug", str("name"))
	o.AddConcept("Indication", str("desc"), intp("code"))
	o.AddConcept("Risk")
	o.AddConcept("ContraIndication", str("cdesc"))
	o.AddConcept("Parent", str("a"), str("b"))
	o.AddConcept("Child", str("x")) // JS = 0 < θ2
	o.AddConcept("Cond", str("note"))

	o.AddRelationship("treat", "Drug", "Indication", ontology.OneToMany)
	o.AddRelationship("cause", "Drug", "Risk", ontology.OneToMany)
	o.AddRelationship("unionOf", "Risk", "ContraIndication", ontology.Union)
	o.AddRelationship("isA", "Parent", "Child", ontology.Inheritance)
	o.AddRelationship("watch", "Parent", "Cond", ontology.OneToMany)
	o.AddRelationship("is", "Indication", "Cond", ontology.OneToOne)

	stats := ontology.NewStats(10) // STRING = 10 bytes, INT = 8
	for _, c := range o.Concepts {
		stats.ConceptCard[c.Name] = 100
	}
	stats.RelCard["Drug-[treat]->Indication"] = 400
	stats.RelCard["Drug-[cause]->Risk"] = 200
	stats.RelCard["Risk-[unionOf]->ContraIndication"] = 100
	stats.RelCard["Parent-[isA]->Child"] = 100
	stats.RelCard["Parent-[watch]->Cond"] = 300
	stats.RelCard["Indication-[is]->Cond"] = 100

	in, err := NewInputs(o, stats, nil, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCostBenefitUnion(t *testing.T) {
	in := fixture(t)
	b, c, err := in.CostBenefit(core.RuleApp{RelKey: "Risk-[unionOf]->ContraIndication"})
	if err != nil {
		t.Fatal(err)
	}
	// Benefit = AF (uniform = 1). Cost = edges of Risk's non-union rels:
	// cause has 200 edges × 16 bytes.
	if b != 1 {
		t.Errorf("union benefit = %v, want 1", b)
	}
	if want := float64(200 * 16); c != want {
		t.Errorf("union cost = %v, want %v", c, want)
	}
}

func TestCostBenefitOneToMany(t *testing.T) {
	in := fixture(t)
	b, c, err := in.CostBenefit(core.RuleApp{RelKey: "Drug-[treat]->Indication", Prop: "desc"})
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 {
		t.Errorf("benefit = %v", b)
	}
	// |r| × p.type = 400 × 10.
	if want := 4000.0; c != want {
		t.Errorf("cost = %v, want %v", c, want)
	}
	// INT property sizes differ.
	_, c2, err := in.CostBenefit(core.RuleApp{RelKey: "Drug-[treat]->Indication", Prop: "code"})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(400 * 8); c2 != want {
		t.Errorf("int cost = %v, want %v", c2, want)
	}
}

func TestCostBenefitInheritancePush(t *testing.T) {
	in := fixture(t)
	b, c, err := in.CostBenefit(core.RuleApp{RelKey: "Parent-[isA]->Child"})
	if err != nil {
		t.Fatal(err)
	}
	// JS = 0 < θ2: parent pushes into child. Benefit keeps a small
	// positive floor; cost = parent props on parent cardinality + parent's
	// non-inheritance edges: (10+10)×100 + 300×16.
	if b <= 0 {
		t.Errorf("push-down benefit = %v, want > 0", b)
	}
	if want := float64(20*100 + 300*16); c != want {
		t.Errorf("cost = %v, want %v", c, want)
	}
}

func TestCostBenefitOneToOneIsFree(t *testing.T) {
	in := fixture(t)
	b, c, err := in.CostBenefit(core.RuleApp{RelKey: "Indication-[is]->Cond"})
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 || c != 0 {
		t.Errorf("1:1 b=%v c=%v, want 1, 0", b, c)
	}
}

func TestCostBenefitMiddleBandInert(t *testing.T) {
	o := ontology.New()
	o.AddConcept("P", str("a"), str("b"))
	o.AddConcept("C", str("a"), str("c")) // JS = 1/3, middle band
	o.AddRelationship("isA", "P", "C", ontology.Inheritance)
	in, err := NewInputs(o, nil, nil, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, c, err := in.CostBenefit(core.RuleApp{RelKey: "P-[isA]->C"})
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 || c != 0 {
		t.Errorf("middle band b=%v c=%v, want 0, 0", b, c)
	}
}

func TestNSCPlanAccountsEverything(t *testing.T) {
	in := fixture(t)
	p, err := NSC(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Benefit <= 0 || p.Cost <= 0 {
		t.Errorf("NSC benefit=%v cost=%v", p.Benefit, p.Cost)
	}
	br, err := in.BenefitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if br != 1 {
		t.Errorf("NSC BR = %v, want 1", br)
	}
}

func TestFullBudgetMatchesNSC(t *testing.T) {
	in := fixture(t)
	nsc, err := NSC(in)
	if err != nil {
		t.Fatal(err)
	}
	total, err := in.NSCCost()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []func(*Inputs, float64) (*Plan, error){RelationCentric, ConceptCentric} {
		p, err := alg(in, total)
		if err != nil {
			t.Fatal(err)
		}
		if p.Result.PGS.Fingerprint() != nsc.Result.PGS.Fingerprint() {
			t.Errorf("%s at 100%% budget differs from NSC", p.Algorithm)
		}
		br, _ := in.BenefitRatio(p)
		if br != 1 {
			t.Errorf("%s BR at full budget = %v", p.Algorithm, br)
		}
	}
}

func TestZeroBudgetSelectsOnlyFreeRules(t *testing.T) {
	in := fixture(t)
	for _, alg := range []func(*Inputs, float64) (*Plan, error){RelationCentric, ConceptCentric} {
		p, err := alg(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost != 0 {
			t.Errorf("%s at zero budget spent %v", p.Algorithm, p.Cost)
		}
		// The free 1:1 rule should still be applied.
		if p.Result.PGS.Node("Indication") == nil ||
			p.Result.PGS.Node("Indication").Name != "IndicationCond" {
			t.Errorf("%s did not apply the free 1:1 rule:\n%s", p.Algorithm, p.Result.PGS.DDL())
		}
	}
}

func TestBudgetSafetyProperty(t *testing.T) {
	f := func(seed int64, budgetFrac uint8) bool {
		o := ontology.RandomOntology(seed, 8, 16)
		in, err := NewInputs(o, nil, nil, core.DefaultConfig())
		if err != nil {
			return false
		}
		total, err := in.NSCCost()
		if err != nil {
			return false
		}
		budget := total * float64(budgetFrac%101) / 100
		rc, err := RelationCentric(in, budget)
		if err != nil {
			return false
		}
		cc, err := ConceptCentric(in, budget)
		if err != nil {
			return false
		}
		const slack = 1e-9
		return rc.Cost <= budget+slack && cc.Cost <= budget+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRCNearOptimal: on small instances, RC's selected benefit is within
// (1-ε) of the brute-force optimum over rule applications.
func TestRCNearOptimal(t *testing.T) {
	f := func(seed int64) bool {
		o := ontology.RandomOntology(seed, 6, 10)
		in, err := NewInputs(o, nil, nil, core.DefaultConfig())
		if err != nil {
			return false
		}
		items, err := in.effectiveApps()
		if err != nil {
			return false
		}
		if len(items) > 16 {
			return true // brute force infeasible; skip
		}
		total := 0.0
		for _, it := range items {
			total += it.Cost
		}
		budget := total / 2
		rc, err := RelationCentric(in, budget)
		if err != nil {
			return false
		}
		best := 0.0
		for mask := 0; mask < 1<<len(items); mask++ {
			b, c := 0.0, 0.0
			for i, it := range items {
				if mask&(1<<i) != 0 {
					b += it.Benefit
					c += it.Cost
				}
			}
			if c <= budget && b > best {
				best = b
			}
		}
		return rc.Benefit >= (1-in.Epsilon)*best-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRCUsuallyBeatsCC reproduces the paper's main §5.2 observation: the
// relation-centric algorithm's global ordering dominates the
// concept-centric algorithm's local ordering on average.
func TestRCUsuallyBeatsCC(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rcWins, ccWins := 0, 0
	for trial := 0; trial < 30; trial++ {
		o := ontology.RandomOntology(rng.Int63(), 12, 26)
		in, err := NewInputs(o, nil, nil, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		total, err := in.NSCCost()
		if err != nil {
			t.Fatal(err)
		}
		if total == 0 {
			continue
		}
		budget := total * 0.25
		rc, err := RelationCentric(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := ConceptCentric(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case rc.Benefit > cc.Benefit:
			rcWins++
		case cc.Benefit > rc.Benefit:
			ccWins++
		}
	}
	if rcWins <= ccWins {
		t.Errorf("RC wins %d vs CC wins %d; expected RC to dominate", rcWins, ccWins)
	}
}

func TestPGSGPicksBest(t *testing.T) {
	in := fixture(t)
	total, _ := in.NSCCost()
	budget := total * 0.3
	rc, err := RelationCentric(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := ConceptCentric(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	best, err := PGSG(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	if best.Benefit < rc.Benefit || best.Benefit < cc.Benefit {
		t.Errorf("PGSG benefit %v below RC %v / CC %v", best.Benefit, rc.Benefit, cc.Benefit)
	}
}

func TestBenefitRatioMonotoneInBudget(t *testing.T) {
	in := fixture(t)
	total, _ := in.NSCCost()
	prev := -1.0
	for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		p, err := PGSG(in, total*frac)
		if err != nil {
			t.Fatal(err)
		}
		br, err := in.BenefitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		if br < prev-0.05 {
			t.Errorf("BR dropped from %v to %v at budget %v%%", prev, br, frac*100)
		}
		if br < 0 || br > 1+1e-9 {
			t.Errorf("BR out of range: %v", br)
		}
		prev = br
	}
}

func TestOptimizeConvenience(t *testing.T) {
	o := fixture(t).Ontology
	p, err := Optimize(o, nil, nil, core.DefaultConfig(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "NSC" {
		t.Errorf("negative budget algorithm = %s", p.Algorithm)
	}
	p2, err := Optimize(o, nil, nil, core.DefaultConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Algorithm != "RC" && p2.Algorithm != "CC" {
		t.Errorf("constrained algorithm = %s", p2.Algorithm)
	}
}

func TestDirectPlan(t *testing.T) {
	in := fixture(t)
	p, err := Direct(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Benefit != 0 || p.Cost != 0 {
		t.Errorf("DIR accounting b=%v c=%v", p.Benefit, p.Cost)
	}
	if len(p.Result.PGS.Nodes) != len(in.Ontology.Concepts) {
		t.Error("DIR dropped concepts")
	}
}

func TestCostBenefitErrors(t *testing.T) {
	in := fixture(t)
	if _, _, err := in.CostBenefit(core.RuleApp{RelKey: "nope"}); err == nil {
		t.Error("unknown relationship accepted")
	}
	if _, _, err := in.CostBenefit(core.RuleApp{RelKey: "Drug-[treat]->Indication", Prop: "*"}); err == nil {
		t.Error("wildcard prop accepted by cost model")
	}
	if _, _, err := in.CostBenefit(core.RuleApp{RelKey: "Drug-[treat]->Indication", Prop: "absent"}); err == nil {
		t.Error("missing prop accepted")
	}
}
