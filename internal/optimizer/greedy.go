package optimizer

import (
	"sort"
	"time"
)

// RelationCentricGreedy is an ablation of Algorithm 8: identical scoring
// (Equations 3-5) but selection by greedy benefit/cost density instead of
// the FPTAS knapsack. DESIGN.md's ablation index uses it to quantify what
// the knapsack actually buys.
func RelationCentricGreedy(in *Inputs, budget float64) (*Plan, error) {
	start := time.Now()
	items, err := in.effectiveApps()
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, it := range items {
		total += it.Cost
	}
	if budget >= total {
		return in.fullBudgetPlan("RC-greedy", start)
	}
	sorted := make([]appItem, len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(i, j int) bool {
		di, dj := density(sorted[i]), density(sorted[j])
		if di != dj {
			return di > dj
		}
		return sorted[i].Benefit > sorted[j].Benefit
	})
	remaining := budget
	var chosen []appItem
	for _, it := range sorted {
		if it.Benefit <= 0 {
			continue
		}
		if it.Cost <= remaining {
			chosen = append(chosen, it)
			remaining -= it.Cost
		}
	}
	p, err := in.buildPlan("RC-greedy", chosen, start)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// density orders items by benefit per unit cost; free items rank first.
func density(it appItem) float64 {
	if it.Cost <= 0 {
		if it.Benefit > 0 {
			return 1e18
		}
		return 0
	}
	return it.Benefit / it.Cost
}
