package optimizer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/storage/memstore"
)

// skewStore builds a store whose edge-type counts are deliberately
// lopsided: nTreat "treat" edges and nCause "cause" edges under the
// flip-test ontology's labels.
func skewStore(t *testing.T, nTreat, nCause int) *memstore.Store {
	t.Helper()
	mem := memstore.New()
	drug, err := mem.AddVertex("Drug")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nTreat; i++ {
		v, _ := mem.AddVertex("Indication")
		if _, err := mem.AddEdge(drug, v, "treat"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nCause; i++ {
		v, _ := mem.AddVertex("Risk")
		if _, err := mem.AddEdge(drug, v, "cause"); err != nil {
			t.Fatal(err)
		}
	}
	return mem
}

func flipOntology() *ontology.Ontology {
	o := ontology.New()
	o.AddConcept("Drug")
	o.AddConcept("Indication", ontology.Property{Name: "desc", Type: ontology.TInt})
	o.AddConcept("Risk", ontology.Property{Name: "rdesc", Type: ontology.TString})
	o.AddRelationship("treat", "Drug", "Indication", ontology.OneToMany)
	o.AddRelationship("cause", "Drug", "Risk", ontology.OneToMany)
	return o
}

// TestFromStorageCounts checks the storage→stats mapping itself: real
// per-label and per-type counts land on the matching concepts and
// relationship keys, unloaded names clamp to 1, and the result covers
// the ontology.
func TestFromStorageCounts(t *testing.T) {
	o := flipOntology()
	mem := skewStore(t, 10, 25)
	s := FromStorage(o, mem)
	if err := s.Validate(o); err != nil {
		t.Fatal(err)
	}
	if got := s.Card("Drug"); got != 1 {
		t.Errorf("Card(Drug) = %d, want 1", got)
	}
	if got := s.Card("Indication"); got != 10 {
		t.Errorf("Card(Indication) = %d, want 10", got)
	}
	if got := s.RelCard["Drug-[treat]->Indication"]; got != 10 {
		t.Errorf("RelCard[treat] = %d, want 10", got)
	}
	if got := s.RelCard["Drug-[cause]->Risk"]; got != 25 {
		t.Errorf("RelCard[cause] = %d, want 25", got)
	}

	// A concept the store never saw stays covered with cardinality 1.
	o2 := flipOntology()
	o2.AddConcept("Ghost")
	o2.AddRelationship("haunt", "Ghost", "Drug", ontology.OneToMany)
	s2 := FromStorage(o2, mem)
	if err := s2.Validate(o2); err != nil {
		t.Fatal(err)
	}
	if got := s2.Card("Ghost"); got != 1 {
		t.Errorf("Card(Ghost) = %d, want 1", got)
	}
	if got := s2.RelCard["Ghost-[haunt]->Drug"]; got < 1 {
		t.Errorf("RelCard[haunt] = %d, want >= 1", got)
	}
}

// TestFromStorageFlipsRuleChoice is the optimizer-integration regression
// test: with the same ontology, workload, and budget, the constrained
// algorithm must pick a different replication rule depending only on
// which edge type the store says is cheap — proof that real persisted
// counts (not the uniform defaults) drive Equation 5.
func TestFromStorageFlipsRuleChoice(t *testing.T) {
	o := flipOntology()
	cfg := core.DefaultConfig()
	const budget = 200.0

	plan := func(nTreat, nCause int) *Plan {
		t.Helper()
		in, err := NewInputs(o, FromStorage(o, skewStore(t, nTreat, nCause)), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RelationCentric(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Skew A: treat is cheap (10 edges × 8-byte INT = 80 ≤ budget),
	// cause is unaffordable (1000 × 16-byte STRING = 16000).
	a := plan(10, 1000)
	if a.Cost != 80 {
		t.Fatalf("skew-A plan cost = %v, want 80 (the treat replication)", a.Cost)
	}
	// Skew B: the counts swap, and so must the chosen rule
	// (cause: 10 × 16 = 160 ≤ budget; treat: 1000 × 8 = 8000).
	b := plan(1000, 10)
	if b.Cost != 160 {
		t.Fatalf("skew-B plan cost = %v, want 160 (the cause replication)", b.Cost)
	}
	if a.Result.PGS.Fingerprint() == b.Result.PGS.Fingerprint() {
		t.Fatal("rule choice did not flip under swapped edge-type counts")
	}

	// Under uniform default statistics both rules are equally priced and
	// neither fits the budget: the store's counts are what made either
	// rule selectable at all.
	in, err := NewInputs(o, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, err := RelationCentric(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	if u.Cost != 0 {
		t.Fatalf("uniform-stats plan cost = %v, want 0 (nothing affordable)", u.Cost)
	}
}
