package optimizer

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/pagerank"
)

// Plan is the outcome of one optimization algorithm: the generated schema
// artifacts plus the selection's accounting.
type Plan struct {
	Algorithm string // "NSC", "CC", "RC", or "DIR"
	Result    *core.Result
	// Benefit and Cost total the selected rule applications under
	// Equations 3-5.
	Benefit float64
	Cost    float64
	// Elapsed is the optimization wall time (Table 2).
	Elapsed time.Duration
}

// BenefitRatio returns BR = B_SC / B_NSC (§5.1 "Methodology and metrics").
func (in *Inputs) BenefitRatio(p *Plan) (float64, error) {
	total, err := in.NSCBenefit()
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 1, nil
	}
	return p.Benefit / total, nil
}

// Direct returns the unoptimized direct-mapping plan (the paper's DIR
// baseline).
func Direct(in *Inputs) (*Plan, error) {
	res, err := core.Direct(in.Ontology)
	if err != nil {
		return nil, err
	}
	return &Plan{Algorithm: "DIR", Result: res}, nil
}

// NSC runs Algorithm 5 (no space constraint) and accounts its benefit and
// cost.
func NSC(in *Inputs) (*Plan, error) {
	start := time.Now()
	items, err := in.effectiveApps()
	if err != nil {
		return nil, err
	}
	res, err := core.NSC(in.Ontology, in.Config)
	if err != nil {
		return nil, err
	}
	p := &Plan{Algorithm: "NSC", Result: res}
	for _, it := range items {
		p.Benefit += it.Benefit
		p.Cost += it.Cost
	}
	p.Elapsed = time.Since(start)
	return p, nil
}

// buildPlan materializes a schema from selected applications.
func (in *Inputs) buildPlan(algorithm string, chosen []appItem, start time.Time) (*Plan, error) {
	rules := core.NewRuleSet()
	p := &Plan{Algorithm: algorithm}
	for _, it := range chosen {
		rules.Add(it.App)
		p.Benefit += it.Benefit
		p.Cost += it.Cost
	}
	res, err := core.Optimize(in.Ontology, rules, in.Config)
	if err != nil {
		return nil, err
	}
	p.Result = res
	p.Elapsed = time.Since(start)
	return p, nil
}

// fullBudgetPlan is returned by both constrained algorithms when the
// budget covers every rule: per §5.2, at a 100% space constraint both
// algorithms produce exactly the NSC schema.
func (in *Inputs) fullBudgetPlan(algorithm string, start time.Time) (*Plan, error) {
	p, err := NSC(in)
	if err != nil {
		return nil, err
	}
	p.Algorithm = algorithm
	p.Elapsed = time.Since(start)
	return p, nil
}

// RelationCentric implements Algorithm 8: score every rule application
// with the cost-benefit model, select a near-optimal subset with the
// knapsack FPTAS, and apply it.
func RelationCentric(in *Inputs, budget float64) (*Plan, error) {
	start := time.Now()
	items, err := in.effectiveApps()
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, it := range items {
		total += it.Cost
	}
	if budget >= total {
		return in.fullBudgetPlan("RC", start)
	}
	eps := in.Epsilon
	if eps == 0 {
		eps = 0.1
	}
	chosen := solveKnapsack(items, budget, eps)
	return in.buildPlan("RC", chosen, start)
}

// ConceptCentric implements Algorithm 7: rank concepts by Equation 2
// (centrality × access frequency / size), then spend the budget on each
// concept's relationships in rank order. Unlike the paper's listing —
// which breaks after overshooting — we skip applications that do not fit,
// so the budget is a hard cap (see DESIGN.md).
func ConceptCentric(in *Inputs, budget float64) (*Plan, error) {
	start := time.Now()
	items, err := in.effectiveApps()
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, it := range items {
		total += it.Cost
	}
	if budget >= total {
		return in.fullBudgetPlan("CC", start)
	}

	pr := pagerank.OntologyPR(in.Ontology, pagerank.Options{})
	type scored struct {
		name  string
		score float64
	}
	concepts := make([]scored, 0, len(in.Ontology.Concepts))
	for _, c := range in.Ontology.Concepts {
		size := float64(in.Stats.ConceptSize(in.Ontology, c.Name))
		if size == 0 {
			size = 1
		}
		concepts = append(concepts, scored{
			name:  c.Name,
			score: pr[c.Name] * in.AF.OfConcept(c.Name) / size,
		})
	}
	sort.Slice(concepts, func(i, j int) bool {
		if concepts[i].score != concepts[j].score {
			return concepts[i].score > concepts[j].score
		}
		return concepts[i].name < concepts[j].name
	})

	// Index applications by the relationships touching each concept.
	byRel := map[string][]appItem{}
	for _, it := range items {
		byRel[it.App.RelKey] = append(byRel[it.App.RelKey], it)
	}
	taken := map[core.RuleApp]bool{}
	var chosen []appItem
	remaining := budget
	for _, c := range concepts {
		rels := in.Ontology.Rels(c.name)
		// Within a concept, spend on the most beneficial relationships
		// first.
		sort.Slice(rels, func(i, j int) bool {
			bi, bj := relBenefit(byRel[rels[i].Key()]), relBenefit(byRel[rels[j].Key()])
			if bi != bj {
				return bi > bj
			}
			return rels[i].Key() < rels[j].Key()
		})
		for _, r := range rels {
			for _, it := range byRel[r.Key()] {
				if taken[it.App] || it.Benefit <= 0 {
					continue
				}
				if it.Cost > remaining {
					continue
				}
				taken[it.App] = true
				chosen = append(chosen, it)
				remaining -= it.Cost
			}
		}
		if remaining <= 0 {
			break
		}
	}
	return in.buildPlan("CC", chosen, start)
}

func relBenefit(items []appItem) float64 {
	t := 0.0
	for _, it := range items {
		t += it.Benefit
	}
	return t
}

// PGSG is the paper's schema generator: it runs both constrained
// algorithms and returns the plan with the higher total benefit (§5.1:
// "PGSG chooses the property graph schema with a higher total benefit
// score from relation-centric and concept-centric algorithms").
func PGSG(in *Inputs, budget float64) (*Plan, error) {
	rc, err := RelationCentric(in, budget)
	if err != nil {
		return nil, err
	}
	cc, err := ConceptCentric(in, budget)
	if err != nil {
		return nil, err
	}
	if cc.Benefit > rc.Benefit {
		return cc, nil
	}
	return rc, nil
}

// Optimize is the top-level convenience: nil stats/AF default to uniform,
// and a negative budget means unconstrained (Algorithm 5).
func Optimize(o *ontology.Ontology, stats *ontology.Stats, af *ontology.AccessFrequencies, cfg core.Config, budget float64) (*Plan, error) {
	in, err := NewInputs(o, stats, af, cfg)
	if err != nil {
		return nil, err
	}
	if budget < 0 {
		return NSC(in)
	}
	return PGSG(in, budget)
}
