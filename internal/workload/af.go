package workload

import (
	"repro/internal/cypher"
	"repro/internal/ontology"
)

// AFFromQueries derives the access-frequency summary of a concrete query
// set — the paper's workload summaries ("the access frequency of
// concepts, relationships and properties", §4.2) computed from the
// workload itself. Every pattern hop is matched back to the ontology
// relationship it traverses, and property reads are attributed to the
// relationships incident to the variable's pattern node.
func AFFromQueries(o *ontology.Ontology, queries []Query) (*ontology.AccessFrequencies, error) {
	af := ontology.NewAccessFrequencies()
	// Zero-fill so relationships the workload never touches report
	// frequency 0 rather than the "no knowledge" default of 1.
	for _, r := range o.Relationships {
		af.AddRel(r, 0)
	}
	for _, c := range o.Concepts {
		af.AddConcept(c.Name, 0)
	}
	for _, q := range queries {
		parsed, err := cypher.Parse(q.Text)
		if err != nil {
			return nil, err
		}
		// Map each variable to the relationships its node touches.
		varRels := map[string][]*ontology.Relationship{}
		for _, pat := range parsed.Patterns {
			for _, n := range pat.Nodes {
				for _, l := range n.Labels {
					af.AddConcept(l, 1)
				}
			}
			for i, rel := range pat.Rels {
				left, right := pat.Nodes[i], pat.Nodes[i+1]
				src, dst := left, right
				if rel.Dir == cypher.DirIn {
					src, dst = right, left
				}
				r := matchRel(o, src.Labels, dst.Labels, rel.Type)
				if r == nil {
					continue
				}
				af.AddRel(r, 1)
				if src.Var != "" {
					varRels[src.Var] = append(varRels[src.Var], r)
				}
				if dst.Var != "" {
					varRels[dst.Var] = append(varRels[dst.Var], r)
				}
			}
		}
		// Attribute property reads.
		record := func(e cypher.Expr) {
			forEachPropAccess(e, func(pa *cypher.PropAccess) {
				for _, r := range varRels[pa.Var] {
					af.AddRelProp(r, pa.Key, 1)
				}
			})
		}
		for _, ri := range parsed.Return {
			record(ri.Expr)
		}
		if parsed.Where != nil {
			record(parsed.Where)
		}
	}
	return af, nil
}

// matchRel finds the ontology relationship a pattern hop traverses. The
// hop's physical direction is src→dst; ordinary relationships materialize
// instance edges src→dst while inheritance/union materialize child→parent
// and member→union.
func matchRel(o *ontology.Ontology, srcLabels, dstLabels []string, edgeName string) *ontology.Relationship {
	has := func(labels []string, l string) bool {
		for _, x := range labels {
			if x == l {
				return true
			}
		}
		return false
	}
	for _, r := range o.Relationships {
		if edgeName != "" && r.Name != edgeName {
			continue
		}
		switch r.Type {
		case ontology.Inheritance, ontology.Union:
			if has(srcLabels, r.Dst) && has(dstLabels, r.Src) {
				return r
			}
		default:
			if has(srcLabels, r.Src) && has(dstLabels, r.Dst) {
				return r
			}
		}
	}
	return nil
}

func forEachPropAccess(e cypher.Expr, fn func(*cypher.PropAccess)) {
	switch x := e.(type) {
	case *cypher.PropAccess:
		fn(x)
	case *cypher.Binary:
		forEachPropAccess(x.L, fn)
		forEachPropAccess(x.R, fn)
	case *cypher.Not:
		forEachPropAccess(x.E, fn)
	case *cypher.FuncCall:
		for _, a := range x.Args {
			forEachPropAccess(a, fn)
		}
	}
}
