package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ontology"
)

// Distribution selects how the generator spreads accesses over concepts.
type Distribution int

const (
	// Uniform accesses every candidate motif equally often.
	Uniform Distribution = iota
	// Zipf skews accesses toward key concepts (highest-degree concepts
	// first), the paper's second workload summary.
	Zipf
)

// String names the distribution.
func (d Distribution) String() string {
	if d == Uniform {
		return "uniform"
	}
	return "zipf"
}

// Workload is a generated query mix plus the access-frequency summary it
// induces (the optimizer's workload input).
type Workload struct {
	Queries []Query
	AF      *ontology.AccessFrequencies
}

// touch records one relationship/property access a motif performs.
type touch struct {
	rel  *ontology.Relationship
	prop string // may be empty (pure traversal)
}

// motif is a generatable query template anchored at a concept.
type motif struct {
	kind     Kind
	text     string
	localize bool
	anchor   string
	touches  []touch
	concepts []string
}

// Generate builds a workload of n queries over the ontology.
func Generate(o *ontology.Ontology, n int, dist Distribution, seed int64) (*Workload, error) {
	motifs := buildMotifs(o)
	if len(motifs) == 0 {
		return nil, fmt.Errorf("workload: ontology has no generatable query motifs")
	}
	rng := rand.New(rand.NewSource(seed))

	// Weight motifs by their anchor concept's degree rank under the
	// chosen distribution.
	weights := motifWeights(o, motifs, dist)
	cum := make([]float64, len(motifs))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}

	wl := &Workload{AF: ontology.NewAccessFrequencies()}
	// Zero-fill: the summary describes this workload completely, so
	// untouched relationships have frequency 0, not the "no knowledge"
	// default of 1 — otherwise the optimizer replicates properties no
	// query ever reads.
	for _, r := range o.Relationships {
		wl.AF.AddRel(r, 0)
	}
	for _, c := range o.Concepts {
		wl.AF.AddConcept(c.Name, 0)
	}
	for k := 0; k < n; k++ {
		x := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, x)
		if idx >= len(motifs) {
			idx = len(motifs) - 1
		}
		m := motifs[idx]
		wl.Queries = append(wl.Queries, Query{
			Name:     fmt.Sprintf("W%d", k+1),
			Kind:     m.kind,
			Text:     m.text,
			Localize: m.localize,
		})
		for _, t := range m.touches {
			if t.prop == "" {
				wl.AF.AddRel(t.rel, 1)
			} else {
				wl.AF.AddRelProp(t.rel, t.prop, 1)
			}
		}
		for _, c := range m.concepts {
			wl.AF.AddConcept(c, 1)
		}
	}
	return wl, nil
}

// motifWeights assigns sampling weights: uniform, or Zipf over the anchor
// concept's degree rank (key concepts get most of the mass).
func motifWeights(o *ontology.Ontology, motifs []motif, dist Distribution) []float64 {
	weights := make([]float64, len(motifs))
	if dist == Uniform {
		for i := range weights {
			weights[i] = 1
		}
		return weights
	}
	degree := map[string]int{}
	for _, r := range o.Relationships {
		degree[r.Src]++
		degree[r.Dst]++
	}
	names := make([]string, 0, len(o.Concepts))
	for _, c := range o.Concepts {
		names = append(names, c.Name)
	}
	sort.Slice(names, func(i, j int) bool {
		if degree[names[i]] != degree[names[j]] {
			return degree[names[i]] > degree[names[j]]
		}
		return names[i] < names[j]
	})
	rank := map[string]int{}
	for i, n := range names {
		rank[n] = i + 1
	}
	for i, m := range motifs {
		r := rank[m.anchor]
		if r == 0 {
			r = len(names)
		}
		weights[i] = 1 / float64(r) // Zipf with exponent 1
	}
	return weights
}

// firstProp returns a concept's first property name, or "".
func firstProp(o *ontology.Ontology, concept string) string {
	c := o.Concept(concept)
	if c == nil || len(c.Props) == 0 {
		return ""
	}
	return c.Props[0].Name
}

// buildMotifs enumerates the query templates the ontology supports, in
// the three microbenchmark categories.
func buildMotifs(o *ontology.Ontology) []motif {
	var motifs []motif
	relsInto := map[string][]*ontology.Relationship{}
	for _, r := range o.Relationships {
		relsInto[r.Dst] = append(relsInto[r.Dst], r)
	}

	for _, r := range o.Relationships {
		switch r.Type {
		case ontology.Union:
			// Pattern: (x)-[:in]->(union)<-[:unionOf]-(member).
			for _, in := range relsInto[r.Src] {
				if in.Type == ontology.Union || in.Type == ontology.Inheritance {
					continue
				}
				p := firstProp(o, in.Src)
				if p == "" {
					continue
				}
				motifs = append(motifs, motif{
					kind:   Pattern,
					anchor: r.Src,
					text: fmt.Sprintf("MATCH (x:%s)-[:%s]->(u:%s)<-[:%s]-(m:%s) RETURN x.%s",
						in.Src, in.Name, r.Src, r.Name, r.Dst, p),
					touches:  []touch{{rel: in, prop: p}, {rel: r}},
					concepts: []string{in.Src, r.Src, r.Dst},
				})
			}
		case ontology.Inheritance:
			// Lookup: parent property from the child (Q5/Q8 shape).
			if p := firstProp(o, r.Src); p != "" {
				motifs = append(motifs, motif{
					kind:   Lookup,
					anchor: r.Src,
					text: fmt.Sprintf("MATCH (c:%s)-[:%s]->(p:%s) RETURN p.%s",
						r.Dst, r.Name, r.Src, p),
					touches:  []touch{{rel: r, prop: p}},
					concepts: []string{r.Src, r.Dst},
				})
			}
			// Pattern: (parentNeighbor)-[:in]->(parent)<-[:isA]-(child).
			for _, in := range relsInto[r.Src] {
				if in.Type == ontology.Union || in.Type == ontology.Inheritance {
					continue
				}
				p := firstProp(o, r.Dst)
				if p == "" {
					continue
				}
				motifs = append(motifs, motif{
					kind:   Pattern,
					anchor: r.Src,
					text: fmt.Sprintf("MATCH (x:%s)-[:%s]->(p:%s)<-[:%s]-(c:%s) RETURN c.%s",
						in.Src, in.Name, r.Src, r.Name, r.Dst, p),
					touches:  []touch{{rel: in}, {rel: r, prop: p}},
					concepts: []string{in.Src, r.Src, r.Dst},
				})
			}
		case ontology.OneToOne:
			p1, p2 := firstProp(o, r.Src), firstProp(o, r.Dst)
			if p1 == "" || p2 == "" {
				continue
			}
			motifs = append(motifs, motif{
				kind:   Lookup,
				anchor: r.Src,
				text: fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN a.%s, b.%s",
					r.Src, r.Name, r.Dst, p1, p2),
				touches:  []touch{{rel: r, prop: p2}},
				concepts: []string{r.Src, r.Dst},
			})
		case ontology.OneToMany, ontology.ManyToMany:
			p := firstProp(o, r.Dst)
			if p == "" {
				continue
			}
			// Aggregation over the neighborhood (Q10/Q11 shape).
			motifs = append(motifs, motif{
				kind:   Aggregation,
				anchor: r.Src,
				text: fmt.Sprintf("MATCH (s:%s)-[:%s]->(d:%s) RETURN size(COLLECT(d.%s))",
					r.Src, r.Name, r.Dst, p),
				touches:  []touch{{rel: r, prop: p}},
				concepts: []string{r.Src, r.Dst},
			})
			// Neighborhood lookup (Q6 shape, localizable).
			motifs = append(motifs, motif{
				kind:     Lookup,
				localize: true,
				anchor:   r.Src,
				text: fmt.Sprintf("MATCH (s:%s)-[:%s]->(d:%s) RETURN d.%s",
					r.Src, r.Name, r.Dst, p),
				touches:  []touch{{rel: r, prop: p}},
				concepts: []string{r.Src, r.Dst},
			})
		}
	}
	return motifs
}
