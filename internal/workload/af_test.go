package workload

import (
	"testing"

	"repro/internal/datagen"
)

func TestAFFromMicrobenchmark(t *testing.T) {
	med := datagen.MED()
	af, err := AFFromQueries(med, MicrobenchmarkFor("MED"))
	if err != nil {
		t.Fatal(err)
	}
	// Q1/Q2 traverse cause (1 each) and read d.name through it (1 each;
	// property accesses imply relationship accesses).
	if got := af.Rel["Drug-[cause]->Risk"]; got != 4 {
		t.Errorf("AF(cause) = %v, want 4 (Q1+Q2 hops and name reads)", got)
	}
	if got := af.Rel["Risk-[unionOf]->ContraIndication"]; got != 1 {
		t.Errorf("AF(unionOf CI) = %v, want 1", got)
	}
	// Q6 and Q10 read Indication.desc through treat; prop accesses also
	// bump the relationship counter.
	if got := af.RelProp["Drug-[treat]->Indication"]["desc"]; got != 2 {
		t.Errorf("AF(treat.desc) = %v, want 2 (Q6+Q10)", got)
	}
	// Untouched relationships must be zero, not the default 1.
	if got := af.Rel["Patient-[hasEncounter]->Encounter"]; got != 0 {
		t.Errorf("AF(untouched) = %v, want 0", got)
	}
	// Q5 traverses the isA to DrugInteraction and reads summary.
	if got := af.RelProp["DrugInteraction-[isA]->DrugLabInteraction"]["summary"]; got != 1 {
		t.Errorf("AF(isA.summary) = %v, want 1", got)
	}
}

func TestAFFromQueriesFIN(t *testing.T) {
	fin := datagen.FIN()
	af, err := AFFromQueries(fin, MicrobenchmarkFor("FIN"))
	if err != nil {
		t.Fatal(err)
	}
	// Q3's two isA hops.
	if got := af.Rel["AutonomousAgent-[isA]->Person"]; got < 1 {
		t.Errorf("AF(AA isA Person) = %v, want >= 1", got)
	}
	if got := af.Rel["Person-[isA]->ContractParty"]; got != 1 {
		t.Errorf("AF(Person isA ContractParty) = %v, want 1", got)
	}
	// Q11 reads hasEffectiveDate through manages.
	if got := af.RelProp["Corporation-[manages]->Contract"]["hasEffectiveDate"]; got != 1 {
		t.Errorf("AF(manages.hasEffectiveDate) = %v, want 1", got)
	}
	// Q7 touches Corporation without traversing.
	if got := af.Concept["Corporation"]; got < 1 {
		t.Errorf("AF(Corporation) = %v, want >= 1", got)
	}
}

func TestAFFromQueriesBadText(t *testing.T) {
	med := datagen.MED()
	if _, err := AFFromQueries(med, []Query{{Name: "bad", Text: "not cypher"}}); err == nil {
		t.Error("unparseable query accepted")
	}
}
