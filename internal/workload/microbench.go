// Package workload provides the paper's query workloads: the twelve
// microbenchmark queries of §5.3 (pattern matching Q1-Q4, property lookup
// Q5-Q8, aggregation Q9-Q12) and a generator for mixed workloads with
// uniform or Zipf access distributions, together with the access-frequency
// summaries the optimizer consumes.
package workload

// Kind classifies a benchmark query by the paper's three groups.
type Kind int

const (
	// Pattern is a sub-graph match with 3 vertices and 2 edges (Q1-Q4).
	Pattern Kind = iota
	// Lookup reads a vertex property, possibly across one hop (Q5-Q8).
	Lookup
	// Aggregation counts/collects over a vertex's neighborhood (Q9-Q12).
	Aggregation
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Pattern:
		return "pattern"
	case Lookup:
		return "lookup"
	default:
		return "aggregation"
	}
}

// Query is one benchmark query expressed against the DIR schema.
type Query struct {
	Name    string
	Dataset string // "MED" or "FIN"
	Kind    Kind
	Text    string
	// Localize enables scalar-lookup localization when rewriting (the
	// paper's Q6 behaviour: read the replicated list instead of
	// traversing).
	Localize bool
}

// Microbenchmark returns the paper's Q1-Q12. Q9 and Q11 are written in
// the generator's edge orientation (see DESIGN.md); shapes and concepts
// match the paper's listings.
func Microbenchmark() []Query {
	return []Query{
		{Name: "Q1", Dataset: "MED", Kind: Pattern,
			Text: `MATCH (d:Drug)-[p:cause]->(r:Risk)<-[p2:unionOf]-(ci:ContraIndication) RETURN d.name`},
		{Name: "Q2", Dataset: "MED", Kind: Pattern,
			Text: `MATCH (d:Drug)-[p:cause]->(r:Risk)<-[p2:unionOf]-(b:BlackBoxWarning) RETURN d.name, b.route`},
		{Name: "Q3", Dataset: "FIN", Kind: Pattern,
			Text: `MATCH (aa:AutonomousAgent)<-[r1:isA]-(p:Person)<-[r2:isA]-(cp:ContractParty) RETURN aa`},
		{Name: "Q4", Dataset: "FIN", Kind: Pattern,
			Text: `MATCH (e:Exchange)-[r1:registers]->(corp:Corporation)<-[r2:isA]-(b:Bank) RETURN corp.hasLegalName`},
		{Name: "Q5", Dataset: "MED", Kind: Lookup,
			Text: `MATCH (dl:DrugLabInteraction)-[r:isA]->(di:DrugInteraction) RETURN di.summary`},
		{Name: "Q6", Dataset: "MED", Kind: Lookup, Localize: true,
			Text: `MATCH (d:Drug)-[r:treat]->(i:Indication) RETURN i.desc`},
		{Name: "Q7", Dataset: "FIN", Kind: Lookup,
			Text: `MATCH (n:Corporation) RETURN n.hasLegalName`},
		{Name: "Q8", Dataset: "FIN", Kind: Lookup,
			Text: `MATCH (p:Person)-[r:isA]->(aa:AutonomousAgent) RETURN aa.agentId`},
		{Name: "Q9", Dataset: "MED", Kind: Aggregation,
			Text: `MATCH p=(d:Drug)-[r:hasDrugRoute]->(dr:DrugRoute) RETURN dr.drugRouteId, size(COLLECT(d.brand)) AS numberOfDrugBrands`},
		{Name: "Q10", Dataset: "MED", Kind: Aggregation,
			Text: `MATCH (d:Drug)-[r:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc)) AS numberOfIndications`},
		{Name: "Q11", Dataset: "FIN", Kind: Aggregation,
			Text: `MATCH p=(corp:Corporation)-[r:manages]->(con:Contract) RETURN size(COLLECT(con.hasEffectiveDate)) AS numberOfEffectiveDates`},
		{Name: "Q12", Dataset: "FIN", Kind: Aggregation,
			Text: `MATCH (p:Person)-[r:holds]->(a:Account) RETURN p.personName, size(COLLECT(a.accountId)) AS numberOfAccounts`},
	}
}

// MicrobenchmarkFor filters the microbenchmark to one dataset.
func MicrobenchmarkFor(dataset string) []Query {
	var out []Query
	for _, q := range Microbenchmark() {
		if q.Dataset == dataset {
			out = append(out, q)
		}
	}
	return out
}
