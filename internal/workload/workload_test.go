package workload

import (
	"strings"
	"testing"

	"repro/internal/cypher"
	"repro/internal/datagen"
	"repro/internal/ontology"
)

func TestMicrobenchmarkShape(t *testing.T) {
	qs := Microbenchmark()
	if len(qs) != 12 {
		t.Fatalf("microbenchmark has %d queries, want 12", len(qs))
	}
	counts := map[Kind]int{}
	datasets := map[string]int{}
	for _, q := range qs {
		counts[q.Kind]++
		datasets[q.Dataset]++
		if _, err := cypher.Parse(q.Text); err != nil {
			t.Errorf("%s does not parse: %v", q.Name, err)
		}
	}
	if counts[Pattern] != 4 || counts[Lookup] != 4 || counts[Aggregation] != 4 {
		t.Errorf("kind mix = %v, want 4/4/4", counts)
	}
	if datasets["MED"] != 6 || datasets["FIN"] != 6 {
		t.Errorf("dataset mix = %v, want 6/6", datasets)
	}
	if len(MicrobenchmarkFor("MED")) != 6 {
		t.Error("MicrobenchmarkFor(MED) != 6")
	}
}

// TestMicrobenchmarkConceptsExist: every label and property referenced by
// the fixed queries exists in the generated ontologies.
func TestMicrobenchmarkConceptsExist(t *testing.T) {
	onts := map[string]*ontology.Ontology{"MED": datagen.MED(), "FIN": datagen.FIN()}
	for _, q := range Microbenchmark() {
		o := onts[q.Dataset]
		parsed := cypher.MustParse(q.Text)
		for _, pat := range parsed.Patterns {
			for _, n := range pat.Nodes {
				for _, l := range n.Labels {
					if o.Concept(l) == nil {
						t.Errorf("%s references unknown concept %s", q.Name, l)
					}
				}
			}
		}
	}
}

func TestGenerateWorkloadCounts(t *testing.T) {
	o := datagen.MED()
	wl, err := Generate(o, 15, Uniform, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Queries) != 15 {
		t.Fatalf("generated %d queries, want 15", len(wl.Queries))
	}
	for _, q := range wl.Queries {
		if _, err := cypher.Parse(q.Text); err != nil {
			t.Errorf("%s does not parse: %v\n%s", q.Name, err, q.Text)
		}
	}
	// AF must be non-empty and keyed by real relationships.
	if len(wl.AF.Rel) == 0 {
		t.Fatal("empty access frequencies")
	}
	keys := map[string]bool{}
	for _, r := range o.Relationships {
		keys[r.Key()] = true
	}
	for k := range wl.AF.Rel {
		if !keys[k] {
			t.Errorf("AF references unknown relationship %s", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	o := datagen.FIN()
	a, err := Generate(o, 20, Zipf, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(o, 20, Zipf, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Text != b.Queries[i].Text {
			t.Fatalf("query %d differs across runs", i)
		}
	}
}

// TestZipfSkew: under Zipf, high-degree concepts take most accesses.
func TestZipfSkew(t *testing.T) {
	o := datagen.FIN()
	uni, err := Generate(o, 400, Uniform, 3)
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := Generate(o, 400, Zipf, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := topConcept(o)
	if zipf.AF.Concept[top] <= uni.AF.Concept[top] {
		t.Errorf("Zipf accesses of %s (%v) not above uniform (%v)",
			top, zipf.AF.Concept[top], uni.AF.Concept[top])
	}
	// Zipf should concentrate: fewer distinct queries than uniform.
	if distinct(zipf.Queries) >= distinct(uni.Queries) {
		t.Errorf("Zipf distinct=%d, uniform distinct=%d; expected concentration",
			distinct(zipf.Queries), distinct(uni.Queries))
	}
}

func topConcept(o *ontology.Ontology) string {
	degree := map[string]int{}
	for _, r := range o.Relationships {
		degree[r.Src]++
		degree[r.Dst]++
	}
	best, bestD := "", -1
	for _, c := range o.Concepts {
		if degree[c.Name] > bestD || (degree[c.Name] == bestD && c.Name < best) {
			best, bestD = c.Name, degree[c.Name]
		}
	}
	return best
}

func distinct(qs []Query) int {
	seen := map[string]bool{}
	for _, q := range qs {
		seen[q.Text] = true
	}
	return len(seen)
}

func TestGenerateKindsCovered(t *testing.T) {
	o := datagen.MED()
	wl, err := Generate(o, 60, Uniform, 9)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, q := range wl.Queries {
		kinds[q.Kind]++
	}
	for _, k := range []Kind{Pattern, Lookup, Aggregation} {
		if kinds[k] == 0 {
			t.Errorf("no %s queries generated", k)
		}
	}
}

func TestGenerateEmptyOntology(t *testing.T) {
	o := ontology.New()
	o.AddConcept("Lonely")
	if _, err := Generate(o, 5, Uniform, 1); err == nil {
		t.Error("motif-free ontology accepted")
	}
}

func TestKindAndDistributionStrings(t *testing.T) {
	if Pattern.String() != "pattern" || Lookup.String() != "lookup" || Aggregation.String() != "aggregation" {
		t.Error("kind names wrong")
	}
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Error("distribution names wrong")
	}
	if !strings.Contains(Microbenchmark()[0].Text, "MATCH") {
		t.Error("query text malformed")
	}
}
