// Package knapsack implements the 0/1 knapsack solvers used by the
// relation-centric schema optimization algorithm (§4.2.2): an exact
// dynamic program for small instances (used in tests as ground truth) and
// the fully polynomial-time approximation scheme (FPTAS) of Vazirani that
// the paper adopts, which guarantees a total benefit within (1-ε) of
// optimal.
package knapsack

import (
	"math"
)

// Item is one selectable object. Benefit and Cost must be positive for
// Solve; the relation-centric algorithm pre-filters zero-cost items
// (Proposition 1's positivity requirement).
type Item struct {
	Benefit float64
	Cost    float64
}

// maxStates bounds the benefit-indexed DP table; when ε would produce a
// larger table, the scale factor grows (coarser precision) to stay within
// memory. This only loosens the approximation for degenerate inputs.
const maxStates = 1 << 20

// Solve selects a subset of items maximizing total benefit subject to
// total cost ≤ budget, using benefit scaling with parameter eps (0 < eps
// < 1). The returned indices are sorted ascending. The total benefit of
// the selection is at least (1-eps) times optimal.
func Solve(items []Item, budget float64, eps float64) []int {
	if len(items) == 0 || budget <= 0 {
		return nil
	}
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	// Drop items that cannot fit or contribute.
	type cand struct {
		idx int
		b   float64
		c   float64
	}
	var cands []cand
	maxB := 0.0
	for i, it := range items {
		if it.Benefit <= 0 || it.Cost <= 0 || it.Cost > budget {
			continue
		}
		cands = append(cands, cand{i, it.Benefit, it.Cost})
		if it.Benefit > maxB {
			maxB = it.Benefit
		}
	}
	if len(cands) == 0 {
		return nil
	}
	n := len(cands)
	// Scale factor K = ε·Bmax/n (Vazirani §8.2). Raise it if the DP
	// would exceed the state bound.
	k := eps * maxB / float64(n)
	if k <= 0 {
		k = 1
	}
	for {
		total := 0
		ok := true
		for _, c := range cands {
			total += int(math.Floor(c.b / k))
			if total > maxStates {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		k *= 2
	}
	scaled := make([]int, n)
	sum := 0
	for i, c := range cands {
		scaled[i] = int(math.Floor(c.b / k))
		sum += scaled[i]
	}
	// dp[v] = minimal cost achieving scaled benefit exactly v.
	const inf = math.MaxFloat64
	dp := make([]float64, sum+1)
	for v := 1; v <= sum; v++ {
		dp[v] = inf
	}
	// take[i] marks the benefits v where item i improved dp[v].
	words := (sum + 1 + 63) / 64
	take := make([][]uint64, n)
	for i := range take {
		take[i] = make([]uint64, words)
	}
	reach := 0
	for i, c := range cands {
		b := scaled[i]
		if b == 0 {
			continue
		}
		hi := reach + b
		if hi > sum {
			hi = sum
		}
		for v := hi; v >= b; v-- {
			if dp[v-b] == inf {
				continue
			}
			if cost := dp[v-b] + c.c; cost < dp[v] {
				dp[v] = cost
				take[i][v/64] |= 1 << (v % 64)
			}
		}
		reach = hi
	}
	best := 0
	for v := sum; v > 0; v-- {
		if dp[v] <= budget {
			best = v
			break
		}
	}
	// Reconstruct: walk items backwards; item i was chosen at benefit v
	// iff it set the take bit there during its (final) relaxation pass.
	var chosen []int
	v := best
	for i := n - 1; i >= 0 && v > 0; i-- {
		if scaled[i] == 0 {
			continue
		}
		if take[i][v/64]&(1<<(v%64)) != 0 {
			chosen = append(chosen, cands[i].idx)
			v -= scaled[i]
		}
	}
	// Zero-scaled items ride along for free if they fit in the residual
	// budget (their true benefit is tiny but nonzero).
	usedCost := 0.0
	sel := map[int]bool{}
	for _, idx := range chosen {
		sel[idx] = true
		usedCost += items[idx].Cost
	}
	for i, c := range cands {
		if scaled[i] == 0 && !sel[c.idx] && usedCost+c.c <= budget {
			chosen = append(chosen, c.idx)
			usedCost += c.c
		}
	}
	sortInts(chosen)
	return chosen
}

// SolveExact solves small instances exactly by dynamic programming over
// integer costs. Intended for tests (ground truth for the FPTAS bound);
// costs must be non-negative integers and budget modest.
func SolveExact(benefits []float64, costs []int, budget int) []int {
	n := len(benefits)
	if n == 0 || budget <= 0 {
		return nil
	}
	dp := make([]float64, budget+1)
	take := make([][]bool, n)
	for i := range take {
		take[i] = make([]bool, budget+1)
	}
	for i := 0; i < n; i++ {
		if benefits[i] <= 0 || costs[i] < 0 || costs[i] > budget {
			continue
		}
		for w := budget; w >= costs[i]; w-- {
			if v := dp[w-costs[i]] + benefits[i]; v > dp[w] {
				dp[w] = v
				take[i][w] = true
			}
		}
	}
	var chosen []int
	w := budget
	for i := n - 1; i >= 0; i-- {
		if w >= 0 && costs[i] <= w && take[i][w] {
			chosen = append(chosen, i)
			w -= costs[i]
		}
	}
	sortInts(chosen)
	return chosen
}

// TotalBenefit sums the benefits of the selected items.
func TotalBenefit(items []Item, sel []int) float64 {
	t := 0.0
	for _, i := range sel {
		t += items[i].Benefit
	}
	return t
}

// TotalCost sums the costs of the selected items.
func TotalCost(items []Item, sel []int) float64 {
	t := 0.0
	for _, i := range sel {
		t += items[i].Cost
	}
	return t
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
