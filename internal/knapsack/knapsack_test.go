package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveEmptyAndDegenerate(t *testing.T) {
	if got := Solve(nil, 10, 0.1); got != nil {
		t.Errorf("Solve(nil) = %v", got)
	}
	if got := Solve([]Item{{1, 1}}, 0, 0.1); got != nil {
		t.Errorf("Solve budget 0 = %v", got)
	}
	if got := Solve([]Item{{0, 1}, {1, 0}, {-1, 2}, {2, -3}}, 10, 0.1); got != nil {
		t.Errorf("Solve with non-positive items = %v", got)
	}
}

func TestSolveSimple(t *testing.T) {
	items := []Item{
		{Benefit: 60, Cost: 10},
		{Benefit: 100, Cost: 20},
		{Benefit: 120, Cost: 30},
	}
	sel := Solve(items, 50, 0.01)
	if got := TotalBenefit(items, sel); got != 220 {
		t.Errorf("benefit = %v (sel %v), want 220", got, sel)
	}
	if got := TotalCost(items, sel); got > 50 {
		t.Errorf("cost = %v exceeds budget", got)
	}
}

func TestSolveRespectsBudgetAlways(t *testing.T) {
	f := func(seed int64, budget16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Benefit: float64(1 + rng.Intn(100)),
				Cost:    float64(1 + rng.Intn(50)),
			}
		}
		budget := float64(budget16 % 200)
		sel := Solve(items, budget, 0.1)
		return TotalCost(items, sel) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFPTASBound: the FPTAS achieves at least (1-ε)·OPT on random integer
// instances where the exact DP is feasible.
func TestFPTASBound(t *testing.T) {
	const eps = 0.1
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		items := make([]Item, n)
		benefits := make([]float64, n)
		costs := make([]int, n)
		for i := range items {
			b := float64(1 + rng.Intn(100))
			c := 1 + rng.Intn(40)
			items[i] = Item{Benefit: b, Cost: float64(c)}
			benefits[i], costs[i] = b, c
		}
		budget := 10 + rng.Intn(200)
		approx := TotalBenefit(items, Solve(items, float64(budget), eps))
		exact := TotalBenefit(items, SolveExact(benefits, costs, budget))
		return approx >= (1-eps)*exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolveExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		benefits := make([]float64, n)
		costs := make([]int, n)
		items := make([]Item, n)
		for i := range benefits {
			benefits[i] = float64(1 + rng.Intn(30))
			costs[i] = 1 + rng.Intn(15)
			items[i] = Item{Benefit: benefits[i], Cost: float64(costs[i])}
		}
		budget := rng.Intn(60)
		got := TotalBenefit(items, SolveExact(benefits, costs, budget))
		// Brute force over all subsets.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			b, c := 0.0, 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					b += benefits[i]
					c += costs[i]
				}
			}
			if c <= budget && b > best {
				best = b
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveSelectionIsConsistent(t *testing.T) {
	items := []Item{{10, 5}, {20, 8}, {15, 7}, {9, 4}}
	sel := Solve(items, 15, 0.05)
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= len(items) {
			t.Fatalf("index out of range: %d", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] < sel[i-1] {
			t.Fatal("selection not sorted")
		}
	}
}

func TestLargeInstanceStaysFast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Benefit: rng.Float64() * 1000, Cost: rng.Float64()*1e6 + 1}
	}
	sel := Solve(items, 5e7, 0.1)
	if len(sel) == 0 {
		t.Error("large instance selected nothing")
	}
	if TotalCost(items, sel) > 5e7 {
		t.Error("budget exceeded")
	}
}
