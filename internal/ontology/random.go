package ontology

import (
	"fmt"
	"math/rand"
)

// RandomOntology generates a pseudo-random valid ontology with nConcepts
// concepts and up to nRels relationships, deterministically from seed. It
// is used by property-based tests across the repository (rule confluence,
// DIR/OPT semantic equivalence, optimizer budget safety).
//
// Inheritance and union relationships only point from a lower-indexed
// concept to a higher-indexed one, guaranteeing acyclicity. Concepts may
// still play several roles at once (union member and parent, child and 1:M
// source, ...), which is exactly the territory the paper's Theorem 3 proof
// has to cover.
func RandomOntology(seed int64, nConcepts, nRels int) *Ontology {
	rng := rand.New(rand.NewSource(seed))
	if nConcepts < 2 {
		nConcepts = 2
	}
	o := New()
	types := []DataType{TString, TInt, TFloat, TBool}
	for i := 0; i < nConcepts; i++ {
		nProps := rng.Intn(4)
		props := make([]Property, 0, nProps)
		for j := 0; j < nProps; j++ {
			props = append(props, Property{
				Name: fmt.Sprintf("p%d_%d", i, j),
				Type: types[rng.Intn(len(types))],
			})
		}
		o.AddConcept(fmt.Sprintf("C%d", i), props...)
	}
	// facetPair tracks concept pairs already connected by a
	// facet-creating relationship (inheritance or union). A second such
	// relationship between the same pair would make a concept both a
	// subclass and a union member of the same concept — ontologically
	// degenerate, and no real ontology (nor MED/FIN) contains it.
	facetPair := map[[2]int]bool{}
	for k := 0; k < nRels; k++ {
		i := rng.Intn(nConcepts)
		j := rng.Intn(nConcepts)
		if i == j {
			continue
		}
		t := RelType(rng.Intn(5))
		if t == Inheritance || t == Union {
			// Orient "downward" to keep the hierarchy acyclic.
			if i > j {
				i, j = j, i
			}
			if facetPair[[2]int{i, j}] {
				continue
			}
			facetPair[[2]int{i, j}] = true
		}
		name := fmt.Sprintf("r%d", k)
		if t == Inheritance {
			name = "isA"
		}
		if t == Union {
			name = "unionOf"
		}
		r := &Relationship{Name: name, Src: fmt.Sprintf("C%d", i), Dst: fmt.Sprintf("C%d", j), Type: t}
		dup := false
		for _, ex := range o.Relationships {
			if ex.Key() == r.Key() {
				dup = true
				break
			}
		}
		if !dup {
			o.Relationships = append(o.Relationships, r)
		}
	}
	return o
}
