package ontology

import "fmt"

// Stats holds the data characteristics of §4.2: instance cardinalities per
// concept, edge cardinalities per relationship, and the average string
// length used to size STRING properties in the cost model.
type Stats struct {
	// ConceptCard maps concept name to |ci|, its number of instances.
	ConceptCard map[string]int
	// RelCard maps Relationship.Key() to |r|, its number of edge instances.
	RelCard map[string]int
	// AvgStringLen is the assumed byte size of a STRING value.
	AvgStringLen int
}

// NewStats returns empty statistics with the given average string size.
func NewStats(avgStringLen int) *Stats {
	return &Stats{
		ConceptCard:  map[string]int{},
		RelCard:      map[string]int{},
		AvgStringLen: avgStringLen,
	}
}

// DefaultStats synthesizes uniform statistics for an ontology: every
// concept gets card instances, every relationship fanout× that many edges.
// Used when no data characteristics are supplied (§4.2: "In case of no
// prior knowledge ... uniform distribution").
func DefaultStats(o *Ontology, card int) *Stats {
	s := NewStats(16)
	for _, c := range o.Concepts {
		s.ConceptCard[c.Name] = card
	}
	for _, r := range o.Relationships {
		switch r.Type {
		case Union, Inheritance, OneToOne:
			s.RelCard[r.Key()] = card
		case OneToMany:
			s.RelCard[r.Key()] = 4 * card
		case ManyToMany:
			s.RelCard[r.Key()] = 8 * card
		}
	}
	return s
}

// PropSize returns the byte size of one value of the property (p.type in
// Equations 4-5): fixed-width for numeric types, AvgStringLen for strings.
func (s *Stats) PropSize(p Property) int {
	if n := p.Type.FixedSize(); n > 0 {
		return n
	}
	if s.AvgStringLen > 0 {
		return s.AvgStringLen
	}
	return 16
}

// Card returns |c| for the concept, defaulting to 1 so cost formulas stay
// positive when statistics are incomplete.
func (s *Stats) Card(concept string) int {
	if n, ok := s.ConceptCard[concept]; ok {
		return n
	}
	return 1
}

// EdgeCard returns |r| for the relationship, defaulting to 1.
func (s *Stats) EdgeCard(r *Relationship) int {
	if n, ok := s.RelCard[r.Key()]; ok {
		return n
	}
	return 1
}

// ConceptSize returns Size(ci) from Equation 2: the per-instance property
// payload of the concept times its cardinality.
func (s *Stats) ConceptSize(o *Ontology, concept string) int {
	c := o.Concept(concept)
	if c == nil {
		return 1
	}
	per := 0
	for _, p := range c.Props {
		per += s.PropSize(p)
	}
	if per == 0 {
		per = 1
	}
	return per * s.Card(concept)
}

// Validate checks that the statistics cover the ontology.
func (s *Stats) Validate(o *Ontology) error {
	for _, c := range o.Concepts {
		if _, ok := s.ConceptCard[c.Name]; !ok {
			return fmt.Errorf("stats: no cardinality for concept %s", c.Name)
		}
	}
	for _, r := range o.Relationships {
		if _, ok := s.RelCard[r.Key()]; !ok {
			return fmt.Errorf("stats: no cardinality for relationship %s", r.Key())
		}
	}
	return nil
}

// AccessFrequencies abstracts the workload summaries of §4.2: how often
// queries touch each concept, relationship, and data property reached
// through a relationship (AF(ci -r-> cj.Pj) in the paper).
type AccessFrequencies struct {
	// Concept maps concept name to AF(ci).
	Concept map[string]float64
	// Rel maps Relationship.Key() to AF(ci -r-> cj).
	Rel map[string]float64
	// RelProp maps Relationship.Key() then destination property name to
	// AF(ci -r-> cj.p).
	RelProp map[string]map[string]float64
}

// NewAccessFrequencies returns an empty summary.
func NewAccessFrequencies() *AccessFrequencies {
	return &AccessFrequencies{
		Concept: map[string]float64{},
		Rel:     map[string]float64{},
		RelProp: map[string]map[string]float64{},
	}
}

// UniformAF returns the uniform workload summary assumed when no workload
// is known: every concept, relationship, and reachable property has
// frequency 1.
func UniformAF(o *Ontology) *AccessFrequencies {
	af := NewAccessFrequencies()
	for _, c := range o.Concepts {
		af.Concept[c.Name] = 1
	}
	for _, r := range o.Relationships {
		af.Rel[r.Key()] = 1
		dst := o.Concept(r.Dst)
		src := o.Concept(r.Src)
		m := map[string]float64{}
		if dst != nil {
			for _, p := range dst.Props {
				m[p.Name] = 1
			}
		}
		// M:N relationships are optimized in both directions (§4.2.2), so
		// source properties are also reachable "through" the relationship.
		if r.Type == ManyToMany && src != nil {
			for _, p := range src.Props {
				m[p.Name] = 1
			}
		}
		af.RelProp[r.Key()] = m
	}
	return af
}

// OfConcept returns AF(ci), defaulting to 1.
func (af *AccessFrequencies) OfConcept(name string) float64 {
	if f, ok := af.Concept[name]; ok {
		return f
	}
	return 1
}

// OfRel returns AF(ci -r-> cj), defaulting to 1.
func (af *AccessFrequencies) OfRel(r *Relationship) float64 {
	if f, ok := af.Rel[r.Key()]; ok {
		return f
	}
	return 1
}

// OfRelProp returns AF(ci -r-> cj.p), defaulting to OfRel(r) spread over a
// single property.
func (af *AccessFrequencies) OfRelProp(r *Relationship, prop string) float64 {
	if m, ok := af.RelProp[r.Key()]; ok {
		if f, ok := m[prop]; ok {
			return f
		}
	}
	return af.OfRel(r)
}

// AddRelProp accumulates frequency for a property accessed through a
// relationship, keeping Rel in sync (a property access implies a
// relationship access).
func (af *AccessFrequencies) AddRelProp(r *Relationship, prop string, f float64) {
	af.Rel[r.Key()] += f
	m := af.RelProp[r.Key()]
	if m == nil {
		m = map[string]float64{}
		af.RelProp[r.Key()] = m
	}
	m[prop] += f
}

// AddConcept accumulates frequency for direct accesses to a concept.
func (af *AccessFrequencies) AddConcept(name string, f float64) {
	af.Concept[name] += f
}

// AddRel accumulates frequency for traversals of a relationship that do not
// read a specific destination property.
func (af *AccessFrequencies) AddRel(r *Relationship, f float64) {
	af.Rel[r.Key()] += f
}
