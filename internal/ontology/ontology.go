// Package ontology models the domain ontologies that drive property graph
// schema optimization (Definition 1 of the paper): a set of concepts, a set
// of data properties attached to concepts, and a set of typed relationships
// (1:1, 1:M, M:N, union, inheritance) between concepts.
//
// An Ontology is the sole semantic input to the optimizer; data statistics
// (Stats) and access frequencies (AccessFrequencies) are the optional
// cost-model inputs described in the paper's §4.2.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// RelType enumerates the relationship types of Definition 1.
type RelType int

const (
	// OneToOne relates each source instance to at most one destination
	// instance and vice versa.
	OneToOne RelType = iota
	// OneToMany relates each source instance to any number of destination
	// instances; each destination instance has at most one source.
	OneToMany
	// ManyToMany places no cardinality bound on either end.
	ManyToMany
	// Union marks the source concept as a union whose extent is exactly
	// the disjoint union of its member (destination) concepts.
	Union
	// Inheritance marks the destination concept as a child (subclass) of
	// the source concept.
	Inheritance
)

// String returns the paper's name for the relationship type.
func (t RelType) String() string {
	switch t {
	case OneToOne:
		return "1:1"
	case OneToMany:
		return "1:M"
	case ManyToMany:
		return "M:N"
	case Union:
		return "union"
	case Inheritance:
		return "inheritance"
	default:
		return fmt.Sprintf("RelType(%d)", int(t))
	}
}

// DataType enumerates property value types. Sizes feed the cost model
// (p.type in Equations 4 and 5).
type DataType int

const (
	// TString is a variable-length string property.
	TString DataType = iota
	// TInt is a 64-bit integer property.
	TInt
	// TFloat is a 64-bit floating point property.
	TFloat
	// TBool is a boolean property.
	TBool
)

// String returns the DDL spelling of the data type.
func (t DataType) String() string {
	switch t {
	case TString:
		return "STRING"
	case TInt:
		return "INT"
	case TFloat:
		return "DOUBLE"
	case TBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("DataType(%d)", int(t))
	}
}

// FixedSize returns the in-storage size in bytes for fixed-width types and
// 0 for TString (whose size comes from Stats.AvgStringLen).
func (t DataType) FixedSize() int {
	switch t {
	case TInt, TFloat:
		return 8
	case TBool:
		return 1
	default:
		return 0
	}
}

// Property is a data property (OWL DataProperty) of a concept.
type Property struct {
	Name string
	Type DataType
}

// Concept is an ontology concept (OWL class) with its data properties.
type Concept struct {
	Name  string
	Props []Property
}

// PropNames returns the property names of the concept in declaration order.
func (c *Concept) PropNames() []string {
	names := make([]string, len(c.Props))
	for i, p := range c.Props {
		names[i] = p.Name
	}
	return names
}

// HasProp reports whether the concept declares a property with this name.
func (c *Concept) HasProp(name string) bool {
	for _, p := range c.Props {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Relationship is a typed, directed relationship between two concepts
// (OWL ObjectProperty, or the pseudo-relationships union/inheritance).
//
// Orientation follows the paper's algorithms: for Union, Src is the union
// concept and Dst the member; for Inheritance, Src is the parent and Dst
// the child; for OneToMany, Src is the "one" side and Dst the "many" side.
type Relationship struct {
	Name string // edge label, e.g. "treat"; "unionOf"/"isA" for union/inheritance
	Src  string // source concept name
	Dst  string // destination concept name
	Type RelType
}

// Key returns a string uniquely identifying the relationship within an
// ontology. Two relationships may share a Name (e.g. two "cause" edges),
// so the key includes both endpoints.
func (r *Relationship) Key() string {
	return r.Src + "-[" + r.Name + "]->" + r.Dst
}

// Other returns the concept on the opposite end from the given concept.
func (r *Relationship) Other(concept string) string {
	if r.Src == concept {
		return r.Dst
	}
	return r.Src
}

// Ontology is the paper's O(C, R, P): concepts with data properties and
// relationships between them. The zero value is an empty ontology; use
// AddConcept/AddRelationship to populate it.
type Ontology struct {
	Concepts      []*Concept
	Relationships []*Relationship

	byName map[string]*Concept
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{byName: map[string]*Concept{}}
}

// AddConcept adds a concept with the given properties and returns it.
// Adding a duplicate name panics: ontologies are built by generators and a
// duplicate is a programming error.
func (o *Ontology) AddConcept(name string, props ...Property) *Concept {
	if o.byName == nil {
		o.byName = map[string]*Concept{}
	}
	if _, dup := o.byName[name]; dup {
		panic("ontology: duplicate concept " + name)
	}
	c := &Concept{Name: name, Props: props}
	o.Concepts = append(o.Concepts, c)
	o.byName[name] = c
	return c
}

// AddRelationship adds a relationship and returns it.
func (o *Ontology) AddRelationship(name, src, dst string, t RelType) *Relationship {
	r := &Relationship{Name: name, Src: src, Dst: dst, Type: t}
	o.Relationships = append(o.Relationships, r)
	return r
}

// Concept returns the concept with the given name, or nil.
func (o *Ontology) Concept(name string) *Concept {
	if o.byName == nil {
		o.reindex()
	}
	return o.byName[name]
}

func (o *Ontology) reindex() {
	o.byName = make(map[string]*Concept, len(o.Concepts))
	for _, c := range o.Concepts {
		o.byName[c.Name] = c
	}
}

// OutE returns all relationships whose source is the concept.
func (o *Ontology) OutE(concept string) []*Relationship {
	var out []*Relationship
	for _, r := range o.Relationships {
		if r.Src == concept {
			out = append(out, r)
		}
	}
	return out
}

// InE returns all relationships whose destination is the concept.
func (o *Ontology) InE(concept string) []*Relationship {
	var in []*Relationship
	for _, r := range o.Relationships {
		if r.Dst == concept {
			in = append(in, r)
		}
	}
	return in
}

// Rels returns all relationships touching the concept (ci.Ri in the paper).
func (o *Ontology) Rels(concept string) []*Relationship {
	var rs []*Relationship
	for _, r := range o.Relationships {
		if r.Src == concept || r.Dst == concept {
			rs = append(rs, r)
		}
	}
	return rs
}

// RelsByType returns all relationships of the given type.
func (o *Ontology) RelsByType(t RelType) []*Relationship {
	var rs []*Relationship
	for _, r := range o.Relationships {
		if r.Type == t {
			rs = append(rs, r)
		}
	}
	return rs
}

// CountByType returns the number of relationships per type.
func (o *Ontology) CountByType() map[RelType]int {
	m := map[RelType]int{}
	for _, r := range o.Relationships {
		m[r.Type]++
	}
	return m
}

// NumProps returns the total number of data properties across all concepts.
func (o *Ontology) NumProps() int {
	n := 0
	for _, c := range o.Concepts {
		n += len(c.Props)
	}
	return n
}

// Clone returns a deep copy of the ontology.
func (o *Ontology) Clone() *Ontology {
	c := New()
	for _, con := range o.Concepts {
		props := make([]Property, len(con.Props))
		copy(props, con.Props)
		c.AddConcept(con.Name, props...)
	}
	for _, r := range o.Relationships {
		c.AddRelationship(r.Name, r.Src, r.Dst, r.Type)
	}
	return c
}

// Validate checks referential integrity and the structural constraints the
// optimizer relies on: every relationship endpoint names an existing
// concept, relationship keys are unique, concept property names are unique
// within a concept, and no concept inherits from itself.
func (o *Ontology) Validate() error {
	if o.byName == nil || len(o.byName) != len(o.Concepts) {
		o.reindex()
	}
	seen := map[string]bool{}
	for _, c := range o.Concepts {
		pseen := map[string]bool{}
		for _, p := range c.Props {
			if pseen[p.Name] {
				return fmt.Errorf("ontology: concept %s has duplicate property %s", c.Name, p.Name)
			}
			pseen[p.Name] = true
		}
	}
	for _, r := range o.Relationships {
		if o.byName[r.Src] == nil {
			return fmt.Errorf("ontology: relationship %s references unknown source %s", r.Key(), r.Src)
		}
		if o.byName[r.Dst] == nil {
			return fmt.Errorf("ontology: relationship %s references unknown destination %s", r.Key(), r.Dst)
		}
		if r.Src == r.Dst && (r.Type == Inheritance || r.Type == Union) {
			return fmt.Errorf("ontology: %s relationship %s is self-referential", r.Type, r.Key())
		}
		if seen[r.Key()] {
			return fmt.Errorf("ontology: duplicate relationship %s", r.Key())
		}
		seen[r.Key()] = true
	}
	if err := o.checkAcyclic(Inheritance); err != nil {
		return err
	}
	return o.checkAcyclic(Union)
}

// checkAcyclic rejects cycles among relationships of type t, walking
// parent->child (src->dst) edges.
func (o *Ontology) checkAcyclic(t RelType) error {
	adj := map[string][]string{}
	for _, r := range o.Relationships {
		if r.Type == t {
			adj[r.Src] = append(adj[r.Src], r.Dst)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(c string) error {
		color[c] = gray
		for _, n := range adj[c] {
			switch color[n] {
			case gray:
				return fmt.Errorf("ontology: cycle of %s relationships through %s", t, n)
			case white:
				if err := visit(n); err != nil {
					return err
				}
			}
		}
		color[c] = black
		return nil
	}
	for c := range adj {
		if color[c] == white {
			if err := visit(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders a compact multi-line description, useful in tests and
// example output. Concepts and relationships are sorted for determinism.
func (o *Ontology) String() string {
	var b strings.Builder
	names := make([]string, 0, len(o.Concepts))
	for _, c := range o.Concepts {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		c := o.Concept(n)
		fmt.Fprintf(&b, "%s(%s)\n", c.Name, strings.Join(c.PropNames(), ", "))
	}
	keys := make([]string, 0, len(o.Relationships))
	byKey := map[string]*Relationship{}
	for _, r := range o.Relationships {
		keys = append(keys, r.Key())
		byKey[r.Key()] = r
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s [%s]\n", k, byKey[k].Type)
	}
	return b.String()
}
