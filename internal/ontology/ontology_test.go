package ontology

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// medFixture builds the paper's Figure 2 medical ontology snippet.
func medFixture() *Ontology {
	o := New()
	o.AddConcept("Drug", Property{"name", TString}, Property{"brand", TString})
	o.AddConcept("Indication", Property{"desc", TString})
	o.AddConcept("Condition", Property{"name", TString})
	o.AddConcept("Risk")
	o.AddConcept("ContraIndication", Property{"desc", TString})
	o.AddConcept("BlackBoxWarning", Property{"note", TString}, Property{"route", TString})
	o.AddConcept("DrugInteraction", Property{"summary", TString})
	o.AddConcept("DrugFoodInteraction", Property{"risk", TString})
	o.AddConcept("DrugLabInteraction", Property{"mechanism", TString})

	o.AddRelationship("treat", "Drug", "Indication", OneToMany)
	o.AddRelationship("is", "Indication", "Condition", OneToOne)
	o.AddRelationship("cause", "Drug", "Risk", OneToMany)
	o.AddRelationship("unionOf", "Risk", "ContraIndication", Union)
	o.AddRelationship("unionOf", "Risk", "BlackBoxWarning", Union)
	o.AddRelationship("has", "Drug", "DrugInteraction", ManyToMany)
	o.AddRelationship("isA", "DrugInteraction", "DrugFoodInteraction", Inheritance)
	o.AddRelationship("isA", "DrugInteraction", "DrugLabInteraction", Inheritance)
	return o
}

func TestValidateFixture(t *testing.T) {
	o := medFixture()
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestConceptLookup(t *testing.T) {
	o := medFixture()
	c := o.Concept("Drug")
	if c == nil {
		t.Fatal("Concept(Drug) = nil")
	}
	if got := len(c.Props); got != 2 {
		t.Errorf("Drug has %d props, want 2", got)
	}
	if !c.HasProp("brand") || c.HasProp("nope") {
		t.Errorf("HasProp misbehaves: brand=%v nope=%v", c.HasProp("brand"), c.HasProp("nope"))
	}
	if o.Concept("Absent") != nil {
		t.Error("Concept(Absent) != nil")
	}
}

func TestInOutRels(t *testing.T) {
	o := medFixture()
	if got := len(o.OutE("Drug")); got != 3 {
		t.Errorf("OutE(Drug) = %d rels, want 3", got)
	}
	if got := len(o.InE("Risk")); got != 1 {
		t.Errorf("InE(Risk) = %d rels, want 1", got)
	}
	if got := len(o.Rels("Risk")); got != 3 {
		t.Errorf("Rels(Risk) = %d rels, want 3", got)
	}
	counts := o.CountByType()
	want := map[RelType]int{OneToMany: 2, OneToOne: 1, Union: 2, ManyToMany: 1, Inheritance: 2}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("CountByType[%s] = %d, want %d", k, counts[k], v)
		}
	}
}

func TestRelationshipKeyAndOther(t *testing.T) {
	r := &Relationship{Name: "treat", Src: "Drug", Dst: "Indication", Type: OneToMany}
	if got, want := r.Key(), "Drug-[treat]->Indication"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
	if got := r.Other("Drug"); got != "Indication" {
		t.Errorf("Other(Drug) = %q, want Indication", got)
	}
	if got := r.Other("Indication"); got != "Drug" {
		t.Errorf("Other(Indication) = %q, want Drug", got)
	}
}

func TestValidateRejectsUnknownConcept(t *testing.T) {
	o := New()
	o.AddConcept("A")
	o.AddRelationship("r", "A", "Missing", OneToOne)
	if err := o.Validate(); err == nil {
		t.Fatal("Validate() accepted a dangling relationship")
	}
}

func TestValidateRejectsDuplicateRel(t *testing.T) {
	o := New()
	o.AddConcept("A")
	o.AddConcept("B")
	o.AddRelationship("r", "A", "B", OneToOne)
	o.AddRelationship("r", "A", "B", OneToOne)
	if err := o.Validate(); err == nil {
		t.Fatal("Validate() accepted a duplicate relationship")
	}
}

func TestValidateRejectsSelfInheritance(t *testing.T) {
	o := New()
	o.AddConcept("A")
	o.AddRelationship("isA", "A", "A", Inheritance)
	if err := o.Validate(); err == nil {
		t.Fatal("Validate() accepted self-inheritance")
	}
}

func TestValidateRejectsInheritanceCycle(t *testing.T) {
	o := New()
	o.AddConcept("A")
	o.AddConcept("B")
	o.AddConcept("C")
	o.AddRelationship("isA", "A", "B", Inheritance)
	o.AddRelationship("isA", "B", "C", Inheritance)
	o.AddRelationship("isA", "C", "A", Inheritance)
	if err := o.Validate(); err == nil {
		t.Fatal("Validate() accepted an inheritance cycle")
	}
}

func TestValidateRejectsDuplicateProperty(t *testing.T) {
	o := New()
	o.AddConcept("A", Property{"p", TString}, Property{"p", TInt})
	if err := o.Validate(); err == nil {
		t.Fatal("Validate() accepted duplicate property names")
	}
}

func TestAddConceptDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddConcept duplicate did not panic")
		}
	}()
	o := New()
	o.AddConcept("A")
	o.AddConcept("A")
}

func TestCloneIsDeep(t *testing.T) {
	o := medFixture()
	c := o.Clone()
	c.Concept("Drug").Props[0].Name = "mutated"
	c.Relationships[0].Name = "mutated"
	if o.Concept("Drug").Props[0].Name != "name" {
		t.Error("Clone shares concept property storage")
	}
	if o.Relationships[0].Name != "treat" {
		t.Error("Clone shares relationship storage")
	}
	if got, want := c.String(), o.String(); got == want {
		t.Error("mutated clone still renders identically, String() may ignore data")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	o := medFixture()
	data, err := o.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	back, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got, want := back.String(), o.String(); got != want {
		t.Errorf("round-trip mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestJSONRejectsBadType(t *testing.T) {
	in := `{"concepts":[{"name":"A","properties":[{"name":"p","type":"BLOB"}]}],"relationships":[]}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("Read accepted unknown data type")
	}
	in = `{"concepts":[{"name":"A"},{"name":"B"}],"relationships":[{"name":"r","src":"A","dst":"B","type":"2:2"}]}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("Read accepted unknown relationship type")
	}
}

func TestRelTypeAndDataTypeStrings(t *testing.T) {
	cases := map[string]string{
		OneToOne.String():    "1:1",
		OneToMany.String():   "1:M",
		ManyToMany.String():  "M:N",
		Union.String():       "union",
		Inheritance.String(): "inheritance",
		TString.String():     "STRING",
		TInt.String():        "INT",
		TFloat.String():      "DOUBLE",
		TBool.String():       "BOOLEAN",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestDefaultStatsCoversOntology(t *testing.T) {
	o := medFixture()
	s := DefaultStats(o, 100)
	if err := s.Validate(o); err != nil {
		t.Fatalf("DefaultStats incomplete: %v", err)
	}
	treat := o.Relationships[0]
	if s.EdgeCard(treat) <= s.Card("Drug") {
		t.Errorf("1:M edge card %d should exceed concept card %d", s.EdgeCard(treat), s.Card("Drug"))
	}
}

func TestStatsSizes(t *testing.T) {
	s := NewStats(20)
	if got := s.PropSize(Property{"x", TInt}); got != 8 {
		t.Errorf("PropSize(INT) = %d, want 8", got)
	}
	if got := s.PropSize(Property{"x", TString}); got != 20 {
		t.Errorf("PropSize(STRING) = %d, want 20", got)
	}
	if got := s.PropSize(Property{"x", TBool}); got != 1 {
		t.Errorf("PropSize(BOOLEAN) = %d, want 1", got)
	}
	o := New()
	o.AddConcept("A", Property{"p", TInt}, Property{"q", TString})
	s.ConceptCard["A"] = 10
	if got, want := s.ConceptSize(o, "A"), (8+20)*10; got != want {
		t.Errorf("ConceptSize = %d, want %d", got, want)
	}
}

func TestUniformAF(t *testing.T) {
	o := medFixture()
	af := UniformAF(o)
	treat := o.Relationships[0]
	if af.OfRel(treat) != 1 {
		t.Errorf("OfRel = %v, want 1", af.OfRel(treat))
	}
	if af.OfRelProp(treat, "desc") != 1 {
		t.Errorf("OfRelProp(desc) = %v, want 1", af.OfRelProp(treat, "desc"))
	}
	if af.OfConcept("Drug") != 1 {
		t.Errorf("OfConcept = %v, want 1", af.OfConcept("Drug"))
	}
	// M:N relationships expose source properties too.
	var has *Relationship
	for _, r := range o.Relationships {
		if r.Name == "has" {
			has = r
		}
	}
	if af.RelProp[has.Key()]["name"] != 1 {
		t.Error("M:N relationship should expose source concept properties")
	}
}

func TestAFAccumulation(t *testing.T) {
	o := medFixture()
	af := NewAccessFrequencies()
	treat := o.Relationships[0]
	af.AddRelProp(treat, "desc", 3)
	af.AddRelProp(treat, "desc", 2)
	af.AddConcept("Drug", 4)
	af.AddRel(treat, 1)
	if got := af.OfRelProp(treat, "desc"); got != 5 {
		t.Errorf("OfRelProp = %v, want 5", got)
	}
	if got := af.OfRel(treat); got != 6 {
		t.Errorf("OfRel = %v, want 6 (prop accesses imply rel accesses)", got)
	}
	if got := af.OfConcept("Drug"); got != 4 {
		t.Errorf("OfConcept = %v, want 4", got)
	}
}

func TestAFDefaults(t *testing.T) {
	af := NewAccessFrequencies()
	r := &Relationship{Name: "r", Src: "A", Dst: "B", Type: OneToMany}
	if af.OfRel(r) != 1 || af.OfConcept("X") != 1 || af.OfRelProp(r, "p") != 1 {
		t.Error("empty AccessFrequencies should default to 1")
	}
}

// TestCloneEquivalenceProperty checks Clone()+String() stability over
// randomized ontologies.
func TestCloneEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		o := RandomOntology(seed, 8, 12)
		return o.Clone().String() == o.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomOntologyValid(t *testing.T) {
	f := func(seed int64) bool {
		o := RandomOntology(seed, 10, 20)
		return o.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
