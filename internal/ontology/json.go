package ontology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonOntology is the on-disk representation consumed by cmd/pgsopt and
// emitted by cmd/pgsgen. It mirrors how OWL ontologies are summarized for
// the optimizer: classes with data properties, object properties with a
// cardinality type, plus isA/unionOf pseudo-relationships.
type jsonOntology struct {
	Concepts      []jsonConcept      `json:"concepts"`
	Relationships []jsonRelationship `json:"relationships"`
}

type jsonConcept struct {
	Name  string         `json:"name"`
	Props []jsonProperty `json:"properties,omitempty"`
}

type jsonProperty struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type jsonRelationship struct {
	Name string `json:"name"`
	Src  string `json:"src"`
	Dst  string `json:"dst"`
	Type string `json:"type"`
}

var relTypeNames = map[string]RelType{
	"1:1":         OneToOne,
	"1:M":         OneToMany,
	"M:N":         ManyToMany,
	"union":       Union,
	"inheritance": Inheritance,
}

var dataTypeNames = map[string]DataType{
	"STRING":  TString,
	"INT":     TInt,
	"DOUBLE":  TFloat,
	"BOOLEAN": TBool,
}

// MarshalJSON encodes the ontology in the documented JSON shape.
func (o *Ontology) MarshalJSON() ([]byte, error) {
	jo := jsonOntology{}
	for _, c := range o.Concepts {
		jc := jsonConcept{Name: c.Name}
		for _, p := range c.Props {
			jc.Props = append(jc.Props, jsonProperty{Name: p.Name, Type: p.Type.String()})
		}
		jo.Concepts = append(jo.Concepts, jc)
	}
	for _, r := range o.Relationships {
		jo.Relationships = append(jo.Relationships, jsonRelationship{
			Name: r.Name, Src: r.Src, Dst: r.Dst, Type: r.Type.String(),
		})
	}
	return json.MarshalIndent(jo, "", "  ")
}

// UnmarshalJSON decodes the documented JSON shape and validates it.
func (o *Ontology) UnmarshalJSON(data []byte) error {
	var jo jsonOntology
	if err := json.Unmarshal(data, &jo); err != nil {
		return err
	}
	*o = *New()
	for _, jc := range jo.Concepts {
		props := make([]Property, 0, len(jc.Props))
		for _, jp := range jc.Props {
			dt, ok := dataTypeNames[jp.Type]
			if !ok {
				return fmt.Errorf("ontology: unknown data type %q for %s.%s", jp.Type, jc.Name, jp.Name)
			}
			props = append(props, Property{Name: jp.Name, Type: dt})
		}
		if o.Concept(jc.Name) != nil {
			return fmt.Errorf("ontology: duplicate concept %s", jc.Name)
		}
		o.AddConcept(jc.Name, props...)
	}
	for _, jr := range jo.Relationships {
		rt, ok := relTypeNames[jr.Type]
		if !ok {
			return fmt.Errorf("ontology: unknown relationship type %q for %s", jr.Type, jr.Name)
		}
		o.AddRelationship(jr.Name, jr.Src, jr.Dst, rt)
	}
	return o.Validate()
}

// Read decodes an ontology from JSON.
func Read(r io.Reader) (*Ontology, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	o := New()
	if err := o.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return o, nil
}

// ReadFile decodes an ontology from a JSON file.
func ReadFile(path string) (*Ontology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile encodes the ontology as JSON to a file.
func (o *Ontology) WriteFile(path string) error {
	data, err := o.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
