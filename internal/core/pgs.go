package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ontology"
)

// PropType is a property declaration in a property graph schema.
type PropType struct {
	Name string
	Type ontology.DataType
	List bool
}

// NodeType is a node declaration in a property graph schema. A node type
// may carry several labels when concepts were merged (1:1 rule), in which
// case Name is the concatenation the paper uses (e.g. IndicationCondition).
type NodeType struct {
	Name   string
	Labels []string
	Props  []PropType
}

// EdgeType is an edge declaration in a property graph schema.
type EdgeType struct {
	Name string
	Src  string
	Dst  string
	Type ontology.RelType
}

// PGS is a property graph schema (Definition 2's schema counterpart),
// produced from a closed working graph.
type PGS struct {
	Nodes []*NodeType
	Edges []*EdgeType
}

// Node returns the node type containing the given label, or nil.
func (s *PGS) Node(label string) *NodeType {
	for _, n := range s.Nodes {
		for _, l := range n.Labels {
			if l == label {
				return n
			}
		}
	}
	return nil
}

// NumListProps counts LIST property declarations across all node types.
func (s *PGS) NumListProps() int {
	n := 0
	for _, nt := range s.Nodes {
		for _, p := range nt.Props {
			if p.List {
				n++
			}
		}
	}
	return n
}

// DDL renders the schema in the Cypher-flavoured data definition style the
// paper uses in Figures 4-7.
func (s *PGS) DDL() string {
	var b strings.Builder
	for _, n := range s.Nodes {
		parts := make([]string, 0, len(n.Props))
		for _, p := range n.Props {
			t := p.Type.String()
			if p.List {
				t = "LIST<" + t + ">"
			}
			name := p.Name
			if strings.ContainsAny(name, ". -") {
				name = "`" + name + "`"
			}
			parts = append(parts, name+" "+t)
		}
		fmt.Fprintf(&b, "%s (%s),\n", n.Name, strings.Join(parts, ", "))
	}
	for i, e := range s.Edges {
		fmt.Fprintf(&b, "(%s)-[%s]->(%s)", e.Src, e.Name, e.Dst)
		if i != len(s.Edges)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fingerprint returns a canonical string; two schemas are identical iff
// their fingerprints are equal (used by the Theorem 3 confluence test).
func (s *PGS) Fingerprint() string { return s.DDL() }

// GeneratePGS derives the property graph schema from the working graph,
// closing it first if necessary. Nodes dissolved by enabled rules (union
// concepts, absorbed children, fully pushed-down parents) are dropped, as
// in the paper's Figures 4-6.
func (g *Graph) GeneratePGS() *PGS {
	g.Close()
	removed := g.removedNodes()

	// Group membership (1:1 merges), ontology order.
	groups := map[string][]string{}
	for _, n := range g.order {
		root := g.find(n)
		groups[root] = append(groups[root], n)
	}

	// Suppress groups whose members are all removed; name surviving
	// groups after their alive members.
	groupName := map[string]string{} // root -> node type name ("" = suppressed)
	pgs := &PGS{}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		var alive []string
		for _, m := range groups[root] {
			if !removed[m] {
				alive = append(alive, m)
			}
		}
		if len(alive) == 0 {
			groupName[root] = ""
			continue
		}
		name := strings.Join(alive, "")
		groupName[root] = name
		nt := &NodeType{Name: name, Labels: alive}
		// Properties come from the whole merge group — a rule may have
		// landed a property on any member of a 1:1-merged group, and the
		// merged vertices carry them all regardless.
		for _, p := range g.groupProps(root) {
			nt.Props = append(nt.Props, PropType{Name: p.Name, Type: p.Type, List: p.List})
		}
		sort.Slice(nt.Props, func(i, j int) bool {
			// Scalars before lists, then by name — matching the paper's
			// DDL examples which list replicated properties last.
			if nt.Props[i].List != nt.Props[j].List {
				return !nt.Props[i].List
			}
			return nt.Props[i].Name < nt.Props[j].Name
		})
		pgs.Nodes = append(pgs.Nodes, nt)
	}
	sort.Slice(pgs.Nodes, func(i, j int) bool { return pgs.Nodes[i].Name < pgs.Nodes[j].Name })

	allEdges := g.snapshotEdges(nil)
	sortEdges(allEdges)
	seenEdges := map[string]bool{}
	for _, e := range allEdges {
		if g.edgeConsumed(e) {
			continue
		}
		src := groupName[g.find(e.Src)]
		dst := groupName[g.find(e.Dst)]
		if src == "" || dst == "" {
			continue
		}
		dk := fmt.Sprintf("%s|%s|%s|%d", src, e.Name, dst, e.Type)
		if seenEdges[dk] {
			continue
		}
		seenEdges[dk] = true
		pgs.Edges = append(pgs.Edges, &EdgeType{Name: e.Name, Src: src, Dst: dst, Type: e.Type})
	}
	sort.Slice(pgs.Edges, func(i, j int) bool {
		a, b := pgs.Edges[i], pgs.Edges[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Type < b.Type
	})
	return pgs
}

// edgeConsumed reports whether an enabled rule dissolved this edge.
func (g *Graph) edgeConsumed(e edge) bool {
	switch e.Type {
	case ontology.Union:
		return g.rules.Enabled(e.OrigKey, "", false)
	case ontology.OneToOne:
		// Only the original pair merges; copied 1:1 edges survive as
		// ordinary edges between the (possibly merged) node types.
		return g.orig[e] && g.rules.Enabled(e.OrigKey, "", false)
	case ontology.Inheritance:
		if !g.rules.Enabled(e.OrigKey, "", false) {
			return false
		}
		js := g.JS(e.OrigKey)
		return js > g.cfg.Theta1 || js < g.cfg.Theta2
	default:
		return false
	}
}

// removedNodes computes which concepts disappear from the schema:
//   - union concepts whose union rule is enabled (their members take over);
//   - children absorbed into parents (JS > θ1);
//   - parents pushed into every one of their children (all out-inheritance
//     edges enabled with JS < θ2), matching Figure 5(a) where the parent
//     node type vanishes from the schema.
func (g *Graph) removedNodes() map[string]bool {
	removed := map[string]bool{}
	ihOut := map[string][]edge{}
	allEdges := g.snapshotEdges(nil)
	sortEdges(allEdges)
	for _, e := range allEdges {
		if e.Src == e.Dst || g.sameGroup(e.Src, e.Dst) {
			continue // merge-induced self-loops carry no dissolution
		}
		switch e.Type {
		case ontology.Union:
			if g.rules.Enabled(e.OrigKey, "", false) {
				removed[e.Src] = true
			}
		case ontology.Inheritance:
			ihOut[e.Src] = append(ihOut[e.Src], e)
			if g.rules.Enabled(e.OrigKey, "", false) && g.JS(e.OrigKey) > g.cfg.Theta1 {
				removed[e.Dst] = true
			}
		}
	}
	for parent, edges := range ihOut {
		allPushed := true
		for _, e := range edges {
			if !g.rules.Enabled(e.OrigKey, "", false) || g.JS(e.OrigKey) >= g.cfg.Theta2 {
				allPushed = false
				break
			}
		}
		if allPushed && len(edges) > 0 {
			removed[parent] = true
		}
	}
	return removed
}

// Removed exposes the removed-concept set (after closing); the loader and
// rewriter use it through the Mapping.
func (g *Graph) Removed() map[string]bool {
	g.Close()
	return g.removedNodes()
}
