// Package core implements the paper's primary contribution: the
// relationship rules of §3 (union, inheritance, 1:1, 1:M, M:N), the
// unconstrained schema generation of Algorithm 5, property graph schema
// (PGS) generation with Cypher-style DDL output, and the mapping trace
// that the graph loader and query rewriter consume.
//
// Rules are implemented as a monotone closure over a working schema graph:
// every rule application only ever adds properties or edges (or merges
// nodes in a union-find), so the fixpoint is unique regardless of
// application order — which is exactly Theorem 3 of the paper, verified by
// a property-based test.
//
// The package's outputs are consumed downstream in two places: the Mapping
// drives internal/loader (instantiating data under the optimized schema)
// and internal/rewrite (translating direct-schema queries to the optimized
// one), keeping the optimizer, the storage layer, and the query engine
// agreeing on what a rule application means.
package core
