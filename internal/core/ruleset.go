package core

import (
	"fmt"
	"sort"

	"repro/internal/ontology"
)

// RuleApp identifies one selectable rule application. Union, inheritance
// and 1:1 rules are selected per relationship. 1:M and M:N rules are
// selected per (relationship, destination property) pair, and M:N
// additionally per direction (§4.2.2: "some of the original M:N
// relationships could be optimized for only one direction"), matching the
// granularity of the paper's cost-benefit model (Equations 3-5).
type RuleApp struct {
	// RelKey is the Relationship.Key() of the *original* ontology
	// relationship; edge copies made by other rules inherit it.
	RelKey string
	// Prop is the destination property being replicated (1:M and M:N
	// rules only). The wildcard "*" enables every property, including
	// ones copied into the destination by other rules — this is what
	// Algorithm 5 (no space constraint) uses.
	Prop string
	// Reverse selects the dst→src direction of an M:N relationship.
	Reverse bool
}

// String renders the rule application compactly.
func (a RuleApp) String() string {
	s := a.RelKey
	if a.Prop != "" {
		s += " prop=" + a.Prop
	}
	if a.Reverse {
		s += " (reverse)"
	}
	return s
}

// RuleSet is the set of enabled rule applications. The empty set produces
// the direct-mapping schema (DIR); AllRules produces the paper's
// unconstrained NSC schema.
type RuleSet struct {
	apps map[RuleApp]bool
}

// NewRuleSet returns an empty rule set (the direct mapping).
func NewRuleSet() *RuleSet {
	return &RuleSet{apps: map[RuleApp]bool{}}
}

// AllRules enables every rule on every relationship of the ontology with
// wildcard property selection — the input to Algorithm 5.
func AllRules(o *ontology.Ontology) *RuleSet {
	rs := NewRuleSet()
	allowed := MergeableRels(o)
	for _, r := range o.Relationships {
		switch r.Type {
		case ontology.Union, ontology.Inheritance, ontology.OneToOne:
			if allowed[r.Key()] {
				rs.Add(RuleApp{RelKey: r.Key()})
			}
		case ontology.OneToMany:
			rs.Add(RuleApp{RelKey: r.Key(), Prop: "*"})
		case ontology.ManyToMany:
			rs.Add(RuleApp{RelKey: r.Key(), Prop: "*"})
			rs.Add(RuleApp{RelKey: r.Key(), Prop: "*", Reverse: true})
		}
	}
	return rs
}

// MergeableRels resolves merge conflicts: the merge-producing
// relationships (union, inheritance, 1:1) that may fire form a spanning
// forest over the concepts. If the merge relationships contained a cycle
// (including two merge relationships between the same pair), two distinct
// instances of one concept could be fused into a single vertex — their
// same-named properties would collide, and label-based query rewriting
// would match vertices merged by an unrelated rule. With an acyclic merge
// graph, every merged vertex carries at most one instance per concept.
//
// Relationships enter the forest in priority order — union > inheritance
// > 1:1, ties broken by key — so the choice is deterministic and derived
// from the ontology alone; every algorithm (NSC, CC, RC) sees the same
// candidate set.
func MergeableRels(o *ontology.Ontology) map[string]bool {
	priority := func(t ontology.RelType) int {
		switch t {
		case ontology.Union:
			return 3
		case ontology.Inheritance:
			return 2
		case ontology.OneToOne:
			return 1
		default:
			return 0
		}
	}
	var cands []*ontology.Relationship
	for _, r := range o.Relationships {
		if priority(r.Type) > 0 {
			cands = append(cands, r)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		pi, pj := priority(cands[i].Type), priority(cands[j].Type)
		if pi != pj {
			return pi > pj
		}
		return cands[i].Key() < cands[j].Key()
	})
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	allowed := map[string]bool{}
	for _, r := range cands {
		ra, rb := find(r.Src), find(r.Dst)
		if ra == rb {
			continue // would close a merge cycle
		}
		parent[ra] = rb
		allowed[r.Key()] = true
	}
	return allowed
}

// Add enables a rule application.
func (rs *RuleSet) Add(a RuleApp) { rs.apps[a] = true }

// Len returns the number of enabled applications.
func (rs *RuleSet) Len() int { return len(rs.apps) }

// Has reports whether the exact application is enabled.
func (rs *RuleSet) Has(a RuleApp) bool { return rs.apps[a] }

// Enabled reports whether a rule application may fire, honouring property
// wildcards for replication rules.
func (rs *RuleSet) Enabled(relKey, prop string, reverse bool) bool {
	if rs.apps[RuleApp{RelKey: relKey, Prop: prop, Reverse: reverse}] {
		return true
	}
	if prop != "" && rs.apps[RuleApp{RelKey: relKey, Prop: "*", Reverse: reverse}] {
		return true
	}
	return false
}

// Apps returns the enabled applications in deterministic order.
func (rs *RuleSet) Apps() []RuleApp {
	out := make([]RuleApp, 0, len(rs.apps))
	for a := range rs.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RelKey != out[j].RelKey {
			return out[i].RelKey < out[j].RelKey
		}
		if out[i].Prop != out[j].Prop {
			return out[i].Prop < out[j].Prop
		}
		return !out[i].Reverse && out[j].Reverse
	})
	return out
}

// EnumerateApps lists every selectable rule application for the ontology
// at cost-model granularity: one per union/inheritance/1:1 relationship,
// one per (1:M relationship, original destination property), and one per
// (M:N relationship, property, direction). This is the item universe for
// the relation-centric algorithm's knapsack.
func EnumerateApps(o *ontology.Ontology) []RuleApp {
	var apps []RuleApp
	allowed := MergeableRels(o)
	for _, r := range o.Relationships {
		switch r.Type {
		case ontology.Union, ontology.Inheritance, ontology.OneToOne:
			if !allowed[r.Key()] {
				continue
			}
			apps = append(apps, RuleApp{RelKey: r.Key()})
		case ontology.OneToMany:
			dst := o.Concept(r.Dst)
			if dst == nil {
				continue
			}
			for _, p := range dst.Props {
				apps = append(apps, RuleApp{RelKey: r.Key(), Prop: p.Name})
			}
		case ontology.ManyToMany:
			dst, src := o.Concept(r.Dst), o.Concept(r.Src)
			if dst != nil {
				for _, p := range dst.Props {
					apps = append(apps, RuleApp{RelKey: r.Key(), Prop: p.Name})
				}
			}
			if src != nil {
				for _, p := range src.Props {
					apps = append(apps, RuleApp{RelKey: r.Key(), Prop: p.Name, Reverse: true})
				}
			}
		}
	}
	return apps
}

// Jaccard computes JS(ci.Pi, cj.Pj) (Equation 1) over the property names
// of the two concepts in the original ontology. When both concepts have no
// properties the similarity is defined as 1 (identical property sets).
func Jaccard(a, b *ontology.Concept) float64 {
	set := map[string]bool{}
	for _, p := range a.Props {
		set[p.Name] = true
	}
	inter := 0
	union := len(set)
	for _, p := range b.Props {
		if set[p.Name] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardScores precomputes the similarity of every inheritance
// relationship, keyed by Relationship.Key(). Per §3, scores are computed
// on the given ontology before any rules are applied and never change.
func JaccardScores(o *ontology.Ontology) (map[string]float64, error) {
	js := map[string]float64{}
	for _, r := range o.Relationships {
		if r.Type != ontology.Inheritance {
			continue
		}
		p, c := o.Concept(r.Src), o.Concept(r.Dst)
		if p == nil || c == nil {
			return nil, fmt.Errorf("core: inheritance %s references missing concept", r.Key())
		}
		js[r.Key()] = Jaccard(p, c)
	}
	return js, nil
}
