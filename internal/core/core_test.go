package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ontology"
)

// medFixture reproduces the paper's Figure 2 medical ontology snippet.
func medFixture() *ontology.Ontology {
	o := ontology.New()
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	o.AddConcept("Drug", str("name"), str("brand"))
	o.AddConcept("Indication", str("desc"))
	o.AddConcept("Condition", str("cname"))
	o.AddConcept("Risk")
	o.AddConcept("ContraIndication", str("cidesc"))
	o.AddConcept("BlackBoxWarning", str("note"), str("route"))
	o.AddConcept("DrugInteraction", str("summary"))
	o.AddConcept("DrugFoodInteraction", str("risk"))
	o.AddConcept("DrugLabInteraction", str("mechanism"))

	o.AddRelationship("treat", "Drug", "Indication", ontology.OneToMany)
	o.AddRelationship("is", "Indication", "Condition", ontology.OneToOne)
	o.AddRelationship("cause", "Drug", "Risk", ontology.OneToMany)
	o.AddRelationship("unionOf", "Risk", "ContraIndication", ontology.Union)
	o.AddRelationship("unionOf", "Risk", "BlackBoxWarning", ontology.Union)
	o.AddRelationship("has", "Drug", "DrugInteraction", ontology.ManyToMany)
	o.AddRelationship("isA", "DrugInteraction", "DrugFoodInteraction", ontology.Inheritance)
	o.AddRelationship("isA", "DrugInteraction", "DrugLabInteraction", ontology.Inheritance)
	return o
}

func onlyRule(t *testing.T, o *ontology.Ontology, apps ...RuleApp) *Result {
	t.Helper()
	rs := NewRuleSet()
	for _, a := range apps {
		rs.Add(a)
	}
	res, err := Optimize(o, rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDirectMappingKeepsEverything(t *testing.T) {
	o := medFixture()
	res, err := Direct(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.PGS.Nodes), len(o.Concepts); got != want {
		t.Errorf("DIR has %d node types, want %d", got, want)
	}
	if got, want := len(res.PGS.Edges), len(o.Relationships); got != want {
		t.Errorf("DIR has %d edge types, want %d", got, want)
	}
	if len(res.Mapping.Merges) != 0 || len(res.Mapping.ListProps) != 0 {
		t.Errorf("DIR mapping not empty: %+v", res.Mapping)
	}
}

// TestUnionRuleFigure4 checks the paper's Figure 4: after the union rule,
// Risk disappears and Drug causes ContraIndication/BlackBoxWarning
// directly.
func TestUnionRuleFigure4(t *testing.T) {
	o := medFixture()
	res := onlyRule(t, o,
		RuleApp{RelKey: "Risk-[unionOf]->ContraIndication"},
		RuleApp{RelKey: "Risk-[unionOf]->BlackBoxWarning"},
	)
	ddl := res.PGS.DDL()
	if res.PGS.Node("Risk") != nil {
		t.Errorf("Risk still present:\n%s", ddl)
	}
	for _, want := range []string{
		"(Drug)-[cause]->(ContraIndication)",
		"(Drug)-[cause]->(BlackBoxWarning)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
	if strings.Contains(ddl, "unionOf") {
		t.Errorf("unionOf edge survived:\n%s", ddl)
	}
	if len(res.Mapping.Merges) != 2 || res.Mapping.Merges[0].Kind != MergeUnion {
		t.Errorf("mapping merges = %+v", res.Mapping.Merges)
	}
}

// TestUnionRuleDisabledKeepsRisk: without the rule the union node stays.
func TestUnionRuleDisabledKeepsRisk(t *testing.T) {
	o := medFixture()
	res := onlyRule(t, o) // nothing enabled
	if res.PGS.Node("Risk") == nil {
		t.Error("Risk dropped although union rule disabled")
	}
	if !strings.Contains(res.PGS.DDL(), "unionOf") {
		t.Error("unionOf edge missing in DIR schema")
	}
}

// TestInheritancePushDownFigure5a: JS(parent, child) = 0 < θ2, so the
// parent's property (summary) moves to both children and the parent node
// type vanishes (Figure 5(a)).
func TestInheritancePushDownFigure5a(t *testing.T) {
	o := medFixture()
	res := onlyRule(t, o,
		RuleApp{RelKey: "DrugInteraction-[isA]->DrugFoodInteraction"},
		RuleApp{RelKey: "DrugInteraction-[isA]->DrugLabInteraction"},
	)
	ddl := res.PGS.DDL()
	if res.PGS.Node("DrugInteraction") != nil {
		t.Errorf("parent still present:\n%s", ddl)
	}
	dfi := res.PGS.Node("DrugFoodInteraction")
	if dfi == nil {
		t.Fatal("DrugFoodInteraction missing")
	}
	found := false
	for _, p := range dfi.Props {
		if p.Name == "summary" && !p.List {
			found = true
		}
	}
	if !found {
		t.Errorf("summary not pushed to child: %+v", dfi.Props)
	}
	for _, want := range []string{
		"(Drug)-[has]->(DrugFoodInteraction)",
		"(Drug)-[has]->(DrugLabInteraction)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
	for _, mg := range res.Mapping.Merges {
		if mg.Kind != MergeParentIntoChild {
			t.Errorf("merge kind = %v", mg.Kind)
		}
	}
}

// TestInheritanceMergeUpFigure5c: when the child shares most properties
// with the parent (JS > θ1) the child merges into the parent (Figure 5(c)).
func TestInheritanceMergeUpFigure5c(t *testing.T) {
	o := ontology.New()
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	o.AddConcept("Parent", str("a"), str("b"), str("c"))
	o.AddConcept("Child", str("a"), str("b"), str("c"), str("d"))
	o.AddConcept("Other")
	o.AddRelationship("isA", "Parent", "Child", ontology.Inheritance)
	o.AddRelationship("rel", "Child", "Other", ontology.OneToMany)

	res := onlyRule(t, o, RuleApp{RelKey: "Parent-[isA]->Child"})
	if res.PGS.Node("Child") != nil {
		t.Errorf("child still present:\n%s", res.PGS.DDL())
	}
	parent := res.PGS.Node("Parent")
	if parent == nil {
		t.Fatal("parent missing")
	}
	hasD := false
	for _, p := range parent.Props {
		if p.Name == "d" {
			hasD = true
		}
	}
	if !hasD {
		t.Errorf("child property d not absorbed: %+v", parent.Props)
	}
	if !strings.Contains(res.PGS.DDL(), "(Parent)-[rel]->(Other)") {
		t.Errorf("child relationship not moved to parent:\n%s", res.PGS.DDL())
	}
	if res.Mapping.Merges[0].Kind != MergeChildIntoParent {
		t.Errorf("merge kind = %v", res.Mapping.Merges[0].Kind)
	}
}

// TestInheritanceMiddleBandKeepsIsA: θ2 ≤ JS ≤ θ1 keeps the isA edge
// (the paper's option 3).
func TestInheritanceMiddleBandKeepsIsA(t *testing.T) {
	o := ontology.New()
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	o.AddConcept("P", str("a"), str("b"))
	o.AddConcept("C", str("a"), str("c"))
	o.AddRelationship("isA", "P", "C", ontology.Inheritance)
	// JS = 1/3 ≈ 0.33; with θ1=0.66, θ2=0.33 this is the middle band.
	res := onlyRule(t, o, RuleApp{RelKey: "P-[isA]->C"})
	if res.PGS.Node("P") == nil || res.PGS.Node("C") == nil {
		t.Fatalf("nodes dropped:\n%s", res.PGS.DDL())
	}
	if !strings.Contains(res.PGS.DDL(), "(P)-[isA]->(C)") {
		t.Errorf("isA edge missing:\n%s", res.PGS.DDL())
	}
	if len(res.Mapping.Merges) != 0 {
		t.Errorf("middle band produced merges: %+v", res.Mapping.Merges)
	}
}

// TestParentKeptWhenOneChildNotPushed: a parent with one pushed child and
// one middle-band child must survive.
func TestParentKeptWhenOneChildNotPushed(t *testing.T) {
	o := ontology.New()
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	o.AddConcept("P", str("a"), str("b"))
	o.AddConcept("C1", str("x"))           // JS = 0 -> pushed
	o.AddConcept("C2", str("a"), str("c")) // JS = 1/3 -> middle band
	o.AddRelationship("isA", "P", "C1", ontology.Inheritance)
	o.AddRelationship("isA", "P", "C2", ontology.Inheritance)
	res := onlyRule(t, o,
		RuleApp{RelKey: "P-[isA]->C1"},
		RuleApp{RelKey: "P-[isA]->C2"},
	)
	if res.PGS.Node("P") == nil {
		t.Errorf("parent dropped despite middle-band child:\n%s", res.PGS.DDL())
	}
}

// TestOneToOneRuleFigure6: Indication and Condition merge into a single
// IndicationCondition node type.
func TestOneToOneRuleFigure6(t *testing.T) {
	o := medFixture()
	res := onlyRule(t, o, RuleApp{RelKey: "Indication-[is]->Condition"})
	ddl := res.PGS.DDL()
	merged := res.PGS.Node("Indication")
	if merged == nil || merged.Name != "IndicationCondition" {
		t.Fatalf("merged node wrong: %+v\n%s", merged, ddl)
	}
	if res.PGS.Node("Condition") != merged {
		t.Error("Condition label not on merged node")
	}
	names := map[string]bool{}
	for _, p := range merged.Props {
		names[p.Name] = true
	}
	if !names["desc"] || !names["cname"] {
		t.Errorf("merged props = %v", names)
	}
	if !strings.Contains(ddl, "(Drug)-[treat]->(IndicationCondition)") {
		t.Errorf("treat edge not redirected:\n%s", ddl)
	}
	if strings.Contains(ddl, "[is]") {
		t.Errorf("1:1 edge survived:\n%s", ddl)
	}
}

// TestOneToManyRuleFigure7: Drug gains Indication.desc LIST.
func TestOneToManyRuleFigure7(t *testing.T) {
	o := medFixture()
	res := onlyRule(t, o, RuleApp{RelKey: "Drug-[treat]->Indication", Prop: "desc"})
	drug := res.PGS.Node("Drug")
	found := false
	for _, p := range drug.Props {
		if p.Name == "Indication.desc" && p.List {
			found = true
		}
	}
	if !found {
		t.Errorf("Indication.desc LIST missing: %+v", drug.Props)
	}
	// Paper keeps the treat edge (Figure 7(a)).
	if !strings.Contains(res.PGS.DDL(), "(Drug)-[treat]->(Indication)") {
		t.Errorf("treat edge dropped:\n%s", res.PGS.DDL())
	}
	if len(res.Mapping.ListProps) != 1 || res.Mapping.ListProps[0].Key != "Indication.desc" {
		t.Errorf("mapping list props = %+v", res.Mapping.ListProps)
	}
	if !res.Mapping.ListProps[0].Unambiguous {
		t.Error("single relationship pair should be unambiguous")
	}
}

// TestManyToManyBothDirections: M:N replicates in both directions when
// both direction apps are enabled.
func TestManyToManyBothDirections(t *testing.T) {
	o := medFixture()
	res := onlyRule(t, o,
		RuleApp{RelKey: "Drug-[has]->DrugInteraction", Prop: "*"},
		RuleApp{RelKey: "Drug-[has]->DrugInteraction", Prop: "*", Reverse: true},
	)
	drug := res.PGS.Node("Drug")
	di := res.PGS.Node("DrugInteraction")
	hasFwd, hasRev := false, false
	for _, p := range drug.Props {
		if p.Name == "DrugInteraction.summary" && p.List {
			hasFwd = true
		}
	}
	for _, p := range di.Props {
		if (p.Name == "Drug.name" || p.Name == "Drug.brand") && p.List {
			hasRev = true
		}
	}
	if !hasFwd || !hasRev {
		t.Errorf("M:N replication fwd=%v rev=%v\n%s", hasFwd, hasRev, res.PGS.DDL())
	}
}

// TestNSCAppliesEverything: the unconstrained schema dissolves Risk, the
// interaction hierarchy, and the 1:1 pair, and replicates 1:M properties.
func TestNSCAppliesEverything(t *testing.T) {
	o := medFixture()
	res, err := NSC(o, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ddl := res.PGS.DDL()
	for _, gone := range []string{"Risk (", "DrugInteraction ("} {
		if strings.Contains(ddl, gone) {
			t.Errorf("NSC kept %q:\n%s", gone, ddl)
		}
	}
	if res.PGS.Node("Indication").Name != "IndicationCondition" {
		t.Errorf("1:1 not merged:\n%s", ddl)
	}
	drug := res.PGS.Node("Drug")
	wantLists := map[string]bool{"Indication.desc": false, "Indication.cname": false}
	for _, p := range drug.Props {
		if p.List {
			if _, ok := wantLists[p.Name]; ok {
				wantLists[p.Name] = true
			}
		}
	}
	for name, got := range wantLists {
		if !got {
			t.Errorf("NSC Drug missing list prop %s:\n%s", name, ddl)
		}
	}
}

// TestTheorem3Confluence: applying rules in random orders produces an
// identical schema. This is the paper's Theorem 3.
func TestTheorem3Confluence(t *testing.T) {
	f := func(ontSeed int64, orderSeed1, orderSeed2 int64) bool {
		o := ontology.RandomOntology(ontSeed, 8, 16)
		cfg := DefaultConfig()
		r1, err := Optimize(o, AllRules(o), cfg.WithIterationSeed(orderSeed1|1))
		if err != nil {
			return false
		}
		r2, err := Optimize(o, AllRules(o), cfg.WithIterationSeed(orderSeed2|1))
		if err != nil {
			return false
		}
		return r1.PGS.Fingerprint() == r2.PGS.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConfluenceSubsets: Theorem 3 extends to arbitrary enabled subsets
// (the constrained algorithms rely on this).
func TestConfluenceSubsets(t *testing.T) {
	f := func(ontSeed int64, pick uint16, s1, s2 int64) bool {
		o := ontology.RandomOntology(ontSeed, 8, 14)
		all := EnumerateApps(o)
		rs := NewRuleSet()
		for i, a := range all {
			if pick&(1<<(i%16)) != 0 {
				rs.Add(a)
			}
		}
		cfg := DefaultConfig()
		r1, err := Optimize(o, rs, cfg.WithIterationSeed(s1|1))
		if err != nil {
			return false
		}
		r2, err := Optimize(o, rs, cfg.WithIterationSeed(s2|1))
		if err != nil {
			return false
		}
		return r1.PGS.Fingerprint() == r2.PGS.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	a := &ontology.Concept{Name: "A", Props: []ontology.Property{str("x"), str("y")}}
	b := &ontology.Concept{Name: "B", Props: []ontology.Property{str("y"), str("z")}}
	if got := Jaccard(a, b); got != 1.0/3 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	empty := &ontology.Concept{Name: "E"}
	if got := Jaccard(empty, empty); got != 1 {
		t.Errorf("Jaccard(empty, empty) = %v, want 1", got)
	}
	if got := Jaccard(a, empty); got != 0 {
		t.Errorf("Jaccard(a, empty) = %v, want 0", got)
	}
}

func TestEnumerateApps(t *testing.T) {
	o := medFixture()
	apps := EnumerateApps(o)
	// 2 union + 2 inheritance + 1 1:1 + 1 1:M (treat/desc; cause's dst
	// Risk has no props) + M:N has: 1 forward (summary) + 2 reverse
	// (name, brand) = 9.
	if len(apps) != 9 {
		t.Errorf("EnumerateApps = %d apps: %v", len(apps), apps)
	}
}

func TestRuleSetWildcard(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(RuleApp{RelKey: "k", Prop: "*"})
	if !rs.Enabled("k", "anything", false) {
		t.Error("wildcard did not match")
	}
	if rs.Enabled("k", "anything", true) {
		t.Error("wildcard matched wrong direction")
	}
	if rs.Enabled("other", "p", false) {
		t.Error("unrelated key matched")
	}
	rs.Add(RuleApp{RelKey: "k2", Prop: "p", Reverse: true})
	if !rs.Enabled("k2", "p", true) || rs.Enabled("k2", "p", false) {
		t.Error("exact app direction handling wrong")
	}
}

func TestAppsDeterministicOrder(t *testing.T) {
	o := medFixture()
	rs := AllRules(o)
	a1 := rs.Apps()
	a2 := rs.Apps()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("Apps() order unstable at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

// TestUnionDistributesInheritance reproduces the appendix Figure 13(b)
// case: a concept that is both a union concept and a child. The members
// must end up connected to the parent's neighbors.
func TestUnionDistributesInheritance(t *testing.T) {
	o := ontology.New()
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	o.AddConcept("C1")                      // union concept, child of C5
	o.AddConcept("C2", str("p2"))           // member
	o.AddConcept("C3", str("p3"))           // member
	o.AddConcept("C4")                      // neighbor of C5
	o.AddConcept("C5", str("p5"), str("q")) // parent, JS(C5,C1)=0 < θ2
	o.AddRelationship("unionOf", "C1", "C2", ontology.Union)
	o.AddRelationship("unionOf", "C1", "C3", ontology.Union)
	o.AddRelationship("isA", "C5", "C1", ontology.Inheritance)
	o.AddRelationship("r", "C5", "C4", ontology.OneToMany)

	res, err := NSC(o, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ddl := res.PGS.DDL()
	// C1 (union) and C5 (fully pushed parent) disappear; members connect
	// to C4 through copies of r and carry C5's properties.
	if res.PGS.Node("C1") != nil || res.PGS.Node("C5") != nil {
		t.Errorf("C1/C5 should be dissolved:\n%s", ddl)
	}
	for _, want := range []string{"(C2)-[r]->(C4)", "(C3)-[r]->(C4)"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("missing %q:\n%s", want, ddl)
		}
	}
	c2 := res.PGS.Node("C2")
	hasP5 := false
	for _, p := range c2.Props {
		if p.Name == "p5" {
			hasP5 = true
		}
	}
	if !hasP5 {
		t.Errorf("member did not inherit parent props: %+v", c2.Props)
	}
}
