package core

import "repro/internal/ontology"

// Result bundles everything schema generation produces: the property graph
// schema, the instance-level mapping for the loader and rewriter, and the
// rule set that was applied.
type Result struct {
	PGS     *PGS
	Mapping *Mapping
	Rules   *RuleSet
}

// Optimize applies the enabled rule set to the ontology and generates the
// schema and mapping. It is the shared engine behind Algorithm 5 and the
// space-constrained algorithms of §4.
func Optimize(o *ontology.Ontology, rules *RuleSet, cfg Config) (*Result, error) {
	g, err := NewGraph(o, rules, cfg)
	if err != nil {
		return nil, err
	}
	g.Close()
	return &Result{PGS: g.GeneratePGS(), Mapping: g.BuildMapping(), Rules: rules}, nil
}

// NSC implements Algorithm 5: apply every rule exhaustively with no space
// constraint. By Theorem 3 the result is unique.
func NSC(o *ontology.Ontology, cfg Config) (*Result, error) {
	return Optimize(o, AllRules(o), cfg)
}

// Direct produces the baseline direct-mapping schema (DIR in the paper's
// evaluation): every concept becomes a node type, every relationship an
// edge type, and no rule is applied.
func Direct(o *ontology.Ontology) (*Result, error) {
	return Optimize(o, NewRuleSet(), DefaultConfig())
}
