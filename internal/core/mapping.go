package core

import (
	"sort"

	"repro/internal/ontology"
)

// MergeKind enumerates the instance-level merges an optimized schema
// implies.
type MergeKind int

const (
	// MergeUnion merges each union-facet vertex into its member vertex.
	MergeUnion MergeKind = iota
	// MergeChildIntoParent merges each child vertex into its parent-facet
	// vertex (JS > θ1).
	MergeChildIntoParent
	// MergeParentIntoChild merges each parent-facet vertex into its child
	// vertex (JS < θ2).
	MergeParentIntoChild
	// MergeOneToOne merges the paired vertices of a 1:1 relationship.
	MergeOneToOne
)

// String names the merge kind.
func (k MergeKind) String() string {
	switch k {
	case MergeUnion:
		return "union"
	case MergeChildIntoParent:
		return "child->parent"
	case MergeParentIntoChild:
		return "parent->child"
	case MergeOneToOne:
		return "1:1"
	default:
		return "unknown"
	}
}

// Merge records that the DIR graph's instance edge for a relationship is
// collapsed in the OPT graph: the two endpoint vertices become one vertex
// carrying both labels.
type Merge struct {
	Kind MergeKind
	// RelKey is the original ontology relationship.
	RelKey string
	// EdgeName is the instance edge label in the DIR graph ("unionOf",
	// "isA", or the 1:1 relationship name).
	EdgeName string
	// From and To are the DIR instance edge's endpoint concepts in edge
	// direction: member→union for unions, child→parent for inheritance,
	// src→dst for 1:1.
	From, To string
}

// ListProp records that a destination property is replicated onto source
// vertices as a LIST property (1:M rule, and M:N in either direction).
type ListProp struct {
	RelKey   string
	EdgeName string
	// Carrier is the concept whose vertices carry the list property.
	Carrier string
	// Neighbor is the concept whose property is replicated.
	Neighbor string
	// Prop is the neighbor property name; Key is the list property name
	// on carrier vertices ("Neighbor.Prop", Figure 7).
	Prop string
	Key  string
	// Reverse is true for the dst→src direction of an M:N relationship.
	Reverse bool
	// Unambiguous is true when the carrier/neighbor concept pair is
	// connected by exactly one ontology relationship, which is what lets
	// the rewriter replace a traversal+aggregate with the local list.
	Unambiguous bool
}

// Mapping is the schema transformation trace: everything the loader needs
// to instantiate a property graph for the optimized schema, and everything
// the rewriter needs to translate DIR queries into OPT queries.
type Mapping struct {
	Config    Config
	Merges    []Merge
	ListProps []ListProp
	// Removed lists concepts without an own node type in the optimized
	// schema (union concepts, absorbed children, fully pushed parents).
	Removed map[string]bool
	// JS records the Jaccard similarity per inheritance relationship key.
	JS map[string]float64
}

// BuildMapping derives the mapping from the closed working graph. Only
// original ontology relationships appear (edge copies created during the
// closure are schema-level artifacts; at instance level the copied edges
// materialize automatically once vertices are merged).
func (g *Graph) BuildMapping() *Mapping {
	g.Close()
	m := &Mapping{
		Config:  g.cfg,
		Removed: g.removedNodes(),
		JS:      map[string]float64{},
	}
	for k, v := range g.js {
		m.JS[k] = v
	}
	relCount := map[[2]string]int{}
	for _, r := range g.o.Relationships {
		a, b := r.Src, r.Dst
		if b < a {
			a, b = b, a
		}
		relCount[[2]string{a, b}]++
	}
	unambiguous := func(x, y string) bool {
		if y < x {
			x, y = y, x
		}
		return relCount[[2]string{x, y}] == 1
	}
	for _, r := range g.o.Relationships {
		switch r.Type {
		case ontology.Union:
			if g.rules.Enabled(r.Key(), "", false) {
				m.Merges = append(m.Merges, Merge{
					Kind: MergeUnion, RelKey: r.Key(), EdgeName: r.Name,
					From: r.Dst, To: r.Src, // member -> union facet
				})
			}
		case ontology.Inheritance:
			if !g.rules.Enabled(r.Key(), "", false) {
				continue
			}
			js := g.js[r.Key()]
			switch {
			case js > g.cfg.Theta1:
				m.Merges = append(m.Merges, Merge{
					Kind: MergeChildIntoParent, RelKey: r.Key(), EdgeName: r.Name,
					From: r.Dst, To: r.Src, // child -> parent facet
				})
			case js < g.cfg.Theta2:
				m.Merges = append(m.Merges, Merge{
					Kind: MergeParentIntoChild, RelKey: r.Key(), EdgeName: r.Name,
					From: r.Dst, To: r.Src,
				})
			}
		case ontology.OneToOne:
			if g.rules.Enabled(r.Key(), "", false) {
				m.Merges = append(m.Merges, Merge{
					Kind: MergeOneToOne, RelKey: r.Key(), EdgeName: r.Name,
					From: r.Src, To: r.Dst,
				})
			}
		case ontology.OneToMany, ontology.ManyToMany:
			dst := g.o.Concept(r.Dst)
			if dst != nil {
				for _, p := range dst.Props {
					if g.rules.Enabled(r.Key(), p.Name, false) {
						m.ListProps = append(m.ListProps, ListProp{
							RelKey: r.Key(), EdgeName: r.Name,
							Carrier: r.Src, Neighbor: r.Dst,
							Prop: p.Name, Key: r.Dst + "." + p.Name,
							Unambiguous: unambiguous(r.Src, r.Dst),
						})
					}
				}
			}
			if r.Type != ontology.ManyToMany {
				continue
			}
			src := g.o.Concept(r.Src)
			if src != nil {
				for _, p := range src.Props {
					if g.rules.Enabled(r.Key(), p.Name, true) {
						m.ListProps = append(m.ListProps, ListProp{
							RelKey: r.Key(), EdgeName: r.Name,
							Carrier: r.Dst, Neighbor: r.Src,
							Prop: p.Name, Key: r.Src + "." + p.Name,
							Reverse:     true,
							Unambiguous: unambiguous(r.Src, r.Dst),
						})
					}
				}
			}
		}
	}
	sort.Slice(m.Merges, func(i, j int) bool {
		if m.Merges[i].RelKey != m.Merges[j].RelKey {
			return m.Merges[i].RelKey < m.Merges[j].RelKey
		}
		return m.Merges[i].Kind < m.Merges[j].Kind
	})
	sort.Slice(m.ListProps, func(i, j int) bool {
		a, b := m.ListProps[i], m.ListProps[j]
		if a.RelKey != b.RelKey {
			return a.RelKey < b.RelKey
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return !a.Reverse && b.Reverse
	})
	m.markColocatedListProps()
	return m
}

// markColocatedListProps demotes replication entries whose list property
// name collides on vertices that the enabled merges can fuse: if carriers
// A and B are merge-connected and both carry a list named "X.p" coming
// from different relationships, a merged vertex holds only one of the two
// value lists, so the rewriter must keep the traversal for both.
func (m *Mapping) markColocatedListProps() {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for _, mg := range m.Merges {
		a, b := find(mg.From), find(mg.To)
		if a != b {
			parent[a] = b
		}
	}
	byKey := map[string][]int{}
	for i := range m.ListProps {
		byKey[m.ListProps[i].Key] = append(byKey[m.ListProps[i].Key], i)
	}
	for _, idxs := range byKey {
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				a, b := &m.ListProps[idxs[i]], &m.ListProps[idxs[j]]
				if a.RelKey == b.RelKey && a.Reverse == b.Reverse {
					continue
				}
				if find(a.Carrier) == find(b.Carrier) {
					a.Unambiguous = false
					b.Unambiguous = false
				}
			}
		}
	}
}

// MergeFor returns the merge that collapses the instance edge between the
// two concepts with the given edge label, or nil.
func (m *Mapping) MergeFor(fromConcept, toConcept, edgeName string) *Merge {
	for i := range m.Merges {
		mg := &m.Merges[i]
		if mg.EdgeName != edgeName {
			continue
		}
		if mg.From == fromConcept && mg.To == toConcept {
			return mg
		}
	}
	return nil
}

// ListPropFor returns the replication entry whose carrier/neighbor pair
// and edge label match, or nil.
func (m *Mapping) ListPropFor(carrier, neighbor, edgeName, prop string) *ListProp {
	for i := range m.ListProps {
		lp := &m.ListProps[i]
		if lp.Carrier == carrier && lp.Neighbor == neighbor && lp.Prop == prop &&
			(edgeName == "" || lp.EdgeName == edgeName) {
			return lp
		}
	}
	return nil
}
