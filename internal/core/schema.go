package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ontology"
)

// Config holds the optimizer thresholds of §3. The paper's default setting
// (used throughout §5.3) is θ1 = 0.66, θ2 = 0.33.
type Config struct {
	Theta1 float64 // child merges into parent when JS > Theta1
	Theta2 float64 // parent pushes into child when JS < Theta2
	// iterationSeed, when non-zero, shuffles the closure's edge visit
	// order. Only tests use it, to exercise Theorem 3.
	iterationSeed int64
}

// DefaultConfig returns the paper's default thresholds.
func DefaultConfig() Config {
	return Config{Theta1: 0.66, Theta2: 0.33}
}

// WithIterationSeed returns a copy of the config that randomizes rule
// application order with the given seed; the produced schema must be
// identical for every seed (Theorem 3).
func (c Config) WithIterationSeed(seed int64) Config {
	c.iterationSeed = seed
	return c
}

// memoKey identifies one rule application site for version memoization.
type memoKey struct {
	e   edge
	rev bool
}

// prop is a property schema on a working-graph node group.
type prop struct {
	Name string
	Type ontology.DataType
	List bool
}

// edge is a working-graph edge, used directly as a map key. Copies made
// by rules keep the OrigKey of the ontology relationship they descend
// from, so selection (RuleSet) and statistics always resolve against the
// original ontology.
type edge struct {
	Name    string
	Src     string
	Dst     string
	Type    ontology.RelType
	OrigKey string
}

// Graph is the mutable working schema graph that the relationship rules
// transform. Build one with NewGraph, run Close, then GeneratePGS /
// BuildMapping.
//
// The rules are implemented as a monotone closure: every action only adds
// properties or edges, or merges nodes in a union-find, and every guard
// that can suppress an action depends only on immutable edge facts. The
// fixpoint is therefore unique regardless of iteration order — which is
// the paper's Theorem 3, checked by a property-based test.
type Graph struct {
	o     *ontology.Ontology
	cfg   Config
	rules *RuleSet
	js    map[string]float64

	order []string // original concept order, for deterministic output

	edges map[edge]bool
	bySrc map[string][]edge // incidence indexes by original endpoint name
	byDst map[string][]edge

	uf      map[string]string          // 1:1 union-find (parent pointers)
	members map[string][]string        // UF root -> member concept names
	props   map[string]map[string]prop // UF root -> property name -> prop
	// Cached sorted views of props, invalidated on writes; the closure
	// reads group properties once per edge per pass, so recomputing them
	// dominates runtime without the cache.
	sortedCache map[string][]prop // all props, sorted by name
	scalarCache map[string][]prop // non-list props, sorted by name

	orig   map[edge]bool // edges present in the original ontology
	passes int

	// version counts changes (props, incident edges, merges) per group
	// root; rule applications memoize the versions they last ran against
	// and skip re-execution when neither side changed.
	version map[string]int
	memo    map[memoKey][2]int

	closed bool
}

// NewGraph initializes the working graph from the ontology with the given
// enabled rule set.
func NewGraph(o *ontology.Ontology, rules *RuleSet, cfg Config) (*Graph, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	js, err := JaccardScores(o)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		o:           o,
		cfg:         cfg,
		rules:       rules,
		js:          js,
		edges:       map[edge]bool{},
		bySrc:       map[string][]edge{},
		byDst:       map[string][]edge{},
		uf:          map[string]string{},
		members:     map[string][]string{},
		props:       map[string]map[string]prop{},
		sortedCache: map[string][]prop{},
		scalarCache: map[string][]prop{},
		orig:        map[edge]bool{},
		version:     map[string]int{},
		memo:        map[memoKey][2]int{},
	}
	for _, c := range o.Concepts {
		g.order = append(g.order, c.Name)
		g.uf[c.Name] = c.Name
		g.members[c.Name] = []string{c.Name}
		pm := make(map[string]prop, len(c.Props))
		for _, p := range c.Props {
			pm[p.Name] = prop{Name: p.Name, Type: p.Type}
		}
		g.props[c.Name] = pm
	}
	for _, r := range o.Relationships {
		e := edge{Name: r.Name, Src: r.Src, Dst: r.Dst, Type: r.Type, OrigKey: r.Key()}
		g.addEdge(e)
		g.orig[e] = true
	}
	return g, nil
}

// find returns the 1:1 merge representative of a concept.
func (g *Graph) find(name string) string {
	root := name
	for g.uf[root] != root {
		root = g.uf[root]
	}
	for g.uf[name] != root {
		g.uf[name], name = root, g.uf[name]
	}
	return root
}

// mergeNodes records a 1:1 merge; the smaller name becomes representative
// so results are order-independent.
func (g *Graph) mergeNodes(a, b string) bool {
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		return false
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	g.uf[rb] = ra
	g.members[ra] = append(g.members[ra], g.members[rb]...)
	delete(g.members, rb)
	dst := g.props[ra]
	for name, p := range g.props[rb] {
		if _, ok := dst[name]; !ok {
			dst[name] = p
		}
	}
	delete(g.props, rb)
	delete(g.sortedCache, ra)
	delete(g.scalarCache, ra)
	delete(g.sortedCache, rb)
	delete(g.scalarCache, rb)
	// The merged group's version must exceed everything memoized against
	// either side.
	if g.version[rb] > g.version[ra] {
		g.version[ra] = g.version[rb]
	}
	g.version[ra]++
	delete(g.version, rb)
	return true
}

// sameGroup reports whether two concepts are 1:1-merged.
func (g *Graph) sameGroup(a, b string) bool { return g.find(a) == g.find(b) }

// groupProps returns the union of the properties of every concept merged
// with name, sorted by property name. The result is cached per group and
// must not be mutated.
func (g *Graph) groupProps(name string) []prop {
	root := g.find(name)
	if cached, ok := g.sortedCache[root]; ok {
		return cached
	}
	pm := g.props[root]
	out := make([]prop, 0, len(pm))
	for _, p := range pm {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	g.sortedCache[root] = out
	return out
}

// groupScalarProps is groupProps restricted to non-list properties, the
// candidates for 1:M / M:N replication.
func (g *Graph) groupScalarProps(name string) []prop {
	root := g.find(name)
	if cached, ok := g.scalarCache[root]; ok {
		return cached
	}
	all := g.groupProps(root)
	out := make([]prop, 0, len(all))
	for _, p := range all {
		if !p.List {
			out = append(out, p)
		}
	}
	g.scalarCache[root] = out
	return out
}

// addProp adds a property to the node's merge group, reporting whether
// the set grew.
func (g *Graph) addProp(nodeName string, p prop) bool {
	root := g.find(nodeName)
	pm := g.props[root]
	if _, ok := pm[p.Name]; ok {
		return false
	}
	pm[p.Name] = p
	delete(g.sortedCache, root)
	delete(g.scalarCache, root)
	g.version[root]++
	return true
}

// addEdge inserts an edge, reporting whether it is new.
func (g *Graph) addEdge(e edge) bool {
	if g.edges[e] {
		return false
	}
	g.edges[e] = true
	g.bySrc[e.Src] = append(g.bySrc[e.Src], e)
	g.byDst[e.Dst] = append(g.byDst[e.Dst], e)
	g.version[g.find(e.Src)]++
	g.version[g.find(e.Dst)]++
	return true
}

// snapshotEdges returns the current edges; sorted only when a test seed
// demands a specific shuffle (the fixpoint is order-independent).
func (g *Graph) snapshotEdges(rng *rand.Rand) []edge {
	out := make([]edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	if rng != nil {
		sortEdges(out)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

func sortEdges(es []edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.OrigKey < b.OrigKey
	})
}

// JS returns the Jaccard similarity associated with an inheritance edge
// (resolved through its original relationship).
func (g *Graph) JS(origKey string) float64 { return g.js[origKey] }

// Close runs every enabled rule to fixpoint. It is the engine behind
// Algorithm 5 (with AllRules) and behind the constrained algorithms (with
// a selected subset). Termination follows because every action strictly
// grows a finite set (properties, edges, or merged pairs).
func (g *Graph) Close() {
	if g.closed {
		return
	}
	var rng *rand.Rand
	if g.cfg.iterationSeed != 0 {
		rng = rand.New(rand.NewSource(g.cfg.iterationSeed))
	}
	for {
		changed := false
		for _, e := range g.snapshotEdges(rng) {
			switch e.Type {
			case ontology.OneToOne:
				// Only the original 1:1 relationship merges its node
				// pair. Copies produced by other rules stay ordinary
				// edges: Theorem 3 deliberately excludes the 1:1 rule,
				// and transitively merging through copies would collapse
				// unrelated concepts.
				if g.orig[e] && g.rules.Enabled(e.OrigKey, "", false) {
					if g.mergeNodes(e.Src, e.Dst) {
						changed = true
					}
				}
			case ontology.Union:
				if g.rules.Enabled(e.OrigKey, "", false) {
					if g.memoized(e, false, func() bool { return g.applyUnion(e) }) {
						changed = true
					}
				}
			case ontology.Inheritance:
				if g.rules.Enabled(e.OrigKey, "", false) {
					if g.memoized(e, false, func() bool { return g.applyInheritance(e) }) {
						changed = true
					}
				}
			case ontology.OneToMany:
				if g.memoized(e, false, func() bool { return g.applyReplicate(e, e.Src, e.Dst, false) }) {
					changed = true
				}
			case ontology.ManyToMany:
				if g.memoized(e, false, func() bool { return g.applyReplicate(e, e.Src, e.Dst, false) }) {
					changed = true
				}
				if g.memoized(e, true, func() bool { return g.applyReplicate(e, e.Dst, e.Src, true) }) {
					changed = true
				}
			}
		}
		g.passes++
		if !changed {
			break
		}
	}
	g.closed = true
}

// memoized skips a rule application when neither endpoint group changed
// since its last execution. Rule applications are deterministic functions
// of the two group states, so re-running them against unchanged state is
// a no-op; skipping preserves the fixpoint.
func (g *Graph) memoized(e edge, rev bool, apply func() bool) bool {
	key := memoKey{e: e, rev: rev}
	srcRoot, dstRoot := g.find(e.Src), g.find(e.Dst)
	cur := [2]int{g.version[srcRoot], g.version[dstRoot]}
	if prev, ok := g.memo[key]; ok && prev == cur {
		return false
	}
	// Record the PRE-apply versions: if the application itself bumps
	// either group (e.g. a copy that lands back inside its own group and
	// enables a further copy), the next pass must re-run it until the
	// site quiesces.
	g.memo[key] = cur
	return apply()
}

// applyUnion implements Algorithm 1: the member concept (e.Dst) takes over
// every non-union relationship of the union concept (e.Src), and — as a
// documented extension — the union concept's data properties, so that
// queries on them keep working after the union node is dissolved.
func (g *Graph) applyUnion(e edge) bool {
	u, m := e.Src, e.Dst
	changed := false
	for _, p := range g.groupProps(u) {
		if g.addProp(m, p) {
			changed = true
		}
	}
	if g.copyIncidentEdges(u, m, func(r edge) bool { return r.Type != ontology.Union }) {
		changed = true
	}
	return changed
}

// applyInheritance implements Algorithm 2: depending on the Jaccard
// similarity of the original relationship, the child is absorbed by the
// parent (JS > θ1), the parent is pushed into the child (JS < θ2), or
// nothing happens and the isA edge survives into the schema.
func (g *Graph) applyInheritance(e edge) bool {
	js := g.JS(e.OrigKey)
	p, c := e.Src, e.Dst
	// keep decides which edges transfer to the absorbing node. The guards
	// are deliberately immutable (edge type and original endpoint names)
	// — guards that could flip as merges accumulate would break the
	// order-independence of Theorem 3:
	//   - inheritance edges never transfer (Algorithm 2 and Equation 4
	//     exclude R_ih wholesale: siblings must not become each other's
	//     parents, and the consumed relationship itself disappears);
	//   - being a union *concept* is not a transferable role, so union
	//     edges whose source is the dissolving node stay behind (union
	//     memberships, where the dissolving node is the member, do
	//     transfer — appendix Figure 13(c)).
	keep := func(dissolving string) func(edge) bool {
		return func(r edge) bool {
			if r.Type == ontology.Inheritance {
				return false
			}
			if r.Type == ontology.Union && r.Src == dissolving {
				return false
			}
			return true
		}
	}
	changed := false
	switch {
	case js > g.cfg.Theta1:
		// Child merges into parent: parent gains the child's properties
		// and relationships.
		for _, q := range g.groupProps(c) {
			if g.addProp(p, q) {
				changed = true
			}
		}
		if g.copyIncidentEdges(c, p, keep(c)) {
			changed = true
		}
	case js < g.cfg.Theta2:
		// Parent pushes down into child.
		for _, q := range g.groupProps(p) {
			if g.addProp(c, q) {
				changed = true
			}
		}
		if g.copyIncidentEdges(p, c, keep(p)) {
			changed = true
		}
	}
	return changed
}

// copyIncidentEdges copies every edge incident to from's merge group onto
// to (with endpoint substitution), keeping OrigKey so selection and
// statistics still resolve. Returns whether anything was added.
//
// The operation is deliberately monotone: incidence via a growing merge
// group only ever enables more copies, and keep() only inspects immutable
// edge facts, so the closure's fixpoint is order-independent (Theorem 3).
// When both endpoints lie in from's group, both one-sided substitutions
// are emitted.
func (g *Graph) copyIncidentEdges(from, to string, keep func(edge) bool) bool {
	changed := false
	root := g.find(from)
	// Snapshot the incident lists: addEdge appends to the indexes we are
	// reading when to's group overlaps from's.
	var incidentSrc, incidentDst []edge
	for _, m := range g.members[root] {
		incidentSrc = append(incidentSrc, g.bySrc[m]...)
		incidentDst = append(incidentDst, g.byDst[m]...)
	}
	for _, r := range incidentSrc {
		if !keep(r) {
			continue
		}
		cp := r
		cp.Src = to
		if g.addEdge(cp) {
			changed = true
		}
	}
	for _, r := range incidentDst {
		if !keep(r) {
			continue
		}
		cp := r
		cp.Dst = to
		if g.addEdge(cp) {
			changed = true
		}
	}
	return changed
}

// applyReplicate implements Algorithm 4 (and its M:N generalization): each
// enabled scalar property of the far concept is replicated onto the near
// concept as a LIST property named "<FarNode>.<prop>" (Figure 7). Only
// scalar properties propagate, so replication cannot cascade into lists
// of lists.
func (g *Graph) applyReplicate(e edge, near, far string, reverse bool) bool {
	changed := false
	wildcard := g.rules.Enabled(e.OrigKey, "*", reverse)
	for _, q := range g.groupScalarProps(far) {
		if !wildcard && !g.rules.Enabled(e.OrigKey, q.Name, reverse) {
			continue
		}
		lp := prop{Name: far + "." + q.Name, Type: q.Type, List: true}
		if g.addProp(near, lp) {
			changed = true
		}
	}
	return changed
}

// DebugStats reports closure sizes; used by profiling tools.
func (g *Graph) DebugStats() string {
	groups := map[string]int{}
	for _, c := range g.order {
		groups[g.find(c)]++
	}
	nprops := 0
	for _, pm := range g.props {
		nprops += len(pm)
	}
	return fmt.Sprintf("edges=%d groups=%d props=%d passes=%d", len(g.edges), len(groups), nprops, g.passes)
}
