package query

import (
	"sort"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
)

// Stats counts the physical work a query performed; the benchmark harness
// reports these alongside latency to show why optimized schemas win.
type Stats struct {
	VerticesScanned int64 // label-scan candidates examined
	EdgesTraversed  int64 // adjacency expansions followed
	PropsRead       int64 // property fetches
	RowsEmitted     int64 // result rows produced
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.VerticesScanned += other.VerticesScanned
	s.EdgesTraversed += other.EdgesTraversed
	s.PropsRead += other.PropsRead
	s.RowsEmitted += other.RowsEmitted
}

// Result is a materialized query result. Rows is freshly allocated per
// execution; Columns is shared with the Prepared plan that produced it and
// must not be mutated.
type Result struct {
	Columns []string
	Rows    [][]graph.Value
}

// Run executes the query against the graph. One-shot convenience wrapper:
// it compiles the query with Prepare and executes the plan once. Callers
// that run the same query repeatedly should Prepare once and Execute many
// times.
func Run(g storage.Graph, q *cypher.Query) (*Result, error) {
	var st Stats
	return RunWithStats(g, q, &st)
}

// RunWithStats executes the query, accumulating work counters into st.
func RunWithStats(g storage.Graph, q *cypher.Query, st *Stats) (*Result, error) {
	p, err := Prepare(g, q)
	if err != nil {
		return nil, err
	}
	return p.ExecuteWithStats(st)
}

// appendRowKey appends the canonical composite key of a row to dst.
func appendRowKey(dst []byte, row []graph.Value) []byte {
	for _, v := range row {
		dst = v.AppendKey(dst)
		dst = append(dst, 0x1f)
	}
	return dst
}

// SortRowsForComparison orders rows canonically; tests use it to compare
// result sets that may be produced in different orders by different
// schemas or backends. Keys are materialized once up front rather than
// rebuilt inside the comparator.
func SortRowsForComparison(rows [][]graph.Value) {
	keys := make([]string, len(rows))
	var buf []byte
	for i, row := range rows {
		buf = appendRowKey(buf[:0], row)
		keys[i] = string(buf)
	}
	sort.Sort(&rowSorter{rows: rows, keys: keys})
}

type rowSorter struct {
	rows [][]graph.Value
	keys []string
}

func (s *rowSorter) Len() int           { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
