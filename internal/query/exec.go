package query

import (
	"fmt"
	"sort"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
)

// Stats counts the physical work a query performed; the benchmark harness
// reports these alongside latency to show why optimized schemas win.
type Stats struct {
	VerticesScanned int64 // label-scan candidates examined
	EdgesTraversed  int64 // adjacency expansions followed
	PropsRead       int64 // property fetches
	RowsEmitted     int64 // result rows produced
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.VerticesScanned += other.VerticesScanned
	s.EdgesTraversed += other.EdgesTraversed
	s.PropsRead += other.PropsRead
	s.RowsEmitted += other.RowsEmitted
}

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]graph.Value
}

// Run executes the query against the graph.
func Run(g storage.Graph, q *cypher.Query) (*Result, error) {
	var st Stats
	return RunWithStats(g, q, &st)
}

// RunWithStats executes the query, accumulating work counters into st.
func RunWithStats(g storage.Graph, q *cypher.Query, st *Stats) (*Result, error) {
	q = q.Clone()
	nameAnonymousVars(q)
	if q.Where != nil && cypher.HasAggregate(q.Where) {
		return nil, fmt.Errorf("query: aggregates are not allowed in WHERE")
	}
	ex := &executor{
		g:     g,
		q:     q,
		env:   &env{g: g, vars: map[string]storage.VID{}, stats: st},
		used:  map[storage.EID]bool{},
		stats: st,
	}
	if err := ex.prepareReturn(); err != nil {
		return nil, err
	}
	if err := ex.matchPatterns(0); err != nil {
		return nil, err
	}
	return ex.finish()
}

func nameAnonymousVars(q *cypher.Query) {
	n := 0
	for _, p := range q.Patterns {
		for _, node := range p.Nodes {
			if node.Var == "" {
				node.Var = fmt.Sprintf("_n%d", n)
				n++
			}
		}
	}
}

type executor struct {
	g     storage.Graph
	q     *cypher.Query
	env   *env
	used  map[storage.EID]bool
	stats *Stats

	// Grouping state.
	grouped    bool
	groupItems []int // indices of return items that form the group key
	aggCalls   []*cypher.FuncCall
	groups     map[string]*groupState
	groupOrder []string

	// Ungrouped accumulation.
	rows [][]graph.Value
}

type groupState struct {
	keyVals []graph.Value
	aggs    []*aggState
}

// prepareReturn classifies return items and validates aggregate usage.
func (ex *executor) prepareReturn() error {
	hasAgg := false
	for _, ri := range ex.q.Return {
		if cypher.HasAggregate(ri.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		return nil
	}
	ex.grouped = true
	ex.groups = map[string]*groupState{}
	for i, ri := range ex.q.Return {
		if !cypher.HasAggregate(ri.Expr) {
			ex.groupItems = append(ex.groupItems, i)
			continue
		}
		if err := validateAggItem(ri.Expr, false); err != nil {
			return err
		}
		collectAggCalls(ri.Expr, &ex.aggCalls)
	}
	return nil
}

// validateAggItem rejects expressions mixing aggregates with free variable
// references outside aggregate arguments (e.g. a.x = COUNT(*)), which our
// implicit-grouping implementation does not support.
func validateAggItem(e cypher.Expr, insideAgg bool) error {
	switch x := e.(type) {
	case *cypher.PropAccess, *cypher.VarRef:
		if !insideAgg {
			return fmt.Errorf("query: %s mixes grouped and aggregated values in one item", e)
		}
	case *cypher.Binary:
		if err := validateAggItem(x.L, insideAgg); err != nil {
			return err
		}
		return validateAggItem(x.R, insideAgg)
	case *cypher.Not:
		return validateAggItem(x.E, insideAgg)
	case *cypher.FuncCall:
		inner := insideAgg || x.IsAggregate()
		for _, a := range x.Args {
			if err := validateAggItem(a, inner); err != nil {
				return err
			}
		}
	}
	return nil
}

// matchPatterns enumerates bindings for patterns[i:], emitting rows.
func (ex *executor) matchPatterns(i int) error {
	if i == len(ex.q.Patterns) {
		return ex.emit()
	}
	return ex.solvePattern(ex.q.Patterns[i], func() error {
		return ex.matchPatterns(i + 1)
	})
}

// move is one step of a pattern traversal plan.
type move struct {
	node int // index of the node being bound
	rel  int // rel used to reach it, or -1 for the start node
	from int // node index already bound (when rel >= 0)
}

func (ex *executor) solvePattern(pat *cypher.PathPattern, cont func() error) error {
	moves := ex.plan(pat)
	var step func(k int) error
	step = func(k int) error {
		if k == len(moves) {
			return cont()
		}
		mv := moves[k]
		node := pat.Nodes[mv.node]
		if mv.rel < 0 {
			return ex.bindStart(node, func() error { return step(k + 1) })
		}
		return ex.expand(pat, mv, node, func() error { return step(k + 1) })
	}
	return step(0)
}

// plan picks the cheapest start node and orders the expansion outward.
func (ex *executor) plan(pat *cypher.PathPattern) []move {
	start, bestCost := 0, int64(1)<<62
	for i, n := range pat.Nodes {
		var cost int64
		switch {
		case ex.bound(n.Var):
			cost = 0
		case len(n.Labels) > 0:
			cost = int64(ex.minLabelCount(n.Labels))
			if len(n.Props) > 0 {
				cost /= 16 // property constraints are selective
			}
		default:
			cost = int64(ex.g.NumVertices())
		}
		if cost < bestCost {
			start, bestCost = i, cost
		}
	}
	moves := []move{{node: start, rel: -1}}
	for j := start + 1; j < len(pat.Nodes); j++ {
		moves = append(moves, move{node: j, rel: j - 1, from: j - 1})
	}
	for j := start - 1; j >= 0; j-- {
		moves = append(moves, move{node: j, rel: j, from: j + 1})
	}
	return moves
}

func (ex *executor) bound(v string) bool {
	_, ok := ex.env.vars[v]
	return ok
}

func (ex *executor) minLabelCount(labels []string) int {
	best := ex.g.CountLabel(labels[0])
	for _, l := range labels[1:] {
		if c := ex.g.CountLabel(l); c < best {
			best = c
		}
	}
	return best
}

// checkNode verifies label and inline property constraints.
func (ex *executor) checkNode(v storage.VID, n *cypher.NodePattern) bool {
	for _, l := range n.Labels {
		if !ex.g.HasLabel(v, l) {
			return false
		}
	}
	for k, want := range n.Props {
		ex.stats.PropsRead++
		got, ok := ex.g.Prop(v, k)
		if !ok || !got.Equal(want) {
			return false
		}
	}
	return true
}

func (ex *executor) bindStart(n *cypher.NodePattern, cont func() error) error {
	if v, ok := ex.env.vars[n.Var]; ok {
		if !ex.checkNode(v, n) {
			return nil
		}
		return cont()
	}
	// Scan the most selective label; "" scans everything.
	scanLabel := ""
	if len(n.Labels) > 0 {
		scanLabel = n.Labels[0]
		best := ex.g.CountLabel(scanLabel)
		for _, l := range n.Labels[1:] {
			if c := ex.g.CountLabel(l); c < best {
				scanLabel, best = l, c
			}
		}
	}
	var err error
	ex.g.ForEachVertex(scanLabel, func(v storage.VID) bool {
		ex.stats.VerticesScanned++
		if !ex.checkNode(v, n) {
			return true
		}
		ex.env.vars[n.Var] = v
		err = cont()
		delete(ex.env.vars, n.Var)
		return err == nil
	})
	return err
}

func (ex *executor) expand(pat *cypher.PathPattern, mv move, node *cypher.NodePattern, cont func() error) error {
	rel := pat.Rels[mv.rel]
	from := ex.env.vars[pat.Nodes[mv.from].Var]
	// The rel textually connects Nodes[mv.rel] -> Nodes[mv.rel+1]; work
	// out which physical direction to iterate from the bound side.
	leftToRight := mv.from == mv.rel
	outgoing := (rel.Dir == cypher.DirOut) == leftToRight

	iterate := ex.g.ForEachIn
	if outgoing {
		iterate = ex.g.ForEachOut
	}
	var err error
	iterate(from, rel.Type, func(e storage.EID, other storage.VID) bool {
		ex.stats.EdgesTraversed++
		if ex.used[e] {
			return true // Cypher relationship-uniqueness
		}
		if prev, alreadyBound := ex.env.vars[node.Var]; alreadyBound {
			if prev != other || !ex.checkNode(other, node) {
				return true
			}
			ex.used[e] = true
			err = cont()
			delete(ex.used, e)
			return err == nil
		}
		if !ex.checkNode(other, node) {
			return true
		}
		ex.env.vars[node.Var] = other
		ex.used[e] = true
		err = cont()
		delete(ex.used, e)
		delete(ex.env.vars, node.Var)
		return err == nil
	})
	return err
}

// emit processes one complete binding: WHERE filter, then accumulate.
func (ex *executor) emit() error {
	if ex.q.Where != nil {
		val, err := ex.env.eval(ex.q.Where)
		if err != nil {
			return err
		}
		if ok, _ := truth(val); !ok {
			return nil
		}
	}
	if ex.grouped {
		return ex.accumulateGroup()
	}
	row := make([]graph.Value, len(ex.q.Return))
	for i, ri := range ex.q.Return {
		v, err := ex.env.eval(ri.Expr)
		if err != nil {
			return err
		}
		row[i] = v
	}
	ex.rows = append(ex.rows, row)
	return nil
}

func (ex *executor) accumulateGroup() error {
	keyVals := make([]graph.Value, len(ex.groupItems))
	key := ""
	for i, idx := range ex.groupItems {
		v, err := ex.env.eval(ex.q.Return[idx].Expr)
		if err != nil {
			return err
		}
		keyVals[i] = v
		key += v.Key() + "\x1f"
	}
	gs, ok := ex.groups[key]
	if !ok {
		gs = &groupState{keyVals: keyVals}
		for _, call := range ex.aggCalls {
			gs.aggs = append(gs.aggs, newAggState(call))
		}
		ex.groups[key] = gs
		ex.groupOrder = append(ex.groupOrder, key)
	}
	for _, a := range gs.aggs {
		if err := a.update(ex.env); err != nil {
			return err
		}
	}
	return nil
}

// finish builds the final result: grouped output, DISTINCT, ORDER BY,
// LIMIT.
func (ex *executor) finish() (*Result, error) {
	res := &Result{}
	for _, ri := range ex.q.Return {
		res.Columns = append(res.Columns, ri.Name())
	}
	if ex.grouped {
		// An aggregate-only query over zero rows still yields one row
		// (e.g. COUNT(*) = 0), per Cypher semantics.
		if len(ex.groups) == 0 && len(ex.groupItems) == 0 {
			gs := &groupState{}
			for _, call := range ex.aggCalls {
				gs.aggs = append(gs.aggs, newAggState(call))
			}
			ex.groups[""] = gs
			ex.groupOrder = append(ex.groupOrder, "")
		}
		for _, key := range ex.groupOrder {
			gs := ex.groups[key]
			aggVals := map[*cypher.FuncCall]graph.Value{}
			for i, call := range ex.aggCalls {
				aggVals[call] = gs.aggs[i].final()
			}
			genv := &env{g: ex.g, vars: map[string]storage.VID{}, stats: ex.stats, agg: aggVals}
			row := make([]graph.Value, len(ex.q.Return))
			ki := 0
			for i, ri := range ex.q.Return {
				if cypher.HasAggregate(ri.Expr) {
					v, err := genv.eval(ri.Expr)
					if err != nil {
						return nil, err
					}
					row[i] = v
				} else {
					row[i] = gs.keyVals[ki]
					ki++
				}
			}
			ex.rows = append(ex.rows, row)
		}
	}
	rows := ex.rows
	if ex.q.Distinct {
		seen := map[string]bool{}
		var dedup [][]graph.Value
		for _, row := range rows {
			k := rowKey(row)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, row)
			}
		}
		rows = dedup
	}
	if len(ex.q.OrderBy) > 0 {
		cols, err := ex.sortColumns()
		if err != nil {
			return nil, err
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for k, s := range ex.q.OrderBy {
				a, b := rows[i][cols[k]], rows[j][cols[k]]
				cmp, ok := a.Compare(b)
				if !ok {
					// NULLs and incomparables sort last.
					switch {
					case a.IsNull() && b.IsNull():
						continue
					case a.IsNull():
						return false
					case b.IsNull():
						return true
					default:
						continue
					}
				}
				if cmp == 0 {
					continue
				}
				if s.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}
	if ex.q.Limit >= 0 && len(rows) > ex.q.Limit {
		rows = rows[:ex.q.Limit]
	}
	res.Rows = rows
	ex.stats.RowsEmitted += int64(len(rows))
	return res, nil
}

// sortColumns maps each ORDER BY expression to a return column, by alias
// or by identical rendering.
func (ex *executor) sortColumns() ([]int, error) {
	cols := make([]int, len(ex.q.OrderBy))
	for i, s := range ex.q.OrderBy {
		found := -1
		text := s.Expr.String()
		for j, ri := range ex.q.Return {
			if ri.Alias != "" && text == ri.Alias {
				found = j
				break
			}
			if ri.Expr.String() == text {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("query: ORDER BY %s does not match a returned column", text)
		}
		cols[i] = found
	}
	return cols, nil
}

func rowKey(row []graph.Value) string {
	k := ""
	for _, v := range row {
		k += v.Key() + "\x1f"
	}
	return k
}

// SortRowsForComparison orders rows canonically; tests use it to compare
// result sets that may be produced in different orders by different
// schemas or backends.
func SortRowsForComparison(rows [][]graph.Value) {
	sort.Slice(rows, func(i, j int) bool { return rowKey(rows[i]) < rowKey(rows[j]) })
}
