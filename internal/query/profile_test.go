package query

// PROFILE trace tests: per-step operator counters must be exact, agree
// between serial and morsel-parallel execution, and sum consistently
// with the coarse work counters in Stats.

import (
	"context"
	"testing"

	"repro/internal/cypher"
	"repro/internal/storage/memstore"
)

func profilePlan(t *testing.T, src string) *Prepared {
	t.Helper()
	b := memstore.New()
	buildPeopleGraph(t, b, 300)
	p, err := Prepare(b, cypher.MustParse(src))
	if err != nil {
		t.Fatalf("Prepare(%q): %v", src, err)
	}
	return p
}

// TestProfileTwoHopStepCounts: a two-hop expansion's per-step counters
// must chain (each step's visited reflects its upstream's produced via
// the graph's fan-out) and match the coarse Stats totals exactly.
func TestProfileTwoHopStepCounts(t *testing.T) {
	p := profilePlan(t,
		`MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.name, c.name`)

	var st Stats
	res, prof, err := p.ExecuteContextProfiled(context.Background(), &st)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Parallel || prof.Workers != 1 {
		t.Errorf("serial profile claims parallel=%v workers=%d", prof.Parallel, prof.Workers)
	}
	if len(prof.Steps) != 4 { // scan + expand + expand + project
		t.Fatalf("steps = %d, want 4: %+v", len(prof.Steps), prof.Steps)
	}
	scan, hop1, hop2, project := prof.Steps[0], prof.Steps[1], prof.Steps[2], prof.Steps[3]
	if scan.Op != "scan" || scan.Target != "Person" {
		t.Errorf("step 0 = %+v, want scan of Person", scan)
	}
	if hop1.Op != "expand_out" || hop1.Target != "knows" || hop2.Op != "expand_out" {
		t.Errorf("expansions = %+v / %+v, want expand_out of knows", hop1, hop2)
	}
	if project.Op != "project" {
		t.Errorf("terminal step = %+v, want project", project)
	}

	// Exact consistency with the coarse counters.
	if scan.Visited != st.VerticesScanned {
		t.Errorf("scan visited %d != VerticesScanned %d", scan.Visited, st.VerticesScanned)
	}
	if got := hop1.Visited + hop2.Visited; got != st.EdgesTraversed {
		t.Errorf("expansion visited %d != EdgesTraversed %d", got, st.EdgesTraversed)
	}
	if project.Produced != int64(len(res.Rows)) || project.Produced != st.RowsEmitted {
		t.Errorf("project produced %d, rows %d, RowsEmitted %d — must agree",
			project.Produced, len(res.Rows), st.RowsEmitted)
	}
	// Each produced binding becomes exactly one downstream activation:
	// produced[i] == visited[i+1] holds up to fan-out (2 knows edges per
	// vertex, uniqueness can only discard at the visited step).
	if scan.Produced != 300 {
		t.Errorf("scan produced %d, want all 300 Person vertices", scan.Produced)
	}
	if hop1.Visited != 2*scan.Produced {
		t.Errorf("hop1 visited %d, want fan-out 2 x %d", hop1.Visited, scan.Produced)
	}
	if hop2.Visited != 2*hop1.Produced {
		t.Errorf("hop2 visited %d, want fan-out 2 x %d", hop2.Visited, hop1.Produced)
	}
	if project.Visited != hop2.Produced {
		t.Errorf("project visited %d != hop2 produced %d", project.Visited, hop2.Produced)
	}
}

// TestProfileParallelMatchesSerial: the morsel-parallel profile must
// merge per-worker counters into exactly the serial totals, and report
// the fan-out shape.
func TestProfileParallelMatchesSerial(t *testing.T) {
	for _, src := range []string{
		`MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.name, c.name`,
		`MATCH (p:Person) WHERE p.age > 5 RETURN p.name, p.age`,
		`MATCH (p:Person) RETURN p.grp, COUNT(*)`,
	} {
		p := profilePlan(t, src)
		var serialSt Stats
		_, serial, err := p.ExecuteContextProfiled(context.Background(), &serialSt)
		if err != nil {
			t.Fatalf("%q serial: %v", src, err)
		}
		var parSt Stats
		res, par, err := p.ExecuteParallelContextProfiled(context.Background(), 4, &parSt)
		if err != nil {
			t.Fatalf("%q parallel: %v", src, err)
		}
		if !par.Parallel || par.Workers < 2 || par.Morsels < 2 {
			t.Errorf("%q: parallel profile did not fan out: %+v", src, par)
		}
		if len(par.Steps) != len(serial.Steps) {
			t.Fatalf("%q: step count %d != serial %d", src, len(par.Steps), len(serial.Steps))
		}
		for i := range par.Steps {
			if par.Steps[i].Visited != serial.Steps[i].Visited ||
				par.Steps[i].Produced != serial.Steps[i].Produced {
				t.Errorf("%q step %d: parallel %+v != serial %+v",
					src, i, par.Steps[i], serial.Steps[i])
			}
			if par.Steps[i].Op != serial.Steps[i].Op || par.Steps[i].Target != serial.Steps[i].Target {
				t.Errorf("%q step %d: shape mismatch %+v vs %+v", src, i, par.Steps[i], serial.Steps[i])
			}
		}
		if parSt != serialSt {
			t.Errorf("%q: parallel Stats %+v != serial %+v", src, parSt, serialSt)
		}
		_ = res
	}
}

// TestProfileOffLeavesNoCounters: an unprofiled execution interleaved
// with profiled ones must not accumulate or leak step counters across
// runs (profiled machines are single-use and never enter the pool).
func TestProfileOffLeavesNoCounters(t *testing.T) {
	p := profilePlan(t, `MATCH (p:Person) WHERE p.age > 5 RETURN p.name`)
	var st1 Stats
	_, prof1, err := p.ExecuteContextProfiled(context.Background(), &st1)
	if err != nil {
		t.Fatal(err)
	}
	// Unprofiled run on the same (pooled) machine.
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	// A second profiled run must report identical counters, not doubled
	// ones, proving no counter state survives across executions.
	var st2 Stats
	_, prof2, err := p.ExecuteContextProfiled(context.Background(), &st2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prof1.Steps {
		if prof1.Steps[i] != prof2.Steps[i] {
			t.Errorf("step %d drifted across runs: %+v vs %+v", i, prof1.Steps[i], prof2.Steps[i])
		}
	}
}

// TestProfileBoundAndBindSteps: a join back-edge profile reports the
// bound expansion, and a multi-pattern query reports the bind start.
func TestProfileBoundAndBindSteps(t *testing.T) {
	p := profilePlan(t, `MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(a) RETURN a.name`)
	var st Stats
	_, prof, err := p.ExecuteContextProfiled(context.Background(), &st)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range prof.Steps {
		if sp.Bound && (sp.Op == "expand_out" || sp.Op == "expand_in") {
			found = true
			if sp.Produced > sp.Visited {
				t.Errorf("bound expansion produced %d > visited %d", sp.Produced, sp.Visited)
			}
		}
	}
	if !found {
		t.Errorf("no bound expansion step in triangle profile: %+v", prof.Steps)
	}
}
