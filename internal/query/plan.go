package query

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
)

// Prepared is a query compiled against one graph: label, type, and
// property-key strings are resolved to the store's interned SymbolIDs,
// pattern variables are numbered into slots of a flat binding array, and
// the traversal order is fixed — so executing the plan does no string
// hashing, no AST walking, and no per-row map allocation.
//
// A Prepared is bound to the graph it was compiled for (symbol IDs are
// store-specific) but is itself immutable once Prepare returns: all
// mutable execution state lives in a per-call machine recycled through an
// internal sync.Pool, so Execute is safe for any number of concurrent
// callers sharing one plan — provided the underlying store supports
// concurrent readers (both built-in backends do once fully built).
type Prepared struct {
	g    storage.FastGraph
	cols []string

	// moves is the compiled traversal order of every pattern; each pooled
	// machine links its own executable step chain from it.
	moves  []move
	nSlots int
	where  cexpr
	// uniqEdges is set when the plan expands more than one relationship,
	// the only case where Cypher's relationship-uniqueness rule can bind:
	// single-expand plans (the typed one-hop shapes dominating the paper's
	// workloads) skip the per-edge used-stack scan entirely.
	uniqEdges bool

	// Return processing.
	grouped    bool
	items      []citem
	groupExprs []cexpr // compiled non-aggregate items, in item order
	aggs       []aggSpec

	distinct  bool
	orderCols []int
	orderDesc []bool
	limit     int

	// Morsel-driven execution (see parallel.go): parallelOK is the
	// planner's compile-time eligibility decision — the plan's first move
	// is an unbound label scan that PlanVertexScan can partition, and the
	// shape has no serial early-exit worth preserving — and rootLabel is
	// the label whose postings the morsel driver splits.
	parallelOK bool
	rootLabel  storage.SymbolID

	// probe, when non-nil, lets executions consult the store's persisted
	// statistics (storage.Statistics) before the root label scan: if every
	// inline property constraint on the root node is provably absent under
	// that label, the whole scan is skipped. Probes are re-evaluated per
	// execution — live writes flip the store's answers back to "maybe", so
	// a plan compiled before a write never wrongly skips after it.
	probe *rootProbe

	// pool recycles machines across executions. A machine is created on
	// first use (or after a GC drained the pool) and costs one step-chain
	// build; steady-state executions reuse it allocation-free.
	pool sync.Pool
}

// step runs one stage of the traversal chain against its machine's state
// and recurses into the rest of the chain via a captured continuation. The
// whole chain, including iterator callbacks, is built once per machine —
// not per execution — so the hot path allocates no closures.
type step func() error

// citem is one compiled RETURN item.
type citem struct {
	hasAgg bool
	out    cexpr
}

// machine is the mutable execution state of one in-flight Execute call.
// Each machine is owned by exactly one goroutine at a time; the plan's
// pool hands it out and takes it back around every execution.
type machine struct {
	g     storage.FastGraph
	stats *Stats
	err   error

	// Cancellation: done/ctx are set only by the Context execution
	// variants. The traversal callbacks poll done every cancelMask+1
	// iterations (a non-blocking channel read), so a deadline or a hung
	// client stops a scan mid-flight instead of after it.
	done <-chan struct{}
	ctx  context.Context
	tick uint

	// root is this machine's private step chain, linked once at machine
	// construction from the plan's immutable move list.
	root step

	// rootScan is the root move's per-vertex callback (captured when the
	// chain is linked): the morsel driver feeds partition iterators into
	// it directly, bypassing root's full-label scan. Nil when the plan's
	// first move is a bound start.
	rootScan func(storage.VID) bool

	// emit, when non-nil, receives each projected row instead of m.rows —
	// the streaming hook of the parallel and streaming executors. Only
	// meaningful for non-grouped plans.
	emit func([]graph.Value) error

	// trackDistinct makes DISTINCT aggregates record their accepted
	// values so per-worker partial states can be merged at a sink (see
	// aggState.merge).
	trackDistinct bool

	// psteps, when non-nil, receives per-step PROFILE counters: one slot
	// per compiled move plus a final slot for the emit step. It is
	// allocated by buildMachine(profiled=true) BEFORE the step chain is
	// compiled — the chain closures capture &psteps[i] directly — and its
	// presence also marks the machine as single-use (release skips the
	// pool), so pooled machines never carry profiling code.
	psteps []stepCounts

	// rootMatched records whether the root scan accepted at least one
	// vertex this execution; a probed scan that ran (the statistics said
	// "maybe") but matched nothing was a bloom false positive, counted
	// for the stats_bloom_fp metric.
	rootMatched bool

	slots []storage.VID // variable bindings; -1 = unbound
	used  []storage.EID // edges bound on the current path (Cypher uniqueness)

	// Reusable scratch buffers; these keep per-binding allocations at
	// zero on the hot path.
	key        []byte        // composite group/dedup key
	scratch    []byte        // DISTINCT-aggregate value key
	keyScratch []graph.Value // group-key values of the current row

	aggVals []graph.Value // aggregate outputs during the finish phase
	groups  map[string]*groupRow
	order   []string
	rows    [][]graph.Value
}

const unbound = storage.VID(-1)

// cancelMask throttles cancellation polling: the context is checked once
// every cancelMask+1 vertices scanned or edges traversed, keeping the
// per-iteration overhead to one increment and one mask on the hot path.
const cancelMask = 255

// canceled polls the machine's context (if any) and, when it has been
// canceled, records the context error and reports true so the enclosing
// iterator unwinds.
func (m *machine) canceled() bool {
	if m.done == nil {
		return false
	}
	m.tick++
	if m.tick&cancelMask != 0 {
		return false
	}
	select {
	case <-m.done:
		m.err = m.ctx.Err()
		return true
	default:
		return false
	}
}

// groupRow is the accumulated state of one group.
type groupRow struct {
	keyVals []graph.Value
	aggs    []aggState
}

func (m *machine) edgeUsed(e storage.EID) bool {
	for _, u := range m.used {
		if u == e {
			return true
		}
	}
	return false
}

// Prepare compiles q for execution against g. The returned plan stays
// valid for the lifetime of the store: stores are fully built before being
// queried, so the symbol IDs resolved here cannot change underneath it.
func Prepare(g storage.Graph, q *cypher.Query) (*Prepared, error) {
	q = q.Clone()
	nameAnonymousVars(q)
	if q.Where != nil && cypher.HasAggregate(q.Where) {
		return nil, fmt.Errorf("query: aggregates are not allowed in WHERE")
	}
	fg := storage.Fast(g)
	c := &compiler{g: fg, slots: map[string]int{}}
	// Number every pattern variable into a slot first so expressions can
	// reference variables bound by any pattern.
	for _, p := range q.Patterns {
		for _, n := range p.Nodes {
			c.slot(n.Var)
		}
	}
	p := &Prepared{g: fg, limit: q.Limit, distinct: q.Distinct}
	for _, ri := range q.Return {
		p.cols = append(p.cols, ri.Name())
	}
	if err := c.compileReturn(p, q); err != nil {
		return nil, err
	}
	if q.Where != nil {
		w, err := c.expr(q.Where, nil)
		if err != nil {
			return nil, err
		}
		p.where = w
	}
	if len(q.OrderBy) > 0 {
		cols, err := sortColumns(q)
		if err != nil {
			return nil, err
		}
		p.orderCols = cols
		p.orderDesc = make([]bool, len(q.OrderBy))
		for i, s := range q.OrderBy {
			p.orderDesc[i] = s.Desc
		}
	}
	boundSlots := map[int]bool{}
	for _, pat := range q.Patterns {
		p.moves = append(p.moves, c.planPattern(pat, boundSlots)...)
	}
	expands := 0
	for _, mv := range p.moves {
		if !mv.start {
			expands++
		}
	}
	p.uniqEdges = expands > 1
	p.nSlots = len(c.order)
	p.planParallel()
	p.planProbe()
	p.pool.New = func() any { return p.newMachine() }
	return p, nil
}

// planProbe arms the statistics guard for eligible plans: the root move
// must be an unbound scan of a named label with at least one inline
// property constraint, and the store must expose storage.Statistics.
// Everything else — bound starts, label-less scans, property-free
// roots — runs unguarded: the guard could never prove those empty.
func (p *Prepared) planProbe() {
	if len(p.moves) == 0 || !p.moves[0].start || p.moves[0].bound {
		return
	}
	mv := &p.moves[0]
	if mv.scanName == "" || len(mv.node.props) == 0 {
		return
	}
	if _, ok := p.g.(storage.Statistics); !ok {
		return
	}
	p.probe = &rootProbe{label: mv.scanName, props: mv.node.props}
}

// planParallel is the compile-time half of the parallelism decision: it
// marks plans whose root is an unbound label scan as morsel-eligible. A
// LIMIT without ORDER BY (point lookups, LIMIT-1 probes) stays serial so
// the executor's early exit keeps working — a fan-out would race to scan
// work the serial plan never touches. The runtime half (worker count and
// the label-size threshold) lives in planMorsels.
func (p *Prepared) planParallel() {
	if len(p.moves) == 0 || !p.moves[0].start || p.moves[0].bound {
		return
	}
	if p.limit >= 0 && len(p.orderCols) == 0 {
		return
	}
	p.parallelOK = true
	p.rootLabel = p.moves[0].scanLabel
}

// newMachine builds a fresh execution context sized for the plan,
// including its private step chain. Called by the pool on first use and
// whenever the pool is empty.
func (p *Prepared) newMachine() *machine { return p.buildMachine(false) }

// newProfiledMachine builds a machine whose step chain carries the
// PROFILE counter increments (m.psteps is allocated before the chain is
// compiled, so moveStep/emitStep bake the increments in). Profiled
// machines are built per call and never pooled — the pooled chain stays
// free of profiling code entirely.
func (p *Prepared) newProfiledMachine() *machine { return p.buildMachine(true) }

func (p *Prepared) buildMachine(profiled bool) *machine {
	m := &machine{
		g:          p.g,
		slots:      make([]storage.VID, p.nSlots),
		keyScratch: make([]graph.Value, len(p.groupExprs)),
		aggVals:    make([]graph.Value, len(p.aggs)),
	}
	if p.grouped {
		m.groups = map[string]*groupRow{}
	}
	if profiled {
		m.psteps = make([]stepCounts, len(p.moves)+1)
	}
	next := p.emitStep(m)
	for i := len(p.moves) - 1; i >= 0; i-- {
		next = p.moveStep(m, i, p.moves[i], next)
	}
	m.root = next
	return m
}

func nameAnonymousVars(q *cypher.Query) {
	n := 0
	for _, p := range q.Patterns {
		for _, node := range p.Nodes {
			if node.Var == "" {
				node.Var = fmt.Sprintf("_n%d", n)
				n++
			}
		}
	}
}

// Execute runs the plan and materializes the result. Safe to call from
// many goroutines at once on the same plan.
func (p *Prepared) Execute() (*Result, error) {
	var st Stats
	return p.ExecuteWithStats(&st)
}

// ExecuteWithStats runs the plan, accumulating work counters into st.
// Safe for concurrent callers of the same plan, but each call needs its
// own st (or external synchronization around a shared one).
func (p *Prepared) ExecuteWithStats(st *Stats) (*Result, error) {
	return p.run(p.pool.Get().(*machine), st)
}

// ExecuteContext runs the plan under a context: if ctx is canceled or its
// deadline passes mid-execution the traversal unwinds within a bounded
// number of iterations and the context's error is returned. Serving paths
// use this for per-request timeouts and client-disconnect cancellation.
func (p *Prepared) ExecuteContext(ctx context.Context) (*Result, error) {
	var st Stats
	return p.ExecuteContextWithStats(ctx, &st)
}

// ExecuteContextWithStats is ExecuteContext accumulating work counters
// into st. A context that can never be canceled (Done() == nil) costs
// nothing extra on the hot path.
func (p *Prepared) ExecuteContextWithStats(ctx context.Context, st *Stats) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := p.pool.Get().(*machine)
	m.done = ctx.Done()
	m.ctx = ctx
	return p.run(m, st)
}

// run drives one execution on a machine fetched from the pool and returns
// the machine afterwards. Cancellation state (done/ctx) must be set by the
// caller before run; it is cleared here before the machine is pooled.
func (p *Prepared) run(m *machine, st *Stats) (*Result, error) {
	m.reset(p, st)
	var res *Result
	err := m.root()
	if err == nil {
		res, err = p.finish(m)
	}
	p.release(m)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// reset prepares a pooled machine for a fresh execution; cancellation
// state (done/ctx) is layered on top by the caller when needed.
func (m *machine) reset(p *Prepared, st *Stats) {
	m.g = p.g
	m.stats = st
	m.err = nil
	for i := range m.slots {
		m.slots[i] = unbound
	}
	m.used = m.used[:0]
	if p.grouped {
		clear(m.groups)
		m.order = m.order[:0]
	}
}

// release returns a machine to the pool with every per-call reference
// cleared: the row slice was handed to the Result, so drop it to avoid
// aliasing a caller's data, and drop the context and emit hook so a
// pooled machine cannot keep a request's context or sink alive.
func (p *Prepared) release(m *machine) {
	m.g = p.g // drop any pinned snapshot reference
	m.rows = nil
	m.stats = nil
	m.done = nil
	m.ctx = nil
	m.emit = nil
	m.trackDistinct = false
	if m.psteps != nil {
		// Profiled machines carry an instrumented step chain; they are
		// single-use and never pooled, so a later unprofiled execution
		// cannot pick up (and pay for) the counter increments.
		return
	}
	p.pool.Put(m)
}

// ---- pattern compilation ----

// move is one step of a pattern traversal plan, compiled: the node's
// constraints are symbol-resolved and the traversal direction, source
// slot, and scan label are fixed.
type move struct {
	node cnode
	// Start moves.
	start     bool
	scanLabel storage.SymbolID
	// Expansion moves.
	etype    storage.SymbolID
	outgoing bool
	fromSlot int
	// scanName/typeName are the human-readable step targets PROFILE
	// reports: the scanned label (or bound variable) and the expanded edge
	// type. Display-only; execution goes through the interned IDs above.
	scanName string
	typeName string
	// bound marks moves whose node variable is already bound when the
	// move runs (join back-edges, repeated variables): the move checks
	// instead of binding.
	bound bool
}

// cnode is a node pattern's compiled constraint set.
type cnode struct {
	slot   int
	labels []storage.SymbolID
	props  []cprop
}

// cprop is one inline property equality constraint. keyName keeps the
// source-level property name alongside the interned ID: statistics
// probes (storage.Statistics.MayHaveProp) take names, and a name that
// never interned (key == NoSymbol) is itself a provably-empty signal.
type cprop struct {
	key     storage.SymbolID
	keyName string
	want    graph.Value
}

// rootProbe is the compiled bloom/statistics guard for a plan whose root
// is an unbound label scan with inline property constraints.
type rootProbe struct {
	label string
	props []cprop
}

// provablyEmpty reports whether g's statistics prove that no vertex
// under the probed label carries one of the root node's required
// property values — in which case the label scan cannot emit a row and
// may be skipped outright. Conservative: a backend without statistics
// (or one whose answers are currently diluted by live writes) makes
// this return false and the scan runs normally.
func (rp *rootProbe) provablyEmpty(g storage.FastGraph) bool {
	st, ok := g.(storage.Statistics)
	if !ok {
		return false
	}
	for i := range rp.props {
		if !st.MayHaveProp(rp.label, rp.props[i].keyName, rp.props[i].want) {
			return true
		}
	}
	return false
}

func (m *machine) checkNode(n *cnode, v storage.VID) bool {
	for _, l := range n.labels {
		if !m.g.HasLabelID(v, l) {
			return false
		}
	}
	for i := range n.props {
		m.stats.PropsRead++
		got, ok := m.g.PropID(v, n.props[i].key)
		if !ok || !got.Equal(n.props[i].want) {
			return false
		}
	}
	return true
}

// planPattern mirrors the interpreter's planner: pick the cheapest start
// node, expand right then left, and record which moves hit an
// already-bound variable. boundSlots is updated with this pattern's
// bindings for the benefit of later patterns.
func (c *compiler) planPattern(pat *cypher.PathPattern, boundSlots map[int]bool) []move {
	start, bestCost := 0, int64(1)<<62
	for i, n := range pat.Nodes {
		var cost int64
		switch {
		case boundSlots[c.slot(n.Var)]:
			cost = 0
		case len(n.Labels) > 0:
			cost = c.minLabelCount(n.Labels)
			if len(n.Props) > 0 {
				cost /= 16 // property constraints are selective
			}
		default:
			cost = int64(c.g.NumVertices())
		}
		if cost < bestCost {
			start, bestCost = i, cost
		}
	}

	var moves []move
	addStart := func(n *cypher.NodePattern) {
		mv := move{node: c.node(n), start: true, bound: boundSlots[c.slot(n.Var)]}
		if mv.bound {
			mv.scanName = n.Var // PROFILE target: the already-bound variable
		} else {
			// Scan the most selective label; AnySymbol scans everything.
			mv.scanLabel = storage.AnySymbol
			if len(n.Labels) > 0 {
				best := c.g.CountLabel(n.Labels[0])
				mv.scanLabel = c.g.LabelID(n.Labels[0])
				mv.scanName = n.Labels[0]
				for _, l := range n.Labels[1:] {
					if cnt := c.g.CountLabel(l); cnt < best {
						mv.scanLabel, best = c.g.LabelID(l), cnt
						mv.scanName = l
					}
				}
			}
			boundSlots[mv.node.slot] = true
		}
		moves = append(moves, mv)
	}
	addExpand := func(n *cypher.NodePattern, rel *cypher.RelPattern, fromNode *cypher.NodePattern, leftToRight bool) {
		mv := move{
			node:     c.node(n),
			etype:    c.g.TypeID(rel.Type),
			outgoing: (rel.Dir == cypher.DirOut) == leftToRight,
			fromSlot: c.slot(fromNode.Var),
			bound:    boundSlots[c.slot(n.Var)],
			typeName: rel.Type,
		}
		boundSlots[mv.node.slot] = true
		moves = append(moves, mv)
	}
	addStart(pat.Nodes[start])
	for j := start + 1; j < len(pat.Nodes); j++ {
		addExpand(pat.Nodes[j], pat.Rels[j-1], pat.Nodes[j-1], true)
	}
	for j := start - 1; j >= 0; j-- {
		addExpand(pat.Nodes[j], pat.Rels[j], pat.Nodes[j+1], false)
	}
	return moves
}

func (c *compiler) minLabelCount(labels []string) int64 {
	best := c.g.CountLabel(labels[0])
	for _, l := range labels[1:] {
		if cnt := c.g.CountLabel(l); cnt < best {
			best = cnt
		}
	}
	return int64(best)
}

// node compiles a node pattern's constraints.
func (c *compiler) node(n *cypher.NodePattern) cnode {
	cn := cnode{slot: c.slot(n.Var)}
	for _, l := range n.Labels {
		cn.labels = append(cn.labels, c.g.LabelID(l))
	}
	// Sorted for deterministic check order (the source map has none).
	keys := make([]string, 0, len(n.Props))
	for k := range n.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cn.props = append(cn.props, cprop{key: c.g.KeyID(k), keyName: k, want: n.Props[k]})
	}
	return cn
}

// moveStep builds m's executable step for move idx. The iterator callbacks
// are constructed here, once per machine, and reused across executions and
// rows. Profiled machines (m.psteps allocated before the chain is built)
// get the PROFILE increments baked in as build-time wrappers — `produced`
// by wrapping next, `visited` by wrapping the callback — so plain machines
// run closures with no profiling code at all.
func (p *Prepared) moveStep(m *machine, idx int, mv move, next step) step {
	node := mv.node
	var ps *stepCounts
	if m.psteps != nil {
		ps = &m.psteps[idx]
		inner := next
		next = func() error {
			ps.produced++
			return inner()
		}
	}
	switch {
	case mv.start && mv.bound:
		check := func() error {
			if !m.checkNode(&node, m.slots[node.slot]) {
				return nil
			}
			return next()
		}
		if ps == nil {
			return check
		}
		return func() error {
			ps.visited++
			return check()
		}
	case mv.start:
		scan := func(v storage.VID) bool {
			m.stats.VerticesScanned++
			if m.canceled() {
				return false
			}
			if !m.checkNode(&node, v) {
				return true
			}
			m.rootMatched = true
			m.slots[node.slot] = v
			m.err = next()
			m.slots[node.slot] = unbound
			return m.err == nil
		}
		if ps != nil {
			plain := scan
			scan = func(v storage.VID) bool {
				ps.visited++
				return plain(v)
			}
		}
		// The chain is linked last move first, so the final assignment —
		// the plan's root move — wins: m.rootScan is exactly the callback
		// the morsel driver must feed partitioned scans into.
		m.rootScan = scan
		label := mv.scanLabel
		if idx == 0 && p.probe != nil {
			// Statistics-guarded root: consult the store's persisted
			// per-(label,property) filters before paying for the scan. A
			// definitive "absent" answer skips the scan entirely; a
			// "maybe" that then matches nothing is a false positive.
			// Re-probed on every execution, so live writes (which flip
			// the store's answers back to "maybe") are always honored.
			probe := p.probe
			return func() error {
				if probe.provablyEmpty(m.g) {
					bloomSkips.Add(1)
					return nil
				}
				m.rootMatched = false
				m.g.ForEachVertexID(label, scan)
				if m.err == nil && !m.rootMatched {
					bloomFP.Add(1)
				}
				return m.err
			}
		}
		return func() error {
			m.g.ForEachVertexID(label, scan)
			return m.err
		}
	default:
		// The expand callback hands the typed iteration to the store's
		// ForEach*ID: on type-segmented backends (diskstore v4 after
		// finalize, finalized memstore) that call seeks straight to the
		// matching segment, so neither the store nor this callback filters
		// edges by type. Plans with at most one relationship additionally
		// skip the relationship-uniqueness stack — with a single expand
		// there is no other edge to collide with.
		var expand func(e storage.EID, other storage.VID) bool
		if p.uniqEdges {
			expand = func(e storage.EID, other storage.VID) bool {
				m.stats.EdgesTraversed++
				if m.canceled() {
					return false
				}
				if m.edgeUsed(e) {
					return true // Cypher relationship-uniqueness
				}
				if mv.bound {
					if m.slots[node.slot] != other || !m.checkNode(&node, other) {
						return true
					}
					m.used = append(m.used, e)
					m.err = next()
					m.used = m.used[:len(m.used)-1]
					return m.err == nil
				}
				if !m.checkNode(&node, other) {
					return true
				}
				m.slots[node.slot] = other
				m.used = append(m.used, e)
				m.err = next()
				m.used = m.used[:len(m.used)-1]
				m.slots[node.slot] = unbound
				return m.err == nil
			}
		} else {
			expand = func(e storage.EID, other storage.VID) bool {
				m.stats.EdgesTraversed++
				if m.canceled() {
					return false
				}
				if mv.bound {
					if m.slots[node.slot] != other || !m.checkNode(&node, other) {
						return true
					}
					m.err = next()
					return m.err == nil
				}
				if !m.checkNode(&node, other) {
					return true
				}
				m.slots[node.slot] = other
				m.err = next()
				m.slots[node.slot] = unbound
				return m.err == nil
			}
		}
		if ps != nil {
			plain := expand
			expand = func(e storage.EID, other storage.VID) bool {
				ps.visited++
				return plain(e, other)
			}
		}
		etype, from, outgoing := mv.etype, mv.fromSlot, mv.outgoing
		if outgoing {
			return func() error {
				m.g.ForEachOutID(m.slots[from], etype, expand)
				return m.err
			}
		}
		return func() error {
			m.g.ForEachInID(m.slots[from], etype, expand)
			return m.err
		}
	}
}

// ---- row emission ----

// emitStep builds m's chain terminator: WHERE filter, then group
// accumulation or direct projection. As in moveStep, the PROFILE counter
// increments exist only in the profiled machine's variant of the closure.
func (p *Prepared) emitStep(m *machine) step {
	if m.psteps != nil {
		ps := &m.psteps[len(p.moves)] // the emit step's PROFILE counter slot
		return func() error {
			ps.visited++
			if p.where != nil {
				val, err := p.where(m)
				if err != nil {
					return err
				}
				if ok, _ := truth(val); !ok {
					return nil
				}
			}
			ps.produced++
			return p.emitRow(m)
		}
	}
	return func() error {
		if p.where != nil {
			val, err := p.where(m)
			if err != nil {
				return err
			}
			if ok, _ := truth(val); !ok {
				return nil
			}
		}
		return p.emitRow(m)
	}
}

// emitRow is the emit step's post-WHERE tail: group accumulation or
// projection into the machine's sink.
func (p *Prepared) emitRow(m *machine) error {
	if p.grouped {
		return p.accumulateGroup(m)
	}
	row := make([]graph.Value, len(p.items))
	for i := range p.items {
		v, err := p.items[i].out(m)
		if err != nil {
			return err
		}
		row[i] = v
	}
	if m.emit != nil {
		return m.emit(row)
	}
	m.rows = append(m.rows, row)
	return nil
}

func (p *Prepared) accumulateGroup(m *machine) error {
	m.key = m.key[:0]
	for i, ge := range p.groupExprs {
		v, err := ge(m)
		if err != nil {
			return err
		}
		m.keyScratch[i] = v
		m.key = v.AppendKey(m.key)
		m.key = append(m.key, 0x1f)
	}
	gs, ok := m.groups[string(m.key)]
	if !ok {
		gs = p.newGroup(m.keyScratch)
		key := string(m.key)
		m.groups[key] = gs
		m.order = append(m.order, key)
	}
	for i := range gs.aggs {
		if err := gs.aggs[i].update(&p.aggs[i], m); err != nil {
			return err
		}
	}
	return nil
}

func (p *Prepared) newGroup(keyVals []graph.Value) *groupRow {
	gs := &groupRow{
		keyVals: append([]graph.Value(nil), keyVals...),
		aggs:    make([]aggState, len(p.aggs)),
	}
	for i := range gs.aggs {
		gs.aggs[i].init(&p.aggs[i])
	}
	return gs
}

// finish builds the final result: grouped output, DISTINCT, ORDER BY,
// LIMIT.
func (p *Prepared) finish(m *machine) (*Result, error) {
	if p.grouped {
		// An aggregate-only query over zero rows still yields one row
		// (e.g. COUNT(*) = 0), per Cypher semantics.
		if len(m.order) == 0 && len(p.groupExprs) == 0 {
			m.groups[""] = p.newGroup(nil)
			m.order = append(m.order, "")
		}
		for _, key := range m.order {
			gs := m.groups[key]
			for i := range gs.aggs {
				m.aggVals[i] = gs.aggs[i].final(&p.aggs[i])
			}
			row := make([]graph.Value, len(p.items))
			ki := 0
			for i := range p.items {
				if p.items[i].hasAgg {
					v, err := p.items[i].out(m)
					if err != nil {
						return nil, err
					}
					row[i] = v
				} else {
					row[i] = gs.keyVals[ki]
					ki++
				}
			}
			m.rows = append(m.rows, row)
		}
	}
	rows := m.rows
	if p.distinct {
		seen := map[string]bool{}
		var dedup [][]graph.Value
		for _, row := range rows {
			m.key = appendRowKey(m.key[:0], row)
			if !seen[string(m.key)] {
				seen[string(m.key)] = true
				dedup = append(dedup, row)
			}
		}
		rows = dedup
	}
	if len(p.orderCols) > 0 {
		p.sortRows(rows)
	}
	if p.limit >= 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}
	m.stats.RowsEmitted += int64(len(rows))
	return &Result{Columns: p.cols, Rows: rows}, nil
}

// sortRows orders rows by the plan's ORDER BY columns. Stable, so rows
// the comparator cannot distinguish keep their relative order.
func (p *Prepared) sortRows(rows [][]graph.Value) {
	sort.SliceStable(rows, func(i, j int) bool { return p.rowLess(rows[i], rows[j]) })
}

// rowLess is the plan's ORDER BY comparator: NULLs and incomparables
// sort last regardless of direction. Shared by the serial sort and the
// morsel executor's per-worker top-k heaps, so both paths rank rows
// identically.
func (p *Prepared) rowLess(ra, rb []graph.Value) bool {
	for k, col := range p.orderCols {
		a, b := ra[col], rb[col]
		cmp, ok := a.Compare(b)
		if !ok {
			// NULLs and incomparables sort last.
			switch {
			case a.IsNull() && b.IsNull():
				continue
			case a.IsNull():
				return false
			case b.IsNull():
				return true
			default:
				continue
			}
		}
		if cmp == 0 {
			continue
		}
		if p.orderDesc[k] {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// sortColumns maps each ORDER BY expression to a return column, by alias
// or by identical rendering.
func sortColumns(q *cypher.Query) ([]int, error) {
	cols := make([]int, len(q.OrderBy))
	for i, s := range q.OrderBy {
		found := -1
		text := s.Expr.String()
		for j, ri := range q.Return {
			if ri.Alias != "" && text == ri.Alias {
				found = j
				break
			}
			if ri.Expr.String() == text {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("query: ORDER BY %s does not match a returned column", text)
		}
		cols[i] = found
	}
	return cols, nil
}
