package query

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
)

func TestCacheHitsAndMisses(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name ORDER BY d.name`

	p1, err := c.Get(mem, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(mem, src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Get compiled a new plan instead of hitting the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	res, err := p2.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", rowStrings(res))
	}

	// GetParsed shares the entry with the canonical text form.
	q := cypher.MustParse(src)
	p3, err := c.GetParsed(mem, q)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 && q.String() == src {
		t.Error("GetParsed missed on the canonical text key")
	}

	if _, err := c.Get(mem, `THIS IS NOT CYPHER`); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(2)
	queries := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (i:Indication) RETURN i.desc`,
		`MATCH (r:Risk) RETURN COUNT(*)`,
	}
	plans := make([]*Prepared, len(queries))
	for i, src := range queries {
		p, err := c.Get(mem, src)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = p
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("size after 3 inserts into capacity-2 cache = %d", st.Size)
	}
	// queries[0] was least recently used and must have been evicted …
	p, err := c.Get(mem, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if p == plans[0] {
		t.Error("LRU entry survived eviction")
	}
	// … while the evicted plan stays independently usable.
	if _, err := plans[0].Execute(); err != nil {
		t.Errorf("evicted plan broken: %v", err)
	}
	// queries[2] was touched most recently before the re-insert and must
	// still be cached.
	p2, err := c.Get(mem, queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if p2 != plans[2] {
		t.Error("recently used entry was evicted")
	}
}

func TestCacheCrossGraphIsolation(t *testing.T) {
	g1, g2 := memstore.New(), memstore.New()
	buildMedGraph(t, g1)
	// g2 holds different data under the same labels, so a plan leak across
	// graphs would produce visibly wrong rows (and wrong symbol IDs).
	v, err := g2.AddVertex("Drug")
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetProp(v, "name", graph.S("OnlyInG2")); err != nil {
		t.Fatal(err)
	}

	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name ORDER BY d.name`
	p1, err := c.Get(g1, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(g2, src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("one plan shared across two graphs")
	}
	if st := c.Stats(); st.Size != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want two independent entries", st)
	}
	r1, err := p1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 2 || len(r2.Rows) != 1 || r2.Rows[0][0].Str() != "OnlyInG2" {
		t.Errorf("cross-graph rows wrong: g1=%v g2=%v", rowStrings(r1), rowStrings(r2))
	}
}

func TestCacheConcurrentGet(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(4)
	queries := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (i:Indication) RETURN i.desc`,
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(i.desc)`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := queries[(seed+i)%len(queries)]
				p, err := c.Get(mem, src)
				if err != nil {
					errs <- err
					return
				}
				if _, err := p.Execute(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*50 {
		t.Errorf("stats = %+v, want %d lookups", st, 8*50)
	}
	if st.Size > 3 {
		t.Errorf("cache grew beyond the distinct query count: %+v", st)
	}
}

// gateGraph wraps a store behind the plain Graph interface (hiding its
// native FastGraph, like storetest.stringOnly) and parks any Prepare
// against it inside CountLabel until the gate is released. blocked counts
// the CountLabel calls that found the gate closed — i.e. the number of
// compiles that actually started while the gate was shut — which is how
// the singleflight tests prove "exactly one compile".
type gateGraph struct {
	storage.Graph
	gate    chan struct{}
	blocked atomic.Int32
}

func (g *gateGraph) CountLabel(label string) int {
	select {
	case <-g.gate:
	default:
		g.blocked.Add(1)
		<-g.gate
	}
	return g.Graph.CountLabel(label)
}

// waitFor polls until cond is satisfied or a deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitForStats polls until cond is satisfied or the deadline passes.
func waitForStats(t *testing.T, c *Cache, cond func(CacheStats) bool) {
	t.Helper()
	waitFor(t, func() bool { return cond(c.Stats()) })
}

// TestCacheSingleflightColdMiss proves the singleflight contract: 8
// goroutines cold-missing the same key trigger exactly one Prepare, and
// every one of them receives the same plan. The gate graph holds the
// leader's compile open until the test has observed all 7 followers
// attached to it, so the misses are genuinely concurrent — there is no
// window in which a follower could have hit a completed entry.
func TestCacheSingleflightColdMiss(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	g := &gateGraph{Graph: mem, gate: make(chan struct{})}
	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name ORDER BY d.name`

	const workers = 8
	plans := make([]*Prepared, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i], errs[i] = c.Get(g, src)
		}(i)
	}
	// One leader is now parked inside Prepare (gate closed); wait until
	// the other 7 lookups have attached to its flight and the leader has
	// reached the gate, then let it finish.
	waitForStats(t, c, func(st CacheStats) bool { return st.Shared == workers-1 })
	waitFor(t, func() bool { return g.blocked.Load() == 1 })
	close(g.gate)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if plans[i] == nil || plans[i] != plans[0] {
			t.Errorf("goroutine %d got a different plan pointer", i)
		}
	}
	if got := g.blocked.Load(); got != 1 {
		t.Errorf("%d compiles total, want exactly 1", got)
	}
	st := c.Stats()
	if st.Misses != workers || st.Shared != workers-1 || st.Hits != 0 || st.Size != 1 {
		t.Errorf("stats = %+v, want %d misses / %d shared / 0 hits / size 1", st, workers, workers-1)
	}
	// The shared plan must actually run.
	res, err := plans[0].Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", rowStrings(res))
	}
}

// TestCacheSingleflightPerKey checks de-duplication is per (query, graph)
// key: concurrent cold misses on two distinct queries compile twice —
// once each — and produce two distinct plans.
func TestCacheSingleflightPerKey(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	g := &gateGraph{Graph: mem, gate: make(chan struct{})}
	c := NewCache(8)
	queries := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (i:Indication) RETURN i.desc`,
	}

	const perKey = 4
	total := perKey * len(queries)
	plans := make([]*Prepared, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i], errs[i] = c.Get(g, queries[i%len(queries)])
		}(i)
	}
	waitForStats(t, c, func(st CacheStats) bool { return st.Shared == int64(total-len(queries)) })
	waitFor(t, func() bool { return g.blocked.Load() == int32(len(queries)) })
	close(g.gate)
	wg.Wait()

	for i := 0; i < total; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if plans[i] != plans[i%len(queries)] {
			t.Errorf("goroutine %d: plan not shared within its key", i)
		}
	}
	if plans[0] == plans[1] {
		t.Error("distinct queries shared one plan")
	}
	if st := c.Stats(); st.Size != 2 || st.Shared != int64(total-len(queries)) {
		t.Errorf("stats = %+v, want size 2 / shared %d", st, total-len(queries))
	}
}

// panicGraph panics inside the first Prepare that reaches it (after the
// gate opens); later compiles pass through.
type panicGraph struct {
	storage.Graph
	gate     chan struct{}
	panicked atomic.Bool
}

func (g *panicGraph) CountLabel(label string) int {
	<-g.gate
	if g.panicked.CompareAndSwap(false, true) {
		panic("compile blew up")
	}
	return g.Graph.CountLabel(label)
}

// TestCacheSingleflightLeaderPanic checks a panicking compile cannot
// wedge its key: the parked follower is released with an error instead of
// a nil plan, and the next Get retries the compile from scratch.
func TestCacheSingleflightLeaderPanic(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	g := &panicGraph{Graph: mem, gate: make(chan struct{})}
	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name`

	// Two identical workers: whichever registers first leads (and
	// panics); the other attaches as the follower. Roles are decided by
	// the scheduler, so both recover and we sort it out afterwards.
	type result struct {
		plan     *Prepared
		err      error
		panicked bool
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					results[i].panicked = true
				}
			}()
			results[i].plan, results[i].err = c.Get(g, src)
		}(i)
	}
	waitForStats(t, c, func(st CacheStats) bool { return st.Shared == 1 })
	close(g.gate)
	wg.Wait()

	var followers []result
	for _, r := range results {
		if !r.panicked {
			followers = append(followers, r)
		}
	}
	if len(followers) != 1 {
		t.Fatalf("%d workers panicked, want exactly 1 (the leader)", 2-len(followers))
	}
	if f := followers[0]; f.err == nil || f.plan != nil {
		t.Errorf("follower after leader panic got (%v, %v), want a nil plan and an error", f.plan, f.err)
	}
	// The key must not be wedged: a fresh Get compiles successfully.
	p, err := c.Get(g, src)
	if err != nil || p == nil {
		t.Fatalf("Get after leader panic: (%v, %v)", p, err)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Errorf("stats after recovery = %+v, want size 1", st)
	}
}

func TestCachePurge(t *testing.T) {
	g1, g2 := memstore.New(), memstore.New()
	buildMedGraph(t, g1)
	buildMedGraph(t, g2)
	c := NewCache(8)
	queries := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (i:Indication) RETURN i.desc`,
	}
	for _, g := range []storage.Graph{g1, g2} {
		for _, src := range queries {
			if _, err := c.Get(g, src); err != nil {
				t.Fatal(err)
			}
		}
	}
	g1Plan, err := c.Get(g1, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	g2Plan, err := c.Get(g2, queries[0])
	if err != nil {
		t.Fatal(err)
	}

	if n := c.Purge(g1); n != len(queries) {
		t.Errorf("Purge(g1) dropped %d plans, want %d", n, len(queries))
	}
	if st := c.Stats(); st.Size != len(queries) {
		t.Errorf("size after purge = %d, want %d (g2's plans untouched)", st.Size, len(queries))
	}
	// g1's entries are gone: the next Get recompiles …
	p, err := c.Get(g1, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if p == g1Plan {
		t.Error("purged plan still served from the cache")
	}
	// … while g2's survive and previously-held plans stay runnable.
	p2, err := c.Get(g2, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if p2 != g2Plan {
		t.Error("Purge(g1) evicted a g2 plan")
	}
	if _, err := g1Plan.Execute(); err != nil {
		t.Errorf("held plan broken after purge: %v", err)
	}
	// Purging a graph with no entries is a no-op.
	if n := c.Purge(memstore.New()); n != 0 {
		t.Errorf("Purge of unknown graph dropped %d plans", n)
	}
}

// TestCachePurgeInflight checks the race the server's dataset swap relies
// on: a Purge issued while a compile for that graph is still in flight
// must prevent the finished plan from entering the table, while the
// compile's waiters still receive a working plan.
func TestCachePurgeInflight(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	g := &gateGraph{Graph: mem, gate: make(chan struct{})}
	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name`

	var plan *Prepared
	var gerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		plan, gerr = c.Get(g, src)
	}()
	// Wait until the compile is parked inside Prepare, then purge.
	waitFor(t, func() bool { return g.blocked.Load() == 1 })
	if n := c.Purge(g); n != 0 {
		t.Errorf("Purge dropped %d completed plans, want 0 (compile still in flight)", n)
	}
	close(g.gate)
	<-done
	if gerr != nil {
		t.Fatal(gerr)
	}
	if plan == nil {
		t.Fatal("in-flight compile returned no plan")
	}
	if _, err := plan.Execute(); err != nil {
		t.Errorf("plan from purged flight broken: %v", err)
	}
	if st := c.Stats(); st.Size != 0 {
		t.Errorf("purged in-flight compile still entered the cache: %+v", st)
	}
}

// TestCacheSingleflightError checks followers share the leader's error and
// that a failed compile leaves no cache entry (the next Get retries).
func TestCacheSingleflightError(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(8)
	const bad = `MATCH (d:Drug) RETURN nosuchfn(d.name)`

	const workers = 4
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Get(mem, bad)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("goroutine %d: compile error not shared", i)
		}
	}
	if st := c.Stats(); st.Size != 0 {
		t.Errorf("failed compile left a cache entry: %+v", st)
	}
	if _, err := c.Get(mem, bad); err == nil {
		t.Error("retry after failed compile unexpectedly succeeded")
	}
}
