package query

import (
	"sync"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage/memstore"
)

func TestCacheHitsAndMisses(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name ORDER BY d.name`

	p1, err := c.Get(mem, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(mem, src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Get compiled a new plan instead of hitting the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	res, err := p2.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", rowStrings(res))
	}

	// GetParsed shares the entry with the canonical text form.
	q := cypher.MustParse(src)
	p3, err := c.GetParsed(mem, q)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 && q.String() == src {
		t.Error("GetParsed missed on the canonical text key")
	}

	if _, err := c.Get(mem, `THIS IS NOT CYPHER`); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(2)
	queries := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (i:Indication) RETURN i.desc`,
		`MATCH (r:Risk) RETURN COUNT(*)`,
	}
	plans := make([]*Prepared, len(queries))
	for i, src := range queries {
		p, err := c.Get(mem, src)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = p
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("size after 3 inserts into capacity-2 cache = %d", st.Size)
	}
	// queries[0] was least recently used and must have been evicted …
	p, err := c.Get(mem, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if p == plans[0] {
		t.Error("LRU entry survived eviction")
	}
	// … while the evicted plan stays independently usable.
	if _, err := plans[0].Execute(); err != nil {
		t.Errorf("evicted plan broken: %v", err)
	}
	// queries[2] was touched most recently before the re-insert and must
	// still be cached.
	p2, err := c.Get(mem, queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if p2 != plans[2] {
		t.Error("recently used entry was evicted")
	}
}

func TestCacheCrossGraphIsolation(t *testing.T) {
	g1, g2 := memstore.New(), memstore.New()
	buildMedGraph(t, g1)
	// g2 holds different data under the same labels, so a plan leak across
	// graphs would produce visibly wrong rows (and wrong symbol IDs).
	v, err := g2.AddVertex("Drug")
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetProp(v, "name", graph.S("OnlyInG2")); err != nil {
		t.Fatal(err)
	}

	c := NewCache(8)
	const src = `MATCH (d:Drug) RETURN d.name ORDER BY d.name`
	p1, err := c.Get(g1, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(g2, src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("one plan shared across two graphs")
	}
	if st := c.Stats(); st.Size != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want two independent entries", st)
	}
	r1, err := p1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 2 || len(r2.Rows) != 1 || r2.Rows[0][0].Str() != "OnlyInG2" {
		t.Errorf("cross-graph rows wrong: g1=%v g2=%v", rowStrings(r1), rowStrings(r2))
	}
}

func TestCacheConcurrentGet(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	c := NewCache(4)
	queries := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (i:Indication) RETURN i.desc`,
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(i.desc)`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := queries[(seed+i)%len(queries)]
				p, err := c.Get(mem, src)
				if err != nil {
					errs <- err
					return
				}
				if _, err := p.Execute(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*50 {
		t.Errorf("stats = %+v, want %d lookups", st, 8*50)
	}
	if st.Size > 3 {
		t.Errorf("cache grew beyond the distinct query count: %+v", st)
	}
}
