package query

import "sync/atomic"

// Process-wide counters for the statistics-guarded root scan (see
// rootProbe in plan.go). They are package-level rather than per-Stats
// because a skip is a property of the store's persisted filters, not of
// one execution's work: observability surfaces (/metrics, /stats)
// bridge them as monotone totals.
var (
	bloomSkips atomic.Int64 // root scans skipped: statistics proved them empty
	bloomFP    atomic.Int64 // guarded scans that ran ("maybe") but matched nothing
)

// BloomSkips reports how many root label scans were skipped because the
// store's persisted statistics proved no vertex could match the plan's
// inline property constraints.
func BloomSkips() int64 { return bloomSkips.Load() }

// BloomFP reports how many statistics-guarded root scans ran on a
// "maybe" answer and then matched nothing — the observable false
// positives of the store's per-(label,property) bloom filters.
func BloomFP() int64 { return bloomFP.Load() }
