package query

// Morsel-driven intra-query parallelism. A parallel execution partitions
// the plan's root label scan into morsels (storage.PlanVertexScan), runs
// the plan's ordinary compiled step chain over each morsel on a small
// worker pool — each worker owns a pooled machine and a private Stats —
// and merges per-worker results at a sink on the calling goroutine:
//
//   - grouped plans accumulate per-worker partial groups, merged with
//     aggState.merge (counts and sums add, min/max compare, DISTINCT
//     aggregates replay recorded values), then run the ordinary finish;
//   - ORDER BY + LIMIT plans keep a bounded top-k heap per worker and
//     merge the k·workers survivors with one final sort;
//   - all other plans stream rows through a bounded channel in small
//     batches, deduplicating DISTINCT rows through a sharded key set, so
//     a huge result set never materializes outside the consumer.
//
// Workers share one derived context: the first error (or the caller's
// cancellation) cancels it, and every sibling unwinds within cancelMask+1
// iterations via the machines' ordinary cancellation polling.

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/storage"
)

// Tunables of the morsel executor.
const (
	// MinParallelRootCount is the runtime parallelism threshold: root
	// scans over fewer vertices than this execute serially, because the
	// fan-out costs more than it buys on small labels. The count comes
	// from the store's label index (persisted in index.db on diskstore
	// v4), so the decision is one map lookup.
	MinParallelRootCount = 16

	// morselsPerWorker oversplits the root scan so workers that finish
	// early steal remaining morsels instead of idling behind a skewed
	// partition.
	morselsPerWorker = 4

	// rowBatchSize and rowChanDepth bound the streaming pipeline: at most
	// rowChanDepth batches of rowBatchSize rows sit in the channel, plus
	// one batch under construction per worker — the pipeline's whole
	// buffered footprint, independent of result-set size.
	rowBatchSize = 64
	rowChanDepth = 4

	// dedupShards stripes the shared DISTINCT key set so workers contend
	// on a shard's lock, not one global mutex.
	dedupShards = 16
)

// Parallelizable reports the planner's compile-time decision: whether
// this plan's shape is eligible for morsel-driven execution at all.
// Execution still falls back to serial when the worker count is <= 1 or
// the root label has fewer than MinParallelRootCount vertices.
func (p *Prepared) Parallelizable() bool { return p.parallelOK }

// Columns returns the plan's output column names.
func (p *Prepared) Columns() []string { return p.cols }

// ExecuteParallel runs the plan over up to workers morsel workers and
// materializes the result. Any workers value <= 1, an ineligible plan
// shape, or a root label below the parallelism threshold falls back to
// the serial executor, so callers can pass their knob unconditionally.
func (p *Prepared) ExecuteParallel(workers int) (*Result, error) {
	var st Stats
	return p.ExecuteParallelContextWithStats(context.Background(), workers, &st)
}

// ExecuteParallelWithStats is ExecuteParallel accumulating work counters
// into st. Counters are exact: per-worker Stats are merged once at the
// end, so parallel execution reports the same totals serial execution
// would.
func (p *Prepared) ExecuteParallelWithStats(workers int, st *Stats) (*Result, error) {
	return p.ExecuteParallelContextWithStats(context.Background(), workers, st)
}

// ExecuteParallelContextWithStats is the full-control variant: context
// cancellation stops every worker within a bounded number of iterations,
// and work counters accumulate into st.
func (p *Prepared) ExecuteParallelContextWithStats(ctx context.Context, workers int, st *Stats) (*Result, error) {
	g, unpin := p.pinView()
	defer unpin()
	scans := p.planMorsels(g, workers)
	if scans == nil {
		return p.ExecuteContextWithStats(ctx, st)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var rows [][]graph.Value
	err := p.runParallel(ctx, g, scans, min(workers, len(scans)), st, func(batch [][]graph.Value) error {
		rows = append(rows, batch...)
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		rows = [][]graph.Value{}
	}
	return &Result{Columns: p.cols, Rows: rows}, nil
}

// StreamParallelContextWithStats executes the plan and hands result rows
// to fn on the calling goroutine instead of materializing a Result.
// Plain projections (with or without DISTINCT) stream as workers produce
// them with a bounded buffer — rowChanDepth batches of rowBatchSize rows
// plus one batch per worker — so arbitrarily large result sets execute in
// bounded memory. Shapes whose semantics need the full set first
// (grouping, ORDER BY, top-k LIMIT) deliver their rows when the merge
// completes. An error from fn cancels the remaining workers and is
// returned. Row order matches Execute only where ORDER BY forces one.
func (p *Prepared) StreamParallelContextWithStats(ctx context.Context, workers int, st *Stats, fn func(row []graph.Value) error) error {
	deliver := func(batch [][]graph.Value) error {
		for _, row := range batch {
			if err := fn(row); err != nil {
				return err
			}
		}
		return nil
	}
	g, unpin := p.pinView()
	defer unpin()
	if scans := p.planMorsels(g, workers); scans != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		return p.runParallel(ctx, g, scans, min(workers, len(scans)), st, deliver, nil)
	}
	// Serial fallback. Plain projections stream row by row through the
	// machine's emit hook; shapes that buffer anyway (grouping, DISTINCT,
	// ORDER BY, LIMIT) materialize and replay.
	if p.grouped || p.distinct || len(p.orderCols) > 0 || p.limit >= 0 {
		res, err := p.ExecuteContextWithStats(ctx, st)
		if err != nil {
			return err
		}
		return deliver(res.Rows)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m := p.pool.Get().(*machine)
	m.reset(p, st)
	m.done = ctx.Done()
	m.ctx = ctx
	emitted := int64(0)
	m.emit = func(row []graph.Value) error {
		emitted++
		return fn(row)
	}
	err := m.root()
	st.RowsEmitted += emitted
	p.release(m)
	return err
}

// pinView pins the graph state a multi-morsel execution reads. A backend
// that both accepts concurrent mutations and supports snapshots gets a
// pinned point-in-time view, so a background Compact swapping base
// generations mid-query cannot shift the view between morsels; every
// other backend reads live with a no-op unpin. Callers must invoke the
// returned unpin when the execution is done.
func (p *Prepared) pinView() (storage.FastGraph, func()) {
	if _, mutable := p.g.(storage.MutableGraph); mutable {
		if sn, ok := p.g.(storage.Snapshotter); ok {
			s := sn.AcquireSnapshot()
			return s, s.Release
		}
	}
	return p.g, func() {}
}

// planMorsels makes the runtime half of the parallelism decision and, when
// parallel execution pays off, partitions the root scan over g (the
// pinned view from pinView). A nil return means: run serially.
func (p *Prepared) planMorsels(g storage.FastGraph, workers int) []storage.VertexScan {
	if workers <= 1 || !p.parallelOK {
		return nil
	}
	if p.probe != nil && p.probe.provablyEmpty(g) {
		// The statistics guard proves the root scan empty: fall back to
		// the serial path, whose root step performs (and counts) the
		// actual skip — no point partitioning a scan that won't run.
		return nil
	}
	if g.CountLabelID(p.rootLabel) < MinParallelRootCount {
		return nil
	}
	scans := g.PlanVertexScan(p.rootLabel, workers*morselsPerWorker)
	if len(scans) < 2 {
		return nil
	}
	return scans
}

// runParallel is the morsel driver: it fans scans out over workers worker
// goroutines, merges their results per the plan's shape, and hands
// finished row batches to deliver on the calling goroutine. st receives
// the exact merged work counters. profSteps, when non-nil, must have one
// slot per worker; each worker parks its raw PROFILE counters there
// before its machine is released, and the profiled caller folds them.
func (p *Prepared) runParallel(ctx context.Context, g storage.FastGraph, scans []storage.VertexScan, workers int, st *Stats, deliver func([][]graph.Value) error, profSteps [][]stepCounts) error {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// First error wins and cancels every sibling; later failures (usually
	// the induced context.Canceled) are dropped.
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}

	hasDistinctAgg := false
	for i := range p.aggs {
		if p.aggs[i].distinct {
			hasDistinctAgg = true
		}
	}

	// Shape-dependent sinks. Exactly one of these is active:
	// worker machines retained for the group merge, per-worker top-k
	// survivors, or the bounded streaming channel.
	topk := !p.grouped && p.limit >= 0 && len(p.orderCols) > 0
	var (
		machines []*machine
		dedup    *shardedSet
		rowCh    chan [][]graph.Value
		heapMu   sync.Mutex
		pending  [][]graph.Value
	)
	switch {
	case p.grouped:
		machines = make([]*machine, workers)
	case topk:
		if p.distinct {
			dedup = newShardedSet()
		}
	default:
		if p.distinct {
			dedup = newShardedSet()
		}
		rowCh = make(chan [][]graph.Value, rowChanDepth)
	}

	// Workers pull morsel indices from a shared counter (work stealing):
	// a worker stuck on a heavy morsel simply claims fewer of them.
	var next atomic.Int64
	workerStats := make([]Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var m *machine
			if profSteps != nil {
				// Profiled machines carry an instrumented step chain and
				// bypass the pool entirely (release won't pool them back).
				m = p.newProfiledMachine()
			} else {
				m = p.pool.Get().(*machine)
			}
			m.reset(p, &workerStats[w])
			m.g = g // the pinned view, not necessarily p.g
			m.done = wctx.Done()
			m.ctx = wctx
			m.trackDistinct = p.grouped && hasDistinctAgg

			var batch [][]graph.Value
			var tk *topKHeap
			switch {
			case p.grouped:
				// Rows accumulate into m.groups; nothing streams.
			case topk:
				tk = &topKHeap{p: p}
				m.emit = func(row []graph.Value) error {
					if dedup != nil {
						m.key = appendRowKey(m.key[:0], row)
						if !dedup.insert(m.key) {
							return nil
						}
					}
					tk.add(row)
					return nil
				}
			default:
				m.emit = func(row []graph.Value) error {
					if dedup != nil {
						m.key = appendRowKey(m.key[:0], row)
						if !dedup.insert(m.key) {
							return nil
						}
					}
					batch = append(batch, row)
					if len(batch) < rowBatchSize {
						return nil
					}
					out := batch
					batch = make([][]graph.Value, 0, rowBatchSize)
					return sendBatch(wctx, rowCh, out)
				}
			}

			for m.err == nil {
				idx := int(next.Add(1)) - 1
				if idx >= len(scans) {
					break
				}
				scans[idx](m.rootScan)
			}
			err := m.err
			if err == nil && len(batch) > 0 {
				err = sendBatch(wctx, rowCh, batch)
			}
			if err != nil {
				fail(err)
			}
			if profSteps != nil {
				// Park the counters before release clears the machine's
				// reference; the slice itself survives for the caller's fold.
				profSteps[w] = m.psteps
			}
			switch {
			case p.grouped:
				// Retained: the sink merge below still reads m.groups (and
				// adopts its groupRow pointers), so the machine is released
				// only after the merge.
				machines[w] = m
			case topk:
				heapMu.Lock()
				pending = append(pending, tk.rows...)
				heapMu.Unlock()
				p.release(m)
			default:
				p.release(m)
			}
		}(w)
	}

	// Sink side. For the streaming shape, consume until every worker is
	// done; a deliver error cancels the workers but keeps draining so no
	// worker stays blocked on a full channel.
	var deliverErr error
	delivered := int64(0)
	gather := len(p.orderCols) > 0 && !topk && !p.grouped
	var gathered [][]graph.Value
	if rowCh != nil {
		go func() {
			wg.Wait()
			close(rowCh)
		}()
		for batch := range rowCh {
			if deliverErr != nil {
				continue
			}
			if gather {
				// ORDER BY without LIMIT: rows must be sorted before the
				// consumer sees them, so gather and deliver after the sort.
				gathered = append(gathered, batch...)
				continue
			}
			if err := deliver(batch); err != nil {
				deliverErr = err
				fail(err)
				continue
			}
			delivered += int64(len(batch))
		}
	} else {
		wg.Wait()
	}
	// All workers have finished: merging their Stats (and reading failErr)
	// is race-free from here on.
	for i := range workerStats {
		st.Add(workerStats[i])
	}
	if failErr != nil {
		return failErr
	}

	switch {
	case p.grouped:
		sink := p.pool.Get().(*machine)
		sink.reset(p, st)
		var mergeErr error
		for _, wm := range machines {
			if mergeErr == nil {
				mergeErr = p.mergeGroups(sink, wm)
			}
			p.release(wm)
		}
		if mergeErr != nil {
			p.release(sink)
			return mergeErr
		}
		res, err := p.finish(sink)
		p.release(sink)
		if err != nil {
			return err
		}
		return deliver(res.Rows)
	case topk:
		p.sortRows(pending)
		if len(pending) > p.limit {
			pending = pending[:p.limit]
		}
		st.RowsEmitted += int64(len(pending))
		return deliver(pending)
	case gather:
		p.sortRows(gathered)
		st.RowsEmitted += int64(len(gathered))
		return deliver(gathered)
	default:
		st.RowsEmitted += delivered
		return nil
	}
}

// mergeGroups folds src's partial groups into the sink machine dst:
// groups whose key dst has not seen are adopted wholesale (pointer move,
// no copying), colliding groups merge aggregate state pairwise. Workers
// are merged in index order, so grouped output order is deterministic for
// a fixed partitioning even though it differs from serial order — finish
// re-sorts when the query ordered its output.
func (p *Prepared) mergeGroups(dst, src *machine) error {
	for _, key := range src.order {
		sg := src.groups[key]
		dg, ok := dst.groups[key]
		if !ok {
			dst.groups[key] = sg
			dst.order = append(dst.order, key)
			continue
		}
		for i := range dg.aggs {
			if err := dg.aggs[i].merge(&p.aggs[i], &sg.aggs[i], &dst.scratch); err != nil {
				return err
			}
		}
	}
	return nil
}

// sendBatch hands one row batch to the sink, giving up when the shared
// context is canceled so a worker never blocks on a full channel after
// the sink has stopped consuming.
func sendBatch(ctx context.Context, ch chan<- [][]graph.Value, batch [][]graph.Value) error {
	select {
	case ch <- batch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// shardedSet is the parallel DISTINCT filter: one key set striped over
// dedupShards locks, shared by every worker, so the first producer of a
// row wins regardless of which partition it came from.
type shardedSet struct {
	shards [dedupShards]struct {
		mu sync.Mutex
		m  map[string]struct{}
	}
}

func newShardedSet() *shardedSet {
	s := &shardedSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]struct{})
	}
	return s
}

// insert reports whether key was absent, inserting it if so.
func (s *shardedSet) insert(key []byte) bool {
	// FNV-1a: the shard index only needs dispersal, not cryptography.
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	sh := &s.shards[h%dedupShards]
	sh.mu.Lock()
	_, dup := sh.m[string(key)]
	if !dup {
		sh.m[string(key)] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// topKHeap keeps the plan's LIMIT best rows under rowLess as a max-heap
// rooted at the worst kept row, so each worker retains at most LIMIT rows
// no matter how many its morsels produce. A row that ties the current
// worst is not admitted — with ties, any valid top-k is acceptable.
type topKHeap struct {
	p    *Prepared
	rows [][]graph.Value
}

// worse reports whether rows[i] sorts strictly after rows[j].
func (h *topKHeap) worse(i, j int) bool { return h.p.rowLess(h.rows[j], h.rows[i]) }

func (h *topKHeap) add(row []graph.Value) {
	limit := h.p.limit
	if limit == 0 {
		return
	}
	if len(h.rows) < limit {
		h.rows = append(h.rows, row)
		h.up(len(h.rows) - 1)
		return
	}
	if h.p.rowLess(row, h.rows[0]) {
		h.rows[0] = row
		h.down(0)
	}
}

func (h *topKHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			return
		}
		h.rows[i], h.rows[parent] = h.rows[parent], h.rows[i]
		i = parent
	}
}

func (h *topKHeap) down(i int) {
	n := len(h.rows)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.worse(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.rows[i], h.rows[worst] = h.rows[worst], h.rows[i]
		i = worst
	}
}
