package query

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
)

// buildMedGraph creates the paper's Figure 1(b)-style direct-mapped graph:
//
//	drug1(Aspirin) -treat-> ind1(Fever), ind2(Headache)
//	drug1 -has-> di1(DrugInteraction) <-isA- dfi1, dli1
//	drug2(Ibuprofen) -cause-> risk1(Risk) <-unionOf- ci1(ContraIndication)
func buildMedGraph(t *testing.T, b storage.Builder) map[string]storage.VID {
	t.Helper()
	v := map[string]storage.VID{}
	add := func(name string, labels ...string) storage.VID {
		id, err := b.AddVertex(labels...)
		if err != nil {
			t.Fatal(err)
		}
		v[name] = id
		return id
	}
	set := func(name, key string, val graph.Value) {
		if err := b.SetProp(v[name], key, val); err != nil {
			t.Fatal(err)
		}
	}
	edge := func(src, dst, etype string) {
		if _, err := b.AddEdge(v[src], v[dst], etype); err != nil {
			t.Fatal(err)
		}
	}
	add("drug1", "Drug")
	set("drug1", "name", graph.S("Aspirin"))
	set("drug1", "brand", graph.S("Ecotrin"))
	add("drug2", "Drug")
	set("drug2", "name", graph.S("Ibuprofen"))
	set("drug2", "brand", graph.S("Motrin"))
	add("ind1", "Indication")
	set("ind1", "desc", graph.S("Fever"))
	add("ind2", "Indication")
	set("ind2", "desc", graph.S("Headache"))
	add("di1", "DrugInteraction")
	set("di1", "summary", graph.S("Delayed aspirin interaction"))
	add("dfi1", "DrugFoodInteraction")
	set("dfi1", "risk", graph.S("moderate"))
	add("dli1", "DrugLabInteraction")
	set("dli1", "mechanism", graph.S("glucose"))
	add("risk1", "Risk")
	add("ci1", "ContraIndication")
	set("ci1", "desc", graph.S("Asthma"))

	edge("drug1", "ind1", "treat")
	edge("drug1", "ind2", "treat")
	edge("drug1", "di1", "has")
	edge("dfi1", "di1", "isA")
	edge("dli1", "di1", "isA")
	edge("drug2", "risk1", "cause")
	edge("ci1", "risk1", "unionOf")
	return v
}

// forEachBackend runs the test body against both storage backends.
func forEachBackend(t *testing.T, body func(t *testing.T, b storage.Builder)) {
	t.Run("memstore", func(t *testing.T) {
		body(t, memstore.New())
	})
	t.Run("diskstore", func(t *testing.T) {
		s, err := diskstore.Open(t.TempDir(), diskstore.Options{PageSize: 512, CachePages: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		body(t, s)
	})
}

func mustRun(t *testing.T, g storage.Graph, src string) *Result {
	t.Helper()
	res, err := Run(g, cypher.MustParse(src))
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res
}

func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = fmt.Sprint(row)
	}
	return out
}

func TestSingleNodeScan(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (d:Drug) RETURN d.name ORDER BY d.name`)
		want := []string{`["Aspirin"]`, `["Ibuprofen"]`}
		if got := rowStrings(res); !reflect.DeepEqual(got, want) {
			t.Errorf("rows = %v, want %v", got, want)
		}
	})
}

func TestTwoHopPatternThroughUnionVertex(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b,
			`MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name, ci.desc`)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %v", rowStrings(res))
		}
		if res.Rows[0][0].Str() != "Ibuprofen" || res.Rows[0][1].Str() != "Asthma" {
			t.Errorf("row = %v", res.Rows[0])
		}
	})
}

func TestInverseDirectionMatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		// Same hop written from the other side.
		res := mustRun(t, b, `MATCH (i:Indication)<-[:treat]-(d:Drug) RETURN i.desc ORDER BY i.desc`)
		want := []string{`["Fever"]`, `["Headache"]`}
		if got := rowStrings(res); !reflect.DeepEqual(got, want) {
			t.Errorf("rows = %v, want %v", got, want)
		}
	})
}

func TestParentPropertyLookupViaIsA(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (dl:DrugLabInteraction)-[:isA]->(di:DrugInteraction) RETURN di.summary`)
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Delayed aspirin interaction" {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestWhereFilters(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (d:Drug) WHERE d.name = 'Aspirin' RETURN d.brand`)
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Ecotrin" {
			t.Errorf("rows = %v", rowStrings(res))
		}
		res = mustRun(t, b, `MATCH (d:Drug) WHERE d.name <> 'Aspirin' AND NOT d.brand = 'X' RETURN d.name`)
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Ibuprofen" {
			t.Errorf("rows = %v", rowStrings(res))
		}
		// NULL comparisons filter out.
		res = mustRun(t, b, `MATCH (d:Drug) WHERE d.absent = 1 RETURN d.name`)
		if len(res.Rows) != 0 {
			t.Errorf("rows = %v", rowStrings(res))
		}
		// OR with one NULL side still passes when the other is true.
		res = mustRun(t, b, `MATCH (d:Drug) WHERE d.absent = 1 OR d.name = 'Aspirin' RETURN d.name`)
		if len(res.Rows) != 1 {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestInlinePropertyMap(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (d:Drug {name: 'Aspirin'})-[:treat]->(i:Indication) RETURN i.desc ORDER BY i.desc`)
		want := []string{`["Fever"]`, `["Headache"]`}
		if got := rowStrings(res); !reflect.DeepEqual(got, want) {
			t.Errorf("rows = %v, want %v", got, want)
		}
	})
}

func TestAggregationWithImplicitGrouping(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b,
			`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(i.desc) AS n`)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %v", rowStrings(res))
		}
		if res.Rows[0][0].Str() != "Aspirin" || res.Rows[0][1].Int() != 2 {
			t.Errorf("row = %v", res.Rows[0])
		}
		if res.Columns[1] != "n" {
			t.Errorf("columns = %v", res.Columns)
		}
	})
}

func TestSizeCollect(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b,
			`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN size(COLLECT(i.desc)) AS n`)
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestCountStarOnEmptyMatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (x:NoSuchLabel) RETURN COUNT(*)`)
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestSumAvgMinMax(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		for i := 1; i <= 4; i++ {
			v, err := b.AddVertex("N")
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SetProp(v, "x", graph.I(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		res := mustRun(t, b, `MATCH (n:N) RETURN SUM(n.x), AVG(n.x), MIN(n.x), MAX(n.x)`)
		row := res.Rows[0]
		if row[0].Int() != 10 || row[1].Float() != 2.5 || row[2].Int() != 1 || row[3].Int() != 4 {
			t.Errorf("row = %v", row)
		}
	})
}

func TestCountDistinct(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		for i := 0; i < 6; i++ {
			v, err := b.AddVertex("N")
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SetProp(v, "x", graph.I(int64(i%2))); err != nil {
				t.Fatal(err)
			}
		}
		res := mustRun(t, b, `MATCH (n:N) RETURN COUNT(DISTINCT n.x)`)
		if res.Rows[0][0].Int() != 2 {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestReturnDistinctAndLimit(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN DISTINCT d.name`)
		if len(res.Rows) != 1 {
			t.Errorf("distinct rows = %v", rowStrings(res))
		}
		res = mustRun(t, b, `MATCH (i:Indication) RETURN i.desc ORDER BY i.desc DESC LIMIT 1`)
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Headache" {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestMultiPatternJoin(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b,
			`MATCH (d:Drug)-[:treat]->(i:Indication), (d)-[:has]->(di:DrugInteraction) RETURN i.desc, di.summary ORDER BY i.desc`)
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %v", rowStrings(res))
		}
		if res.Rows[0][0].Str() != "Fever" {
			t.Errorf("row0 = %v", res.Rows[0])
		}
	})
}

func TestAnonymousNodesAndUntypedRels(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (d:Drug)-[]->() RETURN COUNT(*)`)
		// drug1: 2 treat + 1 has; drug2: 1 cause.
		if res.Rows[0][0].Int() != 4 {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestRelationshipUniqueness(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		a, _ := b.AddVertex("A")
		c, _ := b.AddVertex("A")
		if _, err := b.AddEdge(a, c, "r"); err != nil {
			t.Fatal(err)
		}
		// A 2-hop pattern a-r->b<-r-c must not reuse the single edge for
		// both hops (Cypher relationship isomorphism).
		res := mustRun(t, b, `MATCH (x:A)-[:r]->(y)<-[:r]-(z:A) RETURN COUNT(*)`)
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("edge reused: %v", rowStrings(res))
		}
	})
}

func TestMultiLabelPattern(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		merged, _ := b.AddVertex("Indication", "Condition")
		if err := b.SetProp(merged, "desc", graph.S("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddVertex("Indication"); err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, b, `MATCH (x:Indication:Condition) RETURN COUNT(*)`)
		if res.Rows[0][0].Int() != 1 {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestStatsCounters(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	var st Stats
	q := cypher.MustParse(`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc`)
	if _, err := RunWithStats(mem, q, &st); err != nil {
		t.Fatal(err)
	}
	if st.EdgesTraversed == 0 || st.VerticesScanned == 0 || st.RowsEmitted != 2 {
		t.Errorf("stats = %+v", st)
	}
	var st2 Stats
	st2.Add(st)
	st2.Add(st)
	if st2.RowsEmitted != 4 {
		t.Errorf("Add: %+v", st2)
	}
}

func TestPlannerStartsAtSmallestLabel(t *testing.T) {
	mem := memstore.New()
	// 100 Big vertices, 1 Small vertex, no edges: the pattern below must
	// start from Small, so the scan count stays tiny.
	for i := 0; i < 100; i++ {
		if _, err := mem.AddVertex("Big"); err != nil {
			t.Fatal(err)
		}
	}
	small, _ := mem.AddVertex("Small")
	big0 := storage.VID(0)
	if _, err := mem.AddEdge(small, big0, "r"); err != nil {
		t.Fatal(err)
	}
	var st Stats
	q := cypher.MustParse(`MATCH (b:Big)<-[:r]-(s:Small) RETURN COUNT(*)`)
	res, err := RunWithStats(mem, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows = %v", rowStrings(res))
	}
	if st.VerticesScanned > 5 {
		t.Errorf("planner scanned %d vertices, expected to start from Small", st.VerticesScanned)
	}
}

func TestErrorAggregateInWhere(t *testing.T) {
	mem := memstore.New()
	q := cypher.MustParse(`MATCH (a:A) WHERE COUNT(*) > 1 RETURN a`)
	if _, err := Run(mem, q); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
}

func TestErrorMixedAggregateItem(t *testing.T) {
	mem := memstore.New()
	q := cypher.MustParse(`MATCH (a:A) RETURN a.x = COUNT(*)`)
	if _, err := Run(mem, q); err == nil {
		t.Error("mixed aggregate item accepted")
	}
}

func TestErrorOrderByUnknownColumn(t *testing.T) {
	mem := memstore.New()
	q := cypher.MustParse(`MATCH (a:A) RETURN a.x ORDER BY a.y`)
	if _, err := Run(mem, q); err == nil {
		t.Error("ORDER BY non-returned column accepted")
	}
}

func TestOrderByAlias(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		res := mustRun(t, b, `MATCH (i:Indication) RETURN i.desc AS d ORDER BY d DESC`)
		if res.Rows[0][0].Str() != "Headache" {
			t.Errorf("rows = %v", rowStrings(res))
		}
	})
}

func TestBackendsAgreeOnAllQueries(t *testing.T) {
	queries := []string{
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, i.desc`,
		`MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name, ci.desc`,
		`MATCH (dl:DrugLabInteraction)-[:isA]->(di:DrugInteraction) RETURN di.summary`,
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc))`,
		`MATCH (d:Drug) WHERE d.name = 'Aspirin' OR d.brand = 'Motrin' RETURN d.name, d.brand`,
		`MATCH (d:Drug)-[]->() RETURN COUNT(*)`,
	}
	mem := memstore.New()
	buildMedGraph(t, mem)
	disk, err := diskstore.Open(t.TempDir(), diskstore.Options{PageSize: 512, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	buildMedGraph(t, disk)
	for _, src := range queries {
		rm := mustRun(t, mem, src)
		rd := mustRun(t, disk, src)
		SortRowsForComparison(rm.Rows)
		SortRowsForComparison(rd.Rows)
		if !reflect.DeepEqual(rowStrings(rm), rowStrings(rd)) {
			t.Errorf("backend disagreement on %q:\n mem: %v\ndisk: %v", src, rowStrings(rm), rowStrings(rd))
		}
	}
}
