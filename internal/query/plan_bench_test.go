package query

import (
	"testing"

	"repro/internal/cypher"
	"repro/internal/storage/memstore"
)

// The two benchmarks below isolate what compile-once buys: Prepared
// executes a ready plan, PerCall pays Clone+plan+symbol-resolution on
// every run the way the interpreter used to.

func benchGraphAndQuery(b *testing.B) (*memstore.Store, *cypher.Query) {
	mem := memstore.New()
	buildTwoHopGraph(b, mem, 16) // 256 bindings
	return mem, cypher.MustParse(
		`MATCH (a:A)-[:r]->(b:B)-[:s]->(c:C) RETURN COUNT(*)`)
}

func BenchmarkTwoHopPrepared(b *testing.B) {
	mem, q := benchGraphAndQuery(b)
	p, err := Prepare(mem, q)
	if err != nil {
		b.Fatal(err)
	}
	var st Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ExecuteWithStats(&st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoHopPerCall(b *testing.B) {
	mem, q := benchGraphAndQuery(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(mem, q); err != nil {
			b.Fatal(err)
		}
	}
}
