package query

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/cypher"
	"repro/internal/storage"
)

// Cache is a bounded, concurrency-safe cache of Prepared plans keyed by
// (query text, graph identity). Ad-hoc callers that cannot hold on to a
// plan themselves get compile-once behavior for free: the first Get for a
// query compiles it, every later Get returns the shared plan, and because
// Prepared plans are immutable the same plan can be handed to any number
// of concurrent executors.
//
// Cold misses are de-duplicated (singleflight): when N goroutines Get the
// same uncached key concurrently, exactly one parses and compiles while
// the other N-1 wait and share its plan (or its error). The Shared stat
// counts those piggy-backed lookups, so compiles attempted is always
// Misses - Shared.
//
// Graph identity is the storage.Graph value itself, so the graph's dynamic
// type must be comparable — true for both built-in backends and any
// pointer-typed store. Plans for different graphs never collide even when
// the query text matches, because symbol IDs are store-specific.
//
// Eviction is LRU: when the cache holds capacity plans and a new (graph,
// text) pair arrives, the least recently used plan is dropped. Evicted
// plans remain valid for callers already holding them.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	table    map[cacheKey]*list.Element
	inflight map[cacheKey]*flight
	hits     int64
	misses   int64
	shared   int64
}

type cacheKey struct {
	g    storage.Graph
	text string
}

type cacheEntry struct {
	key  cacheKey
	plan *Prepared
}

// flight is one in-progress compile. The leader fills plan/err and closes
// done; followers block on done and read the results afterwards, so no
// lock guards the two fields.
type flight struct {
	done chan struct{}
	plan *Prepared
	err  error
	// purged is set (under Cache.mu) when Purge ran for the flight's graph
	// while the compile was still in flight: the leader then hands its plan
	// to the waiters but does not insert it into the table.
	purged bool
}

// DefaultCacheCapacity bounds a Cache constructed with capacity <= 0.
const DefaultCacheCapacity = 128

// NewCache returns a plan cache holding at most capacity plans
// (DefaultCacheCapacity if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		table:    map[cacheKey]*list.Element{},
		inflight: map[cacheKey]*flight{},
	}
}

// Get returns the cached plan for src against g, parsing and compiling it
// on first sight. Concurrent Gets for a cold key compile exactly once:
// one caller does the work, the rest share the result.
func (c *Cache) Get(g storage.Graph, src string) (*Prepared, error) {
	p, _, err := c.GetWithInfo(g, src)
	return p, err
}

// GetWithInfo is Get additionally reporting whether the plan was served
// from the cache (a hit) rather than compiled (or piggy-backed on an
// in-flight compile). PROFILE traces use it to attribute the plan phase.
func (c *Cache) GetWithInfo(g storage.Graph, src string) (*Prepared, bool, error) {
	return c.get(cacheKey{g: g, text: src}, func() (*Prepared, error) {
		q, err := cypher.Parse(src)
		if err != nil {
			return nil, err
		}
		return Prepare(g, q)
	})
}

// GetParsed is Get for an already-parsed query, keyed by the query's
// canonical rendering. It shares an entry (and in-flight compiles) with
// Get only when Get was called with that exact canonical text;
// non-canonical source strings (extra whitespace, unnormalized literals)
// key separately. Note that building the key renders the AST on every
// call — hot paths should render once and use Get.
func (c *Cache) GetParsed(g storage.Graph, q *cypher.Query) (*Prepared, error) {
	p, _, err := c.get(cacheKey{g: g, text: q.String()}, func() (*Prepared, error) {
		return Prepare(g, q)
	})
	return p, err
}

// get is the shared lookup/singleflight/insert path. compile runs with no
// locks held, at most once per key across all concurrent callers. The
// second result reports whether the plan came from the ready table.
func (c *Cache) get(key cacheKey, compile func() (*Prepared, error)) (*Prepared, bool, error) {
	c.mu.Lock()
	if el, ok := c.table[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		p := el.Value.(*cacheEntry).plan
		c.mu.Unlock()
		return p, true, nil
	}
	c.misses++
	if f, ok := c.inflight[key]; ok {
		// Another goroutine is compiling this key right now: piggy-back
		// on its result instead of compiling again.
		c.shared++
		c.mu.Unlock()
		<-f.done
		return f.plan, false, f.err
	}
	// The sentinel error stands until compile assigns over it, so if
	// compile panics the followers observe an error instead of a nil
	// plan.
	f := &flight{done: make(chan struct{}), err: errInflightAbandoned}
	c.inflight[key] = f
	c.mu.Unlock()

	// Unregister and release followers even if compile panics; a panic
	// must not wedge the key forever (later Gets would attach to the
	// stale flight and block).
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil && !f.purged {
			c.insertLocked(key, f.plan)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.plan, f.err = compile()
	return f.plan, false, f.err
}

// errInflightAbandoned is what singleflight followers see when the
// leader's compile terminated abnormally (panicked) without producing a
// plan or a real error.
var errInflightAbandoned = errors.New("query: in-flight compile was abandoned")

// insertLocked adds a compiled plan, evicting LRU entries over capacity.
// Caller holds c.mu.
func (c *Cache) insertLocked(key cacheKey, p *Prepared) {
	if el, ok := c.table[key]; ok {
		// Shouldn't happen now that cold misses singleflight, but stay
		// safe: keep the cached plan hot and let ours be garbage.
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.table, victim.Value.(*cacheEntry).key)
	}
	c.table[key] = c.lru.PushFront(&cacheEntry{key: key, plan: p})
}

// Purge drops every cached plan compiled against g and returns how many
// were dropped. Compiles for g still in flight are allowed to finish —
// their waiters get a valid plan — but their results are not inserted, so
// after Purge returns no plan for g enters the cache from a compile that
// began before the call. A server swapping datasets purges the outgoing
// graph's plans instead of leaking them until LRU eviction; plans already
// held by callers stay valid, like evicted ones.
func (c *Cache) Purge(g storage.Graph) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.g == g {
			c.lru.Remove(el)
			delete(c.table, e.key)
			n++
		}
	}
	for key, f := range c.inflight {
		if key.g == g {
			f.purged = true
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits int64
	// Misses counts lookups that found no ready plan; the subset that
	// attached to a compile already in flight is also counted in Shared,
	// so compiles attempted = Misses - Shared.
	Misses int64
	// Shared counts cold lookups served by another goroutine's in-flight
	// compile (the singleflight wins).
	Shared   int64
	Size     int // plans currently cached
	Capacity int
}

// Stats returns hit/miss/singleflight counters and current occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Shared: c.shared,
		Size: c.lru.Len(), Capacity: c.capacity,
	}
}
