package query

import (
	"container/list"

	"sync"

	"repro/internal/cypher"
	"repro/internal/storage"
)

// Cache is a bounded, concurrency-safe cache of Prepared plans keyed by
// (query text, graph identity). Ad-hoc callers that cannot hold on to a
// plan themselves get compile-once behavior for free: the first Get for a
// query compiles it, every later Get returns the shared plan, and because
// Prepared plans are immutable the same plan can be handed to any number
// of concurrent executors.
//
// Graph identity is the storage.Graph value itself, so the graph's dynamic
// type must be comparable — true for both built-in backends and any
// pointer-typed store. Plans for different graphs never collide even when
// the query text matches, because symbol IDs are store-specific.
//
// Eviction is LRU: when the cache holds capacity plans and a new (graph,
// text) pair arrives, the least recently used plan is dropped. Evicted
// plans remain valid for callers already holding them.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	table    map[cacheKey]*list.Element
	hits     int64
	misses   int64
}

type cacheKey struct {
	g    storage.Graph
	text string
}

type cacheEntry struct {
	key  cacheKey
	plan *Prepared
}

// DefaultCacheCapacity bounds a Cache constructed with capacity <= 0.
const DefaultCacheCapacity = 128

// NewCache returns a plan cache holding at most capacity plans
// (DefaultCacheCapacity if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		table:    map[cacheKey]*list.Element{},
	}
}

// Get returns the cached plan for src against g, parsing and compiling it
// on first sight. Concurrent Gets for the same key may compile the query
// more than once while the entry is cold; all of them receive a valid
// plan, and one of the compiled duplicates wins the cache slot.
func (c *Cache) Get(g storage.Graph, src string) (*Prepared, error) {
	key := cacheKey{g: g, text: src}
	if p, ok := c.lookup(key); ok {
		return p, nil
	}
	q, err := cypher.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := Prepare(g, q)
	if err != nil {
		return nil, err
	}
	c.insert(key, p)
	return p, nil
}

// GetParsed is Get for an already-parsed query, keyed by the query's
// canonical rendering. It shares an entry with Get only when Get was
// called with that exact canonical text; non-canonical source strings
// (extra whitespace, unnormalized literals) key separately. Note that
// building the key renders the AST on every call — hot paths should
// render once and use Get.
func (c *Cache) GetParsed(g storage.Graph, q *cypher.Query) (*Prepared, error) {
	key := cacheKey{g: g, text: q.String()}
	if p, ok := c.lookup(key); ok {
		return p, nil
	}
	p, err := Prepare(g, q)
	if err != nil {
		return nil, err
	}
	c.insert(key, p)
	return p, nil
}

func (c *Cache) lookup(key cacheKey) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.table[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).plan, true
	}
	c.misses++
	return nil, false
}

func (c *Cache) insert(key cacheKey, p *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.table[key]; ok {
		// A concurrent Get compiled the same query first; keep its plan
		// hot and let ours be garbage.
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.table, victim.Value.(*cacheEntry).key)
	}
	c.table[key] = c.lru.PushFront(&cacheEntry{key: key, plan: p})
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits     int64
	Misses   int64
	Size     int // plans currently cached
	Capacity int
}

// Stats returns hit/miss counters and current occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.lru.Len(), Capacity: c.capacity}
}
