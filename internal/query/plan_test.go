package query

import (
	"reflect"
	"testing"

	"repro/internal/cypher"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
)

// stringOnly hides memstore's native fast path so queries compile through
// the generic fallback adapter.
type stringOnly struct{ storage.Graph }

func TestPreparedPlanIsReusable(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		p, err := Prepare(b, cypher.MustParse(
			`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, i.desc ORDER BY i.desc`))
		if err != nil {
			t.Fatal(err)
		}
		var first []string
		for run := 0; run < 3; run++ {
			res, err := p.Execute()
			if err != nil {
				t.Fatalf("run %d: %v", run, err)
			}
			got := rowStrings(res)
			if run == 0 {
				first = got
				if len(first) != 2 {
					t.Fatalf("rows = %v", first)
				}
				continue
			}
			if !reflect.DeepEqual(got, first) {
				t.Errorf("run %d rows = %v, want %v", run, got, first)
			}
		}
	})
}

// TestCompiledMatchesFallback runs the full query battery through the
// generic string-API adapter and compares row-for-row with the native fast
// path, proving the compiled plan does not depend on native SymbolID
// support.
func TestCompiledMatchesFallback(t *testing.T) {
	queries := []string{
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, i.desc`,
		`MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name, ci.desc`,
		`MATCH (d:Drug {name: 'Aspirin'})-[:treat]->(i:Indication) RETURN i.desc`,
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc))`,
		`MATCH (d:Drug) WHERE d.name = 'Aspirin' OR d.brand = 'Motrin' RETURN d.name, d.brand`,
		`MATCH (d:Drug)-[]->() RETURN COUNT(*)`,
		`MATCH (x:NoSuchLabel) RETURN COUNT(*)`,
	}
	mem := memstore.New()
	buildMedGraph(t, mem)
	for _, src := range queries {
		native := mustRun(t, mem, src)
		wrapped, err := Run(stringOnly{mem}, cypher.MustParse(src))
		if err != nil {
			t.Fatalf("fallback Run(%q): %v", src, err)
		}
		SortRowsForComparison(native.Rows)
		SortRowsForComparison(wrapped.Rows)
		if !reflect.DeepEqual(rowStrings(native), rowStrings(wrapped)) {
			t.Errorf("fallback disagreement on %q:\n  native: %v\nfallback: %v",
				src, rowStrings(native), rowStrings(wrapped))
		}
	}
}

// buildTwoHopGraph wires fanout² two-hop paths: A -r-> 10×B -s-> 10×C per
// B, giving fanout² complete bindings per A vertex.
func buildTwoHopGraph(t testing.TB, mem *memstore.Store, fanout int) int {
	a, err := mem.AddVertex("A")
	if err != nil {
		t.Fatal(err)
	}
	bindings := 0
	for i := 0; i < fanout; i++ {
		bv, _ := mem.AddVertex("B")
		if _, err := mem.AddEdge(a, bv, "r"); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < fanout; j++ {
			cv, _ := mem.AddVertex("C")
			if _, err := mem.AddEdge(bv, cv, "s"); err != nil {
				t.Fatal(err)
			}
			bindings++
		}
	}
	return bindings
}

// TestCompiledExecutionAllocs is the allocation regression gate for the
// compiled executor: on a two-hop match the per-binding allocation count
// must stay (amortized) at zero — the plan's slot array, edge stack, and
// key buffer absorb everything, leaving only the handful of fixed per-
// execution allocations (result, row, group bookkeeping).
func TestCompiledExecutionAllocs(t *testing.T) {
	mem := memstore.New()
	bindings := buildTwoHopGraph(t, mem, 12) // 144 bindings per execution
	p, err := Prepare(mem, cypher.MustParse(`MATCH (a:A)-[:r]->(b:B)-[:s]->(c:C) RETURN COUNT(*)`))
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	res, err := p.ExecuteWithStats(&st)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != int64(bindings) {
		t.Fatalf("COUNT(*) = %d, want %d", got, bindings)
	}
	perExec := testing.AllocsPerRun(20, func() {
		if _, err := p.ExecuteWithStats(&st); err != nil {
			t.Fatal(err)
		}
	})
	// ~6 fixed allocations per execution; the bound leaves headroom for
	// runtime jitter while still catching any per-binding regression
	// (which would cost >= bindings allocations).
	if perExec > 16 {
		t.Errorf("compiled execution did %.0f allocs over %d bindings, want <= 16 total", perExec, bindings)
	}
}
