package query

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cypher"
	"repro/internal/storage"
)

// TestInterQueryParallelMatchesSerial is the *inter*-query concurrency
// contract of the compiled executor: one shared Prepared plan executed
// from many goroutines (each running its own serial query) must produce,
// on every call, exactly the rows a serial execution produces — on both
// backends. Under -race this also proves the pooled machines never share
// mutable state. The *intra*-query contract — one query fanned out over
// morsel workers — lives in intraquery_parallel_test.go.
func TestInterQueryParallelMatchesSerial(t *testing.T) {
	queries := []string{
		// Projection with ORDER BY.
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, i.desc ORDER BY i.desc`,
		// Implicit grouping with aggregate state and DISTINCT dedup keys.
		`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(DISTINCT i.desc)`,
		// Multi-hop with relationship-uniqueness stack.
		`MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name, ci.desc`,
		// WHERE filter plus DISTINCT rows.
		`MATCH (d:Drug)-[:treat]->(i:Indication) WHERE d.name = 'Aspirin' RETURN DISTINCT d.name`,
	}
	const goroutines = 8
	const iters = 25
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		for _, src := range queries {
			p, err := Prepare(b, cypher.MustParse(src))
			if err != nil {
				t.Fatalf("Prepare(%q): %v", src, err)
			}
			ref, err := p.Execute()
			if err != nil {
				t.Fatalf("serial Execute(%q): %v", src, err)
			}
			SortRowsForComparison(ref.Rows)
			want := rowStrings(ref)

			var wg sync.WaitGroup
			stats := make([]Stats, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						res, err := p.ExecuteWithStats(&stats[g])
						if err != nil {
							t.Errorf("goroutine %d: Execute(%q): %v", g, src, err)
							return
						}
						SortRowsForComparison(res.Rows)
						if got := rowStrings(res); !reflect.DeepEqual(got, want) {
							t.Errorf("goroutine %d: Execute(%q) rows = %v, want %v", g, src, got, want)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Every execution does identical work, so per-goroutine stats
			// must be exact multiples of one serial run — a cheap way to
			// catch counter cross-talk between pooled machines.
			var serial Stats
			if _, err := p.ExecuteWithStats(&serial); err != nil {
				t.Fatal(err)
			}
			for g := range stats {
				wantStats := Stats{
					VerticesScanned: serial.VerticesScanned * iters,
					EdgesTraversed:  serial.EdgesTraversed * iters,
					PropsRead:       serial.PropsRead * iters,
					RowsEmitted:     serial.RowsEmitted * iters,
				}
				if stats[g] != wantStats {
					t.Errorf("goroutine %d stats = %+v, want %+v (%q)", g, stats[g], wantStats, src)
				}
			}
		}
	})
}

// TestInterQuerySharedPlanViaCache drives the ad-hoc inter-query path end
// to end: many goroutines fetch the same query text through one Cache and
// execute whatever plan they get back, concurrently.
func TestInterQuerySharedPlanViaCache(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildMedGraph(t, b)
		c := NewCache(4)
		const src = `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(i.desc)`
		ref, err := Run(b, cypher.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		SortRowsForComparison(ref.Rows)
		want := rowStrings(ref)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					p, err := c.Get(b, src)
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					res, err := p.Execute()
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					SortRowsForComparison(res.Rows)
					if got := rowStrings(res); !reflect.DeepEqual(got, want) {
						t.Errorf("goroutine %d: rows = %v, want %v", g, got, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
