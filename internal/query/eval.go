// Package query executes parsed Cypher queries against any storage.Graph.
// It implements label-scan starts, path-pattern expansion with Cypher's
// relationship-uniqueness semantics, WHERE filtering with three-valued
// logic, and RETURN projection with implicit grouping for aggregates —
// enough to run the paper's entire microbenchmark and workload queries.
package query

import (
	"fmt"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
)

// env is the evaluation context for one candidate row.
type env struct {
	g     storage.Graph
	vars  map[string]storage.VID
	stats *Stats
	// agg maps aggregate call nodes to their computed value during the
	// output phase of a grouped query; nil during accumulation.
	agg map[*cypher.FuncCall]graph.Value
}

// eval evaluates an expression to a value. Unknown variables and missing
// properties yield NULL, matching Cypher.
func (e *env) eval(x cypher.Expr) (graph.Value, error) {
	switch n := x.(type) {
	case *cypher.Literal:
		return n.Val, nil
	case *cypher.PropAccess:
		v, ok := e.vars[n.Var]
		if !ok {
			return graph.Null, nil
		}
		e.stats.PropsRead++
		val, ok := e.g.Prop(v, n.Key)
		if !ok {
			return graph.Null, nil
		}
		return val, nil
	case *cypher.VarRef:
		v, ok := e.vars[n.Name]
		if !ok {
			return graph.Null, nil
		}
		// Vertices project as an opaque identity token.
		return graph.S(fmt.Sprintf("v%d", v)), nil
	case *cypher.Not:
		val, err := e.eval(n.E)
		if err != nil {
			return graph.Null, err
		}
		if val.IsNull() {
			return graph.Null, nil
		}
		return graph.B(!val.Bool()), nil
	case *cypher.Binary:
		return e.evalBinary(n)
	case *cypher.FuncCall:
		if n.IsAggregate() {
			if e.agg == nil {
				return graph.Null, fmt.Errorf("query: aggregate %s evaluated outside grouping", n.Name)
			}
			val, ok := e.agg[n]
			if !ok {
				return graph.Null, fmt.Errorf("query: aggregate %s has no accumulated state", n.Name)
			}
			return val, nil
		}
		return e.evalScalarFunc(n)
	default:
		return graph.Null, fmt.Errorf("query: unsupported expression %T", x)
	}
}

func (e *env) evalBinary(n *cypher.Binary) (graph.Value, error) {
	switch n.Op {
	case cypher.OpAnd, cypher.OpOr:
		l, err := e.eval(n.L)
		if err != nil {
			return graph.Null, err
		}
		r, err := e.eval(n.R)
		if err != nil {
			return graph.Null, err
		}
		return kleene(n.Op, l, r), nil
	}
	l, err := e.eval(n.L)
	if err != nil {
		return graph.Null, err
	}
	r, err := e.eval(n.R)
	if err != nil {
		return graph.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return graph.Null, nil
	}
	switch n.Op {
	case cypher.OpEq:
		return graph.B(l.Equal(r)), nil
	case cypher.OpNe:
		return graph.B(!l.Equal(r)), nil
	}
	cmp, ok := l.Compare(r)
	if !ok {
		return graph.Null, nil
	}
	switch n.Op {
	case cypher.OpLt:
		return graph.B(cmp < 0), nil
	case cypher.OpGt:
		return graph.B(cmp > 0), nil
	case cypher.OpLe:
		return graph.B(cmp <= 0), nil
	case cypher.OpGe:
		return graph.B(cmp >= 0), nil
	default:
		return graph.Null, fmt.Errorf("query: unsupported operator %v", n.Op)
	}
}

// kleene implements SQL/Cypher three-valued AND/OR.
func kleene(op cypher.BinaryOp, l, r graph.Value) graph.Value {
	lt, ln := truth(l)
	rt, rn := truth(r)
	if op == cypher.OpAnd {
		switch {
		case !ln && !lt, !rn && !rt:
			return graph.B(false)
		case ln || rn:
			return graph.Null
		default:
			return graph.B(true)
		}
	}
	switch {
	case !ln && lt, !rn && rt:
		return graph.B(true)
	case ln || rn:
		return graph.Null
	default:
		return graph.B(false)
	}
}

// truth returns (value, isNull) for a boolean context.
func truth(v graph.Value) (bool, bool) {
	if v.IsNull() {
		return false, true
	}
	return v.Bool(), false
}

func (e *env) evalScalarFunc(n *cypher.FuncCall) (graph.Value, error) {
	switch n.Name {
	case "size":
		val, err := e.eval(n.Args[0])
		if err != nil {
			return graph.Null, err
		}
		switch val.Kind() {
		case graph.KindList:
			return graph.I(int64(val.Len())), nil
		case graph.KindString:
			return graph.I(int64(len(val.Str()))), nil
		case graph.KindNull:
			return graph.Null, nil
		default:
			return graph.Null, nil
		}
	default:
		return graph.Null, fmt.Errorf("query: unknown function %s", n.Name)
	}
}

// aggState accumulates one aggregate call across the rows of a group.
type aggState struct {
	call    *cypher.FuncCall
	count   int64
	sumI    int64
	sumF    float64
	allInt  bool
	items   []graph.Value
	minVal  graph.Value
	maxVal  graph.Value
	seen    map[string]bool // DISTINCT support
	started bool
}

func newAggState(call *cypher.FuncCall) *aggState {
	s := &aggState{call: call, allInt: true}
	if call.Distinct {
		s.seen = map[string]bool{}
	}
	return s
}

// update folds one row into the aggregate.
func (s *aggState) update(e *env) error {
	if s.call.Star {
		s.count++
		return nil
	}
	val, err := e.eval(s.call.Args[0])
	if err != nil {
		return err
	}
	if val.IsNull() {
		return nil // aggregates skip NULLs
	}
	if s.seen != nil {
		k := val.Key()
		if s.seen[k] {
			return nil
		}
		s.seen[k] = true
	}
	switch s.call.Name {
	case "count":
		s.count++
	case "collect":
		s.items = append(s.items, val)
	case "sum", "avg":
		s.count++
		if val.Kind() == graph.KindInt {
			s.sumI += val.Int()
		} else {
			s.allInt = false
		}
		s.sumF += val.Float()
	case "min":
		if !s.started {
			s.minVal, s.started = val, true
		} else if cmp, ok := val.Compare(s.minVal); ok && cmp < 0 {
			s.minVal = val
		}
	case "max":
		if !s.started {
			s.maxVal, s.started = val, true
		} else if cmp, ok := val.Compare(s.maxVal); ok && cmp > 0 {
			s.maxVal = val
		}
	default:
		return fmt.Errorf("query: unknown aggregate %s", s.call.Name)
	}
	return nil
}

// final returns the aggregate's value.
func (s *aggState) final() graph.Value {
	switch s.call.Name {
	case "count":
		return graph.I(s.count)
	case "collect":
		return graph.L(s.items...)
	case "sum":
		if s.allInt {
			return graph.I(s.sumI)
		}
		return graph.F(s.sumF)
	case "avg":
		if s.count == 0 {
			return graph.Null
		}
		return graph.F(s.sumF / float64(s.count))
	case "min":
		if !s.started {
			return graph.Null
		}
		return s.minVal
	case "max":
		if !s.started {
			return graph.Null
		}
		return s.maxVal
	default:
		return graph.Null
	}
}

// collectAggCalls gathers the aggregate FuncCall nodes inside e, in
// evaluation order. Nested aggregates (aggregate inside aggregate) are
// rejected by construction of the parser's one-argument rule plus this
// walk stopping at aggregate boundaries.
func collectAggCalls(e cypher.Expr, into *[]*cypher.FuncCall) {
	switch x := e.(type) {
	case *cypher.FuncCall:
		if x.IsAggregate() {
			*into = append(*into, x)
			return
		}
		for _, a := range x.Args {
			collectAggCalls(a, into)
		}
	case *cypher.Binary:
		collectAggCalls(x.L, into)
		collectAggCalls(x.R, into)
	case *cypher.Not:
		collectAggCalls(x.E, into)
	}
}
