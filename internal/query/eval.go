// Package query executes parsed Cypher queries against any storage.Graph.
// Queries are compiled once (Prepare) into a plan that runs against the
// storage fast path — interned symbol IDs, slot-indexed variable bindings,
// and a fixed traversal order — and can then be executed many times
// (Execute). The executor implements label-scan starts, path-pattern
// expansion with Cypher's relationship-uniqueness semantics, WHERE
// filtering with three-valued logic, and RETURN projection with implicit
// grouping for aggregates — enough to run the paper's entire
// microbenchmark and workload queries.
package query

import (
	"fmt"

	"repro/internal/cypher"
	"repro/internal/graph"
)

// kleene implements SQL/Cypher three-valued AND/OR.
func kleene(op cypher.BinaryOp, l, r graph.Value) graph.Value {
	lt, ln := truth(l)
	rt, rn := truth(r)
	if op == cypher.OpAnd {
		switch {
		case !ln && !lt, !rn && !rt:
			return graph.B(false)
		case ln || rn:
			return graph.Null
		default:
			return graph.B(true)
		}
	}
	switch {
	case !ln && lt, !rn && rt:
		return graph.B(true)
	case ln || rn:
		return graph.Null
	default:
		return graph.B(false)
	}
}

// truth returns (value, isNull) for a boolean context.
func truth(v graph.Value) (bool, bool) {
	if v.IsNull() {
		return false, true
	}
	return v.Bool(), false
}

// aggSpec is one compiled aggregate call: its function name, modifiers,
// and compiled argument. The spec is shared by every group's aggState.
type aggSpec struct {
	name     string // count, collect, sum, avg, min, max
	distinct bool
	star     bool
	arg      cexpr // nil when star
}

// aggState accumulates one aggregate call across the rows of a group.
// States are stored by value inside each group to keep group creation to a
// single allocation.
type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	allInt  bool
	items   []graph.Value
	minmax  graph.Value
	started bool
	seen    map[string]bool // DISTINCT support
}

func (s *aggState) init(spec *aggSpec) {
	s.allInt = true
	if spec.distinct {
		s.seen = map[string]bool{}
	}
}

// update folds the current row into the aggregate.
func (s *aggState) update(spec *aggSpec, m *machine) error {
	if spec.star {
		s.count++
		return nil
	}
	val, err := spec.arg(m)
	if err != nil {
		return err
	}
	if val.IsNull() {
		return nil // aggregates skip NULLs
	}
	if s.seen != nil {
		m.scratch = val.AppendKey(m.scratch[:0])
		if s.seen[string(m.scratch)] {
			return nil
		}
		s.seen[string(m.scratch)] = true
		if m.trackDistinct && spec.name != "collect" {
			// A morsel worker records the accepted values so the sink can
			// replay them through its own seen set at merge time; collect
			// already keeps them in items.
			s.items = append(s.items, val)
		}
	}
	return s.fold(spec, val)
}

// fold applies one accepted value — non-NULL and already DISTINCT-filtered
// — to the running state. Shared by per-row update and cross-worker merge.
func (s *aggState) fold(spec *aggSpec, val graph.Value) error {
	switch spec.name {
	case "count":
		s.count++
	case "collect":
		s.items = append(s.items, val)
	case "sum", "avg":
		s.count++
		if val.Kind() == graph.KindInt {
			s.sumI += val.Int()
		} else {
			s.allInt = false
		}
		s.sumF += val.Float()
	case "min":
		if !s.started {
			s.minmax, s.started = val, true
		} else if cmp, ok := val.Compare(s.minmax); ok && cmp < 0 {
			s.minmax = val
		}
	case "max":
		if !s.started {
			s.minmax, s.started = val, true
		} else if cmp, ok := val.Compare(s.minmax); ok && cmp > 0 {
			s.minmax = val
		}
	default:
		return fmt.Errorf("query: unknown aggregate %s", spec.name)
	}
	return nil
}

// merge folds another partial state for the same spec into s — the sink
// side of the morsel executor's per-worker partial aggregation. For
// DISTINCT aggregates the other state's accepted values (recorded under
// trackDistinct) are replayed through s's seen set so duplicates observed
// by different workers collapse; scratch is the caller's reusable key
// buffer. Non-distinct states combine algebraically: counts and sums add,
// collect concatenates, min/max compares the extremes.
func (s *aggState) merge(spec *aggSpec, o *aggState, scratch *[]byte) error {
	if spec.distinct {
		for _, val := range o.items {
			*scratch = val.AppendKey((*scratch)[:0])
			if s.seen[string(*scratch)] {
				continue
			}
			s.seen[string(*scratch)] = true
			if err := s.fold(spec, val); err != nil {
				return err
			}
		}
		return nil
	}
	switch spec.name {
	case "count":
		s.count += o.count
	case "collect":
		s.items = append(s.items, o.items...)
	case "sum", "avg":
		s.count += o.count
		s.sumI += o.sumI
		s.sumF += o.sumF
		if !o.allInt {
			s.allInt = false
		}
	case "min", "max":
		if o.started {
			return s.fold(spec, o.minmax)
		}
	default:
		return fmt.Errorf("query: unknown aggregate %s", spec.name)
	}
	return nil
}

// final returns the aggregate's value.
func (s *aggState) final(spec *aggSpec) graph.Value {
	switch spec.name {
	case "count":
		return graph.I(s.count)
	case "collect":
		return graph.L(s.items...)
	case "sum":
		if s.allInt {
			return graph.I(s.sumI)
		}
		return graph.F(s.sumF)
	case "avg":
		if s.count == 0 {
			return graph.Null
		}
		return graph.F(s.sumF / float64(s.count))
	case "min", "max":
		if !s.started {
			return graph.Null
		}
		return s.minmax
	default:
		return graph.Null
	}
}
