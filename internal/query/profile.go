package query

// Per-query PROFILE tracing. A profiled execution runs on a machine
// whose step chain was compiled with the counter increments baked in
// (newProfiledMachine); pooled machines compile the plain chain, so the
// unprofiled hot path carries no profiling code at all. A profiled run
// reports per-step operator counters:
// how many vertices/edges/rows each compiled step visited and how many
// it passed downstream. The serving layer returns these in the /query
// response under ?profile=1 (or a PROFILE query prefix) and feeds the
// slow-query log with them.

import (
	"context"

	"repro/internal/graph"
)

// StepProfile is one compiled step's operator counters. Steps appear in
// execution order: the plan's moves (scan / bind / expand_out /
// expand_in), then the terminal project step (WHERE filter + row
// emission or group accumulation).
type StepProfile struct {
	// Op is the step kind: "scan" (unbound label scan), "bind" (start on
	// an already-bound variable), "expand_out"/"expand_in" (adjacency
	// expansion), or "project" (WHERE + emit/group).
	Op string `json:"op"`
	// Target is the scan's label or the expansion's edge type; "*" is the
	// wildcard.
	Target string `json:"target,omitempty"`
	// Bound marks expansions that check an already-bound variable instead
	// of binding a new one (join back-edges).
	Bound bool `json:"bound,omitempty"`
	// Visited counts items the step examined: vertices for scans, edges
	// for expansions, candidate rows for project.
	Visited int64 `json:"visited"`
	// Produced counts items the step passed downstream: bindings that
	// survived the step's checks, or rows emitted by project.
	Produced int64 `json:"produced"`
}

// Profile is one execution's operator trace. Counter totals are exact:
// parallel executions merge every worker's per-step counters, so a
// profiled morsel run reports the same Visited/Produced a serial run
// would.
type Profile struct {
	Steps []StepProfile `json:"steps"`
	// Parallel reports whether the morsel driver ran; Morsels is the
	// number of root-scan partitions it dispatched and Workers the
	// goroutines that consumed them (1 for serial executions).
	Parallel bool `json:"parallel"`
	Morsels  int  `json:"morsels,omitempty"`
	Workers  int  `json:"workers"`
}

// stepCounts is the per-machine mutable half of one StepProfile.
type stepCounts struct{ visited, produced int64 }

// orStar renders the empty wildcard target as "*".
func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

// NewProfile returns the plan's step template: one StepProfile per
// compiled move plus the terminal project step, counters zeroed.
func (p *Prepared) NewProfile() *Profile {
	steps := make([]StepProfile, 0, len(p.moves)+1)
	for _, mv := range p.moves {
		var sp StepProfile
		switch {
		case mv.start && mv.bound:
			sp = StepProfile{Op: "bind", Target: orStar(mv.scanName), Bound: true}
		case mv.start:
			sp = StepProfile{Op: "scan", Target: orStar(mv.scanName)}
		case mv.outgoing:
			sp = StepProfile{Op: "expand_out", Target: orStar(mv.typeName), Bound: mv.bound}
		default:
			sp = StepProfile{Op: "expand_in", Target: orStar(mv.typeName), Bound: mv.bound}
		}
		steps = append(steps, sp)
	}
	steps = append(steps, StepProfile{Op: "project"})
	return &Profile{Steps: steps, Workers: 1}
}

// addSteps folds one machine's raw counters into the profile.
func (prof *Profile) addSteps(counts []stepCounts) {
	for i := range counts {
		if i >= len(prof.Steps) {
			break
		}
		prof.Steps[i].Visited += counts[i].visited
		prof.Steps[i].Produced += counts[i].produced
	}
}

// ExecuteContextProfiled is ExecuteContextWithStats with per-step
// operator counters: it returns the materialized result alongside the
// execution's Profile.
func (p *Prepared) ExecuteContextProfiled(ctx context.Context, st *Stats) (*Result, *Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	prof := p.NewProfile()
	m := p.newProfiledMachine()
	m.done = ctx.Done()
	m.ctx = ctx
	res, err := p.runProfiled(m, st, prof)
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// runProfiled runs a machine built by newProfiledMachine — its step chain
// counts into m.psteps — and folds the counters into prof. release is
// still called for its reference-clearing, but profiled machines never
// re-enter the pool.
func (p *Prepared) runProfiled(m *machine, st *Stats, prof *Profile) (*Result, error) {
	m.reset(p, st)
	var res *Result
	err := m.root()
	if err == nil {
		res, err = p.finish(m)
	}
	prof.addSteps(m.psteps)
	p.release(m)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ExecuteParallelContextProfiled is ExecuteParallelContextWithStats with
// per-step operator counters. The profile reports whether the morsel
// driver actually ran, how many morsels it dispatched, and the exact
// merged per-step counters — identical totals to a serial profiled run.
func (p *Prepared) ExecuteParallelContextProfiled(ctx context.Context, workers int, st *Stats) (*Result, *Profile, error) {
	g, unpin := p.pinView()
	defer unpin()
	scans := p.planMorsels(g, workers)
	if scans == nil {
		return p.ExecuteContextProfiled(ctx, st)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	prof := p.NewProfile()
	prof.Parallel = true
	prof.Morsels = len(scans)
	prof.Workers = min(workers, len(scans))
	profSteps := make([][]stepCounts, prof.Workers)
	var rows [][]graph.Value
	err := p.runParallel(ctx, g, scans, prof.Workers, st, func(batch [][]graph.Value) error {
		rows = append(rows, batch...)
		return nil
	}, profSteps)
	if err != nil {
		return nil, nil, err
	}
	for _, counts := range profSteps {
		prof.addSteps(counts)
	}
	if rows == nil {
		rows = [][]graph.Value{}
	}
	return &Result{Columns: p.cols, Rows: rows}, prof, nil
}

// ExecuteParallelProfiled is the context-free convenience used by the
// pgsquery CLI's -profile flag.
func (p *Prepared) ExecuteParallelProfiled(workers int, st *Stats) (*Result, *Profile, error) {
	return p.ExecuteParallelContextProfiled(context.Background(), workers, st)
}
