package query

import (
	"fmt"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
)

// TestBloomProbeSkipsEmptyScans is the acceptance gate for the
// statistics-guarded root scan: over a batch of property-constrained
// queries whose values provably do not exist, at least 90% of the root
// label scans must be skipped without touching a single vertex, while
// queries for present values keep returning exactly their rows.
func TestBloomProbeSkipsEmptyScans(t *testing.T) {
	s, err := diskstore.Open(t.TempDir(), diskstore.Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buildMedGraph(t, s)
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, ok := any(s).(storage.Statistics); !ok {
		t.Fatal("diskstore does not implement storage.Statistics")
	}

	// Present value: guarded, must not be skipped, must match.
	skips0, fp0 := BloomSkips(), BloomFP()
	res := mustRun(t, s, `MATCH (d:Drug {name: 'Aspirin'}) RETURN d.brand`)
	if got := rowStrings(res); len(got) != 1 || got[0] != `["Ecotrin"]` {
		t.Fatalf("present-value query rows = %v", got)
	}
	if BloomSkips() != skips0 {
		t.Fatal("scan for a present value was wrongly skipped")
	}

	// Empty probes: each query constrains the root on a value that was
	// never written. The guard must skip ≥90% of them (the bloom design
	// FP rate is ~0.8%, so typically all 100 are skipped).
	const probes = 100
	skipped := 0
	for i := 0; i < probes; i++ {
		src := fmt.Sprintf(`MATCH (d:Drug {name: 'absent-%d'}) RETURN d.brand`, i)
		p, err := Prepare(s, cypher.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		before := BloomSkips()
		var st Stats
		r, err := p.ExecuteWithStats(&st)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 0 {
			t.Fatalf("probe %d returned rows: %v", i, rowStrings(r))
		}
		if BloomSkips() > before {
			skipped++
			if st.VerticesScanned != 0 {
				t.Fatalf("probe %d counted as skipped but scanned %d vertices", i, st.VerticesScanned)
			}
		}
	}
	if skipped < probes*90/100 {
		t.Fatalf("bloom guard skipped %d/%d empty probes, want >= 90%%", skipped, probes)
	}
	// Every non-skipped empty probe is an observable false positive.
	if got, want := BloomFP()-fp0, int64(probes-skipped); got != want {
		t.Fatalf("BloomFP advanced by %d, want %d", got, want)
	}
}

// TestBloomProbeHonorsLiveWrites checks the conservative direction: a
// value written after the plan was compiled must be found, because the
// dirty delta flips the store's statistics answers back to "maybe".
func TestBloomProbeHonorsLiveWrites(t *testing.T) {
	s, err := diskstore.Open(t.TempDir(), diskstore.Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buildMedGraph(t, s)
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !s.Live() {
		t.Skip("store not live; cannot test post-finalize writes")
	}

	src := `MATCH (d:Drug {name: 'Nabumetone'}) RETURN d.name`
	p, err := Prepare(s, cypher.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 {
		t.Fatalf("value not yet written matched rows: %v", rowStrings(r))
	}

	res, err := s.ApplyMutations([]storage.Mutation{
		{Op: storage.MutAddVertex, Labels: []string{"Drug"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyMutations([]storage.Mutation{
		{Op: storage.MutSetProp, V: res.Vertices[0], Key: "name", Value: graph.S("Nabumetone")},
	}); err != nil {
		t.Fatal(err)
	}
	r, err = p.Execute() // same compiled plan, re-probed per execution
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(r); len(got) != 1 || got[0] != `["Nabumetone"]` {
		t.Fatalf("live-written value not found through guarded plan: %v", got)
	}
}

// TestBloomProbeMemstoreExact: memstore's statistics are exact, so every
// empty probe is skipped and no false positives are ever recorded.
func TestBloomProbeMemstoreExact(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	fp0 := BloomFP()
	for i := 0; i < 20; i++ {
		before := BloomSkips()
		res := mustRun(t, mem, fmt.Sprintf(`MATCH (d:Drug {name: 'nope-%d'}) RETURN d.name`, i))
		if len(res.Rows) != 0 {
			t.Fatalf("probe %d returned rows: %v", i, rowStrings(res))
		}
		if BloomSkips() != before+1 {
			t.Fatalf("probe %d not skipped on exact-statistics backend", i)
		}
	}
	if BloomFP() != fp0 {
		t.Fatal("exact-statistics backend recorded bloom false positives")
	}
}
