package query

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
)

// buildWideGraph creates n Drug vertices so a cross-product query has
// enough iterations (n*n) for the cancellation checkpoint to fire.
func buildWideGraph(t *testing.T, n int) storage.Builder {
	t.Helper()
	mem := memstore.New()
	for i := 0; i < n; i++ {
		v, err := mem.AddVertex("Drug")
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.SetProp(v, "name", graph.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return mem
}

func TestExecuteContextCompletes(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	p, err := Prepare(mem, cypher.MustParse(`MATCH (d:Drug) RETURN d.name ORDER BY d.name`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Errorf("ExecuteContext rows = %d, Execute rows = %d", len(res.Rows), len(want.Rows))
	}
}

func TestExecuteContextAlreadyCanceled(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	p, err := Prepare(mem, cypher.MustParse(`MATCH (d:Drug) RETURN d.name`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExecuteContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled context: err = %v, want context.Canceled", err)
	}
}

// cancelAfterGraph cancels a context from inside the store once HasLabel
// has been called n times, making mid-query cancellation deterministic:
// the executor must notice within cancelMask+1 further iterations.
type cancelAfterGraph struct {
	storage.Graph
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (g *cancelAfterGraph) HasLabel(v storage.VID, label string) bool {
	if g.calls.Add(1) == g.after {
		g.cancel()
	}
	return g.Graph.HasLabel(v, label)
}

func TestExecuteContextCancelMidQuery(t *testing.T) {
	const n = 600 // n*n iterations without cancellation
	mem := buildWideGraph(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Wrapping hides the native fast path, so the executor goes through
	// the fallback adapter and every scan candidate calls HasLabel.
	g := &cancelAfterGraph{Graph: mem, cancel: cancel, after: 3 * cancelMask}
	p, err := Prepare(g, cypher.MustParse(`MATCH (a:Drug), (b:Drug) RETURN COUNT(*)`))
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	_, err = p.ExecuteContextWithStats(ctx, &st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The full cross product scans ~n*n vertices; cancellation must stop
	// the traversal within one checkpoint interval of the cancel call.
	if limit := int64(4*cancelMask + n); st.VerticesScanned > limit {
		t.Errorf("scanned %d vertices after cancel, want <= %d (~one checkpoint interval)", st.VerticesScanned, limit)
	}
	// The plan (and its pooled machine) must stay usable afterwards.
	res, err := p.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != n*n {
		t.Errorf("post-cancel run: rows = %v, want one COUNT(*) row of %d", rowStrings(res), n*n)
	}
}

func TestExecuteContextDeadline(t *testing.T) {
	const n = 400
	mem := buildWideGraph(t, n)
	p, err := Prepare(mem, cypher.MustParse(`MATCH (a:Drug), (b:Drug) RETURN COUNT(*)`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	if _, err := p.ExecuteContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}
