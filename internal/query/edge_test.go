package query

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
)

// Additional executor edge cases beyond the main battery.

func TestLimitZero(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	res := mustRun(t, mem, `MATCH (d:Drug) RETURN d.name LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

func TestOrderByNullsLast(t *testing.T) {
	mem := memstore.New()
	for i := 0; i < 3; i++ {
		v, _ := mem.AddVertex("N")
		if i != 1 { // leave one vertex without the property
			if err := mem.SetProp(v, "x", graph.I(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := mustRun(t, mem, `MATCH (n:N) RETURN n.x ORDER BY n.x`)
	if !res.Rows[len(res.Rows)-1][0].IsNull() {
		t.Errorf("NULL not sorted last: %v", res.Rows)
	}
}

func TestCollectSkipsNulls(t *testing.T) {
	mem := memstore.New()
	for i := 0; i < 4; i++ {
		v, _ := mem.AddVertex("N")
		if i%2 == 0 {
			if err := mem.SetProp(v, "x", graph.I(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := mustRun(t, mem, `MATCH (n:N) RETURN size(COLLECT(n.x))`)
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("COLLECT kept nulls: %v", res.Rows)
	}
}

func TestAvgOverEmptyGroupIsNull(t *testing.T) {
	mem := memstore.New()
	if _, err := mem.AddVertex("N"); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, mem, `MATCH (n:N) RETURN AVG(n.absent)`)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("AVG over no values = %v, want null", res.Rows[0][0])
	}
}

func TestSizeOfString(t *testing.T) {
	mem := memstore.New()
	v, _ := mem.AddVertex("N")
	if err := mem.SetProp(v, "s", graph.S("hello")); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, mem, `MATCH (n:N) RETURN size(n.s)`)
	if res.Rows[0][0].Int() != 5 {
		t.Errorf("size(string) = %v", res.Rows[0][0])
	}
}

func TestSelfLoopMatching(t *testing.T) {
	// Merged graphs can contain self-loops; a two-node pattern may bind
	// both variables to the same vertex (Cypher only forbids edge reuse).
	mem := memstore.New()
	v, _ := mem.AddVertex("N")
	if _, err := mem.AddEdge(v, v, "r"); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, mem, `MATCH (a:N)-[:r]->(b:N) RETURN COUNT(*)`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("self-loop rows = %v", res.Rows[0][0])
	}
}

func TestParallelEdgesProduceDistinctRows(t *testing.T) {
	mem := memstore.New()
	a, _ := mem.AddVertex("A")
	b, _ := mem.AddVertex("B")
	for i := 0; i < 3; i++ {
		if _, err := mem.AddEdge(a, b, "r"); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, mem, `MATCH (a:A)-[:r]->(b:B) RETURN COUNT(*)`)
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("parallel edges rows = %v, want 3", res.Rows[0][0])
	}
}

func TestGroupingByNullKey(t *testing.T) {
	mem := memstore.New()
	for i := 0; i < 3; i++ {
		v, _ := mem.AddVertex("N")
		if i == 0 {
			if err := mem.SetProp(v, "g", graph.S("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := mustRun(t, mem, `MATCH (n:N) RETURN n.g, COUNT(*)`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	total := int64(0)
	for _, row := range res.Rows {
		total += row[1].Int()
	}
	if total != 3 {
		t.Errorf("group counts sum to %d, want 3", total)
	}
}

func TestLongChainPattern(t *testing.T) {
	mem := memstore.New()
	const n = 6
	ids := make([]storage.VID, n)
	for i := range ids {
		v, _ := mem.AddVertex("N")
		if err := mem.SetProp(v, "i", graph.I(int64(i))); err != nil {
			t.Fatal(err)
		}
		ids[i] = v
	}
	for i := 0; i+1 < n; i++ {
		if _, err := mem.AddEdge(ids[i], ids[i+1], "next"); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, mem,
		`MATCH (a:N)-[:next]->(b:N)-[:next]->(c:N)-[:next]->(d:N)-[:next]->(e:N) RETURN a.i, e.i`)
	if len(res.Rows) != 2 {
		t.Fatalf("chain rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].Int()-row[0].Int() != 4 {
			t.Errorf("chain endpoints %v", row)
		}
	}
}
