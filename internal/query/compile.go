package query

import (
	"fmt"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
)

// cexpr is a compiled expression: a closure tree built once at Prepare
// time that evaluates against the machine's slot bindings without touching
// the AST or resolving any strings.
type cexpr func(m *machine) (graph.Value, error)

// compiler accumulates the variable numbering and symbol resolution for
// one Prepare call.
type compiler struct {
	g     storage.FastGraph
	slots map[string]int
	order []string
}

// slot returns the variable's slot, assigning the next free one on first
// sight. Only pattern variables get slots.
func (c *compiler) slot(name string) int {
	if i, ok := c.slots[name]; ok {
		return i
	}
	i := len(c.order)
	c.slots[name] = i
	c.order = append(c.order, name)
	return i
}

// compileReturn classifies return items, validates aggregate usage, and
// compiles every expression: group keys, aggregate arguments, and output
// items.
func (c *compiler) compileReturn(p *Prepared, q *cypher.Query) error {
	hasAgg := false
	for _, ri := range q.Return {
		if cypher.HasAggregate(ri.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		for _, ri := range q.Return {
			ce, err := c.expr(ri.Expr, nil)
			if err != nil {
				return err
			}
			p.items = append(p.items, citem{out: ce})
		}
		return nil
	}
	p.grouped = true
	aggIdx := map[*cypher.FuncCall]int{}
	for _, ri := range q.Return {
		if !cypher.HasAggregate(ri.Expr) {
			ce, err := c.expr(ri.Expr, nil)
			if err != nil {
				return err
			}
			p.groupExprs = append(p.groupExprs, ce)
			p.items = append(p.items, citem{})
			continue
		}
		if err := validateAggItem(ri.Expr, false); err != nil {
			return err
		}
		var calls []*cypher.FuncCall
		collectAggCalls(ri.Expr, &calls)
		for _, call := range calls {
			aggIdx[call] = len(p.aggs)
			spec := aggSpec{name: call.Name, distinct: call.Distinct, star: call.Star}
			if !call.Star {
				arg, err := c.expr(call.Args[0], nil)
				if err != nil {
					return err
				}
				spec.arg = arg
			}
			p.aggs = append(p.aggs, spec)
		}
		ce, err := c.expr(ri.Expr, aggIdx)
		if err != nil {
			return err
		}
		p.items = append(p.items, citem{hasAgg: true, out: ce})
	}
	return nil
}

// validateAggItem rejects expressions mixing aggregates with free variable
// references outside aggregate arguments (e.g. a.x = COUNT(*)), which our
// implicit-grouping implementation does not support.
func validateAggItem(e cypher.Expr, insideAgg bool) error {
	switch x := e.(type) {
	case *cypher.PropAccess, *cypher.VarRef:
		if !insideAgg {
			return fmt.Errorf("query: %s mixes grouped and aggregated values in one item", e)
		}
	case *cypher.Binary:
		if err := validateAggItem(x.L, insideAgg); err != nil {
			return err
		}
		return validateAggItem(x.R, insideAgg)
	case *cypher.Not:
		return validateAggItem(x.E, insideAgg)
	case *cypher.FuncCall:
		inner := insideAgg || x.IsAggregate()
		for _, a := range x.Args {
			if err := validateAggItem(a, inner); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectAggCalls gathers the aggregate FuncCall nodes inside e, in
// evaluation order. Nested aggregates (aggregate inside aggregate) are
// rejected later when the argument expression is compiled.
func collectAggCalls(e cypher.Expr, into *[]*cypher.FuncCall) {
	switch x := e.(type) {
	case *cypher.FuncCall:
		if x.IsAggregate() {
			*into = append(*into, x)
			return
		}
		for _, a := range x.Args {
			collectAggCalls(a, into)
		}
	case *cypher.Binary:
		collectAggCalls(x.L, into)
		collectAggCalls(x.R, into)
	case *cypher.Not:
		collectAggCalls(x.E, into)
	}
}

var nullExpr cexpr = func(*machine) (graph.Value, error) { return graph.Null, nil }

// expr compiles an expression. aggIdx maps aggregate calls to their state
// index during the output phase; nil means aggregates are not allowed in
// this position (WHERE clauses, group keys, aggregate arguments). Unknown
// variables and missing properties compile to NULL, matching Cypher.
func (c *compiler) expr(e cypher.Expr, aggIdx map[*cypher.FuncCall]int) (cexpr, error) {
	switch n := e.(type) {
	case *cypher.Literal:
		val := n.Val
		return func(*machine) (graph.Value, error) { return val, nil }, nil
	case *cypher.PropAccess:
		slot, ok := c.slots[n.Var]
		if !ok {
			return nullExpr, nil
		}
		key := c.g.KeyID(n.Key)
		return func(m *machine) (graph.Value, error) {
			v := m.slots[slot]
			if v == unbound {
				return graph.Null, nil
			}
			m.stats.PropsRead++
			val, ok := m.g.PropID(v, key)
			if !ok {
				return graph.Null, nil
			}
			return val, nil
		}, nil
	case *cypher.VarRef:
		slot, ok := c.slots[n.Name]
		if !ok {
			return nullExpr, nil
		}
		return func(m *machine) (graph.Value, error) {
			v := m.slots[slot]
			if v == unbound {
				return graph.Null, nil
			}
			// Vertices project as an opaque identity token.
			return graph.S(fmt.Sprintf("v%d", v)), nil
		}, nil
	case *cypher.Not:
		inner, err := c.expr(n.E, aggIdx)
		if err != nil {
			return nil, err
		}
		return func(m *machine) (graph.Value, error) {
			val, err := inner(m)
			if err != nil || val.IsNull() {
				return graph.Null, err
			}
			return graph.B(!val.Bool()), nil
		}, nil
	case *cypher.Binary:
		return c.binary(n, aggIdx)
	case *cypher.FuncCall:
		if n.IsAggregate() {
			if aggIdx == nil {
				return nil, fmt.Errorf("query: aggregate %s evaluated outside grouping", n.Name)
			}
			idx, ok := aggIdx[n]
			if !ok {
				return nil, fmt.Errorf("query: aggregate %s has no accumulated state", n.Name)
			}
			return func(m *machine) (graph.Value, error) { return m.aggVals[idx], nil }, nil
		}
		return c.scalarFunc(n, aggIdx)
	default:
		return nil, fmt.Errorf("query: unsupported expression %T", e)
	}
}

func (c *compiler) binary(n *cypher.Binary, aggIdx map[*cypher.FuncCall]int) (cexpr, error) {
	l, err := c.expr(n.L, aggIdx)
	if err != nil {
		return nil, err
	}
	r, err := c.expr(n.R, aggIdx)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case cypher.OpAnd, cypher.OpOr:
		op := n.Op
		return func(m *machine) (graph.Value, error) {
			lv, err := l(m)
			if err != nil {
				return graph.Null, err
			}
			rv, err := r(m)
			if err != nil {
				return graph.Null, err
			}
			return kleene(op, lv, rv), nil
		}, nil
	case cypher.OpEq:
		return func(m *machine) (graph.Value, error) {
			lv, rv, null, err := evalBoth(m, l, r)
			if null || err != nil {
				return graph.Null, err
			}
			return graph.B(lv.Equal(rv)), nil
		}, nil
	case cypher.OpNe:
		return func(m *machine) (graph.Value, error) {
			lv, rv, null, err := evalBoth(m, l, r)
			if null || err != nil {
				return graph.Null, err
			}
			return graph.B(!lv.Equal(rv)), nil
		}, nil
	case cypher.OpLt, cypher.OpGt, cypher.OpLe, cypher.OpGe:
		op := n.Op
		return func(m *machine) (graph.Value, error) {
			lv, rv, null, err := evalBoth(m, l, r)
			if null || err != nil {
				return graph.Null, err
			}
			cmp, ok := lv.Compare(rv)
			if !ok {
				return graph.Null, nil
			}
			switch op {
			case cypher.OpLt:
				return graph.B(cmp < 0), nil
			case cypher.OpGt:
				return graph.B(cmp > 0), nil
			case cypher.OpLe:
				return graph.B(cmp <= 0), nil
			default:
				return graph.B(cmp >= 0), nil
			}
		}, nil
	default:
		return nil, fmt.Errorf("query: unsupported operator %v", n.Op)
	}
}

// evalBoth evaluates a comparison's operands; null reports whether either
// side is NULL (the comparison then yields NULL).
func evalBoth(m *machine, l, r cexpr) (lv, rv graph.Value, null bool, err error) {
	lv, err = l(m)
	if err != nil {
		return
	}
	rv, err = r(m)
	if err != nil {
		return
	}
	null = lv.IsNull() || rv.IsNull()
	return
}

func (c *compiler) scalarFunc(n *cypher.FuncCall, aggIdx map[*cypher.FuncCall]int) (cexpr, error) {
	switch n.Name {
	case "size":
		arg, err := c.expr(n.Args[0], aggIdx)
		if err != nil {
			return nil, err
		}
		return func(m *machine) (graph.Value, error) {
			val, err := arg(m)
			if err != nil {
				return graph.Null, err
			}
			switch val.Kind() {
			case graph.KindList:
				return graph.I(int64(val.Len())), nil
			case graph.KindString:
				return graph.I(int64(len(val.Str()))), nil
			default:
				return graph.Null, nil
			}
		}, nil
	default:
		return nil, fmt.Errorf("query: unknown function %s", n.Name)
	}
}
