package query

// Intra-query (morsel-driven) parallelism tests: one query fanned out
// over a worker pool must be indistinguishable — rows AND work counters —
// from a serial execution, across the full shape matrix, on both
// backends, including against a diskstore live delta segment. The
// inter-query contract (many goroutines, each serial) lives in
// interquery_parallel_test.go.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
)

// buildPeopleGraph loads n Person vertices (every 11th also Admin) with
// unique names, small-domain age/grp properties for grouping and
// DISTINCT, and two deterministic knows edges per vertex so multi-hop
// patterns produce real fan-out.
func buildPeopleGraph(t testing.TB, b storage.Builder, n int) {
	t.Helper()
	vids := make([]storage.VID, n)
	for i := 0; i < n; i++ {
		labels := []string{"Person"}
		if i%11 == 0 {
			labels = append(labels, "Admin")
		}
		v, err := b.AddVertex(labels...)
		if err != nil {
			t.Fatal(err)
		}
		vids[i] = v
		for k, val := range map[string]graph.Value{
			"name": graph.S(fmt.Sprintf("p%05d", i)),
			"age":  graph.I(int64(i % 13)),
			"grp":  graph.S(fmt.Sprintf("g%d", i%7)),
		} {
			if err := b.SetProp(v, k, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range []int{(i*7 + 1) % n, (i*13 + 5) % n} {
			if _, err := b.AddEdge(vids[i], vids[j], "knows"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// intraShape is one entry of the parallel-vs-serial shape matrix.
type intraShape struct {
	src string
	// ordered marks queries whose ORDER BY induces a total order, so the
	// parallel rows must match serial rows positionally, not just as a
	// multiset.
	ordered bool
}

var intraShapes = []intraShape{
	// Plain projection (the streaming pipeline path).
	{src: `MATCH (p:Person) RETURN p.name`},
	// WHERE filter over the morsel partitions.
	{src: `MATCH (p:Person) WHERE p.age > 5 RETURN p.name, p.age`},
	// Grouped aggregates: every merge rule at once.
	{src: `MATCH (p:Person) RETURN p.grp, COUNT(*), SUM(p.age), AVG(p.age), MIN(p.name), MAX(p.name)`},
	// DISTINCT aggregates (the recorded-value replay merge).
	{src: `MATCH (p:Person) RETURN p.grp, COUNT(DISTINCT p.age), SUM(DISTINCT p.age)`},
	// COLLECT via its order-insensitive size.
	{src: `MATCH (p:Person) RETURN p.grp, size(COLLECT(p.name))`},
	// DISTINCT rows through the sharded key set.
	{src: `MATCH (p:Person) RETURN DISTINCT p.age`},
	// Aggregate over zero rows must still yield its one row in parallel.
	{src: `MATCH (p:Person) WHERE p.age > 100 RETURN COUNT(*), SUM(p.age)`},
	// ORDER BY + LIMIT: per-worker top-k heaps; name is unique, so the
	// order is total and the comparison positional.
	{src: `MATCH (p:Person) RETURN p.name, p.age ORDER BY p.age DESC, p.name LIMIT 25`, ordered: true},
	// DISTINCT + ORDER BY + LIMIT: dedup must run before the top-k cut.
	{src: `MATCH (p:Person) RETURN DISTINCT p.age ORDER BY p.age LIMIT 5`, ordered: true},
	// ORDER BY without LIMIT: gathered and sorted at the sink.
	{src: `MATCH (p:Person) RETURN p.age, p.name ORDER BY p.name`, ordered: true},
	// Multi-hop with the relationship-uniqueness stack active.
	{src: `MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.name, c.name`},
	// Multi-hop feeding grouped aggregation.
	{src: `MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.grp, COUNT(*)`},
	// Grouped + ORDER BY on the aggregate + LIMIT.
	{src: `MATCH (p:Person) RETURN p.grp, COUNT(*) AS n ORDER BY n DESC, p.grp LIMIT 3`, ordered: true},
}

// checkIntraShapes runs every shape serially and at several worker
// counts on g, requiring identical rows and — satellite: exact stats —
// identical work counters.
func checkIntraShapes(t *testing.T, g storage.Graph, wantParallel bool) {
	t.Helper()
	for _, shape := range intraShapes {
		p, err := Prepare(g, cypher.MustParse(shape.src))
		if err != nil {
			t.Fatalf("Prepare(%q): %v", shape.src, err)
		}
		if wantParallel && !p.Parallelizable() {
			t.Errorf("plan for %q should be parallelizable", shape.src)
		}
		var serialStats Stats
		ref, err := p.ExecuteWithStats(&serialStats)
		if err != nil {
			t.Fatalf("serial Execute(%q): %v", shape.src, err)
		}
		wantOrdered := rowStrings(ref)
		SortRowsForComparison(ref.Rows)
		want := rowStrings(ref)

		for _, workers := range []int{2, 4, 8} {
			var pst Stats
			res, err := p.ExecuteParallelContextWithStats(context.Background(), workers, &pst)
			if err != nil {
				t.Fatalf("ExecuteParallel(%q, %d workers): %v", shape.src, workers, err)
			}
			if shape.ordered {
				if got := rowStrings(res); !reflect.DeepEqual(got, wantOrdered) {
					t.Errorf("%q with %d workers: ordered rows = %v, want %v", shape.src, workers, got, wantOrdered)
				}
			}
			SortRowsForComparison(res.Rows)
			if got := rowStrings(res); !reflect.DeepEqual(got, want) {
				t.Errorf("%q with %d workers: rows = %v, want %v", shape.src, workers, got, want)
			}
			if pst != serialStats {
				t.Errorf("%q with %d workers: stats = %+v, want exactly serial %+v", shape.src, workers, pst, serialStats)
			}
		}
	}
}

// TestIntraQueryParallelMatchesSerial is the morsel executor's
// equivalence contract over the full shape matrix, on both backends.
func TestIntraQueryParallelMatchesSerial(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b storage.Builder) {
		buildPeopleGraph(t, b, 420)
		checkIntraShapes(t, b, true)
	})
}

// TestIntraQueryParallelLiveDelta proves morsel partitioning respects the
// live-write merge rules: a finalized diskstore takes post-Finalize
// mutations into its delta segment, and parallel execution over the
// combined base+delta vertex set stays exactly equivalent to serial.
func TestIntraQueryParallelLiveDelta(t *testing.T) {
	s, err := diskstore.Open(t.TempDir(), diskstore.Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const base, extra = 200, 140
	buildPeopleGraph(t, s, base)
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !s.Live() {
		t.Fatal("finalized non-empty diskstore should be in live mode")
	}
	var batch []storage.Mutation
	for i := 0; i < extra; i++ {
		ref := storage.VID(-(i + 1))
		labels := []string{"Person"}
		if i%11 == 0 {
			labels = append(labels, "Admin")
		}
		batch = append(batch,
			storage.Mutation{Op: storage.MutAddVertex, Labels: labels},
			storage.Mutation{Op: storage.MutSetProp, V: ref, Key: "name", Value: graph.S(fmt.Sprintf("q%05d", i))},
			storage.Mutation{Op: storage.MutSetProp, V: ref, Key: "age", Value: graph.I(int64(i % 13))},
			storage.Mutation{Op: storage.MutSetProp, V: ref, Key: "grp", Value: graph.S(fmt.Sprintf("g%d", i%7))},
			storage.Mutation{Op: storage.MutAddEdge, Src: ref, Dst: storage.VID(i % base), Type: "knows"},
			storage.Mutation{Op: storage.MutAddEdge, Src: storage.VID((i * 3) % base), Dst: ref, Type: "knows"},
		)
	}
	if _, err := s.ApplyMutations(batch); err != nil {
		t.Fatal(err)
	}
	if ls := s.LiveStats(); ls.DeltaVertices != extra {
		t.Fatalf("delta vertices = %d, want %d", ls.DeltaVertices, extra)
	}
	// The partitioned scan must cover base postings AND delta members.
	p, err := Prepare(s, cypher.MustParse(`MATCH (p:Person) RETURN COUNT(p.name)`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecuteParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(res); !reflect.DeepEqual(got, []string{fmt.Sprint([]graph.Value{graph.I(base + extra)})}) {
		t.Fatalf("COUNT over base+delta = %v, want %d", got, base+extra)
	}
	checkIntraShapes(t, s, true)
}

// TestIntraQueryParallelDuringCompact is the epoch-swap stress test:
// morsel-parallel queries run while a background Compact folds the live
// delta into a new base generation and swaps epochs mid-query. Every
// parallel execution must stay bit-for-bit equivalent — rows AND work
// counters — to a serial reference taken while the store was quiesced,
// because each query pins one snapshot and the fold only changes the
// physical layout. The delta growing between rounds holds only Filler
// vertices the Person queries never touch, so the logical answer is
// fold-invariant by construction. Run under -race, the schedule itself
// is half the test.
func TestIntraQueryParallelDuringCompact(t *testing.T) {
	s, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const base = 1200
	buildPeopleGraph(t, s, base)
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !s.Live() {
		t.Fatal("finalized non-empty diskstore should be in live mode")
	}

	shapes := []intraShape{
		{src: `MATCH (p:Person) RETURN p.name`},
		{src: `MATCH (p:Person) RETURN p.grp, COUNT(*), SUM(p.age), AVG(p.age), MIN(p.name), MAX(p.name)`},
		{src: `MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.grp, COUNT(*)`},
		{src: `MATCH (p:Person) RETURN p.name, p.age ORDER BY p.age DESC, p.name LIMIT 25`, ordered: true},
	}
	type reference struct {
		shape       intraShape
		p           *Prepared
		want        []string
		wantOrdered []string
		st          Stats
	}

	startGen := s.LiveStats().Generation
	const rounds = 4
	for round := 0; round < rounds; round++ {
		// Grow the delta with vertices no Person query can observe, so
		// the next fold has real work without changing any answer.
		var batch []storage.Mutation
		for i := 0; i < 40; i++ {
			a, b := storage.VID(-(2*i + 1)), storage.VID(-(2*i + 2))
			batch = append(batch,
				storage.Mutation{Op: storage.MutAddVertex, Labels: []string{"Filler"}},
				storage.Mutation{Op: storage.MutAddVertex, Labels: []string{"Filler"}},
				storage.Mutation{Op: storage.MutSetProp, V: a, Key: "pad", Value: graph.I(int64(round*100 + i))},
				storage.Mutation{Op: storage.MutAddEdge, Src: a, Dst: b, Type: "pad"},
			)
		}
		if _, err := s.ApplyMutations(batch); err != nil {
			t.Fatal(err)
		}

		// Quiesced serial references for this round's logical state.
		refs := make([]reference, 0, len(shapes))
		for _, shape := range shapes {
			p, err := Prepare(s, cypher.MustParse(shape.src))
			if err != nil {
				t.Fatalf("Prepare(%q): %v", shape.src, err)
			}
			r := reference{shape: shape, p: p}
			res, err := p.ExecuteWithStats(&r.st)
			if err != nil {
				t.Fatalf("serial Execute(%q): %v", shape.src, err)
			}
			r.wantOrdered = rowStrings(res)
			SortRowsForComparison(res.Rows)
			r.want = rowStrings(res)
			refs = append(refs, r)
		}

		foldDone := make(chan error, 1)
		go func() { foldDone <- s.Compact() }()

		var wg sync.WaitGroup
		for _, r := range refs {
			for _, workers := range []int{2, 4, 8} {
				wg.Add(1)
				go func(r reference, workers int) {
					defer wg.Done()
					var pst Stats
					res, err := r.p.ExecuteParallelContextWithStats(context.Background(), workers, &pst)
					if err != nil {
						t.Errorf("round %d: ExecuteParallel(%q, %d workers): %v", round, r.shape.src, workers, err)
						return
					}
					if r.shape.ordered {
						if got := rowStrings(res); !reflect.DeepEqual(got, r.wantOrdered) {
							t.Errorf("round %d: %q with %d workers mid-fold: ordered rows diverged", round, r.shape.src, workers)
						}
					}
					SortRowsForComparison(res.Rows)
					if got := rowStrings(res); !reflect.DeepEqual(got, r.want) {
						t.Errorf("round %d: %q with %d workers mid-fold: rows diverged from quiesced serial", round, r.shape.src, workers)
					}
					if pst != r.st {
						t.Errorf("round %d: %q with %d workers mid-fold: stats = %+v, want exactly serial %+v", round, r.shape.src, workers, pst, r.st)
					}
				}(r, workers)
			}
		}
		wg.Wait()
		if err := <-foldDone; err != nil {
			t.Fatalf("round %d: background fold: %v", round, err)
		}
	}
	if ls := s.LiveStats(); ls.Generation != startGen+rounds {
		t.Errorf("generation = %d after %d folds, want %d (every round must really swap epochs)",
			ls.Generation, rounds, startGen+rounds)
	}
	if ls := s.LiveStats(); ls.PinnedSnapshots != 0 {
		t.Errorf("%d snapshots still pinned after all queries returned", ls.PinnedSnapshots)
	}
}

// TestIntraQueryPlannerStaysSerial pins the planner's serial choices: a
// LIMIT without ORDER BY keeps the serial early exit, and a root label
// under the threshold falls back at runtime while still answering
// correctly.
func TestIntraQueryPlannerStaysSerial(t *testing.T) {
	b := memstore.New()
	buildPeopleGraph(t, b, 100)
	for _, src := range []string{
		`MATCH (p:Person) RETURN p.name LIMIT 1`,
		`MATCH (p:Person) WHERE p.age = 3 RETURN p.name LIMIT 5`,
	} {
		p, err := Prepare(b, cypher.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if p.Parallelizable() {
			t.Errorf("plan for %q should stay serial (LIMIT without ORDER BY)", src)
		}
	}

	// Admin appears on ~10 of 100 vertices — under MinParallelRootCount,
	// so execution falls back to serial; results must still be exact.
	src := `MATCH (a:Admin) RETURN a.name`
	p, err := Prepare(b, cypher.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Parallelizable() {
		t.Fatalf("plan for %q should be shape-eligible", src)
	}
	if n := b.CountLabel("Admin"); n >= MinParallelRootCount {
		t.Fatalf("test premise broken: Admin count %d >= threshold %d", n, MinParallelRootCount)
	}
	ref, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecuteParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	SortRowsForComparison(ref.Rows)
	SortRowsForComparison(res.Rows)
	if !reflect.DeepEqual(rowStrings(res), rowStrings(ref)) {
		t.Errorf("small-label fallback rows = %v, want %v", rowStrings(res), rowStrings(ref))
	}
}

// TestIntraQueryStreamBoundedAndSerialStream covers the streaming API's
// serial fallback and row fidelity: rows streamed through fn must equal
// the materialized result on both the serial (workers=1) and parallel
// paths.
func TestIntraQueryStreamMatchesExecute(t *testing.T) {
	b := memstore.New()
	buildPeopleGraph(t, b, 420)
	p, err := Prepare(b, cypher.MustParse(`MATCH (p:Person) WHERE p.age > 4 RETURN p.name, p.age`))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	SortRowsForComparison(ref.Rows)
	want := rowStrings(ref)
	for _, workers := range []int{1, 4} {
		var st Stats
		var got [][]graph.Value
		err := p.StreamParallelContextWithStats(context.Background(), workers, &st, func(row []graph.Value) error {
			got = append(got, row)
			return nil
		})
		if err != nil {
			t.Fatalf("Stream with %d workers: %v", workers, err)
		}
		res := &Result{Columns: p.Columns(), Rows: got}
		SortRowsForComparison(res.Rows)
		if !reflect.DeepEqual(rowStrings(res), want) {
			t.Errorf("streamed rows with %d workers = %v, want %v", workers, rowStrings(res), want)
		}
		if st.RowsEmitted != int64(len(want)) {
			t.Errorf("RowsEmitted with %d workers = %d, want %d", workers, st.RowsEmitted, len(want))
		}
	}
}

// TestIntraQueryReaderErrorCancelsScan is the hung/failing-reader
// contract (satellite: cancellation across morsel workers): a consumer
// error must cancel every sibling worker mid-flight — bounded by the
// streaming pipeline's backpressure plus the cancellation polling window
// — rather than after the full scan.
func TestIntraQueryReaderErrorCancelsScan(t *testing.T) {
	const n = 20000
	b := memstore.New()
	buildPeopleGraph(t, b, n)
	p, err := Prepare(b, cypher.MustParse(`MATCH (p:Person) RETURN p.name`))
	if err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("reader hung up")
	var st Stats
	err = p.StreamParallelContextWithStats(context.Background(), 4, &st, func(row []graph.Value) error {
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("stream error = %v, want %v", err, errBoom)
	}
	if st.VerticesScanned == 0 {
		t.Fatal("no work recorded before the failure")
	}
	if st.VerticesScanned >= n/2 {
		t.Errorf("reader failure did not stop the scan mid-flight: scanned %d of %d vertices", st.VerticesScanned, n)
	}
}

// TestIntraQueryContextCancelStopsWorkers mirrors the serving path's
// request-timeout behavior: canceling the caller's context mid-stream
// stops all morsel workers promptly and surfaces context.Canceled.
func TestIntraQueryContextCancelStopsWorkers(t *testing.T) {
	const n = 20000
	b := memstore.New()
	buildPeopleGraph(t, b, n)
	p, err := Prepare(b, cypher.MustParse(`MATCH (p:Person) RETURN p.name`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var st Stats
	calls := 0
	err = p.StreamParallelContextWithStats(ctx, 4, &st, func(row []graph.Value) error {
		calls++
		if calls == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", err)
	}
	if st.VerticesScanned == 0 || st.VerticesScanned >= n/2 {
		t.Errorf("cancel did not stop the scan mid-flight: scanned %d of %d vertices", st.VerticesScanned, n)
	}
}
