package diskstore

// Live-write mode: the durable post-finalize mutation path.
//
// A store is live when its base layout is a finalized v4 store with at
// least one edge (or when a wal.db from a previous live session needs
// replaying). In live mode the base files are frozen — Builder calls are
// rerouted here instead of dirtying pages — and every mutation batch is:
//
//  1. validated and resolved (batch-relative vertex references become
//     absolute VIDs),
//  2. encoded into one WAL record, appended, and fsynced (group commit)
//     — the durability point: the batch is acknowledged only after this,
//  3. applied to the in-memory delta segment the read paths merge.
//
// Crashing before the fsync completes leaves at most a torn record that
// recovery truncates (the batch was never acknowledged); crashing after
// it leaves a whole record that recovery replays. Compact folds the
// delta into a fresh finalized base and checkpoints the WAL.
//
// Concurrency: ApplyMutations calls serialize on liveMu. Readers never
// block on it — they see the delta through its own RWMutex and the
// symbol tables through symMu, which is only engaged in live mode so the
// build-then-read fast path stays lock-free.

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/storage"
)

var (
	_ storage.MutableGraph      = (*Store)(nil)
	_ storage.LiveStatsReporter = (*Store)(nil)
)

// Live reports whether the store accepts ApplyMutations.
func (s *Store) Live() bool { return s.liveMode.Load() }

// LiveStats reports delta segment sizes, WAL activity, and background
// compaction state. Delta sizes are the entries visible beyond the
// current base generation — what the next Compact would fold.
func (s *Store) LiveStats() storage.LiveStats {
	ep := s.curEp()
	ls := storage.LiveStats{
		Live:            s.liveMode.Load(),
		Segmented:       ep.segmented,
		Compressed:      ep.compressed,
		EdgeBytes:       ep.edgeBytes,
		Generation:      s.generation.Load(),
		FoldRunning:     s.folding.Load(),
		FoldProgress:    s.foldProgress.Load(),
		PinnedSnapshots: s.pinnedSnaps.Load(),
		Compactions:     s.compactions.Load(),
	}
	if ls.Live {
		ls.DeltaVertices = max(s.delta.nextV.Load()-ep.numVertices, 0)
		ls.DeltaEdges = max(s.delta.nextE.Load()-ep.numEdges, 0)
	}
	if w := s.wal.Load(); w != nil {
		ls.WALAppends = w.appends.Load()
		ls.WALSyncs = w.syncs.Load()
		ls.WALSyncNanos = w.syncNanos.Load()
		ls.WALBytes = w.bytes.Load()
	}
	return ls
}

// ApplyMutations validates, logs, fsyncs, and applies one batch; see the
// storage.MutableGraph contract. The batch is atomic with respect to
// crashes: it becomes one WAL record, so after reopen either every
// mutation in it is present or none is.
func (s *Store) ApplyMutations(batch []storage.Mutation) (storage.MutationResult, error) {
	var res storage.MutationResult
	if !s.liveMode.Load() {
		return res, fmt.Errorf("diskstore: %w (run Compact to finalize the store first)", storage.ErrNotLive)
	}
	if len(batch) == 0 {
		return res, nil
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	resolved, err := s.resolveBatch(batch)
	if err != nil {
		return res, err
	}
	if err := s.internBatch(resolved); err != nil {
		return res, err
	}
	ops, err := encodeWALOps(resolved)
	if err != nil {
		return res, err
	}
	w, err := s.walHandle()
	if err != nil {
		return res, err
	}
	// Under liveMu the current epoch cannot swap (the fold's commit takes
	// liveMu), so the generation tag and the delta routing below are
	// consistent with each other and with the WAL order.
	seq, err := w.append(ops, len(resolved), uint32(s.cur.gen))
	if err != nil {
		return res, err
	}
	if err := w.sync(seq); err != nil {
		return res, err
	}
	return s.applyToDelta(seq, resolved), nil
}

// walHandle returns the open WAL, creating wal.db on the first live
// mutation — never at Open, so read-only open/close cycles leave the
// store directory untouched.
func (s *Store) walHandle() (*wal, error) {
	if w := s.wal.Load(); w != nil {
		return w, nil
	}
	w, err := openWAL(filepath.Join(s.dir, walFileName))
	if err != nil {
		return nil, err
	}
	// Fresh log: start sequences above the manifest's checkpoint fence so
	// replay's seq <= wal_seq skip can never discard a new record.
	w.seed(w.size, s.walFoldedSeq)
	s.wal.Store(w)
	return w, nil
}

// resolveBatch validates a batch and returns a copy with every vertex
// reference absolute. It rejects the whole batch — before anything is
// logged — on an unknown vertex, a forward batch reference, an empty
// symbol name, or an unstorable value.
func (s *Store) resolveBatch(batch []storage.Mutation) ([]storage.Mutation, error) {
	return s.resolveBatchAt(batch, false)
}

func (s *Store) resolveBatchAt(batch []storage.Mutation, replay bool) ([]storage.Mutation, error) {
	// The bound is every vertex ever created — folded into a base or
	// still delta-resident — which is exactly the delta's global
	// next-VID. It is fold-invariant, so a concurrent background fold
	// cannot change the meaning of a batch-relative reference.
	existing := s.delta.nextV.Load()
	newSoFar := int64(0)
	resolveRef := func(v storage.VID) (storage.VID, error) {
		if v >= 0 {
			limit := existing
			if replay {
				// WAL records are logged with references already resolved to
				// absolute VIDs, so a replayed record legitimately points at
				// vertices created earlier in its own batch.
				limit += newSoFar
			}
			if int64(v) >= limit {
				return 0, fmt.Errorf("diskstore: vertex %d out of range", v)
			}
			return v, nil
		}
		k := int64(-v) // -1 = first vertex created by this batch
		if k > newSoFar {
			return 0, fmt.Errorf("diskstore: batch reference %d points at a vertex not yet created in the batch", v)
		}
		return storage.VID(existing + k - 1), nil
	}
	out := make([]storage.Mutation, len(batch))
	for i := range batch {
		m := batch[i]
		var err error
		switch m.Op {
		case storage.MutAddVertex:
			for _, l := range m.Labels {
				if l == "" {
					return nil, fmt.Errorf("diskstore: empty label in AddVertex")
				}
			}
			m.Labels = append([]string(nil), m.Labels...)
			newSoFar++
		case storage.MutAddEdge:
			if m.Type == "" {
				return nil, fmt.Errorf("diskstore: empty edge type in AddEdge")
			}
			if m.Src, err = resolveRef(m.Src); err != nil {
				return nil, err
			}
			if m.Dst, err = resolveRef(m.Dst); err != nil {
				return nil, err
			}
		case storage.MutSetProp:
			if m.Key == "" {
				return nil, fmt.Errorf("diskstore: empty property key in SetProp")
			}
			if err := checkValueKind(m.Value); err != nil {
				return nil, err
			}
			if m.V, err = resolveRef(m.V); err != nil {
				return nil, err
			}
		case storage.MutAddLabel:
			if m.Label == "" {
				return nil, fmt.Errorf("diskstore: empty label in AddLabel")
			}
			if m.V, err = resolveRef(m.V); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("diskstore: unknown mutation op %d", m.Op)
		}
		out[i] = m
	}
	return out, nil
}

// checkValueKind rejects values the record format cannot store, before
// they reach the WAL.
func checkValueKind(v graph.Value) error {
	switch v.Kind() {
	case graph.KindNull, graph.KindInt, graph.KindFloat, graph.KindBool, graph.KindString:
		return nil
	case graph.KindList:
		for _, el := range v.List() {
			if el.Kind() == graph.KindList {
				return fmt.Errorf("diskstore: cannot store nested list value")
			}
		}
		return nil
	default:
		return fmt.Errorf("diskstore: unsupported value kind %v", v.Kind())
	}
}

// internBatch interns every symbol the batch mentions under the
// symbol-table write lock. Readers resolving symbols concurrently hold
// the read lock (see resolveSym).
func (s *Store) internBatch(batch []storage.Mutation) error {
	s.symMu.Lock()
	defer s.symMu.Unlock()
	for i := range batch {
		m := &batch[i]
		switch m.Op {
		case storage.MutAddVertex:
			for _, l := range m.Labels {
				if _, _, err := s.labelID(l, true); err != nil {
					return err
				}
			}
		case storage.MutAddEdge:
			s.internType(m.Type)
		case storage.MutSetProp:
			s.internKey(m.Key)
		case storage.MutAddLabel:
			if _, _, err := s.labelID(m.Label, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyToDelta applies a fully resolved, interned batch to the delta
// segment under its seq and assigns IDs. Label additions pre-read the
// base record outside the delta lock so byLabel stays duplicate-free
// against base membership. The caller holds liveMu, which keeps the
// current epoch (used to route base-vertex vs delta-vertex writes)
// stable across the batch. appliedSeq advances inside the delta lock so
// a snapshot acquired at that watermark always sees the whole batch.
func (s *Store) applyToDelta(seq uint64, batch []storage.Mutation) storage.MutationResult {
	var res storage.MutationResult
	d := s.delta
	curBase := s.cur.numVertices
	baseHas := make([]bool, len(batch))
	for i := range batch {
		m := &batch[i]
		if m.Op == storage.MutAddLabel && int64(m.V) < curBase {
			id := s.labelIDs[m.Label]
			if rec, err := s.cur.readVertex(m.V); err == nil {
				baseHas[i] = rec.labels[id/64]&(1<<uint(id%64)) != 0
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range batch {
		m := &batch[i]
		switch m.Op {
		case storage.MutAddVertex:
			var ids []int
			for _, l := range m.Labels {
				id := s.labelIDs[l]
				dup := false
				for _, have := range ids {
					if have == id {
						dup = true
						break
					}
				}
				if !dup {
					ids = append(ids, id)
				}
			}
			res.Vertices = append(res.Vertices, d.addVertexLocked(seq, ids))
		case storage.MutAddEdge:
			e := d.addEdgeLocked(seq, m.Src, m.Dst, uint32(s.typeIDs[m.Type]))
			res.Edges = append(res.Edges, e)
		case storage.MutSetProp:
			d.setPropLocked(seq, m.V, curBase, s.keyIDs[m.Key], m.Value)
		case storage.MutAddLabel:
			d.addLabelLocked(seq, m.V, curBase, s.labelIDs[m.Label], baseHas[i])
		}
	}
	d.appliedSeq.Store(seq)
	return res
}

// recoverLive runs at Open: it decides whether the store is live and
// replays any WAL a previous process left behind. Records at or below
// the manifest's wal_seq fence were already folded into the base by a
// committed Compact and are skipped; a torn tail is truncated; a log
// whose every record is stale is the residue of a crash between
// Compact's commit and its WAL truncation, and the truncation is
// finished here.
func (s *Store) recoverLive() error {
	walPath := filepath.Join(s.dir, walFileName)
	size := int64(-1)
	if st, err := os.Stat(walPath); err == nil {
		size = st.Size()
	}
	ep := s.cur
	live := ep.version >= 4 && ep.segmented && ep.numVertices > 0 && ep.numEdges > 0
	if !live && size <= 0 {
		return nil
	}
	s.liveMode.Store(true)
	s.delta.appliedSeq.Store(s.walFoldedSeq)
	if size <= 0 {
		return nil // no log to replay; walHandle opens one lazily
	}
	w, err := openWAL(walPath)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		w.close()
		return err
	}
	batches, cleanOff := parseWAL(data, uint32(ep.gen))
	lastSeq := s.walFoldedSeq
	replayed := 0
	for _, b := range batches {
		if b.seq <= s.walFoldedSeq {
			continue
		}
		if err := s.replayBatch(b.seq, b.ops); err != nil {
			w.close()
			return fmt.Errorf("diskstore: wal replay (seq %d): %w", b.seq, err)
		}
		replayed++
		lastSeq = b.seq
	}
	if cleanOff < int64(len(data)) {
		if err := w.truncateTo(cleanOff); err != nil {
			w.close()
			return err
		}
	}
	if replayed == 0 && cleanOff > 0 {
		if err := w.truncateTo(0); err != nil {
			w.close()
			return err
		}
		cleanOff = 0
	}
	w.seed(cleanOff, lastSeq)
	s.wal.Store(w)
	return nil
}

// replayBatch re-applies one recovered WAL record under its original
// sequence number, so visibility windows and a later fold see recovered
// entries exactly as the crashed process did. Records were validated
// before logging, so re-validation failing means the log disagrees with
// the base files — surfaced as an Open error rather than silently
// dropping an acknowledged write.
func (s *Store) replayBatch(seq uint64, ops []storage.Mutation) error {
	resolved, err := s.resolveBatchAt(ops, true)
	if err != nil {
		return err
	}
	if err := s.internBatch(resolved); err != nil {
		return err
	}
	s.applyToDelta(seq, resolved)
	return nil
}

// internType interns an edge type; caller holds symMu in live mode.
func (s *Store) internType(etype string) int {
	id, ok := s.typeIDs[etype]
	if !ok {
		id = len(s.types)
		s.types = append(s.types, etype)
		s.typeIDs[etype] = id
	}
	return id
}

// internKey interns a property key; caller holds symMu in live mode.
func (s *Store) internKey(key string) int {
	id, ok := s.keyIDs[key]
	if !ok {
		id = len(s.keys)
		s.keys = append(s.keys, key)
		s.keyIDs[key] = id
	}
	return id
}

// symRLock/symRUnlock guard symbol-table reads against live interning.
// Outside live mode the tables are immutable after build and the lock is
// skipped, keeping the read fast path lock-free. liveMode only flips
// during Open and Finalize/Compact, both of which require exclusive
// access, so the mode cannot change between the two calls.
func (s *Store) symRLock() {
	if s.liveMode.Load() {
		s.symMu.RLock()
	}
}

func (s *Store) symRUnlock() {
	if s.liveMode.Load() {
		s.symMu.RUnlock()
	}
}
