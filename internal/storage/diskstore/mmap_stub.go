//go:build !linux

package diskstore

import (
	"errors"
	"os"
)

// mmapFile on platforms without a wired-up mmap syscall: always refuses,
// so Options.Mmap degrades to the ordinary page-cache read path.
func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.New("diskstore: mmap not supported on this platform")
}

func munmapRegion(_ []byte) {}
