package crashtest

import (
	"os"
	"testing"
	"time"
)

// TestTruncationSweep is the deterministic half of the acceptance bar:
// at least 100 distinct WAL kill points, each required to reopen to the
// exact acknowledged prefix.
func TestTruncationSweep(t *testing.T) {
	rep, err := TruncationSweep(t.TempDir(), 60, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KillPoints < 100 {
		t.Errorf("verified %d kill points, want >= 100", rep.KillPoints)
	}
	t.Logf("verified %d kill points over a %d-byte WAL (%d mutations)", rep.KillPoints, rep.WALBytes, rep.Mutations)
}

// TestCrashChild is not a test: it is the child-process body for
// TestKillRecovery, entered only when the parent re-invokes this test
// binary with CRASH_CHILD=1.
func TestCrashChild(t *testing.T) {
	if os.Getenv("CRASH_CHILD") != "1" {
		t.Skip("child-process entry point; driven by TestKillRecovery")
	}
	ChildMain()
}

// TestKillRecovery SIGKILLs a real writer process at random instants —
// including mid-fsync and mid-checkpoint — and verifies the reopened
// store holds exactly the acknowledged prefix each time.
func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real processes; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := KillLoop(KillConfig{
		Scratch:      t.TempDir(),
		Rounds:       14,
		Child:        []string{exe, "-test.run=^TestCrashChild$"},
		ChildEnv:     []string{"CRASH_CHILD=1"},
		MaxKillDelay: 30 * time.Millisecond,
		Seed:         time.Now().UnixNano(), // timing is inherently nondeterministic; vary the schedule too
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %+v", rep)
	if rep.Kills == 0 {
		t.Error("no child was killed; the loop never exercised a crash")
	}
}

// TestKillRecoveryBackgroundFold is the background-compaction half of
// the crash bar: the child keeps acknowledging mutations while folds
// run in a goroutine, and the SIGKILL lands mid-fold — mid-build,
// between manifest commit and WAL rotation, mid-swap. Every reopen must
// be the exact acknowledged prefix; a refused reopen
// (ErrFinalizeInterrupted) fails the loop outright, because background
// folds never place the finalize marker.
func TestKillRecoveryBackgroundFold(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real processes; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := KillLoop(KillConfig{
		Scratch:             t.TempDir(),
		Rounds:              14,
		Child:               []string{exe, "-test.run=^TestCrashChild$"},
		ChildEnv:            []string{"CRASH_CHILD=1"},
		CompactEvery:        11, // trigger folds often so kills land inside them
		CompactInBackground: true,
		MaxKillDelay:        30 * time.Millisecond,
		Seed:                time.Now().UnixNano(),
		Log:                 t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %+v", rep)
	if rep.Kills == 0 {
		t.Error("no child was killed; the loop never exercised a crash")
	}
	if rep.Detected != 0 {
		t.Errorf("%d reopens were refused; background folds must never leave the store unopenable", rep.Detected)
	}
}

// TestOracleHarness is the randomized no-crash acceptance bar: one
// writer, concurrent snapshot-stability readers, and a background
// compactor hammering folds, with writer-pinned snapshots checked
// bit-for-bit against the memstore oracle before and after the folds
// that retire their epochs. Run it under -race; the schedule is the
// test.
func TestOracleHarness(t *testing.T) {
	ops := 300
	if testing.Short() {
		ops = 120
	}
	rep, err := OracleRun(OracleConfig{
		Scratch: t.TempDir(),
		Ops:     ops,
		Readers: 3,
		Seed:    time.Now().UnixNano(),
		Log:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %+v", rep)
	if rep.Folds == 0 {
		t.Error("no fold committed during the run; the harness never exercised a concurrent compaction")
	}
	if rep.OracleSnapshots == 0 {
		t.Error("no writer-pinned snapshot was verified against the oracle")
	}
	if rep.StabilityChecks == 0 {
		t.Error("no reader stability check completed")
	}
}
