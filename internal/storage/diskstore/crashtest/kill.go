package crashtest

// The real-crash half of the harness: a child process applies the
// deterministic workload against the store while the parent SIGKILLs it
// at random instants, then audits the reopened store. Because the kill
// is asynchronous it lands everywhere the truncation sweep cannot reach
// by construction — inside an fsync, inside Compact's fold, between
// Compact's manifest commit and its WAL truncation.
//
// Audit rule: the child appends one fsynced line to an ack file after
// every acknowledged mutation, so the parent knows a lower bound L on
// the applied count (an acknowledged-but-unlogged mutation allows the
// true count to be L+1, never more — the child is serial). The reopened
// store must fingerprint-match exactly prefix L or L+1; anything less is
// a lost acknowledgment, anything else is a phantom or corrupted write.
// A reopen refused with ErrFinalizeInterrupted (the kill landed inside
// Compact's base rewrite) counts as detected corruption — the documented
// contract — and the round restores the pre-round snapshot.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/storetest"
)

// Environment variables carrying the child's parameters (argv stays
// caller-defined so any binary — a test binary re-invoking itself, or
// pgsbench — can host ChildMain).
const (
	envDir          = "CRASH_DIR"
	envAck          = "CRASH_ACK"
	envStart        = "CRASH_START"
	envMaxOps       = "CRASH_MAXOPS"
	envCompactEvery = "CRASH_COMPACT_EVERY"
	envCompactBg    = "CRASH_COMPACT_BG"
)

// KillConfig parameterizes KillLoop.
type KillConfig struct {
	Scratch        string        // working directory (created if needed)
	Rounds         int           // child spawn/kill cycles
	Child          []string      // argv of a process that calls ChildMain
	ChildEnv       []string      // extra environment for the child
	MaxOpsPerRound int           // child exits cleanly after this many ops (default 200)
	CompactEvery   int           // child runs Compact every k ops (default 23; 0 disables)
	MaxKillDelay   time.Duration // upper bound on the random kill delay (default 40ms)

	// CompactInBackground makes the child run Compact in a goroutine
	// and keep mutating while the fold is in flight, so the SIGKILL can
	// land anywhere inside a background fold — mid-build, between the
	// manifest commit and the WAL rotation, mid-swap. A background fold
	// never places the finalize marker (the old base stays live until
	// the atomic manifest commit), so reopen refusals
	// (KillReport.Detected) are a violation in this mode, not a
	// documented outcome.
	CompactInBackground bool
	Seed                int64
	Log                 func(format string, args ...any) // optional progress logging
}

// KillReport summarizes a KillLoop run.
type KillReport struct {
	Rounds     int // rounds executed
	Kills      int // children that died by our SIGKILL
	CleanExits int // children that finished their op budget first
	Detected   int // reopens refused with ErrFinalizeInterrupted (kill inside Compact)
	FinalOps   int // acknowledged mutations surviving in the final store
}

// KillLoop runs the SIGKILL crash loop and returns an error on the first
// crash-consistency violation.
func KillLoop(cfg KillConfig) (KillReport, error) {
	var rep KillReport
	if cfg.MaxOpsPerRound <= 0 {
		cfg.MaxOpsPerRound = 200
	}
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = 23
	}
	if cfg.MaxKillDelay <= 0 {
		cfg.MaxKillDelay = 40 * time.Millisecond
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(cfg.Child) == 0 {
		return rep, fmt.Errorf("crashtest: KillConfig.Child is empty")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	dir := filepath.Join(cfg.Scratch, "store")
	snap := filepath.Join(cfg.Scratch, "snapshot")
	ackPath := filepath.Join(cfg.Scratch, "acks")
	if err := buildBase(dir); err != nil {
		return rep, err
	}
	o, err := newOracle()
	if err != nil {
		return rep, err
	}

	n := 0 // verified acknowledged-mutation count in dir
	for round := 0; round < cfg.Rounds; round++ {
		rep.Rounds = round + 1
		if err := copyDir(dir, snap); err != nil {
			return rep, err
		}
		if err := os.RemoveAll(ackPath); err != nil {
			return rep, err
		}

		cmd := exec.Command(cfg.Child[0], cfg.Child[1:]...)
		var childOut bytes.Buffer
		cmd.Stdout, cmd.Stderr = &childOut, &childOut
		cmd.Env = append(os.Environ(), cfg.ChildEnv...)
		cmd.Env = append(cmd.Env,
			envDir+"="+dir,
			envAck+"="+ackPath,
			fmt.Sprintf("%s=%d", envStart, n),
			fmt.Sprintf("%s=%d", envMaxOps, cfg.MaxOpsPerRound),
			fmt.Sprintf("%s=%d", envCompactEvery, cfg.CompactEvery),
		)
		if cfg.CompactInBackground {
			cmd.Env = append(cmd.Env, envCompactBg+"=1")
		}
		if err := cmd.Start(); err != nil {
			return rep, err
		}
		time.Sleep(time.Duration(1 + rng.Int63n(int64(cfg.MaxKillDelay))))
		_ = cmd.Process.Kill()
		werr := cmd.Wait()
		killed := false
		if werr != nil {
			var xe *exec.ExitError
			if errors.As(werr, &xe) {
				if ws, ok := xe.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
					killed = true
				} else {
					return rep, fmt.Errorf("crashtest: child failed on its own (round %d): %v\n%s", round, werr, childOut.String())
				}
			} else {
				return rep, fmt.Errorf("crashtest: child wait (round %d): %w", round, werr)
			}
		}
		if killed {
			rep.Kills++
		} else {
			rep.CleanExits++
		}

		lastAcked, err := readAcks(ackPath, n)
		if err != nil {
			return rep, err
		}

		s, err := diskstore.Open(dir, diskstore.Options{})
		if errors.Is(err, diskstore.ErrFinalizeInterrupted) {
			// The kill landed inside Compact's base rewrite. Detection —
			// not silent corruption — is the contract for the exclusive
			// (foreground) fold; a background fold never leaves the
			// marker behind, so in that mode a refusal is a bug.
			if cfg.CompactInBackground {
				return rep, fmt.Errorf("crashtest: round %d: reopen refused (%v) after a kill during a BACKGROUND fold — the old base should have stayed live", round, err)
			}
			rep.Detected++
			logf("round %d: kill landed mid-compact, corruption detected and snapshot restored", round)
			if err := copyDir(snap, dir); err != nil {
				return rep, err
			}
			continue
		}
		if err != nil {
			return rep, fmt.Errorf("crashtest: reopen after kill (round %d): %w", round, err)
		}
		got := storetest.Fingerprint(s)
		if err := s.Close(); err != nil {
			return rep, err
		}
		matched := -1
		for _, m := range []int{lastAcked, lastAcked + 1} {
			want, err := o.fingerprintAt(m)
			if err != nil {
				return rep, err
			}
			if got == want {
				matched = m
				break
			}
		}
		if matched < 0 {
			return rep, fmt.Errorf("crashtest: round %d: reopened store matches neither the %d acknowledged mutations nor one in-flight more — acknowledged write lost or phantom write visible", round, lastAcked)
		}
		logf("round %d: killed=%v acked=%d recovered=%d", round, killed, lastAcked, matched)
		n = matched
	}
	rep.FinalOps = n
	return rep, nil
}

// readAcks returns the highest acknowledged-mutation count recorded in
// the child's ack file, at least floor (the count verified before the
// round). A torn final line — the child died mid-write — is ignored.
func readAcks(path string, floor int) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return floor, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	last := floor
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			break // torn tail
		}
		if v > last {
			last = v
		}
	}
	return last, sc.Err()
}

// ChildMain is the child-process body: it reads its parameters from the
// environment, opens the store, and applies the deterministic workload,
// fsyncing one ack line per acknowledged mutation. It never returns —
// the normal exit is the parent's SIGKILL; running out of the op budget
// exits 0.
func ChildMain() {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "crashtest child:", err)
		os.Exit(1)
	}
	dir := os.Getenv(envDir)
	ackPath := os.Getenv(envAck)
	start, _ := strconv.Atoi(os.Getenv(envStart))
	maxOps, _ := strconv.Atoi(os.Getenv(envMaxOps))
	compactEvery, _ := strconv.Atoi(os.Getenv(envCompactEvery))
	compactBg := os.Getenv(envCompactBg) != ""
	if dir == "" || ackPath == "" || maxOps <= 0 {
		die(fmt.Errorf("missing %s/%s/%s", envDir, envAck, envMaxOps))
	}
	s, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		die(err)
	}
	ack, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		die(err)
	}
	curV := s.NumVertices()
	var folds sync.WaitGroup
	for i := 0; i < maxOps; i++ {
		nOp := start + i
		muts := mutationAt(nOp, curV)
		if _, err := s.ApplyMutations(muts); err != nil {
			die(fmt.Errorf("mutation %d: %w", nOp, err))
		}
		if countsVertex(muts) {
			curV++
		}
		// The mutation is acknowledged (WAL-durable); only now may the
		// ack line exist. The line is fsynced so the parent's lower
		// bound is itself crash-safe.
		if _, err := fmt.Fprintf(ack, "%d\n", nOp+1); err != nil {
			die(err)
		}
		if err := ack.Sync(); err != nil {
			die(err)
		}
		if compactEvery > 0 && (nOp+1)%compactEvery == 0 {
			if compactBg {
				// Fold in the background and keep mutating: the parent's
				// SIGKILL can now land while acknowledged writes race a
				// fold. An overlapping trigger finds the previous fold
				// still running — that is the single-flight contract, not
				// a failure.
				folds.Add(1)
				go func(at int) {
					defer folds.Done()
					if err := s.Compact(); err != nil && !errors.Is(err, storage.ErrCompactInProgress) {
						die(fmt.Errorf("background compact at %d: %w", at, err))
					}
				}(nOp)
			} else if err := s.Compact(); err != nil {
				die(fmt.Errorf("compact at %d: %w", nOp, err))
			}
		}
	}
	// A clean exit must not close the store under an in-flight fold —
	// Close mid-Compact is a caller bug, not a crash we are simulating.
	folds.Wait()
	if err := s.Close(); err != nil {
		die(err)
	}
	os.Exit(0)
}
