// Package crashtest is the crash-injection harness for the diskstore's
// durable live-write path. It verifies the WAL's contract from the
// outside: after a crash at ANY byte offset or instant, reopening the
// store yields exactly the acknowledged prefix of the mutation stream —
// no acknowledged write lost, no unacknowledged write visible.
//
// Two modes:
//
//   - TruncationSweep simulates crashes deterministically. Live
//     mutations touch only wal.db (the base files are frozen in live
//     mode), so the store directory a crash leaves behind is exactly
//     "base files + a prefix of the WAL". The sweep records the WAL
//     length at every acknowledgment boundary, then reopens the store
//     from every interesting prefix — each boundary, one byte on either
//     side of it (torn tails), and a spread of random offsets — and
//     fingerprint-compares against an in-memory oracle.
//
//   - KillLoop crashes for real: it spawns a child process (any argv
//     that ends up in ChildMain) applying the same deterministic
//     workload, SIGKILLs it at a random instant — which lands mid-append,
//     mid-fsync, and mid-checkpoint — and verifies the reopened state is
//     the acknowledged prefix, give or take the one in-flight mutation
//     that was durable but not yet externally acknowledged.
//
// Both modes share one deterministic workload (mutationAt), so a failure
// reproduces from its seed and offset alone.
package crashtest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
	"repro/internal/storage/storetest"
)

// Workload shape: the pseudo-random base graph every run starts from,
// built identically into the diskstore under test and the memstore
// oracle.
const (
	baseSeed  = 5
	baseNV    = 30
	baseNE    = 90
	baseBatch = 16
)

var (
	crashLabels = []string{"A", "B", "C", "D", "K"}
	crashTypes  = []string{"r1", "r2", "r3"}
	crashKeys   = []string{"p0", "p1", "p2", "p3"}
)

// mutationAt returns mutation n of the deterministic workload as a
// single-op batch. curV is the vertex count before the mutation; it is
// the only piece of state the workload depends on, and it evolves
// deterministically (an AddVertex op adds one), so any process — the
// writer, the oracle, a restarted child — regenerates the same stream.
func mutationAt(n, curV int) []storage.Mutation {
	rng := rand.New(rand.NewSource(int64(n)*2654435761 + 17))
	v := storage.VID(rng.Intn(curV))
	w := storage.VID(rng.Intn(curV))
	switch rng.Intn(6) {
	case 0:
		// Half the vertex-adding batches immediately reference the new
		// vertex (the normal /mutate client shape). This is the pattern
		// that lands in the WAL with absolute self-references, so replay
		// after a crash must accept a record pointing at vertices the
		// record itself creates.
		if rng.Intn(2) == 0 {
			return []storage.Mutation{
				{Op: storage.MutAddVertex, Labels: []string{crashLabels[rng.Intn(len(crashLabels))]}},
				{Op: storage.MutSetProp, V: -1, Key: crashKeys[rng.Intn(len(crashKeys))], Value: graph.I(int64(n))},
				{Op: storage.MutAddEdge, Src: -1, Dst: w, Type: crashTypes[rng.Intn(len(crashTypes))]},
			}
		}
		return []storage.Mutation{{Op: storage.MutAddVertex, Labels: []string{crashLabels[rng.Intn(len(crashLabels))]}}}
	case 1, 2, 3:
		return []storage.Mutation{{Op: storage.MutAddEdge, Src: v, Dst: w, Type: crashTypes[rng.Intn(len(crashTypes))]}}
	case 4:
		return []storage.Mutation{{Op: storage.MutSetProp, V: v, Key: crashKeys[rng.Intn(len(crashKeys))], Value: graph.I(int64(n))}}
	default:
		return []storage.Mutation{{Op: storage.MutAddLabel, V: v, Label: crashLabels[rng.Intn(len(crashLabels))]}}
	}
}

// countsVertex reports whether the batch grows the vertex count.
func countsVertex(muts []storage.Mutation) bool {
	return len(muts) > 0 && muts[0].Op == storage.MutAddVertex
}

// oracle is the memstore shadow of the workload plus the fingerprint of
// every prefix: fps[k] is the observable state after k live mutations.
type oracle struct {
	ms   *memstore.Store
	curV int
	fps  []string
}

func newOracle() (*oracle, error) {
	ms := memstore.New()
	if _, err := storetest.BuildRandom(ms, baseSeed, baseNV, baseNE); err != nil {
		return nil, err
	}
	return &oracle{ms: ms, curV: baseNV, fps: []string{storetest.Fingerprint(ms)}}, nil
}

// fingerprintAt extends the oracle to m mutations if needed and returns
// the fingerprint of that prefix.
func (o *oracle) fingerprintAt(m int) (string, error) {
	for len(o.fps) <= m {
		n := len(o.fps) - 1
		muts := mutationAt(n, o.curV)
		if err := applyToOracle(o.ms, muts); err != nil {
			return "", fmt.Errorf("oracle mutation %d: %w", n, err)
		}
		if countsVertex(muts) {
			o.curV++
		}
		o.fps = append(o.fps, storetest.Fingerprint(o.ms))
	}
	return o.fps[m], nil
}

func applyToOracle(ms *memstore.Store, muts []storage.Mutation) error {
	// Batch-relative references (-1 = first vertex this batch created)
	// resolve against the vertices AddVertex returned, mirroring the
	// MutableGraph contract the store under test implements.
	var created []storage.VID
	ref := func(v storage.VID) (storage.VID, error) {
		if v >= 0 {
			return v, nil
		}
		k := int(-v)
		if k > len(created) {
			return 0, fmt.Errorf("batch reference %d points at a vertex not yet created", v)
		}
		return created[k-1], nil
	}
	for _, m := range muts {
		var err error
		switch m.Op {
		case storage.MutAddVertex:
			var v storage.VID
			if v, err = ms.AddVertex(m.Labels...); err == nil {
				created = append(created, v)
			}
		case storage.MutAddEdge:
			var src, dst storage.VID
			if src, err = ref(m.Src); err == nil {
				if dst, err = ref(m.Dst); err == nil {
					_, err = ms.AddEdge(src, dst, m.Type)
				}
			}
		case storage.MutSetProp:
			var v storage.VID
			if v, err = ref(m.V); err == nil {
				err = ms.SetProp(v, m.Key, m.Value)
			}
		case storage.MutAddLabel:
			var v storage.VID
			if v, err = ref(m.V); err == nil {
				err = ms.AddLabel(v, m.Label)
			}
		default:
			err = fmt.Errorf("unknown op %d", m.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// buildBase creates the finalized base store in dir.
func buildBase(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return err
	}
	if _, err := storetest.BuildRandomBulk(s, baseSeed, baseNV, baseNE, baseBatch); err != nil {
		s.Close()
		return err
	}
	if err := s.Compact(); err != nil {
		s.Close()
		return err
	}
	return s.Close()
}

// copyDir copies the flat store directory src to dst (which is
// recreated).
func copyDir(src, dst string) error {
	if err := os.RemoveAll(dst); err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// SweepReport summarizes one TruncationSweep run.
type SweepReport struct {
	Mutations  int   // acknowledged mutations in the workload
	KillPoints int   // WAL prefixes verified
	WALBytes   int64 // final WAL length
}

// TruncationSweep runs the deterministic crash simulation in scratch:
// nMut acknowledged mutations, then a reopen-and-verify at every
// acknowledgment boundary, the bytes on either side of each boundary,
// and random offsets padded to at least minKills distinct prefixes.
// Every verification demands the exact acknowledged prefix — mutation i
// present if and only if its acknowledgment-time WAL length fits in the
// surviving prefix.
func TruncationSweep(scratch string, nMut, minKills int) (SweepReport, error) {
	var rep SweepReport
	base := filepath.Join(scratch, "base")
	if err := buildBase(base); err != nil {
		return rep, err
	}
	o, err := newOracle()
	if err != nil {
		return rep, err
	}

	// Apply the workload serially, recording the WAL length at each
	// acknowledgment: with one in-flight batch at a time, that length is
	// the exact durability boundary of the batch.
	work := filepath.Join(scratch, "work")
	if err := copyDir(base, work); err != nil {
		return rep, err
	}
	s, err := diskstore.Open(work, diskstore.Options{})
	if err != nil {
		return rep, err
	}
	walPath := filepath.Join(work, "wal.db")
	curV := s.NumVertices()
	ackOff := make([]int64, 0, nMut)
	for n := 0; n < nMut; n++ {
		muts := mutationAt(n, curV)
		if _, err := s.ApplyMutations(muts); err != nil {
			s.Close()
			return rep, fmt.Errorf("mutation %d: %w", n, err)
		}
		if countsVertex(muts) {
			curV++
		}
		st, err := os.Stat(walPath)
		if err != nil {
			s.Close()
			return rep, err
		}
		ackOff = append(ackOff, st.Size())
		if _, err := o.fingerprintAt(n + 1); err != nil {
			s.Close()
			return rep, err
		}
	}
	if err := s.Close(); err != nil {
		return rep, err
	}
	walData, err := os.ReadFile(walPath)
	if err != nil {
		return rep, err
	}

	// Kill points: empty log, every boundary, boundary±1 (torn first/last
	// byte of a record), plus random offsets up to minKills.
	offSet := map[int64]bool{0: true}
	addOff := func(k int64) {
		if k >= 0 && k <= int64(len(walData)) {
			offSet[k] = true
		}
	}
	for _, off := range ackOff {
		addOff(off - 1)
		addOff(off)
		addOff(off + 1)
	}
	rng := rand.New(rand.NewSource(99))
	for len(offSet) < minKills {
		addOff(rng.Int63n(int64(len(walData)) + 1))
	}
	offs := make([]int64, 0, len(offSet))
	for k := range offSet {
		offs = append(offs, k)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })

	victim := filepath.Join(scratch, "victim")
	for _, k := range offs {
		if err := copyDir(base, victim); err != nil {
			return rep, err
		}
		if k > 0 {
			if err := os.WriteFile(filepath.Join(victim, "wal.db"), walData[:k], 0o644); err != nil {
				return rep, err
			}
		}
		vs, err := diskstore.Open(victim, diskstore.Options{})
		if err != nil {
			return rep, fmt.Errorf("kill offset %d: reopen: %w", k, err)
		}
		applied := 0
		for _, off := range ackOff {
			if off <= k {
				applied++
			}
		}
		want, err := o.fingerprintAt(applied)
		if err != nil {
			vs.Close()
			return rep, err
		}
		got := storetest.Fingerprint(vs)
		if err := vs.Close(); err != nil {
			return rep, fmt.Errorf("kill offset %d: close: %w", k, err)
		}
		if got != want {
			return rep, fmt.Errorf("kill offset %d: reopened state is not the exact %d-mutation acknowledged prefix\n got %s\nwant %s", k, applied, got, want)
		}
		rep.KillPoints++
	}
	rep.Mutations = nMut
	rep.WALBytes = int64(len(walData))
	return rep, nil
}
