package crashtest

// The randomized oracle harness: the single-process, no-crash half of
// the background-compaction contract. One writer applies the package's
// deterministic mutation stream while, concurrently,
//
//   - a compactor calls Compact in a loop, so base generations fold and
//     swap under the writer's feet;
//   - reader goroutines acquire snapshots at arbitrary instants and
//     fingerprint each one twice — once immediately and once after a
//     random delay long enough to straddle fold commits — demanding
//     bit-identical results (snapshot stability);
//   - the writer itself pins a snapshot every few acknowledged
//     mutations, at which point the applied prefix is exactly known, and
//     the harness demands that snapshot equals the memstore oracle's
//     fingerprint of that prefix — immediately, and again after later
//     folds have retired the epoch the snapshot pinned.
//
// After the workload drains, every held snapshot is re-verified and
// released, a final fold runs, and the live store plus a full
// close/reopen must both equal the oracle's final prefix. Run it under
// -race: the interesting failures here are ordering bugs, and the
// fingerprint checks catch the ones the race detector cannot.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/storetest"
)

// OracleConfig parameterizes OracleRun.
type OracleConfig struct {
	Scratch       string // working directory (created if needed)
	Ops           int    // acknowledged mutations to apply (default 300)
	Readers       int    // snapshot-stability reader goroutines (default 3)
	SnapshotEvery int    // writer pins an oracle-checked snapshot every k ops (default 17)
	MaxHeld       int    // oracle snapshots held concurrently before the oldest is re-verified and released (default 6)
	Seed          int64
	Log           func(format string, args ...any) // optional progress logging
}

// OracleReport summarizes one OracleRun.
type OracleReport struct {
	Ops             int   // acknowledged mutations applied
	Folds           int64 // compactions committed during the run
	OracleSnapshots int   // writer-pinned snapshots verified against the oracle
	StabilityChecks int64 // reader snapshot double-fingerprint checks
	FinalGeneration int64 // base generation after the final fold
}

// heldSnap is one writer-pinned snapshot awaiting re-verification: the
// fingerprint it must still produce after any number of folds.
type heldSnap struct {
	snap storage.Snapshot
	ops  int    // acknowledged-mutation prefix it pins
	want string // oracle fingerprint of that prefix
}

// OracleRun executes the harness and returns an error on the first
// divergence from the oracle. The error message carries the seed and the
// mutation index, so failures reproduce deterministically.
func OracleRun(cfg OracleConfig) (OracleReport, error) {
	var rep OracleReport
	if cfg.Ops <= 0 {
		cfg.Ops = 300
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 3
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 17
	}
	if cfg.MaxHeld <= 0 {
		cfg.MaxHeld = 6
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	dir := filepath.Join(cfg.Scratch, "store")
	if err := buildBase(dir); err != nil {
		return rep, err
	}
	o, err := newOracle()
	if err != nil {
		return rep, err
	}
	s, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return rep, err
	}

	var (
		done            = make(chan struct{})
		wg              sync.WaitGroup
		errOnce         sync.Once
		firstErr        error
		stabilityChecks int64
		stabMu          sync.Mutex
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
	}
	failed := func() bool {
		stabMu.Lock()
		defer stabMu.Unlock()
		return firstErr != nil
	}
	// firstErr is written under errOnce and read only after wg.Wait or
	// via failed(); guard reads racing the Do with the same mutex.
	failLocked := func(err error) {
		stabMu.Lock()
		defer stabMu.Unlock()
		fail(err)
	}

	// Compactor: fold as often as the store lets us. ErrCompactInProgress
	// cannot happen (we are the only caller), but tolerate it so the
	// harness stays valid if a future store self-compacts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Compact(); err != nil && !errors.Is(err, storage.ErrCompactInProgress) {
				failLocked(fmt.Errorf("background compact: %w", err))
				return
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	// Readers: each acquires a snapshot at a random instant, fingerprints
	// it, sleeps across whatever the writer and compactor are doing, and
	// demands the same fingerprint again. The pinned epoch may be retired
	// mid-hold; the snapshot must not notice.
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(id)))
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := s.AcquireSnapshot()
				f1 := storetest.Fingerprint(snap)
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				f2 := storetest.Fingerprint(snap)
				snap.Release()
				if f1 != f2 {
					failLocked(fmt.Errorf("reader %d (seed %d): snapshot changed under a hold\nfirst  %s\nsecond %s", id, cfg.Seed, f1, f2))
					return
				}
				stabMu.Lock()
				stabilityChecks++
				stabMu.Unlock()
			}
		}(r)
	}

	// Writer (this goroutine): the deterministic stream, acknowledged
	// serially, so after mutation n the store's visible state must be the
	// oracle's prefix n+1 — verified through pinned snapshots, which stay
	// valid while later folds retire the epochs they pinned.
	var held []heldSnap
	release := func(h heldSnap) error {
		defer h.snap.Release()
		if got := storetest.Fingerprint(h.snap); got != h.want {
			return fmt.Errorf("snapshot pinned at %d mutations drifted after folds (seed %d)\n got %s\nwant %s", h.ops, cfg.Seed, got, h.want)
		}
		return nil
	}
	drainHeld := func() error {
		for _, h := range held {
			if err := release(h); err != nil {
				return err
			}
		}
		held = nil
		return nil
	}

	curV := s.NumVertices()
	n := 0
	for ; n < cfg.Ops && !failed(); n++ {
		muts := mutationAt(n, curV)
		if _, err := s.ApplyMutations(muts); err != nil {
			failLocked(fmt.Errorf("mutation %d: %w", n, err))
			break
		}
		if countsVertex(muts) {
			curV++
		}
		if (n+1)%cfg.SnapshotEvery != 0 {
			continue
		}
		// No other writer exists, so the store's watermark is exactly
		// n+1 acknowledged mutations right now; the snapshot must match
		// that oracle prefix today and after every future fold.
		want, err := o.fingerprintAt(n + 1)
		if err != nil {
			failLocked(err)
			break
		}
		snap := s.AcquireSnapshot()
		if got := storetest.Fingerprint(snap); got != want {
			snap.Release()
			failLocked(fmt.Errorf("snapshot at %d mutations diverges from the oracle (seed %d)\n got %s\nwant %s", n+1, cfg.Seed, got, want))
			break
		}
		held = append(held, heldSnap{snap: snap, ops: n + 1, want: want})
		rep.OracleSnapshots++
		if len(held) > cfg.MaxHeld {
			h := held[0]
			held = held[1:]
			if err := release(h); err != nil {
				failLocked(err)
				break
			}
		}
	}

	close(done)
	wg.Wait()
	stabMu.Lock()
	rep.StabilityChecks = stabilityChecks
	err = firstErr
	stabMu.Unlock()
	if err == nil {
		// Oldest snapshots have now outlived every fold of the run.
		err = drainHeld()
	}
	for _, h := range held {
		h.snap.Release()
	}
	if err != nil {
		s.Close()
		return rep, err
	}

	// Final fold, then the live store and a cold reopen must both equal
	// the oracle's full prefix.
	if err := s.Compact(); err != nil {
		s.Close()
		return rep, fmt.Errorf("final compact: %w", err)
	}
	want, err := o.fingerprintAt(n)
	if err != nil {
		s.Close()
		return rep, err
	}
	if got := storetest.Fingerprint(s); got != want {
		s.Close()
		return rep, fmt.Errorf("live store after final fold diverges from the %d-mutation oracle (seed %d)\n got %s\nwant %s", n, cfg.Seed, got, want)
	}
	ls := s.LiveStats()
	rep.Folds = ls.Compactions
	rep.FinalGeneration = ls.Generation
	if ls.PinnedSnapshots != 0 {
		s.Close()
		return rep, fmt.Errorf("%d snapshots still pinned after every hold was released", ls.PinnedSnapshots)
	}
	if err := s.Close(); err != nil {
		return rep, err
	}
	re, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		return rep, fmt.Errorf("reopen after run: %w", err)
	}
	if got := storetest.Fingerprint(re); got != want {
		re.Close()
		return rep, fmt.Errorf("reopened store diverges from the %d-mutation oracle (seed %d)\n got %s\nwant %s", n, cfg.Seed, got, want)
	}
	if err := re.Close(); err != nil {
		return rep, err
	}
	rep.Ops = n
	logf("oracle run: %d ops, %d folds (final generation %d), %d oracle snapshots, %d stability checks",
		rep.Ops, rep.Folds, rep.FinalGeneration, rep.OracleSnapshots, rep.StabilityChecks)
	return rep, nil
}
