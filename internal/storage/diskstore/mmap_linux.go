//go:build linux

package diskstore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. MAP_SHARED keeps the mapping
// coherent with pager write-back that happens after the mapping is
// dropped but before close (the dropped mapping is only read until then).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapRegion(data []byte) {
	_ = syscall.Munmap(data)
}
