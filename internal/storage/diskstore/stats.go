package diskstore

// storage.Statistics: real per-label and per-edge-type cardinalities and
// bloom-backed value-presence probes, persisted with the v5 index block
// (see index.go) and rebuilt on every Finalize/Compact.

import (
	"repro/internal/graph"
	"repro/internal/storage"
)

// LabelCounts returns the exact number of vertices per label, including
// any live delta beyond the base.
func (s *Store) LabelCounts() map[string]int {
	s.symRLock()
	labels := append([]string(nil), s.labels...)
	s.symRUnlock()
	out := make(map[string]int, len(labels))
	for _, l := range labels {
		out[l] = s.CountLabel(l)
	}
	return out
}

// EdgeTypeCounts returns per-edge-type counts from the base's persisted
// statistics block. Live delta edges accumulated since the last
// Finalize/Compact are not broken down by type, so counts lag the base
// by at most the delta size; nil means the base carries no statistics
// (pre-v5 layout, or a torn index file).
func (s *Store) EdgeTypeCounts() map[string]int {
	ep := s.curEp()
	if !ep.statsValid {
		return nil
	}
	s.symRLock()
	types := append([]string(nil), s.types...)
	s.symRUnlock()
	out := make(map[string]int, len(ep.typeCounts))
	for i, c := range ep.typeCounts {
		if i < len(types) {
			out[types[i]] = int(c)
		}
	}
	return out
}

// MayHaveProp reports whether any vertex with the label may carry val
// for the key; false is definitive (see storage.Statistics). Probes hit
// the base's bloom filters; a live delta that created or relabeled
// vertices or overrode properties makes every answer "maybe" until the
// next Compact folds it (edge-only deltas keep the filters definitive —
// edges carry no vertex properties). The store never deletes, so base
// filters can only under-claim, never over-claim, as data grows.
func (s *Store) MayHaveProp(label, key string, val graph.Value) bool {
	lid := s.LabelID(label)
	kid := s.KeyID(key)
	if lid == storage.NoSymbol || kid == storage.NoSymbol {
		// Never-interned symbol: no vertex can match, live or not.
		return false
	}
	ep := s.curEp()
	if s.liveMode.Load() && s.delta.statsDirty() {
		return true
	}
	if ep != s.curEp() {
		// A background fold committed between the epoch read and the
		// delta check; the pair is not a consistent snapshot. Answer
		// conservatively rather than probe possibly-stale filters.
		return true
	}
	if !ep.statsValid {
		return true
	}
	b := ep.blooms[bloomKey(int(lid), int(kid))]
	if b == nil {
		// The statistics block is present and no (label, key) filter
		// exists: no vertex with this label carried this key at all.
		return false
	}
	return b.mayHave(hashValue(val))
}
