package diskstore

// FuzzWALReplay drives parseWAL — the single entry point crash recovery
// trusts — with corrupted, truncated, and epoch-mixed streams. The
// properties under test are the recovery contract:
//
//   - replay is a clean-prefix function: whatever it returns re-parses
//     identically from the clean prefix alone, and truncating the input
//     anywhere can only shorten the result, never change or reorder it
//     (so a torn tail cannot drop an earlier acknowledged record);
//   - the returned batches always satisfy the log invariants — strictly
//     increasing sequences, non-decreasing epochs, no epoch beyond the
//     manifest's committed generation (so a record appended under a
//     generation that never committed can never be resurrected);
//   - a well-formed stream parses back exactly, and corrupting a byte
//     never disturbs the records wholly before the corruption.

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
)

// appendWALRecord frames one batch exactly like wal.append.
func appendWALRecord(stream []byte, seq uint64, epoch uint32, ops []storage.Mutation) []byte {
	opsB, err := encodeWALOps(ops)
	if err != nil {
		panic(err)
	}
	payload := binary.LittleEndian.AppendUint64(nil, seq)
	payload = binary.LittleEndian.AppendUint32(payload, epoch)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(ops)))
	payload = append(payload, opsB...)
	stream = binary.LittleEndian.AppendUint32(stream, uint32(len(payload)))
	stream = binary.LittleEndian.AppendUint32(stream, crc32.ChecksumIEEE(payload))
	return append(stream, payload...)
}

func batchesEqual(a, b []walBatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].seq != b[i].seq || a[i].epoch != b[i].epoch || !reflect.DeepEqual(a[i].ops, b[i].ops) {
			return false
		}
	}
	return true
}

// checkInvariants asserts the log invariants on a parse result.
func checkInvariants(t *testing.T, batches []walBatch, cleanOff int64, n int, maxEpoch uint32) {
	t.Helper()
	if cleanOff < 0 || cleanOff > int64(n) {
		t.Fatalf("cleanOff %d outside [0,%d]", cleanOff, n)
	}
	var lastSeq uint64
	var lastEpoch uint32
	for i, b := range batches {
		if i > 0 && b.seq <= lastSeq {
			t.Fatalf("batch %d: seq %d not strictly increasing after %d", i, b.seq, lastSeq)
		}
		if i > 0 && b.epoch < lastEpoch {
			t.Fatalf("batch %d: epoch %d decreased after %d", i, b.epoch, lastEpoch)
		}
		if b.epoch > maxEpoch {
			t.Fatalf("batch %d: epoch %d beyond committed generation %d leaked through replay", i, b.epoch, maxEpoch)
		}
		lastSeq, lastEpoch = b.seq, b.epoch
	}
}

func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed three-record stream spanning an epoch bump,
	// plus degenerate inputs.
	seed := appendWALRecord(nil, 1, 0, []storage.Mutation{{Op: storage.MutAddVertex, Labels: []string{"A", "B"}}})
	seed = appendWALRecord(seed, 2, 0, []storage.Mutation{
		{Op: storage.MutSetProp, V: 3, Key: "k", Value: graph.S("hello")},
		{Op: storage.MutAddEdge, Src: 1, Dst: 2, Type: "t"},
	})
	seed = appendWALRecord(seed, 7, 1, []storage.Mutation{{Op: storage.MutAddLabel, V: 0, Label: "L"}})
	f.Add(seed, uint32(1), uint16(11), uint32(5))
	f.Add([]byte{}, uint32(0), uint16(0), uint32(0))
	f.Add([]byte("not a wal at all, definitely"), uint32(3), uint16(4), uint32(9))

	f.Fuzz(func(t *testing.T, raw []byte, maxEpoch uint32, cut uint16, flip uint32) {
		// Arbitrary bytes: the parse must be a stable clean prefix.
		batches, off := parseWAL(raw, maxEpoch)
		checkInvariants(t, batches, off, len(raw), maxEpoch)
		re, reOff := parseWAL(raw[:off], maxEpoch)
		if reOff != off || !batchesEqual(re, batches) {
			t.Fatalf("re-parsing the clean prefix diverged: %d/%d batches, cleanOff %d vs %d", len(re), len(batches), reOff, off)
		}

		// Truncation anywhere yields a prefix of the full parse — a torn
		// tail can only cost the torn record, never an earlier one.
		k := int(cut) % (len(raw) + 1)
		tb, tOff := parseWAL(raw[:k], maxEpoch)
		checkInvariants(t, tb, tOff, k, maxEpoch)
		if len(tb) > len(batches) || !batchesEqual(tb, batches[:len(tb)]) {
			t.Fatalf("truncating at %d produced %d batches that are not a prefix of the full parse's %d", k, len(tb), len(batches))
		}

		// Epoch-mixed well-formed stream derived from the fuzz input:
		// parse must return exactly the records up to the first one
		// claiming an uncommitted generation.
		var stream []byte
		var recs []walBatch
		ends := []int64{0}
		seq, epoch := uint64(0), uint32(0)
		for i := 0; i+2 <= len(raw) && i < 16; i += 2 {
			seq += uint64(raw[i]%7) + 1        // strictly increasing, arbitrary gaps
			epoch += uint32(raw[i+1] % 3)      // non-decreasing, sometimes jumping
			val := graph.I(int64(raw[i]) << 3) // payload varies with input
			ops := []storage.Mutation{
				{Op: storage.MutAddVertex, Labels: []string{"F"}},
				{Op: storage.MutSetProp, V: storage.VID(i), Key: "p", Value: val},
			}
			stream = appendWALRecord(stream, seq, epoch, ops)
			recs = append(recs, walBatch{seq: seq, epoch: epoch, ops: ops})
			ends = append(ends, int64(len(stream)))
		}
		wantN := 0
		for wantN < len(recs) && recs[wantN].epoch <= maxEpoch {
			wantN++
		}
		got, gotOff := parseWAL(stream, maxEpoch)
		if !batchesEqual(got, recs[:wantN]) || gotOff != ends[wantN] {
			t.Fatalf("well-formed stream: got %d batches (cleanOff %d), want %d (cleanOff %d)", len(got), gotOff, wantN, ends[wantN])
		}

		// Flip one byte: every record wholly before the corruption must
		// survive untouched (CRC localizes damage to its own record).
		if len(stream) > 0 {
			pos := int(flip) % len(stream)
			mut := append([]byte(nil), stream...)
			mut[pos] ^= 0x5a
			intact := 0
			for intact < wantN && ends[intact+1] <= int64(pos) {
				intact++
			}
			cb, cbOff := parseWAL(mut, maxEpoch)
			checkInvariants(t, cb, cbOff, len(mut), maxEpoch)
			if len(cb) < intact || !batchesEqual(cb[:intact], recs[:intact]) {
				t.Fatalf("corruption at byte %d disturbed one of the %d records before it (got %d batches)", pos, intact, len(cb))
			}
		}
	})
}
