package diskstore

// The bulk-build write path (storage.BatchBuilder) and the finalize /
// compact step that establishes format v4's type-segmented adjacency.
//
// Bulk ingestion defers all adjacency work: AddVertexBatch writes bare
// vertex records, AddEdgeBatch appends bare edge records with no chain
// links, and Finalize builds everything derived — chain links, degree
// records with segment heads, untyped degree counters — in one sorted
// pass. The same pass doubles as the upgrade step for legacy stores
// (Compact), because it never trusts any derived structure: only the
// src/dst/type triples in edges.db.

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// AddVertexBatch creates the batch's vertices with consecutive VIDs
// starting at the returned ID. Labels are set directly in the fresh
// record — one record write per vertex instead of AddVertex's write plus
// one read-modify-write per label.
func (s *Store) AddVertexBatch(batch []storage.BulkVertex) (storage.VID, error) {
	if s.liveMode.Load() {
		if len(batch) == 0 {
			return storage.VID(s.NumVertices()), nil
		}
		muts := make([]storage.Mutation, len(batch))
		for i, bv := range batch {
			muts[i] = storage.Mutation{Op: storage.MutAddVertex, Labels: bv.Labels}
		}
		res, err := s.ApplyMutations(muts)
		if err != nil {
			return 0, err
		}
		return res.Vertices[0], nil
	}
	if err := s.markDirty(); err != nil {
		return 0, err
	}
	ep := s.cur
	first := storage.VID(ep.numVertices)
	for _, bv := range batch {
		v := storage.VID(ep.numVertices)
		ep.numVertices++
		rec := vertexRec{inUse: true}
		for _, l := range bv.Labels {
			id, _, err := s.labelID(l, true)
			if err != nil {
				return 0, err
			}
			w, b := id/64, uint(id%64)
			if rec.labels[w]&(1<<b) == 0 {
				rec.labels[w] |= 1 << b
				ep.byLabel[id] = append(ep.byLabel[id], v)
			}
		}
		if err := ep.writeVertex(v, rec); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// AddEdgeBatch appends bare edge records — src, dst, type, no chain
// links. The edges are invisible to traversals until Finalize links them;
// Flush runs Finalize automatically if the caller has not. The
// pending-finalize state is set before the first record goes out, so even
// a mid-batch failure leaves a store whose next Flush links whatever was
// appended.
func (s *Store) AddEdgeBatch(batch []storage.BulkEdge) error {
	if s.liveMode.Load() {
		muts := make([]storage.Mutation, len(batch))
		for i, be := range batch {
			muts[i] = storage.Mutation{Op: storage.MutAddEdge, Src: be.Src, Dst: be.Dst, Type: be.Type}
		}
		_, err := s.ApplyMutations(muts)
		return err
	}
	if err := s.markDirty(); err != nil {
		return err
	}
	ep := s.cur
	ep.segmented = false
	s.needFinalize = true
	for _, be := range batch {
		if err := s.check(be.Src); err != nil {
			return err
		}
		if err := s.check(be.Dst); err != nil {
			return err
		}
		typeID, ok := s.typeIDs[be.Type]
		if !ok {
			typeID = len(s.types)
			s.types = append(s.types, be.Type)
			s.typeIDs[be.Type] = typeID
		}
		e := storage.EID(ep.numEdges)
		ep.numEdges++
		if err := ep.writeEdge(e, edgeRec{
			inUse: true, typeID: uint32(typeID),
			src: int64(be.Src), dst: int64(be.Dst),
		}); err != nil {
			return err
		}
	}
	return nil
}

// edgeLite is the in-memory shape of one edge during Finalize.
type edgeLite struct {
	src, dst int64
	typeID   uint32
}

// Finalize completes deferred bulk construction and (re)establishes the
// v4 physical layout. It rewrites edges.db clustered by (source vertex,
// edge type) — so a vertex's out adjacency is one contiguous, type-grouped
// run of records and a typed out-traversal touches the minimum number of
// pages — threads type-grouped in-chains through the new records, and
// rebuilds every vertex's degree counters and per-type degree records
// (now doubling as segment descriptors). Afterwards the store satisfies
// the segmented-adjacency invariant: typed ForEach seeks straight to its
// type's segment.
//
// Because Finalize rebuilds all derived structures from the base
// src/dst/type records, it also serves as the format upgrade for legacy
// v2/v3 stores (see Compact) and as the repair step after incremental
// AddEdge calls broke segmentation. Edge IDs are renumbered by the
// clustering; EIDs observed before Finalize are invalid after it (the
// storage.BatchBuilder contract).
func (s *Store) Finalize() error {
	// Live state is folded into the base below; base writers are used for
	// the fold, so live routing is switched off for the duration.
	// Finalize requires exclusive access (no concurrent readers or
	// writers) — it rewrites edges.db in place.
	wasLive := s.liveMode.Load()
	s.liveMode.Store(false)
	ep := s.cur
	if err := s.markDirty(); err != nil {
		return err
	}
	if ep.version < 4 {
		// The rebuild writes current-format degree records and flushes a
		// current-format manifest + index; this is the explicit upgrade
		// path, never taken by plain Open/Flush.
		ep.version = 4
	}
	// The fold and the rewrite below mutate base records in place, and
	// cache eviction may push any subset of the new pages to disk at any
	// moment — a crash leaves files in a mixed old/new state that the
	// (unchanged) manifest still validates. The marker file turns that
	// silent corruption into a detected one: it is created before the
	// first mutated page can reach disk and removed only by the next
	// successful Flush, so Open refuses a store whose finalize never
	// committed (see ErrFinalizeInterrupted).
	if err := s.placeFinalizeMarker(); err != nil {
		return err
	}
	if wasLive {
		if err := s.foldDelta(); err != nil {
			return err
		}
	}
	nE := int(ep.numEdges)
	recs := make([]edgeLite, nE)
	for e := 0; e < nE; e++ {
		er, err := ep.readEdge(storage.EID(e))
		if err != nil {
			return fmt.Errorf("diskstore: finalize: read edge %d: %w", e, err)
		}
		if !er.inUse {
			return fmt.Errorf("diskstore: finalize: edge %d not in use", e)
		}
		recs[e] = edgeLite{src: er.src, dst: er.dst, typeID: er.typeID}
	}

	// New edge order, clustered by (src, type): the new ID of edge
	// perm[k] is k, so a vertex's out-chain is the contiguous run of its
	// records and nextOut links are simply "the next record".
	perm := make([]int, nE)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		a, b := &recs[perm[i]], &recs[perm[j]]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.typeID != b.typeID {
			return a.typeID < b.typeID
		}
		return perm[i] < perm[j] // stable: keep ingest order within a segment
	})
	newID := make([]int, nE)
	for k, old := range perm {
		newID[old] = k
	}

	// In-chains cannot also be physically contiguous, but they are
	// threaded type-grouped (and in ascending new ID within a segment,
	// for what locality remains).
	inOrder := make([]int, nE)
	for i := range inOrder {
		inOrder[i] = i
	}
	sort.Slice(inOrder, func(i, j int) bool {
		a, b := &recs[inOrder[i]], &recs[inOrder[j]]
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.typeID != b.typeID {
			return a.typeID < b.typeID
		}
		return newID[inOrder[i]] < newID[inOrder[j]]
	})
	nextIn := make([]int64, nE) // indexed by new ID; new EID+1 or 0
	for i := 0; i+1 < nE; i++ {
		a, b := inOrder[i], inOrder[i+1]
		if recs[a].dst == recs[b].dst {
			nextIn[newID[a]] = int64(newID[b]) + 1
		}
	}

	// Rewrite edges.db in the new order — one sequential pass.
	for k, old := range perm {
		r := recs[old]
		var nextOut int64
		if k+1 < nE && recs[perm[k+1]].src == r.src {
			nextOut = int64(k) + 2
		}
		if err := ep.writeEdge(storage.EID(k), edgeRec{
			inUse: true, typeID: r.typeID, src: r.src, dst: r.dst,
			nextOut: nextOut, nextIn: nextIn[k],
		}); err != nil {
			return err
		}
	}

	// Per-vertex: adjacency heads, untyped degree counters, and the
	// ascending-type degree chain with segment heads. degrees.db is
	// rewritten from scratch.
	ep.numDegs = 0
	oi, ii := 0, 0
	var degs []degRec
	for v := int64(0); v < ep.numVertices; v++ {
		rec, err := ep.readVertex(storage.VID(v))
		if err != nil {
			return err
		}
		outStart := oi
		for oi < nE && recs[perm[oi]].src == v {
			oi++
		}
		inStart := ii
		for ii < nE && recs[inOrder[ii]].dst == v {
			ii++
		}
		rec.outDeg = uint32(oi - outStart)
		rec.inDeg = uint32(ii - inStart)
		rec.firstOut, rec.firstIn, rec.firstDeg = 0, 0, 0
		if oi > outStart {
			rec.firstOut = int64(outStart) + 1
		}
		if ii > inStart {
			rec.firstIn = int64(newID[inOrder[inStart]]) + 1
		}
		// Merge the two type-grouped runs into one ascending-type chain.
		degs = degs[:0]
		o, i := outStart, inStart
		for o < oi || i < ii {
			var t uint32
			switch {
			case o >= oi:
				t = recs[inOrder[i]].typeID
			case i >= ii:
				t = recs[perm[o]].typeID
			default:
				t = min(recs[perm[o]].typeID, recs[inOrder[i]].typeID)
			}
			dr := degRec{inUse: true, typeID: t}
			if o < oi && recs[perm[o]].typeID == t {
				dr.firstOut = int64(o) + 1
				for o < oi && recs[perm[o]].typeID == t {
					o++
					dr.outDeg++
				}
			}
			if i < ii && recs[inOrder[i]].typeID == t {
				dr.firstIn = int64(newID[inOrder[i]]) + 1
				for i < ii && recs[inOrder[i]].typeID == t {
					i++
					dr.inDeg++
				}
			}
			degs = append(degs, dr)
		}
		if len(degs) > 0 {
			base := ep.numDegs
			rec.firstDeg = base + 1
			for j := range degs {
				if j+1 < len(degs) {
					degs[j].next = base + int64(j) + 2
				}
				if err := ep.writeDeg(base+int64(j), degs[j]); err != nil {
					return err
				}
			}
			ep.numDegs += int64(len(degs))
		}
		if err := ep.writeVertex(storage.VID(v), rec); err != nil {
			return err
		}
	}
	ep.segmented = true
	s.needFinalize = false
	// A finalized store with at least one vertex and one edge accepts
	// durable live mutations (see live.go). Empty or vertex-only stores
	// stay in build mode: they are still being constructed and their
	// cheap base mutations need no WAL. The delta restarts at the new
	// base boundaries either way.
	if ep.numVertices > 0 && ep.numEdges > 0 {
		s.delta = newDelta(ep.numVertices, ep.numEdges)
		s.delta.appliedSeq.Store(s.walFoldedSeq)
		s.liveMode.Store(true)
	}
	return nil
}

// foldDelta appends the delta segment's visible state to the base files
// so the rebuild that follows links it. It consumes a frozen copy of the
// delta (freeze with an unbounded watermark — the caller has exclusive
// access, so everything is visible): delta vertices keep their VIDs (the
// delta numbered them past the base, so appending in VID order
// reproduces the live IDs) and delta edges keep their ingest order (bare
// records only — Finalize's rewrite links and renumbers them). Once the
// fold is in the base, the WAL records it absorbed are dead weight:
// walFoldedSeq advances to fence them out of replay, and the next Flush
// — the manifest commit that makes the fold durable — truncates the log
// (pendingCheckpoint). The caller has switched live routing off and
// placed the finalize marker, so every write here uses the base build
// path and a crash mid-fold is detected at next Open.
func (s *Store) foldDelta() error {
	ep := s.cur
	w := vis{baseVerts: ep.numVertices, baseEdges: ep.numEdges, baseSeq: ep.baseSeq, maxSeq: ^uint64(0)}
	fd := s.delta.freeze(w)
	for i := range fd.verts {
		fv := &fd.verts[i]
		v := storage.VID(ep.numVertices)
		ep.numVertices++
		rec := vertexRec{inUse: true}
		for _, id := range fv.labelIDs {
			w, b := id/64, uint(id%64)
			if rec.labels[w]&(1<<b) == 0 {
				rec.labels[w] |= 1 << b
				ep.byLabel[id] = append(ep.byLabel[id], v)
			}
		}
		if err := ep.writeVertex(v, rec); err != nil {
			return err
		}
	}
	// Label additions on base vertices (delta-vertex labels were folded
	// into their fresh records above). The delta deduplicated against
	// base bits at apply time, but re-checking here keeps byLabel clean
	// even if the same label was added twice across batches.
	for v, ids := range fd.labelAdds {
		rec, err := ep.readVertex(v)
		if err != nil {
			return err
		}
		changed := false
		for _, id := range ids {
			w, b := id/64, uint(id%64)
			if rec.labels[w]&(1<<b) == 0 {
				rec.labels[w] |= 1 << b
				ep.byLabel[id] = append(ep.byLabel[id], v)
				changed = true
			}
		}
		if changed {
			if err := ep.writeVertex(v, rec); err != nil {
				return err
			}
		}
	}
	// Delta edges in EID order: sequential appends reproduce the live
	// EIDs (not that they survive — the rebuild renumbers; what matters
	// is that ingest order is preserved for the stable sort).
	for _, fe := range fd.edges {
		e := storage.EID(ep.numEdges)
		ep.numEdges++
		if err := ep.writeEdge(e, edgeRec{
			inUse: true, typeID: fe.typeID,
			src: int64(fe.src), dst: int64(fe.dst),
		}); err != nil {
			return err
		}
	}
	// Properties last, once every vertex they touch has a base record:
	// delta-vertex values and base-vertex overrides both go through the
	// base prop chain.
	for i := range fd.verts {
		fv := &fd.verts[i]
		for keyID, val := range fv.props {
			if err := s.SetProp(fv.v, s.keys[keyID], val); err != nil {
				return err
			}
		}
	}
	for v, m := range fd.propOver {
		for keyID, val := range m {
			if err := s.SetProp(v, s.keys[keyID], val); err != nil {
				return err
			}
		}
	}
	if w := s.wal.Load(); w != nil {
		s.walFoldedSeq = w.lastAppended()
		s.pendingCheckpoint = true
	}
	// The base now holds everything up to the fence.
	ep.baseSeq = s.walFoldedSeq
	s.delta = newDelta(ep.numVertices, ep.numEdges)
	s.delta.appliedSeq.Store(s.walFoldedSeq)
	return nil
}
