package diskstore

// The bulk-build write path (storage.BatchBuilder) and the finalize /
// compact step that establishes format v4's type-segmented adjacency.
//
// Bulk ingestion defers all adjacency work: AddVertexBatch writes bare
// vertex records, AddEdgeBatch appends bare edge records with no chain
// links, and Finalize builds everything derived — chain links, degree
// records with segment heads, untyped degree counters — in one sorted
// pass. The same pass doubles as the upgrade step for legacy stores
// (Compact), because it never trusts any derived structure: only the
// src/dst/type triples in edges.db.

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/storage"
)

// AddVertexBatch creates the batch's vertices with consecutive VIDs
// starting at the returned ID. Labels are set directly in the fresh
// record — one record write per vertex instead of AddVertex's write plus
// one read-modify-write per label.
func (s *Store) AddVertexBatch(batch []storage.BulkVertex) (storage.VID, error) {
	if s.liveMode.Load() {
		if len(batch) == 0 {
			return storage.VID(s.NumVertices()), nil
		}
		muts := make([]storage.Mutation, len(batch))
		for i, bv := range batch {
			muts[i] = storage.Mutation{Op: storage.MutAddVertex, Labels: bv.Labels}
		}
		res, err := s.ApplyMutations(muts)
		if err != nil {
			return 0, err
		}
		return res.Vertices[0], nil
	}
	if err := s.markDirty(); err != nil {
		return 0, err
	}
	ep := s.cur
	first := storage.VID(ep.numVertices)
	for _, bv := range batch {
		v := storage.VID(ep.numVertices)
		ep.numVertices++
		rec := vertexRec{inUse: true}
		for _, l := range bv.Labels {
			id, _, err := s.labelID(l, true)
			if err != nil {
				return 0, err
			}
			w, b := id/64, uint(id%64)
			if rec.labels[w]&(1<<b) == 0 {
				rec.labels[w] |= 1 << b
				ep.byLabel[id] = append(ep.byLabel[id], v)
			}
		}
		if err := ep.writeVertex(v, rec); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// AddEdgeBatch appends bare edge records — src, dst, type, no chain
// links. The edges are invisible to traversals until Finalize links them;
// Flush runs Finalize automatically if the caller has not. The
// pending-finalize state is set before the first record goes out, so even
// a mid-batch failure leaves a store whose next Flush links whatever was
// appended.
func (s *Store) AddEdgeBatch(batch []storage.BulkEdge) error {
	if s.liveMode.Load() {
		muts := make([]storage.Mutation, len(batch))
		for i, be := range batch {
			muts[i] = storage.Mutation{Op: storage.MutAddEdge, Src: be.Src, Dst: be.Dst, Type: be.Type}
		}
		_, err := s.ApplyMutations(muts)
		return err
	}
	if err := s.markDirty(); err != nil {
		return err
	}
	ep := s.cur
	ep.segmented = false
	ep.compressed = false // bare records follow; see AddEdge
	s.needFinalize = true
	for _, be := range batch {
		if err := s.check(be.Src); err != nil {
			return err
		}
		if err := s.check(be.Dst); err != nil {
			return err
		}
		typeID, ok := s.typeIDs[be.Type]
		if !ok {
			typeID = len(s.types)
			s.types = append(s.types, be.Type)
			s.typeIDs[be.Type] = typeID
		}
		e := storage.EID(ep.numEdges)
		ep.numEdges++
		if err := ep.writeEdge(e, edgeRec{
			inUse: true, typeID: uint32(typeID),
			src: int64(be.Src), dst: int64(be.Dst),
		}); err != nil {
			return err
		}
	}
	return nil
}

// edgeLite is the in-memory shape of one edge during Finalize.
type edgeLite struct {
	src, dst int64
	typeID   uint32
}

// Finalize completes deferred bulk construction and (re)establishes the
// v4 physical layout. It rewrites edges.db clustered by (source vertex,
// edge type) — so a vertex's out adjacency is one contiguous, type-grouped
// run of records and a typed out-traversal touches the minimum number of
// pages — threads type-grouped in-chains through the new records, and
// rebuilds every vertex's degree counters and per-type degree records
// (now doubling as segment descriptors). Afterwards the store satisfies
// the segmented-adjacency invariant: typed ForEach seeks straight to its
// type's segment.
//
// Because Finalize rebuilds all derived structures from the base
// src/dst/type records, it also serves as the format upgrade for legacy
// v2/v3 stores (see Compact) and as the repair step after incremental
// AddEdge calls broke segmentation. Edge IDs are renumbered by the
// clustering; EIDs observed before Finalize are invalid after it (the
// storage.BatchBuilder contract).
func (s *Store) Finalize() error {
	// Live state is folded into the base below; base writers are used for
	// the fold, so live routing is switched off for the duration.
	// Finalize requires exclusive access (no concurrent readers or
	// writers) — it rewrites edges.db in place.
	wasLive := s.liveMode.Load()
	s.liveMode.Store(false)
	ep := s.cur
	if err := s.markDirty(); err != nil {
		return err
	}
	// The rebuild writes target-format degree records and flushes a
	// matching manifest + index; this is the explicit upgrade path, never
	// taken by plain Open/Flush. Stores pinned to a legacy format via
	// Options.Format still upgrade to at least v4 (the segmented layout
	// the rebuild produces), but stay below v5 so tests and benchmarks
	// can synthesize uncompressed stores.
	target := formatVersion
	if s.opts.Format != 0 {
		target = s.opts.Format
		if target < 4 {
			target = 4
		}
	}
	if ep.version < target {
		ep.version = target
	}
	compress := ep.version >= 5
	// The fold and the rewrite below mutate base records in place, and
	// cache eviction may push any subset of the new pages to disk at any
	// moment — a crash leaves files in a mixed old/new state that the
	// (unchanged) manifest still validates. The marker file turns that
	// silent corruption into a detected one: it is created before the
	// first mutated page can reach disk and removed only by the next
	// successful Flush, so Open refuses a store whose finalize never
	// committed (see ErrFinalizeInterrupted).
	if err := s.placeFinalizeMarker(); err != nil {
		return err
	}
	var extra []edgeLite
	if wasLive {
		var err error
		if extra, err = s.foldDelta(); err != nil {
			return err
		}
	}
	// Gather base edges through the layout-aware enumerator: a legacy or
	// v4 base is read as 64-byte records, an already-compressed v5 base is
	// decoded from its segments. Delta edges ride along after the base so
	// the stable sort preserves ingest order.
	recs := make([]edgeLite, 0, int(ep.numEdges)+len(extra))
	if err := ep.forEachEdgeLite(func(el edgeLite) error {
		recs = append(recs, el)
		return nil
	}); err != nil {
		return fmt.Errorf("diskstore: finalize: %w", err)
	}
	if int64(len(recs)) != ep.numEdges {
		return fmt.Errorf("diskstore: finalize: gathered %d base edges, expected %d", len(recs), ep.numEdges)
	}
	recs = append(recs, extra...)
	nE := len(recs)
	ep.numEdges = int64(nE)
	// Everything below writes the target layout; the old bytes in
	// edges.db are dead once the gather above is done.
	ep.compressed = compress

	// New edge order, clustered by (src, type): the new ID of edge
	// perm[k] is k, so a vertex's out-chain is the contiguous run of its
	// records and nextOut links are simply "the next record".
	perm := make([]int, nE)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		a, b := &recs[perm[i]], &recs[perm[j]]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.typeID != b.typeID {
			return a.typeID < b.typeID
		}
		if compress && a.dst != b.dst {
			// v5 gap-encodes each segment's dst list, which requires it
			// sorted; v4 keeps plain ingest order so its layout is
			// byte-identical to what earlier releases wrote.
			return a.dst < b.dst
		}
		return perm[i] < perm[j] // stable: keep ingest order within a segment
	})
	newID := make([]int, nE)
	for k, old := range perm {
		newID[old] = k
	}

	// In-chains cannot also be physically contiguous, but they are
	// threaded type-grouped (and in ascending new ID within a segment,
	// for what locality remains).
	inOrder := make([]int, nE)
	for i := range inOrder {
		inOrder[i] = i
	}
	sort.Slice(inOrder, func(i, j int) bool {
		a, b := &recs[inOrder[i]], &recs[inOrder[j]]
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.typeID != b.typeID {
			return a.typeID < b.typeID
		}
		return newID[inOrder[i]] < newID[inOrder[j]]
	})
	// Edge records (and their chain links) exist only in the uncompressed
	// layout; a compressed epoch's edges.db holds nothing but segments.
	if !compress {
		nextIn := make([]int64, nE) // indexed by new ID; new EID+1 or 0
		for i := 0; i+1 < nE; i++ {
			a, b := inOrder[i], inOrder[i+1]
			if recs[a].dst == recs[b].dst {
				nextIn[newID[a]] = int64(newID[b]) + 1
			}
		}
		// Rewrite edges.db in the new order — one sequential pass.
		for k, old := range perm {
			r := recs[old]
			var nextOut int64
			if k+1 < nE && recs[perm[k+1]].src == r.src {
				nextOut = int64(k) + 2
			}
			if err := ep.writeEdge(storage.EID(k), edgeRec{
				inUse: true, typeID: r.typeID, src: r.src, dst: r.dst,
				nextOut: nextOut, nextIn: nextIn[k],
			}); err != nil {
				return err
			}
		}
	}

	// Per-vertex: adjacency heads, untyped degree counters, and the
	// ascending-type degree chain with segment heads (v4) or segment
	// descriptors (v5). degrees.db is rewritten from scratch. In
	// compressed mode the same pass emits the delta-varint segments at a
	// running cursor and accumulates the statistics block: per-edge-type
	// counts and per-(label, key) bloom hashes over every property value.
	ep.numDegs = 0
	oi, ii := 0, 0
	var degs []degRec
	var cursor int64
	var segBuf []byte
	var hashAcc map[uint64][]uint64
	var typeCounts []int64
	var labelIDs []int
	if compress {
		hashAcc = make(map[uint64][]uint64)
		typeCounts = make([]int64, len(s.types))
		for i := range recs {
			typeCounts[recs[i].typeID]++
		}
	}
	for v := int64(0); v < ep.numVertices; v++ {
		rec, err := ep.readVertex(storage.VID(v))
		if err != nil {
			return err
		}
		outStart := oi
		for oi < nE && recs[perm[oi]].src == v {
			oi++
		}
		inStart := ii
		for ii < nE && recs[inOrder[ii]].dst == v {
			ii++
		}
		rec.outDeg = uint32(oi - outStart)
		rec.inDeg = uint32(ii - inStart)
		rec.firstOut, rec.firstIn, rec.firstDeg = 0, 0, 0
		if !compress {
			// Adjacency heads point at edge records; a compressed vertex
			// reaches its edges only through the degree chain's segment
			// descriptors.
			if oi > outStart {
				rec.firstOut = int64(outStart) + 1
			}
			if ii > inStart {
				rec.firstIn = int64(newID[inOrder[inStart]]) + 1
			}
		}
		// Merge the two type-grouped runs into one ascending-type chain.
		degs = degs[:0]
		o, i := outStart, inStart
		for o < oi || i < ii {
			var t uint32
			switch {
			case o >= oi:
				t = recs[inOrder[i]].typeID
			case i >= ii:
				t = recs[perm[o]].typeID
			default:
				t = min(recs[perm[o]].typeID, recs[inOrder[i]].typeID)
			}
			dr := degRec{inUse: true, typeID: t}
			if o < oi && recs[perm[o]].typeID == t {
				if compress {
					dr.firstOutEID = int64(o) + 1
					segBuf = segBuf[:0]
					first := o
					var prev int64
					for o < oi && recs[perm[o]].typeID == t {
						d := recs[perm[o]].dst
						segBuf = appendOutSeg(segBuf, d, prev, o == first)
						prev = d
						o++
						dr.outDeg++
					}
					dr.outOff = cursor + 1
					dr.outLen = uint32(len(segBuf))
					if err := ep.pager.write(fileEdges, cursor, segBuf); err != nil {
						return err
					}
					cursor += int64(len(segBuf))
				} else {
					dr.firstOut = int64(o) + 1
					for o < oi && recs[perm[o]].typeID == t {
						o++
						dr.outDeg++
					}
				}
			}
			if i < ii && recs[inOrder[i]].typeID == t {
				if compress {
					segBuf = segBuf[:0]
					first := i
					var prevSrc, prevEid int64
					for i < ii && recs[inOrder[i]].typeID == t {
						src := recs[inOrder[i]].src
						eid := int64(newID[inOrder[i]])
						segBuf = appendInSeg(segBuf, src, prevSrc, eid, prevEid, i == first)
						prevSrc, prevEid = src, eid
						i++
						dr.inDeg++
					}
					dr.inOff = cursor + 1
					dr.inLen = uint32(len(segBuf))
					if err := ep.pager.write(fileEdges, cursor, segBuf); err != nil {
						return err
					}
					cursor += int64(len(segBuf))
				} else {
					dr.firstIn = int64(newID[inOrder[i]]) + 1
					for i < ii && recs[inOrder[i]].typeID == t {
						i++
						dr.inDeg++
					}
				}
			}
			degs = append(degs, dr)
		}
		if len(degs) > 0 {
			base := ep.numDegs
			rec.firstDeg = base + 1
			for j := range degs {
				if j+1 < len(degs) {
					degs[j].next = base + int64(j) + 2
				}
				if err := ep.writeDeg(base+int64(j), degs[j]); err != nil {
					return err
				}
			}
			ep.numDegs += int64(len(degs))
		}
		if compress {
			// Statistics: hash every property value once, bucketed by each
			// label the vertex carries. Filters are sized after the pass,
			// when per-bucket cardinalities are known.
			labelIDs = labelIDs[:0]
			for w, word := range rec.labels {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << b
					labelIDs = append(labelIDs, w*64+b)
				}
			}
			if len(labelIDs) > 0 {
				for p := rec.firstProp; p != 0; {
					pr, err := ep.readProp(p - 1)
					if err != nil {
						return err
					}
					p = pr.next
					val, err := ep.decodeValue(pr)
					if err != nil {
						return err
					}
					h := hashValue(val)
					for _, lid := range labelIDs {
						k := bloomKey(lid, int(pr.keyID))
						hashAcc[k] = append(hashAcc[k], h)
					}
				}
			}
		}
		if err := ep.writeVertex(storage.VID(v), rec); err != nil {
			return err
		}
	}
	if compress {
		// Segments are strictly smaller than the records they replace
		// (<= 27 bytes/edge worst case vs 64), so the rewrite never caught
		// up with itself and the tail past the cursor is dead — reclaim it.
		ep.edgeBytes = cursor
		if err := ep.pager.truncate(fileEdges, cursor); err != nil {
			return err
		}
		blooms := make(map[uint64]*bloom, len(hashAcc))
		for k, hs := range hashAcc {
			b := newBloom(len(hs))
			for _, h := range hs {
				b.add(h)
			}
			blooms[k] = b
		}
		ep.typeCounts = typeCounts
		ep.blooms = blooms
		ep.statsValid = true
	} else {
		ep.edgeBytes = 0
	}
	ep.segmented = true
	s.needFinalize = false
	// A finalized store with at least one vertex and one edge accepts
	// durable live mutations (see live.go). Empty or vertex-only stores
	// stay in build mode: they are still being constructed and their
	// cheap base mutations need no WAL. The delta restarts at the new
	// base boundaries either way.
	if ep.numVertices > 0 && ep.numEdges > 0 {
		s.delta = newDelta(ep.numVertices, ep.numEdges)
		s.delta.appliedSeq.Store(s.walFoldedSeq)
		s.liveMode.Store(true)
	}
	return nil
}

// foldDelta appends the delta segment's visible vertex/label/property
// state to the base files so the rebuild that follows links it, and
// returns the delta's edges in ingest order for the caller to merge into
// its gather (Finalize renumbers and writes them — appending records
// here would corrupt a compressed base, whose edges.db holds segments,
// not records). It consumes a frozen copy of the delta (freeze with an
// unbounded watermark — the caller has exclusive access, so everything
// is visible): delta vertices keep their VIDs (the delta numbered them
// past the base, so appending in VID order reproduces the live IDs).
// Once the fold is in the base, the WAL records it absorbed are dead
// weight: walFoldedSeq advances to fence them out of replay, and the
// next Flush — the manifest commit that makes the fold durable —
// truncates the log (pendingCheckpoint). The caller has switched live
// routing off and placed the finalize marker, so every write here uses
// the base build path and a crash mid-fold is detected at next Open;
// the caller's tail also restarts the delta at the new base boundaries.
func (s *Store) foldDelta() ([]edgeLite, error) {
	ep := s.cur
	w := vis{baseVerts: ep.numVertices, baseEdges: ep.numEdges, baseSeq: ep.baseSeq, maxSeq: ^uint64(0)}
	fd := s.delta.freeze(w)
	for i := range fd.verts {
		fv := &fd.verts[i]
		v := storage.VID(ep.numVertices)
		ep.numVertices++
		rec := vertexRec{inUse: true}
		for _, id := range fv.labelIDs {
			w, b := id/64, uint(id%64)
			if rec.labels[w]&(1<<b) == 0 {
				rec.labels[w] |= 1 << b
				ep.byLabel[id] = append(ep.byLabel[id], v)
			}
		}
		if err := ep.writeVertex(v, rec); err != nil {
			return nil, err
		}
	}
	// Label additions on base vertices (delta-vertex labels were folded
	// into their fresh records above). The delta deduplicated against
	// base bits at apply time, but re-checking here keeps byLabel clean
	// even if the same label was added twice across batches.
	for v, ids := range fd.labelAdds {
		rec, err := ep.readVertex(v)
		if err != nil {
			return nil, err
		}
		changed := false
		for _, id := range ids {
			w, b := id/64, uint(id%64)
			if rec.labels[w]&(1<<b) == 0 {
				rec.labels[w] |= 1 << b
				ep.byLabel[id] = append(ep.byLabel[id], v)
				changed = true
			}
		}
		if changed {
			if err := ep.writeVertex(v, rec); err != nil {
				return nil, err
			}
		}
	}
	// Delta edges in EID order, handed back rather than written: ingest
	// order is preserved for the stable sort, and the caller's rebuild
	// assigns their final IDs and bytes.
	extra := make([]edgeLite, len(fd.edges))
	for i, fe := range fd.edges {
		extra[i] = edgeLite{src: int64(fe.src), dst: int64(fe.dst), typeID: fe.typeID}
	}
	// Properties last, once every vertex they touch has a base record:
	// delta-vertex values and base-vertex overrides both go through the
	// base prop chain.
	for i := range fd.verts {
		fv := &fd.verts[i]
		for keyID, val := range fv.props {
			if err := s.SetProp(fv.v, s.keys[keyID], val); err != nil {
				return nil, err
			}
		}
	}
	for v, m := range fd.propOver {
		for keyID, val := range m {
			if err := s.SetProp(v, s.keys[keyID], val); err != nil {
				return nil, err
			}
		}
	}
	if w := s.wal.Load(); w != nil {
		s.walFoldedSeq = w.lastAppended()
		s.pendingCheckpoint = true
	}
	// The base now holds everything up to the fence.
	ep.baseSeq = s.walFoldedSeq
	return extra, nil
}
