package diskstore

// The read surface. Every read resolves through a view: a pinned epoch
// plus a delta visibility window. Store methods build a transient view
// per call (pin, read, unpin); Snap holds one fixed view for its
// lifetime, which is what gives snapshot isolation across a background
// fold. All merge logic — base records first, delta entries filtered by
// the window — lives on view, so the two surfaces cannot drift apart.
//
// Pin protocol: the store's own reference keeps the current epoch's pin
// count at >= 1; acquire takes epMu shared just long enough to pin, so a
// fold's swap (which takes epMu exclusively, for a pointer assignment
// only) serializes against in-flight acquires but never waits on a
// long-running read. When the swap drops the store's reference, the last
// unpin reclaims the superseded generation: close its files, delete
// them, and — once no retired epoch remains — prune the delta entries
// the new base absorbed.

import (
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/storage"
)

// view is one consistent read context: an epoch (pinned by the caller
// for the duration of use unless the store is in exclusive build mode)
// and the delta window visible on top of it. nV/nE are the view's total
// vertex/edge counts; -1 means dynamic (a current-epoch view tracks the
// delta as it grows), a fixed value means a frozen snapshot.
type view struct {
	s    *Store
	ep   *epoch
	w    vis
	live bool
	nV   int64
	nE   int64
}

// acquire pins the current epoch and returns a dynamic view of it. Pair
// with release.
func (s *Store) acquire() view {
	if !s.liveMode.Load() {
		// Exclusive build mode: one epoch, no folds, delta invisible.
		return view{s: s, ep: s.cur, nV: -1, nE: -1}
	}
	s.epMu.RLock()
	ep := s.cur
	ep.pins.Add(1)
	s.epMu.RUnlock()
	return view{
		s: s, ep: ep, live: true,
		w:  vis{baseVerts: ep.numVertices, baseEdges: ep.numEdges, baseSeq: ep.baseSeq, maxSeq: ^uint64(0)},
		nV: -1, nE: -1,
	}
}

func (s *Store) release(vw view) {
	if vw.live && vw.ep.pins.Add(-1) == 0 {
		s.reclaimEpoch(vw.ep)
	}
}

// reclaimEpoch disposes of a superseded generation whose last pin just
// drained: close and delete its files, and once no retired epoch is
// left, prune the delta prefix the current base absorbed. The prune runs
// under liveMu so mutation routing in applyToDelta never observes a
// half-pruned delta.
func (s *Store) reclaimEpoch(ep *epoch) {
	ep.closeFiles()
	for _, p := range ep.retire {
		os.Remove(p)
	}
	if s.retired.Add(-1) == 0 {
		s.liveMu.Lock()
		if s.retired.Load() == 0 {
			cur := s.curEp()
			s.delta.prune(cur.baseSeq, cur.numVertices, cur.numEdges)
		}
		s.liveMu.Unlock()
	}
}

// ---- view read logic ----

// numVertices is the view's total vertex count (also its VID bound —
// delta VIDs continue the base range with no holes inside a consistent
// view).
func (vw view) numVertices() int64 {
	if !vw.live {
		return vw.ep.numVertices
	}
	if vw.nV >= 0 {
		return vw.nV
	}
	// Dynamic current-epoch view: the delta's global next-VID *is* the
	// visible total (base absorbed a prefix of the same numbering).
	return vw.s.delta.nextV.Load()
}

func (vw view) numEdges() int64 {
	if !vw.live {
		return vw.ep.numEdges
	}
	if vw.nE >= 0 {
		return vw.nE
	}
	return vw.s.delta.nextE.Load()
}

// deltaEdges is the number of delta edges visible in the view — a cheap
// "can I skip the delta merge" hint for traversals.
func (vw view) deltaEdges() int64 {
	if !vw.live {
		return 0
	}
	return vw.numEdges() - vw.ep.numEdges
}

func (vw view) checkV(v storage.VID) bool {
	return v >= 0 && int64(v) < vw.numVertices()
}

func (vw view) countLabelID(label storage.SymbolID) int {
	if label == storage.AnySymbol {
		return int(vw.numVertices())
	}
	if label < 0 {
		return 0
	}
	n := len(vw.ep.byLabel[int(label)])
	if vw.live {
		n += vw.s.delta.labelCount(int(label), vw.w)
	}
	return n
}

func (vw view) forEachVertexID(label storage.SymbolID, fn func(storage.VID) bool) {
	if label == storage.AnySymbol {
		total := vw.numVertices()
		for v := int64(0); v < total; v++ {
			if !fn(storage.VID(v)) {
				return
			}
		}
		return
	}
	if label < 0 {
		return
	}
	for _, v := range vw.ep.byLabel[int(label)] {
		if !fn(v) {
			return
		}
	}
	if vw.live {
		for _, v := range vw.s.delta.labelVIDs(int(label), vw.w) {
			if !fn(v) {
				return
			}
		}
	}
}

// planVertexScan splits the label's base postings plus its
// delta-visible members into near-even partitions for morsel-style
// parallel execution. Base partitions are subslices of the (immutable
// per epoch) posting index; delta members are copied once here, so the
// whole plan is one consistent snapshot — and since the returned scans
// touch only those in-memory slices, never the pager, they stay valid
// even if the caller's pin is released before they run. (Cross-fold
// consistency for the rest of the query still needs a held Snapshot;
// the query layer acquires one.)
func (vw view) planVertexScan(label storage.SymbolID, parts int) []storage.VertexScan {
	if label == storage.AnySymbol {
		// Snapshot the dense VID range once; vertices appended to the
		// delta after this point belong to no partition, matching a
		// serial scan that snapshots NumVertices up front.
		ranges := storage.SplitRange(int(vw.numVertices()), parts)
		scans := make([]storage.VertexScan, len(ranges))
		for i, r := range ranges {
			lo, hi := int64(r[0]), int64(r[1])
			scans[i] = func(fn func(storage.VID) bool) {
				for v := lo; v < hi; v++ {
					if !fn(storage.VID(v)) {
						return
					}
				}
			}
		}
		return scans
	}
	if label < 0 {
		return nil
	}
	base := vw.ep.byLabel[int(label)]
	var delta []storage.VID
	if vw.live {
		delta = vw.s.delta.labelVIDs(int(label), vw.w)
	}
	// Split the virtual concatenation base ++ delta so partition sizes
	// stay even regardless of how much of the label lives in the delta.
	ranges := storage.SplitRange(len(base)+len(delta), parts)
	scans := make([]storage.VertexScan, len(ranges))
	for i, r := range ranges {
		var basePart, deltaPart []storage.VID
		if r[0] < len(base) {
			basePart = base[r[0]:min(r[1], len(base))]
		}
		if r[1] > len(base) {
			deltaPart = delta[max(r[0]-len(base), 0) : r[1]-len(base)]
		}
		scans[i] = func(fn func(storage.VID) bool) {
			for _, v := range basePart {
				if !fn(v) {
					return
				}
			}
			for _, v := range deltaPart {
				if !fn(v) {
					return
				}
			}
		}
	}
	return scans
}

func (vw view) hasLabelID(v storage.VID, label storage.SymbolID) bool {
	if label < 0 || !vw.checkV(v) {
		return false
	}
	if vw.live && int64(v) >= vw.ep.numVertices {
		return vw.s.delta.hasLabel(v, int(label), vw.w)
	}
	rec, err := vw.ep.readVertex(v)
	if err != nil {
		return false
	}
	if rec.labels[label/64]&(1<<uint(label%64)) != 0 {
		return true
	}
	return vw.live && vw.s.delta.hasLabel(v, int(label), vw.w)
}

// labelIDsOf returns the vertex's label IDs (unsorted): record bits plus
// delta additions for base vertices, delta state for delta vertices.
func (vw view) labelIDsOf(v storage.VID) []int {
	if !vw.checkV(v) {
		return nil
	}
	if vw.live && int64(v) >= vw.ep.numVertices {
		return vw.s.delta.vertexLabelIDs(v, vw.w)
	}
	rec, err := vw.ep.readVertex(v)
	if err != nil {
		return nil
	}
	ids := labelBitsToIDs(rec.labels)
	if vw.live {
		ids = append(ids, vw.s.delta.labelAddIDs(v, vw.w)...)
	}
	return ids
}

// propID returns the property value visible in the view. Delta-side
// values win: a live SetProp overrides the base chain without touching
// it (the delta hides overrides the base already absorbed, so the two
// sides never double-report).
func (vw view) propID(v storage.VID, key storage.SymbolID) (graph.Value, bool) {
	if key < 0 || !vw.checkV(v) {
		return graph.Null, false
	}
	if vw.live {
		if int64(v) >= vw.ep.numVertices {
			return vw.s.delta.prop(v, int(key), vw.w)
		}
		if val, ok := vw.s.delta.prop(v, int(key), vw.w); ok {
			return val, true
		}
	}
	rec, err := vw.ep.readVertex(v)
	if err != nil {
		return graph.Null, false
	}
	for p := rec.firstProp; p != 0; {
		pr, err := vw.ep.readProp(p - 1)
		if err != nil {
			return graph.Null, false
		}
		if pr.keyID == uint32(key) {
			val, err := vw.ep.decodeValue(pr)
			if err != nil {
				return graph.Null, false
			}
			return val, true
		}
		p = pr.next
	}
	return graph.Null, false
}

// propKeyIDsOf returns the key IDs with values on v in the view,
// deduplicated (an override of an existing key appears once).
func (vw view) propKeyIDsOf(v storage.VID) []int {
	if !vw.checkV(v) {
		return nil
	}
	var ids []int
	if !vw.live || int64(v) < vw.ep.numVertices {
		rec, err := vw.ep.readVertex(v)
		if err != nil {
			return nil
		}
		for p := rec.firstProp; p != 0; {
			pr, err := vw.ep.readProp(p - 1)
			if err != nil {
				return nil
			}
			ids = append(ids, int(pr.keyID))
			p = pr.next
		}
	}
	if vw.live {
		for _, id := range vw.s.delta.propKeyIDs(v, vw.w) {
			dup := false
			for _, have := range ids {
				if have == id {
					dup = true
					break
				}
			}
			if !dup {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

func (vw view) forEachID(v storage.VID, etype storage.SymbolID, out bool, fn func(storage.EID, storage.VID) bool) {
	if !vw.checkV(v) || etype == storage.NoSymbol {
		return
	}
	if !vw.live {
		vw.ep.forEachBase(v, etype, out, fn)
		return
	}
	// Live merge: base edges first — on the segment fast path, untouched
	// by live writes — then the vertex's visible delta adjacency. Delta
	// vertices have no base records at all.
	if int64(v) < vw.ep.numVertices {
		if !vw.ep.forEachBase(v, etype, out, fn) {
			return
		}
	}
	if vw.deltaEdges() == 0 {
		return
	}
	for _, de := range vw.s.delta.adj(v, out, vw.w) {
		if etype == storage.AnySymbol || de.typeID == uint32(etype) {
			if !fn(de.e, de.other) {
				return
			}
		}
	}
}

// degreeID answers degree queries without touching the edge file where
// the format allows: untyped degrees come from the vertex record's
// counters, typed degrees from the per-type degree chain (one record per
// distinct edge type), plus the visible delta count. Legacy v2 stores
// fall back to counting the adjacency chain for typed queries.
func (vw view) degreeID(v storage.VID, etype storage.SymbolID, out bool) int {
	if !vw.checkV(v) || etype == storage.NoSymbol {
		return 0
	}
	deltaN := 0
	if vw.live {
		if int64(v) >= vw.ep.numVertices {
			return vw.s.delta.degree(v, etype, out, vw.w) // delta vertex: no base records
		}
		deltaN = vw.s.delta.degree(v, etype, out, vw.w)
	}
	ep := vw.ep
	if ep.legacyDegrees() && etype != storage.AnySymbol {
		n := 0
		ep.forEachBase(v, etype, out, func(storage.EID, storage.VID) bool {
			n++
			return true
		})
		return n + deltaN
	}
	rec, err := ep.readVertex(v)
	if err != nil {
		return 0
	}
	if etype == storage.AnySymbol {
		if out {
			return int(rec.outDeg) + deltaN
		}
		return int(rec.inDeg) + deltaN
	}
	for d := rec.firstDeg; d != 0; {
		dr, err := ep.readDeg(d - 1)
		if err != nil {
			return 0
		}
		if dr.typeID == uint32(etype) {
			if out {
				return int(dr.outDeg) + deltaN
			}
			return int(dr.inDeg) + deltaN
		}
		d = dr.next
	}
	return deltaN
}

// ---- base-only iteration (per epoch) ----

// forEachBase iterates v's base-file adjacency only, reporting whether
// iteration ran to completion (false = fn stopped it or a read failed),
// so a live caller knows whether to continue into the delta.
func (ep *epoch) forEachBase(v storage.VID, etype storage.SymbolID, out bool, fn func(storage.EID, storage.VID) bool) bool {
	rec, err := ep.readVertex(v)
	if err != nil {
		return false
	}
	if ep.compressed {
		// A compressed epoch has no edge records at all — every
		// traversal, typed or not, decodes varint segments.
		return ep.forEachCompressed(rec, etype, out, fn)
	}
	if etype != storage.AnySymbol && ep.segmented {
		return ep.forEachSegment(rec, uint32(etype), out, fn)
	}
	p := rec.firstOut
	if !out {
		p = rec.firstIn
	}
	for p != 0 {
		er, err := ep.readEdge(storage.EID(p - 1))
		if err != nil {
			return false
		}
		other := storage.VID(er.dst)
		next := er.nextOut
		if !out {
			other = storage.VID(er.src)
			next = er.nextIn
		}
		if etype == storage.AnySymbol || er.typeID == uint32(etype) {
			if !fn(storage.EID(p-1), other) {
				return false
			}
		}
		p = next
	}
	return true
}

// forEachSegment is the typed iteration fast path on a segmented store:
// it finds the type's degree record (one short chain walk), seeks to its
// adjacency segment head, and consumes edges until the segment ends —
// other types' edge records are never read, the storage-level analogue of
// the paper's schema-driven traversal pruning. Reports whether iteration
// ran to completion (see forEachBase).
func (ep *epoch) forEachSegment(rec vertexRec, typeID uint32, out bool, fn func(storage.EID, storage.VID) bool) bool {
	for d := rec.firstDeg; d != 0; {
		dr, err := ep.readDeg(d - 1)
		if err != nil {
			return false
		}
		if dr.typeID != typeID {
			d = dr.next
			continue
		}
		p := dr.firstOut
		if !out {
			p = dr.firstIn
		}
		for p != 0 {
			er, err := ep.readEdge(storage.EID(p - 1))
			if err != nil {
				return false
			}
			if er.typeID != typeID {
				return true // left the segment
			}
			other := storage.VID(er.dst)
			next := er.nextOut
			if !out {
				other = storage.VID(er.src)
				next = er.nextIn
			}
			if !fn(storage.EID(p-1), other) {
				return false
			}
			p = next
		}
		return true
	}
	return true
}

// ---- symbol resolution (store-wide: symbols are append-only, so IDs
// resolved through any epoch or snapshot stay consistent) ----

// LabelID resolves a vertex label to its interned ID.
func (s *Store) LabelID(label string) storage.SymbolID { return s.resolveSym(label, s.labelIDs) }

// TypeID resolves an edge type to its interned ID.
func (s *Store) TypeID(etype string) storage.SymbolID { return s.resolveSym(etype, s.typeIDs) }

// KeyID resolves a property key to its interned ID.
func (s *Store) KeyID(key string) storage.SymbolID { return s.resolveSym(key, s.keyIDs) }

func (s *Store) resolveSym(name string, ids map[string]int) storage.SymbolID {
	if name == "" {
		return storage.AnySymbol
	}
	s.symRLock()
	id, ok := ids[name]
	s.symRUnlock()
	if ok {
		return storage.SymbolID(id)
	}
	return storage.NoSymbol
}

// labelNames/keyNames map IDs back to sorted strings.
func (s *Store) labelNames(ids []int) []string {
	s.symRLock()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.labels[id])
	}
	s.symRUnlock()
	sort.Strings(out)
	return out
}

func (s *Store) keyNames(ids []int) []string {
	s.symRLock()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.keys[id])
	}
	s.symRUnlock()
	sort.Strings(out)
	return out
}

// ---- Store read surface (transient per-call views) ----

// NumVertices returns the number of vertices (base plus visible delta).
func (s *Store) NumVertices() int {
	vw := s.acquire()
	defer s.release(vw)
	return int(vw.numVertices())
}

// NumEdges returns the number of edges (base plus visible delta).
func (s *Store) NumEdges() int {
	vw := s.acquire()
	defer s.release(vw)
	return int(vw.numEdges())
}

// CountLabel returns the number of vertices carrying the label.
func (s *Store) CountLabel(label string) int {
	if label == "" {
		return 0
	}
	return s.CountLabelID(s.LabelID(label))
}

// ForEachVertex calls fn for every vertex carrying the label ("" = all).
func (s *Store) ForEachVertex(label string, fn func(storage.VID) bool) {
	s.ForEachVertexID(s.LabelID(label), fn)
}

// HasLabel reports whether the vertex carries the label.
func (s *Store) HasLabel(v storage.VID, label string) bool {
	return s.HasLabelID(v, s.LabelID(label))
}

// Labels returns the labels of the vertex, sorted. Delta vertices carry
// their labels in memory; base vertices merge delta-side additions.
func (s *Store) Labels(v storage.VID) []string {
	vw := s.acquire()
	defer s.release(vw)
	return s.labelNames(vw.labelIDsOf(v))
}

// Prop returns the value of a vertex property.
func (s *Store) Prop(v storage.VID, key string) (graph.Value, bool) {
	keyID := s.KeyID(key)
	if keyID < 0 { // unknown key, or "" (AnySymbol has no value meaning)
		return graph.Null, false
	}
	return s.PropID(v, keyID)
}

// PropKeys returns the property keys present on the vertex, sorted,
// merging base-chain keys with delta-side values.
func (s *Store) PropKeys(v storage.VID) []string {
	vw := s.acquire()
	defer s.release(vw)
	return s.keyNames(vw.propKeyIDsOf(v))
}

// ForEachOut iterates out-edges of v with the given type ("" = any).
func (s *Store) ForEachOut(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.ForEachOutID(v, s.TypeID(etype), fn)
}

// ForEachIn iterates in-edges of v with the given type ("" = any).
func (s *Store) ForEachIn(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.ForEachInID(v, s.TypeID(etype), fn)
}

// Degree returns the number of out- or in-edges of the given type.
func (s *Store) Degree(v storage.VID, etype string, out bool) int {
	return s.DegreeID(v, s.TypeID(etype), out)
}

// CountLabelID is CountLabel with a resolved label: the base index size
// plus the visible delta members.
func (s *Store) CountLabelID(label storage.SymbolID) int {
	vw := s.acquire()
	defer s.release(vw)
	return vw.countLabelID(label)
}

// ForEachVertexID is ForEachVertex with a resolved label: the base index
// first, then the visible delta members.
func (s *Store) ForEachVertexID(label storage.SymbolID, fn func(storage.VID) bool) {
	vw := s.acquire()
	defer s.release(vw)
	vw.forEachVertexID(label, fn)
}

// PlanVertexScan splits the label's base postings plus its delta members
// into near-even partitions for morsel-style parallel execution; see
// view.planVertexScan. The returned scans capture only in-memory slices
// and stay valid for the store's lifetime, but for one consistent view
// across a whole parallel query during a concurrent fold, plan and run
// against an AcquireSnapshot handle.
func (s *Store) PlanVertexScan(label storage.SymbolID, parts int) []storage.VertexScan {
	vw := s.acquire()
	defer s.release(vw)
	return vw.planVertexScan(label, parts)
}

// HasLabelID is HasLabel with a resolved label; base record bits are
// merged with delta-side label additions.
func (s *Store) HasLabelID(v storage.VID, label storage.SymbolID) bool {
	vw := s.acquire()
	defer s.release(vw)
	return vw.hasLabelID(v, label)
}

// PropID is Prop with a resolved key. Delta-side values win: a live
// SetProp overrides the base chain without touching it.
func (s *Store) PropID(v storage.VID, key storage.SymbolID) (graph.Value, bool) {
	vw := s.acquire()
	defer s.release(vw)
	return vw.propID(v, key)
}

// ForEachOutID is ForEachOut with a resolved edge type.
func (s *Store) ForEachOutID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	vw := s.acquire()
	defer s.release(vw)
	vw.forEachID(v, etype, true, fn)
}

// ForEachInID is ForEachIn with a resolved edge type.
func (s *Store) ForEachInID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	vw := s.acquire()
	defer s.release(vw)
	vw.forEachID(v, etype, false, fn)
}

// DegreeID is Degree with a resolved edge type.
func (s *Store) DegreeID(v storage.VID, etype storage.SymbolID, out bool) int {
	vw := s.acquire()
	defer s.release(vw)
	return vw.degreeID(v, etype, out)
}

// ---- snapshots ----

// Snap is a pinned, immutable view of the store: the epoch current at
// acquire time plus the delta watermark of the last fully applied batch.
// Reads through it see exactly that state — mutations and background
// folds after the acquire are invisible — until Release, which unpins
// the epoch (reclaiming its files if a fold has superseded it and no
// other pin remains). Safe for concurrent readers; Release is
// idempotent.
type Snap struct {
	vw       view
	released atomic.Bool
}

var _ storage.Snapshot = (*Snap)(nil)

// AcquireSnapshot pins the current epoch and delta watermark. The store
// must outlive the snapshot; releasing after store close is harmless but
// reads are not.
func (s *Store) AcquireSnapshot() storage.Snapshot {
	s.pinnedSnaps.Add(1)
	if !s.liveMode.Load() {
		// Exclusive build mode: no concurrent mutation by contract, so
		// the store itself is the snapshot.
		return &Snap{vw: view{s: s, ep: s.cur, nV: -1, nE: -1}}
	}
	s.epMu.RLock()
	ep := s.cur
	ep.pins.Add(1)
	s.epMu.RUnlock()
	// The watermark is the last fully applied batch: batches apply under
	// liveMu after their WAL append, so appliedSeq never exposes half a
	// batch. If a fold swapped cur between our pin and this load, the
	// watermark may include batches newer than the swap — they are still
	// in the delta, visible through our (old-epoch) window, and pinned
	// entries are never pruned while we hold the epoch.
	w := vis{
		baseVerts: ep.numVertices,
		baseEdges: ep.numEdges,
		baseSeq:   ep.baseSeq,
		maxSeq:    s.delta.appliedSeq.Load(),
	}
	nv, ne := s.delta.counts(w)
	return &Snap{vw: view{
		s: s, ep: ep, w: w, live: true,
		nV: ep.numVertices + nv,
		nE: ep.numEdges + ne,
	}}
}

// Release unpins the snapshot. Idempotent.
func (sn *Snap) Release() {
	if sn.released.Swap(true) {
		return
	}
	s := sn.vw.s
	s.pinnedSnaps.Add(-1)
	if sn.vw.live && sn.vw.ep.pins.Add(-1) == 0 {
		s.reclaimEpoch(sn.vw.ep)
	}
}

// Symbol table: store-wide (append-only, IDs stable), so a snapshot
// resolves through the live tables; symbols interned after the acquire
// resolve to IDs with no visible members.

func (sn *Snap) LabelID(label string) storage.SymbolID { return sn.vw.s.LabelID(label) }
func (sn *Snap) TypeID(etype string) storage.SymbolID  { return sn.vw.s.TypeID(etype) }
func (sn *Snap) KeyID(key string) storage.SymbolID     { return sn.vw.s.KeyID(key) }

func (sn *Snap) NumVertices() int { return int(sn.vw.numVertices()) }
func (sn *Snap) NumEdges() int    { return int(sn.vw.numEdges()) }

func (sn *Snap) CountLabel(label string) int {
	if label == "" {
		return 0
	}
	return sn.vw.countLabelID(sn.vw.s.LabelID(label))
}

func (sn *Snap) ForEachVertex(label string, fn func(storage.VID) bool) {
	sn.vw.forEachVertexID(sn.vw.s.LabelID(label), fn)
}

func (sn *Snap) HasLabel(v storage.VID, label string) bool {
	return sn.vw.hasLabelID(v, sn.vw.s.LabelID(label))
}

func (sn *Snap) Labels(v storage.VID) []string {
	return sn.vw.s.labelNames(sn.vw.labelIDsOf(v))
}

func (sn *Snap) Prop(v storage.VID, key string) (graph.Value, bool) {
	keyID := sn.vw.s.KeyID(key)
	if keyID < 0 {
		return graph.Null, false
	}
	return sn.vw.propID(v, keyID)
}

func (sn *Snap) PropKeys(v storage.VID) []string {
	return sn.vw.s.keyNames(sn.vw.propKeyIDsOf(v))
}

func (sn *Snap) ForEachOut(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	sn.vw.forEachID(v, sn.vw.s.TypeID(etype), true, fn)
}

func (sn *Snap) ForEachIn(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	sn.vw.forEachID(v, sn.vw.s.TypeID(etype), false, fn)
}

func (sn *Snap) Degree(v storage.VID, etype string, out bool) int {
	return sn.vw.degreeID(v, sn.vw.s.TypeID(etype), out)
}

func (sn *Snap) CountLabelID(label storage.SymbolID) int { return sn.vw.countLabelID(label) }

func (sn *Snap) ForEachVertexID(label storage.SymbolID, fn func(storage.VID) bool) {
	sn.vw.forEachVertexID(label, fn)
}

func (sn *Snap) HasLabelID(v storage.VID, label storage.SymbolID) bool {
	return sn.vw.hasLabelID(v, label)
}

func (sn *Snap) PropID(v storage.VID, key storage.SymbolID) (graph.Value, bool) {
	return sn.vw.propID(v, key)
}

func (sn *Snap) ForEachOutID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	sn.vw.forEachID(v, etype, true, fn)
}

func (sn *Snap) ForEachInID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	sn.vw.forEachID(v, etype, false, fn)
}

func (sn *Snap) DegreeID(v storage.VID, etype storage.SymbolID, out bool) int {
	return sn.vw.degreeID(v, etype, out)
}

func (sn *Snap) PlanVertexScan(label storage.SymbolID, parts int) []storage.VertexScan {
	return sn.vw.planVertexScan(label, parts)
}
