// Package diskstore implements storage.Graph as a Neo4j-style record
// store: fixed-size vertex and edge records with linked-list adjacency,
// fixed-size property records chained off vertices, and a variable-length
// blob file for strings and lists — all accessed through a sharded,
// write-back page cache with clock-sweep eviction and per-page latches.
//
// It stands in for the paper's disk-based backend (Neo4j): every edge
// traversal dereferences edge and vertex records that may or may not be
// resident in the page cache, so schemas that need fewer traversals do
// proportionally less I/O. The cache size is configurable to reproduce the
// paper's observation that disk-based systems benefit most from schema
// optimization.
package diskstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/graph"
	"repro/internal/storage"
)

const (
	vertexRecSize = 64
	edgeRecSize   = 64
	propRecSize   = 32
	// degRecSize is the legacy (v3) degree record size; v4 degree records
	// grew to degRecSizeV4 to carry per-type adjacency segment heads.
	degRecSize   = 32
	degRecSizeV4 = 64
	maxLabels    = 128
)

// Options configures a Store.
type Options struct {
	// PageSize is the cache page size in bytes (default 8192). Record
	// sizes (64/64/32) must divide it.
	PageSize int
	// CachePages is the page cache capacity (default 256 pages = 2 MiB
	// with the default page size).
	CachePages int

	// formatVersion forces the on-disk format of a newly created store
	// (tests only: it lets the current code synthesize legacy v2/v3
	// stores). Zero means the current format.
	formatVersion int
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.CachePages == 0 {
		o.CachePages = 256
	}
	return o
}

// formatVersion is the on-disk record layout version. Version 2 added
// untyped degree counters to vertex records (bytes 41-48). Version 3
// added per-type degree records (degrees.db, chained off bytes 49-56 of
// the vertex record) so typed Degree lookups no longer walk the adjacency
// chain. Version 4 — current — adds:
//
//   - a persisted derived-structure file (index.db) holding the label-scan
//     index and redundant symbol tables, so Open is O(index size) instead
//     of a full vertex scan;
//   - 64-byte degree records carrying per-type adjacency segment heads;
//   - the type-segmented adjacency invariant ("segmented" manifest flag):
//     after Finalize/Compact, each vertex's out/in chains are grouped by
//     edge type (out-chains additionally physically clustered in
//     edges.db), so typed traversals seek to their segment and never read
//     other types' edge records.
//
// Version 2 and 3 stores remain readable: they open in a legacy mode that
// rebuilds the label index by scanning vertices, answers typed queries
// the old way, and keeps writing a same-version manifest on Flush
// (opening never silently upgrades a store; Compact upgrades explicitly).
// Version 1 and unknown versions are rejected — v1 vertex records would
// silently read their degree counters as zero.
const formatVersion = 4

type manifest struct {
	Version     int      `json:"version"`
	Labels      []string `json:"labels"`
	Types       []string `json:"types"`
	Keys        []string `json:"keys"`
	NumVertices int64    `json:"num_vertices"`
	NumEdges    int64    `json:"num_edges"`
	NumProps    int64    `json:"num_props"`
	NumDegs     int64    `json:"num_degs,omitempty"`
	BlobSize    int64    `json:"blob_size"`
	// Segmented records the type-segmented adjacency invariant (v4; see
	// formatVersion).
	Segmented bool `json:"segmented,omitempty"`
	// WalSeq fences WAL replay: the highest WAL sequence number folded
	// into the base by a committed Compact. Records at or below it are
	// skipped (and a fully stale log truncated) at Open, so a crash
	// between Compact's manifest commit and its WAL truncation cannot
	// replay folded mutations twice.
	WalSeq uint64 `json:"wal_seq,omitempty"`
}

// Store is a disk-backed property graph. Building (AddVertex, AddEdge,
// SetProp, Flush) is single-writer, but once the store is fully built its
// entire read surface — traversals, property and label lookups, degree
// queries, stats — is safe for any number of concurrent reader
// goroutines: the symbol tables and label index are immutable after
// build, and record access goes through the pager's sharded page cache,
// where readers contend only when they touch the same cache shard at the
// same instant (see pager).
type Store struct {
	dir   string
	pager *pager
	opts  Options

	// version is the manifest version this store was opened with; Flush
	// preserves it so a v2/v3 store stays a valid same-version store on
	// disk. Only Finalize/Compact (and the bulk ingest path, which implies
	// Finalize) upgrade a store to the current format.
	version int

	// segmented is the type-segmented adjacency invariant: every vertex's
	// out/in chains are grouped by edge type and the per-type degree
	// records carry segment heads, so typed iteration seeks instead of
	// filtering. Established by Finalize, broken by incremental AddEdge.
	segmented bool
	// needFinalize is set by AddEdgeBatch: edges were appended without
	// adjacency linkage and Finalize must run before the store is read.
	// Flush finalizes automatically as a safety net.
	needFinalize bool
	// indexLoaded reports that Open restored the label index from
	// index.db instead of scanning every vertex record.
	indexLoaded bool
	// indexCurrent reports that the index.db on disk describes the
	// current in-memory state: set by a successful load at Open and by
	// every index write, cleared by the first mutation. A clean Flush
	// with a current index skips the rewrite.
	indexCurrent bool
	// dirty is set by the first mutation since open/flush (markDirty),
	// which also removes index.db at that moment — so no crash window
	// exists in which on-disk data coexists with a stale-but-validating
	// index.
	dirty bool

	labels   []string
	labelIDs map[string]int
	types    []string
	typeIDs  map[string]int
	keys     []string
	keyIDs   map[string]int

	numVertices int64
	numEdges    int64
	numProps    int64
	numDegs     int64
	blobSize    int64

	byLabel map[int][]storage.VID

	// ---- live-write state (see live.go, wal.go, delta.go) ----

	// liveMode gates the durable post-finalize write path: Builder calls
	// reroute through ApplyMutations, reads merge the delta segment, and
	// symbol-table access takes symMu. Flipped only at Open and around
	// Finalize/Compact, which require exclusive access.
	liveMode atomic.Bool
	// liveMu serializes ApplyMutations batches (WAL append order = delta
	// apply order = replay order).
	liveMu sync.Mutex
	// symMu guards the symbol tables once liveMode is set; never taken
	// outside live mode.
	symMu sync.RWMutex
	// delta is the in-memory segment of live mutations; always non-nil,
	// replaced by foldDelta.
	delta *delta
	// wal is the open write-ahead log, created lazily on the first live
	// mutation (atomic so LiveStats can read it without liveMu).
	wal atomic.Pointer[wal]
	// walFoldedSeq mirrors manifest.WalSeq; advanced by foldDelta.
	walFoldedSeq uint64
	// pendingCheckpoint is set by foldDelta: the next committed Flush
	// truncates the WAL.
	pendingCheckpoint bool
}

// legacyDegrees reports whether this store predates per-type degree
// records (format v2): typed degree queries then fall back to walking the
// adjacency chain, and AddEdge does not maintain degree records.
func (s *Store) legacyDegrees() bool { return s.version < 3 }

// degSize is the on-disk degree record size for this store's format.
func (s *Store) degSize() int64 {
	if s.version >= 4 {
		return degRecSizeV4
	}
	return degRecSize
}

// FormatInfo describes how a store was opened; see (*Store).Format.
type FormatInfo struct {
	// Version is the on-disk format version (2-4).
	Version int
	// Segmented reports the type-segmented adjacency invariant.
	Segmented bool
	// IndexLoaded reports that Open restored the label index from
	// index.db rather than scanning every vertex record.
	IndexLoaded bool
}

// Format reports the store's on-disk format version and how it was
// opened. Serving and benchmark tools log it so "did this store open the
// fast way" is observable.
func (s *Store) Format() FormatInfo {
	return FormatInfo{Version: s.version, Segmented: s.segmented, IndexLoaded: s.indexLoaded}
}

// SegmentedAdjacency reports whether adjacency is currently grouped by
// edge type (see storage.TypeSegmentedGraph).
func (s *Store) SegmentedAdjacency() bool { return s.segmented }

var (
	_ storage.Builder            = (*Store)(nil)
	_ storage.FastGraph          = (*Store)(nil)
	_ storage.StatsReporter      = (*Store)(nil)
	_ storage.BatchBuilder       = (*Store)(nil)
	_ storage.TypeSegmentedGraph = (*Store)(nil)
)

// Open creates (or reopens) a store in dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.PageSize%vertexRecSize != 0 || opts.PageSize%propRecSize != 0 || opts.PageSize%degRecSize != 0 {
		return nil, fmt.Errorf("diskstore: page size %d must be a multiple of record sizes", opts.PageSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, finalizeMarker)); err == nil {
		// Finalize rewrites edges.db in place with renumbered IDs; the
		// marker survives only when that rewrite never committed, so the
		// edge file may hold a mix of old- and new-order records that the
		// manifest cannot detect. Refusing is the only safe answer.
		return nil, fmt.Errorf("diskstore: %s: %w; rebuild the store from its source data (or restore a backup), then remove %s",
			dir, ErrFinalizeInterrupted, finalizeMarker)
	}
	var files [numFiles]*os.File
	for i, name := range []string{"vertices.db", "edges.db", "props.db", "blobs.db", "degrees.db"} {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	pg, err := newPager(files, opts.PageSize, opts.CachePages)
	if err != nil {
		return nil, err
	}
	version := formatVersion
	if opts.formatVersion != 0 {
		version = opts.formatVersion
	}
	s := &Store{
		dir:       dir,
		pager:     pg,
		opts:      opts,
		version:   version,
		segmented: true, // trivially: no edges yet (loadManifest overrides)
		labelIDs:  map[string]int{},
		typeIDs:   map[string]int{},
		keyIDs:    map[string]int{},
		byLabel:   map[int][]storage.VID{},
		delta:     newDelta(),
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	// Recovery pass: enter live mode for finalized stores and replay any
	// write-ahead log a crashed live session left behind (see live.go).
	if err := s.recoverLive(); err != nil {
		return nil, err
	}
	return s, nil
}

// ErrFinalizeInterrupted is returned (wrapped, with a recovery hint) by
// Open when the finalize.inprogress marker is present: a Finalize or
// Compact crashed after it may have started rewriting edge records and
// before the rewrite was committed by a Flush, so edges.db may hold a
// mix of old- and new-order records that the manifest cannot detect.
// Test with errors.Is.
var ErrFinalizeInterrupted = errors.New("store was interrupted mid-finalize/compact and its edge records may be partially rewritten")

func (s *Store) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(s.dir, "manifest.json"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	if m.Version < 2 || m.Version > formatVersion {
		return fmt.Errorf("diskstore: store format v%d is not supported (want v2..v%d); rebuild the store", m.Version, formatVersion)
	}
	s.version = m.Version
	// Only v4 degree records carry the segment heads the seek path needs;
	// never trust a segmented claim on a legacy manifest.
	s.segmented = m.Segmented && m.Version >= 4
	s.labels, s.types, s.keys = m.Labels, m.Types, m.Keys
	s.numVertices, s.numEdges, s.numProps, s.blobSize = m.NumVertices, m.NumEdges, m.NumProps, m.BlobSize
	s.numDegs = m.NumDegs
	s.walFoldedSeq = m.WalSeq
	for i, l := range s.labels {
		s.labelIDs[l] = i
	}
	for i, t := range s.types {
		s.typeIDs[t] = i
	}
	for i, k := range s.keys {
		s.keyIDs[k] = i
	}
	// Restore the label-scan index: v4 stores persist it in index.db, so
	// opening costs O(index size). Legacy stores — and v4 stores whose
	// index file is missing, torn, or out of step with the manifest — fall
	// back to rebuilding it from a full vertex scan.
	if s.version >= 4 && s.loadIndex() {
		s.indexLoaded = true
		s.indexCurrent = true
		return nil
	}
	for v := int64(0); v < s.numVertices; v++ {
		rec, err := s.readVertex(storage.VID(v))
		if err != nil {
			return err
		}
		for _, id := range labelBitsToIDs(rec.labels) {
			s.byLabel[id] = append(s.byLabel[id], storage.VID(v))
		}
	}
	return nil
}

// markDirty records the first mutation since open/flush. For v4 stores
// it removes index.db at that moment — before the mutation's page write,
// and crucially before cache eviction can push any dirty page to disk —
// because no index may ever sit on disk alongside data newer than it:
// record counts and symbol tables cannot catch every mutation (e.g.
// AddLabel of an existing label to an existing vertex changes neither),
// so a surviving stale index could still validate. From the first
// mutation until the next successful Flush, a crash leaves a store with
// no index that rebuilds correctly by scanning.
func (s *Store) markDirty() error {
	if s.dirty {
		return nil
	}
	if s.version >= 4 {
		if err := os.Remove(s.indexPath()); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	s.indexCurrent = false
	s.dirty = true
	return nil
}

// Flush writes dirty pages, the derived-index file (v4), and the manifest
// to disk. The index and manifest are each written to a temp file and
// renamed into place, so a crash mid-flush leaves either the old or the
// new file — never a torn one — and the manifest rename is the commit
// point (index.db itself was already removed by the first mutation; see
// markDirty). A store with nothing mutated since open skips the rewrites
// entirely — read-only workloads stay read-only on close — unless it is
// a v4 store whose index had to be rebuilt by scanning, which writes once
// to repair the missing index file. Pending bulk edges (AddEdgeBatch
// without Finalize) are finalized first so a flushed store is always
// fully linked.
func (s *Store) Flush() error {
	if s.needFinalize {
		if err := s.Finalize(); err != nil {
			return err
		}
	}
	if !s.dirty && (s.version < 4 || s.indexCurrent) {
		return s.pager.flush()
	}
	if err := s.pager.flush(); err != nil {
		return err
	}
	if s.version >= 4 {
		if err := s.writeIndex(); err != nil {
			return err
		}
		s.indexCurrent = true
	}
	// Note the counts describe the base files only: in live mode the
	// delta segment is not flushed here — it is durable through the WAL
	// and folded into the base by the next Compact.
	m := manifest{
		Version: s.version,
		Labels:  s.labels, Types: s.types, Keys: s.keys,
		NumVertices: s.numVertices, NumEdges: s.numEdges, NumProps: s.numProps,
		NumDegs: s.numDegs, BlobSize: s.blobSize,
		Segmented: s.segmented && s.version >= 4,
		WalSeq:    s.walFoldedSeq,
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, "manifest.json"), data); err != nil {
		return err
	}
	// The manifest rename committed the flush; a finalize that ran since
	// the last commit is now fully durable, so its marker can go. (A
	// crash between the two leaves the marker on a consistent store — a
	// safe false positive: Open refuses and asks for a rebuild.)
	if err := os.Remove(filepath.Join(s.dir, finalizeMarker)); err != nil && !os.IsNotExist(err) {
		return err
	}
	// Checkpoint: the manifest just committed a wal_seq covering every
	// folded record, so the WAL can be emptied. A crash before this
	// truncation leaves a stale log that replay skips (and truncates) via
	// the fence.
	if s.pendingCheckpoint {
		if w := s.wal.Load(); w != nil {
			if err := w.reset(); err != nil {
				return err
			}
		}
		s.pendingCheckpoint = false
	}
	s.dirty = false
	return nil
}

// finalizeMarker is the sentinel file present while a Finalize/Compact
// edge rewrite is in flight but not yet committed by a Flush; see
// Finalize and Open.
const finalizeMarker = "finalize.inprogress"

// placeFinalizeMarker creates (and syncs) the in-flight finalize
// sentinel.
func (s *Store) placeFinalizeMarker() error {
	return writeFileAtomic(filepath.Join(s.dir, finalizeMarker),
		[]byte("edge rewrite in flight; removed by the next committed Flush\n"))
}

// writeFileAtomic writes data to a sibling temp file, syncs it, renames
// it over path, and syncs the parent directory, so readers only ever
// observe the old or the new content — and the rename itself survives a
// power loss, which the finalize-marker protocol depends on.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename in it is
// durable. Filesystems that cannot sync directories make it a no-op.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// Close flushes and closes the underlying files. A live store's delta
// segment is not folded — it stays durable through the WAL and is
// replayed on the next Open; call Compact first to fold it instead.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if w := s.wal.Load(); w != nil {
		if err := w.close(); err != nil {
			return err
		}
	}
	for _, f := range s.pager.files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// DropCache empties the page cache, simulating a cold start.
func (s *Store) DropCache() error { return s.pager.dropCache() }

// Stats returns page cache counters.
func (s *Store) Stats() storage.Stats { return s.pager.readStats() }

// ResetStats zeroes the page cache counters.
func (s *Store) ResetStats() { s.pager.resetStats() }

// ---- record codecs ----

type vertexRec struct {
	inUse     bool
	labels    [2]uint64
	firstOut  int64 // edge id + 1; 0 = none
	firstIn   int64
	firstProp int64 // prop id + 1
	// Degree counters let Degree(v, "", out) answer from the vertex
	// record alone instead of walking the whole adjacency chain.
	outDeg uint32
	inDeg  uint32
	// firstDeg chains per-type degree records (deg id + 1; 0 = none) so
	// typed Degree walks one short record per distinct edge type instead
	// of the full adjacency chain. Always 0 in legacy (v2) stores.
	firstDeg int64
}

type edgeRec struct {
	inUse    bool
	typeID   uint32
	src, dst int64
	nextOut  int64 // edge id + 1
	nextIn   int64
}

// degRec is one vertex's degree counters for one edge type, chained per
// vertex (Finalize chains them in ascending type order; incremental
// building in type-first-seen order). Chains are short — one record per
// distinct edge type the vertex touches — so walking them is cheap even
// for hub vertices with huge adjacency chains.
//
// In format v4 the record doubles as the type's adjacency segment
// descriptor: firstOut/firstIn point at the first edge of this type's
// segment in the vertex's out/in chains, valid while the store's
// segmented invariant holds. Legacy (v3) records are 32 bytes and have no
// segment heads.
type degRec struct {
	inUse  bool
	typeID uint32
	outDeg uint32
	inDeg  uint32
	next   int64 // deg id + 1
	// v4 only: heads of this type's adjacency segments (edge id + 1).
	firstOut int64
	firstIn  int64
}

type propRec struct {
	inUse bool
	keyID uint32
	kind  graph.Kind
	a, b  uint64
	next  int64 // prop id + 1
}

func (s *Store) readVertex(v storage.VID) (vertexRec, error) {
	var buf [vertexRecSize]byte
	if err := s.pager.read(fileVertices, int64(v)*vertexRecSize, buf[:]); err != nil {
		return vertexRec{}, err
	}
	return vertexRec{
		inUse:     buf[0]&1 != 0,
		labels:    [2]uint64{binary.LittleEndian.Uint64(buf[1:]), binary.LittleEndian.Uint64(buf[9:])},
		firstOut:  int64(binary.LittleEndian.Uint64(buf[17:])),
		firstIn:   int64(binary.LittleEndian.Uint64(buf[25:])),
		firstProp: int64(binary.LittleEndian.Uint64(buf[33:])),
		outDeg:    binary.LittleEndian.Uint32(buf[41:]),
		inDeg:     binary.LittleEndian.Uint32(buf[45:]),
		firstDeg:  int64(binary.LittleEndian.Uint64(buf[49:])),
	}, nil
}

func (s *Store) writeVertex(v storage.VID, r vertexRec) error {
	var buf [vertexRecSize]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint64(buf[1:], r.labels[0])
	binary.LittleEndian.PutUint64(buf[9:], r.labels[1])
	binary.LittleEndian.PutUint64(buf[17:], uint64(r.firstOut))
	binary.LittleEndian.PutUint64(buf[25:], uint64(r.firstIn))
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.firstProp))
	binary.LittleEndian.PutUint32(buf[41:], r.outDeg)
	binary.LittleEndian.PutUint32(buf[45:], r.inDeg)
	binary.LittleEndian.PutUint64(buf[49:], uint64(r.firstDeg))
	return s.pager.write(fileVertices, int64(v)*vertexRecSize, buf[:])
}

func (s *Store) readEdge(e storage.EID) (edgeRec, error) {
	var buf [edgeRecSize]byte
	if err := s.pager.read(fileEdges, int64(e)*edgeRecSize, buf[:]); err != nil {
		return edgeRec{}, err
	}
	return edgeRec{
		inUse:   buf[0]&1 != 0,
		typeID:  binary.LittleEndian.Uint32(buf[1:]),
		src:     int64(binary.LittleEndian.Uint64(buf[5:])),
		dst:     int64(binary.LittleEndian.Uint64(buf[13:])),
		nextOut: int64(binary.LittleEndian.Uint64(buf[21:])),
		nextIn:  int64(binary.LittleEndian.Uint64(buf[29:])),
	}, nil
}

func (s *Store) writeEdge(e storage.EID, r edgeRec) error {
	var buf [edgeRecSize]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], r.typeID)
	binary.LittleEndian.PutUint64(buf[5:], uint64(r.src))
	binary.LittleEndian.PutUint64(buf[13:], uint64(r.dst))
	binary.LittleEndian.PutUint64(buf[21:], uint64(r.nextOut))
	binary.LittleEndian.PutUint64(buf[29:], uint64(r.nextIn))
	return s.pager.write(fileEdges, int64(e)*edgeRecSize, buf[:])
}

func (s *Store) readProp(p int64) (propRec, error) {
	var buf [propRecSize]byte
	if err := s.pager.read(fileProps, p*propRecSize, buf[:]); err != nil {
		return propRec{}, err
	}
	return propRec{
		inUse: buf[0]&1 != 0,
		keyID: binary.LittleEndian.Uint32(buf[1:]),
		kind:  graph.Kind(buf[5]),
		a:     binary.LittleEndian.Uint64(buf[6:]),
		b:     binary.LittleEndian.Uint64(buf[14:]),
		next:  int64(binary.LittleEndian.Uint64(buf[22:])),
	}, nil
}

func (s *Store) writeProp(p int64, r propRec) error {
	var buf [propRecSize]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], r.keyID)
	buf[5] = byte(r.kind)
	binary.LittleEndian.PutUint64(buf[6:], r.a)
	binary.LittleEndian.PutUint64(buf[14:], r.b)
	binary.LittleEndian.PutUint64(buf[22:], uint64(r.next))
	return s.pager.write(fileProps, p*propRecSize, buf[:])
}

func (s *Store) readDeg(d int64) (degRec, error) {
	size := s.degSize()
	var buf [degRecSizeV4]byte
	if err := s.pager.read(fileDegrees, d*size, buf[:size]); err != nil {
		return degRec{}, err
	}
	r := degRec{
		inUse:  buf[0]&1 != 0,
		typeID: binary.LittleEndian.Uint32(buf[1:]),
		outDeg: binary.LittleEndian.Uint32(buf[5:]),
		inDeg:  binary.LittleEndian.Uint32(buf[9:]),
		next:   int64(binary.LittleEndian.Uint64(buf[13:])),
	}
	if size == degRecSizeV4 {
		r.firstOut = int64(binary.LittleEndian.Uint64(buf[21:]))
		r.firstIn = int64(binary.LittleEndian.Uint64(buf[29:]))
	}
	return r, nil
}

func (s *Store) writeDeg(d int64, r degRec) error {
	size := s.degSize()
	var buf [degRecSizeV4]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], r.typeID)
	binary.LittleEndian.PutUint32(buf[5:], r.outDeg)
	binary.LittleEndian.PutUint32(buf[9:], r.inDeg)
	binary.LittleEndian.PutUint64(buf[13:], uint64(r.next))
	if size == degRecSizeV4 {
		binary.LittleEndian.PutUint64(buf[21:], uint64(r.firstOut))
		binary.LittleEndian.PutUint64(buf[29:], uint64(r.firstIn))
	}
	return s.pager.write(fileDegrees, d*size, buf[:size])
}

// bumpDeg increments the per-type degree counter reachable from rec,
// creating (and chaining) the type's record on first sight. May update
// rec.firstDeg; the caller writes the vertex record afterwards.
func (s *Store) bumpDeg(rec *vertexRec, typeID uint32, out bool) error {
	for d := rec.firstDeg; d != 0; {
		dr, err := s.readDeg(d - 1)
		if err != nil {
			return err
		}
		if dr.typeID == typeID {
			if out {
				dr.outDeg++
			} else {
				dr.inDeg++
			}
			return s.writeDeg(d-1, dr)
		}
		d = dr.next
	}
	id := s.numDegs
	s.numDegs++
	dr := degRec{inUse: true, typeID: typeID, next: rec.firstDeg}
	if out {
		dr.outDeg = 1
	} else {
		dr.inDeg = 1
	}
	if err := s.writeDeg(id, dr); err != nil {
		return err
	}
	rec.firstDeg = id + 1
	return nil
}

func (s *Store) appendBlob(data []byte) (off int64, err error) {
	off = s.blobSize
	if err := s.pager.write(fileBlobs, off, data); err != nil {
		return 0, err
	}
	s.blobSize += int64(len(data))
	return off, nil
}

func (s *Store) readBlob(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.pager.read(fileBlobs, off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func labelBitsToIDs(bitsets [2]uint64) []int {
	var ids []int
	for w, word := range bitsets {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			ids = append(ids, w*64+b)
			word &^= 1 << b
		}
	}
	return ids
}

// ---- value <-> prop record encoding ----

// encodeValue fills kind/a/b for a value, appending blob data as needed.
func (s *Store) encodeValue(v graph.Value) (kind graph.Kind, a, b uint64, err error) {
	switch v.Kind() {
	case graph.KindNull:
		return graph.KindNull, 0, 0, nil
	case graph.KindInt:
		return graph.KindInt, uint64(v.Int()), 0, nil
	case graph.KindFloat:
		return graph.KindFloat, graph.FloatBits(v.Float()), 0, nil
	case graph.KindBool:
		if v.Bool() {
			return graph.KindBool, 1, 0, nil
		}
		return graph.KindBool, 0, 0, nil
	case graph.KindString:
		off, err := s.appendBlob([]byte(v.Str()))
		if err != nil {
			return 0, 0, 0, err
		}
		return graph.KindString, uint64(off), uint64(len(v.Str())), nil
	case graph.KindList:
		data, err := encodeList(v.List())
		if err != nil {
			return 0, 0, 0, err
		}
		off, err := s.appendBlob(data)
		if err != nil {
			return 0, 0, 0, err
		}
		return graph.KindList, uint64(off), uint64(len(data)), nil
	default:
		return 0, 0, 0, fmt.Errorf("diskstore: unsupported value kind %v", v.Kind())
	}
}

func (s *Store) decodeValue(r propRec) (graph.Value, error) {
	switch r.kind {
	case graph.KindNull:
		return graph.Null, nil
	case graph.KindInt:
		return graph.I(int64(r.a)), nil
	case graph.KindFloat:
		return graph.FBits(r.a), nil
	case graph.KindBool:
		return graph.B(r.a == 1), nil
	case graph.KindString:
		data, err := s.readBlob(int64(r.a), int64(r.b))
		if err != nil {
			return graph.Null, err
		}
		return graph.S(string(data)), nil
	case graph.KindList:
		data, err := s.readBlob(int64(r.a), int64(r.b))
		if err != nil {
			return graph.Null, err
		}
		return decodeList(data)
	default:
		return graph.Null, fmt.Errorf("diskstore: unsupported stored kind %v", r.kind)
	}
}

// encodeList serializes a list of scalar values. Nested lists are not
// supported (the schema optimizer only replicates scalar properties).
func encodeList(vs []graph.Value) ([]byte, error) {
	var out []byte
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(vs)))
	out = append(out, n[:4]...)
	for _, v := range vs {
		out = append(out, byte(v.Kind()))
		switch v.Kind() {
		case graph.KindNull:
		case graph.KindInt:
			binary.LittleEndian.PutUint64(n[:], uint64(v.Int()))
			out = append(out, n[:]...)
		case graph.KindFloat:
			binary.LittleEndian.PutUint64(n[:], graph.FloatBits(v.Float()))
			out = append(out, n[:]...)
		case graph.KindBool:
			if v.Bool() {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case graph.KindString:
			binary.LittleEndian.PutUint32(n[:4], uint32(len(v.Str())))
			out = append(out, n[:4]...)
			out = append(out, v.Str()...)
		default:
			return nil, fmt.Errorf("diskstore: cannot store nested %v in list", v.Kind())
		}
	}
	return out, nil
}

func decodeList(data []byte) (graph.Value, error) {
	if len(data) < 4 {
		return graph.Null, fmt.Errorf("diskstore: corrupt list blob")
	}
	count := binary.LittleEndian.Uint32(data)
	data = data[4:]
	vs := make([]graph.Value, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data) < 1 {
			return graph.Null, fmt.Errorf("diskstore: truncated list blob")
		}
		kind := graph.Kind(data[0])
		data = data[1:]
		switch kind {
		case graph.KindNull:
			vs = append(vs, graph.Null)
		case graph.KindInt:
			vs = append(vs, graph.I(int64(binary.LittleEndian.Uint64(data))))
			data = data[8:]
		case graph.KindFloat:
			vs = append(vs, graph.FBits(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		case graph.KindBool:
			vs = append(vs, graph.B(data[0] == 1))
			data = data[1:]
		case graph.KindString:
			n := binary.LittleEndian.Uint32(data)
			data = data[4:]
			vs = append(vs, graph.S(string(data[:n])))
			data = data[n:]
		default:
			return graph.Null, fmt.Errorf("diskstore: corrupt list element kind %v", kind)
		}
	}
	return graph.L(vs...), nil
}

// ---- Builder ----

// AddVertex creates a vertex with the given labels. On a live
// (finalized) store the write is rerouted through the durable
// WAL-backed path; see ApplyMutations.
func (s *Store) AddVertex(labels ...string) (storage.VID, error) {
	if s.liveMode.Load() {
		res, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddVertex, Labels: labels}})
		if err != nil {
			return 0, err
		}
		return res.Vertices[0], nil
	}
	if err := s.markDirty(); err != nil {
		return 0, err
	}
	v := storage.VID(s.numVertices)
	s.numVertices++
	if err := s.writeVertex(v, vertexRec{inUse: true}); err != nil {
		return 0, err
	}
	for _, l := range labels {
		if err := s.AddLabel(v, l); err != nil {
			return 0, err
		}
	}
	return v, nil
}

func (s *Store) labelID(label string, create bool) (int, bool, error) {
	if id, ok := s.labelIDs[label]; ok {
		return id, true, nil
	}
	if !create {
		return 0, false, nil
	}
	if len(s.labels) >= maxLabels {
		return 0, false, fmt.Errorf("diskstore: label limit (%d) exceeded", maxLabels)
	}
	id := len(s.labels)
	s.labels = append(s.labels, label)
	s.labelIDs[label] = id
	return id, true, nil
}

// AddLabel adds a label to an existing vertex (durably via the WAL on a
// live store).
func (s *Store) AddLabel(v storage.VID, label string) error {
	if s.liveMode.Load() {
		_, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddLabel, V: v, Label: label}})
		return err
	}
	if err := s.check(v); err != nil {
		return err
	}
	id, _, err := s.labelID(label, true)
	if err != nil {
		return err
	}
	rec, err := s.readVertex(v)
	if err != nil {
		return err
	}
	w, b := id/64, uint(id%64)
	if rec.labels[w]&(1<<b) != 0 {
		return nil
	}
	rec.labels[w] |= 1 << b
	if err := s.markDirty(); err != nil {
		return err
	}
	if err := s.writeVertex(v, rec); err != nil {
		return err
	}
	s.byLabel[id] = append(s.byLabel[id], v)
	return nil
}

// SetProp sets a vertex property, replacing any previous value (durably
// via the WAL on a live store).
func (s *Store) SetProp(v storage.VID, key string, val graph.Value) error {
	if s.liveMode.Load() {
		_, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutSetProp, V: v, Key: key, Value: val}})
		return err
	}
	if err := s.check(v); err != nil {
		return err
	}
	keyID := s.internKey(key)
	if err := s.markDirty(); err != nil {
		return err
	}
	kind, a, b, err := s.encodeValue(val)
	if err != nil {
		return err
	}
	rec, err := s.readVertex(v)
	if err != nil {
		return err
	}
	// Overwrite in place if the key exists in the chain.
	for p := rec.firstProp; p != 0; {
		pr, err := s.readProp(p - 1)
		if err != nil {
			return err
		}
		if pr.keyID == uint32(keyID) {
			pr.kind, pr.a, pr.b = kind, a, b
			return s.writeProp(p-1, pr)
		}
		p = pr.next
	}
	// Prepend a new record.
	pid := s.numProps
	s.numProps++
	pr := propRec{inUse: true, keyID: uint32(keyID), kind: kind, a: a, b: b, next: rec.firstProp}
	if err := s.writeProp(pid, pr); err != nil {
		return err
	}
	rec.firstProp = pid + 1
	return s.writeVertex(v, rec)
}

// AddEdge creates a directed edge of the given type. During building it
// prepends to the source's out-chain and the destination's in-chain; on
// a live (finalized) store it is rerouted through the durable WAL-backed
// delta path instead, which keeps the base's segmented-adjacency
// invariant intact — typed traversals of base edges stay on the segment
// fast path rather than silently degrading to the filter path.
func (s *Store) AddEdge(src, dst storage.VID, etype string) (storage.EID, error) {
	if s.liveMode.Load() {
		res, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddEdge, Src: src, Dst: dst, Type: etype}})
		if err != nil {
			return 0, err
		}
		return res.Edges[0], nil
	}
	if err := s.check(src); err != nil {
		return 0, err
	}
	if err := s.check(dst); err != nil {
		return 0, err
	}
	typeID := s.internType(etype)
	if err := s.markDirty(); err != nil {
		return 0, err
	}
	e := storage.EID(s.numEdges)
	s.numEdges++
	// Prepending to the chain heads interleaves types; the segmented
	// invariant is gone until the next Finalize/Compact.
	s.segmented = false

	srcRec, err := s.readVertex(src)
	if err != nil {
		return 0, err
	}
	er := edgeRec{
		inUse: true, typeID: uint32(typeID),
		src: int64(src), dst: int64(dst),
		nextOut: srcRec.firstOut,
	}
	srcRec.firstOut = int64(e) + 1
	srcRec.outDeg++
	if !s.legacyDegrees() {
		if err := s.bumpDeg(&srcRec, uint32(typeID), true); err != nil {
			return 0, err
		}
	}
	if err := s.writeVertex(src, srcRec); err != nil {
		return 0, err
	}
	dstRec, err := s.readVertex(dst)
	if err != nil {
		return 0, err
	}
	er.nextIn = dstRec.firstIn
	dstRec.firstIn = int64(e) + 1
	dstRec.inDeg++
	if !s.legacyDegrees() {
		if err := s.bumpDeg(&dstRec, uint32(typeID), false); err != nil {
			return 0, err
		}
	}
	if err := s.writeVertex(dst, dstRec); err != nil {
		return 0, err
	}
	return e, s.writeEdge(e, er)
}

func (s *Store) check(v storage.VID) error {
	if v < 0 || int64(v) >= s.numVertices+s.delta.vertCount.Load() {
		return fmt.Errorf("diskstore: vertex %d out of range", v)
	}
	return nil
}

// ---- Graph ----

// NumVertices returns the number of vertices (base plus delta segment).
func (s *Store) NumVertices() int { return int(s.numVertices + s.delta.vertCount.Load()) }

// NumEdges returns the number of edges (base plus delta segment).
func (s *Store) NumEdges() int { return int(s.numEdges + s.delta.edgeCount.Load()) }

// CountLabel returns the number of vertices carrying the label.
func (s *Store) CountLabel(label string) int {
	if label == "" {
		return 0
	}
	return s.CountLabelID(s.LabelID(label))
}

// ForEachVertex calls fn for every vertex carrying the label ("" = all).
func (s *Store) ForEachVertex(label string, fn func(storage.VID) bool) {
	s.ForEachVertexID(s.LabelID(label), fn)
}

// HasLabel reports whether the vertex carries the label.
func (s *Store) HasLabel(v storage.VID, label string) bool {
	return s.HasLabelID(v, s.LabelID(label))
}

// Labels returns the labels of the vertex, sorted. Delta vertices carry
// their labels in memory; base vertices merge delta-side additions.
func (s *Store) Labels(v storage.VID) []string {
	if s.check(v) != nil {
		return nil
	}
	var ids []int
	if s.liveMode.Load() && int64(v) >= s.numVertices {
		ids = s.delta.vertexLabelIDs(int64(v) - s.numVertices)
	} else {
		rec, err := s.readVertex(v)
		if err != nil {
			return nil
		}
		ids = labelBitsToIDs(rec.labels)
		if s.liveMode.Load() {
			ids = append(ids, s.delta.labelAddIDs(v)...)
		}
	}
	s.symRLock()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.labels[id])
	}
	s.symRUnlock()
	sort.Strings(out)
	return out
}

// Prop returns the value of a vertex property.
func (s *Store) Prop(v storage.VID, key string) (graph.Value, bool) {
	keyID := s.KeyID(key)
	if keyID < 0 { // unknown key, or "" (AnySymbol has no value meaning)
		return graph.Null, false
	}
	return s.PropID(v, keyID)
}

// PropKeys returns the property keys present on the vertex, sorted,
// merging base-chain keys with delta-side values (an override of an
// existing key appears once).
func (s *Store) PropKeys(v storage.VID) []string {
	if s.check(v) != nil {
		return nil
	}
	live := s.liveMode.Load()
	var ids []int
	if !live || int64(v) < s.numVertices {
		rec, err := s.readVertex(v)
		if err != nil {
			return nil
		}
		for p := rec.firstProp; p != 0; {
			pr, err := s.readProp(p - 1)
			if err != nil {
				return nil
			}
			ids = append(ids, int(pr.keyID))
			p = pr.next
		}
	}
	if live {
		for _, id := range s.delta.propKeyIDs(v, s.numVertices) {
			dup := false
			for _, have := range ids {
				if have == id {
					dup = true
					break
				}
			}
			if !dup {
				ids = append(ids, id)
			}
		}
	}
	s.symRLock()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.keys[id])
	}
	s.symRUnlock()
	sort.Strings(out)
	return out
}

// ForEachOut iterates out-edges of v with the given type ("" = any).
func (s *Store) ForEachOut(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.forEach(v, etype, true, fn)
}

// ForEachIn iterates in-edges of v with the given type ("" = any).
func (s *Store) ForEachIn(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.forEach(v, etype, false, fn)
}

func (s *Store) forEach(v storage.VID, etype string, out bool, fn func(storage.EID, storage.VID) bool) {
	s.forEachID(v, s.TypeID(etype), out, fn)
}

func (s *Store) forEachID(v storage.VID, etype storage.SymbolID, out bool, fn func(storage.EID, storage.VID) bool) {
	if s.check(v) != nil || etype == storage.NoSymbol {
		return
	}
	if !s.liveMode.Load() {
		s.forEachBase(v, etype, out, fn)
		return
	}
	// Live merge: base edges first — on the segment fast path, untouched
	// by live writes — then the vertex's delta adjacency. Delta vertices
	// have no base records at all.
	if int64(v) < s.numVertices {
		if !s.forEachBase(v, etype, out, fn) {
			return
		}
	}
	if s.delta.edgeCount.Load() == 0 {
		return
	}
	for _, de := range s.delta.adj(v, out) {
		if etype == storage.AnySymbol || de.typeID == uint32(etype) {
			if !fn(de.e, de.other) {
				return
			}
		}
	}
}

// forEachBase iterates v's base-file adjacency only, reporting whether
// iteration ran to completion (false = fn stopped it or a read failed),
// so a live caller knows whether to continue into the delta.
func (s *Store) forEachBase(v storage.VID, etype storage.SymbolID, out bool, fn func(storage.EID, storage.VID) bool) bool {
	rec, err := s.readVertex(v)
	if err != nil {
		return false
	}
	if etype != storage.AnySymbol && s.segmented {
		return s.forEachSegment(rec, uint32(etype), out, fn)
	}
	p := rec.firstOut
	if !out {
		p = rec.firstIn
	}
	for p != 0 {
		er, err := s.readEdge(storage.EID(p - 1))
		if err != nil {
			return false
		}
		other := storage.VID(er.dst)
		next := er.nextOut
		if !out {
			other = storage.VID(er.src)
			next = er.nextIn
		}
		if etype == storage.AnySymbol || er.typeID == uint32(etype) {
			if !fn(storage.EID(p-1), other) {
				return false
			}
		}
		p = next
	}
	return true
}

// forEachSegment is the typed iteration fast path on a segmented store:
// it finds the type's degree record (one short chain walk), seeks to its
// adjacency segment head, and consumes edges until the segment ends —
// other types' edge records are never read, the storage-level analogue of
// the paper's schema-driven traversal pruning. Reports whether iteration
// ran to completion (see forEachBase).
func (s *Store) forEachSegment(rec vertexRec, typeID uint32, out bool, fn func(storage.EID, storage.VID) bool) bool {
	for d := rec.firstDeg; d != 0; {
		dr, err := s.readDeg(d - 1)
		if err != nil {
			return false
		}
		if dr.typeID != typeID {
			d = dr.next
			continue
		}
		p := dr.firstOut
		if !out {
			p = dr.firstIn
		}
		for p != 0 {
			er, err := s.readEdge(storage.EID(p - 1))
			if err != nil {
				return false
			}
			if er.typeID != typeID {
				return true // left the segment
			}
			other := storage.VID(er.dst)
			next := er.nextOut
			if !out {
				other = storage.VID(er.src)
				next = er.nextIn
			}
			if !fn(storage.EID(p-1), other) {
				return false
			}
			p = next
		}
		return true
	}
	return true
}

// Degree returns the number of out- or in-edges of the given type. Both
// the untyped degree (vertex-record counters) and typed degrees (per-type
// degree records) are answered without touching the edge file.
func (s *Store) Degree(v storage.VID, etype string, out bool) int {
	return s.DegreeID(v, s.TypeID(etype), out)
}

// ---- storage.FastGraph ----

// LabelID resolves a vertex label to its interned ID.
func (s *Store) LabelID(label string) storage.SymbolID { return s.resolveSym(label, s.labelIDs) }

// TypeID resolves an edge type to its interned ID.
func (s *Store) TypeID(etype string) storage.SymbolID { return s.resolveSym(etype, s.typeIDs) }

// KeyID resolves a property key to its interned ID.
func (s *Store) KeyID(key string) storage.SymbolID { return s.resolveSym(key, s.keyIDs) }

func (s *Store) resolveSym(name string, ids map[string]int) storage.SymbolID {
	if name == "" {
		return storage.AnySymbol
	}
	s.symRLock()
	id, ok := ids[name]
	s.symRUnlock()
	if ok {
		return storage.SymbolID(id)
	}
	return storage.NoSymbol
}

// CountLabelID is CountLabel with a resolved label: the base index size
// plus the delta segment's members.
func (s *Store) CountLabelID(label storage.SymbolID) int {
	if label == storage.AnySymbol {
		return s.NumVertices()
	}
	if label < 0 {
		return 0
	}
	n := len(s.byLabel[int(label)])
	if s.liveMode.Load() {
		n += s.delta.labelCount(int(label))
	}
	return n
}

// ForEachVertexID is ForEachVertex with a resolved label: the base index
// first, then the delta segment's members.
func (s *Store) ForEachVertexID(label storage.SymbolID, fn func(storage.VID) bool) {
	if label == storage.AnySymbol {
		total := int64(s.NumVertices())
		for v := int64(0); v < total; v++ {
			if !fn(storage.VID(v)) {
				return
			}
		}
		return
	}
	if label < 0 {
		return
	}
	for _, v := range s.byLabel[int(label)] {
		if !fn(v) {
			return
		}
	}
	if s.liveMode.Load() {
		for _, v := range s.delta.labelVIDs(int(label)) {
			if !fn(v) {
				return
			}
		}
	}
}

// PlanVertexScan splits the label's base postings plus its delta-segment
// members into near-even partitions for morsel-style parallel execution.
// The v4 persisted label index (index.db) is an in-memory posting slice,
// so base partitions are plain subslices; the delta's members are copied
// once here, which makes the whole plan one consistent snapshot — every
// returned scan sees the same vertex set even while concurrent
// ApplyMutations batches keep growing the delta.
func (s *Store) PlanVertexScan(label storage.SymbolID, parts int) []storage.VertexScan {
	if label == storage.AnySymbol {
		// Snapshot the dense VID range once; vertices appended to the
		// delta after this point belong to no partition, matching a
		// serial scan that snapshots NumVertices up front.
		ranges := storage.SplitRange(s.NumVertices(), parts)
		scans := make([]storage.VertexScan, len(ranges))
		for i, r := range ranges {
			lo, hi := int64(r[0]), int64(r[1])
			scans[i] = func(fn func(storage.VID) bool) {
				for v := lo; v < hi; v++ {
					if !fn(storage.VID(v)) {
						return
					}
				}
			}
		}
		return scans
	}
	if label < 0 {
		return nil
	}
	base := s.byLabel[int(label)]
	var delta []storage.VID
	if s.liveMode.Load() {
		delta = s.delta.labelVIDs(int(label))
	}
	// Split the virtual concatenation base ++ delta so partition sizes
	// stay even regardless of how much of the label lives in the delta.
	ranges := storage.SplitRange(len(base)+len(delta), parts)
	scans := make([]storage.VertexScan, len(ranges))
	for i, r := range ranges {
		var basePart, deltaPart []storage.VID
		if r[0] < len(base) {
			basePart = base[r[0]:min(r[1], len(base))]
		}
		if r[1] > len(base) {
			deltaPart = delta[max(r[0]-len(base), 0) : r[1]-len(base)]
		}
		scans[i] = func(fn func(storage.VID) bool) {
			for _, v := range basePart {
				if !fn(v) {
					return
				}
			}
			for _, v := range deltaPart {
				if !fn(v) {
					return
				}
			}
		}
	}
	return scans
}

// HasLabelID is HasLabel with a resolved label; base record bits are
// merged with delta-side label additions.
func (s *Store) HasLabelID(v storage.VID, label storage.SymbolID) bool {
	if label < 0 || s.check(v) != nil {
		return false
	}
	live := s.liveMode.Load()
	if live && int64(v) >= s.numVertices {
		return s.delta.hasLabel(v, s.numVertices, int(label))
	}
	rec, err := s.readVertex(v)
	if err != nil {
		return false
	}
	if rec.labels[label/64]&(1<<uint(label%64)) != 0 {
		return true
	}
	return live && s.delta.hasLabel(v, s.numVertices, int(label))
}

// PropID is Prop with a resolved key. Delta-side values win: a live
// SetProp overrides the base chain without touching it.
func (s *Store) PropID(v storage.VID, key storage.SymbolID) (graph.Value, bool) {
	if key < 0 || s.check(v) != nil {
		return graph.Null, false
	}
	if s.liveMode.Load() {
		if int64(v) >= s.numVertices {
			return s.delta.prop(v, s.numVertices, int(key))
		}
		if val, ok := s.delta.prop(v, s.numVertices, int(key)); ok {
			return val, true
		}
	}
	rec, err := s.readVertex(v)
	if err != nil {
		return graph.Null, false
	}
	for p := rec.firstProp; p != 0; {
		pr, err := s.readProp(p - 1)
		if err != nil {
			return graph.Null, false
		}
		if pr.keyID == uint32(key) {
			val, err := s.decodeValue(pr)
			if err != nil {
				return graph.Null, false
			}
			return val, true
		}
		p = pr.next
	}
	return graph.Null, false
}

// ForEachOutID is ForEachOut with a resolved edge type.
func (s *Store) ForEachOutID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	s.forEachID(v, etype, true, fn)
}

// ForEachInID is ForEachIn with a resolved edge type.
func (s *Store) ForEachInID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	s.forEachID(v, etype, false, fn)
}

// DegreeID is Degree with a resolved edge type. The untyped degree comes
// from the vertex record's counters; typed degrees walk the vertex's
// per-type degree chain (one record per distinct edge type), except on
// legacy v2 stores, which fall back to counting the adjacency chain.
func (s *Store) DegreeID(v storage.VID, etype storage.SymbolID, out bool) int {
	if s.check(v) != nil || etype == storage.NoSymbol {
		return 0
	}
	deltaN := 0
	if s.liveMode.Load() {
		if int64(v) >= s.numVertices {
			return s.delta.degree(v, etype, out) // delta vertex: no base records
		}
		deltaN = s.delta.degree(v, etype, out)
	}
	if s.legacyDegrees() && etype != storage.AnySymbol {
		n := 0
		s.forEachBase(v, etype, out, func(storage.EID, storage.VID) bool {
			n++
			return true
		})
		return n + deltaN
	}
	rec, err := s.readVertex(v)
	if err != nil {
		return 0
	}
	if etype == storage.AnySymbol {
		if out {
			return int(rec.outDeg) + deltaN
		}
		return int(rec.inDeg) + deltaN
	}
	for d := rec.firstDeg; d != 0; {
		dr, err := s.readDeg(d - 1)
		if err != nil {
			return 0
		}
		if dr.typeID == uint32(etype) {
			if out {
				return int(dr.outDeg) + deltaN
			}
			return int(dr.inDeg) + deltaN
		}
		d = dr.next
	}
	return deltaN
}
