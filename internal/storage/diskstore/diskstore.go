// Package diskstore implements storage.Graph as a Neo4j-style record
// store: fixed-size vertex and edge records with linked-list adjacency,
// fixed-size property records chained off vertices, and a variable-length
// blob file for strings and lists — all accessed through a sharded,
// write-back page cache with clock-sweep eviction and per-page latches.
//
// It stands in for the paper's disk-based backend (Neo4j): every edge
// traversal dereferences edge and vertex records that may or may not be
// resident in the page cache, so schemas that need fewer traversals do
// proportionally less I/O. The cache size is configurable to reproduce the
// paper's observation that disk-based systems benefit most from schema
// optimization.
//
// # Base generations and epochs
//
// A store's base files belong to a numbered generation: generation 0 uses
// the plain file names (vertices.db, ...), generation N > 0 suffixes them
// (vertices.db.gN). The manifest records which generation is current, and
// swapping that single field — via the usual atomic manifest rename — is
// the commit point for background compaction (see compact.go): a fold
// builds a complete new generation in a temp directory, renames its files
// into place, commits the manifest, and then swaps the in-memory epoch.
// Files from any other generation are orphans and are swept at Open.
//
// In memory, each open generation is an epoch: the pager, record counts,
// label index, and the WAL fence (baseSeq) that tells readers which delta
// entries the generation's files already absorbed. Readers pin the epoch
// they read through (see view.go); a superseded epoch's files are closed
// and deleted only when its pin count drains to zero, so long-running
// traversals and snapshots keep a consistent view across a concurrent
// fold.
package diskstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/graph"
	"repro/internal/storage"
)

const (
	vertexRecSize = 64
	edgeRecSize   = 64
	propRecSize   = 32
	// degRecSize is the legacy (v3) degree record size; v4 degree records
	// grew to degRecSizeV4 to carry per-type adjacency segment heads.
	degRecSize   = 32
	degRecSizeV4 = 64
	maxLabels    = 128
)

// Options configures a Store.
type Options struct {
	// PageSize is the cache page size in bytes (default 8192). Record
	// sizes (64/64/32) must divide it.
	PageSize int
	// CachePages is the page cache capacity (default 256 pages = 2 MiB
	// with the default page size).
	CachePages int

	// Format forces the on-disk format of a newly created store (tests
	// and benchmarks: it lets the current code synthesize legacy v2/v3/v4
	// stores for compatibility and comparison runs). Zero means the
	// current format. Finalize never downgrades below v4 — legacy v2/v3
	// stores upgrade on Finalize exactly as before.
	Format int

	// Mmap maps the read-mostly record files (edges.db, vertices.db)
	// read-only into memory and serves page loads from the mapping
	// instead of the clock-sweep pager copy. The pager keeps ownership of
	// every write path and of the non-mapped files; the first write to a
	// mapped file atomically drops its mapping (see pager.write). No-op
	// on platforms without mmap support.
	Mmap bool
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.CachePages == 0 {
		o.CachePages = 256
	}
	return o
}

// formatVersion is the on-disk record layout version. Version 2 added
// untyped degree counters to vertex records (bytes 41-48). Version 3
// added per-type degree records (degrees.db, chained off bytes 49-56 of
// the vertex record) so typed Degree lookups no longer walk the adjacency
// chain. Version 4 added:
//
//   - a persisted derived-structure file (index.db) holding the label-scan
//     index and redundant symbol tables, so Open is O(index size) instead
//     of a full vertex scan;
//   - 64-byte degree records carrying per-type adjacency segment heads;
//   - the type-segmented adjacency invariant ("segmented" manifest flag):
//     after Finalize/Compact, each vertex's out/in chains are grouped by
//     edge type (out-chains additionally physically clustered in
//     edges.db), so typed traversals seek to their segment and never read
//     other types' edge records.
//
// Version 5 — current — adds:
//
//   - delta-varint compressed adjacency ("compressed" manifest flag):
//     after Finalize/Compact, edges.db holds gap-encoded (src, type)
//     segments instead of 64-byte edge records, and the degree record
//     doubles as the segment descriptor (byte offsets + lengths + the
//     first out-EID); see segcodec.go for the exact encoding;
//   - a persisted statistics block in index.db: per-edge-type counts and
//     per-(label, property-key) bloom filters, surfaced through
//     storage.Statistics (the label counts come from the label index
//     itself).
//
// Version 2-4 stores remain readable: they open in a legacy mode that
// answers queries the old way and keeps writing a same-version manifest
// on Flush (opening never silently upgrades a store; Compact upgrades
// explicitly). Incremental AddEdge on a non-live v5 store falls back to
// the uncompressed record layout until the next Finalize/Compact.
// Version 1 and unknown versions are rejected — v1 vertex records would
// silently read their degree counters as zero.
const formatVersion = 5

type manifest struct {
	Version int `json:"version"`
	// Generation numbers the current base file set. Generation 0 uses the
	// plain file names; generation N uses name.gN. Background compaction
	// bumps it — the manifest rename that records the new generation is
	// the fold's commit point. Orthogonal to Version (the record layout).
	Generation  int64    `json:"generation,omitempty"`
	Labels      []string `json:"labels"`
	Types       []string `json:"types"`
	Keys        []string `json:"keys"`
	NumVertices int64    `json:"num_vertices"`
	NumEdges    int64    `json:"num_edges"`
	NumProps    int64    `json:"num_props"`
	NumDegs     int64    `json:"num_degs,omitempty"`
	BlobSize    int64    `json:"blob_size"`
	// Segmented records the type-segmented adjacency invariant (v4; see
	// formatVersion).
	Segmented bool `json:"segmented,omitempty"`
	// Compressed records that edges.db holds delta-varint segments rather
	// than 64-byte edge records (v5; see formatVersion). EdgeBytes is the
	// logical size of the segment data — the bytes-on-disk numerator of
	// the compression ratio.
	Compressed bool  `json:"compressed,omitempty"`
	EdgeBytes  int64 `json:"edge_bytes,omitempty"`
	// WalSeq fences WAL replay: the highest WAL sequence number folded
	// into the base by a committed Compact. Records at or below it are
	// skipped (and a fully stale log truncated) at Open, so a crash
	// between Compact's manifest commit and its WAL truncation cannot
	// replay folded mutations twice.
	WalSeq uint64 `json:"wal_seq,omitempty"`
}

// baseFileNames are the record files backing one base generation, in
// pager file-slot order.
var baseFileNames = [numFiles]string{"vertices.db", "edges.db", "props.db", "blobs.db", "degrees.db"}

// indexFileName is the persisted derived-structure file (v4), also
// generation-suffixed.
const indexFileName = "index.db"

// genFileName maps a base file name to its generation-qualified on-disk
// name: generation 0 keeps the plain name so pre-generation stores open
// unchanged.
func genFileName(name string, gen int64) string {
	if gen == 0 {
		return name
	}
	return fmt.Sprintf("%s.g%d", name, gen)
}

// epoch is one open base generation: the five record files behind a
// pager, their counts, the label-scan index, and the WAL fence (baseSeq)
// identifying which logged batches the files already absorbed. Once a
// store is live its current epoch's files are never mutated in place —
// background compaction writes a whole new generation — so every field
// here is immutable for the epoch's lifetime and readers touch it without
// locks. (During single-writer building, before live mode, the one
// existing epoch is mutated freely.)
//
// pins counts references: 1 for the store itself while the epoch is
// current, plus one per in-flight read and per held snapshot. When a fold
// supersedes the epoch the store's reference is dropped; the last unpin
// reclaims it (closes and deletes the generation's files, then lets the
// delta prune entries the new generation absorbed).
type epoch struct {
	gen       int64
	version   int
	segmented bool
	// compressed reports that edges.db holds delta-varint segments (v5)
	// instead of edge records; degree records then carry the segment
	// descriptors and edgeBytes the logical segment-data size.
	compressed bool
	edgeBytes  int64
	pager      *pager

	numVertices int64
	numEdges    int64
	numProps    int64
	numDegs     int64
	blobSize    int64

	byLabel map[int][]storage.VID

	// Persisted statistics (v5, from Finalize or index.db): base edge
	// counts per type ID, and per-(label, key) bloom filters over the
	// property values present at finalize time. statsValid distinguishes
	// "no pair exists" (definitive) from "statistics unavailable"
	// (missing/torn index, legacy format, post-finalize build mutations).
	typeCounts []int64
	blooms     map[uint64]*bloom
	statsValid bool

	// baseSeq is the highest WAL sequence folded into this generation's
	// files; delta entries at or below it are already in the base and
	// invisible through this epoch.
	baseSeq uint64

	pins atomic.Int64
	// retire lists the generation's file paths, set when the epoch is
	// superseded; reclaim deletes them.
	retire []string
}

// legacyDegrees reports whether this generation predates per-type degree
// records (format v2): typed degree queries then fall back to walking the
// adjacency chain, and AddEdge does not maintain degree records.
func (ep *epoch) legacyDegrees() bool { return ep.version < 3 }

// degSize is the on-disk degree record size for this generation's format.
func (ep *epoch) degSize() int64 {
	if ep.version >= 4 {
		return degRecSizeV4
	}
	return degRecSize
}

// closeFiles closes the generation's backing files (and any mappings
// over them).
func (ep *epoch) closeFiles() error {
	ep.pager.closeMaps()
	var first error
	for _, f := range ep.pager.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Store is a disk-backed property graph. Building (AddVertex, AddEdge,
// SetProp, Flush) is single-writer, but once the store is fully built its
// entire read surface — traversals, property and label lookups, degree
// queries, stats — is safe for any number of concurrent reader
// goroutines: the symbol tables and label index are immutable after
// build, and record access goes through the pager's sharded page cache,
// where readers contend only when they touch the same cache shard at the
// same instant (see pager).
//
// On a live store, Compact runs in the background: readers and writers
// keep going against the current epoch while the fold builds the next
// generation (see compact.go), and AcquireSnapshot pins a consistent
// {epoch, delta watermark} view across the swap (see view.go).
type Store struct {
	dir  string
	opts Options

	// epMu guards cur — the pointer only, not the epoch's contents.
	// Readers take it shared just long enough to pin the current epoch;
	// the fold's swap takes it exclusively for a pointer assignment.
	epMu sync.RWMutex
	cur  *epoch

	// needFinalize is set by AddEdgeBatch: edges were appended without
	// adjacency linkage and Finalize must run before the store is read.
	// Flush finalizes automatically as a safety net.
	needFinalize bool
	// indexLoaded reports that Open restored the label index from
	// index.db instead of scanning every vertex record.
	indexLoaded bool
	// indexCurrent reports that the index file on disk describes the
	// current in-memory state: set by a successful load at Open and by
	// every index write, cleared by the first mutation. A clean Flush
	// with a current index skips the rewrite.
	indexCurrent bool
	// dirty is set by the first mutation since open/flush (markDirty),
	// which also removes the index file at that moment — so no crash
	// window exists in which on-disk data coexists with a
	// stale-but-validating index.
	dirty bool

	labels   []string
	labelIDs map[string]int
	types    []string
	typeIDs  map[string]int
	keys     []string
	keyIDs   map[string]int

	// ---- live-write state (see live.go, wal.go, delta.go) ----

	// liveMode gates the durable post-finalize write path: Builder calls
	// reroute through ApplyMutations, reads merge the delta segment, and
	// symbol-table access takes symMu. Flipped only at Open and around
	// the exclusive Finalize path.
	liveMode atomic.Bool
	// liveMu serializes ApplyMutations batches (WAL append order = delta
	// apply order = replay order) and the fold's freeze/swap steps.
	liveMu sync.Mutex
	// symMu guards the symbol tables once liveMode is set; never taken
	// outside live mode.
	symMu sync.RWMutex
	// delta is the in-memory segment of live mutations; always non-nil.
	// It is shared across epochs: entries carry WAL sequence numbers and
	// each epoch sees only the window its baseSeq has not absorbed.
	delta *delta
	// wal is the open write-ahead log, created lazily on the first live
	// mutation (atomic so LiveStats can read it without liveMu).
	wal atomic.Pointer[wal]
	// walFoldedSeq mirrors manifest.WalSeq; advanced by folds.
	walFoldedSeq uint64
	// pendingCheckpoint is set by the exclusive foldDelta: the next
	// committed Flush truncates the WAL. (Background folds rotate the
	// log themselves instead.)
	pendingCheckpoint bool

	// ---- background compaction state (see compact.go) ----

	// folding is the single-flight guard: a second Compact while one is
	// in progress returns storage.ErrCompactInProgress.
	folding atomic.Bool
	// foldProgress is the running fold's progress in permille.
	foldProgress atomic.Int64
	// generation mirrors cur.gen for lock-free stats reads.
	generation atomic.Int64
	// retired counts superseded epochs not yet reclaimed; when it drains
	// to zero the delta's folded prefix is pruned.
	retired atomic.Int64
	// pinnedSnaps counts snapshots acquired and not yet released.
	pinnedSnaps atomic.Int64
	// compactions counts completed folds (background or exclusive).
	compactions atomic.Int64
	// flushMu serializes manifest commits: a Flush racing a background
	// fold must not write a stale generation over the fold's commit.
	// Lock order: flushMu before liveMu.
	flushMu sync.Mutex
}

// FormatInfo describes how a store was opened; see (*Store).Format.
type FormatInfo struct {
	// Version is the on-disk format version (2-5).
	Version int
	// Generation is the base file generation currently serving reads.
	Generation int64
	// Segmented reports the type-segmented adjacency invariant.
	Segmented bool
	// Compressed reports the delta-varint adjacency layout (v5).
	Compressed bool
	// IndexLoaded reports that Open restored the label index from
	// index.db rather than scanning every vertex record.
	IndexLoaded bool
	// EdgeBytes is the logical adjacency size in edges.db: segment bytes
	// on a compressed store, numEdges × 64 on a record-layout store.
	// EdgeBytes / NumEdges is the bytes-per-edge figure the compress
	// bench reports.
	EdgeBytes int64
}

// Format reports the store's on-disk format version and how it was
// opened. Serving and benchmark tools log it so "did this store open the
// fast way" is observable.
func (s *Store) Format() FormatInfo {
	ep := s.curEp()
	eb := ep.numEdges * edgeRecSize
	if ep.compressed {
		eb = ep.edgeBytes
	}
	return FormatInfo{
		Version: ep.version, Generation: ep.gen,
		Segmented: ep.segmented, Compressed: ep.compressed,
		IndexLoaded: s.indexLoaded, EdgeBytes: eb,
	}
}

// SegmentedAdjacency reports whether adjacency is currently grouped by
// edge type (see storage.TypeSegmentedGraph).
func (s *Store) SegmentedAdjacency() bool { return s.curEp().segmented }

// curEp returns the current epoch without pinning it — for uses that
// only read immutable fields and never touch the pager after a
// potential swap.
func (s *Store) curEp() *epoch {
	s.epMu.RLock()
	ep := s.cur
	s.epMu.RUnlock()
	return ep
}

var (
	_ storage.Builder            = (*Store)(nil)
	_ storage.FastGraph          = (*Store)(nil)
	_ storage.StatsReporter      = (*Store)(nil)
	_ storage.BatchBuilder       = (*Store)(nil)
	_ storage.TypeSegmentedGraph = (*Store)(nil)
	_ storage.Snapshotter        = (*Store)(nil)
)

// Open creates (or reopens) a store in dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.PageSize%vertexRecSize != 0 || opts.PageSize%propRecSize != 0 || opts.PageSize%degRecSize != 0 {
		return nil, fmt.Errorf("diskstore: page size %d must be a multiple of record sizes", opts.PageSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, finalizeMarker)); err == nil {
		// The exclusive Finalize path rewrites edges.db in place; the
		// marker survives only when that rewrite never committed, so the
		// edge file may hold a mix of old- and new-order records that the
		// manifest cannot detect. Refusing is the only safe answer.
		// (Background Compact never places this marker — it builds a new
		// generation in a temp directory and a crashed fold leaves only
		// orphan files, swept below.)
		return nil, fmt.Errorf("diskstore: %s: %w; rebuild the store from its source data (or restore a backup), then remove %s",
			dir, ErrFinalizeInterrupted, finalizeMarker)
	}
	m, haveManifest, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	gen := int64(0)
	if haveManifest {
		gen = m.Generation
	}
	var files [numFiles]*os.File
	for i, name := range baseFileNames {
		f, err := os.OpenFile(filepath.Join(dir, genFileName(name, gen)), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	pg, err := newPager(files, opts.PageSize, opts.CachePages)
	if err != nil {
		return nil, err
	}
	if opts.Mmap {
		pg.enableMmap(fileVertices, fileEdges)
	}
	version := formatVersion
	if opts.Format != 0 {
		version = opts.Format
	}
	ep := &epoch{
		gen:       gen,
		version:   version,
		segmented: true, // trivially: no edges yet (manifest overrides)
		pager:     pg,
		byLabel:   map[int][]storage.VID{},
	}
	ep.pins.Store(1)
	s := &Store{
		dir:      dir,
		opts:     opts,
		cur:      ep,
		labelIDs: map[string]int{},
		typeIDs:  map[string]int{},
		keyIDs:   map[string]int{},
	}
	s.generation.Store(gen)
	if haveManifest {
		ep.version = m.Version
		// Only v4 degree records carry the segment heads the seek path
		// needs; never trust a segmented claim on a legacy manifest.
		ep.segmented = m.Segmented && m.Version >= 4
		ep.compressed = m.Compressed && m.Version >= 5
		ep.edgeBytes = m.EdgeBytes
		ep.numVertices, ep.numEdges, ep.numProps, ep.blobSize = m.NumVertices, m.NumEdges, m.NumProps, m.BlobSize
		ep.numDegs = m.NumDegs
		ep.baseSeq = m.WalSeq
		s.labels, s.types, s.keys = m.Labels, m.Types, m.Keys
		s.walFoldedSeq = m.WalSeq
		for i, l := range s.labels {
			s.labelIDs[l] = i
		}
		for i, t := range s.types {
			s.typeIDs[t] = i
		}
		for i, k := range s.keys {
			s.keyIDs[k] = i
		}
	}
	// A crashed background fold leaves files from generations the
	// manifest never committed (and possibly a fold.tmp build directory);
	// none of them are reachable, so sweep them before touching anything.
	sweepOrphans(dir, gen)
	// Restore the label-scan index: v4 stores persist it alongside the
	// generation, so opening costs O(index size). Legacy stores — and v4
	// stores whose index file is missing, torn, or out of step with the
	// manifest — fall back to rebuilding it from a full vertex scan.
	if haveManifest {
		if ep.version >= 4 && s.loadIndex(ep) {
			s.indexLoaded = true
			s.indexCurrent = true
		} else {
			for v := int64(0); v < ep.numVertices; v++ {
				rec, err := ep.readVertex(storage.VID(v))
				if err != nil {
					return nil, err
				}
				for _, id := range labelBitsToIDs(rec.labels) {
					ep.byLabel[id] = append(ep.byLabel[id], storage.VID(v))
				}
			}
		}
	}
	s.delta = newDelta(ep.numVertices, ep.numEdges)
	// Recovery pass: enter live mode for finalized stores and replay any
	// write-ahead log a crashed live session left behind (see live.go).
	if err := s.recoverLive(); err != nil {
		return nil, err
	}
	return s, nil
}

// ErrFinalizeInterrupted is returned (wrapped, with a recovery hint) by
// Open when the finalize.inprogress marker is present: an exclusive
// Finalize (or the exclusive Compact path a non-live store takes)
// crashed after it may have started rewriting edge records in place and
// before the rewrite was committed by a Flush, so edges.db may hold a
// mix of old- and new-order records that the manifest cannot detect.
// Background Compact on a live store never hits this: it builds the new
// generation in a temp directory and commits it with one manifest
// rename, so a crash at any instant leaves either the old or the new
// generation fully intact. Test with errors.Is.
var ErrFinalizeInterrupted = errors.New("store was interrupted mid-finalize/compact and its edge records may be partially rewritten")

// readManifest loads and validates manifest.json, reporting whether one
// exists (a fresh directory has none).
func readManifest(dir string) (manifest, bool, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if os.IsNotExist(err) {
		return m, false, nil
	}
	if err != nil {
		return m, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, err
	}
	if m.Version < 2 || m.Version > formatVersion {
		return m, false, fmt.Errorf("diskstore: store format v%d is not supported (want v2..v%d); rebuild the store", m.Version, formatVersion)
	}
	if m.Generation < 0 {
		return m, false, fmt.Errorf("diskstore: negative base generation %d in manifest", m.Generation)
	}
	return m, true, nil
}

// sweepOrphans removes base-generation files that do not belong to the
// committed generation, leftover temp files, and any fold.tmp build
// directory — the residue of a background fold that crashed before or
// after its manifest commit. Best-effort: sweep failures leave garbage,
// never break an open.
func sweepOrphans(dir string, gen int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keep := map[string]bool{
		"manifest.json": true,
		walFileName:     true,
		finalizeMarker:  true,
	}
	for _, name := range baseFileNames {
		keep[genFileName(name, gen)] = true
	}
	keep[genFileName(indexFileName, gen)] = true
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		if e.IsDir() {
			if name == foldTmpDir {
				os.RemoveAll(filepath.Join(dir, name))
			}
			continue
		}
		if strings.HasSuffix(name, ".tmp") || isGenFile(name) {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// isGenFile reports whether name is a base-generation file of some
// generation (plain or .gN-suffixed).
func isGenFile(name string) bool {
	for _, base := range append(baseFileNames[:], indexFileName) {
		if name == base {
			return true
		}
		if rest, ok := strings.CutPrefix(name, base+".g"); ok {
			if _, err := strconv.ParseInt(rest, 10, 64); err == nil {
				return true
			}
		}
	}
	return false
}

// markDirty records the first mutation since open/flush. For v4 stores
// it removes the index file at that moment — before the mutation's page
// write, and crucially before cache eviction can push any dirty page to
// disk — because no index may ever sit on disk alongside data newer than
// it: record counts and symbol tables cannot catch every mutation (e.g.
// AddLabel of an existing label to an existing vertex changes neither),
// so a surviving stale index could still validate. From the first
// mutation until the next successful Flush, a crash leaves a store with
// no index that rebuilds correctly by scanning.
func (s *Store) markDirty() error {
	if s.dirty {
		return nil
	}
	if s.cur.version >= 4 {
		if err := os.Remove(s.indexPath(s.cur.gen)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	// Build-mode mutations can change label membership and property
	// values, so the persisted statistics stop being definitive the same
	// instant the index file goes (Finalize rebuilds them).
	s.cur.statsValid = false
	s.cur.typeCounts = nil
	s.cur.blooms = nil
	s.indexCurrent = false
	s.dirty = true
	return nil
}

// Flush writes dirty pages, the derived-index file (v4), and the manifest
// to disk. The index and manifest are each written to a temp file and
// renamed into place, so a crash mid-flush leaves either the old or the
// new file — never a torn one — and the manifest rename is the commit
// point (the index file itself was already removed by the first
// mutation; see markDirty). A store with nothing mutated since open
// skips the rewrites entirely — read-only workloads stay read-only on
// close — unless it is a v4 store whose index had to be rebuilt by
// scanning, which writes once to repair the missing index file. Pending
// bulk edges (AddEdgeBatch without Finalize) are finalized first so a
// flushed store is always fully linked.
func (s *Store) Flush() error {
	if s.needFinalize {
		if err := s.Finalize(); err != nil {
			return err
		}
	}
	// flushMu serializes the commit with a background fold's: the fold
	// holds it across its manifest write and epoch swap, so the epoch
	// read below cannot see a generation the manifest no longer names.
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	ep := s.curEp()
	if !s.dirty && (ep.version < 4 || s.indexCurrent) {
		return ep.pager.flush()
	}
	if err := ep.pager.flush(); err != nil {
		return err
	}
	if ep.version >= 4 {
		if err := s.writeIndex(ep); err != nil {
			return err
		}
		s.indexCurrent = true
	}
	// Note the counts describe the base files only: in live mode the
	// delta segment is not flushed here — it is durable through the WAL
	// and folded into the base by the next Compact.
	m := manifest{
		Version: ep.version, Generation: ep.gen,
		Labels: s.labels, Types: s.types, Keys: s.keys,
		NumVertices: ep.numVertices, NumEdges: ep.numEdges, NumProps: ep.numProps,
		NumDegs: ep.numDegs, BlobSize: ep.blobSize,
		Segmented:  ep.segmented && ep.version >= 4,
		Compressed: ep.compressed && ep.version >= 5,
		EdgeBytes:  ep.edgeBytes,
		WalSeq:     s.walFoldedSeq,
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, "manifest.json"), data); err != nil {
		return err
	}
	// The manifest rename committed the flush; a finalize that ran since
	// the last commit is now fully durable, so its marker can go. (A
	// crash between the two leaves the marker on a consistent store — a
	// safe false positive: Open refuses and asks for a rebuild.)
	if err := os.Remove(filepath.Join(s.dir, finalizeMarker)); err != nil && !os.IsNotExist(err) {
		return err
	}
	// Checkpoint: the manifest just committed a wal_seq covering every
	// folded record, so the WAL can be emptied. A crash before this
	// truncation leaves a stale log that replay skips (and truncates) via
	// the fence.
	if s.pendingCheckpoint {
		if w := s.wal.Load(); w != nil {
			if err := w.reset(); err != nil {
				return err
			}
		}
		s.pendingCheckpoint = false
	}
	s.dirty = false
	return nil
}

// finalizeMarker is the sentinel file present while an exclusive
// Finalize edge rewrite is in flight but not yet committed by a Flush;
// see Finalize and Open. Background folds never place it.
const finalizeMarker = "finalize.inprogress"

// placeFinalizeMarker creates (and syncs) the in-flight finalize
// sentinel.
func (s *Store) placeFinalizeMarker() error {
	return writeFileAtomic(filepath.Join(s.dir, finalizeMarker),
		[]byte("edge rewrite in flight; removed by the next committed Flush\n"))
}

// writeFileAtomic writes data to a sibling temp file, syncs it, renames
// it over path, and syncs the parent directory, so readers only ever
// observe the old or the new content — and the rename itself survives a
// power loss, which the finalize-marker protocol depends on.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename in it is
// durable. Filesystems that cannot sync directories make it a no-op.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// Close flushes and closes the underlying files. A live store's delta
// segment is not folded — it stays durable through the WAL and is
// replayed on the next Open; call Compact first to fold it instead.
// Closing with unreleased snapshots is a caller bug; their epochs' files
// may already be closed under them.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if w := s.wal.Load(); w != nil {
		if err := w.close(); err != nil {
			return err
		}
	}
	return s.curEp().closeFiles()
}

// DropCache empties the page cache, simulating a cold start.
func (s *Store) DropCache() error { return s.curEp().pager.dropCache() }

// Stats returns page cache counters (of the current epoch's pager).
func (s *Store) Stats() storage.Stats { return s.curEp().pager.readStats() }

// ResetStats zeroes the page cache counters.
func (s *Store) ResetStats() { s.curEp().pager.resetStats() }

// ---- record codecs (per epoch: each generation has its own files) ----

type vertexRec struct {
	inUse     bool
	labels    [2]uint64
	firstOut  int64 // edge id + 1; 0 = none
	firstIn   int64
	firstProp int64 // prop id + 1
	// Degree counters let Degree(v, "", out) answer from the vertex
	// record alone instead of walking the whole adjacency chain.
	outDeg uint32
	inDeg  uint32
	// firstDeg chains per-type degree records (deg id + 1; 0 = none) so
	// typed Degree walks one short record per distinct edge type instead
	// of the full adjacency chain. Always 0 in legacy (v2) stores.
	firstDeg int64
}

type edgeRec struct {
	inUse    bool
	typeID   uint32
	src, dst int64
	nextOut  int64 // edge id + 1
	nextIn   int64
}

// degRec is one vertex's degree counters for one edge type, chained per
// vertex (Finalize chains them in ascending type order; incremental
// building in type-first-seen order). Chains are short — one record per
// distinct edge type the vertex touches — so walking them is cheap even
// for hub vertices with huge adjacency chains.
//
// In format v4 the record doubles as the type's adjacency segment
// descriptor: firstOut/firstIn point at the first edge of this type's
// segment in the vertex's out/in chains, valid while the store's
// segmented invariant holds. Legacy (v3) records are 32 bytes and have no
// segment heads.
//
// On a compressed (v5) epoch the descriptor bytes are reinterpreted:
// bytes 21-36 hold the byte offsets of the type's out/in varint segments
// in edges.db (stored +1; 0 = empty), bytes 37-44 their encoded lengths,
// and bytes 45-52 the EID of the segment's first out-edge (+1) — out-EIDs
// are contiguous per segment, so one stored EID recovers all of them.
type degRec struct {
	inUse  bool
	typeID uint32
	outDeg uint32
	inDeg  uint32
	next   int64 // deg id + 1
	// v4 uncompressed: heads of this type's adjacency segments (edge id + 1).
	firstOut int64
	firstIn  int64
	// v5 compressed: varint segment descriptors (offsets stored +1).
	outOff, inOff int64
	outLen, inLen uint32
	firstOutEID   int64 // EID of the segment's first out-edge, stored +1
}

type propRec struct {
	inUse bool
	keyID uint32
	kind  graph.Kind
	a, b  uint64
	next  int64 // prop id + 1
}

func (ep *epoch) readVertex(v storage.VID) (vertexRec, error) {
	var buf [vertexRecSize]byte
	if err := ep.pager.read(fileVertices, int64(v)*vertexRecSize, buf[:]); err != nil {
		return vertexRec{}, err
	}
	return vertexRec{
		inUse:     buf[0]&1 != 0,
		labels:    [2]uint64{binary.LittleEndian.Uint64(buf[1:]), binary.LittleEndian.Uint64(buf[9:])},
		firstOut:  int64(binary.LittleEndian.Uint64(buf[17:])),
		firstIn:   int64(binary.LittleEndian.Uint64(buf[25:])),
		firstProp: int64(binary.LittleEndian.Uint64(buf[33:])),
		outDeg:    binary.LittleEndian.Uint32(buf[41:]),
		inDeg:     binary.LittleEndian.Uint32(buf[45:]),
		firstDeg:  int64(binary.LittleEndian.Uint64(buf[49:])),
	}, nil
}

func (ep *epoch) writeVertex(v storage.VID, r vertexRec) error {
	var buf [vertexRecSize]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint64(buf[1:], r.labels[0])
	binary.LittleEndian.PutUint64(buf[9:], r.labels[1])
	binary.LittleEndian.PutUint64(buf[17:], uint64(r.firstOut))
	binary.LittleEndian.PutUint64(buf[25:], uint64(r.firstIn))
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.firstProp))
	binary.LittleEndian.PutUint32(buf[41:], r.outDeg)
	binary.LittleEndian.PutUint32(buf[45:], r.inDeg)
	binary.LittleEndian.PutUint64(buf[49:], uint64(r.firstDeg))
	return ep.pager.write(fileVertices, int64(v)*vertexRecSize, buf[:])
}

func (ep *epoch) readEdge(e storage.EID) (edgeRec, error) {
	var buf [edgeRecSize]byte
	if err := ep.pager.read(fileEdges, int64(e)*edgeRecSize, buf[:]); err != nil {
		return edgeRec{}, err
	}
	return edgeRec{
		inUse:   buf[0]&1 != 0,
		typeID:  binary.LittleEndian.Uint32(buf[1:]),
		src:     int64(binary.LittleEndian.Uint64(buf[5:])),
		dst:     int64(binary.LittleEndian.Uint64(buf[13:])),
		nextOut: int64(binary.LittleEndian.Uint64(buf[21:])),
		nextIn:  int64(binary.LittleEndian.Uint64(buf[29:])),
	}, nil
}

func (ep *epoch) writeEdge(e storage.EID, r edgeRec) error {
	var buf [edgeRecSize]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], r.typeID)
	binary.LittleEndian.PutUint64(buf[5:], uint64(r.src))
	binary.LittleEndian.PutUint64(buf[13:], uint64(r.dst))
	binary.LittleEndian.PutUint64(buf[21:], uint64(r.nextOut))
	binary.LittleEndian.PutUint64(buf[29:], uint64(r.nextIn))
	return ep.pager.write(fileEdges, int64(e)*edgeRecSize, buf[:])
}

func (ep *epoch) readProp(p int64) (propRec, error) {
	var buf [propRecSize]byte
	if err := ep.pager.read(fileProps, p*propRecSize, buf[:]); err != nil {
		return propRec{}, err
	}
	return propRec{
		inUse: buf[0]&1 != 0,
		keyID: binary.LittleEndian.Uint32(buf[1:]),
		kind:  graph.Kind(buf[5]),
		a:     binary.LittleEndian.Uint64(buf[6:]),
		b:     binary.LittleEndian.Uint64(buf[14:]),
		next:  int64(binary.LittleEndian.Uint64(buf[22:])),
	}, nil
}

func (ep *epoch) writeProp(p int64, r propRec) error {
	var buf [propRecSize]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], r.keyID)
	buf[5] = byte(r.kind)
	binary.LittleEndian.PutUint64(buf[6:], r.a)
	binary.LittleEndian.PutUint64(buf[14:], r.b)
	binary.LittleEndian.PutUint64(buf[22:], uint64(r.next))
	return ep.pager.write(fileProps, p*propRecSize, buf[:])
}

func (ep *epoch) readDeg(d int64) (degRec, error) {
	size := ep.degSize()
	var buf [degRecSizeV4]byte
	if err := ep.pager.read(fileDegrees, d*size, buf[:size]); err != nil {
		return degRec{}, err
	}
	r := degRec{
		inUse:  buf[0]&1 != 0,
		typeID: binary.LittleEndian.Uint32(buf[1:]),
		outDeg: binary.LittleEndian.Uint32(buf[5:]),
		inDeg:  binary.LittleEndian.Uint32(buf[9:]),
		next:   int64(binary.LittleEndian.Uint64(buf[13:])),
	}
	if size == degRecSizeV4 {
		if ep.compressed {
			r.outOff = int64(binary.LittleEndian.Uint64(buf[21:]))
			r.inOff = int64(binary.LittleEndian.Uint64(buf[29:]))
			r.outLen = binary.LittleEndian.Uint32(buf[37:])
			r.inLen = binary.LittleEndian.Uint32(buf[41:])
			r.firstOutEID = int64(binary.LittleEndian.Uint64(buf[45:]))
		} else {
			r.firstOut = int64(binary.LittleEndian.Uint64(buf[21:]))
			r.firstIn = int64(binary.LittleEndian.Uint64(buf[29:]))
		}
	}
	return r, nil
}

func (ep *epoch) writeDeg(d int64, r degRec) error {
	size := ep.degSize()
	var buf [degRecSizeV4]byte
	if r.inUse {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], r.typeID)
	binary.LittleEndian.PutUint32(buf[5:], r.outDeg)
	binary.LittleEndian.PutUint32(buf[9:], r.inDeg)
	binary.LittleEndian.PutUint64(buf[13:], uint64(r.next))
	if size == degRecSizeV4 {
		if ep.compressed {
			binary.LittleEndian.PutUint64(buf[21:], uint64(r.outOff))
			binary.LittleEndian.PutUint64(buf[29:], uint64(r.inOff))
			binary.LittleEndian.PutUint32(buf[37:], r.outLen)
			binary.LittleEndian.PutUint32(buf[41:], r.inLen)
			binary.LittleEndian.PutUint64(buf[45:], uint64(r.firstOutEID))
		} else {
			binary.LittleEndian.PutUint64(buf[21:], uint64(r.firstOut))
			binary.LittleEndian.PutUint64(buf[29:], uint64(r.firstIn))
		}
	}
	return ep.pager.write(fileDegrees, d*size, buf[:size])
}

// bumpDeg increments the per-type degree counter reachable from rec,
// creating (and chaining) the type's record on first sight. May update
// rec.firstDeg; the caller writes the vertex record afterwards.
func (ep *epoch) bumpDeg(rec *vertexRec, typeID uint32, out bool) error {
	for d := rec.firstDeg; d != 0; {
		dr, err := ep.readDeg(d - 1)
		if err != nil {
			return err
		}
		if dr.typeID == typeID {
			if out {
				dr.outDeg++
			} else {
				dr.inDeg++
			}
			return ep.writeDeg(d-1, dr)
		}
		d = dr.next
	}
	id := ep.numDegs
	ep.numDegs++
	dr := degRec{inUse: true, typeID: typeID, next: rec.firstDeg}
	if out {
		dr.outDeg = 1
	} else {
		dr.inDeg = 1
	}
	if err := ep.writeDeg(id, dr); err != nil {
		return err
	}
	rec.firstDeg = id + 1
	return nil
}

func (ep *epoch) appendBlob(data []byte) (off int64, err error) {
	off = ep.blobSize
	if err := ep.pager.write(fileBlobs, off, data); err != nil {
		return 0, err
	}
	ep.blobSize += int64(len(data))
	return off, nil
}

func (ep *epoch) readBlob(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if err := ep.pager.read(fileBlobs, off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func labelBitsToIDs(bitsets [2]uint64) []int {
	var ids []int
	for w, word := range bitsets {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			ids = append(ids, w*64+b)
			word &^= 1 << b
		}
	}
	return ids
}

// ---- value <-> prop record encoding ----

// encodeValue fills kind/a/b for a value, appending blob data as needed.
func (ep *epoch) encodeValue(v graph.Value) (kind graph.Kind, a, b uint64, err error) {
	switch v.Kind() {
	case graph.KindNull:
		return graph.KindNull, 0, 0, nil
	case graph.KindInt:
		return graph.KindInt, uint64(v.Int()), 0, nil
	case graph.KindFloat:
		return graph.KindFloat, graph.FloatBits(v.Float()), 0, nil
	case graph.KindBool:
		if v.Bool() {
			return graph.KindBool, 1, 0, nil
		}
		return graph.KindBool, 0, 0, nil
	case graph.KindString:
		off, err := ep.appendBlob([]byte(v.Str()))
		if err != nil {
			return 0, 0, 0, err
		}
		return graph.KindString, uint64(off), uint64(len(v.Str())), nil
	case graph.KindList:
		data, err := encodeList(v.List())
		if err != nil {
			return 0, 0, 0, err
		}
		off, err := ep.appendBlob(data)
		if err != nil {
			return 0, 0, 0, err
		}
		return graph.KindList, uint64(off), uint64(len(data)), nil
	default:
		return 0, 0, 0, fmt.Errorf("diskstore: unsupported value kind %v", v.Kind())
	}
}

func (ep *epoch) decodeValue(r propRec) (graph.Value, error) {
	switch r.kind {
	case graph.KindNull:
		return graph.Null, nil
	case graph.KindInt:
		return graph.I(int64(r.a)), nil
	case graph.KindFloat:
		return graph.FBits(r.a), nil
	case graph.KindBool:
		return graph.B(r.a == 1), nil
	case graph.KindString:
		data, err := ep.readBlob(int64(r.a), int64(r.b))
		if err != nil {
			return graph.Null, err
		}
		return graph.S(string(data)), nil
	case graph.KindList:
		data, err := ep.readBlob(int64(r.a), int64(r.b))
		if err != nil {
			return graph.Null, err
		}
		return decodeList(data)
	default:
		return graph.Null, fmt.Errorf("diskstore: unsupported stored kind %v", r.kind)
	}
}

// encodeList serializes a list of scalar values. Nested lists are not
// supported (the schema optimizer only replicates scalar properties).
func encodeList(vs []graph.Value) ([]byte, error) {
	var out []byte
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(vs)))
	out = append(out, n[:4]...)
	for _, v := range vs {
		out = append(out, byte(v.Kind()))
		switch v.Kind() {
		case graph.KindNull:
		case graph.KindInt:
			binary.LittleEndian.PutUint64(n[:], uint64(v.Int()))
			out = append(out, n[:]...)
		case graph.KindFloat:
			binary.LittleEndian.PutUint64(n[:], graph.FloatBits(v.Float()))
			out = append(out, n[:]...)
		case graph.KindBool:
			if v.Bool() {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case graph.KindString:
			binary.LittleEndian.PutUint32(n[:4], uint32(len(v.Str())))
			out = append(out, n[:4]...)
			out = append(out, v.Str()...)
		default:
			return nil, fmt.Errorf("diskstore: cannot store nested %v in list", v.Kind())
		}
	}
	return out, nil
}

func decodeList(data []byte) (graph.Value, error) {
	if len(data) < 4 {
		return graph.Null, fmt.Errorf("diskstore: corrupt list blob")
	}
	count := binary.LittleEndian.Uint32(data)
	data = data[4:]
	vs := make([]graph.Value, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data) < 1 {
			return graph.Null, fmt.Errorf("diskstore: truncated list blob")
		}
		kind := graph.Kind(data[0])
		data = data[1:]
		switch kind {
		case graph.KindNull:
			vs = append(vs, graph.Null)
		case graph.KindInt:
			vs = append(vs, graph.I(int64(binary.LittleEndian.Uint64(data))))
			data = data[8:]
		case graph.KindFloat:
			vs = append(vs, graph.FBits(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		case graph.KindBool:
			vs = append(vs, graph.B(data[0] == 1))
			data = data[1:]
		case graph.KindString:
			n := binary.LittleEndian.Uint32(data)
			data = data[4:]
			vs = append(vs, graph.S(string(data[:n])))
			data = data[n:]
		default:
			return graph.Null, fmt.Errorf("diskstore: corrupt list element kind %v", kind)
		}
	}
	return graph.L(vs...), nil
}

// ---- Builder (single-writer build mode; operates on the one epoch) ----

// AddVertex creates a vertex with the given labels. On a live
// (finalized) store the write is rerouted through the durable
// WAL-backed path; see ApplyMutations.
func (s *Store) AddVertex(labels ...string) (storage.VID, error) {
	if s.liveMode.Load() {
		res, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddVertex, Labels: labels}})
		if err != nil {
			return 0, err
		}
		return res.Vertices[0], nil
	}
	if err := s.markDirty(); err != nil {
		return 0, err
	}
	ep := s.cur
	v := storage.VID(ep.numVertices)
	ep.numVertices++
	if err := ep.writeVertex(v, vertexRec{inUse: true}); err != nil {
		return 0, err
	}
	for _, l := range labels {
		if err := s.AddLabel(v, l); err != nil {
			return 0, err
		}
	}
	return v, nil
}

func (s *Store) labelID(label string, create bool) (int, bool, error) {
	if id, ok := s.labelIDs[label]; ok {
		return id, true, nil
	}
	if !create {
		return 0, false, nil
	}
	if len(s.labels) >= maxLabels {
		return 0, false, fmt.Errorf("diskstore: label limit (%d) exceeded", maxLabels)
	}
	id := len(s.labels)
	s.labels = append(s.labels, label)
	s.labelIDs[label] = id
	return id, true, nil
}

// AddLabel adds a label to an existing vertex (durably via the WAL on a
// live store).
func (s *Store) AddLabel(v storage.VID, label string) error {
	if s.liveMode.Load() {
		_, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddLabel, V: v, Label: label}})
		return err
	}
	if err := s.check(v); err != nil {
		return err
	}
	id, _, err := s.labelID(label, true)
	if err != nil {
		return err
	}
	ep := s.cur
	rec, err := ep.readVertex(v)
	if err != nil {
		return err
	}
	w, b := id/64, uint(id%64)
	if rec.labels[w]&(1<<b) != 0 {
		return nil
	}
	rec.labels[w] |= 1 << b
	if err := s.markDirty(); err != nil {
		return err
	}
	if err := ep.writeVertex(v, rec); err != nil {
		return err
	}
	ep.byLabel[id] = append(ep.byLabel[id], v)
	return nil
}

// SetProp sets a vertex property, replacing any previous value (durably
// via the WAL on a live store).
func (s *Store) SetProp(v storage.VID, key string, val graph.Value) error {
	if s.liveMode.Load() {
		_, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutSetProp, V: v, Key: key, Value: val}})
		return err
	}
	if err := s.check(v); err != nil {
		return err
	}
	keyID := s.internKey(key)
	if err := s.markDirty(); err != nil {
		return err
	}
	ep := s.cur
	kind, a, b, err := ep.encodeValue(val)
	if err != nil {
		return err
	}
	rec, err := ep.readVertex(v)
	if err != nil {
		return err
	}
	// Overwrite in place if the key exists in the chain.
	for p := rec.firstProp; p != 0; {
		pr, err := ep.readProp(p - 1)
		if err != nil {
			return err
		}
		if pr.keyID == uint32(keyID) {
			pr.kind, pr.a, pr.b = kind, a, b
			return ep.writeProp(p-1, pr)
		}
		p = pr.next
	}
	// Prepend a new record.
	pid := ep.numProps
	ep.numProps++
	pr := propRec{inUse: true, keyID: uint32(keyID), kind: kind, a: a, b: b, next: rec.firstProp}
	if err := ep.writeProp(pid, pr); err != nil {
		return err
	}
	rec.firstProp = pid + 1
	return ep.writeVertex(v, rec)
}

// AddEdge creates a directed edge of the given type. During building it
// prepends to the source's out-chain and the destination's in-chain; on
// a live (finalized) store it is rerouted through the durable WAL-backed
// delta path instead, which keeps the base's segmented-adjacency
// invariant intact — typed traversals of base edges stay on the segment
// fast path rather than silently degrading to the filter path.
func (s *Store) AddEdge(src, dst storage.VID, etype string) (storage.EID, error) {
	if s.liveMode.Load() {
		res, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddEdge, Src: src, Dst: dst, Type: etype}})
		if err != nil {
			return 0, err
		}
		return res.Edges[0], nil
	}
	if err := s.check(src); err != nil {
		return 0, err
	}
	if err := s.check(dst); err != nil {
		return 0, err
	}
	typeID := s.internType(etype)
	if err := s.markDirty(); err != nil {
		return 0, err
	}
	ep := s.cur
	e := storage.EID(ep.numEdges)
	ep.numEdges++
	// Prepending to the chain heads interleaves types; the segmented
	// invariant is gone until the next Finalize/Compact. Likewise the
	// record falls back to the uncompressed layout — safe, because a
	// compressed store that holds edges is always live (writes route
	// through the delta instead), so this path only runs while edges.db
	// is still empty.
	ep.segmented = false
	ep.compressed = false

	srcRec, err := ep.readVertex(src)
	if err != nil {
		return 0, err
	}
	er := edgeRec{
		inUse: true, typeID: uint32(typeID),
		src: int64(src), dst: int64(dst),
		nextOut: srcRec.firstOut,
	}
	srcRec.firstOut = int64(e) + 1
	srcRec.outDeg++
	if !ep.legacyDegrees() {
		if err := ep.bumpDeg(&srcRec, uint32(typeID), true); err != nil {
			return 0, err
		}
	}
	if err := ep.writeVertex(src, srcRec); err != nil {
		return 0, err
	}
	dstRec, err := ep.readVertex(dst)
	if err != nil {
		return 0, err
	}
	er.nextIn = dstRec.firstIn
	dstRec.firstIn = int64(e) + 1
	dstRec.inDeg++
	if !ep.legacyDegrees() {
		if err := ep.bumpDeg(&dstRec, uint32(typeID), false); err != nil {
			return 0, err
		}
	}
	if err := ep.writeVertex(dst, dstRec); err != nil {
		return 0, err
	}
	return e, ep.writeEdge(e, er)
}

// check validates a vertex reference on the write path. In live mode the
// bound is the delta's global high-water mark (every vertex ever
// created, folded or not — IDs are stable across folds); in build mode
// it is the single epoch's count.
func (s *Store) check(v storage.VID) error {
	bound := s.cur.numVertices
	if s.liveMode.Load() {
		bound = s.delta.nextV.Load()
	}
	if v < 0 || int64(v) >= bound {
		return fmt.Errorf("diskstore: vertex %d out of range", v)
	}
	return nil
}
