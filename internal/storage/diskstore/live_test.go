package diskstore

// Tests for the durable live-write path: WAL append/fsync/replay, the
// delta segment's read merge, checkpointing via Compact, and the
// degraded-input recovery paths (torn WAL tails, stale logs, torn
// index.db files, interrupted finalize).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
	"repro/internal/storage/storetest"
)

const (
	liveSeed  = 7
	liveNV    = 40
	liveNE    = 120
	liveBatch = 16
)

// openLivePair builds the same pseudo-random base graph into a finalized
// diskstore (live mode) and an incremental memstore reference, in dir.
func openLivePair(t *testing.T, dir string) (*Store, *memstore.Store) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandomBulk(s, liveSeed, liveNV, liveNE, liveBatch); err != nil {
		t.Fatal(err)
	}
	if !s.Live() {
		t.Fatal("finalized non-empty store should be live")
	}
	ms := memstore.New()
	if _, err := storetest.BuildRandom(ms, liveSeed, liveNV, liveNE); err != nil {
		t.Fatal(err)
	}
	return s, ms
}

// applyLiveStream applies n deterministic random mutations through the
// storage.Builder surface of both stores — on the live diskstore every
// call reroutes through ApplyMutations/WAL, on the memstore it is a
// plain in-memory write — so fingerprints can be compared afterwards.
func applyLiveStream(t *testing.T, seed int64, n int, stores ...storage.Builder) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C", "D", "Live"}
	etypes := []string{"r1", "r2", "r3", "follows"}
	nV := stores[0].NumVertices()
	for i := 0; i < n; i++ {
		op := rng.Intn(10)
		v := storage.VID(rng.Intn(nV))
		w := storage.VID(rng.Intn(nV))
		label := labels[rng.Intn(len(labels))]
		switch {
		case op < 2: // add vertex
			for _, s := range stores {
				got, err := s.AddVertex(label)
				if err != nil {
					t.Fatalf("op %d AddVertex: %v", i, err)
				}
				if int(got) != nV {
					t.Fatalf("op %d AddVertex VID = %d, want %d", i, got, nV)
				}
			}
			nV++
		case op < 6: // add edge
			et := etypes[rng.Intn(len(etypes))]
			for _, s := range stores {
				if _, err := s.AddEdge(v, w, et); err != nil {
					t.Fatalf("op %d AddEdge: %v", i, err)
				}
			}
		case op < 8: // set prop
			key := fmt.Sprintf("p%d", rng.Intn(5))
			var val graph.Value
			switch rng.Intn(4) {
			case 0:
				val = graph.S(fmt.Sprintf("live%d", rng.Intn(50)))
			case 1:
				val = graph.I(rng.Int63n(1000))
			case 2:
				val = graph.B(rng.Intn(2) == 0)
			default:
				val = graph.L(graph.S("y"), graph.I(rng.Int63n(9)))
			}
			for _, s := range stores {
				if err := s.SetProp(v, key, val); err != nil {
					t.Fatalf("op %d SetProp: %v", i, err)
				}
			}
		default: // add label
			for _, s := range stores {
				if err := s.AddLabel(v, label); err != nil {
					t.Fatalf("op %d AddLabel: %v", i, err)
				}
			}
		}
	}
}

func TestLiveEquivalenceDifferential(t *testing.T) {
	s, ms := openLivePair(t, t.TempDir())
	defer s.Close()
	applyLiveStream(t, 11, 300, s, ms)
	if got, want := storetest.Fingerprint(s), storetest.Fingerprint(ms); got != want {
		t.Errorf("live diskstore diverged from memstore reference\n got %s\nwant %s", got, want)
	}
	// The fast-path interface must agree with the generic one over the
	// merged base+delta view.
	storetest.CheckFastEquivalence(t, s, s)
	ls := s.LiveStats()
	if !ls.Live || ls.DeltaVertices == 0 || ls.DeltaEdges == 0 || ls.WALAppends == 0 || ls.WALSyncs == 0 || ls.WALBytes == 0 {
		t.Errorf("live stats did not move: %+v", ls)
	}
}

func TestLiveReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s, ms := openLivePair(t, dir)
	applyLiveStream(t, 23, 200, s, ms)
	want := storetest.Fingerprint(ms)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName)); err != nil {
		t.Fatalf("wal.db should persist across close: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Live() {
		t.Error("reopened store should be live")
	}
	if got := storetest.Fingerprint(s2); got != want {
		t.Errorf("replayed store diverged from reference\n got %s\nwant %s", got, want)
	}
	// Replay must continue accepting writes whose effects persist again.
	applyLiveStream(t, 29, 50, s2, ms)
	if got, want := storetest.Fingerprint(s2), storetest.Fingerprint(ms); got != want {
		t.Errorf("post-replay writes diverged\n got %s\nwant %s", got, want)
	}
}

func TestCompactFoldsDeltaAndCheckpointsWAL(t *testing.T) {
	dir := t.TempDir()
	s, ms := openLivePair(t, dir)
	applyLiveStream(t, 31, 250, s, ms)
	want := storetest.Fingerprint(ms)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := storetest.Fingerprint(s); got != want {
		t.Errorf("compacted store diverged from reference\n got %s\nwant %s", got, want)
	}
	ls := s.LiveStats()
	if ls.DeltaVertices != 0 || ls.DeltaEdges != 0 {
		t.Errorf("delta not empty after Compact: %+v", ls)
	}
	if !ls.Live || !ls.Segmented {
		t.Errorf("store should stay live and segmented after Compact: %+v", ls)
	}
	if st, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || st.Size() != 0 {
		t.Errorf("wal.db not truncated by checkpoint: size=%v err=%v", st, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := storetest.Fingerprint(s2); got != want {
		t.Errorf("reopened compacted store diverged\n got %s\nwant %s", got, want)
	}
	// Typed traversal over the folded edges must use segment seeks again.
	if !s2.curEp().segmented {
		t.Error("reopened compacted store should be segmented")
	}
}

// TestLiveSnapshotIsolationAcrossFold pins a snapshot of a live store,
// writes a delta on top, then folds the delta into a new base
// generation — and demands the snapshot keeps reading the pre-write
// state throughout, even though the fold retires the very epoch it
// pins. This is the long-traversal contract: a reader that started
// before a compaction is never torn between generations.
func TestLiveSnapshotIsolationAcrossFold(t *testing.T) {
	s, ms := openLivePair(t, t.TempDir())
	defer s.Close()
	before := storetest.Fingerprint(s)
	snap := s.AcquireSnapshot()
	defer snap.Release()

	applyLiveStream(t, 909, 40, s, ms)
	after := storetest.Fingerprint(ms)
	if got := storetest.Fingerprint(s); got != after {
		t.Fatalf("live store diverged from reference before the fold\n got %s\nwant %s", got, after)
	}
	if got := storetest.Fingerprint(snap); got != before {
		t.Fatalf("delta writes leaked into a snapshot pinned before them\n got %s\nwant %s", got, before)
	}

	gen := s.LiveStats().Generation
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if ls := s.LiveStats(); ls.Generation != gen+1 {
		t.Fatalf("Generation = %d after fold, want %d", ls.Generation, gen+1)
	}
	if got := storetest.Fingerprint(snap); got != before {
		t.Errorf("snapshot drifted when the fold retired its epoch\n got %s\nwant %s", got, before)
	}
	if got := storetest.Fingerprint(s); got != after {
		t.Errorf("store state changed across the fold\n got %s\nwant %s", got, after)
	}
	post := s.AcquireSnapshot()
	if got := storetest.Fingerprint(post); got != after {
		t.Errorf("snapshot acquired after the fold reads stale state\n got %s\nwant %s", got, after)
	}
	post.Release()
	snap.Release()
	if got := s.LiveStats().PinnedSnapshots; got != 0 {
		t.Errorf("%d snapshots still pinned after release", got)
	}
}

// TestWALReplaySelfReferencingBatch covers the normal /mutate client
// shape: one batch that creates a vertex and immediately references it
// with batch-relative refs. The WAL logs the record with the references
// already resolved to absolute VIDs, so replay at reopen must accept a
// record that points at vertices the record itself creates — before the
// fix, recovery refused such a log with "vertex out of range" and the
// acknowledged batch was unrecoverable.
func TestWALReplaySelfReferencingBatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := openLivePair(t, dir)
	res, err := s.ApplyMutations([]storage.Mutation{
		{Op: storage.MutAddVertex, Labels: []string{"SelfRef"}},
		{Op: storage.MutSetProp, V: -1, Key: "k", Value: graph.I(42)},
		{Op: storage.MutAddEdge, Src: -1, Dst: 0, Type: "selfT"},
		{Op: storage.MutAddVertex, Labels: []string{"SelfRef"}},
		{Op: storage.MutAddEdge, Src: -2, Dst: -1, Type: "selfT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) != 2 {
		t.Fatalf("expected 2 new vertices, got %v", res.Vertices)
	}
	want := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen replays the WAL record; nothing was checkpointed, so the
	// whole self-referencing batch comes back through replayBatch.
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after self-referencing batch: %v", err)
	}
	defer re.Close()
	if got := storetest.Fingerprint(re); got != want {
		t.Fatalf("replayed store diverged from the acknowledged state")
	}
	v := res.Vertices[0]
	if val, ok := re.Prop(v, "k"); !ok || val.Int() != 42 {
		t.Fatalf("replayed vertex %d lost its property: %v %v", v, val, ok)
	}
}

func TestTornWALTailTruncatedOnOpen(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(path string, clean int64) error
	}{
		{"garbage appended", func(path string, clean int64) error {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
			return err
		}},
		{"half record", func(path string, clean int64) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Re-append the first half of the last record: a crash mid-append.
			return os.WriteFile(path, append(data, data[clean-9:]...), 0o644)
		}},
		{"corrupt crc", func(path string, clean int64) error {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			// A full-looking record whose CRC cannot match.
			rec := []byte{4, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9}
			_, err = f.Write(rec)
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, ms := openLivePair(t, dir)
			applyLiveStream(t, 37, 120, s, ms)
			want := storetest.Fingerprint(ms)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			walPath := filepath.Join(dir, walFileName)
			st, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			clean := st.Size()
			if err := tc.mut(walPath, clean); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := storetest.Fingerprint(s2); got != want {
				t.Errorf("store after torn-tail repair diverged\n got %s\nwant %s", got, want)
			}
			if st, err := os.Stat(walPath); err != nil || st.Size() != clean {
				t.Errorf("torn tail not truncated: size=%d want %d (err=%v)", st.Size(), clean, err)
			}
		})
	}
}

// TestStaleWALSkippedBySeqFence reproduces a crash between Compact's
// manifest commit and its WAL truncation: the restored log's records all
// carry sequence numbers at or below the manifest's wal_seq fence, so
// replay must skip them (they are already folded into the base) and
// recovery must finish the truncation.
func TestStaleWALSkippedBySeqFence(t *testing.T) {
	dir := t.TempDir()
	s, ms := openLivePair(t, dir)
	applyLiveStream(t, 41, 150, s, ms)
	walPath := filepath.Join(dir, walFileName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	want := storetest.Fingerprint(ms)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the truncation, as if the crash hit right before it.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := storetest.Fingerprint(s2); got != want {
		t.Errorf("stale WAL was replayed on top of the folded base\n got %s\nwant %s", got, want)
	}
	if st, err := os.Stat(walPath); err != nil || st.Size() != 0 {
		t.Errorf("stale WAL not truncated during recovery: %v %v", st, err)
	}
	// New writes after the fence must still be logged, replayed, and not
	// collide with the stale sequence range.
	applyLiveStream(t, 43, 40, s2, ms)
	want = storetest.Fingerprint(ms)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := storetest.Fingerprint(s3); got != want {
		t.Errorf("post-fence writes lost\n got %s\nwant %s", got, want)
	}
}

func TestApplyMutationsBatchSemantics(t *testing.T) {
	s, _ := openLivePair(t, t.TempDir())
	defer s.Close()
	nV, nE := s.NumVertices(), s.NumEdges()

	res, err := s.ApplyMutations([]storage.Mutation{
		{Op: storage.MutAddVertex, Labels: []string{"X", "Y"}},
		{Op: storage.MutAddVertex, Labels: []string{"X"}},
		{Op: storage.MutAddEdge, Src: -1, Dst: -2, Type: "knows"},
		{Op: storage.MutAddEdge, Src: -2, Dst: 0, Type: "knows"},
		{Op: storage.MutSetProp, V: -1, Key: "name", Value: graph.S("first")},
		{Op: storage.MutAddLabel, V: -2, Label: "Z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) != 2 || int(res.Vertices[0]) != nV || int(res.Vertices[1]) != nV+1 {
		t.Fatalf("vertex IDs = %v, want [%d %d]", res.Vertices, nV, nV+1)
	}
	if len(res.Edges) != 2 || int(res.Edges[0]) != nE || int(res.Edges[1]) != nE+1 {
		t.Fatalf("edge IDs = %v, want [%d %d]", res.Edges, nE, nE+1)
	}
	v1, v2 := res.Vertices[0], res.Vertices[1]
	if got := s.Labels(v1); fmt.Sprint(got) != "[X Y]" {
		t.Errorf("Labels(%d) = %v", v1, got)
	}
	if got := s.Labels(v2); fmt.Sprint(got) != "[X Z]" {
		t.Errorf("Labels(%d) = %v", v2, got)
	}
	if val, ok := s.Prop(v1, "name"); !ok || val.Str() != "first" {
		t.Errorf("Prop(%d, name) = %v %v", v1, val, ok)
	}
	var dsts []storage.VID
	s.ForEachOut(v1, "knows", func(_ storage.EID, dst storage.VID) bool {
		dsts = append(dsts, dst)
		return true
	})
	if len(dsts) != 1 || dsts[0] != v2 {
		t.Errorf("out(knows) of %d = %v, want [%d]", v1, dsts, v2)
	}
	if got := s.Degree(v2, "knows", true); got != 1 {
		t.Errorf("Degree(%d, knows, out) = %d, want 1", v2, got)
	}

	// Invalid batches must be rejected whole, before logging anything.
	nV, nE = s.NumVertices(), s.NumEdges()
	appends := s.LiveStats().WALAppends
	for name, batch := range map[string][]storage.Mutation{
		"forward batch ref": {
			{Op: storage.MutAddEdge, Src: -1, Dst: 0, Type: "knows"},
			{Op: storage.MutAddVertex},
		},
		"out of range": {{Op: storage.MutAddEdge, Src: 0, Dst: storage.VID(nV + 99), Type: "knows"}},
		"empty label":  {{Op: storage.MutAddVertex, Labels: []string{""}}},
		"empty type":   {{Op: storage.MutAddEdge, Src: 0, Dst: 1, Type: ""}},
		"empty key":    {{Op: storage.MutSetProp, V: 0, Key: "", Value: graph.I(1)}},
		"nested list":  {{Op: storage.MutSetProp, V: 0, Key: "p0", Value: graph.L(graph.L(graph.I(1)))}},
		"unknown op":   {{Op: storage.MutationOp(99)}},
	} {
		if _, err := s.ApplyMutations(batch); err == nil {
			t.Errorf("%s: batch accepted, want error", name)
		}
	}
	if s.NumVertices() != nV || s.NumEdges() != nE {
		t.Error("rejected batches changed the graph")
	}
	if got := s.LiveStats().WALAppends; got != appends {
		t.Errorf("rejected batches reached the WAL: appends %d -> %d", appends, got)
	}
}

func TestApplyMutationsNotLive(t *testing.T) {
	s := newTestStore(t, Options{})
	if _, err := s.AddVertex("A"); err != nil {
		t.Fatal(err)
	}
	_, err := s.ApplyMutations([]storage.Mutation{{Op: storage.MutAddVertex}})
	if !errors.Is(err, storage.ErrNotLive) {
		t.Fatalf("ApplyMutations on build-mode store: err = %v, want ErrNotLive", err)
	}
	if !strings.Contains(fmt.Sprint(err), "Compact") {
		t.Errorf("ErrNotLive should hint at Compact: %v", err)
	}
}

// TestVertexOnlyStoreStaysBuildMode: live mode requires at least one
// finalized edge; vertex-only stores keep the cheap build-mode mutation
// path (and its dirty-flush index protocol).
func TestVertexOnlyStoreStaysBuildMode(t *testing.T) {
	s := newTestStore(t, Options{})
	if _, err := s.AddVertex("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if s.Live() {
		t.Error("vertex-only finalized store should not be live")
	}
}

// TestAddEdgeAfterFinalizeStaysSegmented is the silent-degradation fix:
// an incremental AddEdge on a finalized store used to clear the
// segmented invariant and push every typed traversal onto the
// filter-the-full-adjacency path. Now it lands in the delta and base
// edges keep their segment fast path.
func TestAddEdgeAfterFinalizeStaysSegmented(t *testing.T) {
	s, ms := openLivePair(t, t.TempDir())
	defer s.Close()
	if !s.curEp().segmented {
		t.Fatal("base store not segmented")
	}
	if _, err := s.AddEdge(0, 1, "r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.AddEdge(0, 1, "r1"); err != nil {
		t.Fatal(err)
	}
	if !s.curEp().segmented {
		t.Error("incremental AddEdge on a live store cleared the segmented invariant")
	}
	ls := s.LiveStats()
	if !ls.Segmented || ls.DeltaEdges != 1 {
		t.Errorf("LiveStats = %+v, want Segmented with one delta edge", ls)
	}
	if got, want := storetest.Fingerprint(s), storetest.Fingerprint(ms); got != want {
		t.Errorf("graph state diverged after live AddEdge\n got %s\nwant %s", got, want)
	}
}

func TestInterruptedFinalizeTypedError(t *testing.T) {
	dir := t.TempDir()
	s, _ := openLivePair(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, finalizeMarker), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	if err == nil {
		t.Fatal("Open accepted a store with a finalize marker")
	}
	if !errors.Is(err, ErrFinalizeInterrupted) {
		t.Errorf("err = %v, want errors.Is ErrFinalizeInterrupted", err)
	}
	msg := err.Error()
	for _, want := range []string{"rebuild", finalizeMarker} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing recovery hint %q", msg, want)
		}
	}
}

// TestIndexTornWriteFallback corrupts index.db at every truncation
// boundary and at every single byte; Open must silently fall back to the
// legacy vertex scan and produce an identical graph each time.
func TestIndexTornWriteFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandomBulk(s, 3, 8, 12, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	want := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "index.db")
	orig, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(idxPath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open with damaged index: %v", err)
		}
		if got := storetest.Fingerprint(s); got != want {
			t.Errorf("scan fallback diverged\n got %s\nwant %s", got, want)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Close self-repairs the index; restore the damage baseline for
		// the next case from orig instead.
	}
	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(orig); n += 1 {
			check(t, orig[:n])
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(orig); i++ {
			mutated := append([]byte(nil), orig...)
			mutated[i] ^= 0x40
			check(t, mutated)
		}
	})
	t.Run("missing", func(t *testing.T) {
		if err := os.Remove(idxPath); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if got := storetest.Fingerprint(s); got != want {
			t.Errorf("missing-index fallback diverged\n got %s\nwant %s", got, want)
		}
	})
}

// TestV4StoreWithoutWALOpensClean: format compatibility — stores written
// before the WAL existed (or compacted and cleanly closed) have no
// wal.db and must open exactly as before.
func TestV4StoreWithoutWALOpensClean(t *testing.T) {
	dir := t.TempDir()
	s, _ := openLivePair(t, dir)
	want := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName)); !os.IsNotExist(err) {
		t.Fatalf("clean close of an unmutated live store left wal.db (err=%v)", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := storetest.Fingerprint(s2); got != want {
		t.Errorf("reopen diverged\n got %s\nwant %s", got, want)
	}
	if !s2.Live() {
		t.Error("finalized v4 store should be live on reopen")
	}
}

// TestConcurrentMutateAndRead drives writers and readers at the same
// time; it exists mainly as a -race target for the delta/WAL/symbol-table
// locking.
func TestConcurrentMutateAndRead(t *testing.T) {
	s, _ := openLivePair(t, t.TempDir())
	defer s.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				nV := s.NumVertices()
				for v := 0; v < nV; v++ {
					id := storage.VID(v)
					s.Labels(id)
					s.PropKeys(id)
					s.Degree(id, "r1", true)
					s.ForEachOut(id, "", func(storage.EID, storage.VID) bool { return true })
					s.ForEachIn(id, "r2", func(storage.EID, storage.VID) bool { return true })
				}
				s.CountLabel("A")
				s.ForEachVertex("Live", func(storage.VID) bool { return true })
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 150; i++ {
				batch := []storage.Mutation{
					{Op: storage.MutAddVertex, Labels: []string{"Live"}},
					{Op: storage.MutAddEdge, Src: -1, Dst: storage.VID(rng.Intn(liveNV)), Type: "r1"},
					{Op: storage.MutSetProp, V: -1, Key: "p0", Value: graph.I(int64(i))},
				}
				if _, err := s.ApplyMutations(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := s.LiveStats().DeltaVertices; got != 300 && !t.Failed() {
		t.Errorf("delta vertices = %d, want 300", got)
	}
}
