package diskstore

// wal.db is the write-ahead log for post-finalize live mutations. Every
// ApplyMutations batch becomes one log record, appended and fsynced
// (group commit) before the batch is acknowledged, so an acknowledged
// mutation survives any crash; a crash mid-append leaves a torn tail
// that recovery truncates, so an unacknowledged batch is atomically
// absent after reopen.
//
// Record layout (little-endian), records packed back to back from
// offset 0:
//
//	payloadLen  u32   length of payload
//	crc32       u32   IEEE CRC of payload
//	payload:
//	    seq     u64   batch sequence number, strictly increasing
//	    epoch   u32   base generation the batch was appended under
//	    nops    u16   number of operations in the batch
//	    ops     nops × op
//
// Each op starts with a u8 opcode (walOpAddVertex..walOpAddLabel)
// followed by opcode-specific fields. Strings are u32 length + bytes;
// vertex references are absolute u64 VIDs (batch-relative references
// are resolved before logging, so replay is context-free); property
// values are a u8 graph.Kind followed by a kind-specific encoding.
//
// The sequence number fences replay against the checkpoint protocol:
// a fold (background Compact or exclusive Finalize) absorbs the delta
// prefix up to some batch W into the base, commits a manifest whose
// wal_seq records W, and only then rotates/truncates the log. A crash
// between commit and rotation leaves records with seq <= wal_seq in the
// log; replay skips them. Records also carry the base generation
// (epoch) they were appended under: epochs are non-decreasing along the
// log, and because the manifest commits before in-memory epoch swap, a
// record claiming a generation newer than the manifest's is impossible
// in a well-formed log — recovery treats it as corruption and truncates
// there. Batches appended mid-fold carry the old epoch with
// seq > wal_seq; replay routes them into the young delta on top of the
// new base, which is exactly where the swap left them in memory.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/storage"
)

const (
	walFileName  = "wal.db"
	walHeaderLen = 8 // payloadLen + crc32
	// walPayloadHeader is the fixed payload prefix: seq + epoch + nops.
	walPayloadHeader = 8 + 4 + 2
	// maxWALRecord bounds a single record; anything larger during replay
	// is treated as a torn/corrupt tail.
	maxWALRecord = 16 << 20
)

const (
	walOpAddVertex uint8 = iota + 1
	walOpAddEdge
	walOpSetProp
	walOpAddLabel
)

// wal is an open write-ahead log with group-commit fsync.
//
// Appends are serialized by appendMu (ApplyMutations additionally holds
// the store's liveMu, but the wal guards itself). fsync uses a leader
// scheme: one goroutine syncs while others wait; the leader captures the
// highest appended sequence number before syncing, so a single fsync
// acknowledges every batch appended before it started — the group
// commit that keeps per-batch latency near one fsync under concurrency
// without issuing one fsync per batch.
type wal struct {
	path string
	f    *os.File

	// appendMu serializes appends and guards size/appendedSeq/nextSeq.
	appendMu    sync.Mutex
	size        int64
	nextSeq     uint64
	appendedSeq uint64

	// syncMu guards the group-commit state: syncing (a leader's fsync is
	// in flight), syncedSeq (highest durable sequence), and err (sticky:
	// after any write/sync failure the log refuses further work, because
	// a failed fsync leaves the kernel's dirty state unknowable).
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	syncedSeq uint64
	err       error

	appends   atomic.Int64
	syncs     atomic.Int64
	syncNanos atomic.Int64
	bytes     atomic.Int64
}

// openWAL opens (creating if needed) the log file. The caller replays
// existing records and then seeds the sequence state via seed.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{path: path, f: f, size: st.Size(), nextSeq: 1}
	w.syncCond = sync.NewCond(&w.syncMu)
	return w, nil
}

// seed positions the log after replay: appends continue at offset size
// with sequence lastSeq+1, and everything up to lastSeq counts as
// durable (it was read back from disk).
func (w *wal) seed(size int64, lastSeq uint64) {
	w.size = size
	w.nextSeq = lastSeq + 1
	w.appendedSeq = lastSeq
	w.syncedSeq = lastSeq
}

// stickyErr returns the sticky failure, if any.
func (w *wal) stickyErr() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.err
}

func (w *wal) fail(err error) {
	w.syncMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.syncMu.Unlock()
}

// append writes one batch record (not yet durable) and returns its
// sequence number. epoch is the base generation the batch is appended
// under. Call sync(seq) before acknowledging the batch.
func (w *wal) append(ops []byte, nops int, epoch uint32) (uint64, error) {
	if err := w.stickyErr(); err != nil {
		return 0, err
	}
	w.appendMu.Lock()
	defer w.appendMu.Unlock()
	seq := w.nextSeq
	payload := make([]byte, 0, walPayloadHeader+len(ops))
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = binary.LittleEndian.AppendUint32(payload, epoch)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(nops))
	payload = append(payload, ops...)
	rec := make([]byte, 0, walHeaderLen+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := w.f.WriteAt(rec, w.size); err != nil {
		w.fail(err)
		return 0, err
	}
	w.size += int64(len(rec))
	w.nextSeq++
	w.appendedSeq = seq
	w.appends.Add(1)
	w.bytes.Add(int64(len(rec)))
	return seq, nil
}

// sync blocks until sequence number seq is durable. One caller becomes
// the fsync leader; concurrent callers wait and are covered by the
// leader's fsync when their batch was appended before it started, or
// take over as the next leader otherwise.
func (w *wal) sync(seq uint64) error {
	w.syncMu.Lock()
	for w.err == nil && w.syncedSeq < seq && w.syncing {
		w.syncCond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.syncMu.Unlock()
		return err
	}
	if w.syncedSeq >= seq {
		w.syncMu.Unlock()
		return nil
	}
	w.syncing = true
	w.syncMu.Unlock()

	// Capture the cover point before syncing: every batch appended before
	// the fsync starts is on its way to disk and is acknowledged by it.
	w.appendMu.Lock()
	cover := w.appendedSeq
	w.appendMu.Unlock()
	start := time.Now()
	err := w.f.Sync()
	w.syncs.Add(1)
	w.syncNanos.Add(time.Since(start).Nanoseconds())

	w.syncMu.Lock()
	w.syncing = false
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if w.syncedSeq < cover {
		w.syncedSeq = cover
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return err
}

// truncateTo discards everything at and after off — recovery's torn-tail
// repair. Exclusive access is the caller's responsibility (it runs
// during Open, before any writer exists).
func (w *wal) truncateTo(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = off
	return nil
}

// reset empties the log — the checkpoint step after a committed Compact
// folded every record into the base. Sequence numbers keep counting from
// where they were so the manifest's wal_seq fence stays monotonic.
func (w *wal) reset() error {
	if err := w.stickyErr(); err != nil {
		return err
	}
	w.appendMu.Lock()
	defer w.appendMu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		w.fail(err)
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.fail(err)
		return err
	}
	w.size = 0
	return nil
}

// lastAppended returns the highest sequence number ever appended (or
// seeded from replay) — the checkpoint fence for a fold that absorbed
// every logged batch.
func (w *wal) lastAppended() uint64 {
	w.appendMu.Lock()
	defer w.appendMu.Unlock()
	return w.appendedSeq
}

// sizeNow returns the log's current byte size. Captured at a fold's
// freeze point (under the store's liveMu, so no append is racing) it is
// the rotate offset: every record below it carries seq <= the freeze
// fence.
func (w *wal) sizeNow() int64 {
	w.appendMu.Lock()
	defer w.appendMu.Unlock()
	return w.size
}

func (w *wal) close() error { return w.f.Close() }

// rotate drops the folded prefix after a committed background fold: the
// records before keepFrom all carry seq <= the manifest's new wal_seq
// fence, so only the tail (batches that arrived mid-fold) needs to
// survive. The tail is copied into a fresh file that atomically replaces
// the log; sequence numbers keep counting. The caller must hold the
// store's liveMu so no append or sync is in flight — rotate swaps the
// underlying file descriptor.
//
// Crash safety: before the rename the old log is intact (replay skips
// the folded prefix via the wal_seq fence); after the rename the log
// holds exactly the unfolded tail. Either way no acknowledged batch is
// lost and no folded batch is replayed.
func (w *wal) rotate(keepFrom int64) error {
	if err := w.stickyErr(); err != nil {
		return err
	}
	w.appendMu.Lock()
	defer w.appendMu.Unlock()
	if keepFrom < 0 || keepFrom > w.size {
		return fmt.Errorf("diskstore: wal rotate offset %d out of range [0,%d]", keepFrom, w.size)
	}
	tail := make([]byte, w.size-keepFrom)
	if len(tail) > 0 {
		if _, err := w.f.ReadAt(tail, keepFrom); err != nil {
			return err
		}
	}
	tmp := w.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if len(tail) > 0 {
		if _, err := nf.WriteAt(tail, 0); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if dir, derr := os.Open(filepath.Dir(w.path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	old := w.f
	w.f = nf
	w.size = int64(len(tail))
	old.Close()
	return nil
}

// ---- record encoding ----

// encodeWALOps serializes a batch of fully resolved mutations (absolute
// VIDs, no batch-relative references) into the ops section of a record
// payload.
func encodeWALOps(batch []storage.Mutation) ([]byte, error) {
	var buf []byte
	str := func(s string) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	for i := range batch {
		m := &batch[i]
		switch m.Op {
		case storage.MutAddVertex:
			buf = append(buf, walOpAddVertex)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Labels)))
			for _, l := range m.Labels {
				str(l)
			}
		case storage.MutAddEdge:
			buf = append(buf, walOpAddEdge)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Src))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Dst))
			str(m.Type)
		case storage.MutSetProp:
			buf = append(buf, walOpSetProp)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.V))
			str(m.Key)
			vb, err := encodeWALValue(m.Value)
			if err != nil {
				return nil, err
			}
			buf = append(buf, vb...)
		case storage.MutAddLabel:
			buf = append(buf, walOpAddLabel)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.V))
			str(m.Label)
		default:
			return nil, fmt.Errorf("diskstore: unknown mutation op %d", m.Op)
		}
	}
	return buf, nil
}

func encodeWALValue(v graph.Value) ([]byte, error) {
	out := []byte{byte(v.Kind())}
	switch v.Kind() {
	case graph.KindNull:
	case graph.KindInt:
		out = binary.LittleEndian.AppendUint64(out, uint64(v.Int()))
	case graph.KindFloat:
		out = binary.LittleEndian.AppendUint64(out, graph.FloatBits(v.Float()))
	case graph.KindBool:
		if v.Bool() {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	case graph.KindString:
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v.Str())))
		out = append(out, v.Str()...)
	case graph.KindList:
		data, err := encodeList(v.List())
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
		out = append(out, data...)
	default:
		return nil, fmt.Errorf("diskstore: unsupported value kind %v", v.Kind())
	}
	return out, nil
}

// walBatch is one decoded log record.
type walBatch struct {
	seq   uint64
	epoch uint32
	ops   []storage.Mutation
}

// parseWAL decodes records until the data ends or turns invalid —
// anything past the last whole, CRC-clean record is a torn tail from a
// crash mid-append. It returns the decoded batches and the clean length;
// the caller truncates the file to cleanOff. maxEpoch is the manifest's
// committed generation: the manifest commits before any batch can be
// appended under a new generation, so a record claiming a newer epoch
// cannot be a real acknowledged batch — replay treats it as corruption
// and stops there.
func parseWAL(data []byte, maxEpoch uint32) (batches []walBatch, cleanOff int64) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walHeaderLen {
			return batches, off
		}
		plen := binary.LittleEndian.Uint32(rest)
		if plen < walPayloadHeader || plen > maxWALRecord || int64(len(rest)) < walHeaderLen+int64(plen) {
			return batches, off
		}
		payload := rest[walHeaderLen : walHeaderLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:]) {
			return batches, off
		}
		seq := binary.LittleEndian.Uint64(payload)
		epoch := binary.LittleEndian.Uint32(payload[8:])
		nops := int(binary.LittleEndian.Uint16(payload[12:]))
		ops, ok := decodeWALOps(payload[walPayloadHeader:], nops)
		if !ok {
			// A CRC-clean but undecodable payload is corruption, not a torn
			// tail, but the safe response is the same: stop replay here.
			return batches, off
		}
		if len(batches) > 0 && seq <= batches[len(batches)-1].seq {
			return batches, off // sequence must be strictly increasing
		}
		if len(batches) > 0 && epoch < batches[len(batches)-1].epoch {
			return batches, off // epochs never decrease along the log
		}
		if epoch > maxEpoch {
			return batches, off // claims a generation newer than committed
		}
		batches = append(batches, walBatch{seq: seq, epoch: epoch, ops: ops})
		off += walHeaderLen + int64(plen)
	}
}

func decodeWALOps(data []byte, nops int) ([]storage.Mutation, bool) {
	r := idxReader{data: data, ok: true}
	u64v := func() storage.VID { return storage.VID(r.u64()) }
	ops := make([]storage.Mutation, 0, nops)
	for i := 0; i < nops; i++ {
		opc := r.take(1)
		if opc == nil {
			return nil, false
		}
		var m storage.Mutation
		switch opc[0] {
		case walOpAddVertex:
			m.Op = storage.MutAddVertex
			nl := r.take(2)
			if nl == nil {
				return nil, false
			}
			n := int(binary.LittleEndian.Uint16(nl))
			for j := 0; j < n; j++ {
				m.Labels = append(m.Labels, r.str())
			}
		case walOpAddEdge:
			m.Op = storage.MutAddEdge
			m.Src = u64v()
			m.Dst = u64v()
			m.Type = r.str()
		case walOpSetProp:
			m.Op = storage.MutSetProp
			m.V = u64v()
			m.Key = r.str()
			v, ok := decodeWALValue(&r)
			if !ok {
				return nil, false
			}
			m.Value = v
		case walOpAddLabel:
			m.Op = storage.MutAddLabel
			m.V = u64v()
			m.Label = r.str()
		default:
			return nil, false
		}
		if !r.ok {
			return nil, false
		}
		ops = append(ops, m)
	}
	if len(r.data) != 0 {
		return nil, false
	}
	return ops, true
}

func decodeWALValue(r *idxReader) (graph.Value, bool) {
	kb := r.take(1)
	if kb == nil {
		return graph.Null, false
	}
	switch graph.Kind(kb[0]) {
	case graph.KindNull:
		return graph.Null, true
	case graph.KindInt:
		return graph.I(int64(r.u64())), r.ok
	case graph.KindFloat:
		return graph.FBits(r.u64()), r.ok
	case graph.KindBool:
		b := r.take(1)
		if b == nil {
			return graph.Null, false
		}
		return graph.B(b[0] == 1), true
	case graph.KindString:
		return graph.S(r.str()), r.ok
	case graph.KindList:
		n := r.u32()
		data := r.take(int(n))
		if data == nil {
			return graph.Null, false
		}
		v, err := decodeList(data)
		return v, err == nil
	default:
		return graph.Null, false
	}
}
