package diskstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
	"repro/internal/storage/storetest"
)

func newTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storage.Builder { return newTestStore(t, Options{}) })
}

// TestConformanceTinyCache forces constant page eviction so every access
// path is exercised with cache misses.
func TestConformanceTinyCache(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storage.Builder {
		return newTestStore(t, Options{PageSize: 256, CachePages: 4})
	})
}

func TestDifferentialAgainstMemstore(t *testing.T) {
	disk := newTestStore(t, Options{PageSize: 512, CachePages: 8})
	if _, err := storetest.BuildRandom(disk, 42, 80, 200); err != nil {
		t.Fatal(err)
	}
	mem := newMemReference(t, 42, 80, 200)
	if got, want := storetest.Fingerprint(disk), mem; got != want {
		t.Errorf("diskstore state diverges from memstore reference:\n got: %.300s...\nwant: %.300s...", got, want)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 99, 60, 150); err != nil {
		t.Fatal(err)
	}
	before := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := storetest.Fingerprint(re); got != before {
		t.Error("reopened store does not match original")
	}
	if got, want := re.CountLabel("A"), s.CountLabel("A"); got != want {
		t.Errorf("label index after reopen: %d, want %d", got, want)
	}
}

func TestStatsCountersMove(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 2})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.SetProp(v, "k", graph.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PageMisses == 0 {
		t.Error("tiny cache produced no misses")
	}
	if st.PageHits == 0 {
		t.Error("no page hits at all")
	}
	s.ResetStats()
	if s.Stats() != (storage.Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestDropCachePreservesData(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 512, CachePages: 16})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetProp(v, "k", graph.S("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Prop(v, "k")
	if !ok || got.Str() != "survives" {
		t.Errorf("after DropCache: %v %v", got, ok)
	}
	if s.Stats().PageReads == 0 {
		t.Error("cold read after DropCache did not touch disk")
	}
}

func TestLongStringsSpanPages(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 4})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	long := make([]byte, 5000)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	if err := s.SetProp(v, "blob", graph.S(string(long))); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Prop(v, "blob")
	if !ok || got.Str() != string(long) {
		t.Error("multi-page blob corrupted")
	}
}

func TestListRoundTripThroughDisk(t *testing.T) {
	s := newTestStore(t, Options{})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	want := graph.L(graph.S("fever"), graph.S("headache"), graph.I(3), graph.F(1.5), graph.B(true), graph.Null)
	if err := s.SetProp(v, "list", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Prop(v, "list")
	if !ok || !got.Equal(want) {
		t.Errorf("list round trip: %v, want %v", got, want)
	}
}

func TestNestedListRejected(t *testing.T) {
	s := newTestStore(t, Options{})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetProp(v, "nested", graph.L(graph.L(graph.I(1)))); err == nil {
		t.Error("nested list stored without error")
	}
}

func TestBadOptionsRejected(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{PageSize: 100}); err == nil {
		t.Error("page size not divisible by record size accepted")
	}
}

// TestTypedDegreeAvoidsAdjacencyWalk proves typed DegreeID is served from
// the per-type degree chain: on a hub vertex with a long adjacency chain,
// a cold typed degree lookup must read far fewer pages than the chain
// spans.
func TestTypedDegreeAvoidsAdjacencyWalk(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 512, CachePages: 64})
	hub, err := s.AddVertex("Hub")
	if err != nil {
		t.Fatal(err)
	}
	const fan = 500
	for i := 0; i < fan; i++ {
		v, err := s.AddVertex("Leaf")
		if err != nil {
			t.Fatal(err)
		}
		et := "a"
		if i%5 == 0 {
			et = "b"
		}
		if _, err := s.AddEdge(hub, v, et); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if got := s.Degree(hub, "b", true); got != fan/5 {
		t.Fatalf("Degree(hub, b, out) = %d, want %d", got, fan/5)
	}
	if got := s.Degree(hub, "a", true); got != fan-fan/5 {
		t.Fatalf("Degree(hub, a, out) = %d, want %d", got, fan-fan/5)
	}
	st := s.Stats()
	// 500 edge records at 64 B span ~63 pages at 512 B; the degree chain
	// (2 records) plus the vertex record fit in a handful.
	if st.PageReads > 6 {
		t.Errorf("typed degree read %d pages cold; looks like an adjacency walk", st.PageReads)
	}
	// And the result still matches an actual walk.
	n := 0
	s.ForEachOut(hub, "b", func(storage.EID, storage.VID) bool { n++; return true })
	if n != fan/5 {
		t.Errorf("walk count %d disagrees with degree counter", n)
	}
}

// rewriteManifestVersion rewrites dir's manifest to the given format
// version, simulating a store written by an older build.
func rewriteManifestVersion(t *testing.T, dir string, version int) {
	t.Helper()
	path := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = version
	// v2 manifests never carried degree-record counts.
	delete(m, "num_degs")
	data, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV2StoreRemainsReadable opens a store whose manifest declares format
// v2 (no per-type degree records): typed degrees must fall back to the
// adjacency walk, all reads must work, and flushing must keep the store a
// v2 store on disk.
func TestV2StoreRemainsReadable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 7, 50, 120); err != nil {
		t.Fatal(err)
	}
	want := storetest.Fingerprint(s)
	wantDeg := s.Degree(0, "r1", true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rewriteManifestVersion(t, dir, 2)

	v2, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatalf("v2 store rejected: %v", err)
	}
	if !v2.curEp().legacyDegrees() {
		t.Error("v2 store not flagged as legacy")
	}
	if got := storetest.Fingerprint(v2); got != want {
		t.Error("v2 store contents diverge")
	}
	if got := v2.Degree(0, "r1", true); got != wantDeg {
		t.Errorf("v2 typed degree = %d, want %d", got, wantDeg)
	}
	// Edges added to a legacy store keep typed degrees correct via the
	// fallback walk even though no degree records are maintained.
	if _, err := v2.AddEdge(0, 1, "r1"); err != nil {
		t.Fatal(err)
	}
	if got := v2.Degree(0, "r1", true); got != wantDeg+1 {
		t.Errorf("v2 typed degree after AddEdge = %d, want %d", got, wantDeg+1)
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}

	// Closing must not silently upgrade the on-disk format.
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Errorf("manifest version after reflush = %d, want 2", m.Version)
	}
	if _, err := Open(dir, Options{PageSize: 512, CachePages: 16}); err != nil {
		t.Errorf("v2 store unreadable after reflush: %v", err)
	}
}

func TestUnknownFormatVersionRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVertex("N"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, formatVersion + 1} {
		rewriteManifestVersion(t, dir, v)
		if _, err := Open(dir, Options{}); err == nil {
			t.Errorf("format v%d accepted", v)
		}
	}
}

func newMemReference(t *testing.T, seed int64, nv, ne int) string {
	t.Helper()
	mem := memstore.New()
	if _, err := storetest.BuildRandom(mem, seed, nv, ne); err != nil {
		t.Fatal(err)
	}
	return storetest.Fingerprint(mem)
}
