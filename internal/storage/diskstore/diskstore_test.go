package diskstore

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
	"repro/internal/storage/storetest"
)

func newTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storage.Builder { return newTestStore(t, Options{}) })
}

// TestConformanceTinyCache forces constant page eviction so every access
// path is exercised with cache misses.
func TestConformanceTinyCache(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storage.Builder {
		return newTestStore(t, Options{PageSize: 256, CachePages: 4})
	})
}

func TestDifferentialAgainstMemstore(t *testing.T) {
	disk := newTestStore(t, Options{PageSize: 512, CachePages: 8})
	if _, err := storetest.BuildRandom(disk, 42, 80, 200); err != nil {
		t.Fatal(err)
	}
	mem := newMemReference(t, 42, 80, 200)
	if got, want := storetest.Fingerprint(disk), mem; got != want {
		t.Errorf("diskstore state diverges from memstore reference:\n got: %.300s...\nwant: %.300s...", got, want)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 99, 60, 150); err != nil {
		t.Fatal(err)
	}
	before := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := storetest.Fingerprint(re); got != before {
		t.Error("reopened store does not match original")
	}
	if got, want := re.CountLabel("A"), s.CountLabel("A"); got != want {
		t.Errorf("label index after reopen: %d, want %d", got, want)
	}
}

func TestStatsCountersMove(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 2})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.SetProp(v, "k", graph.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PageMisses == 0 {
		t.Error("tiny cache produced no misses")
	}
	if st.PageHits == 0 {
		t.Error("no page hits at all")
	}
	s.ResetStats()
	if s.Stats() != (storage.Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestDropCachePreservesData(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 512, CachePages: 16})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetProp(v, "k", graph.S("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Prop(v, "k")
	if !ok || got.Str() != "survives" {
		t.Errorf("after DropCache: %v %v", got, ok)
	}
	if s.Stats().PageReads == 0 {
		t.Error("cold read after DropCache did not touch disk")
	}
}

func TestLongStringsSpanPages(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 4})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	long := make([]byte, 5000)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	if err := s.SetProp(v, "blob", graph.S(string(long))); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Prop(v, "blob")
	if !ok || got.Str() != string(long) {
		t.Error("multi-page blob corrupted")
	}
}

func TestListRoundTripThroughDisk(t *testing.T) {
	s := newTestStore(t, Options{})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	want := graph.L(graph.S("fever"), graph.S("headache"), graph.I(3), graph.F(1.5), graph.B(true), graph.Null)
	if err := s.SetProp(v, "list", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Prop(v, "list")
	if !ok || !got.Equal(want) {
		t.Errorf("list round trip: %v, want %v", got, want)
	}
}

func TestNestedListRejected(t *testing.T) {
	s := newTestStore(t, Options{})
	v, err := s.AddVertex("N")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetProp(v, "nested", graph.L(graph.L(graph.I(1)))); err == nil {
		t.Error("nested list stored without error")
	}
}

func TestBadOptionsRejected(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{PageSize: 100}); err == nil {
		t.Error("page size not divisible by record size accepted")
	}
}

func newMemReference(t *testing.T, seed int64, nv, ne int) string {
	t.Helper()
	mem := memstore.New()
	if _, err := storetest.BuildRandom(mem, seed, nv, ne); err != nil {
		t.Fatal(err)
	}
	return storetest.Fingerprint(mem)
}
