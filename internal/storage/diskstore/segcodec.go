package diskstore

// Delta-varint adjacency segments (format v5).
//
// After Finalize, edges are sorted by (src, type, dst) and each (src,
// type) group becomes two byte segments in edges.db, located by the
// degree record's descriptor fields (degRec.outOff/outLen etc.):
//
//   - out segment: the first entry is uvarint(dst), every later entry
//     uvarint(dst - prevDst) — gaps are >= 0 (parallel edges encode a 0).
//     EIDs are implicit: the i-th entry is edge firstOutEID + i, because
//     the (src, type, dst) sort assigns new EIDs in exactly this order.
//   - in segment (built from the (dst, type, EID) order): the first entry
//     is uvarint(src) uvarint(eid), every later entry
//     uvarint(src - prevSrc) uvarint(eid - prevEid). Within a fixed
//     (dst, type) group ascending EID implies ascending src, so both gaps
//     are non-negative (the EID gap strictly positive).
//
// Worst case an edge costs 9 bytes in its out segment and 18 in its in
// segment — 27 < 64, so the in-place rewrite in Finalize always shrinks
// edges.db and a truncate reclaims the tail. Typical graphs land far
// lower (2-5 bytes/edge out, ~2x that in), which is where the >= 2x
// bytes-per-edge win over the v4 record layout comes from.
//
// Decoding is morsel-local: each traversal grabs one pooled scratch
// buffer, reads the segment bytes through the pager (or the mmap path)
// in a single read, and walks the varints — no per-edge allocation.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// segScratch pools decode buffers so concurrent morsel workers never
// allocate per-traversal.
var segScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// takeScratch resizes the pooled buffer to n bytes (growing its backing
// array only when a segment outgrows it).
func takeScratch(sc *[]byte, n int) []byte {
	if cap(*sc) < n {
		*sc = make([]byte, n)
	}
	*sc = (*sc)[:n]
	return *sc
}

// appendOutSeg gap-encodes one (src, type) group's sorted dst list.
func appendOutSeg(buf []byte, dst, prev int64, first bool) []byte {
	if first {
		return binary.AppendUvarint(buf, uint64(dst))
	}
	return binary.AppendUvarint(buf, uint64(dst-prev))
}

// appendInSeg gap-encodes one (dst, type) group entry: (src, eid).
func appendInSeg(buf []byte, src, prevSrc, eid, prevEid int64, first bool) []byte {
	if first {
		buf = binary.AppendUvarint(buf, uint64(src))
		return binary.AppendUvarint(buf, uint64(eid))
	}
	buf = binary.AppendUvarint(buf, uint64(src-prevSrc))
	return binary.AppendUvarint(buf, uint64(eid-prevEid))
}

// decodeOutSeg walks an out segment, calling fn with each edge's
// (implicit, contiguous) EID and destination. Returns false if fn
// stopped the walk or the bytes are corrupt.
func decodeOutSeg(data []byte, firstEID int64, fn func(storage.EID, storage.VID) bool) bool {
	var dst int64
	for i := int64(0); len(data) > 0; i++ {
		g, n := binary.Uvarint(data)
		if n <= 0 {
			return false
		}
		data = data[n:]
		if i == 0 {
			dst = int64(g)
		} else {
			dst += int64(g)
		}
		if !fn(storage.EID(firstEID+i), storage.VID(dst)) {
			return false
		}
	}
	return true
}

// decodeInSeg walks an in segment, calling fn with each edge's EID and
// source. Returns false if fn stopped the walk or the bytes are corrupt.
func decodeInSeg(data []byte, fn func(storage.EID, storage.VID) bool) bool {
	var src, eid int64
	for i := 0; len(data) > 0; i++ {
		sg, n := binary.Uvarint(data)
		if n <= 0 {
			return false
		}
		data = data[n:]
		eg, n2 := binary.Uvarint(data)
		if n2 <= 0 {
			return false
		}
		data = data[n2:]
		if i == 0 {
			src, eid = int64(sg), int64(eg)
		} else {
			src += int64(sg)
			eid += int64(eg)
		}
		if !fn(storage.EID(eid), storage.VID(src)) {
			return false
		}
	}
	return true
}

// forEachCompressed is forEachBase on a compressed epoch: walk the
// vertex's degree chain, decode the matching type's segment (every
// type's, for untyped traversals — the chain is in ascending type
// order, so untyped out-walks still see edges in EID order). Reports
// whether iteration ran to completion.
func (ep *epoch) forEachCompressed(rec vertexRec, etype storage.SymbolID, out bool, fn func(storage.EID, storage.VID) bool) bool {
	sc := segScratch.Get().(*[]byte)
	defer segScratch.Put(sc)
	for d := rec.firstDeg; d != 0; {
		dr, err := ep.readDeg(d - 1)
		if err != nil {
			return false
		}
		d = dr.next
		if etype != storage.AnySymbol && dr.typeID != uint32(etype) {
			continue
		}
		if out {
			if dr.outLen > 0 {
				data := takeScratch(sc, int(dr.outLen))
				if err := ep.pager.read(fileEdges, dr.outOff-1, data); err != nil {
					return false
				}
				if !decodeOutSeg(data, dr.firstOutEID-1, fn) {
					return false
				}
			}
		} else if dr.inLen > 0 {
			data := takeScratch(sc, int(dr.inLen))
			if err := ep.pager.read(fileEdges, dr.inOff-1, data); err != nil {
				return false
			}
			if !decodeInSeg(data, fn) {
				return false
			}
		}
		if etype != storage.AnySymbol {
			return true
		}
	}
	return true
}

// forEachEdgeLite enumerates every base edge as a (src, dst, type)
// triple in EID order, reading whichever layout the epoch holds —
// 64-byte records, or compressed segments via the degree chain (vertex
// order x ascending type x ascending dst is exactly EID order under the
// v5 sort). Finalize and the background fold gather through this, so
// neither can misread a compressed edges.db as records.
func (ep *epoch) forEachEdgeLite(fn func(edgeLite) error) error {
	if !ep.compressed {
		for e := int64(0); e < ep.numEdges; e++ {
			er, err := ep.readEdge(storage.EID(e))
			if err != nil {
				return fmt.Errorf("read edge %d: %w", e, err)
			}
			if !er.inUse {
				return fmt.Errorf("edge %d not in use", e)
			}
			if err := fn(edgeLite{src: er.src, dst: er.dst, typeID: er.typeID}); err != nil {
				return err
			}
		}
		return nil
	}
	sc := segScratch.Get().(*[]byte)
	defer segScratch.Put(sc)
	for v := int64(0); v < ep.numVertices; v++ {
		rec, err := ep.readVertex(storage.VID(v))
		if err != nil {
			return err
		}
		for d := rec.firstDeg; d != 0; {
			dr, err := ep.readDeg(d - 1)
			if err != nil {
				return err
			}
			d = dr.next
			if dr.outLen == 0 {
				continue
			}
			data := takeScratch(sc, int(dr.outLen))
			if err := ep.pager.read(fileEdges, dr.outOff-1, data); err != nil {
				return err
			}
			var decodeErr error
			ok := decodeOutSeg(data, dr.firstOutEID-1, func(_ storage.EID, dst storage.VID) bool {
				decodeErr = fn(edgeLite{src: v, dst: int64(dst), typeID: dr.typeID})
				return decodeErr == nil
			})
			if decodeErr != nil {
				return decodeErr
			}
			if !ok {
				return fmt.Errorf("corrupt out segment for vertex %d type %d", v, dr.typeID)
			}
		}
	}
	return nil
}
