package diskstore

// Per-(label, property-key) bloom filters over the property values
// present at Finalize time (format v5). The compiled scan step probes
// them before a property-constraint label scan: a negative answer is
// definitive — no vertex with that label carried that value when the
// base was built — so the scan can be skipped entirely. Positive answers
// carry the usual bloom false-positive rate, sized here to stay under 1%.
//
// Filters are double-hashed (Kirsch-Mitzenmacher): k probe positions are
// derived from one 64-bit FNV-1a hash of the value's canonical key bytes
// (graph.Value.AppendKey) and its splitmix64 mix, so only one hash per
// value is ever computed or persisted.

import (
	"repro/internal/graph"
)

// Bloom sizing: ~10 bits per entry with k = 7 probes gives a false
// positive rate of about 0.8% at design capacity. m is rounded up to a
// whole number of 64-bit words and capped so a single degenerate filter
// cannot balloon index.db.
const (
	bloomBitsPerEntry = 10
	bloomK            = 7
	bloomMinBits      = 64
	bloomMaxBits      = 1 << 24
)

type bloom struct {
	k    uint32
	bits []uint64 // m = len(bits) * 64
}

// newBloom sizes an empty filter for n entries.
func newBloom(n int) *bloom {
	m := n * bloomBitsPerEntry
	if m < bloomMinBits {
		m = bloomMinBits
	}
	if m > bloomMaxBits {
		m = bloomMaxBits
	}
	return &bloom{k: bloomK, bits: make([]uint64, (m+63)/64)}
}

func (b *bloom) m() uint64 { return uint64(len(b.bits)) * 64 }

func (b *bloom) add(h uint64) {
	h2 := splitmix64(h)
	m := b.m()
	for i := uint64(0); i < uint64(b.k); i++ {
		p := (h + i*h2) % m
		b.bits[p/64] |= 1 << (p % 64)
	}
}

func (b *bloom) mayHave(h uint64) bool {
	h2 := splitmix64(h)
	m := b.m()
	for i := uint64(0); i < uint64(b.k); i++ {
		p := (h + i*h2) % m
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// bloomKey packs a (label ID, property-key ID) pair into the epoch's
// filter-map key.
func bloomKey(labelID, keyID int) uint64 {
	return uint64(uint32(labelID))<<32 | uint64(uint32(keyID))
}

// hashValue hashes a property value's canonical key bytes (FNV-1a 64).
// Values that compare equal produce equal key bytes, so the filter is
// consistent with the scan step's equality check.
func hashValue(v graph.Value) uint64 {
	var scratch [48]byte
	key := v.AppendKey(scratch[:0])
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer — the second, independent hash
// for double hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
