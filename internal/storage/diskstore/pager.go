package diskstore

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/storage"
)

// fileID distinguishes the record files sharing one page cache.
type fileID uint8

const (
	fileVertices fileID = iota
	fileEdges
	fileProps
	fileBlobs
	fileDegrees
	numFiles
)

type pageKey struct {
	file fileID
	page int64
}

type page struct {
	key   pageKey
	data  []byte
	dirty bool
}

// pager is a write-back LRU page cache over the store's record files. All
// record reads and writes go through it, so the cache size directly
// controls how disk-bound traversals are — the knob that makes this
// backend behave like the paper's Neo4j.
//
// A single mutex guards the cache structures, the page contents, and the
// I/O counters: even a logically read-only record fetch mutates the LRU
// list and may evict and load pages, so concurrent readers must serialize
// here. That makes every pager operation — and therefore every Store read
// path built on it — safe to call from multiple goroutines.
type pager struct {
	files    [numFiles]*os.File
	sizes    [numFiles]int64 // logical file sizes in bytes
	pageSize int
	capacity int

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *page
	table map[pageKey]*list.Element

	stats storage.Stats
}

func newPager(files [numFiles]*os.File, pageSize, capacity int) (*pager, error) {
	if pageSize <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("diskstore: invalid pager config pageSize=%d capacity=%d", pageSize, capacity)
	}
	p := &pager{
		files:    files,
		pageSize: pageSize,
		capacity: capacity,
		lru:      list.New(),
		table:    map[pageKey]*list.Element{},
	}
	for i, f := range files {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		p.sizes[i] = st.Size()
	}
	return p, nil
}

// fetch returns the cached page, loading and possibly evicting as needed.
// Callers must hold p.mu.
func (p *pager) fetch(key pageKey) (*page, error) {
	if el, ok := p.table[key]; ok {
		p.stats.PageHits++
		p.lru.MoveToFront(el)
		return el.Value.(*page), nil
	}
	p.stats.PageMisses++
	pg := &page{key: key, data: make([]byte, p.pageSize)}
	off := key.page * int64(p.pageSize)
	if off < p.sizes[key.file] {
		n, err := p.files[key.file].ReadAt(pg.data, off)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("diskstore: read page %v: %w", key, err)
		}
		for i := n; i < len(pg.data); i++ {
			pg.data[i] = 0
		}
		p.stats.PageReads++
	}
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	p.table[key] = p.lru.PushFront(pg)
	return pg, nil
}

func (p *pager) evictIfFull() error {
	for p.lru.Len() >= p.capacity {
		el := p.lru.Back()
		victim := el.Value.(*page)
		if victim.dirty {
			if err := p.writePage(victim); err != nil {
				return err
			}
		}
		p.lru.Remove(el)
		delete(p.table, victim.key)
	}
	return nil
}

func (p *pager) writePage(pg *page) error {
	off := pg.key.page * int64(p.pageSize)
	if _, err := p.files[pg.key.file].WriteAt(pg.data, off); err != nil {
		return fmt.Errorf("diskstore: write page %v: %w", pg.key, err)
	}
	if end := off + int64(p.pageSize); end > p.sizes[pg.key.file] {
		p.sizes[pg.key.file] = end
	}
	pg.dirty = false
	p.stats.PageWrites++
	return nil
}

// read copies n bytes at off in the file into buf. Reads may span pages
// (needed for blob data); record reads never do because record sizes
// divide the page size.
func (p *pager) read(f fileID, off int64, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(buf) > 0 {
		pageNo := off / int64(p.pageSize)
		within := int(off % int64(p.pageSize))
		pg, err := p.fetch(pageKey{f, pageNo})
		if err != nil {
			return err
		}
		n := copy(buf, pg.data[within:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// write copies buf to off in the file, through the cache (write-back).
func (p *pager) write(f fileID, off int64, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(buf) > 0 {
		pageNo := off / int64(p.pageSize)
		within := int(off % int64(p.pageSize))
		pg, err := p.fetch(pageKey{f, pageNo})
		if err != nil {
			return err
		}
		n := copy(pg.data[within:], buf)
		pg.dirty = true
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// flush writes all dirty pages back to their files.
func (p *pager) flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *pager) flushLocked() error {
	for el := p.lru.Front(); el != nil; el = el.Next() {
		pg := el.Value.(*page)
		if pg.dirty {
			if err := p.writePage(pg); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropCache empties the cache (flushing dirty pages first), simulating a
// cold start without reopening the files.
func (p *pager) dropCache() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.lru.Init()
	p.table = map[pageKey]*list.Element{}
	return nil
}

// readStats snapshots the I/O counters.
func (p *pager) readStats() storage.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// resetStats zeroes the I/O counters.
func (p *pager) resetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = storage.Stats{}
}
