package diskstore

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// fileID distinguishes the record files sharing one page cache.
type fileID uint8

const (
	fileVertices fileID = iota
	fileEdges
	fileProps
	fileBlobs
	fileDegrees
	numFiles
)

type pageKey struct {
	file fileID
	page int64
}

// page is one cached page frame.
//
// Three independent mechanisms coordinate access to a frame:
//
//   - the latch (mu) guards the frame contents (data, dirty, loadErr). A
//     loader holds the write latch across its disk read, so concurrent
//     readers that found the frame in the table simply block on RLock
//     until the bytes are in — page loads are de-duplicated for free.
//   - the pin count (ref) keeps the frame resident: the clock sweep never
//     evicts a pinned frame, so a reader can copy from the frame after
//     releasing the shard lock. Pins are held only for the duration of one
//     copy, never across I/O on another frame.
//   - used is the clock-sweep reference bit, set on every hit and cleared
//     (one second chance) as the hand passes.
type page struct {
	key     pageKey
	mu      sync.RWMutex
	data    []byte
	dirty   bool
	loadErr error
	ref     atomic.Int32
	used    atomic.Bool
}

func (pg *page) unpin() { pg.ref.Add(-1) }

// shard is one independently locked slice of the page cache: its own
// table, its own clock ring, its own hand. A page load or eviction in one
// shard never blocks lookups in any other shard.
type shard struct {
	mu    sync.Mutex
	table map[pageKey]*page
	clock []*page // resident frames, swept circularly by hand
	hand  int
}

// pagerStats are the I/O counters, kept as atomics so the read hot path
// bumps them without holding any lock and Stats() snapshots never contend
// with the data path.
type pagerStats struct {
	hits, misses, reads, writes atomic.Int64
}

// pager is a write-back page cache over the store's record files. All
// record reads and writes go through it, so the cache size directly
// controls how disk-bound traversals are — the knob that makes this
// backend behave like the paper's Neo4j.
//
// The cache is sharded by hash of (file, page): each shard owns a fraction
// of the page budget behind its own mutex and evicts with a clock sweep
// (second-chance) instead of a linked LRU list. Within a shard, the shard
// lock covers table lookup, pinning, victim selection, and dirty-victim
// write-back; the disk read that fills a missing frame happens outside it
// under the frame's own latch, so a page load (the read path's only I/O —
// frames are clean while serving) stalls at most same-page requests, and
// a dirty write-back stalls at most its own shard. Concurrent readers
// therefore serialize only when they touch the
// same shard at the same instant, and a cold miss in one shard never
// stalls hits in the others — this is what lets N goroutines traverse a
// disk-bound graph faster than one.
//
// Writes follow the storage.Builder contract: building is single-writer,
// so flush and dropCache assume no concurrent mutators (concurrent readers
// are fine at any time).
type pager struct {
	files      [numFiles]*os.File
	sizes      [numFiles]atomic.Int64 // logical file sizes in bytes
	pageSize   int
	capacity   int // total page budget, split across shards
	shardCap   int // page budget per shard
	shardShift uint
	shards     []shard

	// Optional read-only mmap fast path (Options.Mmap). A non-nil entry
	// serves in-range reads of that file straight from the kernel's page
	// cache, bypassing the clock sweep entirely; the pager keeps ownership
	// of every write path, and the first write or truncate to a mapped
	// file atomically drops its mapping, falling back to the page cache.
	// Dropped mappings are retired, not unmapped: a concurrent reader may
	// still be copying from the old bytes, so the memory stays valid until
	// closeMaps (file close), when no readers remain.
	maps    [numFiles]atomic.Pointer[mmapRegion]
	mapMu   sync.Mutex
	retired []*mmapRegion

	stats pagerStats
}

// mmapRegion is one live read-only file mapping.
type mmapRegion struct {
	data []byte
}

// pagerShards picks the shard count for a page budget: up to 16 shards,
// halved until each shard keeps at least minShardPages pages, so tiny
// test-sized caches degenerate to a single shard instead of sharding away
// all their capacity.
const (
	maxPagerShards = 16
	minShardPages  = 4
)

func pagerShards(capacity int) int {
	n := maxPagerShards
	for n > 1 && capacity/n < minShardPages {
		n >>= 1
	}
	return n
}

func newPager(files [numFiles]*os.File, pageSize, capacity int) (*pager, error) {
	if pageSize <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("diskstore: invalid pager config pageSize=%d capacity=%d", pageSize, capacity)
	}
	n := pagerShards(capacity)
	shift := uint(64)
	for s := n; s > 1; s >>= 1 {
		shift--
	}
	p := &pager{
		pageSize: pageSize,
		capacity: capacity,
		// Floor, so the shards together never exceed the configured
		// budget; up to n-1 pages of a non-divisible budget go unused.
		shardCap:   max(1, capacity/n),
		shardShift: shift,
		shards:     make([]shard, n),
	}
	p.files = files
	for i := range p.shards {
		p.shards[i].table = map[pageKey]*page{}
	}
	for i, f := range files {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		p.sizes[i].Store(st.Size())
	}
	return p, nil
}

// shardOf maps a page key to its shard by Fibonacci hashing; the shard
// count is a power of two, so the top bits of the product index directly.
func (p *pager) shardOf(key pageKey) *shard {
	h := (uint64(key.page)<<3 ^ uint64(key.file)) * 0x9E3779B97F4A7C15
	return &p.shards[h>>p.shardShift]
}

// fetch returns the frame for key, pinned. The caller must take the
// frame's latch (RLock to copy out, Lock to modify) and unpin when done.
func (p *pager) fetch(key pageKey) (*page, error) {
	sh := p.shardOf(key)
	sh.mu.Lock()
	if pg, ok := sh.table[key]; ok {
		pg.ref.Add(1) // pin under the shard lock so the sweep cannot free it
		pg.used.Store(true)
		sh.mu.Unlock()
		p.stats.hits.Add(1)
		// If the frame is still loading, RLock blocks until the loader
		// releases the write latch; loadErr is then final.
		pg.mu.RLock()
		err := pg.loadErr
		pg.mu.RUnlock()
		if err != nil {
			pg.unpin()
			return nil, err
		}
		return pg, nil
	}
	p.stats.misses.Add(1)
	pg := &page{key: key, data: make([]byte, p.pageSize)}
	pg.ref.Add(1)
	pg.used.Store(true)
	pg.mu.Lock() // held across the load; see page docs
	if err := p.evictLocked(sh); err != nil {
		pg.mu.Unlock()
		sh.mu.Unlock()
		return nil, err
	}
	sh.table[key] = pg
	sh.clock = append(sh.clock, pg)
	sh.mu.Unlock()

	// The disk read happens outside the shard lock: only goroutines
	// needing this same page wait (on the latch); the rest of the shard
	// stays available.
	off := key.page * int64(p.pageSize)
	if off < p.sizes[key.file].Load() {
		n, err := p.files[key.file].ReadAt(pg.data, off)
		if err != nil && err != io.EOF {
			pg.loadErr = fmt.Errorf("diskstore: read page %v: %w", key, err)
		} else {
			for i := n; i < len(pg.data); i++ {
				pg.data[i] = 0
			}
			p.stats.reads.Add(1)
		}
	}
	if pg.loadErr != nil {
		err := pg.loadErr
		pg.mu.Unlock()
		// Drop the failed frame so a later fetch retries the read.
		sh.mu.Lock()
		if cur, ok := sh.table[key]; ok && cur == pg {
			delete(sh.table, key)
			sh.removeFromClock(pg)
		}
		sh.mu.Unlock()
		pg.unpin()
		return nil, err
	}
	pg.mu.Unlock()
	return pg, nil
}

// evictLocked makes room for one more frame in the shard, writing dirty
// victims back. Caller holds sh.mu. Pinned frames are skipped; if every
// frame is pinned the shard temporarily overflows its budget rather than
// deadlocking.
func (p *pager) evictLocked(sh *shard) error {
	attempts := 0
	for len(sh.clock) >= p.shardCap && attempts < 2*len(sh.clock)+1 {
		if sh.hand >= len(sh.clock) {
			sh.hand = 0
		}
		pg := sh.clock[sh.hand]
		attempts++
		if pg.ref.Load() > 0 {
			sh.hand++
			continue
		}
		if pg.used.Swap(false) {
			sh.hand++ // second chance
			continue
		}
		if err := p.writePage(pg); err != nil {
			return err
		}
		delete(sh.table, pg.key)
		sh.removeAt(sh.hand)
	}
	return nil
}

// removeAt swap-removes the ring entry at index i. Caller holds sh.mu.
func (sh *shard) removeAt(i int) {
	last := len(sh.clock) - 1
	sh.clock[i] = sh.clock[last]
	sh.clock[last] = nil
	sh.clock = sh.clock[:last]
}

// removeFromClock drops pg from the ring. Caller holds sh.mu.
func (sh *shard) removeFromClock(pg *page) {
	for i, cur := range sh.clock {
		if cur == pg {
			sh.removeAt(i)
			return
		}
	}
}

// writePage writes the frame back to its file if dirty. It takes the
// frame latch itself; safe to call with only sh.mu held (lock order is
// always shard → page).
func (p *pager) writePage(pg *page) error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if !pg.dirty {
		return nil
	}
	off := pg.key.page * int64(p.pageSize)
	if _, err := p.files[pg.key.file].WriteAt(pg.data, off); err != nil {
		return fmt.Errorf("diskstore: write page %v: %w", pg.key, err)
	}
	p.grow(pg.key.file, off+int64(p.pageSize))
	pg.dirty = false
	p.stats.writes.Add(1)
	return nil
}

// grow raises the logical size of the file to at least end.
func (p *pager) grow(f fileID, end int64) {
	for {
		cur := p.sizes[f].Load()
		if end <= cur || p.sizes[f].CompareAndSwap(cur, end) {
			return
		}
	}
}

// enableMmap maps the given files read-only, if the platform supports it
// and the file is non-empty. Failure to map (unsupported platform, empty
// file, kernel refusal) is not an error — the pager simply keeps serving
// that file through the page cache.
func (p *pager) enableMmap(files ...fileID) {
	for _, f := range files {
		size := p.sizes[f].Load()
		if size <= 0 {
			continue
		}
		data, err := mmapFile(p.files[f], size)
		if err != nil {
			continue
		}
		p.maps[f].Store(&mmapRegion{data: data})
	}
}

// dropMap retires the file's mapping (if any) so subsequent reads go
// through the page cache. Called on the first write or truncate to a
// mapped file.
func (p *pager) dropMap(f fileID) {
	if m := p.maps[f].Swap(nil); m != nil {
		p.mapMu.Lock()
		p.retired = append(p.retired, m)
		p.mapMu.Unlock()
	}
}

// closeMaps unmaps every live and retired mapping. Callers must ensure no
// reads are in flight (same contract as closing the files).
func (p *pager) closeMaps() {
	p.mapMu.Lock()
	retired := p.retired
	p.retired = nil
	p.mapMu.Unlock()
	for _, m := range retired {
		munmapRegion(m.data)
	}
	for f := range p.maps {
		if m := p.maps[f].Swap(nil); m != nil {
			munmapRegion(m.data)
		}
	}
}

// read copies n bytes at off in the file into buf. Reads may span pages
// (needed for blob data); record reads never do because record sizes
// divide the page size.
func (p *pager) read(f fileID, off int64, buf []byte) error {
	if m := p.maps[f].Load(); m != nil && off >= 0 && off+int64(len(buf)) <= int64(len(m.data)) {
		copy(buf, m.data[off:])
		p.stats.hits.Add(1)
		return nil
	}
	for len(buf) > 0 {
		pageNo := off / int64(p.pageSize)
		within := int(off % int64(p.pageSize))
		pg, err := p.fetch(pageKey{f, pageNo})
		if err != nil {
			return err
		}
		pg.mu.RLock()
		n := copy(buf, pg.data[within:])
		pg.mu.RUnlock()
		pg.unpin()
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// write copies buf to off in the file, through the cache (write-back).
// Writing to an mmapped file drops its mapping first: the mapping is a
// read-only snapshot and must not alias pages the cache now owns.
func (p *pager) write(f fileID, off int64, buf []byte) error {
	p.dropMap(f)
	for len(buf) > 0 {
		pageNo := off / int64(p.pageSize)
		within := int(off % int64(p.pageSize))
		pg, err := p.fetch(pageKey{f, pageNo})
		if err != nil {
			return err
		}
		pg.mu.Lock()
		n := copy(pg.data[within:], buf)
		pg.dirty = true
		pg.mu.Unlock()
		pg.unpin()
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// truncate shrinks the file to size bytes, discarding any cached frames
// that lie wholly past the new end (their dirty bytes are dead by
// definition — the caller declared everything past size garbage). The
// frame straddling the boundary may keep stale tail bytes; harmless,
// because all reads past a truncate use explicit in-range lengths.
// Single-writer contract, like flush.
func (p *pager) truncate(f fileID, size int64) error {
	p.dropMap(f)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for j := 0; j < len(sh.clock); {
			pg := sh.clock[j]
			if pg.key.file == f && pg.key.page*int64(p.pageSize) >= size {
				pg.mu.Lock()
				pg.dirty = false
				pg.mu.Unlock()
				delete(sh.table, pg.key)
				sh.removeAt(j)
				continue
			}
			j++
		}
		sh.hand = 0
		sh.mu.Unlock()
	}
	if err := p.files[f].Truncate(size); err != nil {
		return fmt.Errorf("diskstore: truncate %d: %w", f, err)
	}
	p.sizes[f].Store(size)
	return nil
}

// flush writes all dirty pages back to their files.
func (p *pager) flush() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, pg := range sh.clock {
			if err := p.writePage(pg); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// dropCache empties the cache (flushing dirty pages first), simulating a
// cold start without reopening the files. Like flush, it relies on the
// single-writer build contract: concurrent readers are fine (frames they
// hold pinned stay readable, merely orphaned), concurrent writers are not.
func (p *pager) dropCache() error {
	if err := p.flush(); err != nil {
		return err
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.table = map[pageKey]*page{}
		sh.clock = nil
		sh.hand = 0
		sh.mu.Unlock()
	}
	return nil
}

// resident counts the frames currently cached across all shards.
func (p *pager) resident() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += len(sh.clock)
		sh.mu.Unlock()
	}
	return n
}

// readStats snapshots the I/O counters.
func (p *pager) readStats() storage.Stats {
	return storage.Stats{
		PageHits:   p.stats.hits.Load(),
		PageMisses: p.stats.misses.Load(),
		PageReads:  p.stats.reads.Load(),
		PageWrites: p.stats.writes.Load(),
	}
}

// resetStats zeroes the I/O counters.
func (p *pager) resetStats() {
	p.stats.hits.Store(0)
	p.stats.misses.Store(0)
	p.stats.reads.Store(0)
	p.stats.writes.Store(0)
}
