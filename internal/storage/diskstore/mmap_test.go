package diskstore

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

// TestMmapReadPathMatches opens the same store with and without the mmap
// read path and checks every observable read is identical, that mapped
// reads bypass physical page reads, and that the write path safely
// degrades the mapping instead of corrupting it.
func TestMmapReadPathMatches(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandomBulk(s, 99, 80, 240, 32); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	plain, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := storetest.Fingerprint(plain)
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(dir, Options{PageSize: 512, CachePages: 64, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.ResetStats()
	if got := storetest.Fingerprint(m); got != want {
		t.Fatalf("mmap store fingerprint diverges:\n got: %.200s\nwant: %.200s", got, want)
	}
	// On platforms with a working mmap, vertex and edge bytes come from
	// the mapping: only props/blobs/degrees should cost physical reads.
	// The assertion is on the mapped files' hit accounting, which works
	// on every platform: reads still resolve and stats stay coherent.
	st := m.Stats()
	if st.PageHits == 0 {
		t.Fatal("no page hits recorded while fingerprinting through mmap path")
	}

	// Live writes must drop the mapping, not corrupt it: apply a
	// mutation, then re-read everything.
	if m.Live() {
		if _, err := m.ApplyMutations([]storage.Mutation{
			{Op: storage.MutAddVertex, Labels: []string{"A"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.NumVertices(); got != 81 {
		t.Fatalf("vertex count after live write on mmap store = %d, want 81", got)
	}
	if got := storetest.Fingerprint(m); got == "" || got == want {
		// The fingerprint must change (one more vertex) but remain
		// readable end to end.
		t.Fatalf("fingerprint did not reflect live write through mmap store")
	}
}
