package diskstore

// The in-memory delta segment: where live (post-finalize) mutations
// live between WAL append and the next Compact. The base files stay
// frozen in live mode — no page is dirtied, index.db stays valid, and
// the segmented-adjacency invariant keeps holding for base edges — while
// the read paths merge the delta on top:
//
//   - vertices: delta VIDs continue the base range (base+i), so VID
//     arithmetic distinguishes the two without lookups;
//   - edges: delta EIDs continue the base range; traversal yields base
//     edges first (segment fast path intact), then the vertex's delta
//     adjacency in ingest order;
//   - labels: a base vertex's labels are its record bits plus delta
//     additions; label scans walk the base index then the delta's;
//   - properties: delta values override base values key by key.
//
// Since background compaction, every delta entry carries the WAL
// sequence number of the batch that produced it, and reads are filtered
// through a visibility window (vis): an entry is visible to an epoch iff
// baseSeq < seq <= maxSeq. A background fold absorbs the prefix with
// seq <= W into a new base generation; entries in that prefix become
// invisible to the new epoch (their data now lives in the base files)
// while snapshots pinned on the old epoch keep reading them. The folded
// prefix is pruned once the last old-epoch pin drains.
//
// Delta VIDs and EIDs are stable across folds: the delta keeps the
// vertex/edge counts it was born with (origVerts/origEdges) and numbers
// entries by global ordinal, which exactly matches the IDs the fold
// assigns when it appends the frozen prefix to the base.
//
// Readers never hold the delta lock while running user callbacks or
// touching the pager: accessors copy the (small) relevant slice under
// RLock and iterate after release, which keeps a queued writer from
// deadlocking a reader that re-enters the delta mid-iteration.

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/storage"
)

// vis is a visibility window over the delta: the reader's base epoch
// boundaries plus the sequence range of delta entries it may observe.
// Current-epoch reads use maxSeq = ^uint64(0); snapshots freeze maxSeq
// at their acquire-time watermark.
type vis struct {
	baseVerts int64  // epoch's base vertex count
	baseEdges int64  // epoch's base edge count
	baseSeq   uint64 // WAL seq folded into the epoch's base files
	maxSeq    uint64 // highest visible seq (snapshot watermark)
}

func (w vis) sees(seq uint64) bool { return seq > w.baseSeq && seq <= w.maxSeq }

// labelAdd is one label membership with the seq that created it.
type labelAdd struct {
	id  int
	seq uint64
}

// propVersion is one write of a property value. Version lists are
// append-only in seq order; a reader takes the newest version at or
// below its watermark.
type propVersion struct {
	seq uint64
	val graph.Value
}

// deltaVertex is a vertex created after finalize, identified by
// origVerts + global ordinal.
type deltaVertex struct {
	seq      uint64 // creation seq
	labelIDs []labelAdd
	props    map[int][]propVersion
}

// deltaEdge is one direction of a live edge in a vertex's delta
// adjacency.
type deltaEdge struct {
	e      storage.EID
	other  storage.VID
	typeID uint32
	seq    uint64
}

// vidSeq is one delta posting in a label's membership list.
type vidSeq struct {
	v   storage.VID
	seq uint64
}

// delta is the in-memory segment of live mutations. nextV/nextE shadow
// the global next-VID/EID atomically (they equal origVerts + vertsLo +
// len(verts), but never regress on prune) so hot read paths get the
// current epoch's visible totals without the lock: for the epoch the
// delta currently extends, visible vertices = nextV exactly — the base
// absorbed a prefix of the same numbering.
type delta struct {
	mu    sync.RWMutex
	nextV atomic.Int64
	nextE atomic.Int64

	// appliedSeq is the highest WAL seq whose batch is fully visible in
	// the delta. It is the snapshot watermark: acquiring a snapshot at
	// maxSeq = appliedSeq guarantees batch atomicity (a batch is either
	// entirely visible or entirely invisible).
	appliedSeq atomic.Uint64

	// origVerts/origEdges are the base counts when the delta was
	// created (live mode entered). They never change across background
	// folds, which is what keeps delta VIDs/EIDs stable.
	origVerts int64
	origEdges int64

	// vertsLo/edgesLo are the global ordinals of verts[0]/edgeSeqs[0];
	// pruning a folded prefix advances them.
	vertsLo int64
	edgesLo int64

	verts     []deltaVertex                         // seq-ordered
	edgeSeqs  []uint64                              // per-edge seq, EID order
	out       map[storage.VID][]deltaEdge           // seq-ordered per vertex
	in        map[storage.VID][]deltaEdge           // seq-ordered per vertex
	labelAdds map[storage.VID][]labelAdd            // labels added to base vertices
	propOver  map[storage.VID]map[int][]propVersion // property overrides on base vertices
	byLabel   map[int][]vidSeq                      // delta label membership (both vertex kinds)
}

func newDelta(baseVerts, baseEdges int64) *delta {
	d := &delta{
		origVerts: baseVerts,
		origEdges: baseEdges,
		out:       map[storage.VID][]deltaEdge{},
		in:        map[storage.VID][]deltaEdge{},
		labelAdds: map[storage.VID][]labelAdd{},
		propOver:  map[storage.VID]map[int][]propVersion{},
		byLabel:   map[int][]vidSeq{},
	}
	d.nextV.Store(baseVerts)
	d.nextE.Store(baseEdges)
	return d
}

// nextVID/nextEID are the IDs the next delta vertex/edge will get.
// Stable across folds and prunes: global ordinals continue counting.
func (d *delta) nextVID() int64 { return d.origVerts + d.vertsLo + int64(len(d.verts)) }
func (d *delta) nextEID() int64 { return d.origEdges + d.edgesLo + int64(len(d.edgeSeqs)) }

// totalVerts/totalEdges under lock; callers needing a racy hint use the
// atomics.
func (d *delta) totalVertsLocked() int64 { return d.vertsLo + int64(len(d.verts)) }
func (d *delta) totalEdgesLocked() int64 { return d.edgesLo + int64(len(d.edgeSeqs)) }

// writeBounds returns the ID bounds writers validate references
// against: every vertex/edge ever created, folded or not.
func (d *delta) writeBounds() (nextVID, nextEID int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nextVID(), d.nextEID()
}

// empty reports a delta with nothing at all in memory (folded-but-
// unpruned entries count as content). Callers that only need a fast
// emptiness hint on the read path use the atomic counters instead.
func (d *delta) empty() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.verts) == 0 && len(d.out) == 0 && len(d.in) == 0 &&
		len(d.labelAdds) == 0 && len(d.propOver) == 0
}

// statsDirty reports delta content that can invalidate the base's
// persisted vertex statistics (bloom filters): new vertices, label
// additions, or property overrides. Edge-only deltas stay clean — edges
// carry no vertex properties, so the filters remain definitive.
func (d *delta) statsDirty() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.verts) > 0 || len(d.labelAdds) > 0 || len(d.propOver) > 0
}

// counts returns the number of delta vertices/edges visible through w
// beyond its base — the "unfolded delta size" for that epoch.
func (d *delta) counts(w vis) (nv, ne int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nv = d.vertsLo + seqUpperBound(len(d.verts), w.maxSeq, func(i int) uint64 { return d.verts[i].seq })
	nv -= w.baseVerts - d.origVerts
	ne = d.edgesLo + seqUpperBound(len(d.edgeSeqs), w.maxSeq, func(i int) uint64 { return d.edgeSeqs[i] })
	ne -= w.baseEdges - d.origEdges
	return max(nv, 0), max(ne, 0)
}

// seqUpperBound returns the number of leading entries (out of n, read
// through seqAt, ascending) with seq <= maxSeq.
func seqUpperBound(n int, maxSeq uint64, seqAt func(int) uint64) int64 {
	return int64(sort.Search(n, func(i int) bool { return seqAt(i) > maxSeq }))
}

// vertIdx maps a VID to an index into d.verts, or -1 if the VID is out
// of range or pruned. Callers must hold d.mu.
func (d *delta) vertIdxLocked(v storage.VID) int64 {
	idx := int64(v) - d.origVerts - d.vertsLo
	if idx < 0 || idx >= int64(len(d.verts)) {
		return -1
	}
	return idx
}

// hasVertexState reports whether v has any delta-side label or property
// state (cheap pre-check for base-vertex reads).
func (d *delta) hasVertexState(v storage.VID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, ok := d.labelAdds[v]; ok {
		return true
	}
	_, ok := d.propOver[v]
	return ok
}

// adj returns a copy of v's delta adjacency visible through w in one
// direction.
func (d *delta) adj(v storage.VID, out bool, w vis) []deltaEdge {
	m := d.out
	if !out {
		m = d.in
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	es := m[v]
	if len(es) == 0 {
		return nil
	}
	var cp []deltaEdge
	for i := range es {
		if w.sees(es[i].seq) {
			cp = append(cp, es[i])
		}
	}
	return cp
}

// degree counts v's delta edges of one type (AnySymbol = all) visible
// through w in one direction.
func (d *delta) degree(v storage.VID, etype storage.SymbolID, out bool, w vis) int {
	m := d.out
	if !out {
		m = d.in
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, e := range m[v] {
		if w.sees(e.seq) && (etype == storage.AnySymbol || e.typeID == uint32(etype)) {
			n++
		}
	}
	return n
}

// labelVIDs returns a copy of the delta members of a label visible
// through w.
func (d *delta) labelVIDs(id int, w vis) []storage.VID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var vids []storage.VID
	for _, p := range d.byLabel[id] {
		if w.sees(p.seq) {
			vids = append(vids, p.v)
		}
	}
	return vids
}

func (d *delta) labelCount(id int, w vis) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, p := range d.byLabel[id] {
		if w.sees(p.seq) {
			n++
		}
	}
	return n
}

// vertexLabelIDs returns a copy of a delta vertex's label IDs visible
// through w.
func (d *delta) vertexLabelIDs(v storage.VID, w vis) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	idx := d.vertIdxLocked(v)
	if idx < 0 || d.verts[idx].seq > w.maxSeq {
		return nil
	}
	var ids []int
	for _, l := range d.verts[idx].labelIDs {
		if l.seq <= w.maxSeq {
			ids = append(ids, l.id)
		}
	}
	return ids
}

// labelAddIDs returns a copy of the labels added to base vertex v
// visible through w.
func (d *delta) labelAddIDs(v storage.VID, w vis) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var ids []int
	for _, l := range d.labelAdds[v] {
		if w.sees(l.seq) {
			ids = append(ids, l.id)
		}
	}
	return ids
}

// hasLabel reports delta-side label membership for either vertex kind,
// through w. w.baseVerts routes: VIDs at or past the epoch's base count
// are delta vertices for that epoch.
func (d *delta) hasLabel(v storage.VID, id int, w vis) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int64(v) >= w.baseVerts {
		idx := d.vertIdxLocked(v)
		if idx < 0 || d.verts[idx].seq > w.maxSeq {
			return false
		}
		for _, l := range d.verts[idx].labelIDs {
			if l.id == id && l.seq <= w.maxSeq {
				return true
			}
		}
		return false
	}
	for _, l := range d.labelAdds[v] {
		if l.id == id && w.sees(l.seq) {
			return true
		}
	}
	return false
}

// latestVersion picks the newest version at or below maxSeq; versions
// are seq-ascending so scan from the tail.
func latestVersion(vers []propVersion, w vis, override bool) (graph.Value, bool) {
	for i := len(vers) - 1; i >= 0; i-- {
		if vers[i].seq > w.maxSeq {
			continue
		}
		if override && vers[i].seq <= w.baseSeq {
			// Folded into the base files; the base read path owns it.
			return graph.Null, false
		}
		return vers[i].val, true
	}
	return graph.Null, false
}

// prop returns the delta-side value of a property visible through w: a
// delta vertex's own value or a base vertex's override.
func (d *delta) prop(v storage.VID, keyID int, w vis) (graph.Value, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int64(v) >= w.baseVerts {
		idx := d.vertIdxLocked(v)
		if idx < 0 || d.verts[idx].seq > w.maxSeq {
			return graph.Null, false
		}
		return latestVersion(d.verts[idx].props[keyID], w, false)
	}
	return latestVersion(d.propOver[v][keyID], w, true)
}

// propKeyIDs returns the key IDs with delta-side values on v visible
// through w.
func (d *delta) propKeyIDs(v storage.VID, w vis) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var m map[int][]propVersion
	override := false
	if int64(v) >= w.baseVerts {
		idx := d.vertIdxLocked(v)
		if idx < 0 || d.verts[idx].seq > w.maxSeq {
			return nil
		}
		m = d.verts[idx].props
	} else {
		m = d.propOver[v]
		override = true
	}
	if len(m) == 0 {
		return nil
	}
	var ids []int
	for id, vers := range m {
		if _, ok := latestVersion(vers, w, override); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// ---- mutators (called with d.mu held by applyToDelta) ----

func (d *delta) addVertexLocked(seq uint64, labelIDs []int) storage.VID {
	v := storage.VID(d.nextVID())
	adds := make([]labelAdd, len(labelIDs))
	for i, id := range labelIDs {
		adds[i] = labelAdd{id: id, seq: seq}
		d.byLabel[id] = append(d.byLabel[id], vidSeq{v: v, seq: seq})
	}
	d.verts = append(d.verts, deltaVertex{seq: seq, labelIDs: adds})
	d.nextV.Add(1)
	return v
}

func (d *delta) addEdgeLocked(seq uint64, src, dst storage.VID, typeID uint32) storage.EID {
	// EIDs continue the base range in global ingest order.
	e := storage.EID(d.nextEID())
	d.out[src] = append(d.out[src], deltaEdge{e: e, other: dst, typeID: typeID, seq: seq})
	d.in[dst] = append(d.in[dst], deltaEdge{e: e, other: src, typeID: typeID, seq: seq})
	d.edgeSeqs = append(d.edgeSeqs, seq)
	d.nextE.Add(1)
	return e
}

// setPropLocked appends a version. curBase is the *current* epoch's
// base vertex count, which routes the write: at or past it the vertex
// is delta-resident, below it the write is a base-vertex override.
func (d *delta) setPropLocked(seq uint64, v storage.VID, curBase int64, keyID int, val graph.Value) {
	if int64(v) >= curBase {
		idx := d.vertIdxLocked(v)
		if idx < 0 {
			return
		}
		dv := &d.verts[idx]
		if dv.props == nil {
			dv.props = map[int][]propVersion{}
		}
		dv.props[keyID] = append(dv.props[keyID], propVersion{seq: seq, val: val})
		return
	}
	m := d.propOver[v]
	if m == nil {
		m = map[int][]propVersion{}
		d.propOver[v] = m
	}
	m[keyID] = append(m[keyID], propVersion{seq: seq, val: val})
}

// addLabelLocked records a label addition; baseHas reports whether the
// current base record already carries it (pre-read by the caller
// outside the lock), keeping byLabel duplicate-free.
func (d *delta) addLabelLocked(seq uint64, v storage.VID, curBase int64, id int, baseHas bool) {
	if baseHas {
		return
	}
	if int64(v) >= curBase {
		idx := d.vertIdxLocked(v)
		if idx < 0 {
			return
		}
		dv := &d.verts[idx]
		for _, l := range dv.labelIDs {
			if l.id == id {
				return
			}
		}
		dv.labelIDs = append(dv.labelIDs, labelAdd{id: id, seq: seq})
	} else {
		for _, l := range d.labelAdds[v] {
			if l.id == id {
				return
			}
		}
		d.labelAdds[v] = append(d.labelAdds[v], labelAdd{id: id, seq: seq})
	}
	d.byLabel[id] = append(d.byLabel[id], vidSeq{v: v, seq: seq})
}

// ---- fold support ----

// frozenVertex/frozenEdge/frozenDelta are the immutable snapshot a fold
// consumes: the delta prefix visible through the freeze window, in ID
// order, with property version lists collapsed to their newest visible
// value.
type frozenVertex struct {
	v        storage.VID
	labelIDs []int
	props    map[int]graph.Value
}

type frozenEdge struct {
	e      storage.EID
	src    storage.VID
	dst    storage.VID
	typeID uint32
}

type frozenDelta struct {
	maxSeq    uint64
	verts     []frozenVertex // VID order
	edges     []frozenEdge   // EID order
	labelAdds map[storage.VID][]int
	propOver  map[storage.VID]map[int]graph.Value
}

// freeze copies out everything visible through w. The fold builds a new
// base generation from the old base plus this snapshot; concurrent
// mutations (seq > w.maxSeq) keep landing in the live structures and
// survive the epoch swap untouched.
func (d *delta) freeze(w vis) *frozenDelta {
	d.mu.RLock()
	defer d.mu.RUnlock()
	fd := &frozenDelta{
		maxSeq:    w.maxSeq,
		labelAdds: map[storage.VID][]int{},
		propOver:  map[storage.VID]map[int]graph.Value{},
	}
	for i := range d.verts {
		dv := &d.verts[i]
		if dv.seq > w.maxSeq {
			break // seq-ordered: nothing later is visible
		}
		v := storage.VID(d.origVerts + d.vertsLo + int64(i))
		if int64(v) < w.baseVerts {
			continue // already folded into this epoch's base
		}
		fv := frozenVertex{v: v}
		for _, l := range dv.labelIDs {
			if l.seq <= w.maxSeq {
				fv.labelIDs = append(fv.labelIDs, l.id)
			}
		}
		for id, vers := range dv.props {
			if val, ok := latestVersion(vers, w, false); ok {
				if fv.props == nil {
					fv.props = map[int]graph.Value{}
				}
				fv.props[id] = val
			}
		}
		fd.verts = append(fd.verts, fv)
	}
	for src, es := range d.out {
		for _, e := range es {
			if w.sees(e.seq) {
				fd.edges = append(fd.edges, frozenEdge{e: e.e, src: src, dst: e.other, typeID: e.typeID})
			}
		}
	}
	sort.Slice(fd.edges, func(i, j int) bool { return fd.edges[i].e < fd.edges[j].e })
	for v, adds := range d.labelAdds {
		for _, l := range adds {
			if w.sees(l.seq) {
				fd.labelAdds[v] = append(fd.labelAdds[v], l.id)
			}
		}
	}
	for v, m := range d.propOver {
		for id, vers := range m {
			if val, ok := latestVersion(vers, w, true); ok {
				if fd.propOver[v] == nil {
					fd.propOver[v] = map[int]graph.Value{}
				}
				fd.propOver[v][id] = val
			}
		}
	}
	return fd
}

// rebase runs at a fold's commit point (store liveMu held), after the
// new epoch makes delta vertices below newBaseVerts base vertices. Young
// state (seq > bound) attached to those vertices — labels and property
// versions applied while the fold was running — is copied to the
// base-override maps, because that is where post-swap routing looks for
// a base VID. The originals stay in place for snapshots still reading
// through the old window; prune later drops them (they sit on folded
// vertex entries) while the copies survive (their seqs exceed the prune
// bound). Young delta adjacency needs no migration: it is keyed by VID,
// not by the vertex's base/delta residency.
func (d *delta) rebase(bound uint64, newBaseVerts int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	folded := newBaseVerts - d.origVerts - d.vertsLo
	if folded > int64(len(d.verts)) {
		folded = int64(len(d.verts))
	}
	for i := int64(0); i < folded; i++ {
		dv := &d.verts[i]
		v := storage.VID(d.origVerts + d.vertsLo + i)
		for _, l := range dv.labelIDs {
			if l.seq > bound {
				d.labelAdds[v] = append(d.labelAdds[v], l)
			}
		}
		for keyID, vers := range dv.props {
			for _, pv := range vers {
				if pv.seq > bound {
					m := d.propOver[v]
					if m == nil {
						m = map[int][]propVersion{}
						d.propOver[v] = m
					}
					m[keyID] = append(m[keyID], pv)
				}
			}
		}
	}
}

// prune drops every entry folded into the current base: vertices/edges
// below the epoch's ID boundaries and label/property entries with
// seq <= bound. Called once the last pin on any older epoch drains
// (with the store's liveMu held, so routing in applyToDelta can never
// observe a half-pruned state).
func (d *delta) prune(bound uint64, curBaseVerts, curBaseEdges int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cut := curBaseVerts - d.origVerts - d.vertsLo; cut > 0 {
		d.verts = append([]deltaVertex(nil), d.verts[cut:]...)
		d.vertsLo += cut
	}
	if cut := curBaseEdges - d.origEdges - d.edgesLo; cut > 0 {
		d.edgeSeqs = append([]uint64(nil), d.edgeSeqs[cut:]...)
		d.edgesLo += cut
	}
	pruneAdj := func(m map[storage.VID][]deltaEdge) {
		for v, es := range m {
			kept := es[:0]
			for _, e := range es {
				if e.seq > bound {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 {
				delete(m, v)
			} else {
				m[v] = kept
			}
		}
	}
	pruneAdj(d.out)
	pruneAdj(d.in)
	for v, adds := range d.labelAdds {
		kept := adds[:0]
		for _, l := range adds {
			if l.seq > bound {
				kept = append(kept, l)
			}
		}
		if len(kept) == 0 {
			delete(d.labelAdds, v)
		} else {
			d.labelAdds[v] = kept
		}
	}
	for v, m := range d.propOver {
		for id, vers := range m {
			kept := vers[:0]
			for _, pv := range vers {
				if pv.seq > bound {
					kept = append(kept, pv)
				}
			}
			if len(kept) == 0 {
				delete(m, id)
			} else {
				m[id] = kept
			}
		}
		if len(m) == 0 {
			delete(d.propOver, v)
		}
	}
	for id, ps := range d.byLabel {
		kept := ps[:0]
		for _, p := range ps {
			if p.seq > bound {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(d.byLabel, id)
		} else {
			d.byLabel[id] = kept
		}
	}
}
