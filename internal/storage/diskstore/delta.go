package diskstore

// The in-memory delta segment: where live (post-finalize) mutations
// live between WAL append and the next Compact. The base files stay
// frozen in live mode — no page is dirtied, index.db stays valid, and
// the segmented-adjacency invariant keeps holding for base edges — while
// the read paths merge the delta on top:
//
//   - vertices: delta VIDs continue the base range (base+i), so VID
//     arithmetic distinguishes the two without lookups;
//   - edges: delta EIDs continue the base range; traversal yields base
//     edges first (segment fast path intact), then the vertex's delta
//     adjacency in ingest order;
//   - labels: a base vertex's labels are its record bits plus delta
//     additions; label scans walk the base index then the delta's;
//   - properties: delta values override base values key by key.
//
// Readers never hold the delta lock while running user callbacks or
// touching the pager: accessors copy the (small) relevant slice under
// RLock and iterate after release, which keeps a queued writer from
// deadlocking a reader that re-enters the delta mid-iteration.

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/storage"
)

// deltaVertex is a vertex created after finalize, identified by
// base-count + slice index.
type deltaVertex struct {
	labelIDs []int
	props    map[int]graph.Value
}

// deltaEdge is one direction of a live edge in a vertex's delta
// adjacency.
type deltaEdge struct {
	e      storage.EID
	other  storage.VID
	typeID uint32
}

// delta is the in-memory segment of live mutations. vertCount/edgeCount
// shadow the slice lengths atomically so hot read paths can skip the
// lock entirely while the delta is empty.
type delta struct {
	mu        sync.RWMutex
	vertCount atomic.Int64
	edgeCount atomic.Int64

	verts     []deltaVertex
	out       map[storage.VID][]deltaEdge
	in        map[storage.VID][]deltaEdge
	labelAdds map[storage.VID][]int               // labels added to base vertices
	propOver  map[storage.VID]map[int]graph.Value // property overrides on base vertices
	byLabel   map[int][]storage.VID               // delta label membership (both vertex kinds)
}

func newDelta() *delta {
	return &delta{
		out:       map[storage.VID][]deltaEdge{},
		in:        map[storage.VID][]deltaEdge{},
		labelAdds: map[storage.VID][]int{},
		propOver:  map[storage.VID]map[int]graph.Value{},
		byLabel:   map[int][]storage.VID{},
	}
}

// empty reports a delta with nothing to fold. Callers that only need a
// fast emptiness hint on the read path use the atomic counters instead.
func (d *delta) empty() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.verts) == 0 && len(d.out) == 0 && len(d.in) == 0 &&
		len(d.labelAdds) == 0 && len(d.propOver) == 0
}

// hasVertexState reports whether v has any delta-side label or property
// state (cheap pre-check for base-vertex reads).
func (d *delta) hasVertexState(v storage.VID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, ok := d.labelAdds[v]; ok {
		return true
	}
	_, ok := d.propOver[v]
	return ok
}

// adj returns a copy of v's delta adjacency in one direction.
func (d *delta) adj(v storage.VID, out bool) []deltaEdge {
	m := d.out
	if !out {
		m = d.in
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	es := m[v]
	if len(es) == 0 {
		return nil
	}
	return append([]deltaEdge(nil), es...)
}

// degree counts v's delta edges of one type (AnySymbol = all) in one
// direction.
func (d *delta) degree(v storage.VID, etype storage.SymbolID, out bool) int {
	m := d.out
	if !out {
		m = d.in
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	es := m[v]
	if etype == storage.AnySymbol {
		return len(es)
	}
	n := 0
	for i := range es {
		if es[i].typeID == uint32(etype) {
			n++
		}
	}
	return n
}

// labelVIDs returns a copy of the delta members of a label.
func (d *delta) labelVIDs(id int) []storage.VID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	vids := d.byLabel[id]
	if len(vids) == 0 {
		return nil
	}
	return append([]storage.VID(nil), vids...)
}

func (d *delta) labelCount(id int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byLabel[id])
}

// vertexLabelIDs returns a copy of a delta vertex's label IDs (idx is
// the delta-local index).
func (d *delta) vertexLabelIDs(idx int64) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if idx < 0 || idx >= int64(len(d.verts)) {
		return nil
	}
	return append([]int(nil), d.verts[idx].labelIDs...)
}

// labelAddIDs returns a copy of the labels added to base vertex v.
func (d *delta) labelAddIDs(v storage.VID) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := d.labelAdds[v]
	if len(ids) == 0 {
		return nil
	}
	return append([]int(nil), ids...)
}

// hasLabel reports delta-side label membership for either vertex kind.
// base is the store's base vertex count.
func (d *delta) hasLabel(v storage.VID, base int64, id int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int64(v) >= base {
		idx := int64(v) - base
		if idx >= int64(len(d.verts)) {
			return false
		}
		for _, l := range d.verts[idx].labelIDs {
			if l == id {
				return true
			}
		}
		return false
	}
	for _, l := range d.labelAdds[v] {
		if l == id {
			return true
		}
	}
	return false
}

// prop returns the delta-side value of a property: a delta vertex's own
// value or a base vertex's override.
func (d *delta) prop(v storage.VID, base int64, keyID int) (graph.Value, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int64(v) >= base {
		idx := int64(v) - base
		if idx >= int64(len(d.verts)) {
			return graph.Null, false
		}
		val, ok := d.verts[idx].props[keyID]
		return val, ok
	}
	val, ok := d.propOver[v][keyID]
	return val, ok
}

// propKeyIDs returns the key IDs with delta-side values on v.
func (d *delta) propKeyIDs(v storage.VID, base int64) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var m map[int]graph.Value
	if int64(v) >= base {
		idx := int64(v) - base
		if idx >= int64(len(d.verts)) {
			return nil
		}
		m = d.verts[idx].props
	} else {
		m = d.propOver[v]
	}
	if len(m) == 0 {
		return nil
	}
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}

// ---- mutators (called with d.mu held by applyToDelta) ----

func (d *delta) addVertexLocked(base int64, labelIDs []int) storage.VID {
	v := storage.VID(base + int64(len(d.verts)))
	d.verts = append(d.verts, deltaVertex{labelIDs: labelIDs})
	for _, id := range labelIDs {
		d.byLabel[id] = append(d.byLabel[id], v)
	}
	d.vertCount.Add(1)
	return v
}

func (d *delta) addEdgeLocked(baseEdges int64, src, dst storage.VID, typeID uint32) storage.EID {
	// EIDs continue the base range in global ingest order.
	e := storage.EID(baseEdges + d.edgeCount.Load())
	d.out[src] = append(d.out[src], deltaEdge{e: e, other: dst, typeID: typeID})
	d.in[dst] = append(d.in[dst], deltaEdge{e: e, other: src, typeID: typeID})
	d.edgeCount.Add(1)
	return e
}

func (d *delta) setPropLocked(v storage.VID, base int64, keyID int, val graph.Value) {
	if int64(v) >= base {
		dv := &d.verts[int64(v)-base]
		if dv.props == nil {
			dv.props = map[int]graph.Value{}
		}
		dv.props[keyID] = val
		return
	}
	m := d.propOver[v]
	if m == nil {
		m = map[int]graph.Value{}
		d.propOver[v] = m
	}
	m[keyID] = val
}

// addLabelLocked records a label addition; baseHas reports whether the
// base record already carries it (pre-read by the caller outside the
// lock), keeping byLabel duplicate-free.
func (d *delta) addLabelLocked(v storage.VID, base int64, id int, baseHas bool) {
	if baseHas {
		return
	}
	if int64(v) >= base {
		dv := &d.verts[int64(v)-base]
		for _, l := range dv.labelIDs {
			if l == id {
				return
			}
		}
		dv.labelIDs = append(dv.labelIDs, id)
	} else {
		for _, l := range d.labelAdds[v] {
			if l == id {
				return
			}
		}
		d.labelAdds[v] = append(d.labelAdds[v], id)
	}
	d.byLabel[id] = append(d.byLabel[id], v)
}
