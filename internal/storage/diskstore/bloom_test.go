package diskstore

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// TestBloomNoFalseNegatives pins the bloom contract the scan planner
// relies on: a negative answer is definitive.
func TestBloomNoFalseNegatives(t *testing.T) {
	const n = 5000
	b := newBloom(n)
	for i := 0; i < n; i++ {
		b.add(hashValue(graph.S(fmt.Sprintf("member-%d", i))))
	}
	for i := 0; i < n; i++ {
		if !b.mayHave(hashValue(graph.S(fmt.Sprintf("member-%d", i)))) {
			t.Fatalf("false negative for member-%d", i)
		}
	}
}

// TestBloomFalsePositiveRate checks the sizing constants deliver the
// advertised rate: at design capacity (bloomBitsPerEntry bits per entry,
// bloomK probes) the false-positive rate must stay at or below 1%.
func TestBloomFalsePositiveRate(t *testing.T) {
	const (
		n      = 5000
		probes = 20000
	)
	b := newBloom(n)
	for i := 0; i < n; i++ {
		b.add(hashValue(graph.S(fmt.Sprintf("member-%d", i))))
	}
	fp := 0
	for i := 0; i < probes; i++ {
		if b.mayHave(hashValue(graph.S(fmt.Sprintf("absent-%d", i)))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.01 {
		t.Fatalf("false-positive rate %.4f (%d/%d) exceeds 1%% at design capacity", rate, fp, probes)
	}
}

// TestBloomIntValues checks non-string values hash through the same
// canonical-key path (ints and strings must not collide systematically).
func TestBloomIntValues(t *testing.T) {
	const n = 1000
	b := newBloom(n)
	for i := 0; i < n; i++ {
		b.add(hashValue(graph.I(int64(i))))
	}
	for i := 0; i < n; i++ {
		if !b.mayHave(hashValue(graph.I(int64(i)))) {
			t.Fatalf("false negative for int %d", i)
		}
	}
	fp := 0
	for i := n; i < n+10000; i++ {
		if b.mayHave(hashValue(graph.I(int64(i)))) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.01 {
		t.Fatalf("int false-positive rate %.4f exceeds 1%%", rate)
	}
}
