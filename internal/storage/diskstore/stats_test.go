package diskstore

import (
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

// TestStatisticsRoundTrip checks the v5 statistics block end to end:
// counts and bloom answers survive Flush/Close/Open via index.db, and
// deleting index.db degrades to conservative answers instead of wrong
// ones.
func TestStatisticsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandomBulk(s, 77, 120, 300, 32); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var st storage.Statistics = s
	etc := st.EdgeTypeCounts()
	if etc == nil {
		t.Fatal("finalized v5 store returned nil EdgeTypeCounts")
	}
	totalE := 0
	for _, c := range etc {
		totalE += c
	}
	if totalE != s.NumEdges() {
		t.Fatalf("edge-type counts sum to %d, store has %d edges", totalE, s.NumEdges())
	}
	lc := st.LabelCounts()
	for name, c := range lc {
		if got := s.CountLabel(name); got != c {
			t.Fatalf("LabelCounts[%s] = %d, CountLabel = %d", name, c, got)
		}
	}

	// A value that exists must probe true (definitive-false contract);
	// find one through the public read surface.
	var haveLabel, haveKey string
	var haveVal graph.Value
	s.ForEachVertex("A", func(v storage.VID) bool {
		for _, k := range s.PropKeys(v) {
			if val, ok := s.Prop(v, k); ok {
				haveLabel, haveKey, haveVal = "A", k, val
				return false
			}
		}
		return true
	})
	if haveLabel == "" {
		t.Fatal("test graph has no A-labeled vertex with a property")
	}
	if !st.MayHaveProp(haveLabel, haveKey, haveVal) {
		t.Fatalf("MayHaveProp(%s, %s, %v) = false for a present value", haveLabel, haveKey, haveVal)
	}
	if st.MayHaveProp("NoSuchLabel", haveKey, haveVal) {
		t.Fatal("MayHaveProp with unknown label should be definitively false")
	}
	if st.MayHaveProp(haveLabel, "noSuchKey", haveVal) {
		t.Fatal("MayHaveProp with unknown key should be definitively false")
	}
	// Deterministic absent value: with ~0.8% FP rate this specific probe
	// coming back true would be a (fixed, reproducible) hash collision.
	if st.MayHaveProp(haveLabel, haveKey, graph.S("definitely-absent-sentinel")) {
		t.Fatal("MayHaveProp for an absent value probed true (bloom collision in fixed test data)")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: stats must come back from the persisted index block.
	re, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Format().IndexLoaded {
		t.Fatal("reopened store did not load index.db")
	}
	etc2 := storage.Statistics(re).EdgeTypeCounts()
	if len(etc2) != len(etc) {
		t.Fatalf("reopened EdgeTypeCounts has %d types, want %d", len(etc2), len(etc))
	}
	for k, v := range etc {
		if etc2[k] != v {
			t.Fatalf("reopened EdgeTypeCounts[%s] = %d, want %d", k, etc2[k], v)
		}
	}
	if !storage.Statistics(re).MayHaveProp(haveLabel, haveKey, haveVal) {
		t.Fatal("reopened store lost a present value from its bloom filter")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Without index.db the store still opens (index rebuilt by scan) but
	// has no statistics: nil counts, conservative "maybe" probes.
	if err := os.Remove(dir + "/index.db"); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if got := storage.Statistics(cold).EdgeTypeCounts(); got != nil {
		t.Fatalf("store without index.db returned EdgeTypeCounts %v, want nil", got)
	}
	if !storage.Statistics(cold).MayHaveProp(haveLabel, haveKey, graph.S("definitely-absent-sentinel")) {
		t.Fatal("store without statistics must answer MayHaveProp conservatively (true)")
	}
}

// TestStatisticsLiveDelta checks that live writes flip bloom answers to
// conservative until the delta folds: a fresh value applied via
// ApplyMutations must probe "maybe" immediately, and definitively after
// Compact rebuilds the filters.
func TestStatisticsLiveDelta(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := storetest.BuildRandomBulk(s, 78, 60, 150, 32); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.Live() {
		t.Fatal("finalized store with edges should be live")
	}
	val := graph.S("live-only-value")
	if storage.Statistics(s).MayHaveProp("A", "p0", val) {
		t.Fatal("value not yet written probed true on a clean base")
	}
	res, err := s.ApplyMutations([]storage.Mutation{
		{Op: storage.MutAddVertex, Labels: []string{"A"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyMutations([]storage.Mutation{
		{Op: storage.MutSetProp, V: res.Vertices[0], Key: "p0", Value: val},
	}); err != nil {
		t.Fatal(err)
	}
	if !storage.Statistics(s).MayHaveProp("A", "p0", val) {
		t.Fatal("dirty delta must force conservative MayHaveProp answers")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if !storage.Statistics(s).MayHaveProp("A", "p0", val) {
		t.Fatal("folded value must be in the rebuilt bloom filters")
	}
	if storage.Statistics(s).MayHaveProp("A", "p0", graph.S("still-absent-sentinel")) {
		t.Fatal("absent value probed true after fold (bloom collision in fixed test data)")
	}
}
