package diskstore

// index.db persists the store's derived open-time structures — the
// label-scan index and (redundantly, for validation) the symbol tables —
// so reopening a v4 store costs O(index size) instead of the full vertex
// scan legacy formats pay. The file is advisory: it is rewritten on every
// Flush via writeFileAtomic, carries a CRC, and is cross-checked against
// the manifest on load; if it is missing, torn, or out of step, Open
// silently falls back to rebuilding the index by scanning vertices.
//
// Layout (little-endian):
//
//	magic   [8]byte  "PGSIDX04"
//	crc32   u32      IEEE CRC of everything after this field
//	numVertices, numEdges, numDegs  u64 × 3   (validated vs manifest)
//	labels, types, keys   3 × (u32 count, then per entry u32 len + bytes)
//	label index           u32 count (== len(labels)), then per label:
//	                      u64 entry count + that many u64 VIDs, in the
//	                      in-memory (insertion) order of the scan index
import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

const indexMagic = "PGSIDX04"

// indexPath is the index file of one base generation (index.db, or
// index.db.gN for generation N — the index describes one generation's
// postings, so it lives and dies with that generation's files).
func (s *Store) indexPath(gen int64) string {
	return filepath.Join(s.dir, genFileName(indexFileName, gen))
}

// writeIndex serializes the epoch's label index and the store's symbol
// tables and atomically replaces the generation's index file.
func (s *Store) writeIndex(ep *epoch) error {
	var buf []byte
	var scratch [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	str := func(x string) {
		u32(uint32(len(x)))
		buf = append(buf, x...)
	}
	u64(uint64(ep.numVertices))
	u64(uint64(ep.numEdges))
	u64(uint64(ep.numDegs))
	for _, table := range [][]string{s.labels, s.types, s.keys} {
		u32(uint32(len(table)))
		for _, entry := range table {
			str(entry)
		}
	}
	u32(uint32(len(s.labels)))
	for id := range s.labels {
		vids := ep.byLabel[id]
		u64(uint64(len(vids)))
		for _, v := range vids {
			u64(uint64(v))
		}
	}
	out := make([]byte, 0, len(indexMagic)+4+len(buf))
	out = append(out, indexMagic...)
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(buf))
	out = append(out, scratch[:4]...)
	out = append(out, buf...)
	return writeFileAtomic(s.indexPath(ep.gen), out)
}

// loadIndex restores the label index from index.db, reporting success.
// Any inconsistency — missing file, bad magic or CRC, counts or symbol
// tables disagreeing with the already-loaded manifest — makes it report
// false without touching store state, and the caller rebuilds by
// scanning.
func (s *Store) loadIndex(ep *epoch) bool {
	data, err := os.ReadFile(s.indexPath(ep.gen))
	if err != nil || len(data) < len(indexMagic)+4 || string(data[:len(indexMagic)]) != indexMagic {
		return false
	}
	payload := data[len(indexMagic)+4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(indexMagic):]) {
		return false
	}
	r := idxReader{data: payload, ok: true}
	if int64(r.u64()) != ep.numVertices || int64(r.u64()) != ep.numEdges || int64(r.u64()) != ep.numDegs {
		return false
	}
	for _, table := range [][]string{s.labels, s.types, s.keys} {
		if int(r.u32()) != len(table) {
			return false
		}
		for _, want := range table {
			if r.str() != want {
				return false
			}
		}
	}
	if int(r.u32()) != len(s.labels) {
		return false
	}
	byLabel := make(map[int][]storage.VID, len(s.labels))
	for id := range s.labels {
		n := r.u64()
		if !r.ok || n > uint64(ep.numVertices) {
			return false
		}
		vids := make([]storage.VID, 0, n)
		for i := uint64(0); i < n; i++ {
			v := storage.VID(r.u64())
			if v < 0 || int64(v) >= ep.numVertices {
				return false
			}
			vids = append(vids, v)
		}
		if len(vids) > 0 {
			byLabel[id] = vids
		}
	}
	if !r.ok || len(r.data) != 0 {
		return false
	}
	ep.byLabel = byLabel
	return true
}

// idxReader is a bounds-checked little-endian decoder; after any
// overrun, ok is false and every read returns zero values.
type idxReader struct {
	data []byte
	ok   bool
}

func (r *idxReader) take(n int) []byte {
	if !r.ok || len(r.data) < n {
		r.ok = false
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *idxReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *idxReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *idxReader) str() string {
	n := r.u32()
	if !r.ok || uint64(n) > uint64(len(r.data)) {
		r.ok = false
		return ""
	}
	return string(r.take(int(n)))
}
