package diskstore

// index.db persists the store's derived open-time structures — the
// label-scan index and (redundantly, for validation) the symbol tables —
// so reopening a v4 store costs O(index size) instead of the full vertex
// scan legacy formats pay. The file is advisory: it is rewritten on every
// Flush via writeFileAtomic, carries a CRC, and is cross-checked against
// the manifest on load; if it is missing, torn, or out of step, Open
// silently falls back to rebuilding the index by scanning vertices.
//
// Layout (little-endian):
//
//	magic   [8]byte  "PGSIDX04" (v4 stores) / "PGSIDX05" (v5 stores)
//	crc32   u32      IEEE CRC of everything after this field
//	numVertices, numEdges, numDegs  u64 × 3   (validated vs manifest)
//	labels, types, keys   3 × (u32 count, then per entry u32 len + bytes)
//	label index           u32 count (== len(labels)), then per label:
//	                      u64 entry count + that many u64 VIDs, in the
//	                      in-memory (insertion) order of the scan index
//
// A v5 index appends a statistics block after the postings:
//
//	present  u8   0 = the epoch carried no statistics (stop here),
//	              1 = counts + blooms follow
//	type counts    u32 count, then u64 per edge type (typeID order)
//	bloom filters  u32 count, then per filter: u32 labelID, u32 keyID,
//	               u64 m (bits), u32 k, and m/8 bytes of filter bits
//
// The block is advisory like everything else here: a store that loads
// postings but not statistics just answers "maybe" to every bloom probe.
import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

const (
	indexMagicV4 = "PGSIDX04"
	indexMagicV5 = "PGSIDX05"
)

// indexMagicFor returns the magic the epoch's format version writes — v4
// keeps its exact legacy layout so downgrade-free round trips stay
// byte-compatible; v5 adds the statistics block.
func indexMagicFor(ep *epoch) string {
	if ep.version >= 5 {
		return indexMagicV5
	}
	return indexMagicV4
}

// indexPath is the index file of one base generation (index.db, or
// index.db.gN for generation N — the index describes one generation's
// postings, so it lives and dies with that generation's files).
func (s *Store) indexPath(gen int64) string {
	return filepath.Join(s.dir, genFileName(indexFileName, gen))
}

// writeIndex serializes the epoch's label index and the store's symbol
// tables and atomically replaces the generation's index file.
func (s *Store) writeIndex(ep *epoch) error {
	var buf []byte
	var scratch [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	str := func(x string) {
		u32(uint32(len(x)))
		buf = append(buf, x...)
	}
	u64(uint64(ep.numVertices))
	u64(uint64(ep.numEdges))
	u64(uint64(ep.numDegs))
	for _, table := range [][]string{s.labels, s.types, s.keys} {
		u32(uint32(len(table)))
		for _, entry := range table {
			str(entry)
		}
	}
	u32(uint32(len(s.labels)))
	for id := range s.labels {
		vids := ep.byLabel[id]
		u64(uint64(len(vids)))
		for _, v := range vids {
			u64(uint64(v))
		}
	}
	magic := indexMagicFor(ep)
	if magic == indexMagicV5 {
		if !ep.statsValid {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			u32(uint32(len(ep.typeCounts)))
			for _, c := range ep.typeCounts {
				u64(uint64(c))
			}
			u32(uint32(len(ep.blooms)))
			// Map order is fine: entries carry their own (label, key) ids.
			for k, b := range ep.blooms {
				u32(uint32(k >> 32))
				u32(uint32(k))
				u64(b.m())
				u32(b.k)
				for _, w := range b.bits {
					u64(w)
				}
			}
		}
	}
	out := make([]byte, 0, len(magic)+4+len(buf))
	out = append(out, magic...)
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(buf))
	out = append(out, scratch[:4]...)
	out = append(out, buf...)
	return writeFileAtomic(s.indexPath(ep.gen), out)
}

// loadIndex restores the label index from index.db, reporting success.
// Any inconsistency — missing file, bad magic or CRC, counts or symbol
// tables disagreeing with the already-loaded manifest — makes it report
// false without touching store state, and the caller rebuilds by
// scanning.
func (s *Store) loadIndex(ep *epoch) bool {
	magic := indexMagicFor(ep)
	data, err := os.ReadFile(s.indexPath(ep.gen))
	if err != nil || len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return false
	}
	payload := data[len(magic)+4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(magic):]) {
		return false
	}
	r := idxReader{data: payload, ok: true}
	if int64(r.u64()) != ep.numVertices || int64(r.u64()) != ep.numEdges || int64(r.u64()) != ep.numDegs {
		return false
	}
	for _, table := range [][]string{s.labels, s.types, s.keys} {
		if int(r.u32()) != len(table) {
			return false
		}
		for _, want := range table {
			if r.str() != want {
				return false
			}
		}
	}
	if int(r.u32()) != len(s.labels) {
		return false
	}
	byLabel := make(map[int][]storage.VID, len(s.labels))
	for id := range s.labels {
		n := r.u64()
		if !r.ok || n > uint64(ep.numVertices) {
			return false
		}
		vids := make([]storage.VID, 0, n)
		for i := uint64(0); i < n; i++ {
			v := storage.VID(r.u64())
			if v < 0 || int64(v) >= ep.numVertices {
				return false
			}
			vids = append(vids, v)
		}
		if len(vids) > 0 {
			byLabel[id] = vids
		}
	}
	// v5 statistics block — consumed before the trailing-bytes check so a
	// stats-bearing file still validates end-to-end.
	var typeCounts []int64
	var blooms map[uint64]*bloom
	statsValid := false
	if magic == indexMagicV5 {
		present := r.take(1)
		if present == nil {
			return false
		}
		if present[0] == 1 {
			nt := r.u32()
			if !r.ok || uint64(nt) > uint64(len(r.data))/8 {
				return false
			}
			typeCounts = make([]int64, nt)
			for i := range typeCounts {
				typeCounts[i] = int64(r.u64())
			}
			nb := r.u32()
			if !r.ok || nb > uint32(bloomMaxBits) {
				return false
			}
			blooms = make(map[uint64]*bloom, nb)
			for i := uint32(0); i < nb; i++ {
				labelID := r.u32()
				keyID := r.u32()
				m := r.u64()
				k := r.u32()
				if !r.ok || m == 0 || m%64 != 0 || m > bloomMaxBits || k == 0 || k > 64 {
					return false
				}
				bits := make([]uint64, m/64)
				for j := range bits {
					bits[j] = r.u64()
				}
				if !r.ok {
					return false
				}
				blooms[bloomKey(int(labelID), int(keyID))] = &bloom{k: k, bits: bits}
			}
			statsValid = true
		}
	}
	if !r.ok || len(r.data) != 0 {
		return false
	}
	ep.byLabel = byLabel
	ep.typeCounts = typeCounts
	ep.blooms = blooms
	ep.statsValid = statsValid
	return true
}

// idxReader is a bounds-checked little-endian decoder; after any
// overrun, ok is false and every read returns zero values.
type idxReader struct {
	data []byte
	ok   bool
}

func (r *idxReader) take(n int) []byte {
	if !r.ok || len(r.data) < n {
		r.ok = false
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *idxReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *idxReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *idxReader) str() string {
	n := r.u32()
	if !r.ok || uint64(n) > uint64(len(r.data)) {
		r.ok = false
		return ""
	}
	return string(r.take(int(n)))
}
