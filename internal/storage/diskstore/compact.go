package diskstore

// Background compaction: fold the base plus a frozen delta snapshot into
// a fresh generation of base files while reads and writes keep flowing.
//
// The fold never touches the files serving reads. It freezes the delta at
// a WAL fence W (everything with seq <= W goes into the new base; younger
// mutations keep landing in the live delta and survive the swap), builds
// generation N+1 in the fold.tmp directory with the ordinary exclusive
// build path, renames the finished files to their name.gN+1 homes, and
// commits with one manifest rename naming the new generation and fence.
// The swap then retargets s.cur under liveMu/epMu; pinned snapshots keep
// reading the old generation's files until their pins drain, at which
// point the superseded files are deleted and the delta's folded prefix
// pruned.
//
// Crash safety needs no marker file: before the manifest rename the
// manifest still names the old generation (the new generation's files are
// unreachable orphans, swept at next Open); after it, the new generation
// is complete and durable (files are fsynced before the rename) and WAL
// replay skips the folded prefix via the wal_seq fence.

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// foldTmpDir is the scratch directory (inside the store directory) where
// a background fold builds the next generation. Its contents are never
// reachable from a manifest; Open sweeps a leftover one.
const foldTmpDir = "fold.tmp"

// foldBatch is the bulk-ingest batch size the fold feeds the new
// generation's builder with.
const foldBatch = 4096

// Compact folds accumulated live writes into a fresh type-segmented base
// generation. On a live store it runs as a background fold — concurrent
// reads and ApplyMutations proceed throughout, with only a bounded pause
// at the commit point — and blocks until the fold commits (callers
// wanting fire-and-forget run it from a goroutine). On a store still in
// build mode it takes the exclusive Finalize+Flush path, under the usual
// exclusive-access contract. Only one compaction may run at a time; a
// concurrent call returns storage.ErrCompactInProgress.
func (s *Store) Compact() error {
	if !s.folding.CompareAndSwap(false, true) {
		return storage.ErrCompactInProgress
	}
	defer func() {
		s.foldProgress.Store(0)
		s.folding.Store(false)
	}()
	if !s.liveMode.Load() {
		if err := s.Finalize(); err != nil {
			return err
		}
		if err := s.Flush(); err != nil {
			return err
		}
		s.compactions.Add(1)
		return nil
	}
	return s.foldBackground()
}

// foldBackground is the live-store fold. See the package comment above
// for the protocol; the numbered stages below follow it.
func (s *Store) foldBackground() error {
	// Stage 1 — freeze. Under liveMu no batch is being appended or
	// applied, so the WAL's last appended seq is exactly the delta's
	// applied watermark: freezing at fence = lastAppended captures whole
	// batches only. The byte size at the same instant is the rotate
	// offset (every record below it has seq <= fence).
	s.liveMu.Lock()
	old := s.cur
	d := s.delta
	fence := s.walFoldedSeq
	var walOff int64
	w := s.wal.Load()
	if w != nil {
		fence = w.lastAppended()
		walOff = w.sizeNow()
	}
	alreadyFolded := fence == old.baseSeq
	win := vis{baseVerts: old.numVertices, baseEdges: old.numEdges, baseSeq: old.baseSeq, maxSeq: fence}
	fd := d.freeze(win)
	s.symMu.RLock()
	labels := append([]string(nil), s.labels...)
	types := append([]string(nil), s.types...)
	keys := append([]string(nil), s.keys...)
	s.symMu.RUnlock()
	s.liveMu.Unlock()

	if alreadyFolded && old.version >= formatVersion && len(fd.verts) == 0 && len(fd.edges) == 0 &&
		len(fd.labelAdds) == 0 && len(fd.propOver) == 0 {
		return nil // nothing new since the last fold, layout current
	}

	// Stage 2 — build generation gen+1 in fold.tmp using the ordinary
	// exclusive build path on a private Store.
	newGen := old.gen + 1
	foldDir := filepath.Join(s.dir, foldTmpDir)
	if err := os.RemoveAll(foldDir); err != nil {
		return err
	}
	b, err := Open(foldDir, Options{PageSize: s.opts.PageSize, CachePages: s.opts.CachePages})
	if err != nil {
		return err
	}
	fail := func(err error) error {
		b.cur.closeFiles()
		os.RemoveAll(foldDir)
		return err
	}
	b.seedSymbols(labels, types, keys)

	total := 2*old.numVertices + old.numEdges + int64(len(fd.verts)) + int64(len(fd.edges)) + 1
	var done int64
	tick := func(n int64) {
		done += n
		s.foldProgress.Store(done * 1000 / total)
	}
	labelNames := func(ids []int) []string {
		out := make([]string, 0, len(ids))
		for _, id := range ids {
			out = append(out, labels[id])
		}
		return out
	}

	// Vertices: old base (with frozen label additions merged), then the
	// frozen delta vertices in VID order — so every vertex keeps its ID.
	vbatch := make([]storage.BulkVertex, 0, foldBatch)
	flushV := func() error {
		if len(vbatch) == 0 {
			return nil
		}
		if _, err := b.AddVertexBatch(vbatch); err != nil {
			return err
		}
		tick(int64(len(vbatch)))
		vbatch = vbatch[:0]
		return nil
	}
	for v := int64(0); v < old.numVertices; v++ {
		rec, err := old.readVertex(storage.VID(v))
		if err != nil {
			return fail(err)
		}
		ids := labelBitsToIDs(rec.labels)
		ids = append(ids, fd.labelAdds[storage.VID(v)]...)
		vbatch = append(vbatch, storage.BulkVertex{Labels: labelNames(ids)})
		if len(vbatch) == foldBatch {
			if err := flushV(); err != nil {
				return fail(err)
			}
		}
	}
	for i := range fd.verts {
		vbatch = append(vbatch, storage.BulkVertex{Labels: labelNames(fd.verts[i].labelIDs)})
		if len(vbatch) == foldBatch {
			if err := flushV(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flushV(); err != nil {
		return fail(err)
	}

	// Properties: each base vertex's chain (frozen overrides winning per
	// key), then override-only keys, then the frozen delta vertices'
	// props. SetProp overwrites in place when a key repeats, so feeding
	// chain order is exact.
	for v := int64(0); v < old.numVertices; v++ {
		rec, err := old.readVertex(storage.VID(v))
		if err != nil {
			return fail(err)
		}
		over := fd.propOver[storage.VID(v)]
		var seen map[int]bool
		if len(over) > 0 {
			seen = make(map[int]bool, len(over))
		}
		for p := rec.firstProp; p != 0; {
			pr, err := old.readProp(p - 1)
			if err != nil {
				return fail(err)
			}
			keyID := int(pr.keyID)
			val, ok := over[keyID]
			if !ok {
				if val, err = old.decodeValue(pr); err != nil {
					return fail(err)
				}
			}
			if err := b.SetProp(storage.VID(v), keys[keyID], val); err != nil {
				return fail(err)
			}
			if seen != nil {
				seen[keyID] = true
			}
			p = pr.next
		}
		for keyID, val := range over {
			if !seen[keyID] {
				if err := b.SetProp(storage.VID(v), keys[keyID], val); err != nil {
					return fail(err)
				}
			}
		}
		tick(1)
	}
	for i := range fd.verts {
		fv := &fd.verts[i]
		for keyID, val := range fv.props {
			if err := b.SetProp(fv.v, keys[keyID], val); err != nil {
				return fail(err)
			}
		}
	}

	// Edges: old base in EID order, then frozen delta edges in EID
	// order — EIDs are renumbered by the builder's Finalize anyway (the
	// type-segmented rewrite), matching the documented Compact contract.
	ebatch := make([]storage.BulkEdge, 0, foldBatch)
	flushE := func() error {
		if len(ebatch) == 0 {
			return nil
		}
		if err := b.AddEdgeBatch(ebatch); err != nil {
			return err
		}
		tick(int64(len(ebatch)))
		ebatch = ebatch[:0]
		return nil
	}
	// The layout-aware enumerator reads records or compressed segments,
	// whichever the old epoch holds.
	if err := old.forEachEdgeLite(func(el edgeLite) error {
		ebatch = append(ebatch, storage.BulkEdge{Src: storage.VID(el.src), Dst: storage.VID(el.dst), Type: types[el.typeID]})
		if len(ebatch) == foldBatch {
			return flushE()
		}
		return nil
	}); err != nil {
		return fail(err)
	}
	for _, fe := range fd.edges {
		ebatch = append(ebatch, storage.BulkEdge{Src: fe.src, Dst: fe.dst, Type: types[fe.typeID]})
		if len(ebatch) == foldBatch {
			if err := flushE(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flushE(); err != nil {
		return fail(err)
	}
	if err := b.Finalize(); err != nil {
		return fail(err)
	}
	if err := b.Flush(); err != nil {
		return fail(err)
	}
	// Flush wrote every dirty page and the index file, but pager writes
	// are not fsynced; the new generation must be durable before the
	// manifest can name it.
	for _, f := range b.cur.pager.files {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	bep := b.cur
	if err := bep.closeFiles(); err != nil {
		os.RemoveAll(foldDir)
		return err
	}

	// Stage 3 — move the finished files to their generation names. They
	// are orphans until the manifest commits (a crash here leaves them
	// for Open's sweep).
	for _, name := range append(append([]string(nil), baseFileNames[:]...), indexFileName) {
		if err := os.Rename(filepath.Join(foldDir, name), filepath.Join(s.dir, genFileName(name, newGen))); err != nil {
			s.removeGenFiles(newGen)
			os.RemoveAll(foldDir)
			return err
		}
	}
	if err := syncDir(s.dir); err != nil {
		s.removeGenFiles(newGen)
		os.RemoveAll(foldDir)
		return err
	}
	os.RemoveAll(foldDir) // only the builder's manifest.json remains

	var files [numFiles]*os.File
	for i, name := range baseFileNames {
		f, err := os.OpenFile(filepath.Join(s.dir, genFileName(name, newGen)), os.O_RDWR, 0o644)
		if err != nil {
			for _, g := range files[:i] {
				g.Close()
			}
			s.removeGenFiles(newGen)
			return err
		}
		files[i] = f
	}
	pg, err := newPager(files, s.opts.PageSize, s.opts.CachePages)
	if err != nil {
		for _, f := range files {
			f.Close()
		}
		s.removeGenFiles(newGen)
		return err
	}
	if s.opts.Mmap {
		pg.enableMmap(fileVertices, fileEdges)
	}
	newEp := &epoch{
		gen:         newGen,
		version:     bep.version,
		segmented:   true,
		compressed:  bep.compressed,
		edgeBytes:   bep.edgeBytes,
		pager:       pg,
		numVertices: bep.numVertices, numEdges: bep.numEdges,
		numProps: bep.numProps, numDegs: bep.numDegs, blobSize: bep.blobSize,
		byLabel:    bep.byLabel,
		typeCounts: bep.typeCounts, blooms: bep.blooms, statsValid: bep.statsValid,
		baseSeq: fence,
	}
	newEp.pins.Store(1) // the store's own reference

	// Stage 4 — commit. flushMu keeps a concurrent Flush from writing a
	// stale-generation manifest around ours; the manifest rename is the
	// commit point. Everything after it — WAL rotation, delta rebase,
	// epoch swap — happens under liveMu so writers observe the routing
	// change atomically. Lock order: flushMu before liveMu, everywhere.
	m := manifest{
		Version: newEp.version, Generation: newGen,
		Labels: labels, Types: types, Keys: keys,
		NumVertices: newEp.numVertices, NumEdges: newEp.numEdges, NumProps: newEp.numProps,
		NumDegs: newEp.numDegs, BlobSize: newEp.blobSize,
		Segmented:  true,
		Compressed: newEp.compressed,
		EdgeBytes:  newEp.edgeBytes,
		WalSeq:     fence,
	}
	data, err := json.Marshal(m)
	if err != nil {
		newEp.closeFiles()
		s.removeGenFiles(newGen)
		return err
	}
	s.flushMu.Lock()
	if err := writeFileAtomic(filepath.Join(s.dir, "manifest.json"), data); err != nil {
		s.flushMu.Unlock()
		newEp.closeFiles()
		s.removeGenFiles(newGen)
		return err
	}
	// The manifest now names a complete, durable generation — the commit
	// point is passed, so everything from here on completes the swap
	// unconditionally. A finalize marker still pending its committing
	// Flush (the in-process rewrite it guards finished before the fold
	// read the old files) can go, exactly as in Flush; a failed removal
	// is reported after the swap rather than unwinding the committed
	// fold (the marker only costs a refused Open, never corruption).
	markerErr := os.Remove(filepath.Join(s.dir, finalizeMarker))
	if os.IsNotExist(markerErr) {
		markerErr = nil
	}
	s.liveMu.Lock()
	if w := s.wal.Load(); w != nil {
		// Drop the folded WAL prefix. Failure is not fatal to the fold —
		// the manifest's fence already makes the prefix inert on replay —
		// and the log's sticky error will surface to the next writer.
		w.rotate(walOff)
	}
	s.walFoldedSeq = fence
	s.pendingCheckpoint = false
	// Young label/prop writes that landed on now-folded delta vertices
	// while the fold ran must move to the base-override maps before
	// routing flips (see delta.rebase).
	d.rebase(fence, newEp.numVertices)
	s.epMu.Lock()
	s.cur = newEp
	s.epMu.Unlock()
	s.generation.Store(newGen)
	old.retire = s.genFilePaths(old.gen)
	s.retired.Add(1)
	// The new generation's on-disk index carries the frozen symbol
	// tables; if live writes grew them mid-fold the next Flush must
	// rewrite it (loadIndex would reject the shorter tables anyway).
	s.symMu.RLock()
	s.indexCurrent = len(s.labels) == len(labels) && len(s.types) == len(types) && len(s.keys) == len(keys)
	s.symMu.RUnlock()
	s.dirty = false
	s.liveMu.Unlock()
	s.flushMu.Unlock()
	s.compactions.Add(1)
	s.foldProgress.Store(1000)

	// Drop the store's reference to the superseded epoch; its files are
	// reclaimed (and the delta's folded prefix pruned) once the last
	// pinned snapshot or in-flight read drains.
	if old.pins.Add(-1) == 0 {
		s.reclaimEpoch(old)
	}
	return markerErr
}

// seedSymbols pre-interns the frozen symbol tables into a fold's builder
// store, in order, so label/type/key IDs in the new generation match the
// IDs the frozen delta snapshot carries.
func (s *Store) seedSymbols(labels, types, keys []string) {
	for _, l := range labels {
		s.labelIDs[l] = len(s.labels)
		s.labels = append(s.labels, l)
	}
	for _, t := range types {
		s.typeIDs[t] = len(s.types)
		s.types = append(s.types, t)
	}
	for _, k := range keys {
		s.keyIDs[k] = len(s.keys)
		s.keys = append(s.keys, k)
	}
}

// genFilePaths lists one generation's files (the five record files plus
// its index), for the epoch retire list.
func (s *Store) genFilePaths(gen int64) []string {
	paths := make([]string, 0, numFiles+1)
	for _, name := range baseFileNames {
		paths = append(paths, filepath.Join(s.dir, genFileName(name, gen)))
	}
	return append(paths, s.indexPath(gen))
}

// removeGenFiles best-effort deletes a never-committed generation's
// files after a failed fold; anything left is swept at the next Open.
func (s *Store) removeGenFiles(gen int64) {
	for _, p := range s.genFilePaths(gen) {
		os.Remove(p)
	}
}
