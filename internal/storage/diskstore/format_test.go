package diskstore

// Format v4 tests: persisted index opens, type-segmented adjacency,
// bulk finalize, legacy v2/v3 compatibility, the committed golden v3
// fixture, and crash-safe (atomic) flushes.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cypher"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

// TestConformanceLegacyLayouts runs the full conformance suite against
// stores forced to write the v2, v3, and v4 (uncompressed) layouts,
// proving the v5 code keeps serving (and building) legacy stores
// correctly.
func TestConformanceLegacyLayouts(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		t.Run(map[int]string{2: "v2", 3: "v3", 4: "v4"}[version], func(t *testing.T) {
			storetest.Run(t, func(t *testing.T) storage.Builder {
				s, err := Open(t.TempDir(), Options{PageSize: 512, CachePages: 16, Format: version})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				t.Cleanup(func() {
					if err := s.Close(); err != nil {
						t.Errorf("Close: %v", err)
					}
				})
				return s
			})
		})
	}
}

// TestOpenUsesPersistedIndex is the acceptance gate for the persisted
// index: a cold open of a v4 store must read O(index) pages — here zero,
// since index.db bypasses the pager — while deleting index.db forces the
// legacy full-vertex scan, whose pager reads grow with the vertex count.
func TestOpenUsesPersistedIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	const nVertices = 2000
	for i := 0; i < nVertices; i++ {
		if _, err := s.AddVertex("L" + string(rune('A'+i%7))); err != nil {
			t.Fatal(err)
		}
	}
	want := s.CountLabel("LA")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Format().IndexLoaded {
		t.Error("v4 open did not use index.db")
	}
	if got := re.Stats().PageReads; got != 0 {
		t.Errorf("indexed open read %d pages; want 0 (no vertex scan)", got)
	}
	if got := re.CountLabel("LA"); got != want {
		t.Errorf("CountLabel(LA) from persisted index = %d, want %d", got, want)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Without the index file the store must still open — via the scan —
	// and that scan must touch O(vertices) pages, demonstrating exactly
	// the cost the index removes.
	if err := os.Remove(filepath.Join(dir, "index.db")); err != nil {
		t.Fatal(err)
	}
	scan, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	if scan.Format().IndexLoaded {
		t.Error("open without index.db claims IndexLoaded")
	}
	vertexPages := int64(nVertices * vertexRecSize / 512)
	if got := scan.Stats().PageReads; got < vertexPages {
		t.Errorf("scan open read %d pages, expected at least the %d vertex pages", got, vertexPages)
	}
	if got := scan.CountLabel("LA"); got != want {
		t.Errorf("CountLabel(LA) from scan = %d, want %d", got, want)
	}
}

// TestCorruptIndexFallsBackToScan flips a byte of index.db: the CRC must
// reject it and the open must silently rebuild by scanning.
func TestCorruptIndexFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 5, 60, 150); err != nil {
		t.Fatal(err)
	}
	want := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "index.db")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatalf("corrupt index.db made Open fail: %v", err)
	}
	defer re.Close()
	if re.Format().IndexLoaded {
		t.Error("corrupt index.db was accepted")
	}
	if got := storetest.Fingerprint(re); got != want {
		t.Error("scan fallback store diverges")
	}
}

// TestFlushIsAtomic: flushes must go through temp-file + rename, so no
// .tmp litter survives a clean Close, and leftover temp files from a
// simulated crash are harmless garbage, not store state.
func TestFlushIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 9, 30, 60); err != nil {
		t.Fatal(err)
	}
	want := storetest.Fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file %s survived Close", e.Name())
		}
	}
	// A crash between writing a temp file and renaming it leaves garbage
	// .tmp files; the committed manifest/index must win.
	for _, name := range []string{"manifest.json.tmp", "index.db.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatalf("leftover temp files broke Open: %v", err)
	}
	defer re.Close()
	if got := storetest.Fingerprint(re); got != want {
		t.Error("store state diverged in the presence of leftover temp files")
	}
}

// buildMixedHub builds a hub vertex with fan out-edges of several
// interleaved types — the worst case for filtering typed traversals.
func buildMixedHub(t *testing.T, s *Store, fan int, types []string) storage.VID {
	t.Helper()
	hub, err := s.AddVertex("Hub")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fan; i++ {
		v, err := s.AddVertex("Leaf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdge(hub, v, types[i%len(types)]); err != nil {
			t.Fatal(err)
		}
	}
	return hub
}

// TestSegmentedTypedTraversalReadsFewerPages is the acceptance gate for
// type-segmented adjacency: after Compact, a typed ForEachOut on a
// mixed-type hub must touch a small fraction of the pages the unsegmented
// chain walk touches, while visiting exactly the same edges.
func TestSegmentedTypedTraversalReadsFewerPages(t *testing.T) {
	const fan = 500
	types := []string{"a", "b", "c", "d", "e"}
	collect := func(s *Store, hub storage.VID, et string) (int, int64) {
		if err := s.DropCache(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		n := 0
		s.ForEachOut(hub, et, func(storage.EID, storage.VID) bool { n++; return true })
		return n, s.Stats().PageReads
	}

	plain := newTestStore(t, Options{PageSize: 512, CachePages: 64})
	plainHub := buildMixedHub(t, plain, fan, types)
	seg := newTestStore(t, Options{PageSize: 512, CachePages: 64})
	segHub := buildMixedHub(t, seg, fan, types)
	if seg.SegmentedAdjacency() {
		t.Fatal("incrementally built store claims segmentation")
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	if !seg.SegmentedAdjacency() {
		t.Fatal("Compact did not establish segmentation")
	}

	wantN, plainReads := collect(plain, plainHub, "b")
	gotN, segReads := collect(seg, segHub, "b")
	if wantN != fan/len(types) || gotN != wantN {
		t.Fatalf("typed traversal visited %d (segmented) vs %d (plain), want %d", gotN, wantN, fan/len(types))
	}
	// 500 edges at 64 B span ~63 pages at 512 B; one type's segment is
	// ~13 contiguous pages plus the vertex and degree records.
	if segReads >= plainReads/3 {
		t.Errorf("segmented typed traversal read %d pages vs %d unsegmented; expected well under a third", segReads, plainReads)
	}
	// Typed degrees keep answering from the degree chain after Compact.
	if got := seg.Degree(segHub, "b", true); got != wantN {
		t.Errorf("Degree after Compact = %d, want %d", got, wantN)
	}
	// And the untyped walk still sees every edge.
	n := 0
	seg.ForEachOut(segHub, "", func(storage.EID, storage.VID) bool { n++; return true })
	if n != fan {
		t.Errorf("untyped walk after Compact visited %d, want %d", n, fan)
	}
}

// runQuerySorted executes a Cypher query and returns its rows in
// comparison order.
func runQuerySorted(t *testing.T, g storage.Graph, src string) [][]string {
	t.Helper()
	q, err := cypher.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	query.SortRowsForComparison(res.Rows)
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		for _, v := range row {
			out[i] = append(out[i], v.String())
		}
	}
	return out
}

// upgradeQueries exercise label scans, typed expands in both directions,
// and typed aggregation over the BuildRandom vocabulary.
var upgradeQueries = []string{
	`MATCH (a:A)-[:r1]->(b) RETURN a.p0, b.p1`,
	`MATCH (a)-[:r2]->(b:B) RETURN COUNT(*)`,
	`MATCH (a:C)<-[:r3]-(b) RETURN a.p2, COUNT(b.p0)`,
}

// TestCompactUpgradeRoundTrip: open v3 → Compact → reopen as v4 →
// identical query results (and fingerprints, and fast-path equivalence).
func TestCompactUpgradeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v3, err := Open(dir, Options{PageSize: 512, CachePages: 32, Format: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(v3, 21, 80, 220); err != nil {
		t.Fatal(err)
	}
	if err := v3.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{PageSize: 512, CachePages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Format(); got.Version != 3 || got.Segmented || got.IndexLoaded {
		t.Fatalf("v3 store opened as %+v", got)
	}
	wantFP := storetest.Fingerprint(s)
	var wantRows [][][]string
	for _, q := range upgradeQueries {
		wantRows = append(wantRows, runQuerySorted(t, s, q))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	v4, err := Open(dir, Options{PageSize: 512, CachePages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer v4.Close()
	if got := v4.Format(); got.Version != formatVersion || !got.Segmented || !got.IndexLoaded {
		t.Fatalf("upgraded store opened as %+v, want v%d segmented+indexed", got, formatVersion)
	}
	if got := storetest.Fingerprint(v4); got != wantFP {
		t.Error("upgraded store contents diverge from the v3 original")
	}
	storetest.CheckFastEquivalence(t, v4, storage.Fast(v4))
	for i, q := range upgradeQueries {
		got := runQuerySorted(t, v4, q)
		if len(got) != len(wantRows[i]) {
			t.Fatalf("query %q: %d rows after upgrade, want %d", q, len(got), len(wantRows[i]))
		}
		for r := range got {
			for c := range got[r] {
				if got[r][c] != wantRows[i][r][c] {
					t.Fatalf("query %q row %d col %d: %q after upgrade, want %q", q, r, c, got[r][c], wantRows[i][r][c])
				}
			}
		}
	}
}

// copyDir copies the flat fixture directory into a scratch dir so tests
// never mutate the committed golden files.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestGoldenV3Store opens the committed previous-release fixture
// (testdata/golden-v3, written by the v3 code before the v4 refactor),
// verifies every observable bit of it against the recorded fingerprint,
// queries it, and upgrades it — the CI format-compat gate.
func TestGoldenV3Store(t *testing.T) {
	want, err := os.ReadFile("testdata/golden-v3/FINGERPRINT.txt")
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	dir := copyDir(t, "testdata/golden-v3")
	s, err := Open(dir, Options{PageSize: 512, CachePages: 32})
	if err != nil {
		t.Fatalf("golden v3 store rejected: %v", err)
	}
	if got := s.Format(); got.Version != 3 {
		t.Fatalf("golden store opened as v%d, want v3", got.Version)
	}
	if got := storetest.Fingerprint(s); got != string(want) {
		t.Error("golden v3 store no longer reproduces its recorded fingerprint")
	}
	storetest.CheckFastEquivalence(t, s, storage.Fast(s))
	rows := runQuerySorted(t, s, upgradeQueries[0])
	if len(rows) == 0 {
		t.Error("golden store query returned no rows")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	v4, err := Open(dir, Options{PageSize: 512, CachePages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer v4.Close()
	if got := v4.Format(); got.Version != formatVersion || !got.IndexLoaded {
		t.Fatalf("upgraded golden store opened as %+v", got)
	}
	if got := storetest.Fingerprint(v4); got != string(want) {
		t.Error("upgraded golden store diverges from the recorded fingerprint")
	}
}

// TestGoldenV4Store opens the committed v4 fixture (testdata/golden-v4,
// written with Options{Format: 4} before compression became the
// default: segmented adjacency, uncompressed 64-byte edge records, a
// PGSIDX04 index), verifies it bit for bit against its recorded
// fingerprint, queries it, and Compacts it — which must upgrade it to
// the compressed v5 layout with identical observable contents and a
// populated statistics block.
//
// Regenerate with:
//
//	s, _ := Open(dir, Options{PageSize: 512, CachePages: 64, Format: 4})
//	storetest.BuildRandomBulk(s, 21, 60, 160, 32)
//	fp := storetest.Fingerprint(s); s.Close()  // then write FINGERPRINT.txt
func TestGoldenV4Store(t *testing.T) {
	want, err := os.ReadFile("testdata/golden-v4/FINGERPRINT.txt")
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	dir := copyDir(t, "testdata/golden-v4")
	s, err := Open(dir, Options{PageSize: 512, CachePages: 32})
	if err != nil {
		t.Fatalf("golden v4 store rejected: %v", err)
	}
	if got := s.Format(); got.Version != 4 || !got.Segmented || !got.IndexLoaded || got.Compressed {
		t.Fatalf("golden store opened as %+v, want v4 segmented+indexed uncompressed", got)
	}
	if got := storetest.Fingerprint(s); got != string(want) {
		t.Error("golden v4 store no longer reproduces its recorded fingerprint")
	}
	storetest.CheckFastEquivalence(t, s, storage.Fast(s))
	var wantRows [][][]string
	for _, q := range upgradeQueries {
		wantRows = append(wantRows, runQuerySorted(t, s, q))
	}
	if len(wantRows[0]) == 0 {
		t.Error("golden store query returned no rows")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	v5, err := Open(dir, Options{PageSize: 512, CachePages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer v5.Close()
	if got := v5.Format(); got.Version != formatVersion || !got.Compressed || !got.IndexLoaded {
		t.Fatalf("upgraded golden store opened as %+v, want v%d compressed+indexed", got, formatVersion)
	}
	if got := storetest.Fingerprint(v5); got != string(want) {
		t.Error("upgraded golden store diverges from the recorded fingerprint")
	}
	for i, q := range upgradeQueries {
		got := runQuerySorted(t, v5, q)
		if len(got) != len(wantRows[i]) {
			t.Fatalf("query %q: %d rows after upgrade, want %d", q, len(got), len(wantRows[i]))
		}
		for r := range got {
			for c := range got[r] {
				if got[r][c] != wantRows[i][r][c] {
					t.Fatalf("query %q row %d col %d: %q after upgrade, want %q", q, r, c, got[r][c], wantRows[i][r][c])
				}
			}
		}
	}
	// The upgrade must also have produced the v5 statistics block.
	if storage.Statistics(v5).EdgeTypeCounts() == nil {
		t.Error("upgraded golden store has no persisted edge-type counts")
	}
}

// TestBulkFlushAutoFinalizes: closing a store with pending bulk edges
// must finalize them — a reopened store sees fully linked adjacency.
func TestBulkFlushAutoFinalizes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.AddVertexBatch([]storage.BulkVertex{{Labels: []string{"N"}}, {Labels: []string{"N"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdgeBatch([]storage.BulkEdge{{Src: first, Dst: first + 1, Type: "t"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // no explicit Finalize
		t.Fatal(err)
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.SegmentedAdjacency() {
		t.Error("auto-finalized store not segmented")
	}
	if got := re.Degree(first, "t", true); got != 1 {
		t.Errorf("Degree = %d, want 1", got)
	}
	n := 0
	re.ForEachOut(first, "t", func(_ storage.EID, dst storage.VID) bool {
		if dst != first+1 {
			t.Errorf("edge points at %d, want %d", dst, first+1)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("adjacency walk saw %d edges, want 1", n)
	}
}

// TestDirtyFlushInvalidatesIndexFirst pins the crash-safety ordering:
// the first mutation removes index.db immediately — before any page
// write, and in particular before cache eviction can push a dirty page
// to disk — so a crash at any later point leaves no index rather than a
// stale one that still validates. The nasty case is a mutation invisible
// to the index's count/symbol validation — adding an existing label to
// an existing vertex.
func TestDirtyFlushInvalidatesIndexFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVertex("L"); err != nil {
		t.Fatal(err)
	}
	v1, err := s.AddVertex("M")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Format().IndexLoaded {
		t.Fatal("precondition: index not loaded")
	}
	// Counts and symbol tables are unchanged by this mutation, so the old
	// index would still pass validation if it survived.
	if err := re.AddLabel(v1, "L"); err != nil {
		t.Fatal(err)
	}
	// The mutation itself must have removed the index — eviction could
	// write the dirty vertex page to disk at any moment from here on.
	if _, err := os.Stat(re.indexPath(0)); !os.IsNotExist(err) {
		t.Fatalf("index.db still present after a mutation (stat err: %v)", err)
	}
	// Simulate a crash after the dirty page reaches disk and before any
	// Flush completes.
	if err := re.curEp().pager.flush(); err != nil {
		t.Fatal(err)
	}
	// (crash: no writeIndex, no manifest rewrite, no Close)

	crashed, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer crashed.Close()
	if crashed.Format().IndexLoaded {
		t.Error("crashed store loaded an index that predates its data")
	}
	if got := crashed.CountLabel("L"); got != 2 {
		t.Errorf("label scan after crash sees %d L-vertices, want 2 (stale index served?)", got)
	}
	// And the real Flush must behave identically up to its crash point:
	// a dirty store's Flush leaves a fresh, loadable index behind.
	if err := crashed.AddLabel(v1, "M"); err == nil {
		// v1 already has M; this is a no-op that must not dirty anything.
		_ = err
	}
	if err := crashed.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(crashed.indexPath(0)); err != nil {
		t.Errorf("Flush did not restore index.db: %v", err)
	}
}

// TestCleanCloseDoesNotRewrite: opening and closing a store without
// mutating it must leave index.db and manifest.json untouched — reading
// a store is not a write workload.
func TestCleanCloseDoesNotRewrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 3, 30, 60); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	old := time.Unix(1_000_000_000, 0)
	files := []string{"index.db", "manifest.json"}
	for _, f := range files {
		if err := os.Chtimes(filepath.Join(dir, f), old, old); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	re.CountLabel("A")
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if !st.ModTime().Equal(old) {
			t.Errorf("%s was rewritten by a read-only open/close cycle", f)
		}
	}
	// But a v4 store whose index is missing self-repairs on close.
	if err := os.Remove(filepath.Join(dir, "index.db")); err != nil {
		t.Fatal(err)
	}
	scan, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.db")); err != nil {
		t.Errorf("scan-opened store did not repair index.db on close: %v", err)
	}
}

// TestInterruptedFinalizeRefused: a finalize/compact that never committed
// leaves its marker behind, and Open must refuse the store instead of
// serving possibly half-rewritten edge records; a committed Compact
// leaves no marker.
func TestInterruptedFinalizeRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(s, 11, 40, 90); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, finalizeMarker)); !os.IsNotExist(err) {
		t.Fatalf("marker survived a committed Compact (stat err: %v)", err)
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the marker is on disk, the rewrite never
	// committed.
	if err := os.WriteFile(filepath.Join(dir, finalizeMarker), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PageSize: 512, CachePages: 16}); err == nil {
		t.Fatal("store with an in-flight finalize marker was opened")
	}
}

// TestAddEdgeBatchPartialFailureStillFinalizes: a batch that fails
// mid-way must leave the store flagged for finalize, so the appended
// prefix gets linked by the next Flush instead of becoming unreachable
// counted edges.
func TestAddEdgeBatchPartialFailureStillFinalizes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.AddVertexBatch([]storage.BulkVertex{{Labels: []string{"N"}}, {Labels: []string{"N"}}})
	if err != nil {
		t.Fatal(err)
	}
	batch := []storage.BulkEdge{
		{Src: first, Dst: first + 1, Type: "t"},
		{Src: first, Dst: 999, Type: "t"}, // out of range: fails after the first edge landed
	}
	if err := s.AddEdgeBatch(batch); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want the 1 successfully appended edge", got)
	}
	n := 0
	re.ForEachOut(first, "t", func(_ storage.EID, dst storage.VID) bool { n++; return true })
	if n != 1 {
		t.Errorf("appended edge unreachable after reopen: walk saw %d", n)
	}
}
