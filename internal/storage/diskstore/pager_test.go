package diskstore

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

func TestPagerShardCount(t *testing.T) {
	cases := []struct{ capacity, shards int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 2}, {16, 4}, {64, 16}, {256, 16}, {1024, 16},
	}
	for _, c := range cases {
		if got := pagerShards(c.capacity); got != c.shards {
			t.Errorf("pagerShards(%d) = %d, want %d", c.capacity, got, c.shards)
		}
	}
}

func TestPagerShardIndexInRange(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 64})
	p := s.curEp().pager
	if len(p.shards) != 16 {
		t.Fatalf("shards = %d, want 16", len(p.shards))
	}
	for f := fileID(0); f < numFiles; f++ {
		for pg := int64(0); pg < 10000; pg++ {
			sh := p.shardOf(pageKey{f, pg})
			found := false
			for i := range p.shards {
				if sh == &p.shards[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("shardOf(%d,%d) points outside the shard slice", f, pg)
			}
		}
	}
}

// TestPagerCapacityRespected checks that a read sweep far larger than the
// page budget leaves at most capacity frames resident: the per-shard clock
// sweeps actually evict.
func TestPagerCapacityRespected(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 16})
	if _, err := storetest.BuildRandom(s, 11, 300, 900); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	storetest.Fingerprint(s) // touches every record file end to end
	if got := s.curEp().pager.resident(); got > s.opts.CachePages {
		t.Errorf("%d pages resident after sweep, budget %d", got, s.opts.CachePages)
	}
	st := s.Stats()
	if st.PageMisses <= int64(s.opts.CachePages) {
		t.Errorf("only %d misses; sweep did not outrun the %d-page budget", st.PageMisses, s.opts.CachePages)
	}
}

// TestPagerConcurrentEvictionPressure is the shard-rewrite stress test:
// eight goroutines sweep the full read surface of a store whose page
// budget is a small fraction of its data, so shards constantly load and
// evict under concurrent access. Every sweep must observe exactly the
// serial state. Run under -race this proves loads, evictions, latches,
// and the atomic stats counters are data-race free.
func TestPagerConcurrentEvictionPressure(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 16})
	if _, err := storetest.BuildRandom(s, 99, 200, 600); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	want := storetest.Fingerprint(s)
	fg := storage.Fast(s)
	wantDeg := make([]int, s.NumVertices())
	for v := range wantDeg {
		wantDeg[v] = fg.DegreeID(storage.VID(v), fg.TypeID("r1"), true)
	}

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if got := storetest.Fingerprint(s); got != want {
					t.Errorf("goroutine %d sweep %d: fingerprint diverged under eviction pressure", g, i)
					return
				}
				deg := make([]int, s.NumVertices())
				for v := range deg {
					deg[v] = fg.DegreeID(storage.VID(v), fg.TypeID("r1"), true)
				}
				if !reflect.DeepEqual(deg, wantDeg) {
					t.Errorf("goroutine %d sweep %d: degrees diverged under eviction pressure", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	// The store spans far more than 16 pages, so concurrent sweeps must
	// have evicted and re-read pages, not just served hits.
	if st.PageMisses <= int64(s.opts.CachePages) {
		t.Errorf("misses = %d; no eviction pressure reached the shards", st.PageMisses)
	}
	if st.PageReads == 0 {
		t.Error("no physical reads despite a cold start")
	}
	if got := s.curEp().pager.resident(); got > s.opts.CachePages {
		t.Errorf("%d pages resident, budget %d", got, s.opts.CachePages)
	}
}

// TestPagerDirtyEvictionRoundTrip forces dirty pages out through the clock
// sweep (not flush) and checks the data survives: write-back on eviction
// works.
func TestPagerDirtyEvictionRoundTrip(t *testing.T) {
	s := newTestStore(t, Options{PageSize: 256, CachePages: 4})
	// Build enough state that building itself overflows 4 pages many
	// times over, evicting dirty pages mid-build.
	if _, err := storetest.BuildRandom(s, 5, 120, 300); err != nil {
		t.Fatal(err)
	}
	got := storetest.Fingerprint(s)
	want := newMemReference(t, 5, 120, 300)
	if got != want {
		t.Error("state diverged after dirty evictions (write-back broken)")
	}
}
