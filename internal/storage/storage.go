// Package storage defines the backend-independent interface between
// property graph stores and the query engine. Two implementations exist:
// memstore (an in-memory adjacency store, the JanusGraph-like backend of
// the paper's evaluation) and diskstore (a Neo4j-like record store with an
// LRU page cache).
package storage

import "repro/internal/graph"

// VID identifies a vertex within a store.
type VID int64

// EID identifies an edge within a store.
type EID int64

// Graph is the read interface the query executor runs against.
//
// Implementations are not required to be safe for concurrent use; the
// benchmark harness issues queries sequentially, as the paper does
// ("executed in sequential order").
type Graph interface {
	// NumVertices returns the number of vertices.
	NumVertices() int
	// NumEdges returns the number of edges.
	NumEdges() int
	// CountLabel returns the number of vertices carrying the label.
	CountLabel(label string) int
	// ForEachVertex calls fn for every vertex carrying the label, until fn
	// returns false. An empty label iterates all vertices.
	ForEachVertex(label string, fn func(VID) bool)
	// HasLabel reports whether the vertex carries the label.
	HasLabel(v VID, label string) bool
	// Labels returns the labels of the vertex.
	Labels(v VID) []string
	// Prop returns the value of the vertex property, if present.
	Prop(v VID, key string) (graph.Value, bool)
	// PropKeys returns the property keys present on the vertex.
	PropKeys(v VID) []string
	// ForEachOut calls fn for every out-edge of v with the given edge type
	// until fn returns false. An empty type matches any edge type.
	ForEachOut(v VID, etype string, fn func(e EID, dst VID) bool)
	// ForEachIn is ForEachOut for incoming edges; fn receives the source.
	ForEachIn(v VID, etype string, fn func(e EID, src VID) bool)
	// Degree returns the number of out- (or in-) edges of the given type.
	Degree(v VID, etype string, out bool) int
}

// Builder is the write interface used by the graph loader. Stores must be
// fully built before being queried.
type Builder interface {
	Graph
	// AddVertex creates a vertex with the given labels.
	AddVertex(labels ...string) (VID, error)
	// AddLabel adds a label to an existing vertex.
	AddLabel(v VID, label string) error
	// SetProp sets a vertex property, replacing any previous value.
	SetProp(v VID, key string, val graph.Value) error
	// AddEdge creates a directed edge of the given type.
	AddEdge(src, dst VID, etype string) (EID, error)
	// Close releases resources (flushes files for disk-backed stores).
	Close() error
}

// Stats reports backend I/O counters where available; used to show that
// optimized schemas reduce page reads on the disk backend.
type Stats struct {
	PageHits   int64
	PageMisses int64
	PageReads  int64 // physical page reads from disk
	PageWrites int64 // physical page writes to disk
}

// StatsReporter is implemented by backends that track I/O statistics.
type StatsReporter interface {
	Stats() Stats
	// ResetStats zeroes the counters (e.g. between benchmark phases).
	ResetStats()
}
