// Package storage defines the backend-independent interface between
// property graph stores and the query engine. Two implementations exist:
// memstore (an in-memory adjacency store, the JanusGraph-like backend of
// the paper's evaluation) and diskstore (a Neo4j-like record store with an
// LRU page cache).
package storage

import (
	"errors"

	"repro/internal/graph"
)

// VID identifies a vertex within a store.
type VID int64

// EID identifies an edge within a store.
type EID int64

// SymbolID identifies an interned label, edge type, or property key within
// a store. Valid IDs are small non-negative integers assigned at build
// time; symbols never change once the store is built (the Builder contract
// requires stores to be fully built before being queried), so an ID
// resolved once — e.g. by query.Prepare — stays valid for the lifetime of
// the store.
type SymbolID int32

const (
	// NoSymbol is returned when a string was never interned by the store.
	// Every ID-based operation treats NoSymbol as matching nothing:
	// HasLabelID and PropID report absence, CountLabelID returns 0, and
	// the ForEach*ID iterators yield no elements.
	NoSymbol SymbolID = -1
	// AnySymbol is the ID-space analogue of the empty string in the
	// string API: it matches every edge type in ForEachOutID/ForEachInID
	// and every vertex in ForEachVertexID.
	AnySymbol SymbolID = -2
)

// Graph is the read interface the query executor runs against.
//
// Implementations must be safe for concurrent readers once the store is
// fully built (the Builder contract: build first, then query). Both
// built-in backends satisfy this — memstore reads touch only immutable
// data, and diskstore coordinates page access internally through a
// sharded, latched page cache — so one store can serve any number of
// parallel query executors.
type Graph interface {
	// NumVertices returns the number of vertices.
	NumVertices() int
	// NumEdges returns the number of edges.
	NumEdges() int
	// CountLabel returns the number of vertices carrying the label.
	CountLabel(label string) int
	// ForEachVertex calls fn for every vertex carrying the label, until fn
	// returns false. An empty label iterates all vertices.
	ForEachVertex(label string, fn func(VID) bool)
	// HasLabel reports whether the vertex carries the label.
	HasLabel(v VID, label string) bool
	// Labels returns the labels of the vertex in lexicographic order.
	Labels(v VID) []string
	// Prop returns the value of the vertex property, if present.
	Prop(v VID, key string) (graph.Value, bool)
	// PropKeys returns the property keys present on the vertex in
	// lexicographic order.
	PropKeys(v VID) []string
	// ForEachOut calls fn for every out-edge of v with the given edge type
	// until fn returns false. An empty type matches any edge type.
	ForEachOut(v VID, etype string, fn func(e EID, dst VID) bool)
	// ForEachIn is ForEachOut for incoming edges; fn receives the source.
	ForEachIn(v VID, etype string, fn func(e EID, src VID) bool)
	// Degree returns the number of out- (or in-) edges of the given type.
	Degree(v VID, etype string, out bool) int
}

// SymbolTable resolves label, edge-type, and property-key strings to the
// store's interned IDs. Unknown strings resolve to NoSymbol; the empty
// string resolves to AnySymbol, mirroring its wildcard meaning in the
// string API.
type SymbolTable interface {
	// LabelID resolves a vertex label.
	LabelID(label string) SymbolID
	// TypeID resolves an edge type.
	TypeID(etype string) SymbolID
	// KeyID resolves a property key.
	KeyID(key string) SymbolID
}

// VertexScan iterates one partition of a label scan produced by
// FastGraph.PlanVertexScan, calling fn for each vertex until fn returns
// false. Each scan is independent of its siblings and may run on its own
// goroutine; the partitions of one PlanVertexScan call are disjoint and
// together visit exactly the vertices ForEachVertexID would.
type VertexScan func(fn func(VID) bool)

// FastGraph is the interned-symbol fast path of Graph: each method mirrors
// a string-keyed Graph method but takes pre-resolved SymbolIDs, letting a
// compiled query plan skip per-call string hashing entirely. Both built-in
// backends implement it natively; Fast adapts any other Graph.
//
// Semantics match the string API exactly: for any label l,
// HasLabelID(v, LabelID(l)) == HasLabel(v, l), and likewise for the other
// pairs. NoSymbol matches nothing and AnySymbol matches everything, with
// one deliberate extension over the string API: CountLabelID(AnySymbol)
// returns NumVertices() — the size of the scan ForEachVertexID(AnySymbol)
// performs — whereas CountLabel("") returns 0.
type FastGraph interface {
	Graph
	SymbolTable
	// CountLabelID is CountLabel with a resolved label.
	CountLabelID(label SymbolID) int
	// ForEachVertexID is ForEachVertex with a resolved label.
	ForEachVertexID(label SymbolID, fn func(VID) bool)
	// HasLabelID is HasLabel with a resolved label.
	HasLabelID(v VID, label SymbolID) bool
	// PropID is Prop with a resolved key.
	PropID(v VID, key SymbolID) (graph.Value, bool)
	// ForEachOutID is ForEachOut with a resolved edge type.
	ForEachOutID(v VID, etype SymbolID, fn func(e EID, dst VID) bool)
	// ForEachInID is ForEachIn with a resolved edge type.
	ForEachInID(v VID, etype SymbolID, fn func(e EID, src VID) bool)
	// DegreeID is Degree with a resolved edge type.
	DegreeID(v VID, etype SymbolID, out bool) int
	// PlanVertexScan is the morsel partition hook: it splits the label's
	// vertex set into at most parts disjoint scans whose union visits
	// exactly the vertices ForEachVertexID(label) visits, each exactly
	// once. Order within one partition follows the underlying scan; order
	// across partitions is unspecified. The split is planned in this one
	// call, so on stores with a live delta segment every returned scan
	// observes the same snapshot — concurrent mutations cannot introduce
	// gaps or overlap between partitions. NoSymbol (and any unknown ID)
	// yields no scans; parts < 1 is treated as 1. Fewer than parts scans
	// may be returned when the label has few vertices.
	PlanVertexScan(label SymbolID, parts int) []VertexScan
}

// SplitRange cuts [0, n) into at most parts contiguous, non-empty,
// near-even [lo, hi) half-open ranges covering it exactly. It returns nil
// when n <= 0 and fewer than parts ranges when n < parts. Backends use it
// to partition label postings and VID ranges for PlanVertexScan.
func SplitRange(n, parts int) [][2]int {
	if n <= 0 || parts < 1 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for p := 0; p < parts; p++ {
		lo, hi := p*n/parts, (p+1)*n/parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// Fast returns g's native fast path when it has one, or wraps g in a
// generic adapter that maintains its own symbol table and forwards to the
// string API. The adapter preserves semantics but not the speed advantage;
// stores should implement FastGraph natively to benefit.
func Fast(g Graph) FastGraph {
	if fg, ok := g.(FastGraph); ok {
		return fg
	}
	return newFallback(g)
}

// Builder is the write interface used by the graph loader. Stores must be
// fully built before being queried.
type Builder interface {
	Graph
	// AddVertex creates a vertex with the given labels.
	AddVertex(labels ...string) (VID, error)
	// AddLabel adds a label to an existing vertex.
	AddLabel(v VID, label string) error
	// SetProp sets a vertex property, replacing any previous value.
	SetProp(v VID, key string, val graph.Value) error
	// AddEdge creates a directed edge of the given type.
	AddEdge(src, dst VID, etype string) (EID, error)
	// Close releases resources (flushes files for disk-backed stores).
	Close() error
}

// MutationOp selects which write a Mutation performs.
type MutationOp uint8

const (
	// MutAddVertex creates a vertex with Labels (V, Src, Dst unused).
	MutAddVertex MutationOp = iota + 1
	// MutAddEdge creates an edge Src -> Dst of type Type.
	MutAddEdge
	// MutSetProp sets property Key of vertex V to Value.
	MutSetProp
	// MutAddLabel adds Label to vertex V.
	MutAddLabel
)

// Mutation is one write in an ApplyMutations batch. Vertex references
// (V, Src, Dst) are either existing VIDs (>= 0) or batch-relative
// references to vertices created earlier in the same batch: -1 is the
// batch's first MutAddVertex, -2 the second, and so on. This lets one
// batch create a vertex and immediately attach edges and properties to it
// without a round trip.
type Mutation struct {
	Op     MutationOp
	Labels []string    // MutAddVertex
	V      VID         // MutSetProp, MutAddLabel
	Src    VID         // MutAddEdge
	Dst    VID         // MutAddEdge
	Type   string      // MutAddEdge
	Key    string      // MutSetProp
	Value  graph.Value // MutSetProp
	Label  string      // MutAddLabel
}

// MutationResult reports the IDs assigned by an applied batch, in the
// order the creating mutations appeared.
type MutationResult struct {
	Vertices []VID
	Edges    []EID
}

// ErrNotLive is returned by ApplyMutations when the store does not accept
// durable live writes in its current state (e.g. a diskstore that has not
// been finalized yet, or a legacy-format store).
var ErrNotLive = errors.New("storage: store is not in live-write mode")

// ErrCompactInProgress is returned by Compact when another compaction is
// already running on the same store. Compactions are single-flight: the
// caller can retry after the running fold completes (LiveStats
// FoldRunning reports when one is in flight).
var ErrCompactInProgress = errors.New("storage: compaction already in progress")

// MutableGraph is the durable post-build write surface. ApplyMutations
// applies the batch atomically with respect to crashes — after a crash,
// either every mutation in the batch is present or none is — and durably:
// when the call returns nil, the batch has been logged and fsynced.
// Implementations must allow concurrent readers while a batch applies;
// concurrent ApplyMutations calls are serialized internally.
type MutableGraph interface {
	Graph
	// ApplyMutations validates, logs, fsyncs, and applies the batch.
	// Validation errors (unknown vertex, bad batch reference) reject the
	// whole batch before anything is logged.
	ApplyMutations(batch []Mutation) (MutationResult, error)
	// Compact folds accumulated live writes into the store's optimal base
	// layout. Implementations with a background fold path must keep
	// serving reads and ApplyMutations while it runs; a second concurrent
	// call returns ErrCompactInProgress. The call blocks until the fold
	// commits — run it from its own goroutine to get background behavior.
	Compact() error
}

// Snapshot is a pinned, immutable view of a graph: every read through it
// observes the single consistent state that existed when it was acquired,
// no matter how many mutation batches or compactions commit afterwards.
// Release returns the pinned resources (file handles of superseded base
// generations, delta memory); it is idempotent, and reads after Release
// are a caller bug.
type Snapshot interface {
	FastGraph
	Release()
}

// Snapshotter is implemented by backends that can pin consistent
// point-in-time views. Long-running traversals (parallel scans,
// multi-query reports) should acquire one so a background Compact
// swapping the base files mid-read cannot shift their view.
type Snapshotter interface {
	AcquireSnapshot() Snapshot
}

// SnapshotOf pins a point-in-time view of g when the backend supports it
// and otherwise degrades to reading g live through Fast with a no-op
// Release — exact for stores that are immutable once built, best-effort
// for mutable backends without snapshot support.
func SnapshotOf(g Graph) Snapshot {
	if sn, ok := g.(Snapshotter); ok {
		return sn.AcquireSnapshot()
	}
	return noopSnap{Fast(g)}
}

type noopSnap struct{ FastGraph }

func (noopSnap) Release() {}

// LiveStats reports live-write state: delta segment sizes and write-ahead
// log activity. All counters are cumulative since open.
type LiveStats struct {
	// Live reports that the store accepts ApplyMutations.
	Live bool
	// Segmented reports the base layout's type-segmented invariant; live
	// writes land in the delta and must not clear it.
	Segmented bool
	// DeltaVertices and DeltaEdges are the sizes of the in-memory delta
	// segment awaiting the next Compact.
	DeltaVertices int64
	DeltaEdges    int64
	// WALAppends counts logged batches, WALSyncs physical fsyncs (group
	// commit makes WALSyncs <= WALAppends), WALSyncNanos total time in
	// fsync, and WALBytes bytes appended.
	WALAppends   int64
	WALSyncs     int64
	WALSyncNanos int64
	WALBytes     int64
	// Generation numbers the base file set currently serving reads; each
	// committed background compaction bumps it.
	Generation int64
	// FoldRunning reports a background compaction in flight, and
	// FoldProgress its rough progress in permille (0-1000).
	FoldRunning  bool
	FoldProgress int64
	// PinnedSnapshots counts acquired-but-unreleased snapshots; a
	// superseded base generation's files are reclaimed only once the
	// snapshots pinning it drain.
	PinnedSnapshots int64
	// Compactions counts folds committed since open.
	Compactions int64
	// Compressed reports that the base adjacency is stored as delta-varint
	// segments (diskstore format v5); EdgeBytes is their logical size in
	// bytes (0 when not compressed — the base stores fixed-size records).
	Compressed bool
	EdgeBytes  int64
}

// LiveStatsReporter is implemented by backends with a live-write path.
type LiveStatsReporter interface {
	LiveStats() LiveStats
}

// Stats reports backend I/O counters where available; used to show that
// optimized schemas reduce page reads on the disk backend. Backends keep
// the underlying counters atomic, so snapshotting them never blocks the
// data path.
type Stats struct {
	PageHits   int64
	PageMisses int64
	PageReads  int64 // physical page reads from disk
	PageWrites int64 // physical page writes to disk
}

// StatsReporter is implemented by backends that track I/O statistics.
type StatsReporter interface {
	Stats() Stats
	// ResetStats zeroes the counters (e.g. between benchmark phases).
	ResetStats()
}

// Statistics is the data-statistics surface backends expose to the
// optimizer and the query planner: real cardinalities instead of
// uniformity assumptions, and value-presence filters that let a planner
// prove a property-constrained scan empty without running it.
//
// The answers may be approximate in the conservative direction only:
// counts should be exact or near-exact, and MayHaveProp must never
// return false when a matching vertex exists — false is a definitive
// "no vertex with this label has this value for this key", true means
// "possibly" (subject to bloom false positives or absent statistics).
type Statistics interface {
	// LabelCounts returns the number of vertices per label, keyed by
	// label name.
	LabelCounts() map[string]int
	// EdgeTypeCounts returns the number of edges per edge type, keyed by
	// type name. A nil map means the backend has no edge statistics (the
	// caller should fall back to its defaults).
	EdgeTypeCounts() map[string]int
	// MayHaveProp reports whether any vertex with the label may carry the
	// given value for the given property key. False is definitive.
	MayHaveProp(label, key string, val graph.Value) bool
}
