package storage

import "repro/internal/graph"

// fallback adapts a string-only Graph to FastGraph by interning symbols in
// its own table and translating IDs back to strings on each call. It adds
// one slice index per call over the string API — still cheaper than the
// map hash the wrapped store performs internally, and it lets compiled
// query plans run unmodified against any backend.
//
// The symbol tables grow on first sight of each string, so resolution
// (LabelID/TypeID/KeyID) is single-threaded — query.Prepare does all of it
// at compile time. The ID-based read methods only look symbols up, never
// intern, so executing compiled plans concurrently is safe as long as the
// wrapped store supports concurrent readers.
type fallback struct {
	Graph
	labels symtab
	types  symtab
	keys   symtab
}

var _ FastGraph = (*fallback)(nil)

func newFallback(g Graph) *fallback {
	return &fallback{
		Graph:  g,
		labels: symtab{ids: map[string]SymbolID{}},
		types:  symtab{ids: map[string]SymbolID{}},
		keys:   symtab{ids: map[string]SymbolID{}},
	}
}

// symtab is a private string<->SymbolID table. Unlike the native stores'
// tables it interns on resolution rather than on build, because the
// wrapped store does not expose its vocabulary.
type symtab struct {
	ids   map[string]SymbolID
	names []string
}

func (t *symtab) intern(s string) SymbolID {
	if s == "" {
		return AnySymbol
	}
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := SymbolID(len(t.names))
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// lookup returns the string for id; ok is false for NoSymbol, AnySymbol,
// and IDs this table never issued.
func (t *symtab) lookup(id SymbolID) (string, bool) {
	if id < 0 || int(id) >= len(t.names) {
		return "", false
	}
	return t.names[id], true
}

func (f *fallback) LabelID(label string) SymbolID { return f.labels.intern(label) }
func (f *fallback) TypeID(etype string) SymbolID  { return f.types.intern(etype) }
func (f *fallback) KeyID(key string) SymbolID     { return f.keys.intern(key) }

func (f *fallback) CountLabelID(label SymbolID) int {
	if label == AnySymbol {
		return f.NumVertices()
	}
	name, ok := f.labels.lookup(label)
	if !ok {
		return 0
	}
	return f.CountLabel(name)
}

func (f *fallback) ForEachVertexID(label SymbolID, fn func(VID) bool) {
	if label == AnySymbol {
		f.ForEachVertex("", fn)
		return
	}
	name, ok := f.labels.lookup(label)
	if !ok {
		return
	}
	f.ForEachVertex(name, fn)
}

// PlanVertexScan stripes the label scan modulo parts: partition p visits
// every parts-th matching vertex, starting from the p-th. Each partition
// re-runs the wrapped store's full label scan and skips the rest, so the
// adapter preserves the disjoint-union contract at the cost of parts
// redundant traversals — acceptable for the generic path; native backends
// split their postings instead.
func (f *fallback) PlanVertexScan(label SymbolID, parts int) []VertexScan {
	if label != AnySymbol {
		if _, ok := f.labels.lookup(label); !ok {
			return nil
		}
	}
	if parts < 1 {
		parts = 1
	}
	if n := f.CountLabelID(label); n < parts {
		parts = max(n, 1)
	}
	scans := make([]VertexScan, parts)
	for p := 0; p < parts; p++ {
		p := p
		scans[p] = func(fn func(VID) bool) {
			i := 0
			f.ForEachVertexID(label, func(v VID) bool {
				keep := i%parts == p
				i++
				if keep {
					return fn(v)
				}
				return true
			})
		}
	}
	return scans
}

func (f *fallback) HasLabelID(v VID, label SymbolID) bool {
	name, ok := f.labels.lookup(label)
	if !ok {
		return false
	}
	return f.HasLabel(v, name)
}

func (f *fallback) PropID(v VID, key SymbolID) (graph.Value, bool) {
	name, ok := f.keys.lookup(key)
	if !ok {
		return graph.Null, false
	}
	return f.Prop(v, name)
}

func (f *fallback) ForEachOutID(v VID, etype SymbolID, fn func(EID, VID) bool) {
	if name, ok := f.typeName(etype); ok {
		f.ForEachOut(v, name, fn)
	}
}

func (f *fallback) ForEachInID(v VID, etype SymbolID, fn func(EID, VID) bool) {
	if name, ok := f.typeName(etype); ok {
		f.ForEachIn(v, name, fn)
	}
}

func (f *fallback) DegreeID(v VID, etype SymbolID, out bool) int {
	name, ok := f.typeName(etype)
	if !ok {
		return 0
	}
	return f.Degree(v, name, out)
}

func (f *fallback) typeName(etype SymbolID) (string, bool) {
	if etype == AnySymbol {
		return "", true
	}
	return f.types.lookup(etype)
}
