// Package storetest provides a conformance suite run against every
// storage.Builder implementation, plus a randomized graph generator used
// for differential testing between backends.
package storetest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
)

// Factory creates a fresh empty store for each subtest.
type Factory func(t *testing.T) storage.Builder

// Run executes the conformance suite against the implementation.
func Run(t *testing.T, newStore Factory) {
	t.Run("EmptyStore", func(t *testing.T) {
		s := newStore(t)
		if s.NumVertices() != 0 || s.NumEdges() != 0 {
			t.Errorf("empty store reports %d vertices, %d edges", s.NumVertices(), s.NumEdges())
		}
		if s.CountLabel("X") != 0 {
			t.Error("CountLabel on empty store != 0")
		}
		s.ForEachVertex("", func(storage.VID) bool {
			t.Error("iteration over empty store yielded a vertex")
			return false
		})
	})

	t.Run("VerticesAndLabels", func(t *testing.T) {
		s := newStore(t)
		a := mustVertex(t, s, "Drug")
		b := mustVertex(t, s, "Drug", "Compound")
		c := mustVertex(t, s)
		if s.NumVertices() != 3 {
			t.Fatalf("NumVertices = %d, want 3", s.NumVertices())
		}
		if got := s.CountLabel("Drug"); got != 2 {
			t.Errorf("CountLabel(Drug) = %d, want 2", got)
		}
		if !s.HasLabel(b, "Compound") || s.HasLabel(a, "Compound") || s.HasLabel(c, "Drug") {
			t.Error("HasLabel wrong")
		}
		if err := s.AddLabel(c, "Late"); err != nil {
			t.Fatalf("AddLabel: %v", err)
		}
		if !s.HasLabel(c, "Late") {
			t.Error("label added after creation not visible")
		}
		// Duplicate label must be idempotent.
		if err := s.AddLabel(b, "Drug"); err != nil {
			t.Fatalf("AddLabel dup: %v", err)
		}
		if got := s.CountLabel("Drug"); got != 2 {
			t.Errorf("CountLabel(Drug) after dup add = %d, want 2", got)
		}
		if got := s.Labels(b); !reflect.DeepEqual(got, []string{"Compound", "Drug"}) {
			t.Errorf("Labels = %v", got)
		}
	})

	t.Run("Properties", func(t *testing.T) {
		s := newStore(t)
		v := mustVertex(t, s, "N")
		vals := map[string]graph.Value{
			"s":    graph.S("hello"),
			"i":    graph.I(-42),
			"f":    graph.F(3.25),
			"b":    graph.B(true),
			"list": graph.L(graph.S("a"), graph.I(1), graph.F(0.5), graph.B(false)),
			"nil":  graph.Null,
			"es":   graph.S(""),
		}
		for k, val := range vals {
			if err := s.SetProp(v, k, val); err != nil {
				t.Fatalf("SetProp(%s): %v", k, err)
			}
		}
		for k, want := range vals {
			got, ok := s.Prop(v, k)
			if !ok {
				t.Errorf("Prop(%s) missing", k)
				continue
			}
			if !got.Equal(want) {
				t.Errorf("Prop(%s) = %v, want %v", k, got, want)
			}
		}
		if _, ok := s.Prop(v, "absent"); ok {
			t.Error("Prop(absent) reported present")
		}
		// Overwrite.
		if err := s.SetProp(v, "s", graph.S("world")); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Prop(v, "s"); got.Str() != "world" {
			t.Errorf("overwritten prop = %v", got)
		}
		keys := s.PropKeys(v)
		if len(keys) != len(vals) {
			t.Errorf("PropKeys = %v, want %d keys", keys, len(vals))
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("PropKeys not sorted: %v", keys)
		}
	})

	t.Run("EdgesAndTraversal", func(t *testing.T) {
		s := newStore(t)
		drug := mustVertex(t, s, "Drug")
		i1 := mustVertex(t, s, "Indication")
		i2 := mustVertex(t, s, "Indication")
		risk := mustVertex(t, s, "Risk")
		if _, err := s.AddEdge(drug, i1, "treat"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdge(drug, i2, "treat"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdge(drug, risk, "cause"); err != nil {
			t.Fatal(err)
		}
		if s.NumEdges() != 3 {
			t.Fatalf("NumEdges = %d, want 3", s.NumEdges())
		}
		if got := s.Degree(drug, "treat", true); got != 2 {
			t.Errorf("out-degree treat = %d, want 2", got)
		}
		if got := s.Degree(drug, "", true); got != 3 {
			t.Errorf("out-degree any = %d, want 3", got)
		}
		if got := s.Degree(i1, "treat", false); got != 1 {
			t.Errorf("in-degree = %d, want 1", got)
		}
		if got := s.Degree(drug, "nosuch", true); got != 0 {
			t.Errorf("degree of unknown type = %d, want 0", got)
		}
		var dsts []storage.VID
		s.ForEachOut(drug, "treat", func(_ storage.EID, dst storage.VID) bool {
			dsts = append(dsts, dst)
			return true
		})
		sortVIDs(dsts)
		if !reflect.DeepEqual(dsts, []storage.VID{i1, i2}) {
			t.Errorf("ForEachOut dsts = %v, want [%d %d]", dsts, i1, i2)
		}
		var srcs []storage.VID
		s.ForEachIn(risk, "cause", func(_ storage.EID, src storage.VID) bool {
			srcs = append(srcs, src)
			return true
		})
		if !reflect.DeepEqual(srcs, []storage.VID{drug}) {
			t.Errorf("ForEachIn srcs = %v", srcs)
		}
		// Early termination.
		n := 0
		s.ForEachOut(drug, "", func(storage.EID, storage.VID) bool {
			n++
			return false
		})
		if n != 1 {
			t.Errorf("early-terminated iteration visited %d, want 1", n)
		}
	})

	t.Run("LabelScan", func(t *testing.T) {
		s := newStore(t)
		var want []storage.VID
		for i := 0; i < 10; i++ {
			label := "Even"
			if i%2 == 1 {
				label = "Odd"
			}
			v := mustVertex(t, s, label)
			if label == "Even" {
				want = append(want, v)
			}
		}
		var got []storage.VID
		s.ForEachVertex("Even", func(v storage.VID) bool {
			got = append(got, v)
			return true
		})
		sortVIDs(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("label scan = %v, want %v", got, want)
		}
		all := 0
		s.ForEachVertex("", func(storage.VID) bool { all++; return true })
		if all != 10 {
			t.Errorf("full scan visited %d, want 10", all)
		}
	})

	t.Run("InvalidVertex", func(t *testing.T) {
		s := newStore(t)
		if err := s.SetProp(99, "k", graph.I(1)); err == nil {
			t.Error("SetProp on missing vertex succeeded")
		}
		if _, err := s.AddEdge(0, 1, "t"); err == nil {
			t.Error("AddEdge on missing vertices succeeded")
		}
		if err := s.AddLabel(-1, "L"); err == nil {
			t.Error("AddLabel on negative vertex succeeded")
		}
	})
}

func mustVertex(t *testing.T, s storage.Builder, labels ...string) storage.VID {
	t.Helper()
	v, err := s.AddVertex(labels...)
	if err != nil {
		t.Fatalf("AddVertex: %v", err)
	}
	return v
}

func sortVIDs(vs []storage.VID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// BuildRandom populates b with a pseudo-random graph (deterministic in
// seed) and returns the vertex count. Used for differential tests.
func BuildRandom(b storage.Builder, seed int64, nVertices, nEdges int) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C", "D"}
	etypes := []string{"r1", "r2", "r3"}
	for i := 0; i < nVertices; i++ {
		v, err := b.AddVertex(labels[rng.Intn(len(labels))])
		if err != nil {
			return 0, err
		}
		if rng.Intn(2) == 0 {
			if err := b.AddLabel(v, labels[rng.Intn(len(labels))]); err != nil {
				return 0, err
			}
		}
		nProps := rng.Intn(4)
		for j := 0; j < nProps; j++ {
			var val graph.Value
			switch rng.Intn(4) {
			case 0:
				val = graph.S(fmt.Sprintf("str%d", rng.Intn(100)))
			case 1:
				val = graph.I(rng.Int63n(1000))
			case 2:
				val = graph.F(rng.Float64())
			default:
				val = graph.L(graph.S("x"), graph.I(rng.Int63n(10)))
			}
			if err := b.SetProp(v, fmt.Sprintf("p%d", rng.Intn(5)), val); err != nil {
				return 0, err
			}
		}
	}
	for i := 0; i < nEdges; i++ {
		src := storage.VID(rng.Intn(nVertices))
		dst := storage.VID(rng.Intn(nVertices))
		if _, err := b.AddEdge(src, dst, etypes[rng.Intn(len(etypes))]); err != nil {
			return 0, err
		}
	}
	return nVertices, nil
}

// Fingerprint summarizes all observable state of the graph into a
// deterministic string so two backends can be compared.
func Fingerprint(g storage.Graph) string {
	var out []string
	out = append(out, fmt.Sprintf("V=%d E=%d", g.NumVertices(), g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		id := storage.VID(v)
		line := fmt.Sprintf("v%d labels=%v", v, g.Labels(id))
		for _, k := range g.PropKeys(id) {
			val, _ := g.Prop(id, k)
			line += fmt.Sprintf(" %s=%s", k, val)
		}
		var outs, ins []string
		g.ForEachOut(id, "", func(_ storage.EID, dst storage.VID) bool {
			outs = append(outs, fmt.Sprintf("->%d", dst))
			return true
		})
		g.ForEachIn(id, "", func(_ storage.EID, src storage.VID) bool {
			ins = append(ins, fmt.Sprintf("<-%d", src))
			return true
		})
		sort.Strings(outs)
		sort.Strings(ins)
		line += fmt.Sprintf(" out=%v in=%v", outs, ins)
		out = append(out, line)
	}
	return fmt.Sprintf("%v", out)
}
