// Package storetest provides a conformance suite run against every
// storage.Builder implementation, plus a randomized graph generator used
// for differential testing between backends.
package storetest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/storage"
)

// Factory creates a fresh empty store for each subtest.
type Factory func(t *testing.T) storage.Builder

// Run executes the conformance suite against the implementation.
func Run(t *testing.T, newStore Factory) {
	t.Run("EmptyStore", func(t *testing.T) {
		s := newStore(t)
		if s.NumVertices() != 0 || s.NumEdges() != 0 {
			t.Errorf("empty store reports %d vertices, %d edges", s.NumVertices(), s.NumEdges())
		}
		if s.CountLabel("X") != 0 {
			t.Error("CountLabel on empty store != 0")
		}
		s.ForEachVertex("", func(storage.VID) bool {
			t.Error("iteration over empty store yielded a vertex")
			return false
		})
	})

	t.Run("VerticesAndLabels", func(t *testing.T) {
		s := newStore(t)
		a := mustVertex(t, s, "Drug")
		b := mustVertex(t, s, "Drug", "Compound")
		c := mustVertex(t, s)
		if s.NumVertices() != 3 {
			t.Fatalf("NumVertices = %d, want 3", s.NumVertices())
		}
		if got := s.CountLabel("Drug"); got != 2 {
			t.Errorf("CountLabel(Drug) = %d, want 2", got)
		}
		if !s.HasLabel(b, "Compound") || s.HasLabel(a, "Compound") || s.HasLabel(c, "Drug") {
			t.Error("HasLabel wrong")
		}
		if err := s.AddLabel(c, "Late"); err != nil {
			t.Fatalf("AddLabel: %v", err)
		}
		if !s.HasLabel(c, "Late") {
			t.Error("label added after creation not visible")
		}
		// Duplicate label must be idempotent.
		if err := s.AddLabel(b, "Drug"); err != nil {
			t.Fatalf("AddLabel dup: %v", err)
		}
		if got := s.CountLabel("Drug"); got != 2 {
			t.Errorf("CountLabel(Drug) after dup add = %d, want 2", got)
		}
		if got := s.Labels(b); !reflect.DeepEqual(got, []string{"Compound", "Drug"}) {
			t.Errorf("Labels = %v", got)
		}
	})

	t.Run("Properties", func(t *testing.T) {
		s := newStore(t)
		v := mustVertex(t, s, "N")
		vals := map[string]graph.Value{
			"s":    graph.S("hello"),
			"i":    graph.I(-42),
			"f":    graph.F(3.25),
			"b":    graph.B(true),
			"list": graph.L(graph.S("a"), graph.I(1), graph.F(0.5), graph.B(false)),
			"nil":  graph.Null,
			"es":   graph.S(""),
		}
		for k, val := range vals {
			if err := s.SetProp(v, k, val); err != nil {
				t.Fatalf("SetProp(%s): %v", k, err)
			}
		}
		for k, want := range vals {
			got, ok := s.Prop(v, k)
			if !ok {
				t.Errorf("Prop(%s) missing", k)
				continue
			}
			if !got.Equal(want) {
				t.Errorf("Prop(%s) = %v, want %v", k, got, want)
			}
		}
		if _, ok := s.Prop(v, "absent"); ok {
			t.Error("Prop(absent) reported present")
		}
		// Overwrite.
		if err := s.SetProp(v, "s", graph.S("world")); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Prop(v, "s"); got.Str() != "world" {
			t.Errorf("overwritten prop = %v", got)
		}
		keys := s.PropKeys(v)
		if len(keys) != len(vals) {
			t.Errorf("PropKeys = %v, want %d keys", keys, len(vals))
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("PropKeys not sorted: %v", keys)
		}
	})

	t.Run("EdgesAndTraversal", func(t *testing.T) {
		s := newStore(t)
		drug := mustVertex(t, s, "Drug")
		i1 := mustVertex(t, s, "Indication")
		i2 := mustVertex(t, s, "Indication")
		risk := mustVertex(t, s, "Risk")
		if _, err := s.AddEdge(drug, i1, "treat"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdge(drug, i2, "treat"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdge(drug, risk, "cause"); err != nil {
			t.Fatal(err)
		}
		if s.NumEdges() != 3 {
			t.Fatalf("NumEdges = %d, want 3", s.NumEdges())
		}
		if got := s.Degree(drug, "treat", true); got != 2 {
			t.Errorf("out-degree treat = %d, want 2", got)
		}
		if got := s.Degree(drug, "", true); got != 3 {
			t.Errorf("out-degree any = %d, want 3", got)
		}
		if got := s.Degree(i1, "treat", false); got != 1 {
			t.Errorf("in-degree = %d, want 1", got)
		}
		if got := s.Degree(drug, "nosuch", true); got != 0 {
			t.Errorf("degree of unknown type = %d, want 0", got)
		}
		var dsts []storage.VID
		s.ForEachOut(drug, "treat", func(_ storage.EID, dst storage.VID) bool {
			dsts = append(dsts, dst)
			return true
		})
		sortVIDs(dsts)
		if !reflect.DeepEqual(dsts, []storage.VID{i1, i2}) {
			t.Errorf("ForEachOut dsts = %v, want [%d %d]", dsts, i1, i2)
		}
		var srcs []storage.VID
		s.ForEachIn(risk, "cause", func(_ storage.EID, src storage.VID) bool {
			srcs = append(srcs, src)
			return true
		})
		if !reflect.DeepEqual(srcs, []storage.VID{drug}) {
			t.Errorf("ForEachIn srcs = %v", srcs)
		}
		// Early termination.
		n := 0
		s.ForEachOut(drug, "", func(storage.EID, storage.VID) bool {
			n++
			return false
		})
		if n != 1 {
			t.Errorf("early-terminated iteration visited %d, want 1", n)
		}
	})

	t.Run("LabelScan", func(t *testing.T) {
		s := newStore(t)
		var want []storage.VID
		for i := 0; i < 10; i++ {
			label := "Even"
			if i%2 == 1 {
				label = "Odd"
			}
			v := mustVertex(t, s, label)
			if label == "Even" {
				want = append(want, v)
			}
		}
		var got []storage.VID
		s.ForEachVertex("Even", func(v storage.VID) bool {
			got = append(got, v)
			return true
		})
		sortVIDs(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("label scan = %v, want %v", got, want)
		}
		all := 0
		s.ForEachVertex("", func(storage.VID) bool { all++; return true })
		if all != 10 {
			t.Errorf("full scan visited %d, want 10", all)
		}
	})

	t.Run("SymbolFastPath", func(t *testing.T) {
		s := newStore(t)
		buildFastPathGraph(t, s)
		// The suite runs twice: once against the store's own fast path
		// (or, for string-only stores, the adapter storage.Fast creates),
		// and once forcing the generic fallback adapter by hiding any
		// native FastGraph implementation. Both must agree with the
		// string API on every operation.
		t.Run("Native", func(t *testing.T) {
			CheckFastEquivalence(t, s, storage.Fast(s))
		})
		t.Run("Fallback", func(t *testing.T) {
			CheckFastEquivalence(t, s, storage.Fast(stringOnly{s}))
		})
		if fg, ok := storage.Builder(s).(storage.FastGraph); ok {
			// Native stores resolve unknown symbols to NoSymbol and the
			// empty string to AnySymbol.
			if got := fg.LabelID("NoSuchLabel"); got != storage.NoSymbol {
				t.Errorf("LabelID(unknown) = %d, want NoSymbol", got)
			}
			if got := fg.TypeID("noSuchType"); got != storage.NoSymbol {
				t.Errorf("TypeID(unknown) = %d, want NoSymbol", got)
			}
			if got := fg.KeyID("noSuchKey"); got != storage.NoSymbol {
				t.Errorf("KeyID(unknown) = %d, want NoSymbol", got)
			}
			for _, id := range []storage.SymbolID{fg.LabelID(""), fg.TypeID(""), fg.KeyID("")} {
				if id != storage.AnySymbol {
					t.Errorf("empty-string symbol = %d, want AnySymbol", id)
				}
			}
		}
	})

	t.Run("ParallelReaders", func(t *testing.T) {
		// Built stores must serve concurrent readers: every goroutine
		// sweeps the full read surface (string and fast-path APIs) and
		// must observe exactly the state a serial sweep observed. Run
		// under -race this also proves the read paths are data-race free.
		s := newStore(t)
		if _, err := BuildRandom(s, 1234, 40, 100); err != nil {
			t.Fatal(err)
		}
		want := Fingerprint(s)
		fg := storage.Fast(s)
		wantDegrees := degreeSweep(fg)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if got := Fingerprint(s); got != want {
						t.Errorf("goroutine %d: concurrent fingerprint diverged", g)
						return
					}
					if got := degreeSweep(fg); !reflect.DeepEqual(got, wantDegrees) {
						t.Errorf("goroutine %d: concurrent degree sweep diverged", g)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})

	t.Run("BulkBuild", func(t *testing.T) {
		// The batched write path must produce a graph observably identical
		// to the incremental one: same vertices, labels, properties, and
		// (order-insensitively) the same adjacency. A small batch size
		// forces multiple flush cycles, and the finalized store must also
		// keep its fast path equivalent to its string API.
		inc := newStore(t)
		if _, err := BuildRandom(inc, 77, 50, 130); err != nil {
			t.Fatal(err)
		}
		bulk := newStore(t)
		if _, err := BuildRandomBulk(bulk, 77, 50, 130, 16); err != nil {
			t.Fatal(err)
		}
		if got, want := Fingerprint(bulk), Fingerprint(inc); got != want {
			t.Errorf("bulk-built store diverges from incremental build:\n got: %.300s...\nwant: %.300s...", got, want)
		}
		CheckFastEquivalence(t, bulk, storage.Fast(bulk))
	})

	t.Run("SnapshotIsolation", func(t *testing.T) {
		s := newStore(t)
		if _, err := BuildRandom(s, 4242, 25, 60); err != nil {
			t.Fatal(err)
		}
		before := Fingerprint(s)

		// Every Graph yields a usable view through SnapshotOf: native
		// Snapshotters pin a real snapshot, everything else gets the
		// no-op fallback over storage.Fast. Both must read the current
		// state, and Release must always be safe — twice, even.
		for name, g := range map[string]storage.Graph{"native": s, "fallback": stringOnly{s}} {
			snap := storage.SnapshotOf(g)
			if got := Fingerprint(snap); got != before {
				t.Errorf("SnapshotOf(%s) does not read the store's state:\n got %.200s\nwant %.200s", name, got, before)
			}
			snap.Release()
			snap.Release()
		}

		sn, ok := storage.Builder(s).(storage.Snapshotter)
		if !ok {
			t.Skip("store is not a Snapshotter; SnapshotOf fallback is the whole contract")
		}
		snap1 := sn.AcquireSnapshot()
		if got := Fingerprint(snap1); got != before {
			t.Fatalf("freshly acquired snapshot diverges from the store:\n got %.200s\nwant %.200s", got, before)
		}
		CheckFastEquivalence(t, s, snap1)

		// Isolation under mutation only applies when snapshots are real
		// copies or pinned epochs. An exclusive-build store (a live-write
		// backend before its first finalize: LiveStatsReporter with
		// Live=false) hands out the store itself — no concurrent
		// mutation by contract, so there is nothing to isolate.
		isolated := true
		if lr, ok := storage.Builder(s).(storage.LiveStatsReporter); ok && !lr.LiveStats().Live {
			isolated = false
		}
		if isolated {
			w := mustVertex(t, s, "SnapIso")
			if err := s.SetProp(w, "iso", graph.S("after")); err != nil {
				t.Fatal(err)
			}
			if err := s.AddLabel(0, "SnapIso"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.AddEdge(0, w, "snapEdge"); err != nil {
				t.Fatal(err)
			}
			after := Fingerprint(s)
			if after == before {
				t.Fatal("mutations did not change the store fingerprint; the isolation check is vacuous")
			}
			if got := Fingerprint(snap1); got != before {
				t.Errorf("mutations applied after acquisition leaked into a pinned snapshot:\n got %.200s\nwant %.200s", got, before)
			}
			snap2 := sn.AcquireSnapshot()
			if got := Fingerprint(snap2); got != after {
				t.Errorf("snapshot acquired after mutations does not see them:\n got %.200s\nwant %.200s", got, after)
			}
			snap2.Release()
		}
		snap1.Release()
		snap1.Release() // Release must be idempotent
		if lr, ok := storage.Builder(s).(storage.LiveStatsReporter); ok {
			if got := lr.LiveStats().PinnedSnapshots; got != 0 {
				t.Errorf("%d snapshots still reported pinned after every Release", got)
			}
		}
	})

	t.Run("InvalidVertex", func(t *testing.T) {
		s := newStore(t)
		if err := s.SetProp(99, "k", graph.I(1)); err == nil {
			t.Error("SetProp on missing vertex succeeded")
		}
		if _, err := s.AddEdge(0, 1, "t"); err == nil {
			t.Error("AddEdge on missing vertices succeeded")
		}
		if err := s.AddLabel(-1, "L"); err == nil {
			t.Error("AddLabel on negative vertex succeeded")
		}
	})
}

// stringOnly hides a store's native fast path behind the plain Graph
// method set so storage.Fast is forced to use the generic adapter.
type stringOnly struct{ storage.Graph }

// buildFastPathGraph populates a small graph exercising every symbol kind:
// multiple labels per vertex, typed and parallel edges, and properties.
func buildFastPathGraph(t *testing.T, s storage.Builder) {
	t.Helper()
	a := mustVertex(t, s, "Drug", "Compound")
	b := mustVertex(t, s, "Indication")
	c := mustVertex(t, s, "Risk")
	if err := s.SetProp(a, "name", graph.S("Aspirin")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProp(a, "doses", graph.I(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProp(b, "desc", graph.S("Fever")); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][3]interface{}{{a, b, "treat"}, {a, b, "treat"}, {a, c, "cause"}, {b, c, "implies"}} {
		if _, err := s.AddEdge(e[0].(storage.VID), e[1].(storage.VID), e[2].(string)); err != nil {
			t.Fatal(err)
		}
	}
}

// CheckFastEquivalence verifies that every ID-based operation of fg
// agrees with g's string API, for known and unknown symbols alike. It is
// exported so backend-specific tests can re-run it after physical
// reorganizations (diskstore Compact, bulk finalize) that the generic
// suite's build-then-read flow cannot reach.
func CheckFastEquivalence(t *testing.T, g storage.Graph, fg storage.FastGraph) {
	t.Helper()
	labels := []string{"Drug", "Compound", "Indication", "Risk", "NoSuchLabel"}
	etypes := []string{"treat", "cause", "implies", "noSuchType", ""}
	keys := []string{"name", "doses", "desc", "noSuchKey"}

	for _, l := range labels {
		id := fg.LabelID(l)
		if got, want := fg.CountLabelID(id), g.CountLabel(l); got != want {
			t.Errorf("CountLabelID(%q) = %d, want %d", l, got, want)
		}
		if got, want := collectScan(fg, id), collectScanStr(g, l); !reflect.DeepEqual(got, want) {
			t.Errorf("ForEachVertexID(%q) = %v, want %v", l, got, want)
		}
	}
	if got, want := collectScan(fg, storage.AnySymbol), collectScanStr(g, ""); !reflect.DeepEqual(got, want) {
		t.Errorf("ForEachVertexID(AnySymbol) = %v, want %v", got, want)
	}
	// CountLabelID(AnySymbol) is the documented extension: the size of
	// the wildcard scan, not CountLabel("")'s 0.
	if got := fg.CountLabelID(storage.AnySymbol); got != g.NumVertices() {
		t.Errorf("CountLabelID(AnySymbol) = %d, want NumVertices = %d", got, g.NumVertices())
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := storage.VID(v)
		for _, l := range labels {
			if got, want := fg.HasLabelID(id, fg.LabelID(l)), g.HasLabel(id, l); got != want {
				t.Errorf("HasLabelID(%d, %q) = %v, want %v", v, l, got, want)
			}
		}
		for _, k := range keys {
			gotVal, gotOK := fg.PropID(id, fg.KeyID(k))
			wantVal, wantOK := g.Prop(id, k)
			if gotOK != wantOK || !gotVal.Equal(wantVal) {
				t.Errorf("PropID(%d, %q) = (%v, %v), want (%v, %v)", v, k, gotVal, gotOK, wantVal, wantOK)
			}
		}
		for _, et := range etypes {
			tid := fg.TypeID(et)
			for _, out := range []bool{true, false} {
				if got, want := collectAdj(fg, id, tid, out), collectAdjStr(g, id, et, out); !reflect.DeepEqual(got, want) {
					t.Errorf("ForEach(%d, %q, out=%v) = %v, want %v", v, et, out, got, want)
				}
				if got, want := fg.DegreeID(id, tid, out), g.Degree(id, et, out); got != want {
					t.Errorf("DegreeID(%d, %q, out=%v) = %d, want %d", v, et, out, got, want)
				}
			}
		}
		// NoSymbol matches nothing, regardless of implementation.
		if fg.HasLabelID(id, storage.NoSymbol) {
			t.Errorf("HasLabelID(%d, NoSymbol) = true", v)
		}
		if _, ok := fg.PropID(id, storage.NoSymbol); ok {
			t.Errorf("PropID(%d, NoSymbol) reported present", v)
		}
		if got := fg.DegreeID(id, storage.NoSymbol, true); got != 0 {
			t.Errorf("DegreeID(%d, NoSymbol) = %d", v, got)
		}
	}
	// PlanVertexScan conformance: for every label (plus the AnySymbol
	// wildcard) and a spread of partition counts, the partitions must be
	// disjoint and their union must be exactly the serial scan, and a
	// partition must stop when fn returns false.
	scanLabels := make([]storage.SymbolID, 0, len(labels)+1)
	for _, l := range labels {
		scanLabels = append(scanLabels, fg.LabelID(l))
	}
	scanLabels = append(scanLabels, storage.AnySymbol)
	for _, id := range scanLabels {
		want := collectScan(fg, id)
		for _, parts := range []int{1, 3, 8, 64} {
			scans := fg.PlanVertexScan(id, parts)
			if len(scans) > parts {
				t.Errorf("PlanVertexScan(%d, %d) returned %d partitions", id, parts, len(scans))
			}
			got := []storage.VID{}
			for _, scan := range scans {
				scan(func(v storage.VID) bool {
					got = append(got, v)
					return true
				})
			}
			// Partitions may interleave arbitrarily, so compare as sorted
			// multisets; duplicates across partitions surface here too.
			sortVIDs(got)
			wantSorted := append([]storage.VID{}, want...)
			sortVIDs(wantSorted)
			if !reflect.DeepEqual(got, wantSorted) {
				t.Errorf("PlanVertexScan(%d, %d) union = %v, want %v", id, parts, got, wantSorted)
			}
			if len(scans) > 0 && len(want) > 0 {
				n := 0
				scans[0](func(storage.VID) bool {
					n++
					return false
				})
				if n != 1 {
					t.Errorf("PlanVertexScan(%d, %d): partition ignored early termination (visited %d)", id, parts, n)
				}
			}
		}
	}
	if got := fg.PlanVertexScan(storage.NoSymbol, 4); len(got) != 0 {
		t.Errorf("PlanVertexScan(NoSymbol) returned %d partitions", len(got))
	}
	if fg.CountLabelID(storage.NoSymbol) != 0 {
		t.Error("CountLabelID(NoSymbol) != 0")
	}
	fg.ForEachVertexID(storage.NoSymbol, func(storage.VID) bool {
		t.Error("ForEachVertexID(NoSymbol) yielded a vertex")
		return false
	})
	fg.ForEachOutID(0, storage.NoSymbol, func(storage.EID, storage.VID) bool {
		t.Error("ForEachOutID(NoSymbol) yielded an edge")
		return false
	})
}

func collectScan(fg storage.FastGraph, label storage.SymbolID) []storage.VID {
	out := []storage.VID{}
	fg.ForEachVertexID(label, func(v storage.VID) bool {
		out = append(out, v)
		return true
	})
	return out
}

func collectScanStr(g storage.Graph, label string) []storage.VID {
	out := []storage.VID{}
	g.ForEachVertex(label, func(v storage.VID) bool {
		out = append(out, v)
		return true
	})
	return out
}

func collectAdj(fg storage.FastGraph, v storage.VID, etype storage.SymbolID, out bool) [][2]int64 {
	res := [][2]int64{}
	fn := func(e storage.EID, other storage.VID) bool {
		res = append(res, [2]int64{int64(e), int64(other)})
		return true
	}
	if out {
		fg.ForEachOutID(v, etype, fn)
	} else {
		fg.ForEachInID(v, etype, fn)
	}
	return res
}

func collectAdjStr(g storage.Graph, v storage.VID, etype string, out bool) [][2]int64 {
	res := [][2]int64{}
	fn := func(e storage.EID, other storage.VID) bool {
		res = append(res, [2]int64{int64(e), int64(other)})
		return true
	}
	if out {
		g.ForEachOut(v, etype, fn)
	} else {
		g.ForEachIn(v, etype, fn)
	}
	return res
}

// degreeSweep collects typed and untyped degrees of every vertex through
// the fast path, using the BuildRandom vocabulary.
func degreeSweep(fg storage.FastGraph) []int {
	var out []int
	types := []storage.SymbolID{fg.TypeID("r1"), fg.TypeID("r2"), fg.TypeID("r3"), storage.AnySymbol}
	for v := 0; v < fg.NumVertices(); v++ {
		for _, tid := range types {
			out = append(out, fg.DegreeID(storage.VID(v), tid, true), fg.DegreeID(storage.VID(v), tid, false))
		}
	}
	return out
}

func mustVertex(t *testing.T, s storage.Builder, labels ...string) storage.VID {
	t.Helper()
	v, err := s.AddVertex(labels...)
	if err != nil {
		t.Fatalf("AddVertex: %v", err)
	}
	return v
}

func sortVIDs(vs []storage.VID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// randomWriter is the write surface buildRandomInto needs. Both write
// paths satisfy it — storage.Builder through the builderWriter adapter,
// *storage.BulkLoader directly — so the generator exists exactly once
// and the BulkBuild conformance comparison can never drift out of rng
// sync between the two.
type randomWriter interface {
	AddVertex(labels ...string) (storage.VID, error)
	AddLabel(v storage.VID, label string) error
	SetProp(v storage.VID, key string, val graph.Value) error
	AddEdge(src, dst storage.VID, etype string) error
}

// builderWriter adapts storage.Builder's AddEdge signature (which returns
// the EID) to randomWriter.
type builderWriter struct{ storage.Builder }

func (w builderWriter) AddEdge(src, dst storage.VID, etype string) error {
	_, err := w.Builder.AddEdge(src, dst, etype)
	return err
}

// buildRandomInto writes the pseudo-random graph for seed through w.
func buildRandomInto(w randomWriter, seed int64, nVertices, nEdges int) error {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C", "D"}
	etypes := []string{"r1", "r2", "r3"}
	for i := 0; i < nVertices; i++ {
		v, err := w.AddVertex(labels[rng.Intn(len(labels))])
		if err != nil {
			return err
		}
		if rng.Intn(2) == 0 {
			if err := w.AddLabel(v, labels[rng.Intn(len(labels))]); err != nil {
				return err
			}
		}
		nProps := rng.Intn(4)
		for j := 0; j < nProps; j++ {
			var val graph.Value
			switch rng.Intn(4) {
			case 0:
				val = graph.S(fmt.Sprintf("str%d", rng.Intn(100)))
			case 1:
				val = graph.I(rng.Int63n(1000))
			case 2:
				val = graph.F(rng.Float64())
			default:
				val = graph.L(graph.S("x"), graph.I(rng.Int63n(10)))
			}
			if err := w.SetProp(v, fmt.Sprintf("p%d", rng.Intn(5)), val); err != nil {
				return err
			}
		}
	}
	for i := 0; i < nEdges; i++ {
		src := storage.VID(rng.Intn(nVertices))
		dst := storage.VID(rng.Intn(nVertices))
		if err := w.AddEdge(src, dst, etypes[rng.Intn(len(etypes))]); err != nil {
			return err
		}
	}
	return nil
}

// BuildRandom populates b with a pseudo-random graph (deterministic in
// seed) and returns the vertex count. Used for differential tests.
func BuildRandom(b storage.Builder, seed int64, nVertices, nEdges int) (int, error) {
	if err := buildRandomInto(builderWriter{b}, seed, nVertices, nEdges); err != nil {
		return 0, err
	}
	return nVertices, nil
}

// BuildRandomBulk builds the same pseudo-random graph as BuildRandom with
// the same seed, but through the storage.BulkLoader batched write path
// (native BatchBuilder batches where the store provides them, per-item
// calls otherwise), finishing with one Finalize. Used to prove the two
// write paths produce observably identical graphs.
func BuildRandomBulk(b storage.Builder, seed int64, nVertices, nEdges, batchSize int) (int, error) {
	bl := storage.NewBulkLoader(b, batchSize)
	if err := buildRandomInto(bl, seed, nVertices, nEdges); err != nil {
		return 0, err
	}
	if err := bl.Finalize(); err != nil {
		return 0, err
	}
	return nVertices, nil
}

// Fingerprint summarizes all observable state of the graph into a
// deterministic string so two backends can be compared.
func Fingerprint(g storage.Graph) string {
	var out []string
	out = append(out, fmt.Sprintf("V=%d E=%d", g.NumVertices(), g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		id := storage.VID(v)
		line := fmt.Sprintf("v%d labels=%v", v, g.Labels(id))
		for _, k := range g.PropKeys(id) {
			val, _ := g.Prop(id, k)
			line += fmt.Sprintf(" %s=%s", k, val)
		}
		var outs, ins []string
		g.ForEachOut(id, "", func(_ storage.EID, dst storage.VID) bool {
			outs = append(outs, fmt.Sprintf("->%d", dst))
			return true
		})
		g.ForEachIn(id, "", func(_ storage.EID, src storage.VID) bool {
			ins = append(ins, fmt.Sprintf("<-%d", src))
			return true
		})
		sort.Strings(outs)
		sort.Strings(ins)
		line += fmt.Sprintf(" out=%v in=%v", outs, ins)
		out = append(out, line)
	}
	return fmt.Sprintf("%v", out)
}
