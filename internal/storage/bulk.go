package storage

import (
	"fmt"

	"repro/internal/graph"
)

// BulkVertex describes one vertex in a batched ingest.
type BulkVertex struct {
	Labels []string
}

// BulkEdge describes one edge in a batched ingest. Src and Dst may refer
// to vertices that are still buffered in the same BulkLoader: vertex IDs
// are assigned sequentially at buffering time, and the loader always
// flushes pending vertices before pending edges.
type BulkEdge struct {
	Src, Dst VID
	Type     string
}

// BatchBuilder is the native bulk write path a store may provide in
// addition to Builder. It trades the per-call read-modify-write work of
// AddVertex/AddEdge for deferred construction: batches only append raw
// records, and Finalize builds adjacency, degree, and index structures in
// one pass.
//
// Contract:
//
//   - AddVertexBatch assigns the batch consecutive VIDs starting at the
//     returned first ID (== NumVertices() before the call).
//   - Edges ingested through AddEdgeBatch may be invisible to the read
//     surface until Finalize runs; Finalize must be called after the last
//     batch and before the store is queried.
//   - Finalize may renumber edge IDs (e.g. to cluster adjacency by edge
//     type on disk); EIDs observed before Finalize are invalid after it.
//   - Finalize is idempotent and also legal after purely incremental
//     building, where it (re)establishes the store's optimal physical
//     layout — for diskstore, type-segmented adjacency.
type BatchBuilder interface {
	// AddVertexBatch creates len(batch) vertices with the given labels and
	// returns the VID of the first; the rest follow consecutively.
	AddVertexBatch(batch []BulkVertex) (first VID, err error)
	// AddEdgeBatch creates the given edges. Degree and adjacency
	// construction may be deferred to Finalize.
	AddEdgeBatch(batch []BulkEdge) error
	// Finalize completes all deferred construction. Required before reads
	// after AddEdgeBatch; see the interface contract above.
	Finalize() error
}

// TypeSegmentedGraph is implemented by stores whose adjacency is grouped
// by edge type, so typed ForEachOutID/ForEachInID seek directly to the
// matching segment and never touch other types' edges. Stores report the
// property dynamically: incremental AddEdge calls typically break the
// segmentation invariant until the next Finalize/compact step restores it.
type TypeSegmentedGraph interface {
	// SegmentedAdjacency reports whether adjacency is currently
	// type-segmented.
	SegmentedAdjacency() bool
}

// DefaultBulkBatch is the BulkLoader's default batch size.
const DefaultBulkBatch = 4096

// BulkLoader streams vertices and edges into a Builder in batches. It is
// the write-path analogue of storage.Fast: stores implementing
// BatchBuilder get the native batched path (deferred degree/index
// construction, one finalize); any other Builder gets the same API
// degraded to per-item AddVertex/AddEdge calls, so loading code can be
// written once against the bulk API.
//
// Vertex IDs are assigned at buffering time (stores assign VIDs
// sequentially from NumVertices(); the generic path verifies this), so
// buffered edges may reference buffered vertices. AddLabel and SetProp
// flush pending vertices and pass through, since they require the vertex
// to exist. Finalize must be called after the last Add; it flushes both
// buffers and runs the store's deferred construction.
type BulkLoader struct {
	b     Builder
	bb    BatchBuilder // non-nil when b provides the native path
	batch int

	nextVID VID
	vbuf    []BulkVertex
	ebuf    []BulkEdge
}

// NewBulkLoader wraps b. batchSize <= 0 picks DefaultBulkBatch.
func NewBulkLoader(b Builder, batchSize int) *BulkLoader {
	if batchSize <= 0 {
		batchSize = DefaultBulkBatch
	}
	bb, _ := b.(BatchBuilder)
	return &BulkLoader{b: b, bb: bb, batch: batchSize, nextVID: VID(b.NumVertices())}
}

// AddVertex buffers a vertex and returns its (already final) VID.
func (l *BulkLoader) AddVertex(labels ...string) (VID, error) {
	v := l.nextVID
	l.nextVID++
	l.vbuf = append(l.vbuf, BulkVertex{Labels: append([]string(nil), labels...)})
	if len(l.vbuf) >= l.batch {
		if err := l.flushVertices(); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// AddEdge buffers an edge between two (possibly still buffered) vertices.
func (l *BulkLoader) AddEdge(src, dst VID, etype string) error {
	if src < 0 || src >= l.nextVID || dst < 0 || dst >= l.nextVID {
		return fmt.Errorf("storage: bulk edge (%d)-[%s]->(%d) references an unknown vertex", src, etype, dst)
	}
	l.ebuf = append(l.ebuf, BulkEdge{Src: src, Dst: dst, Type: etype})
	if len(l.ebuf) >= l.batch {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// AddLabel flushes pending vertices and adds a label to an existing one.
func (l *BulkLoader) AddLabel(v VID, label string) error {
	if err := l.flushVertices(); err != nil {
		return err
	}
	return l.b.AddLabel(v, label)
}

// SetProp flushes pending vertices and sets a property on an existing one.
func (l *BulkLoader) SetProp(v VID, key string, val graph.Value) error {
	if err := l.flushVertices(); err != nil {
		return err
	}
	return l.b.SetProp(v, key, val)
}

// Flush pushes both buffers to the store: pending vertices first, so
// pending edges always reference existing vertices.
func (l *BulkLoader) Flush() error {
	if err := l.flushVertices(); err != nil {
		return err
	}
	return l.flushEdges()
}

// Finalize flushes all buffered work and completes the store's deferred
// construction (native BatchBuilder stores only; a no-op otherwise).
// Call it once, after the last Add and before the store is read.
func (l *BulkLoader) Finalize() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if l.bb != nil {
		return l.bb.Finalize()
	}
	return nil
}

func (l *BulkLoader) flushVertices() error {
	if len(l.vbuf) == 0 {
		return nil
	}
	if l.bb != nil {
		first, err := l.bb.AddVertexBatch(l.vbuf)
		if err != nil {
			return err
		}
		if want := l.nextVID - VID(len(l.vbuf)); first != want {
			return fmt.Errorf("storage: batch vertex IDs start at %d, loader predicted %d", first, want)
		}
	} else {
		base := l.nextVID - VID(len(l.vbuf))
		for i, bv := range l.vbuf {
			got, err := l.b.AddVertex(bv.Labels...)
			if err != nil {
				return err
			}
			if got != base+VID(i) {
				return fmt.Errorf("storage: store assigned VID %d, loader predicted %d; bulk loading needs sequential VIDs", got, base+VID(i))
			}
		}
	}
	l.vbuf = l.vbuf[:0]
	return nil
}

func (l *BulkLoader) flushEdges() error {
	if len(l.ebuf) == 0 {
		return nil
	}
	if l.bb != nil {
		if err := l.bb.AddEdgeBatch(l.ebuf); err != nil {
			return err
		}
	} else {
		for _, be := range l.ebuf {
			if _, err := l.b.AddEdge(be.Src, be.Dst, be.Type); err != nil {
				return err
			}
		}
	}
	l.ebuf = l.ebuf[:0]
	return nil
}
