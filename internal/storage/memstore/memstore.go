// Package memstore implements storage.Graph with in-memory adjacency
// lists. It plays the role of the paper's less I/O-bound backend
// (JanusGraph with a warm cache): traversals are pointer chases, so the
// benefit of the optimized schema comes purely from doing fewer of them.
package memstore

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/storage"
)

type halfEdge struct {
	etype int32
	other storage.VID
	id    storage.EID
}

type vertex struct {
	labels []int32
	props  map[int32]graph.Value
	out    []halfEdge
	in     []halfEdge
}

// Store is an in-memory property graph. The zero value is not usable; call
// New.
type Store struct {
	vertices []vertex
	numEdges int

	labelIDs map[string]int32
	labels   []string
	typeIDs  map[string]int32
	types    []string
	keyIDs   map[string]int32
	keys     []string

	byLabel map[int32][]storage.VID
}

var _ storage.Builder = (*Store)(nil)

// New returns an empty in-memory store.
func New() *Store {
	return &Store{
		labelIDs: map[string]int32{},
		typeIDs:  map[string]int32{},
		keyIDs:   map[string]int32{},
		byLabel:  map[int32][]storage.VID{},
	}
}

func intern(s string, ids map[string]int32, names *[]string) int32 {
	if id, ok := ids[s]; ok {
		return id
	}
	id := int32(len(*names))
	ids[s] = id
	*names = append(*names, s)
	return id
}

// AddVertex creates a vertex with the given labels.
func (s *Store) AddVertex(labels ...string) (storage.VID, error) {
	id := storage.VID(len(s.vertices))
	s.vertices = append(s.vertices, vertex{})
	for _, l := range labels {
		if err := s.AddLabel(id, l); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// AddLabel adds a label to an existing vertex.
func (s *Store) AddLabel(v storage.VID, label string) error {
	if err := s.check(v); err != nil {
		return err
	}
	id := intern(label, s.labelIDs, &s.labels)
	vx := &s.vertices[v]
	for _, l := range vx.labels {
		if l == id {
			return nil
		}
	}
	vx.labels = append(vx.labels, id)
	s.byLabel[id] = append(s.byLabel[id], v)
	return nil
}

// SetProp sets a vertex property, replacing any previous value.
func (s *Store) SetProp(v storage.VID, key string, val graph.Value) error {
	if err := s.check(v); err != nil {
		return err
	}
	id := intern(key, s.keyIDs, &s.keys)
	vx := &s.vertices[v]
	if vx.props == nil {
		vx.props = map[int32]graph.Value{}
	}
	vx.props[id] = val
	return nil
}

// AddEdge creates a directed edge of the given type.
func (s *Store) AddEdge(src, dst storage.VID, etype string) (storage.EID, error) {
	if err := s.check(src); err != nil {
		return 0, err
	}
	if err := s.check(dst); err != nil {
		return 0, err
	}
	t := intern(etype, s.typeIDs, &s.types)
	id := storage.EID(s.numEdges)
	s.numEdges++
	s.vertices[src].out = append(s.vertices[src].out, halfEdge{etype: t, other: dst, id: id})
	s.vertices[dst].in = append(s.vertices[dst].in, halfEdge{etype: t, other: src, id: id})
	return id, nil
}

// Close is a no-op for the in-memory store.
func (s *Store) Close() error { return nil }

func (s *Store) check(v storage.VID) error {
	if v < 0 || int(v) >= len(s.vertices) {
		return fmt.Errorf("memstore: vertex %d out of range", v)
	}
	return nil
}

// NumVertices returns the number of vertices.
func (s *Store) NumVertices() int { return len(s.vertices) }

// NumEdges returns the number of edges.
func (s *Store) NumEdges() int { return s.numEdges }

// CountLabel returns the number of vertices carrying the label.
func (s *Store) CountLabel(label string) int {
	id, ok := s.labelIDs[label]
	if !ok {
		return 0
	}
	return len(s.byLabel[id])
}

// ForEachVertex calls fn for every vertex carrying the label.
func (s *Store) ForEachVertex(label string, fn func(storage.VID) bool) {
	if label == "" {
		for i := range s.vertices {
			if !fn(storage.VID(i)) {
				return
			}
		}
		return
	}
	id, ok := s.labelIDs[label]
	if !ok {
		return
	}
	for _, v := range s.byLabel[id] {
		if !fn(v) {
			return
		}
	}
}

// HasLabel reports whether the vertex carries the label.
func (s *Store) HasLabel(v storage.VID, label string) bool {
	if s.check(v) != nil {
		return false
	}
	id, ok := s.labelIDs[label]
	if !ok {
		return false
	}
	for _, l := range s.vertices[v].labels {
		if l == id {
			return true
		}
	}
	return false
}

// Labels returns the labels of the vertex, sorted.
func (s *Store) Labels(v storage.VID) []string {
	if s.check(v) != nil {
		return nil
	}
	out := make([]string, 0, len(s.vertices[v].labels))
	for _, l := range s.vertices[v].labels {
		out = append(out, s.labels[l])
	}
	sort.Strings(out)
	return out
}

// Prop returns the value of a vertex property.
func (s *Store) Prop(v storage.VID, key string) (graph.Value, bool) {
	if s.check(v) != nil {
		return graph.Null, false
	}
	id, ok := s.keyIDs[key]
	if !ok {
		return graph.Null, false
	}
	val, ok := s.vertices[v].props[id]
	return val, ok
}

// PropKeys returns the property keys present on the vertex, sorted.
func (s *Store) PropKeys(v storage.VID) []string {
	if s.check(v) != nil {
		return nil
	}
	out := make([]string, 0, len(s.vertices[v].props))
	for id := range s.vertices[v].props {
		out = append(out, s.keys[id])
	}
	sort.Strings(out)
	return out
}

// ForEachOut iterates out-edges of v with the given type ("" = any).
func (s *Store) ForEachOut(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.forEach(v, etype, true, fn)
}

// ForEachIn iterates in-edges of v with the given type ("" = any).
func (s *Store) ForEachIn(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.forEach(v, etype, false, fn)
}

func (s *Store) forEach(v storage.VID, etype string, out bool, fn func(storage.EID, storage.VID) bool) {
	if s.check(v) != nil {
		return
	}
	var want int32 = -1
	if etype != "" {
		id, ok := s.typeIDs[etype]
		if !ok {
			return
		}
		want = id
	}
	list := s.vertices[v].in
	if out {
		list = s.vertices[v].out
	}
	for _, e := range list {
		if want >= 0 && e.etype != want {
			continue
		}
		if !fn(e.id, e.other) {
			return
		}
	}
}

// Degree returns the number of out- or in-edges of the given type.
func (s *Store) Degree(v storage.VID, etype string, out bool) int {
	n := 0
	s.forEach(v, etype, out, func(storage.EID, storage.VID) bool {
		n++
		return true
	})
	return n
}
