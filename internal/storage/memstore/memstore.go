// Package memstore implements storage.Graph with in-memory adjacency
// lists. It plays the role of the paper's less I/O-bound backend
// (JanusGraph with a warm cache): traversals are pointer chases, so the
// benefit of the optimized schema comes purely from doing fewer of them.
package memstore

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/storage"
)

type halfEdge struct {
	etype int32
	other storage.VID
	id    storage.EID
}

// prop is one vertex property. Vertices carry few properties, so a slice
// ordered by key name beats a map on both lookup and iteration.
type prop struct {
	key int32
	val graph.Value
}

type vertex struct {
	// labels is kept ordered by label name (not ID) at insert time so
	// Labels() needs no per-call sort.
	labels []int32
	// props is kept ordered by key name at insert time.
	props []prop
	out   []halfEdge
	in    []halfEdge
}

// Store is an in-memory property graph. The zero value is not usable; call
// New.
//
// Building (AddVertex, AddLabel, SetProp, AddEdge) is single-writer; once
// built, every read method touches only data that no longer changes, so
// the store serves any number of concurrent readers without locking.
type Store struct {
	vertices []vertex
	numEdges int

	labelIDs map[string]int32
	labels   []string
	typeIDs  map[string]int32
	types    []string
	keyIDs   map[string]int32
	keys     []string

	byLabel map[int32][]storage.VID

	// segmented reports that every vertex's out/in lists are sorted by
	// (etype, id), so typed iteration and degree queries can binary-search
	// the matching segment. Established by Finalize, broken by AddEdge.
	segmented bool
}

var (
	_ storage.Builder            = (*Store)(nil)
	_ storage.FastGraph          = (*Store)(nil)
	_ storage.BatchBuilder       = (*Store)(nil)
	_ storage.TypeSegmentedGraph = (*Store)(nil)
	_ storage.Snapshotter        = (*Store)(nil)
	_ storage.Statistics         = (*Store)(nil)
)

// New returns an empty in-memory store.
func New() *Store {
	return &Store{
		labelIDs:  map[string]int32{},
		typeIDs:   map[string]int32{},
		keyIDs:    map[string]int32{},
		byLabel:   map[int32][]storage.VID{},
		segmented: true, // trivially: no edges yet
	}
}

func intern(s string, ids map[string]int32, names *[]string) int32 {
	if id, ok := ids[s]; ok {
		return id
	}
	id := int32(len(*names))
	ids[s] = id
	*names = append(*names, s)
	return id
}

// AddVertex creates a vertex with the given labels.
func (s *Store) AddVertex(labels ...string) (storage.VID, error) {
	id := storage.VID(len(s.vertices))
	s.vertices = append(s.vertices, vertex{})
	for _, l := range labels {
		if err := s.AddLabel(id, l); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// AddLabel adds a label to an existing vertex.
func (s *Store) AddLabel(v storage.VID, label string) error {
	if err := s.check(v); err != nil {
		return err
	}
	id := intern(label, s.labelIDs, &s.labels)
	vx := &s.vertices[v]
	// Insert in label-name order so Labels() never has to sort.
	at := len(vx.labels)
	for i, l := range vx.labels {
		if l == id {
			return nil
		}
		if s.labels[l] > label {
			at = i
			break
		}
	}
	vx.labels = append(vx.labels, 0)
	copy(vx.labels[at+1:], vx.labels[at:])
	vx.labels[at] = id
	s.byLabel[id] = append(s.byLabel[id], v)
	return nil
}

// SetProp sets a vertex property, replacing any previous value.
func (s *Store) SetProp(v storage.VID, key string, val graph.Value) error {
	if err := s.check(v); err != nil {
		return err
	}
	id := intern(key, s.keyIDs, &s.keys)
	vx := &s.vertices[v]
	// Insert in key-name order so PropKeys() never has to sort.
	at := len(vx.props)
	for i, p := range vx.props {
		if p.key == id {
			vx.props[i].val = val
			return nil
		}
		if s.keys[p.key] > key {
			at = i
			break
		}
	}
	vx.props = append(vx.props, prop{})
	copy(vx.props[at+1:], vx.props[at:])
	vx.props[at] = prop{key: id, val: val}
	return nil
}

// AddEdge creates a directed edge of the given type.
func (s *Store) AddEdge(src, dst storage.VID, etype string) (storage.EID, error) {
	if err := s.check(src); err != nil {
		return 0, err
	}
	if err := s.check(dst); err != nil {
		return 0, err
	}
	t := intern(etype, s.typeIDs, &s.types)
	id := storage.EID(s.numEdges)
	s.numEdges++
	s.vertices[src].out = append(s.vertices[src].out, halfEdge{etype: t, other: dst, id: id})
	s.vertices[dst].in = append(s.vertices[dst].in, halfEdge{etype: t, other: src, id: id})
	// Appending in arrival order breaks type grouping until the next
	// Finalize.
	s.segmented = false
	return id, nil
}

// ---- storage.BatchBuilder ----

// AddVertexBatch creates the batch's vertices with consecutive IDs.
func (s *Store) AddVertexBatch(batch []storage.BulkVertex) (storage.VID, error) {
	first := storage.VID(len(s.vertices))
	s.vertices = append(s.vertices, make([]vertex, len(batch))...)
	for i, bv := range batch {
		for _, l := range bv.Labels {
			if err := s.AddLabel(first+storage.VID(i), l); err != nil {
				return 0, err
			}
		}
	}
	return first, nil
}

// AddEdgeBatch creates the batch's edges. In-memory adjacency is built
// eagerly (there is no deferred-linkage saving to be had), so the only
// deferred work is Finalize's type segmentation.
func (s *Store) AddEdgeBatch(batch []storage.BulkEdge) error {
	for _, be := range batch {
		if _, err := s.AddEdge(be.Src, be.Dst, be.Type); err != nil {
			return err
		}
	}
	return nil
}

// Finalize sorts every vertex's out/in lists by (edge type, edge id), so
// typed traversals and degree queries binary-search straight to their
// type's segment instead of filtering the whole list.
func (s *Store) Finalize() error {
	for i := range s.vertices {
		sortSegmented(s.vertices[i].out)
		sortSegmented(s.vertices[i].in)
	}
	s.segmented = true
	return nil
}

func sortSegmented(list []halfEdge) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].etype != list[j].etype {
			return list[i].etype < list[j].etype
		}
		return list[i].id < list[j].id
	})
}

// AcquireSnapshot returns an independent deep copy of the store, so the
// snapshot keeps answering from the state at the acquire point even if
// the original is (single-writer) built further afterwards. O(V+E) copy:
// memstore is the reference backend, and the copy also makes it usable
// as the oracle in concurrency harnesses. Release is a no-op — the copy
// is garbage-collected like any value.
func (s *Store) AcquireSnapshot() storage.Snapshot {
	c := &Store{
		vertices:  make([]vertex, len(s.vertices)),
		numEdges:  s.numEdges,
		labelIDs:  make(map[string]int32, len(s.labelIDs)),
		labels:    append([]string(nil), s.labels...),
		typeIDs:   make(map[string]int32, len(s.typeIDs)),
		types:     append([]string(nil), s.types...),
		keyIDs:    make(map[string]int32, len(s.keyIDs)),
		keys:      append([]string(nil), s.keys...),
		byLabel:   make(map[int32][]storage.VID, len(s.byLabel)),
		segmented: s.segmented,
	}
	for i := range s.vertices {
		vx := &s.vertices[i]
		c.vertices[i] = vertex{
			labels: append([]int32(nil), vx.labels...),
			props:  append([]prop(nil), vx.props...),
			out:    append([]halfEdge(nil), vx.out...),
			in:     append([]halfEdge(nil), vx.in...),
		}
	}
	for k, v := range s.labelIDs {
		c.labelIDs[k] = v
	}
	for k, v := range s.typeIDs {
		c.typeIDs[k] = v
	}
	for k, v := range s.keyIDs {
		c.keyIDs[k] = v
	}
	for id, vids := range s.byLabel {
		c.byLabel[id] = append([]storage.VID(nil), vids...)
	}
	return memSnap{c}
}

type memSnap struct{ *Store }

func (memSnap) Release() {}

// SegmentedAdjacency reports whether adjacency is currently grouped by
// edge type (see storage.TypeSegmentedGraph).
func (s *Store) SegmentedAdjacency() bool { return s.segmented }

// Close is a no-op for the in-memory store.
func (s *Store) Close() error { return nil }

func (s *Store) check(v storage.VID) error {
	if v < 0 || int(v) >= len(s.vertices) {
		return fmt.Errorf("memstore: vertex %d out of range", v)
	}
	return nil
}

// NumVertices returns the number of vertices.
func (s *Store) NumVertices() int { return len(s.vertices) }

// NumEdges returns the number of edges.
func (s *Store) NumEdges() int { return s.numEdges }

// CountLabel returns the number of vertices carrying the label.
func (s *Store) CountLabel(label string) int {
	id, ok := s.labelIDs[label]
	if !ok {
		return 0
	}
	return len(s.byLabel[id])
}

// ForEachVertex calls fn for every vertex carrying the label.
func (s *Store) ForEachVertex(label string, fn func(storage.VID) bool) {
	if label == "" {
		for i := range s.vertices {
			if !fn(storage.VID(i)) {
				return
			}
		}
		return
	}
	id, ok := s.labelIDs[label]
	if !ok {
		return
	}
	for _, v := range s.byLabel[id] {
		if !fn(v) {
			return
		}
	}
}

// HasLabel reports whether the vertex carries the label.
func (s *Store) HasLabel(v storage.VID, label string) bool {
	id, ok := s.labelIDs[label]
	if !ok {
		return false
	}
	return s.HasLabelID(v, storage.SymbolID(id))
}

// Labels returns the labels of the vertex in lexicographic order (the
// per-vertex label list is maintained in name order at insert time).
func (s *Store) Labels(v storage.VID) []string {
	if s.check(v) != nil {
		return nil
	}
	out := make([]string, 0, len(s.vertices[v].labels))
	for _, l := range s.vertices[v].labels {
		out = append(out, s.labels[l])
	}
	return out
}

// Prop returns the value of a vertex property.
func (s *Store) Prop(v storage.VID, key string) (graph.Value, bool) {
	id, ok := s.keyIDs[key]
	if !ok {
		return graph.Null, false
	}
	return s.PropID(v, storage.SymbolID(id))
}

// PropKeys returns the property keys present on the vertex in
// lexicographic order (the per-vertex property list is maintained in key
// order at insert time).
func (s *Store) PropKeys(v storage.VID) []string {
	if s.check(v) != nil {
		return nil
	}
	out := make([]string, 0, len(s.vertices[v].props))
	for _, p := range s.vertices[v].props {
		out = append(out, s.keys[p.key])
	}
	return out
}

// ForEachOut iterates out-edges of v with the given type ("" = any).
func (s *Store) ForEachOut(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.forEach(v, etype, true, fn)
}

// ForEachIn iterates in-edges of v with the given type ("" = any).
func (s *Store) ForEachIn(v storage.VID, etype string, fn func(storage.EID, storage.VID) bool) {
	s.forEach(v, etype, false, fn)
}

func (s *Store) forEach(v storage.VID, etype string, out bool, fn func(storage.EID, storage.VID) bool) {
	want := storage.AnySymbol
	if etype != "" {
		id, ok := s.typeIDs[etype]
		if !ok {
			return
		}
		want = storage.SymbolID(id)
	}
	s.forEachID(v, want, out, fn)
}

func (s *Store) forEachID(v storage.VID, etype storage.SymbolID, out bool, fn func(storage.EID, storage.VID) bool) {
	if s.check(v) != nil || etype == storage.NoSymbol {
		return
	}
	list := s.vertices[v].in
	if out {
		list = s.vertices[v].out
	}
	if etype == storage.AnySymbol {
		for _, e := range list {
			if !fn(e.id, e.other) {
				return
			}
		}
		return
	}
	want := int32(etype)
	if s.segmented {
		// Type-segmented list: seek to the segment, stop at its end — no
		// per-edge type filtering.
		for i := segmentStart(list, want); i < len(list) && list[i].etype == want; i++ {
			if !fn(list[i].id, list[i].other) {
				return
			}
		}
		return
	}
	for _, e := range list {
		if e.etype != want {
			continue
		}
		if !fn(e.id, e.other) {
			return
		}
	}
}

// segmentStart returns the index of the first edge with type >= want in a
// type-sorted list.
func segmentStart(list []halfEdge, want int32) int {
	return sort.Search(len(list), func(i int) bool { return list[i].etype >= want })
}

// Degree returns the number of out- or in-edges of the given type.
func (s *Store) Degree(v storage.VID, etype string, out bool) int {
	want := storage.AnySymbol
	if etype != "" {
		id, ok := s.typeIDs[etype]
		if !ok {
			return 0
		}
		want = storage.SymbolID(id)
	}
	return s.DegreeID(v, want, out)
}

// ---- storage.FastGraph ----

// LabelID resolves a vertex label to its interned ID.
func (s *Store) LabelID(label string) storage.SymbolID { return resolve(label, s.labelIDs) }

// TypeID resolves an edge type to its interned ID.
func (s *Store) TypeID(etype string) storage.SymbolID { return resolve(etype, s.typeIDs) }

// KeyID resolves a property key to its interned ID.
func (s *Store) KeyID(key string) storage.SymbolID { return resolve(key, s.keyIDs) }

func resolve(name string, ids map[string]int32) storage.SymbolID {
	if name == "" {
		return storage.AnySymbol
	}
	if id, ok := ids[name]; ok {
		return storage.SymbolID(id)
	}
	return storage.NoSymbol
}

// CountLabelID is CountLabel with a resolved label.
func (s *Store) CountLabelID(label storage.SymbolID) int {
	if label == storage.AnySymbol {
		return len(s.vertices)
	}
	if label < 0 {
		return 0
	}
	return len(s.byLabel[int32(label)])
}

// ForEachVertexID is ForEachVertex with a resolved label.
func (s *Store) ForEachVertexID(label storage.SymbolID, fn func(storage.VID) bool) {
	if label == storage.AnySymbol {
		for i := range s.vertices {
			if !fn(storage.VID(i)) {
				return
			}
		}
		return
	}
	if label < 0 {
		return
	}
	for _, v := range s.byLabel[int32(label)] {
		if !fn(v) {
			return
		}
	}
}

// PlanVertexScan splits the label's posting list (or, for AnySymbol, the
// dense VID range) into near-even contiguous partitions for morsel-style
// parallel execution. memstore is immutable once built, so slicing the
// postings directly is already a consistent snapshot.
func (s *Store) PlanVertexScan(label storage.SymbolID, parts int) []storage.VertexScan {
	if label == storage.AnySymbol {
		ranges := storage.SplitRange(len(s.vertices), parts)
		scans := make([]storage.VertexScan, len(ranges))
		for i, r := range ranges {
			lo, hi := r[0], r[1]
			scans[i] = func(fn func(storage.VID) bool) {
				for v := lo; v < hi; v++ {
					if !fn(storage.VID(v)) {
						return
					}
				}
			}
		}
		return scans
	}
	if label < 0 {
		return nil
	}
	postings := s.byLabel[int32(label)]
	ranges := storage.SplitRange(len(postings), parts)
	scans := make([]storage.VertexScan, len(ranges))
	for i, r := range ranges {
		part := postings[r[0]:r[1]]
		scans[i] = func(fn func(storage.VID) bool) {
			for _, v := range part {
				if !fn(v) {
					return
				}
			}
		}
	}
	return scans
}

// HasLabelID is HasLabel with a resolved label.
func (s *Store) HasLabelID(v storage.VID, label storage.SymbolID) bool {
	if label < 0 || s.check(v) != nil {
		return false
	}
	want := int32(label)
	for _, l := range s.vertices[v].labels {
		if l == want {
			return true
		}
	}
	return false
}

// PropID is Prop with a resolved key.
func (s *Store) PropID(v storage.VID, key storage.SymbolID) (graph.Value, bool) {
	if key < 0 || s.check(v) != nil {
		return graph.Null, false
	}
	want := int32(key)
	for i := range s.vertices[v].props {
		if s.vertices[v].props[i].key == want {
			return s.vertices[v].props[i].val, true
		}
	}
	return graph.Null, false
}

// ForEachOutID is ForEachOut with a resolved edge type.
func (s *Store) ForEachOutID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	s.forEachID(v, etype, true, fn)
}

// ForEachInID is ForEachIn with a resolved edge type.
func (s *Store) ForEachInID(v storage.VID, etype storage.SymbolID, fn func(storage.EID, storage.VID) bool) {
	s.forEachID(v, etype, false, fn)
}

// DegreeID is Degree with a resolved edge type. The untyped degree is the
// adjacency-list length, no iteration needed.
func (s *Store) DegreeID(v storage.VID, etype storage.SymbolID, out bool) int {
	if s.check(v) != nil || etype == storage.NoSymbol {
		return 0
	}
	list := s.vertices[v].in
	if out {
		list = s.vertices[v].out
	}
	if etype == storage.AnySymbol {
		return len(list)
	}
	want := int32(etype)
	if s.segmented {
		lo := segmentStart(list, want)
		hi := lo + sort.Search(len(list)-lo, func(i int) bool { return list[lo+i].etype > want })
		return hi - lo
	}
	n := 0
	for _, e := range list {
		if e.etype == want {
			n++
		}
	}
	return n
}

// LabelCounts returns the exact number of vertices per label
// (storage.Statistics).
func (s *Store) LabelCounts() map[string]int {
	out := make(map[string]int, len(s.labels))
	for id, name := range s.labels {
		out[name] = len(s.byLabel[int32(id)])
	}
	return out
}

// EdgeTypeCounts returns the exact number of edges per edge type,
// counted on demand — memstore keeps no running per-type totals, and
// statistics consumers call this once per plan, not per tuple.
func (s *Store) EdgeTypeCounts() map[string]int {
	out := make(map[string]int, len(s.types))
	for _, name := range s.types {
		out[name] = 0
	}
	for i := range s.vertices {
		for _, e := range s.vertices[i].out {
			out[s.types[e.etype]]++
		}
	}
	return out
}

// MayHaveProp reports whether any vertex with the label carries val for
// the key (storage.Statistics). Memstore answers exactly: it scans the
// label's vertices and stops at the first match, so a "no" costs the
// same scan the caller was about to run — and makes every later scan of
// the same empty probe free to skip.
func (s *Store) MayHaveProp(label, key string, val graph.Value) bool {
	lid, ok := s.labelIDs[label]
	if !ok {
		return false
	}
	kid, ok := s.keyIDs[key]
	if !ok {
		return false
	}
	for _, v := range s.byLabel[lid] {
		for _, p := range s.vertices[v].props {
			if p.key == kid && p.val.Equal(val) {
				return true
			}
		}
	}
	return false
}
