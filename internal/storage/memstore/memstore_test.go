package memstore

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storage.Builder { return New() })
}

func TestRandomGraphFingerprintStable(t *testing.T) {
	a, b := New(), New()
	if _, err := storetest.BuildRandom(a, 7, 50, 120); err != nil {
		t.Fatal(err)
	}
	if _, err := storetest.BuildRandom(b, 7, 50, 120); err != nil {
		t.Fatal(err)
	}
	if storetest.Fingerprint(a) != storetest.Fingerprint(b) {
		t.Error("same seed produced different graphs")
	}
}
