package rewrite

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/storage/memstore"
)

type fixture struct {
	mapping *core.Mapping
	dir     *memstore.Store
	opt     *memstore.Store
}

func buildFixture(t *testing.T, card int) *fixture {
	t.Helper()
	o := datagen.MED()
	ds, err := datagen.Generate(o, datagen.Options{Seed: 11, BaseCard: card})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NSC(o, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{mapping: res.Mapping, dir: memstore.New(), opt: memstore.New()}
	if _, _, err := loader.Load(f.dir, ds, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loader.Load(f.opt, ds, res.Mapping); err != nil {
		t.Fatal(err)
	}
	return f
}

func rowsOf(t *testing.T, res *query.Result) []string {
	t.Helper()
	query.SortRowsForComparison(res.Rows)
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

// assertEquivalent runs src on DIR, its rewrite on OPT, and compares rows.
func (f *fixture) assertEquivalent(t *testing.T, src string) {
	t.Helper()
	q := cypher.MustParse(src)
	rq, notes, err := Rewrite(q, f.mapping, Options{})
	if err != nil {
		t.Fatalf("Rewrite(%q): %v", src, err)
	}
	rd, err := query.Run(f.dir, q)
	if err != nil {
		t.Fatalf("DIR run: %v", err)
	}
	ro, err := query.Run(f.opt, rq)
	if err != nil {
		t.Fatalf("OPT run (%s): %v", rq, err)
	}
	dr, or := rowsOf(t, rd), rowsOf(t, ro)
	if len(dr) == 0 {
		t.Fatalf("query %q matched nothing on DIR; fixture too small", src)
	}
	if fmt.Sprint(dr) != fmt.Sprint(or) {
		t.Errorf("results differ for %q\nrewritten: %s\nnotes: %v\nDIR(%d): %.400v\nOPT(%d): %.400v",
			src, rq, notes, len(dr), dr, len(or), or)
	}
}

func TestUnionHopCollapse(t *testing.T) {
	f := buildFixture(t, 20)
	src := `MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name, ci.ciDesc`
	q, notes, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 1 {
		t.Errorf("expected 1 hop after rewrite, got %s", q)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "union") {
		t.Errorf("notes = %v", notes)
	}
	f.assertEquivalent(t, src)
}

func TestIsAHopCollapse(t *testing.T) {
	f := buildFixture(t, 20)
	src := `MATCH (dl:DrugLabInteraction)-[:isA]->(di:DrugInteraction) RETURN di.summary`
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 0 || len(q.Patterns[0].Nodes) != 1 {
		t.Errorf("hop not collapsed: %s", q)
	}
	// di renamed into dl: summary now read from the merged vertex.
	if !strings.Contains(q.String(), "dl.summary") {
		t.Errorf("property access not renamed: %s", q)
	}
	f.assertEquivalent(t, src)
}

func TestTwoLevelInheritanceChainCollapse(t *testing.T) {
	f := buildFixture(t, 15)
	// Treatment -> Procedure and Treatment -> Prescription are pushed
	// down (JS=0): both hops collapse.
	src := `MATCH (p:Procedure)-[:isA]->(tr:Treatment)<-[:isA]-(rx:Prescription) RETURN COUNT(*)`
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 0 {
		t.Errorf("chain not fully collapsed: %s", q)
	}
	// Note: COUNT(*) over a fully collapsed pattern counts vertices
	// carrying all three labels; no vertex carries both Procedure and
	// Prescription (distinct children), so both sides return 0 rows...
	// DIR also returns 0 matches because a Treatment facet belongs to
	// exactly one child. Equivalent.
	f.assertEquivalent(t, src)
}

func TestOneToOneCollapse(t *testing.T) {
	f := buildFixture(t, 20)
	src := `MATCH (i:Indication)-[:is]->(c:Condition) RETURN i.desc, c.condName`
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 0 {
		t.Errorf("1:1 hop not collapsed: %s", q)
	}
	f.assertEquivalent(t, src)
}

func TestAggregationLocalization(t *testing.T) {
	f := buildFixture(t, 20)
	src := `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc)) AS n`
	q, notes, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 0 {
		t.Errorf("1:M hop not localized: %s", q)
	}
	if !strings.Contains(q.String(), "Indication.desc") {
		t.Errorf("list property not referenced: %s", q)
	}
	if len(notes) == 0 {
		t.Error("no rewrite notes")
	}
	// Row sets: DIR groups drugs with ≥1 indication; OPT returns every
	// drug with its list size (possibly 0). Compare drugs with n>0.
	rd, err := query.Run(f.dir, cypher.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := query.Run(f.opt, q)
	if err != nil {
		t.Fatal(err)
	}
	dirRows := map[string]int64{}
	for _, row := range rd.Rows {
		dirRows[row[0].Str()] += row[1].Int()
	}
	optRows := map[string]int64{}
	for _, row := range ro.Rows {
		if row[1].Int() > 0 {
			optRows[row[0].Str()] += row[1].Int()
		}
	}
	if len(dirRows) == 0 {
		t.Fatal("no DIR rows")
	}
	if fmt.Sprint(dirRows) != fmt.Sprint(optRows) {
		t.Errorf("aggregation mismatch:\nDIR: %v\nOPT: %v", dirRows, optRows)
	}
}

func TestAnchoredAggregationEquivalence(t *testing.T) {
	f := buildFixture(t, 20)
	// Find a drug name that exists to anchor the pattern.
	res, err := query.Run(f.dir, cypher.MustParse(`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name LIMIT 1`))
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("no anchor drug: %v", err)
	}
	name := res.Rows[0][0].Str()
	src := fmt.Sprintf(`MATCH (d:Drug {name: '%s'})-[:treat]->(i:Indication) RETURN COUNT(i.desc)`, name)
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "size(") {
		t.Errorf("COUNT not rewritten to size: %s", q)
	}
	rd, _ := query.Run(f.dir, cypher.MustParse(src))
	ro, err := query.Run(f.opt, q)
	if err != nil {
		t.Fatal(err)
	}
	// DIR: single global aggregate row. OPT: one row per anchored drug
	// vertex (several drugs may share a name); their sizes must sum to
	// the DIR count.
	var sum int64
	for _, row := range ro.Rows {
		sum += row[0].Int()
	}
	if rd.Rows[0][0].Int() != sum {
		t.Errorf("anchored count: DIR %v vs OPT sum %v", rd.Rows[0][0], sum)
	}
}

func TestScalarLookupLocalizationOptIn(t *testing.T) {
	f := buildFixture(t, 20)
	src := `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc`
	// Off by default: traversal kept.
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 1 {
		t.Errorf("default rewrite should keep the hop: %s", q)
	}
	// Opt-in: hop removed, list property read.
	q2, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{LocalizeScalarLookups: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Patterns[0].Rels) != 0 {
		t.Errorf("opt-in rewrite kept the hop: %s", q2)
	}
	// Flattened value multisets agree.
	rd, _ := query.Run(f.dir, cypher.MustParse(src))
	ro, err := query.Run(f.opt, q2)
	if err != nil {
		t.Fatal(err)
	}
	dirVals := map[string]int{}
	for _, row := range rd.Rows {
		dirVals[row[0].Str()]++
	}
	optVals := map[string]int{}
	for _, row := range ro.Rows {
		for _, v := range row[0].List() {
			optVals[v.Str()]++
		}
	}
	if fmt.Sprint(dirVals) != fmt.Sprint(optVals) {
		t.Errorf("flattened lookup mismatch:\nDIR %v\nOPT %v", dirVals, optVals)
	}
}

func TestNoRewriteWithoutMapping(t *testing.T) {
	f := buildFixture(t, 10)
	empty := &core.Mapping{}
	src := `MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name`
	q, notes, err := Rewrite(cypher.MustParse(src), empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 || len(q.Patterns[0].Rels) != 2 {
		t.Errorf("empty mapping rewrote the query: %s %v", q, notes)
	}
	_ = f
}

func TestCountStarNotLocalized(t *testing.T) {
	f := buildFixture(t, 15)
	src := `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN COUNT(*)`
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 1 {
		t.Errorf("COUNT(*) query must keep the traversal: %s", q)
	}
	f.assertEquivalent(t, src)
}

func TestDistinctAggregateNotLocalized(t *testing.T) {
	f := buildFixture(t, 15)
	src := `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN COUNT(DISTINCT i.desc)`
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 1 {
		t.Errorf("DISTINCT aggregate must keep the traversal: %s", q)
	}
	f.assertEquivalent(t, src)
}

func TestWhereOnFarNodeBlocksLocalization(t *testing.T) {
	f := buildFixture(t, 15)
	src := `MATCH (d:Drug)-[:treat]->(i:Indication) WHERE i.desc <> 'x' RETURN COUNT(i.desc)`
	q, _, err := Rewrite(cypher.MustParse(src), f.mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Rels) != 1 {
		t.Errorf("WHERE-constrained neighbor must keep the traversal: %s", q)
	}
	f.assertEquivalent(t, src)
}

// TestEquivalenceBattery runs a battery of DIR queries across every rule
// type and checks exact row equality after rewriting.
func TestEquivalenceBattery(t *testing.T) {
	f := buildFixture(t, 25)
	queries := []string{
		// Union collapse inside longer patterns.
		`MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(b:BlackBoxWarning) RETURN d.name, b.route`,
		// Inheritance collapse (parent property from child).
		`MATCH (x:DrugFoodInteraction)-[:isA]->(p:DrugInteraction) RETURN x.riskLevel, p.summary`,
		// Inheritance collapse with WHERE on merged property.
		`MATCH (x:DrugLabInteraction)-[:isA]->(p:DrugInteraction) WHERE x.mechanism <> 'zzz' RETURN p.summary`,
		// 1:1 collapse chained with 1:M traversal.
		`MATCH (d:Drug)-[:treat]->(i:Indication)-[:is]->(c:Condition) RETURN d.name, c.note`,
		// Multi-pattern join sharing a variable.
		`MATCH (d:Drug)-[:treat]->(i:Indication), (d)-[:has]->(di:DrugInteraction) RETURN i.desc, di.summary`,
		// Plain queries must survive rewriting untouched.
		`MATCH (p:Patient) RETURN COUNT(*)`,
		`MATCH (m:Manufacturer)-[:hasDrug]->(d:Drug) RETURN m.attr0, d.name`,
	}
	for _, src := range queries {
		f.assertEquivalent(t, src)
	}
}

func TestRewriteDoesNotMutateInput(t *testing.T) {
	f := buildFixture(t, 10)
	src := `MATCH (dl:DrugLabInteraction)-[:isA]->(di:DrugInteraction) RETURN di.summary`
	q := cypher.MustParse(src)
	before := q.String()
	if _, _, err := Rewrite(q, f.mapping, Options{}); err != nil {
		t.Fatal(err)
	}
	if q.String() != before {
		t.Errorf("input mutated:\nbefore %s\nafter  %s", before, q.String())
	}
}
