// Package rewrite translates Cypher queries written against the direct
// (DIR) schema into semantically equivalent queries against an optimized
// (OPT) schema, driven by the optimizer's mapping trace:
//
//   - hops over collapsed relationships (unionOf, isA, merged 1:1 edges)
//     are eliminated by unifying the two pattern nodes into one multi-label
//     node, since the optimized graph merged those vertices (§3, Figures
//     4-6);
//   - traversal-plus-aggregation over a replicated 1:M / M:N property is
//     replaced by the local LIST property (Figure 7): COLLECT(x.p) becomes
//     carrier.`X.p` and COUNT(x.p) becomes size(carrier.`X.p`).
package rewrite

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
)

// Options tunes the rewrite.
type Options struct {
	// LocalizeScalarLookups also rewrites non-aggregated neighbor
	// property lookups (RETURN x.p) to the local list property. This is
	// the paper's Q6 behaviour; it returns one list row instead of one
	// row per neighbor, so it is opt-in.
	LocalizeScalarLookups bool
}

// Rewrite returns the translated query; the input is not modified. The
// second return lists human-readable notes of the transformations
// applied (used by example programs and the benchmark report).
func Rewrite(q *cypher.Query, m *core.Mapping, opts Options) (*cypher.Query, []string, error) {
	out := q.Clone()
	var notes []string
	// Collapse merged hops to fixpoint.
	for {
		changed, note, err := collapseOnce(out, m)
		if err != nil {
			return nil, nil, err
		}
		if !changed {
			break
		}
		notes = append(notes, note)
	}
	ln, err := localizeLists(out, m, opts)
	if err != nil {
		return nil, nil, err
	}
	notes = append(notes, ln...)
	return out, notes, nil
}

// collapseOnce finds one hop whose relationship the mapping collapsed and
// unifies its endpoints. Returns whether a change was made.
func collapseOnce(q *cypher.Query, m *core.Mapping) (bool, string, error) {
	for _, pat := range q.Patterns {
		for i, rel := range pat.Rels {
			left, right := pat.Nodes[i], pat.Nodes[i+1]
			src, dst := left, right
			if rel.Dir == cypher.DirIn {
				src, dst = right, left
			}
			mg := findMerge(m, src.Labels, dst.Labels, rel.Type)
			if mg == nil {
				continue
			}
			if err := unify(q, pat, i, src, dst); err != nil {
				return false, "", err
			}
			return true, fmt.Sprintf("collapsed %s hop %s->%s (%s rule)", rel.Type, mg.From, mg.To, mg.Kind), nil
		}
	}
	return false, "", nil
}

// findMerge locates a mapping merge whose From/To concepts appear among
// the two nodes' labels with the given edge label.
func findMerge(m *core.Mapping, srcLabels, dstLabels []string, edgeName string) *core.Merge {
	for _, la := range srcLabels {
		for _, lb := range dstLabels {
			if mg := m.MergeFor(la, lb, edgeName); mg != nil {
				return mg
			}
		}
	}
	return nil
}

// unify merges node `other` into node `survivor`, removing hop i of the
// pattern and renaming every reference.
func unify(q *cypher.Query, pat *cypher.PathPattern, hop int, survivor, other *cypher.NodePattern) error {
	// Labels union (survivor's first, preserving order).
	seen := map[string]bool{}
	for _, l := range survivor.Labels {
		seen[l] = true
	}
	for _, l := range other.Labels {
		if !seen[l] {
			seen[l] = true
			survivor.Labels = append(survivor.Labels, l)
		}
	}
	// Property constraints: both must hold on the merged vertex.
	for k, v := range other.Props {
		if prev, ok := survivor.Props[k]; ok && !prev.Equal(v) {
			return fmt.Errorf("rewrite: conflicting property constraint %s on merged nodes", k)
		}
		if survivor.Props == nil {
			survivor.Props = map[string]graph.Value{}
		}
		survivor.Props[k] = v
	}
	// Variable unification.
	switch {
	case survivor.Var == "":
		survivor.Var = other.Var
	case other.Var != "" && other.Var != survivor.Var:
		renameVar(q, other.Var, survivor.Var)
	}
	// Drop the other node and the hop from the pattern.
	var nodes []*cypher.NodePattern
	for _, n := range pat.Nodes {
		if n != other {
			nodes = append(nodes, n)
		}
	}
	pat.Nodes = nodes
	pat.Rels = append(pat.Rels[:hop], pat.Rels[hop+1:]...)
	return nil
}

// renameVar rewrites every reference to a pattern variable.
func renameVar(q *cypher.Query, from, to string) {
	for _, pat := range q.Patterns {
		for _, n := range pat.Nodes {
			if n.Var == from {
				n.Var = to
			}
		}
	}
	if q.Where != nil {
		renameInExpr(q.Where, from, to)
	}
	for _, ri := range q.Return {
		renameInExpr(ri.Expr, from, to)
	}
	for _, s := range q.OrderBy {
		renameInExpr(s.Expr, from, to)
	}
}

func renameInExpr(e cypher.Expr, from, to string) {
	switch x := e.(type) {
	case *cypher.PropAccess:
		if x.Var == from {
			x.Var = to
		}
	case *cypher.VarRef:
		if x.Name == from {
			x.Name = to
		}
	case *cypher.Binary:
		renameInExpr(x.L, from, to)
		renameInExpr(x.R, from, to)
	case *cypher.Not:
		renameInExpr(x.E, from, to)
	case *cypher.FuncCall:
		for _, a := range x.Args {
			renameInExpr(a, from, to)
		}
	}
}

// localizeLists rewrites traversal+aggregation patterns into local list
// property reads.
func localizeLists(q *cypher.Query, m *core.Mapping, opts Options) ([]string, error) {
	var notes []string
	for _, pat := range q.Patterns {
		for {
			changed, note := tryLocalizeEnd(q, pat, m, opts)
			if !changed {
				break
			}
			notes = append(notes, note)
		}
	}
	return notes, nil
}

// tryLocalizeEnd attempts to remove one terminal hop of the pattern whose
// far node is consumed only by localizable property reads.
func tryLocalizeEnd(q *cypher.Query, pat *cypher.PathPattern, m *core.Mapping, opts Options) (bool, string) {
	if len(pat.Rels) == 0 {
		return false, ""
	}
	ends := []struct {
		hop      int
		farLeft  bool
		far, nir *cypher.NodePattern // far = candidate for removal
	}{
		{0, true, pat.Nodes[0], pat.Nodes[1]},
		{len(pat.Rels) - 1, false, pat.Nodes[len(pat.Nodes)-1], pat.Nodes[len(pat.Nodes)-2]},
	}
	for _, end := range ends {
		if len(pat.Nodes) < 2 {
			return false, ""
		}
		rel := pat.Rels[end.hop]
		far, near := end.far, end.nir
		if far == near {
			continue
		}
		// Orientation: the instance-edge source is the far node exactly
		// when (far is the textual left node) == (the arrow points
		// left-to-right).
		src, dst := near, far
		if end.farLeft == (rel.Dir == cypher.DirOut) {
			src, dst = far, near
		}
		if far.Var == "" || len(far.Props) > 0 {
			continue
		}
		lps, carrier := matchListProps(m, src, dst, far, rel.Type)
		if len(lps) == 0 {
			continue
		}
		if !replaceFarUses(q, pat, far, carrier, lps, opts) {
			continue
		}
		// Remove the hop and the far node.
		var nodes []*cypher.NodePattern
		for _, n := range pat.Nodes {
			if n != far {
				nodes = append(nodes, n)
			}
		}
		pat.Nodes = nodes
		pat.Rels = append(pat.Rels[:end.hop], pat.Rels[end.hop+1:]...)
		return true, fmt.Sprintf("localized %s properties onto %s as list reads", far.Labels, carrier.Var)
	}
	return false, ""
}

// matchListProps collects the replication entries where far is the
// neighbor and the other endpoint is the carrier, keyed by neighbor
// property name. Only unambiguous entries (a single relationship between
// the concept pair) are used, since the loader's list contents correspond
// to that relationship's links.
func matchListProps(m *core.Mapping, src, dst, far *cypher.NodePattern, edgeName string) (map[string]*core.ListProp, *cypher.NodePattern) {
	carrier := src
	if far == src {
		carrier = dst
	}
	out := map[string]*core.ListProp{}
	for _, cl := range carrier.Labels {
		for _, fl := range far.Labels {
			for i := range m.ListProps {
				lp := &m.ListProps[i]
				if !lp.Unambiguous || lp.Carrier != cl || lp.Neighbor != fl {
					continue
				}
				if edgeName != "" && lp.EdgeName != edgeName {
					continue
				}
				// Orientation check: forward replication runs
				// carrier->neighbor, reverse runs neighbor->carrier.
				if !lp.Reverse && carrier != src {
					continue
				}
				if lp.Reverse && carrier != dst {
					continue
				}
				if _, dup := out[lp.Prop]; !dup {
					out[lp.Prop] = lp
				}
			}
		}
	}
	return out, carrier
}

// replaceFarUses rewrites every use of the far node's variable, provided
// all of them are localizable reads of replicated properties. Returns
// false (leaving the query untouched) otherwise.
func replaceFarUses(q *cypher.Query, pat *cypher.PathPattern, far, carrier *cypher.NodePattern, lps map[string]*core.ListProp, opts Options) bool {
	// The far variable must not appear in WHERE, other patterns, ORDER
	// BY, or as another hop's endpoint.
	if q.Where != nil && exprUsesVar(q.Where, far.Var) {
		return false
	}
	for _, p := range q.Patterns {
		for _, n := range p.Nodes {
			if n != far && n.Var == far.Var {
				return false
			}
		}
	}
	for _, s := range q.OrderBy {
		if exprUsesVar(s.Expr, far.Var) {
			return false
		}
	}
	// The hop must exist only to reach the replicated properties: the far
	// variable must actually be read in RETURN. An unused far node still
	// multiplies rows (one per edge), so its hop must stay.
	used := false
	for _, ri := range q.Return {
		if exprUsesVar(ri.Expr, far.Var) {
			used = true
		}
	}
	if !used {
		return false
	}
	if carrier.Var == "" {
		carrier.Var = "_rw_carrier"
	}
	// Validate every RETURN usage first.
	for _, ri := range q.Return {
		if !localizable(ri.Expr, far.Var, lps, opts, false) {
			return false
		}
	}
	for i, ri := range q.Return {
		q.Return[i].Expr = rewriteExpr(ri.Expr, far.Var, carrier.Var, lps)
	}
	return true
}

func exprUsesVar(e cypher.Expr, v string) bool {
	if v == "" {
		return false
	}
	vars := map[string]bool{}
	cypher.Vars(e, vars)
	return vars[v]
}

// localizable checks that every use of farVar within e is an aggregate
// (or, with the option, bare) read of a replicated property.
func localizable(e cypher.Expr, farVar string, lps map[string]*core.ListProp, opts Options, insideAgg bool) bool {
	switch x := e.(type) {
	case *cypher.PropAccess:
		if x.Var != farVar {
			return true
		}
		if lps[x.Key] == nil {
			return false
		}
		return insideAgg || opts.LocalizeScalarLookups
	case *cypher.VarRef:
		return x.Name != farVar
	case *cypher.Binary:
		return localizable(x.L, farVar, lps, opts, insideAgg) && localizable(x.R, farVar, lps, opts, insideAgg)
	case *cypher.Not:
		return localizable(x.E, farVar, lps, opts, insideAgg)
	case *cypher.FuncCall:
		if x.Star {
			// COUNT(*) counts pattern rows; removing the hop would
			// change it.
			return false
		}
		agg := insideAgg
		if x.IsAggregate() {
			if x.Distinct {
				// DISTINCT over replicated lists would need dedup; keep
				// the traversal.
				for _, a := range x.Args {
					if exprUsesVar(a, farVar) {
						return false
					}
				}
				return true
			}
			// Only COLLECT and COUNT translate to list reads.
			if x.Name != "collect" && x.Name != "count" {
				for _, a := range x.Args {
					if exprUsesVar(a, farVar) {
						return false
					}
				}
				return true
			}
			agg = true
		}
		for _, a := range x.Args {
			if !localizable(a, farVar, lps, opts, agg) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// rewriteExpr replaces aggregate reads of farVar's replicated properties
// with the carrier's list properties.
func rewriteExpr(e cypher.Expr, farVar, carrierVar string, lps map[string]*core.ListProp) cypher.Expr {
	switch x := e.(type) {
	case *cypher.PropAccess:
		if x.Var == farVar {
			if lp := lps[x.Key]; lp != nil {
				return &cypher.PropAccess{Var: carrierVar, Key: lp.Key}
			}
		}
		return x
	case *cypher.Binary:
		x.L = rewriteExpr(x.L, farVar, carrierVar, lps)
		x.R = rewriteExpr(x.R, farVar, carrierVar, lps)
		return x
	case *cypher.Not:
		x.E = rewriteExpr(x.E, farVar, carrierVar, lps)
		return x
	case *cypher.FuncCall:
		if x.IsAggregate() && len(x.Args) == 1 {
			if pa, ok := x.Args[0].(*cypher.PropAccess); ok && pa.Var == farVar {
				if lp := lps[pa.Key]; lp != nil {
					listProp := &cypher.PropAccess{Var: carrierVar, Key: lp.Key}
					switch x.Name {
					case "collect":
						return listProp
					case "count":
						return &cypher.FuncCall{Name: "size", Args: []cypher.Expr{listProp}}
					}
				}
			}
		}
		for i, a := range x.Args {
			x.Args[i] = rewriteExpr(a, farVar, carrierVar, lps)
		}
		return x
	default:
		return e
	}
}
