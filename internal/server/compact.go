package server

// POST /admin/compact — kick a background compaction of the served
// store. Compaction folds the accumulated live-write delta into a fresh
// base generation without blocking /query or /mutate traffic (the
// backend's background-fold contract), so the endpoint answers 202 as
// soon as the fold is launched rather than holding the connection for
// its duration; progress is observable through GET /stats
// (storage.fold_running / fold_progress_permille / generation).
//
// Responses: 202 when a fold was started, 409 when one is already
// running, 501 when the backend cannot compact (memstore). A fold
// failure is recorded and surfaced as storage.last_compact_error in
// /stats.
//
// The same launch path drives auto-compaction: when
// Config.AutoCompactDeltaItems > 0, every acknowledged /mutate batch
// checks the delta gauges and starts a fold once
// delta_vertices + delta_edges crosses the threshold.

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// compactState is the server-side single-flight latch around the
// backend's own (also single-flight) Compact, plus the last outcome for
// /stats.
type compactState struct {
	running atomic.Bool
	wg      sync.WaitGroup
	started atomic.Int64

	mu      sync.Mutex
	lastErr string
}

// startCompact launches mg.Compact in a background goroutine if no
// server-initiated compaction is running. It reports whether a new fold
// was started.
func (s *Server) startCompact(mg storage.MutableGraph) bool {
	if !s.compact.running.CompareAndSwap(false, true) {
		return false
	}
	s.compact.started.Add(1)
	s.compact.wg.Add(1)
	go func() {
		defer s.compact.wg.Done()
		defer s.compact.running.Store(false)
		err := mg.Compact()
		s.compact.mu.Lock()
		if err != nil && !errors.Is(err, storage.ErrCompactInProgress) {
			s.compact.lastErr = err.Error()
		} else if err == nil {
			s.compact.lastErr = ""
		}
		s.compact.mu.Unlock()
	}()
	return true
}

// lastCompactError returns the most recent background fold failure (""
// when the last fold succeeded or none ran).
func (s *Server) lastCompactError() string {
	s.compact.mu.Lock()
	defer s.compact.mu.Unlock()
	return s.compact.lastErr
}

// maybeAutoCompact runs after every acknowledged mutation batch: once the
// delta segment holds more than AutoCompactDeltaItems vertices + edges,
// it starts a background fold (at most one at a time; the gauges lag the
// fold, so subsequent batches simply find running=true until the swap).
func (s *Server) maybeAutoCompact(mg storage.MutableGraph) {
	if s.cfg.AutoCompactDeltaItems <= 0 || s.compact.running.Load() {
		return
	}
	lr, ok := mg.(storage.LiveStatsReporter)
	if !ok {
		return
	}
	ls := lr.LiveStats()
	if ls.DeltaVertices+ls.DeltaEdges >= s.cfg.AutoCompactDeltaItems {
		s.startCompact(mg)
	}
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.m.compact.Observe(time.Since(start)) }()
	rid := beginRequest(w, r)
	if s.draining.Load() {
		s.m.drained.Add(1)
		writeError(w, http.StatusServiceUnavailable, rid, "server is draining")
		return
	}
	mg, ok := s.data.Load().graph.(storage.MutableGraph)
	if !ok {
		writeError(w, http.StatusNotImplemented, rid, "the served backend does not support compaction")
		return
	}
	if !s.startCompact(mg) {
		writeError(w, http.StatusConflict, rid, storage.ErrCompactInProgress.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"status": "compaction started", "request_id": rid})
}
